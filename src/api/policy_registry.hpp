// PolicyRegistry — the single front door for constructing online policies.
//
// Every policy the library ships registers itself here (self-registering
// PolicyRegistrar statics live next to the implementations in
// algos/baselines.cpp and core/rand_pr.cpp), under a canonical spec string
// with a `family:variant` param syntax:
//
//   "randpr"          the paper's randPr, exactly
//   "randpr:filt"     randPr with dead-set filtering
//   "hashpr:tab"      distributed randPr over a tabulation hash
//   "greedy:srpt"     shortest-remaining greedy baseline
//
// Callers resolve a spec with policies().make(spec, rng); unknown specs
// throw a RequireError whose message enumerates the registered catalog
// (per-family variants when the family exists), so every entry point —
// CLI, benches, tests — shares one error surface and one name table.
// The registry is enumerable in registration order, which is what
// `osp_cli list`, `--help`, and the test sweeps iterate.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "util/rng.hpp"

namespace osp::api {

/// Builds a fresh policy from a per-trial seeded Rng.  Structurally
/// identical to engine::AlgFactory, so registry entries drop straight
/// into engine::AlgSpec grid columns.
using PolicyFactory = std::function<std::unique_ptr<OnlineAlgorithm>(Rng)>;

/// One registered policy.
struct PolicyInfo {
  /// Canonical spec, `family` or `family:variant` (e.g. "greedy:srpt").
  std::string name;
  /// One-line description for `osp_cli list` / error catalogs.
  std::string description;
  /// Accepted alternate spellings (legacy CLI names, display names).
  std::vector<std::string> aliases;
  PolicyFactory make;

  /// The part of `name` before the ':' (the whole name if none).
  std::string family() const;
};

class PolicyRegistry {
 public:
  /// Registers `info`; duplicate canonical names or aliases throw.
  void add(PolicyInfo info);

  /// Looks `spec` up by canonical name or alias; nullptr when absent.
  const PolicyInfo* find(const std::string& spec) const;

  /// find() that throws a RequireError on failure.  The message names the
  /// known variants when the family exists ("randpr:bogus") and the whole
  /// catalog otherwise, so callers never maintain their own name lists.
  const PolicyInfo& at(const std::string& spec) const;

  /// at() + construction in one call.
  std::unique_ptr<OnlineAlgorithm> make(const std::string& spec,
                                        Rng rng) const;

  /// All entries in registration order.
  const std::vector<PolicyInfo>& entries() const { return entries_; }

  /// Canonical names in registration order.
  std::vector<std::string> names() const;

  /// "  name  description" lines (one per entry) for help text and errors.
  std::string render_catalog() const;

  /// "| spec | description | aliases |" markdown table (docs/CATALOG.md).
  std::string render_markdown() const;

 private:
  std::vector<PolicyInfo> entries_;
};

/// The process-wide registry, populated by the self-registering entries in
/// algos/baselines.cpp and core/rand_pr.cpp before main() runs.
PolicyRegistry& policies();

/// Registers one policy into policies() from a static initializer:
///   static PolicyRegistrar r{{"greedy:srpt", "…", {"greedy-srpt"}, …}};
struct PolicyRegistrar {
  explicit PolicyRegistrar(PolicyInfo info);
};

}  // namespace osp::api
