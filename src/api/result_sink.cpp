#include "api/result_sink.hpp"

#include "util/require.hpp"

namespace osp::api {

namespace {

/// Replays one cell value onto the writer through the exact overload the
/// benches used to call by hand, so the serialized bytes are identical.
void replay(JsonWriter& writer, const Row::Value& value) {
  switch (value.index()) {
    case 0: writer.value(std::get<bool>(value)); break;
    case 1: writer.value(std::get<std::int64_t>(value)); break;
    case 2: writer.value(std::get<std::uint64_t>(value)); break;
    case 3: writer.value(std::get<double>(value)); break;
    default: writer.value(std::get<std::string>(value)); break;
  }
}

std::string render(const Row::Value& value, int precision) {
  switch (value.index()) {
    case 0: return std::get<bool>(value) ? "yes" : "no";
    case 1: return fmt(std::get<std::int64_t>(value));
    case 2: return fmt(std::get<std::uint64_t>(value));
    case 3: return fmt(std::get<double>(value), precision);
    default: return std::get<std::string>(value);
  }
}

}  // namespace

JsonSink::JsonSink(const std::string& name, std::size_t threads)
    : file_("BENCH_" + name + ".json"), writer_(file_) {
  OSP_REQUIRE_MSG(file_.good(), "cannot open BENCH_" << name
                                                     << ".json for writing");
  writer_.begin_object()
      .kv("bench", name)
      .kv("threads", static_cast<std::uint64_t>(threads))
      .key("results")
      .begin_array();
}

JsonSink::JsonSink(std::ostream& os, const std::string& name,
                   std::size_t threads)
    : writer_(os) {
  writer_.begin_object()
      .kv("bench", name)
      .kv("threads", static_cast<std::uint64_t>(threads))
      .key("results")
      .begin_array();
}

JsonSink::~JsonSink() { close(); }

void JsonSink::write(const Row& row) {
  OSP_REQUIRE_MSG(!closed_, "JsonSink written after close()");
  writer_.begin_object();
  for (const auto& [key, value] : row.cells) {
    writer_.key(key);
    replay(writer_, value);
  }
  writer_.end_object();
}

void JsonSink::close() {
  if (closed_) return;
  closed_ = true;
  writer_.end_array().end_object();
  if (file_.is_open())
    file_ << '\n';
}

void TableSink::write(const Row& row) {
  if (table_ == nullptr) {
    columns_.clear();
    for (const auto& [key, value] : row.cells) {
      (void)value;
      columns_.push_back(key);
    }
    table_ = std::make_unique<Table>(columns_);
  }
  OSP_REQUIRE_MSG(row.cells.size() == columns_.size(),
                  "TableSink row arity changed mid-stream");
  std::vector<std::string> cells;
  cells.reserve(row.cells.size());
  for (std::size_t i = 0; i < row.cells.size(); ++i) {
    OSP_REQUIRE_MSG(row.cells[i].first == columns_[i],
                    "TableSink row keys changed mid-stream ('"
                        << row.cells[i].first << "' vs '" << columns_[i]
                        << "')");
    cells.push_back(render(row.cells[i].second, precision_));
  }
  table_->row(std::move(cells));
}

void TableSink::print(std::ostream& os) const {
  if (table_ != nullptr) table_->print(os);
}

}  // namespace osp::api
