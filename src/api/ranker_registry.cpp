#include "api/ranker_registry.hpp"

#include <algorithm>
#include <sstream>

#include "api/markdown.hpp"
#include "util/require.hpp"

namespace osp::api {

// Anchor function defined in the self-registering translation unit
// (net/router_sim.cpp).  rankers() references it so the linker can never
// drop that object — and with it the RankerRegistrar statics — from a
// static-library link.
void link_router_rankers();

void RankerRegistry::add(RankerInfo info) {
  OSP_REQUIRE_MSG(!info.name.empty(), "ranker registered without a name");
  OSP_REQUIRE_MSG(info.make != nullptr,
                  "ranker '" << info.name << "' registered without a factory");
  auto taken = [&](const std::string& name) {
    for (const RankerInfo& e : entries_) {
      if (e.name == name) return true;
      for (const std::string& a : e.aliases)
        if (a == name) return true;
    }
    return false;
  };
  OSP_REQUIRE_MSG(!taken(info.name),
                  "duplicate ranker registration '" << info.name << "'");
  for (const std::string& a : info.aliases)
    OSP_REQUIRE_MSG(!taken(a), "duplicate ranker alias '"
                                   << a << "' (registering '" << info.name
                                   << "')");
  entries_.push_back(std::move(info));
}

const RankerInfo* RankerRegistry::find(const std::string& name) const {
  for (const RankerInfo& e : entries_) {
    if (e.name == name) return &e;
    for (const std::string& a : e.aliases)
      if (a == name) return &e;
  }
  return nullptr;
}

const RankerInfo& RankerRegistry::at(const std::string& name) const {
  const RankerInfo* e = find(name);
  OSP_REQUIRE_MSG(e != nullptr, "unknown ranker '"
                                    << name << "'; registered rankers:\n"
                                    << render_catalog());
  return *e;
}

std::unique_ptr<FrameRanker> RankerRegistry::make(const std::string& name,
                                                  Rng rng) const {
  return at(name).make(rng);
}

std::vector<std::string> RankerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const RankerInfo& e : entries_) out.push_back(e.name);
  return out;
}

std::string RankerRegistry::render_catalog() const {
  std::size_t width = 0;
  for (const RankerInfo& e : entries_)
    width = std::max(width, e.name.size());
  std::ostringstream os;
  for (const RankerInfo& e : entries_)
    os << "  " << e.name << std::string(width - e.name.size() + 2, ' ')
       << e.description << '\n';
  return os.str();
}

std::string RankerRegistry::render_markdown() const {
  std::vector<std::vector<std::string>> rows;
  for (const RankerInfo& e : entries_)
    rows.push_back(
        {'`' + e.name + '`', e.description, detail::code_list(e.aliases)});
  return detail::markdown_table({"name", "description", "aliases"}, rows);
}

RankerRegistry& RankerRegistry_instance() {
  // Function-local static: safe to use from the registrar constructors,
  // which run during static initialization of other translation units.
  static RankerRegistry registry;
  return registry;
}

RankerRegistry& rankers() {
  // Referencing the anchor (not its return value) forces the linker to
  // include the registering object; the call itself is a no-op.
  link_router_rankers();
  return RankerRegistry_instance();
}

RankerRegistrar::RankerRegistrar(RankerInfo info) {
  RankerRegistry_instance().add(std::move(info));
}

}  // namespace osp::api
