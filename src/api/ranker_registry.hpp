// RankerRegistry — the single front door for the buffered router's
// FrameRankers, mirroring PolicyRegistry.
//
// Every ranker the library ships registers itself here (self-registering
// RankerRegistrar statics live next to the implementations at the bottom
// of net/router_sim.cpp), under the display name the router benches key
// their tables and BENCH_router.json rows on:
//
//   "randPr"       persistent random R_w frame priorities (the paper)
//   "by-weight"    deterministic: protect the heaviest frames
//   "drop-tail"    no preference: later arrivals lose
//   "random-drop"  uniform random priorities regardless of weight
//
// Callers resolve a name with rankers().make(name, rng); unknown names
// throw a RequireError enumerating the catalog.  Every ranker supports
// FrameRanker::reseed(), so bench loops construct one per worker and
// re-arm it per draw (randomized rankers consume the rng; deterministic
// ones ignore it).  The registry is enumerable in registration order —
// what `osp_cli list`, `osp_cli bench --ranker`, and the router benches
// iterate, killing their hand-built ranker lists.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/router_sim.hpp"
#include "util/rng.hpp"

namespace osp::api {

/// Builds a fresh ranker from a per-draw seeded Rng (deterministic
/// rankers ignore it).
using RankerFactory = std::function<std::unique_ptr<FrameRanker>(Rng)>;

/// One registered ranker.
struct RankerInfo {
  /// Display name — must equal the constructed ranker's name(), which is
  /// what the router benches key their JSON rows on.
  std::string name;
  /// One-line description for `osp_cli list` / error catalogs.
  std::string description;
  /// Accepted alternate spellings (e.g. "randpr" for "randPr").
  std::vector<std::string> aliases;
  /// True when the ranker consumes its Rng (randPr, random-drop): such a
  /// ranker needs a dedicated per-draw reseed stream in any bench that
  /// wants worker-count-independent results — the router benches check
  /// this flag and refuse to sweep a randomized ranker they have no
  /// stream for, so adding one can never silently break determinism.
  bool randomized = false;
  RankerFactory make;
};

class RankerRegistry {
 public:
  /// Registers `info`; duplicate names or aliases throw.
  void add(RankerInfo info);

  /// Looks `name` up by display name or alias; nullptr when absent.
  const RankerInfo* find(const std::string& name) const;

  /// find() that throws a RequireError enumerating the catalog.
  const RankerInfo& at(const std::string& name) const;

  /// at() + construction in one call.
  std::unique_ptr<FrameRanker> make(const std::string& name, Rng rng) const;

  /// All entries in registration order.
  const std::vector<RankerInfo>& entries() const { return entries_; }

  /// Display names in registration order.
  std::vector<std::string> names() const;

  /// "  name  description" lines for help text and errors.
  std::string render_catalog() const;

  /// "| name | description | aliases |" markdown table (docs/CATALOG.md).
  std::string render_markdown() const;

 private:
  std::vector<RankerInfo> entries_;
};

/// The process-wide registry, populated by the self-registering entries in
/// net/router_sim.cpp before main() runs.
RankerRegistry& rankers();

/// Registers one ranker into rankers() from a static initializer.
struct RankerRegistrar {
  explicit RankerRegistrar(RankerInfo info);
};

}  // namespace osp::api
