// Canonical text serialization for experiment Rows — the wire format the
// sharded grid pipeline (and any future router-runtime / trace-replay
// transport) moves results through.
//
// One Row cell becomes one line:
//
//   <tag> <key>=<payload>
//
// where <tag> is a single character naming the Row::Value variant arm
// (b bool, i int64, u uint64, d double, s string) and the payload encodes
// the value EXACTLY:
//
//   b   "true" / "false" — nothing else;
//   i   decimal int64 (strict strtoll, full consumption);
//   u   decimal uint64 (no sign, strict);
//   d   C hexfloat ("%a": 0x1.91eb851eb851fp+6, -0x0p+0, denormals
//       included) — bit-exact round trips by construction, so replaying a
//       parsed row through JsonSink reproduces the unsharded "%.17g"
//       bytes.  NaN and infinities are rejected on both sides: a partial
//       result file must never carry a value JSON cannot;
//   s   the string with backslash escapes for '\\', '\n', '\r' (values
//       live on one line; keys may not contain '=' or newlines).
//
// A whole Row is a block tagged with its global grid-cell index:
//
//   row <cell>
//   <tag> <key>=<payload>
//   ...
//   end
//
// Parsing is strict: unknown tags, malformed payloads, trailing junk,
// non-canonical grammar all throw RequireError naming the offending text
// (callers prefix file:line).  Serialize-then-parse is the identity on
// every representable Row.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>

#include "api/result_sink.hpp"

namespace osp::api {

/// The single-character variant tag of a cell value.
char wire_tag(const Row::Value& value);

/// Canonical payload text for one cell value.  Throws RequireError for
/// non-finite doubles (JSON downstream has no representation for them).
std::string encode_wire_value(const Row::Value& value);

/// Strict inverse of encode_wire_value for variant arm `tag`.  `where`
/// prefixes error messages ("file.part:12").
Row::Value parse_wire_value(char tag, const std::string& payload,
                            const std::string& where);

/// Parses one "<tag> <key>=<payload>" cell line.
std::pair<std::string, Row::Value> parse_wire_line(const std::string& line,
                                                   const std::string& where);

/// Writes a Row as its "row <cell> … end" block (cell is the row's global
/// grid-cell index; what ties a partial file's rows to the merge order).
void write_wire_row(std::ostream& os, std::size_t cell, const Row& row);

}  // namespace osp::api
