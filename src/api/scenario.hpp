// ScenarioSpec + ScenarioRegistry — declarative workload descriptions.
//
// A scenario names a generator family plus its shape parameters (sizes,
// loads, weights, traffic knobs).  The registry holds the curated catalog
// that previously lived scattered across bench_common.hpp's workload
// table, bench_router's sweep configs, and osp_cli's `gen` families:
//
//   "random", "regular", "fixedload", "capacity"   set-system families
//   "video", "multihop"                            traffic workloads
//   "weaklb", "lemma9"                             lower-bound gadgets
//   "engine/…"                                     the engine-throughput
//                                                  ladder (bench_perf)
//   "router/overload[-smoke]"                      bench_router's big
//                                                  buffered scenario
//
// Specs are value types: copy one out of the registry, override fields
// (directly or via set(key, value) from CLI-style strings), and compile it
// with build_instance() / build_video() / build_multihop().
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "gen/multihop.hpp"
#include "gen/random_instances.hpp"
#include "gen/video.hpp"
#include "util/rng.hpp"

namespace osp::api {

/// Generator family a scenario compiles through.
enum class ScenarioFamily {
  kRandom,          // random_instance(m, n, k)
  kRandomCapacity,  // random_capacity_instance(m, n, k, cap_max)
  kRegular,         // regular_instance(m, k, sigma)
  kFixedLoad,       // fixed_load_instance(m, n, sigma)
  kVideo,           // make_video_workload(streams, frames)
  kMultihop,        // make_multihop_workload(packets, switches)
  kWeakLb,          // build_weak_lb_instance(t)
  kLemma9,          // build_lemma9_instance(ell)
};

/// A declarative workload description.  Field meaning depends on family;
/// unused fields are ignored by build_*().
struct ScenarioSpec {
  std::string name;         // registry key, e.g. "engine/overload-256k"
  std::string description;  // one line for `osp_cli list`
  ScenarioFamily family = ScenarioFamily::kRandom;

  // Set-system shape.
  std::size_t m = 24;        // sets
  std::size_t n = 30;        // element slots
  std::size_t k = 3;         // set size
  std::size_t sigma = 4;     // element load
  std::size_t cap_max = 3;   // kRandomCapacity: capacities U[1, cap_max]
  WeightModel weights = WeightModel::unit();

  // Gadget sizes.
  std::size_t ell = 3;  // kLemma9
  std::size_t t = 8;    // kWeakLb

  // Traffic shape.
  std::size_t streams = 8;       // kVideo: concurrent senders
  std::size_t frames = 24;       // kVideo: frames per sender
  std::size_t packets = 80;      // kMultihop: packets injected
  std::size_t switches = 6;      // kMultihop: path length
  Capacity capacity = 1;         // kVideo→instance link capacity
  Capacity service_rate = 1;     // router benches: packets served per slot

  // Bench plumbing.
  std::string label;         // table/JSON label; name when empty
  int default_trials = 100;  // suggested trial count for `osp_cli bench`
  bool engine_shape = false; // member of the engine-throughput ladder

  /// The label benches key their rows on.
  const std::string& display_label() const {
    return label.empty() ? name : label;
  }

  /// Applies a CLI-style string override ("m", "sigma", "weights", …).
  /// Throws RequireError naming the key on unknown keys or bad values.
  ScenarioSpec& set(const std::string& key, const std::string& value);
};

/// Compiles a scenario into a set-packing Instance (every family can;
/// traffic families convert through their schedule, like `osp_cli gen`).
Instance build_instance(const ScenarioSpec& spec, Rng& rng);

/// Compiles a kVideo scenario into the router benches' frame workload.
VideoWorkload build_video(const ScenarioSpec& spec, Rng& rng);

/// Compiles a kMultihop scenario into the pipeline workload.
MultiHopWorkload build_multihop(const ScenarioSpec& spec, Rng& rng);

class ScenarioRegistry {
 public:
  void add(ScenarioSpec spec);
  const ScenarioSpec* find(const std::string& name) const;
  /// find() that throws a RequireError enumerating the catalog.
  const ScenarioSpec& at(const std::string& name) const;
  const std::vector<ScenarioSpec>& entries() const { return entries_; }
  std::string render_catalog() const;

 private:
  std::vector<ScenarioSpec> entries_;
};

/// The process-wide catalog (populated at first use).
ScenarioRegistry& scenarios();

/// The engine-throughput ladder (scenarios with engine_shape set), in
/// registration order — bench_perf's workload table.  The last entry is
/// the "largest workload" the perf gates are measured on.
std::vector<const ScenarioSpec*> engine_shapes();

/// Strict non-negative integer parse for CLI flags and spec overrides;
/// throws RequireError naming `what` on malformed input (the seed CLI
/// aborted with an uncaught std::invalid_argument here).
std::size_t parse_size(const std::string& what, const std::string& text);

/// Weight-model lookup by CLI name (unit | uniform | zipf | exp).
WeightModel weight_model_from(const std::string& name);

}  // namespace osp::api
