// ScenarioSpec + ScenarioRegistry — declarative workload descriptions.
//
// A scenario names a generator family plus its shape parameters (sizes,
// loads, weights, traffic knobs).  The registry holds the curated catalog
// that previously lived scattered across bench_common.hpp's workload
// table, bench_router's sweep configs, and osp_cli's `gen` families:
//
//   "random", "regular", "fixedload", "capacity"   set-system families
//   "video", "multihop"                            traffic workloads
//   "weaklb", "lemma9"                             lower-bound gadgets
//   "adversarial/…"                                worst-case families for
//                                                  the competitive-ratio
//                                                  dashboard (bench_adversarial)
//   "engine/…"                                     the engine-throughput
//                                                  ladder (bench_perf)
//   "router/overload[-smoke]"                      bench_router's big
//                                                  buffered scenario
//
// Specs are value types: copy one out of the registry, override fields
// (directly or via set(key, value) from CLI-style strings), and compile it
// with build_instance() / build_video() / build_multihop().
//
// A spec can also carry SweepAxes — swept parameter dimensions declared as
// data.  expand() turns one swept spec into the concrete grid of specs the
// benches and `osp_cli bench` iterate, so a whole bench sweep is one
// declarative object instead of a recompiled loop.  Specs (including their
// axes) load from key=value config files via from_file(), making scenarios
// and sweeps shareable without recompiling.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "gen/multihop.hpp"
#include "gen/random_instances.hpp"
#include "gen/video.hpp"
#include "util/rng.hpp"

namespace osp::api {

/// Generator family a scenario compiles through.
enum class ScenarioFamily {
  kRandom,          // random_instance(m, n, k)
  kRandomCapacity,  // random_capacity_instance(m, n, k, cap_max)
  kRegular,         // regular_instance(m, k, sigma)
  kFixedLoad,       // fixed_load_instance(m, n, sigma)
  kVideo,           // make_video_workload(streams, frames)
  kMultihop,        // make_multihop_workload(packets, switches)
  kWeakLb,          // build_weak_lb_instance(t)
  kLemma9,          // build_lemma9_instance(ell)
  kTheorem3,        // run_theorem3_adversary(sigma, k) vs greedy-first
};

/// One swept dimension of a scenario.  An axis varies one or more spec
/// keys together (zipped): cell c applies set(keys[i], values[c][i]) for
/// every key i.  A spec with several axes expands as their cartesian
/// product, first axis outermost (see expand()).
struct SweepAxis {
  std::vector<std::string> keys;
  std::vector<std::vector<std::string>> values;  // [cell][key index]
  /// Optional display label per cell; when set, the expanded spec's label
  /// becomes labels[cell] (the engine ladder's BENCH row keys work this
  /// way).  Empty, or one entry per cell.
  std::vector<std::string> labels;

  std::size_t cells() const { return values.size(); }
};

/// Single-key axis from a value-list string: comma-separated elements,
/// each a literal value or an inclusive lo..hi[..step] integer range —
/// "2,3,4", "2..12", "2..12..2", and mixes like "1,4..6" all work.
SweepAxis sweep_axis(const std::string& key, const std::string& values);

/// Zipped multi-key axis: cell c assigns cells[c][i] to keys[i].  `labels`
/// (optional) names the expanded specs, one entry per cell.
SweepAxis sweep_axis(std::vector<std::string> keys,
                     std::vector<std::vector<std::string>> cells,
                     std::vector<std::string> labels = {});

/// A declarative workload description.  Field meaning depends on family;
/// unused fields are ignored by build_*().
struct ScenarioSpec {
  std::string name;         // registry key, e.g. "engine/overload-256k"
  std::string description;  // one line for `osp_cli list`
  ScenarioFamily family = ScenarioFamily::kRandom;

  // Set-system shape.
  std::size_t m = 24;        // sets
  std::size_t n = 30;        // element slots
  std::size_t k = 3;         // set size
  std::size_t sigma = 4;     // element load
  std::size_t cap_max = 3;   // kRandomCapacity: capacities U[1, cap_max]
  WeightModel weights = WeightModel::unit();

  // Gadget sizes.
  std::size_t ell = 3;  // kLemma9
  std::size_t t = 8;    // kWeakLb

  // Traffic shape.
  std::size_t streams = 8;       // kVideo: concurrent senders
  std::size_t frames = 24;       // kVideo: frames per sender
  std::size_t packets = 80;      // kMultihop: packets injected
  std::size_t switches = 6;      // kMultihop: path length
  Capacity capacity = 1;         // kVideo→instance link capacity
  Capacity service_rate = 1;     // router benches: packets served per slot
  std::size_t buffer = 0;        // router benches: packets that can wait
  std::size_t links = 1;         // sustained runtime: parallel links
  std::size_t window = 256;      // sustained runtime: slots per goodput window

  // Bench plumbing.
  std::string label;         // table/JSON label; name when empty
  int default_trials = 100;  // suggested trial count for `osp_cli bench`
  bool engine_shape = false; // member of the engine-throughput ladder

  /// Swept dimensions; empty for a plain single-cell scenario.
  std::vector<SweepAxis> sweep;

  /// The label benches key their rows on.
  const std::string& display_label() const {
    return label.empty() ? name : label;
  }

  /// Applies a CLI-style string override ("m", "sigma", "weights", …).
  /// Throws RequireError naming the key on unknown keys or bad values.
  ScenarioSpec& set(const std::string& key, const std::string& value);

  /// Appends a sweep axis (builder style for catalog registration).
  ScenarioSpec& vary(SweepAxis axis) {
    sweep.push_back(std::move(axis));
    return *this;
  }

  /// Parses a key=value scenario config ('#' comments, blank lines
  /// ignored).  The first directive must be `scenario = <base>` naming the
  /// registry entry to copy; later lines override fields through set()
  /// (strict unknown-key errors, prefixed with origin:line), with the
  /// extra keys `name`, `label`, `trials`, and `sweep.<key> = <values>`
  /// (one single-key axis per line, sweep_axis() value syntax).
  static ScenarioSpec from_stream(std::istream& in, const std::string& origin);
  static ScenarioSpec from_file(const std::string& path);
};

/// Expands a spec's sweep axes into the concrete grid of specs, cartesian
/// product in declaration order (first axis outermost).  Every returned
/// spec has its axes cleared, fields overridden through set(), and a label
/// naming the cell (axis labels when declared, appended "key=value" pairs
/// otherwise).  A spec without axes expands to itself, so callers can
/// iterate unconditionally.  Throws RequireError on malformed axes
/// (unknown key, zip length mismatch, empty axis).
std::vector<ScenarioSpec> expand(const ScenarioSpec& spec);

/// Compiles a scenario into a set-packing Instance (every family can;
/// traffic families convert through their schedule, like `osp_cli gen`).
Instance build_instance(const ScenarioSpec& spec, Rng& rng);

/// True when `key` influences build_instance() for `family`.  Router-only
/// knobs (buffer, service-rate) and keys a family ignores return false —
/// what `osp_cli bench` uses to warn that a packing grid swept over such
/// a key yields identical columns that differ only in label.
bool affects_instance(const std::string& key, ScenarioFamily family);

/// Compiles a kVideo scenario into the router benches' frame workload.
VideoWorkload build_video(const ScenarioSpec& spec, Rng& rng);

/// Compiles a kMultihop scenario into the pipeline workload.
MultiHopWorkload build_multihop(const ScenarioSpec& spec, Rng& rng);

class ScenarioRegistry {
 public:
  void add(ScenarioSpec spec);
  const ScenarioSpec* find(const std::string& name) const;
  /// find() that throws a RequireError enumerating the catalog.
  const ScenarioSpec& at(const std::string& name) const;
  const std::vector<ScenarioSpec>& entries() const { return entries_; }
  std::string render_catalog() const;
  /// "| name | description | sweep |" markdown table (docs/CATALOG.md).
  std::string render_markdown() const;

 private:
  std::vector<ScenarioSpec> entries_;
};

/// The process-wide catalog (populated at first use).
ScenarioRegistry& scenarios();

/// The engine-throughput ladder — the expansion of the scenarios with
/// engine_shape set (the "engine/ladder" zipped sweep), in registration
/// order; bench_perf's workload table.  The last entry is the "largest
/// workload" the perf gates are measured on.
std::vector<ScenarioSpec> engine_shapes();

/// Strict non-negative integer parse for CLI flags and spec overrides;
/// throws RequireError naming `what` on malformed input (the seed CLI
/// aborted with an uncaught std::invalid_argument here).
std::size_t parse_size(const std::string& what, const std::string& text);

/// Weight-model lookup by CLI name (unit | uniform | zipf | exp).
WeightModel weight_model_from(const std::string& name);

}  // namespace osp::api
