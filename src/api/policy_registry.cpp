#include "api/policy_registry.hpp"

#include <algorithm>
#include <sstream>

#include "api/markdown.hpp"
#include "util/require.hpp"

namespace osp::api {

// Anchor functions defined in the self-registering translation units.
// policies() references them so the linker can never drop those objects
// (and with them the PolicyRegistrar statics) from a static-library link:
// any binary that uses the registry is guaranteed to see every entry.
void link_randpr_policies();
void link_baseline_policies();

std::string PolicyInfo::family() const {
  return name.substr(0, name.find(':'));
}

void PolicyRegistry::add(PolicyInfo info) {
  OSP_REQUIRE_MSG(!info.name.empty(), "policy registered without a name");
  OSP_REQUIRE_MSG(info.make != nullptr,
                  "policy '" << info.name << "' registered without a factory");
  auto taken = [&](const std::string& name) {
    for (const PolicyInfo& e : entries_) {
      if (e.name == name) return true;
      for (const std::string& a : e.aliases)
        if (a == name) return true;
    }
    return false;
  };
  OSP_REQUIRE_MSG(!taken(info.name),
                  "duplicate policy registration '" << info.name << "'");
  for (const std::string& a : info.aliases)
    OSP_REQUIRE_MSG(!taken(a), "duplicate policy alias '"
                                   << a << "' (registering '" << info.name
                                   << "')");
  entries_.push_back(std::move(info));
}

const PolicyInfo* PolicyRegistry::find(const std::string& spec) const {
  for (const PolicyInfo& e : entries_) {
    if (e.name == spec) return &e;
    for (const std::string& a : e.aliases)
      if (a == spec) return &e;
  }
  return nullptr;
}

const PolicyInfo& PolicyRegistry::at(const std::string& spec) const {
  if (const PolicyInfo* e = find(spec)) return *e;

  // Family exists but the variant does not: list that family's variants.
  const std::string family = spec.substr(0, spec.find(':'));
  std::vector<std::string> variants;
  for (const PolicyInfo& e : entries_)
    if (e.family() == family) variants.push_back(e.name);
  if (!variants.empty()) {
    std::ostringstream msg;
    msg << "unknown variant in policy spec '" << spec << "'; family '"
        << family << "' provides:";
    for (const std::string& v : variants) msg << ' ' << v;
    OSP_REQUIRE_MSG(false, msg.str());
  }

  OSP_REQUIRE_MSG(false, "unknown policy '"
                             << spec << "'; registered policies:\n"
                             << render_catalog());
  // Unreachable; OSP_REQUIRE_MSG throws.
  static PolicyInfo dummy;
  return dummy;
}

std::unique_ptr<OnlineAlgorithm> PolicyRegistry::make(const std::string& spec,
                                                      Rng rng) const {
  return at(spec).make(rng);
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const PolicyInfo& e : entries_) out.push_back(e.name);
  return out;
}

std::string PolicyRegistry::render_catalog() const {
  std::size_t width = 0;
  for (const PolicyInfo& e : entries_)
    width = std::max(width, e.name.size());
  std::ostringstream os;
  for (const PolicyInfo& e : entries_) {
    os << "  " << e.name
       << std::string(width - e.name.size() + 2, ' ') << e.description
       << '\n';
  }
  return os.str();
}

std::string PolicyRegistry::render_markdown() const {
  std::vector<std::vector<std::string>> rows;
  for (const PolicyInfo& e : entries_)
    rows.push_back(
        {'`' + e.name + '`', e.description, detail::code_list(e.aliases)});
  return detail::markdown_table({"spec", "description", "aliases"}, rows);
}

PolicyRegistry& PolicyRegistry_instance() {
  // Function-local static: safe to use from the registrar constructors,
  // which run during static initialization of other translation units.
  static PolicyRegistry registry;
  return registry;
}

PolicyRegistry& policies() {
  // Referencing the anchors (not their return values) forces the linker
  // to include the registering objects; the calls themselves are no-ops.
  link_randpr_policies();
  link_baseline_policies();
  return PolicyRegistry_instance();
}

PolicyRegistrar::PolicyRegistrar(PolicyInfo info) {
  PolicyRegistry_instance().add(std::move(info));
}

}  // namespace osp::api
