// Session — the run facade every experiment entry point goes through.
//
// A Session bundles the shared multi-threaded BatchRunner with a fan-out
// of attached ResultSinks: benches and the CLI build rows once and
// emit() them to every sink (console table, BENCH_*.json, …).  The
// measure helpers preserve the seed repo's exact per-trial Rng streams
// (trial t plays make(master.split(t)) on the flat engine), so numbers
// printed through a Session are bit-identical to the historical serial
// loops at any thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/policy_registry.hpp"
#include "api/result_sink.hpp"
#include "core/game.hpp"
#include "core/instance.hpp"
#include "engine/batch_runner.hpp"
#include "stats/summary.hpp"

namespace osp::api {

class Session {
 public:
  /// Uses the process-wide shared runner (hardware threads, OSP_THREADS).
  Session();
  explicit Session(const engine::BatchRunner& runner);

  const engine::BatchRunner& runner() const { return *runner_; }
  std::size_t threads() const { return runner_->num_threads(); }

  /// Attaches a sink; every subsequent emit() fans out to it.  The sink
  /// must outlive the session's emits.
  void attach(ResultSink& sink);
  void emit(const Row& row);
  /// Closes every attached sink (JSON documents get finished).
  void close_sinks();

  /// Mean benefit (with CI) of `make(master.split(t))` over `trials`
  /// independent flat-engine runs — the historical measure_randpr/measure
  /// loop, batched across worker threads.
  RunningStat measure(const Instance& inst, const PolicyFactory& make,
                      Rng& master, int trials) const;

  /// measure() with the policy resolved through the registry.
  RunningStat measure(const Instance& inst, const std::string& policy_spec,
                      Rng& master, int trials) const;

  /// Factories that own their Rng splitting (hash families seeded per
  /// trial, …): invoked serially in trial order, plays batched.
  RunningStat measure_serial(
      const Instance& inst,
      const std::function<std::unique_ptr<OnlineAlgorithm>(std::uint64_t)>&
          make_alg,
      int trials) const;

  /// Runs an (instances × policies × trials) grid on the runner and emits
  /// one row per cell to the attached sinks:
  ///   {instance, policy, trials, benefit_mean, benefit_ci95,
  ///    decisions_mean, elements}.
  /// `instance_labels` (optional) names the rows; defaults to indices.
  /// Returns the cells in row-major (instance, policy) order.  A grid
  /// with a cell slice (spec.cell_begin / cell_end — what a shard runs)
  /// executes and emits only those cells, in the same canonical order
  /// and with the exact values the full run would produce for them.
  std::vector<engine::CellStats> run_grid(
      const engine::GridSpec& spec,
      const std::vector<std::string>& instance_labels = {});

 private:
  const engine::BatchRunner* runner_;
  std::vector<ResultSink*> sinks_;
};

/// Turns a registry entry into an engine grid column.
engine::AlgSpec grid_column(const PolicyInfo& info);

}  // namespace osp::api
