#include "api/session.hpp"

#include "engine/trial.hpp"
#include "util/require.hpp"

namespace osp::api {

Session::Session() : runner_(&engine::shared_runner()) {}

Session::Session(const engine::BatchRunner& runner) : runner_(&runner) {}

void Session::attach(ResultSink& sink) { sinks_.push_back(&sink); }

void Session::emit(const Row& row) {
  for (ResultSink* sink : sinks_) sink->write(row);
}

void Session::close_sinks() {
  for (ResultSink* sink : sinks_) sink->close();
}

RunningStat Session::measure(const Instance& inst, const PolicyFactory& make,
                             Rng& master, int trials) const {
  OSP_REQUIRE_MSG(make != nullptr, "measure() needs a policy factory");
  // Per-trial Rngs are split serially up front — the seed repo's exact
  // stream order — and only the plays fan out across workers.
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t)
    rngs.push_back(master.split(static_cast<std::uint64_t>(t)));

  auto benefits = runner_->map<Weight>(
      static_cast<std::size_t>(trials),
      [&](std::size_t t, engine::TrialContext& ctx) {
        auto alg = make(rngs[t]);
        return play_flat(inst, *alg, ctx.scratch).benefit;
      });

  RunningStat stat;
  for (Weight b : benefits) stat.add(b);
  return stat;
}

RunningStat Session::measure(const Instance& inst,
                             const std::string& policy_spec, Rng& master,
                             int trials) const {
  return measure(inst, policies().at(policy_spec).make, master, trials);
}

RunningStat Session::measure_serial(
    const Instance& inst,
    const std::function<std::unique_ptr<OnlineAlgorithm>(std::uint64_t)>&
        make_alg,
    int trials) const {
  // Factories often close over a shared Rng and split it per trial, so
  // they run serially in trial order (exactly as the seed loops did).
  std::vector<std::unique_ptr<OnlineAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t)
    algs.push_back(make_alg(static_cast<std::uint64_t>(t)));

  auto benefits = runner_->map<Weight>(
      static_cast<std::size_t>(trials),
      [&](std::size_t t, engine::TrialContext& ctx) {
        return play_flat(inst, *algs[t], ctx.scratch).benefit;
      });
  RunningStat stat;
  for (Weight b : benefits) stat.add(b);
  return stat;
}

std::vector<engine::CellStats> Session::run_grid(
    const engine::GridSpec& spec,
    const std::vector<std::string>& instance_labels) {
  std::vector<engine::CellStats> cells = engine::run_grid(*runner_, spec);
  // Rows follow the canonical row-major cell order over the executed
  // slice; a sharded slice emits exactly the rows the full run would
  // emit for those cells (same labels, same aggregates), which is what
  // makes merged shards bit-identical to the unsharded artifact.
  const std::size_t num_algs = spec.algorithms.size();
  const std::size_t total_cells = spec.instances.size() * num_algs;
  const std::size_t begin = spec.cell_begin;
  const std::size_t end = spec.cell_end == engine::GridSpec::kAllCells
                              ? total_cells
                              : spec.cell_end;
  for (std::size_t c = begin; c < end; ++c) {
    const std::size_t i = c / num_algs;
    const std::size_t a = c % num_algs;
    const std::string label = i < instance_labels.size()
                                  ? instance_labels[i]
                                  : "instance" + std::to_string(i);
    const engine::CellStats& cell = cells[c - begin];
    Row row;
    row.add("instance", label)
        .add("policy", spec.algorithms[a].name)
        .add("trials", cell.benefit.count())
        .add("benefit_mean", cell.benefit.mean())
        .add("benefit_ci95", cell.benefit.ci95_halfwidth())
        .add("decisions_mean", cell.decisions.mean())
        .add("elements", cell.elements);
    emit(row);
  }
  return cells;
}

engine::AlgSpec grid_column(const PolicyInfo& info) {
  return engine::AlgSpec{info.name, info.make};
}

}  // namespace osp::api
