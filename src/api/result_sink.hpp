// ResultSink — pluggable row consumers for experiment output.
//
// A Row is an ordered list of (key, value) cells, typed exactly like the
// JsonWriter scalar overloads (bool / signed / unsigned / double /
// string), so replaying a row through a sink reproduces what a bench
// hand-driving the writer used to emit, byte for byte.  Two sinks ship:
//
//   JsonSink   writes BENCH_<name>.json in the shared schema
//              ({"bench", "threads", "results": [row…]}) — the ONE writer
//              behind every perf-trajectory artifact (the seed repo had
//              seven hand-rolled copies);
//   TableSink  renders rows as an aligned console table for the CLI.
//
// Sinks receive rows either directly (sink.write(row)) or fanned out
// through a Session (session.emit(row) → every attached sink).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "stats/json.hpp"
#include "stats/table.hpp"

namespace osp::api {

/// One experiment-result row: ordered, heterogeneously typed cells.
struct Row {
  using Value =
      std::variant<bool, std::int64_t, std::uint64_t, double, std::string>;
  std::vector<std::pair<std::string, Value>> cells;

  Row& add(const std::string& key, bool v) {
    cells.emplace_back(key, Value(v));
    return *this;
  }
  Row& add(const std::string& key, double v) {
    cells.emplace_back(key, Value(v));
    return *this;
  }
  Row& add(const std::string& key, const std::string& v) {
    cells.emplace_back(key, Value(v));
    return *this;
  }
  Row& add(const std::string& key, const char* v) {
    return add(key, std::string(v));
  }
  /// Any integer type, preserving signedness (bool excluded: own overload).
  template <class T,
            typename std::enable_if<std::is_integral<T>::value &&
                                        !std::is_same<T, bool>::value,
                                    int>::type = 0>
  Row& add(const std::string& key, T v) {
    if (std::is_signed<T>::value)
      cells.emplace_back(key, Value(static_cast<std::int64_t>(v)));
    else
      cells.emplace_back(key, Value(static_cast<std::uint64_t>(v)));
    return *this;
  }
};

/// Abstract row consumer.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void write(const Row& row) = 0;
  /// Finishes the sink's output; further writes are invalid.  Idempotent.
  virtual void close() {}
};

/// Streams rows into BENCH_<name>.json (working directory) in the schema
/// scripts/check_bench_json.py validates.  `threads` records the batch
/// runner's worker count; pass Session::threads().  A sink closed with
/// zero rows still finishes a complete, valid document
/// ({"…","results":[]}) — an empty grid slice must never leave a
/// malformed body behind.
class JsonSink final : public ResultSink {
 public:
  JsonSink(const std::string& name, std::size_t threads);
  /// Test/custom-stream form: same document, caller-owned stream.
  JsonSink(std::ostream& os, const std::string& name, std::size_t threads);
  ~JsonSink() override;

  void write(const Row& row) override;
  void close() override;

 private:
  std::ofstream file_;   // unused by the custom-stream form
  JsonWriter writer_;
  bool closed_ = false;
};

/// Accumulates rows and renders them as an aligned console table; columns
/// come from the first row's keys (later rows must match).
class TableSink final : public ResultSink {
 public:
  /// `precision` formats double cells (fmt(v, precision)).
  explicit TableSink(int precision = 3) : precision_(precision) {}

  void write(const Row& row) override;
  bool empty() const { return table_ == nullptr; }
  void print(std::ostream& os) const;

 private:
  int precision_;
  std::vector<std::string> columns_;
  std::unique_ptr<Table> table_;
};

}  // namespace osp::api
