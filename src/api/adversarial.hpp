// Adversarial scenario cells + the offline-optimum denominator.
//
// The competitive-ratio dashboard (bench_adversarial → BENCH_adversarial.json)
// divides measured online benefit by an offline optimum.  This module is
// the one place that denominator is computed and cross-checked:
//
//  * build_adversarial_cell() compiles an adversarial/* ScenarioSpec into
//    its instance TOGETHER with the construction's planted witness
//    (σ^(k-1) for Theorem 3, the column witness of size t for the Section
//    4.2 warm-up, the ℓ³ planted solution for Lemma 9) and the paper's
//    bound-side value for the cell.  The witness is verified feasible and
//    its value verified equal to the documented bound before anything is
//    measured — a broken gadget fails loudly, not as a silently wrong
//    ratio.
//
//  * opt_denominator() upgrades the witness to the best denominator the
//    solvers can certify: exact branch & bound where m permits (opt_exact
//    = true), otherwise the witness value (opt_exact = false) with the LP
//    relaxation recorded as a certified upper bracket where the tableau
//    stays small enough.
#pragma once

#include <cstdint>
#include <vector>

#include "api/scenario.hpp"
#include "core/instance.hpp"
#include "util/rng.hpp"

namespace osp::api {

/// One adversarial grid cell: the instance plus its verified witness and
/// the paper's bound-side value.
struct AdversarialCell {
  Instance instance;
  std::vector<SetId> witness;  // feasible; value == witness_value (checked)
  double witness_value = 0;    // σ^(k-1) | t | ℓ³ per family
  double bound = 0;            // Thm3 σ^(k-1) | t/ln t | Thm2 expression
};

/// Compiles an adversarial spec (family kTheorem3, kWeakLb, or kLemma9)
/// into its cell.  The instance is the SAME one build_instance() yields
/// for the spec with an equal-state rng — this function additionally
/// surfaces the planted witness and verifies it (is_feasible + value ==
/// the documented bound).  Throws RequireError for other families or a
/// broken witness.
AdversarialCell build_adversarial_cell(const ScenarioSpec& spec, Rng& rng);

/// The denominator of a measured competitive ratio.
struct OptDenominator {
  double opt = 0;        // exact optimum when opt_exact, else witness value
  bool opt_exact = false;
  double lp_upper = 0;   // LP relaxation value; 0 when not computed
  std::uint64_t nodes = 0;  // B&B nodes explored (0 when B&B skipped)
};

/// Default ceiling on simplex rows (elements + sets) before lp_upper is
/// skipped: covers every theorem3 cell up to (sigma, k) = (4, 4) and the
/// warm-up gadget through t = 8 at single-digit milliseconds per solve.
constexpr std::size_t kDefaultLpRowLimit = 1100;

/// Computes the best certified denominator for `inst` given its verified
/// planted witness value: exact branch & bound for small set systems
/// (opt_exact = true, and opt >= witness is checked), the witness value
/// otherwise.  The LP upper bound is attached whenever the dense simplex
/// tableau has at most `lp_row_limit` rows — callers report it as the
/// certified bracket [opt, lp_upper] around the true optimum.  Pass a
/// smaller limit for families where the dense simplex is numerically
/// fragile (the Lemma 9 gadget past ell = 2 drives it to a nonsense
/// objective); any computed lp_upper below the denominator throws.
OptDenominator opt_denominator(const Instance& inst, double witness_value,
                               std::size_t lp_row_limit = kDefaultLpRowLimit);

}  // namespace osp::api
