// Shared markdown-table emitter behind the registries' render_markdown()
// methods.  docs/CATALOG.md is the concatenation of those tables and CI
// drift-gates it byte for byte, so there is exactly one place that
// decides the table format.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace osp::api::detail {

/// "| a | b | c |" rows under a header and a "| --- |" separator sized
/// from the header.
inline std::string markdown_table(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream os;
  auto line = [&os](const std::vector<std::string>& cells) {
    os << '|';
    for (const std::string& cell : cells) os << ' ' << cell << " |";
    os << '\n';
  };
  line(header);
  line(std::vector<std::string>(header.size(), "---"));
  for (const std::vector<std::string>& row : rows) line(row);
  return os.str();
}

/// "`a`, `b`" for the aliases/sweep columns; an em dash when empty.
inline std::string code_list(const std::vector<std::string>& items,
                             const char* separator = ", ") {
  if (items.empty()) return "—";
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += separator;
    out += '`' + items[i] + '`';
  }
  return out;
}

}  // namespace osp::api::detail
