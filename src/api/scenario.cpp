#include "api/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "design/lower_bounds.hpp"
#include "gen/schedule.hpp"
#include "util/require.hpp"

namespace osp::api {

std::size_t parse_size(const std::string& what, const std::string& text) {
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    OSP_REQUIRE_MSG(false, what << " expects a non-negative integer, got '"
                               << text << "'");
  }
  // Reject trailing junk ("12x") and negative numbers ("-3", which
  // stoull silently wraps).
  OSP_REQUIRE_MSG(consumed == text.size() &&
                      text.find('-') == std::string::npos,
                  what << " expects a non-negative integer, got '" << text
                       << "'");
  return static_cast<std::size_t>(value);
}

WeightModel weight_model_from(const std::string& name) {
  if (name == "unit") return WeightModel::unit();
  if (name == "uniform") return WeightModel::uniform(1, 10);
  if (name == "zipf") return WeightModel::zipf(1.2);
  if (name == "exp") return WeightModel::exponential(1.0);
  OSP_REQUIRE_MSG(false, "unknown weight model '" << name
                             << "' (known: unit uniform zipf exp)");
  return {};
}

ScenarioSpec& ScenarioSpec::set(const std::string& key,
                                const std::string& value) {
  const std::string what = "scenario parameter --" + key;
  if (key == "m") m = parse_size(what, value);
  else if (key == "n") n = parse_size(what, value);
  else if (key == "k") k = parse_size(what, value);
  else if (key == "sigma") sigma = parse_size(what, value);
  else if (key == "cap-max") cap_max = parse_size(what, value);
  else if (key == "ell") ell = parse_size(what, value);
  else if (key == "t") t = parse_size(what, value);
  else if (key == "streams") streams = parse_size(what, value);
  else if (key == "frames") frames = parse_size(what, value);
  else if (key == "packets") packets = parse_size(what, value);
  else if (key == "switches") switches = parse_size(what, value);
  else if (key == "capacity")
    capacity = static_cast<Capacity>(parse_size(what, value));
  else if (key == "service-rate")
    service_rate = static_cast<Capacity>(parse_size(what, value));
  else if (key == "weights") weights = weight_model_from(value);
  else
    OSP_REQUIRE_MSG(false,
                    "unknown scenario parameter '"
                        << key
                        << "' (known: m n k sigma cap-max ell t streams "
                           "frames packets switches capacity service-rate "
                           "weights)");
  return *this;
}

Instance build_instance(const ScenarioSpec& spec, Rng& rng) {
  switch (spec.family) {
    case ScenarioFamily::kRandom:
      return random_instance(spec.m, spec.n, spec.k, spec.weights, rng);
    case ScenarioFamily::kRandomCapacity:
      return random_capacity_instance(spec.m, spec.n, spec.k, spec.cap_max,
                                      spec.weights, rng);
    case ScenarioFamily::kRegular:
      return regular_instance(spec.m, spec.k, spec.sigma, spec.weights, rng);
    case ScenarioFamily::kFixedLoad:
      return fixed_load_instance(spec.m, spec.n, spec.sigma, spec.weights,
                                 rng);
    case ScenarioFamily::kVideo:
      return build_video(spec, rng).schedule.to_instance(spec.capacity);
    case ScenarioFamily::kMultihop:
      return build_multihop(spec, rng).instance;
    case ScenarioFamily::kWeakLb:
      return build_weak_lb_instance(spec.t, rng).instance;
    case ScenarioFamily::kLemma9:
      return build_lemma9_instance(spec.ell, rng).instance;
  }
  OSP_REQUIRE_MSG(false, "scenario '" << spec.name << "' has an unknown family");
  return InstanceBuilder{}.build();
}

VideoWorkload build_video(const ScenarioSpec& spec, Rng& rng) {
  OSP_REQUIRE_MSG(spec.family == ScenarioFamily::kVideo,
                  "scenario '" << spec.name << "' is not a video workload");
  VideoParams params;
  params.num_streams = spec.streams;
  params.frames_per_stream = spec.frames;
  return make_video_workload(params, rng);
}

MultiHopWorkload build_multihop(const ScenarioSpec& spec, Rng& rng) {
  OSP_REQUIRE_MSG(spec.family == ScenarioFamily::kMultihop,
                  "scenario '" << spec.name
                               << "' is not a multihop workload");
  MultiHopParams params;
  params.num_packets = spec.packets;
  params.num_switches = spec.switches;
  return make_multihop_workload(params, rng);
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  OSP_REQUIRE_MSG(!spec.name.empty(), "scenario registered without a name");
  OSP_REQUIRE_MSG(find(spec.name) == nullptr,
                  "duplicate scenario registration '" << spec.name << "'");
  entries_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const ScenarioSpec& s : entries_)
    if (s.name == name) return &s;
  return nullptr;
}

const ScenarioSpec& ScenarioRegistry::at(const std::string& name) const {
  const ScenarioSpec* s = find(name);
  OSP_REQUIRE_MSG(s != nullptr, "unknown scenario '"
                                    << name << "'; registered scenarios:\n"
                                    << render_catalog());
  return *s;
}

std::string ScenarioRegistry::render_catalog() const {
  std::size_t width = 0;
  for (const ScenarioSpec& s : entries_)
    width = std::max(width, s.name.size());
  std::ostringstream os;
  for (const ScenarioSpec& s : entries_)
    os << "  " << s.name << std::string(width - s.name.size() + 2, ' ')
       << s.description << '\n';
  return os.str();
}

namespace {

ScenarioSpec engine_shape(const char* name, const char* label, std::size_t m,
                          std::size_t n, std::size_t k) {
  ScenarioSpec s;
  s.name = name;
  s.label = label;
  s.description = "engine-throughput ladder: random m=" +
                  std::to_string(m) + " n=" + std::to_string(n) +
                  " k=" + std::to_string(k);
  s.family = ScenarioFamily::kRandom;
  s.m = m;
  s.n = n;
  s.k = k;
  s.weights = WeightModel::unit();
  s.engine_shape = true;
  return s;
}

ScenarioRegistry build_catalog() {
  ScenarioRegistry reg;

  {  // The seed CLI's generator families, defaults preserved.
    ScenarioSpec s;
    s.name = "random";
    s.description = "m sets of size k over n slots (Theorem 1/5 family)";
    s.family = ScenarioFamily::kRandom;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "regular";
    s.description = "bi-regular: size k and load sigma (Corollary 7 family)";
    s.family = ScenarioFamily::kRegular;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "fixedload";
    s.description = "uniform load sigma, varying sizes (Theorem 6 family)";
    s.family = ScenarioFamily::kFixedLoad;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "capacity";
    s.description = "random layout, capacities U[1, cap-max] (Theorem 4)";
    s.family = ScenarioFamily::kRandomCapacity;
    s.m = 22;
    s.n = 20;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "video";
    s.description = "GOP video streams through a bottleneck link";
    s.family = ScenarioFamily::kVideo;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "multihop";
    s.description = "packets crossing a switch pipeline ((time, hop) slots)";
    s.family = ScenarioFamily::kMultihop;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "weaklb";
    s.description = "Section 4.2 warm-up gadget (t^2 sets)";
    s.family = ScenarioFamily::kWeakLb;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "lemma9";
    s.description = "Figure 1 / Lemma 9 lower-bound distribution";
    s.family = ScenarioFamily::kLemma9;
    reg.add(s);
  }

  // The engine-throughput ladder (bench_perf's workload table).  Labels
  // are the BENCH_engine.json row keys and must stay stable across PRs —
  // the perf trajectory is keyed on them.  The last entry is the largest
  // workload the acceptance gates are measured on: sustained ~sigma=16
  // congestion over a quarter-million arrivals.
  reg.add(engine_shape("engine/legacy-64", "legacy/64", 64, 128, 4));
  reg.add(engine_shape("engine/legacy-1024", "legacy/1024", 1024, 2048, 4));
  reg.add(engine_shape("engine/legacy-4096", "legacy/4096", 4096, 8192, 4));
  reg.add(engine_shape("engine/router-32k", "router/32k", 1024, 32768, 64));
  reg.add(
      engine_shape("engine/router-128k", "router/128k", 4096, 131072, 64));
  reg.add(engine_shape("engine/overload-256k", "overload/256k", 8192, 262144,
                       512));

  {  // bench_router's big buffered scenario (sections (d)/(e)).
    ScenarioSpec s;
    s.name = "router/overload";
    s.description =
        "64 video streams, ~1M packets, link at ~1/3 of offered load";
    s.family = ScenarioFamily::kVideo;
    s.streams = 64;
    s.frames = 6720;
    s.service_rate = 32;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "router/overload-smoke";
    s.description = "toy-size overload scenario for sanitized smoke runs";
    s.family = ScenarioFamily::kVideo;
    s.streams = 8;
    s.frames = 60;
    s.service_rate = 4;
    reg.add(s);
  }

  return reg;
}

}  // namespace

ScenarioRegistry& scenarios() {
  static ScenarioRegistry registry = build_catalog();
  return registry;
}

std::vector<const ScenarioSpec*> engine_shapes() {
  std::vector<const ScenarioSpec*> out;
  for (const ScenarioSpec& s : scenarios().entries())
    if (s.engine_shape) out.push_back(&s);
  return out;
}

}  // namespace osp::api
