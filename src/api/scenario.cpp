#include "api/scenario.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>

#include "algos/baselines.hpp"
#include "api/markdown.hpp"
#include "design/lower_bounds.hpp"
#include "gen/schedule.hpp"
#include "util/require.hpp"

namespace osp::api {

namespace {

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Ceiling on cells a single lo..hi[..step] range may expand to: a typo'd
/// bound must fail as a RequireError, not materialize billions of cells.
constexpr std::size_t kMaxRangeCells = 10000;

/// Ceiling on a spec's whole expanded grid — the cartesian product of
/// several in-bounds axes must not defeat the per-range cap above.
constexpr std::size_t kMaxGridCells = 100000;

/// Appends one value-list element to `out`: either a literal value or an
/// inclusive lo..hi[..step] integer range.
void append_sweep_element(const std::string& key, const std::string& element,
                          std::vector<std::vector<std::string>>& out) {
  const std::size_t dots = element.find("..");
  if (dots == std::string::npos) {
    out.push_back({element});
    return;
  }
  const std::string what = "sweep range for '" + key + "'";
  const std::string rest = element.substr(dots + 2);
  const std::size_t dots2 = rest.find("..");
  const std::size_t lo = parse_size(what, element.substr(0, dots));
  const std::size_t hi = parse_size(
      what, dots2 == std::string::npos ? rest : rest.substr(0, dots2));
  const std::size_t step =
      dots2 == std::string::npos ? 1 : parse_size(what, rest.substr(dots2 + 2));
  OSP_REQUIRE_MSG(hi >= lo, what << " needs lo <= hi, got '" << element << "'");
  OSP_REQUIRE_MSG(step >= 1, what << " needs a step >= 1, got '" << element
                                  << "'");
  // Count-based loop: immune to v += step wrapping past hi, and bounded
  // so a typo'd range errors instead of OOMing.
  const std::size_t count = (hi - lo) / step + 1;
  OSP_REQUIRE_MSG(count <= kMaxRangeCells,
                  what << " would expand to " << count << " cells (max "
                       << kMaxRangeCells << "); got '" << element << "'");
  for (std::size_t i = 0; i < count; ++i)
    out.push_back({std::to_string(lo + i * step)});
}

}  // namespace

std::size_t parse_size(const std::string& what, const std::string& text) {
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    OSP_REQUIRE_MSG(false, what << " expects a non-negative integer, got '"
                               << text << "'");
  }
  // Reject trailing junk ("12x") and negative numbers ("-3", which
  // stoull silently wraps).
  OSP_REQUIRE_MSG(consumed == text.size() &&
                      text.find('-') == std::string::npos,
                  what << " expects a non-negative integer, got '" << text
                       << "'");
  return static_cast<std::size_t>(value);
}

WeightModel weight_model_from(const std::string& name) {
  if (name == "unit") return WeightModel::unit();
  if (name == "uniform") return WeightModel::uniform(1, 10);
  if (name == "zipf") return WeightModel::zipf(1.2);
  if (name == "exp") return WeightModel::exponential(1.0);
  OSP_REQUIRE_MSG(false, "unknown weight model '" << name
                             << "' (known: unit uniform zipf exp)");
  return {};
}

SweepAxis sweep_axis(const std::string& key, const std::string& values) {
  SweepAxis axis;
  axis.keys = {key};
  std::istringstream is(values);
  std::string element;
  while (std::getline(is, element, ',')) {
    element = trim(element);
    OSP_REQUIRE_MSG(!element.empty(), "sweep axis for '"
                                          << key
                                          << "' has an empty value in '"
                                          << values << "'");
    append_sweep_element(key, element, axis.values);
  }
  OSP_REQUIRE_MSG(!axis.values.empty(),
                  "sweep axis for '" << key << "' has no values");
  return axis;
}

SweepAxis sweep_axis(std::vector<std::string> keys,
                     std::vector<std::vector<std::string>> cells,
                     std::vector<std::string> labels) {
  SweepAxis axis;
  axis.keys = std::move(keys);
  axis.values = std::move(cells);
  axis.labels = std::move(labels);
  return axis;
}

std::vector<ScenarioSpec> expand(const ScenarioSpec& spec) {
  // Validate every axis up front so a malformed declaration fails before
  // any cell is emitted.
  std::vector<std::string> seen_keys;
  for (const SweepAxis& axis : spec.sweep) {
    for (const std::string& key : axis.keys) {
      // A key swept twice would silently square the grid (and the later
      // axis would clobber the earlier one's values inside each cell).
      OSP_REQUIRE_MSG(std::find(seen_keys.begin(), seen_keys.end(), key) ==
                          seen_keys.end(),
                      "scenario '" << spec.name << "' sweeps '" << key
                                   << "' in more than one axis");
      seen_keys.push_back(key);
    }
  }
  for (const SweepAxis& axis : spec.sweep) {
    OSP_REQUIRE_MSG(!axis.keys.empty(), "scenario '" << spec.name
                                                     << "' has a sweep axis "
                                                        "without keys");
    OSP_REQUIRE_MSG(axis.cells() >= 1, "scenario '"
                                           << spec.name
                                           << "' has a sweep axis over '"
                                           << axis.keys.front()
                                           << "' with no cells");
    for (const std::vector<std::string>& cell : axis.values)
      OSP_REQUIRE_MSG(cell.size() == axis.keys.size(),
                      "scenario '" << spec.name << "' sweep axis over '"
                                   << axis.keys.front() << "' zips "
                                   << axis.keys.size()
                                   << " keys but a cell carries "
                                   << cell.size() << " values");
    OSP_REQUIRE_MSG(axis.labels.empty() ||
                        axis.labels.size() == axis.cells(),
                    "scenario '" << spec.name << "' sweep axis over '"
                                 << axis.keys.front() << "' has "
                                 << axis.labels.size() << " labels for "
                                 << axis.cells() << " cells");
  }

  std::size_t total = 1;
  for (const SweepAxis& axis : spec.sweep) {
    // Multiply toward the cap without overflowing.
    OSP_REQUIRE_MSG(axis.cells() <= kMaxGridCells / total,
                    "scenario '" << spec.name
                                 << "' would expand to more than "
                                 << kMaxGridCells << " cells");
    total *= axis.cells();
  }

  std::vector<ScenarioSpec> out;
  ScenarioSpec base = spec;
  base.sweep.clear();
  out.push_back(std::move(base));
  // Cartesian product: each axis multiplies the grid built so far, so the
  // first-declared axis varies slowest (outermost loop order).
  for (const SweepAxis& axis : spec.sweep) {
    std::vector<ScenarioSpec> next;
    next.reserve(out.size() * axis.cells());
    for (const ScenarioSpec& partial : out) {
      for (std::size_t c = 0; c < axis.cells(); ++c) {
        ScenarioSpec cell = partial;
        for (std::size_t i = 0; i < axis.keys.size(); ++i)
          cell.set(axis.keys[i], axis.values[c][i]);
        if (!axis.labels.empty()) {
          cell.label = axis.labels[c];
        } else {
          std::string label = cell.display_label();
          for (std::size_t i = 0; i < axis.keys.size(); ++i)
            label += " " + axis.keys[i] + "=" + axis.values[c][i];
          cell.label = label;
        }
        next.push_back(std::move(cell));
      }
    }
    out = std::move(next);
  }
  return out;
}

ScenarioSpec ScenarioSpec::from_stream(std::istream& in,
                                       const std::string& origin) {
  ScenarioSpec spec;
  bool have_base = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    OSP_REQUIRE_MSG(eq != std::string::npos,
                    origin << ":" << lineno << ": expected 'key = value', got '"
                           << line << "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    OSP_REQUIRE_MSG(!key.empty(),
                    origin << ":" << lineno << ": missing key before '='");

    // Prefix every downstream parse error (unknown key, bad value, bad
    // sweep range) with the config location so a shared file fails loudly
    // AND findably.
    try {
      if (key == "scenario") {
        OSP_REQUIRE_MSG(!have_base,
                        "'scenario' must appear exactly once, first");
        spec = scenarios().at(value);
        have_base = true;
        continue;
      }
      OSP_REQUIRE_MSG(have_base,
                      "the first directive must be 'scenario = <name>' "
                      "naming the registry entry to start from");
      if (key == "name") {
        spec.name = value;
      } else if (key == "label") {
        spec.label = value;
      } else if (key == "trials") {
        const std::size_t trials = parse_size("config key trials", value);
        OSP_REQUIRE_MSG(trials >= 1 && trials <= 1000000000,
                        "config key trials must be in [1, 1e9], got "
                            << trials);
        spec.default_trials = static_cast<int>(trials);
      } else if (key.rfind("sweep.", 0) == 0) {
        const std::string axis_key = key.substr(6);
        OSP_REQUIRE_MSG(!axis_key.empty(),
                        "sweep directive needs a key: 'sweep.<key> = …'");
        for (const SweepAxis& existing : spec.sweep)
          for (const std::string& k : existing.keys)
            OSP_REQUIRE_MSG(k != axis_key,
                            "'" << axis_key
                                << "' is already swept (by this config or "
                                   "the base scenario)");
        SweepAxis axis = sweep_axis(axis_key, value);
        // Probe every value now so a typo'd key OR value fails on its
        // own line, not at expand() time far from the file.
        ScenarioSpec probe = spec;
        for (const std::vector<std::string>& cell : axis.values)
          probe.set(axis_key, cell.front());
        spec.vary(std::move(axis));
      } else {
        // Mirror the CLI-flag rule: a plain override of a key the base
        // scenario sweeps would be silently clobbered by the axis values
        // at expand() time.
        for (const SweepAxis& existing : spec.sweep)
          for (const std::string& k : existing.keys)
            OSP_REQUIRE_MSG(k != key,
                            "'" << key
                                << "' is swept by the base scenario; set "
                                   "sweep."
                                << key << " instead");
        spec.set(key, value);
      }
    } catch (const RequireError& e) {
      // Re-thrown with the config location composed in directly — a
      // second OSP_REQUIRE wrap would bury the message under another
      // "requirement failed at scenario.cpp:…" preamble.
      throw RequireError(origin + ":" + std::to_string(lineno) + ": " +
                         e.what());
    }
  }
  OSP_REQUIRE_MSG(have_base, origin
                                 << ": empty config — the first directive "
                                    "must be 'scenario = <name>'");
  return spec;
}

ScenarioSpec ScenarioSpec::from_file(const std::string& path) {
  std::ifstream in(path);
  OSP_REQUIRE_MSG(in.good(),
                  "cannot open scenario config '" << path << "'");
  return from_stream(in, path);
}

ScenarioSpec& ScenarioSpec::set(const std::string& key,
                                const std::string& value) {
  const std::string what = "scenario parameter --" + key;
  if (key == "m") m = parse_size(what, value);
  else if (key == "n") n = parse_size(what, value);
  else if (key == "k") k = parse_size(what, value);
  else if (key == "sigma") sigma = parse_size(what, value);
  else if (key == "cap-max") cap_max = parse_size(what, value);
  else if (key == "ell") ell = parse_size(what, value);
  else if (key == "t") t = parse_size(what, value);
  else if (key == "streams") streams = parse_size(what, value);
  else if (key == "frames") frames = parse_size(what, value);
  else if (key == "packets") packets = parse_size(what, value);
  else if (key == "switches") switches = parse_size(what, value);
  else if (key == "capacity")
    capacity = static_cast<Capacity>(parse_size(what, value));
  else if (key == "service-rate")
    service_rate = static_cast<Capacity>(parse_size(what, value));
  else if (key == "buffer") buffer = parse_size(what, value);
  else if (key == "links") links = parse_size(what, value);
  else if (key == "window") window = parse_size(what, value);
  else if (key == "weights") weights = weight_model_from(value);
  else
    OSP_REQUIRE_MSG(false,
                    "unknown scenario parameter '"
                        << key
                        << "' (known: m n k sigma cap-max ell t streams "
                           "frames packets switches capacity service-rate "
                           "buffer links window weights)");
  return *this;
}

Instance build_instance(const ScenarioSpec& spec, Rng& rng) {
  switch (spec.family) {
    case ScenarioFamily::kRandom:
      return random_instance(spec.m, spec.n, spec.k, spec.weights, rng);
    case ScenarioFamily::kRandomCapacity:
      return random_capacity_instance(spec.m, spec.n, spec.k, spec.cap_max,
                                      spec.weights, rng);
    case ScenarioFamily::kRegular:
      return regular_instance(spec.m, spec.k, spec.sigma, spec.weights, rng);
    case ScenarioFamily::kFixedLoad:
      return fixed_load_instance(spec.m, spec.n, spec.sigma, spec.weights,
                                 rng);
    case ScenarioFamily::kVideo:
      return build_video(spec, rng).schedule.to_instance(spec.capacity);
    case ScenarioFamily::kMultihop:
      return build_multihop(spec, rng).instance;
    case ScenarioFamily::kWeakLb:
      return build_weak_lb_instance(spec.t, rng).instance;
    case ScenarioFamily::kLemma9:
      return build_lemma9_instance(spec.ell, rng).instance;
    case ScenarioFamily::kTheorem3: {
      // The Theorem 3 adversary is adaptive: the instance depends on the
      // policy it plays against.  As a GRID family the transcript is
      // pinned to the canonical greedy-first victim (fully deterministic,
      // no rng draws), so every policy in a sweep replays the same
      // oblivious transcript and shard slices stay bit-identical.  The
      // per-policy adaptive runs live in bench_adversarial.
      GreedyFirst victim;
      return run_theorem3_adversary(victim, spec.sigma, spec.k).transcript;
    }
  }
  OSP_REQUIRE_MSG(false, "scenario '" << spec.name << "' has an unknown family");
  return InstanceBuilder{}.build();
}

bool affects_instance(const std::string& key, ScenarioFamily family) {
  auto any_of = [&key](std::initializer_list<const char*> keys) {
    for (const char* k : keys)
      if (key == k) return true;
    return false;
  };
  switch (family) {
    case ScenarioFamily::kRandom:
      return any_of({"m", "n", "k", "weights"});
    case ScenarioFamily::kRandomCapacity:
      return any_of({"m", "n", "k", "cap-max", "weights"});
    case ScenarioFamily::kRegular:
      return any_of({"m", "k", "sigma", "weights"});
    case ScenarioFamily::kFixedLoad:
      return any_of({"m", "n", "sigma", "weights"});
    case ScenarioFamily::kVideo:
      return any_of({"streams", "frames", "capacity"});
    case ScenarioFamily::kMultihop:
      return any_of({"packets", "switches"});
    case ScenarioFamily::kWeakLb:
      return any_of({"t"});
    case ScenarioFamily::kLemma9:
      return any_of({"ell"});
    case ScenarioFamily::kTheorem3:
      return any_of({"sigma", "k"});
  }
  return true;  // unknown family: stay quiet rather than mis-warn
}

VideoWorkload build_video(const ScenarioSpec& spec, Rng& rng) {
  OSP_REQUIRE_MSG(spec.family == ScenarioFamily::kVideo,
                  "scenario '" << spec.name << "' is not a video workload");
  VideoParams params;
  params.num_streams = spec.streams;
  params.frames_per_stream = spec.frames;
  return make_video_workload(params, rng);
}

MultiHopWorkload build_multihop(const ScenarioSpec& spec, Rng& rng) {
  OSP_REQUIRE_MSG(spec.family == ScenarioFamily::kMultihop,
                  "scenario '" << spec.name
                               << "' is not a multihop workload");
  MultiHopParams params;
  params.num_packets = spec.packets;
  params.num_switches = spec.switches;
  return make_multihop_workload(params, rng);
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  OSP_REQUIRE_MSG(!spec.name.empty(), "scenario registered without a name");
  OSP_REQUIRE_MSG(find(spec.name) == nullptr,
                  "duplicate scenario registration '" << spec.name << "'");
  entries_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(const std::string& name) const {
  for (const ScenarioSpec& s : entries_)
    if (s.name == name) return &s;
  return nullptr;
}

const ScenarioSpec& ScenarioRegistry::at(const std::string& name) const {
  const ScenarioSpec* s = find(name);
  OSP_REQUIRE_MSG(s != nullptr, "unknown scenario '"
                                    << name << "'; registered scenarios:\n"
                                    << render_catalog());
  return *s;
}

std::string ScenarioRegistry::render_catalog() const {
  std::size_t width = 0;
  for (const ScenarioSpec& s : entries_)
    width = std::max(width, s.name.size());
  std::ostringstream os;
  for (const ScenarioSpec& s : entries_)
    os << "  " << s.name << std::string(width - s.name.size() + 2, ' ')
       << s.description << '\n';
  return os.str();
}

namespace {

/// "sigma=2,3,4" for a single-key axis, "m,n,k=64/128/4;1024/2048/4;…"
/// for a zipped one — the catalog table's sweep column.
std::string axis_summary(const SweepAxis& axis) {
  std::ostringstream os;
  for (std::size_t i = 0; i < axis.keys.size(); ++i)
    os << (i ? "," : "") << axis.keys[i];
  os << '=';
  for (std::size_t c = 0; c < axis.cells(); ++c) {
    os << (c ? (axis.keys.size() > 1 ? ";" : ",") : "");
    for (std::size_t i = 0; i < axis.values[c].size(); ++i)
      os << (i ? "/" : "") << axis.values[c][i];
  }
  return os.str();
}

}  // namespace

std::string ScenarioRegistry::render_markdown() const {
  std::vector<std::vector<std::string>> rows;
  for (const ScenarioSpec& s : entries_) {
    std::vector<std::string> axes;
    for (const SweepAxis& axis : s.sweep) axes.push_back(axis_summary(axis));
    rows.push_back({'`' + s.name + '`', s.description,
                    detail::code_list(axes, " × ")});
  }
  return detail::markdown_table({"name", "description", "sweep"}, rows);
}

namespace {

ScenarioRegistry build_catalog() {
  ScenarioRegistry reg;

  {  // The seed CLI's generator families, defaults preserved.
    ScenarioSpec s;
    s.name = "random";
    s.description = "m sets of size k over n slots (Theorem 1/5 family)";
    s.family = ScenarioFamily::kRandom;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "regular";
    s.description = "bi-regular: size k and load sigma (Corollary 7 family)";
    s.family = ScenarioFamily::kRegular;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "fixedload";
    s.description = "uniform load sigma, varying sizes (Theorem 6 family)";
    s.family = ScenarioFamily::kFixedLoad;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "capacity";
    s.description = "random layout, capacities U[1, cap-max] (Theorem 4)";
    s.family = ScenarioFamily::kRandomCapacity;
    s.m = 22;
    s.n = 20;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "video";
    s.description = "GOP video streams through a bottleneck link";
    s.family = ScenarioFamily::kVideo;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "multihop";
    s.description = "packets crossing a switch pipeline ((time, hop) slots)";
    s.family = ScenarioFamily::kMultihop;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "weaklb";
    s.description = "Section 4.2 warm-up gadget (t^2 sets)";
    s.family = ScenarioFamily::kWeakLb;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "lemma9";
    s.description = "Figure 1 / Lemma 9 lower-bound distribution";
    s.family = ScenarioFamily::kLemma9;
    reg.add(s);
  }

  // ---------------------------------------------------------------
  // Declarative sweeps: the per-bench sweep loops as data.  The benches
  // iterate expand(scenarios().at(...)) instead of hand-rolled value
  // lists, so the swept values below ARE the committed BENCH_*.json row
  // keys — change them and the perf trajectory re-keys.

  // The engine-throughput ladder (bench_perf's workload table), one
  // zipped (m, n, k) axis.  The cell labels are the BENCH_engine.json
  // row keys and must stay stable across PRs — the perf trajectory is
  // keyed on them.  The last cell is the largest workload the
  // acceptance gates are measured on: sustained ~sigma=16 congestion
  // over a quarter-million arrivals.
  {
    ScenarioSpec s;
    s.name = "engine/ladder";
    s.description =
        "engine-throughput ladder: 6 random shapes up to m=8192 n=262144";
    s.family = ScenarioFamily::kRandom;
    s.m = 64;
    s.n = 128;
    s.k = 4;
    s.weights = WeightModel::unit();
    s.engine_shape = true;
    s.vary(sweep_axis({"m", "n", "k"},
                      {{"64", "128", "4"},
                       {"1024", "2048", "4"},
                       {"4096", "8192", "4"},
                       {"1024", "32768", "64"},
                       {"4096", "131072", "64"},
                       {"8192", "262144", "512"}},
                      {"legacy/64", "legacy/1024", "legacy/4096",
                       "router/32k", "router/128k", "overload/256k"}));
    reg.add(s);
  }

  // bench_uniform's three sweeps (E3: Theorems 5/6, Corollary 7).
  {
    ScenarioSpec s;
    s.name = "uniform/corollary7";
    s.description =
        "bi-regular sweep: k=3 fixed, sigma rising, n held at 24";
    s.family = ScenarioFamily::kRegular;
    s.m = 16;
    s.k = 3;
    s.sigma = 2;
    s.default_trials = 600;
    // m = 8·sigma keeps n = mk/sigma = 24 constant across the axis.
    s.vary(sweep_axis({"m", "sigma"}, {{"16", "2"},
                                       {"24", "3"},
                                       {"32", "4"},
                                       {"48", "6"},
                                       {"64", "8"},
                                       {"96", "12"}}));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "uniform/theorem5";
    s.description = "uniform size k rising, loads vary (random instances)";
    s.family = ScenarioFamily::kRandom;
    s.m = 24;
    s.n = 18;
    s.k = 2;
    s.default_trials = 600;
    s.vary(sweep_axis("k", "2,3,4,5"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "uniform/theorem6";
    s.description = "uniform load sigma rising, sizes vary";
    s.family = ScenarioFamily::kFixedLoad;
    s.m = 20;
    s.n = 30;
    s.sigma = 2;
    s.default_trials = 600;
    s.vary(sweep_axis("sigma", "2,3,4,6,8"));
    reg.add(s);
  }

  // bench_capacity's two sweeps (E6: Theorem 4).
  {
    ScenarioSpec s;
    s.name = "capacity/random";
    s.description = "capacities U[1, cap-max] for growing cap-max";
    s.family = ScenarioFamily::kRandomCapacity;
    s.m = 22;
    s.n = 20;
    s.k = 3;
    s.cap_max = 1;
    s.default_trials = 600;
    s.vary(sweep_axis("cap-max", "1,2,3,4,6,8"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "capacity/uniform";
    s.description = "fixed random layout, uniform capacity b rising";
    s.family = ScenarioFamily::kRandom;
    s.m = 24;
    s.n = 18;
    s.k = 3;
    s.default_trials = 600;
    s.vary(sweep_axis("capacity", "1..4"));
    reg.add(s);
  }

  // bench_router's sweeps (E7 sections (a), (b), (d)/(e)).
  {
    ScenarioSpec s;
    s.name = "router/unbuffered";
    s.description = "GOP video through an unbuffered link, streams rising";
    s.family = ScenarioFamily::kVideo;
    s.streams = 4;
    s.frames = 24;
    s.default_trials = 25;
    s.vary(sweep_axis("streams", "4,8,12"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "router/buffered";
    s.description = "10 video streams, buffer ladder 0..64 (open problem 2)";
    s.family = ScenarioFamily::kVideo;
    s.streams = 10;
    s.frames = 24;
    s.service_rate = 1;
    s.default_trials = 25;
    s.vary(sweep_axis("buffer", "0,2,4,8,16,32,64"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "router/buffered-smoke";
    s.description = "toy-size buffered ladder for sanitized smoke runs";
    s.family = ScenarioFamily::kVideo;
    s.streams = 10;
    s.frames = 24;
    s.service_rate = 1;
    s.default_trials = 4;
    s.vary(sweep_axis("buffer", "0,4,16"));
    reg.add(s);
  }
  {  // bench_router's big buffered scenario (sections (d)/(e)).
    ScenarioSpec s;
    s.name = "router/overload";
    s.description =
        "64 video streams, ~1M packets, link at ~1/3 of offered load";
    s.family = ScenarioFamily::kVideo;
    s.streams = 64;
    s.frames = 6720;
    s.service_rate = 32;
    s.buffer = 256;
    s.default_trials = 3;
    s.vary(sweep_axis("buffer", "256,1024,4096"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "router/overload-smoke";
    s.description = "toy-size overload scenario for sanitized smoke runs";
    s.family = ScenarioFamily::kVideo;
    s.streams = 8;
    s.frames = 60;
    s.service_rate = 4;
    s.buffer = 16;
    s.default_trials = 2;
    s.vary(sweep_axis("buffer", "16,64"));
    reg.add(s);
  }

  // The sustained serving runtime's workloads (bench_router section (f)
  // and `osp_cli bench --sustained`): one long deterministic run each,
  // not trial means — default_trials = 1 picks the seed stream.
  {
    ScenarioSpec s;
    s.name = "sustained/steady";
    s.description =
        "2048 streams over 8 links at ~1/3 offered load, ~4.8M packets";
    s.family = ScenarioFamily::kVideo;
    s.streams = 2048;
    s.frames = 900;
    s.links = 8;
    s.service_rate = 64;
    s.buffer = 1024;
    s.window = 256;
    s.default_trials = 1;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "sustained/ramp";
    s.description =
        "saturation ramp: 1024 streams over 4 links, service-rate rising "
        "through the knee";
    s.family = ScenarioFamily::kVideo;
    s.streams = 1024;
    s.frames = 300;
    s.links = 4;
    s.service_rate = 16;
    s.buffer = 512;
    s.window = 128;
    s.default_trials = 1;
    s.vary(sweep_axis("service-rate", "16,32,64,128,256"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "sustained/steady-smoke";
    s.description = "toy-size sustained run for sanitized smoke runs";
    s.family = ScenarioFamily::kVideo;
    s.streams = 32;
    s.frames = 40;
    s.links = 4;
    s.service_rate = 4;
    s.buffer = 32;
    s.window = 16;
    s.default_trials = 1;
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "sustained/ramp-smoke";
    s.description = "toy-size saturation ramp for sanitized smoke runs";
    s.family = ScenarioFamily::kVideo;
    s.streams = 16;
    s.frames = 30;
    s.links = 2;
    s.service_rate = 2;
    s.buffer = 16;
    s.window = 16;
    s.default_trials = 1;
    s.vary(sweep_axis("service-rate", "2,8"));
    reg.add(s);
  }

  // ----------------------------------------------------------------
  // Adversarial worst-case families (ROADMAP item 5): the theory half's
  // gadget constructions as first-class grid scenarios.  bench_adversarial
  // sweeps these to produce BENCH_adversarial.json (the competitive-ratio
  // dashboard, gated in scripts/check_bench_json.py), and bench_det_lb /
  // bench_rand_lb iterate the same cells for their console tables — the
  // swept values below ARE the dashboard's row keys.
  {
    ScenarioSpec s;
    s.name = "adversarial/theorem3";
    s.description =
        "Theorem 3 adaptive adversary (greedy-first transcript), "
        "(sigma, k) grid";
    s.family = ScenarioFamily::kTheorem3;
    s.sigma = 2;
    s.k = 2;
    s.default_trials = 300;  // bench_det_lb's randPr-control trial count
    s.vary(sweep_axis("sigma", "2,3,4"));
    s.vary(sweep_axis("k", "2,3,4"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "adversarial/theorem3-smoke";
    s.description = "two small Theorem 3 cells for CI smoke + shard probes";
    s.family = ScenarioFamily::kTheorem3;
    s.sigma = 2;
    s.k = 2;
    s.default_trials = 50;
    s.vary(sweep_axis({"sigma", "k"}, {{"2", "2"}, {"3", "2"}}));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "adversarial/weak-lb";
    s.description =
        "Section 4.2 warm-up gadget, t rising (ratio Omega(t/log t))";
    s.family = ScenarioFamily::kWeakLb;
    s.t = 4;
    s.default_trials = 40;  // bench_rand_lb's draw count per t
    s.vary(sweep_axis("t", "4,6,8,12,16,24"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "adversarial/weak-lb-smoke";
    s.description = "toy-size warm-up gadget cells for CI smoke runs";
    s.family = ScenarioFamily::kWeakLb;
    s.t = 4;
    s.default_trials = 8;
    s.vary(sweep_axis("t", "4,6"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "adversarial/lemma9";
    s.description =
        "Lemma 9 / Figure 1 distribution, prime-power ell rising";
    s.family = ScenarioFamily::kLemma9;
    s.ell = 2;
    s.default_trials = 12;  // bench_rand_lb's draw count per ell
    s.vary(sweep_axis("ell", "2,3,4,5"));
    reg.add(s);
  }
  {
    ScenarioSpec s;
    s.name = "adversarial/lemma9-smoke";
    s.description = "smallest Lemma 9 cells for CI smoke runs";
    s.family = ScenarioFamily::kLemma9;
    s.ell = 2;
    s.default_trials = 4;
    s.vary(sweep_axis("ell", "2,3"));
    reg.add(s);
  }

  // bench_theorem1's eight random shapes (E2), one zipped (m, n, k) axis;
  // the bench runs the expansion twice (unweighted, then weights U[1,8]).
  {
    ScenarioSpec s;
    s.name = "random/theorem1";
    s.description =
        "Theorem 1 ladder: 8 random shapes, k then density rising";
    s.family = ScenarioFamily::kRandom;
    s.m = 12;
    s.n = 30;
    s.k = 2;
    s.default_trials = 600;
    s.vary(sweep_axis({"m", "n", "k"},
                      {{"12", "30", "2"},
                       {"16", "30", "3"},
                       {"20", "30", "4"},
                       {"24", "30", "5"},
                       {"20", "16", "3"},
                       {"24", "12", "3"},
                       {"28", "10", "3"},
                       {"32", "8", "3"}}));
    reg.add(s);
  }

  // bench_ablation's (a,b,c) instance families as a weights axis.
  {
    ScenarioSpec s;
    s.name = "ablation/weights";
    s.description =
        "randPr priority-rule ablation shapes: m=24 k=3, weight model "
        "varying";
    s.family = ScenarioFamily::kRandom;
    s.m = 24;
    s.n = 20;
    s.k = 3;
    s.default_trials = 800;
    s.vary(sweep_axis("weights", "unit,uniform,zipf"));
    reg.add(s);
  }

  return reg;
}

}  // namespace

ScenarioRegistry& scenarios() {
  static ScenarioRegistry registry = build_catalog();
  return registry;
}

std::vector<ScenarioSpec> engine_shapes() {
  std::vector<ScenarioSpec> out;
  for (const ScenarioSpec& s : scenarios().entries()) {
    if (!s.engine_shape) continue;
    for (ScenarioSpec& cell : expand(s)) out.push_back(std::move(cell));
  }
  return out;
}

}  // namespace osp::api
