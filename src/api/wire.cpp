#include "api/wire.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "util/require.hpp"

namespace osp::api {

namespace {

std::string escape_wire_string(const std::string& s) {
  // Keys and payloads must stay on one line; everything else passes
  // through verbatim so the escaping is minimal and self-inverse.
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_wire_string(const std::string& s,
                                 const std::string& where) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    OSP_REQUIRE_MSG(i + 1 < s.size(),
                    where << ": string payload ends in a dangling '\\'");
    ++i;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default:
        OSP_REQUIRE_MSG(false, where << ": unknown string escape '\\"
                                     << s[i] << "'");
    }
  }
  return out;
}

std::int64_t parse_wire_i64(const std::string& text,
                            const std::string& where) {
  OSP_REQUIRE_MSG(!text.empty(), where << ": empty int64 payload");
  errno = 0;
  char* endp = nullptr;
  const long long v = std::strtoll(text.c_str(), &endp, 10);
  OSP_REQUIRE_MSG(errno == 0 && endp == text.c_str() + text.size(),
                  where << ": malformed int64 payload '" << text << "'");
  return static_cast<std::int64_t>(v);
}

std::uint64_t parse_wire_u64(const std::string& text,
                             const std::string& where) {
  // strtoull silently accepts a '-' and wraps; forbid it up front.
  OSP_REQUIRE_MSG(!text.empty() && text.find('-') == std::string::npos,
                  where << ": malformed uint64 payload '" << text << "'");
  errno = 0;
  char* endp = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &endp, 10);
  OSP_REQUIRE_MSG(errno == 0 && endp == text.c_str() + text.size(),
                  where << ": malformed uint64 payload '" << text << "'");
  return static_cast<std::uint64_t>(v);
}

double parse_wire_double(const std::string& text, const std::string& where) {
  // The canonical grammar is closed over hexfloats only: an optional
  // sign, then "0x…".  That rejects "nan", "inf", and decimal spellings
  // outright instead of trusting strtod's looser language.
  const std::size_t sign = (!text.empty() && text[0] == '-') ? 1 : 0;
  OSP_REQUIRE_MSG(text.size() >= sign + 2 && text[sign] == '0' &&
                      text[sign + 1] == 'x',
                  where << ": double payload '" << text
                        << "' is not a hexfloat (expected [-]0x…)");
  errno = 0;
  char* endp = nullptr;
  const double v = std::strtod(text.c_str(), &endp);
  OSP_REQUIRE_MSG(endp == text.c_str() + text.size(),
                  where << ": malformed double payload '" << text << "'");
  OSP_REQUIRE_MSG(std::isfinite(v), where << ": double payload '" << text
                                          << "' is not finite");
  return v;
}

}  // namespace

char wire_tag(const Row::Value& value) {
  switch (value.index()) {
    case 0: return 'b';
    case 1: return 'i';
    case 2: return 'u';
    case 3: return 'd';
    default: return 's';
  }
}

std::string encode_wire_value(const Row::Value& value) {
  switch (value.index()) {
    case 0:
      return std::get<bool>(value) ? "true" : "false";
    case 1:
      return std::to_string(std::get<std::int64_t>(value));
    case 2:
      return std::to_string(std::get<std::uint64_t>(value));
    case 3: {
      const double v = std::get<double>(value);
      // Hexfloat is the round-trip format: every finite double (negative
      // zero and denormals included) survives encode → strtod bit-exact,
      // so the merged JsonSink "%.17g" bytes match the unsharded run.
      OSP_REQUIRE_MSG(std::isfinite(v),
                      "cannot serialize non-finite double " << v
                          << " into a partial-result row");
      char buf[48];
      std::snprintf(buf, sizeof buf, "%a", v);
      return buf;
    }
    default:
      return escape_wire_string(std::get<std::string>(value));
  }
}

Row::Value parse_wire_value(char tag, const std::string& payload,
                            const std::string& where) {
  switch (tag) {
    case 'b':
      OSP_REQUIRE_MSG(payload == "true" || payload == "false",
                      where << ": bool payload must be 'true' or 'false', "
                               "got '"
                            << payload << "'");
      return Row::Value(payload == "true");
    case 'i': return Row::Value(parse_wire_i64(payload, where));
    case 'u': return Row::Value(parse_wire_u64(payload, where));
    case 'd': return Row::Value(parse_wire_double(payload, where));
    case 's': return Row::Value(unescape_wire_string(payload, where));
    default:
      OSP_REQUIRE_MSG(false, where << ": unknown value tag '" << tag
                                   << "' (valid: b i u d s)");
      return Row::Value(false);
  }
}

std::pair<std::string, Row::Value> parse_wire_line(const std::string& line,
                                                   const std::string& where) {
  OSP_REQUIRE_MSG(line.size() >= 4 && line[1] == ' ',
                  where << ": expected '<tag> <key>=<value>', got '" << line
                        << "'");
  const std::size_t eq = line.find('=', 2);
  OSP_REQUIRE_MSG(eq != std::string::npos && eq > 2,
                  where << ": expected '<tag> <key>=<value>', got '" << line
                        << "'");
  return {line.substr(2, eq - 2),
          parse_wire_value(line[0], line.substr(eq + 1), where)};
}

void write_wire_row(std::ostream& os, std::size_t cell, const Row& row) {
  os << "row " << cell << '\n';
  for (const auto& [key, value] : row.cells) {
    OSP_REQUIRE_MSG(!key.empty() && key.find('=') == std::string::npos &&
                        key.find('\n') == std::string::npos,
                    "row key '" << key
                                << "' cannot be serialized (empty, '=', or "
                                   "newline)");
    os << wire_tag(value) << ' ' << key << '=' << encode_wire_value(value)
       << '\n';
  }
  os << "end\n";
}

}  // namespace osp::api
