#include "api/adversarial.hpp"

#include <cmath>

#include "algos/baselines.hpp"
#include "algos/offline.hpp"
#include "core/bounds.hpp"
#include "design/lower_bounds.hpp"
#include "util/require.hpp"

namespace osp::api {

namespace {

/// Branch & bound is run only when the set system is this small — every
/// cell at or under the cap solves in well under a second, so the
/// dashboard stays cheap to regenerate.
constexpr std::size_t kExactMaxSets = 32;

/// Total weight of a chosen collection.
double value_of(const Instance& inst, const std::vector<SetId>& chosen) {
  double v = 0;
  for (SetId s : chosen) v += static_cast<double>(inst.weight(s));
  return v;
}

/// Verifies the construction's planted witness before it becomes a ratio
/// denominator: feasible, and worth exactly what the paper says.
void check_witness(const ScenarioSpec& spec, const Instance& inst,
                   const std::vector<SetId>& witness, double documented) {
  OSP_REQUIRE_MSG(is_feasible(inst, witness),
                  "scenario '" << spec.name
                               << "': planted witness is not feasible");
  const double v = value_of(inst, witness);
  OSP_REQUIRE_MSG(v == documented,
                  "scenario '" << spec.name << "': planted witness is worth "
                               << v << ", documented bound is " << documented);
}

}  // namespace

AdversarialCell build_adversarial_cell(const ScenarioSpec& spec, Rng& rng) {
  AdversarialCell cell;
  switch (spec.family) {
    case ScenarioFamily::kTheorem3: {
      // Must mirror build_instance(): the grid path and the dashboard
      // must describe the same transcript byte for byte.
      GreedyFirst victim;
      AdaptiveAdversaryResult r =
          run_theorem3_adversary(victim, spec.sigma, spec.k);
      cell.instance = std::move(r.transcript);
      cell.witness = std::move(r.witness);
      cell.witness_value = theorem3_lower_bound(spec.sigma, spec.k);
      cell.bound = cell.witness_value;
      break;
    }
    case ScenarioFamily::kWeakLb: {
      WeakLbInstance wl = build_weak_lb_instance(spec.t, rng);
      cell.instance = std::move(wl.instance);
      cell.witness = std::move(wl.column_witness);
      cell.witness_value = static_cast<double>(spec.t);
      cell.bound = static_cast<double>(spec.t) /
                   std::log(static_cast<double>(spec.t));
      break;
    }
    case ScenarioFamily::kLemma9: {
      Lemma9Instance li = build_lemma9_instance(spec.ell, rng);
      cell.instance = std::move(li.instance);
      cell.witness = std::move(li.planted);
      cell.witness_value =
          static_cast<double>(spec.ell * spec.ell * spec.ell);
      const InstanceStats st = cell.instance.stats();
      cell.bound = theorem2_lower_bound(st.k_max, st.sigma_max);
      break;
    }
    default:
      OSP_REQUIRE_MSG(false, "scenario '"
                                 << spec.name
                                 << "' is not an adversarial family "
                                    "(expected theorem3, weak-lb, or lemma9)");
  }
  check_witness(spec, cell.instance, cell.witness, cell.witness_value);
  return cell;
}

OptDenominator opt_denominator(const Instance& inst, double witness_value,
                               std::size_t lp_row_limit) {
  OptDenominator d;
  d.opt = witness_value;
  if (inst.num_sets() <= kExactMaxSets) {
    const OfflineResult r = exact_optimum(inst);
    d.nodes = r.nodes;
    if (r.exact) {
      const double v = static_cast<double>(r.value);
      OSP_REQUIRE_MSG(v + 1e-9 >= witness_value,
                      "exact optimum " << v
                                       << " below the verified witness "
                                       << witness_value);
      d.opt = v;
      d.opt_exact = true;
    }
  }
  if (inst.num_elements() + inst.num_sets() <= lp_row_limit) {
    d.lp_upper = lp_upper_bound(inst);
    OSP_REQUIRE_MSG(d.lp_upper + 1e-6 >= d.opt,
                    "LP upper bound " << d.lp_upper
                                      << " below the denominator " << d.opt);
  }
  return d;
}

}  // namespace osp::api
