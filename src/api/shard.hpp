// Sharded grid execution — split an expanded experiment grid across
// processes and recombine the partial results byte-for-byte.
//
// The pieces, in pipeline order:
//
//   ShardPlan        deterministically assigns the expanded
//                    (instance × policy) grid cells to shard i of N as
//                    contiguous row-major slices.  Trial seeds derive
//                    from GLOBAL cell coordinates (engine::trial_seed),
//                    so each cell's per-trial Rng stream is independent
//                    of the shard count — the recombined grid is
//                    provably identical to the serial run;
//   grid_fingerprint hashes the canonical description of the whole grid
//                    (every expanded cell's parameters, the policy
//                    list, trials, seed) so a merge can prove its
//                    partials came from the same experiment;
//   ShardSink        a ResultSink writing one partial-result file: a
//                    manifest header (bench name, fingerprint, shard
//                    index/count, cell range, threads) followed by the
//                    slice's rows in canonical cell order (wire.hpp
//                    format) and a row-count footer that detects
//                    truncation;
//   parse_shard_partial / merge_shards
//                    the strict reader and the tiling validator: the
//                    partials must cover cells [0, total) exactly —
//                    no gaps, no overlaps, matching fingerprints /
//                    bench names / threads / shard counts — with
//                    enumerated RequireErrors otherwise.  merge_shards
//                    returns the rows in canonical cell order; replayed
//                    through JsonSink they reproduce the unsharded
//                    BENCH_*.json bit for bit.
//
// `osp_cli bench --shard i/N --out PART` writes one partial;
// `osp_cli merge PART... --json NAME` recombines them (and
// scripts/check_bench_json.py validates the partial format too).
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "api/result_sink.hpp"
#include "api/scenario.hpp"

namespace osp::api {

/// Contiguous row-major assignment of grid cells to shard `index` of
/// `count`.  Cell sizes differ by at most one (the first total % count
/// shards get the extra cell), so any N tiles [0, total) exactly.
struct ShardPlan {
  std::size_t index = 0;  // shard i, 0-based
  std::size_t count = 1;  // of N

  /// Strict "i/N" parse with 0 <= i < N; throws a one-line RequireError
  /// naming `what` (e.g. "flag --shard") on anything else — "3/2",
  /// "0/0", "1/", "x/4" all fail, never abort.
  static ShardPlan parse(const std::string& what, const std::string& text);

  /// This shard's half-open cell slice [first, second) of `total_cells`.
  /// Empty when count > total_cells leaves this shard nothing.
  std::pair<std::size_t, std::size_t> slice(std::size_t total_cells) const;

  /// The shard that owns `cell` under this plan's count.
  std::size_t owner(std::size_t cell, std::size_t total_cells) const;
};

/// Header of one partial-result file.
struct ShardManifest {
  std::string bench;                // merged artifact name (BENCH_<bench>)
  std::uint64_t fingerprint = 0;    // grid_fingerprint of the whole grid
  std::size_t shard_index = 0;      // i of the i/N plan that produced it
  std::size_t shard_count = 1;      // N
  std::size_t cell_begin = 0;       // half-open global cell range
  std::size_t cell_end = 0;
  std::size_t total_cells = 0;      // cells in the whole grid
  std::size_t threads = 1;          // runner workers (JSON preamble field)
};

/// FNV-1a 64 over the canonical description of the expanded grid: every
/// cell's family + shape parameters + label, the resolved policy names,
/// the trial count, and the master seed.  Shard-independent by
/// construction — the plan is deliberately NOT part of the hash.
std::uint64_t grid_fingerprint(const std::vector<ScenarioSpec>& cells,
                               const std::vector<std::string>& policies,
                               int trials, std::uint64_t seed);

/// Streams one shard's rows into a partial-result file.  Rows must
/// arrive in canonical cell order (Session::run_grid emits them that
/// way); close() writes the row-count footer and requires exactly
/// cell_end - cell_begin rows, so a partial can never silently truncate.
/// An empty slice (count > cells) still yields a valid, mergeable file.
class ShardSink final : public ResultSink {
 public:
  ShardSink(std::ostream& os, const ShardManifest& manifest);
  /// File form; throws RequireError when `path` cannot be opened.
  ShardSink(const std::string& path, const ShardManifest& manifest);
  ~ShardSink() override;

  void write(const Row& row) override;
  void close() override;

 private:
  void write_header();

  std::ofstream file_;  // unused by the custom-stream form
  std::ostream* os_;
  ShardManifest manifest_;
  std::size_t rows_ = 0;
  bool closed_ = false;
};

/// One parsed partial: its manifest, its rows (in cell order), and the
/// origin (file name) for merge error messages.
struct ShardPartial {
  ShardManifest manifest;
  std::vector<Row> rows;
  std::string origin;
};

/// Strict reader for one partial-result file; every error is prefixed
/// origin:line.  Validates the manifest invariants (i < N,
/// begin <= end <= total, threads >= 1), the row cell sequence, and the
/// row-count footer (a missing footer means a truncated upload).
ShardPartial parse_shard_partial(std::istream& in, const std::string& origin);

/// What merge_shards hands back: the preamble fields plus every grid row
/// in canonical cell order, ready to replay through JsonSink.
struct MergedShards {
  std::string bench;
  std::size_t threads = 1;
  std::size_t shard_count = 1;
  std::vector<Row> rows;
};

/// Validates that `partials` tile the grid exactly and concatenates
/// their rows in canonical cell order.  Enumerated RequireErrors name
/// the offending files: fingerprint/bench/threads/total/shard-count
/// mismatches, gaps, and overlaps each have their own message.
MergedShards merge_shards(std::vector<ShardPartial> partials);

}  // namespace osp::api
