#include "api/shard.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "api/wire.hpp"
#include "util/require.hpp"

namespace osp::api {

namespace {

/// Stable text key for a generator family (fingerprint input — never
/// reuse enum integer values, which renumber on reorder).
const char* family_key(ScenarioFamily family) {
  switch (family) {
    case ScenarioFamily::kRandom: return "random";
    case ScenarioFamily::kRandomCapacity: return "capacity";
    case ScenarioFamily::kRegular: return "regular";
    case ScenarioFamily::kFixedLoad: return "fixedload";
    case ScenarioFamily::kVideo: return "video";
    case ScenarioFamily::kMultihop: return "multihop";
    case ScenarioFamily::kWeakLb: return "weaklb";
    case ScenarioFamily::kLemma9: return "lemma9";
    case ScenarioFamily::kTheorem3: return "theorem3";
  }
  return "unknown";
}

const char* weight_kind_key(WeightModel::Kind kind) {
  switch (kind) {
    case WeightModel::Kind::kUnit: return "unit";
    case WeightModel::Kind::kUniform: return "uniform";
    case WeightModel::Kind::kZipf: return "zipf";
    case WeightModel::Kind::kExponential: return "exp";
  }
  return "unknown";
}

void describe_cell(std::ostream& os, const ScenarioSpec& cell) {
  char num[128];
  std::snprintf(num, sizeof num, "%.17g %.17g %.17g %.17g", cell.weights.lo,
                cell.weights.hi, cell.weights.zipf_s, cell.weights.rate);
  os << "cell " << cell.name << '\n'
     << "label " << cell.display_label() << '\n'
     << "family " << family_key(cell.family) << '\n'
     << "shape " << cell.m << ' ' << cell.n << ' ' << cell.k << ' '
     << cell.sigma << ' ' << cell.cap_max << ' ' << cell.ell << ' ' << cell.t
     << '\n'
     << "traffic " << cell.streams << ' ' << cell.frames << ' '
     << cell.packets << ' ' << cell.switches << ' ' << cell.capacity << ' '
     << cell.service_rate << ' ' << cell.buffer << '\n'
     << "weights " << weight_kind_key(cell.weights.kind) << ' ' << num
     << '\n';
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Sequential line reader whose errors carry origin:line.
struct LineReader {
  std::istream& in;
  const std::string& origin;
  std::size_t lineno = 0;

  bool next(std::string* line) {
    if (!std::getline(in, *line)) return false;
    ++lineno;
    // Partials are written with '\n' endings; tolerate a CRLF transport.
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return true;
  }
  std::string where() const {
    return origin + ":" + std::to_string(lineno);
  }
  std::string require_line(const char* expected) {
    std::string line;
    OSP_REQUIRE_MSG(next(&line), origin << ": truncated partial file "
                                           "(expected "
                                        << expected << ", hit end of file)");
    return line;
  }
  /// Strips `prefix` off the next line, failing with its name otherwise.
  std::string require_field(const std::string& prefix) {
    const std::string line = require_line(prefix.c_str());
    OSP_REQUIRE_MSG(line.rfind(prefix + " ", 0) == 0,
                    where() << ": expected '" << prefix << " …', got '"
                            << line << "'");
    return line.substr(prefix.size() + 1);
  }
};

std::size_t parse_manifest_size(const std::string& text,
                                const std::string& where,
                                const char* field) {
  errno = 0;
  char* endp = nullptr;
  OSP_REQUIRE_MSG(!text.empty() && text.find('-') == std::string::npos,
                  where << ": malformed " << field << " '" << text << "'");
  const unsigned long long v = std::strtoull(text.c_str(), &endp, 10);
  OSP_REQUIRE_MSG(errno == 0 && endp == text.c_str() + text.size(),
                  where << ": malformed " << field << " '" << text << "'");
  return static_cast<std::size_t>(v);
}

}  // namespace

ShardPlan ShardPlan::parse(const std::string& what, const std::string& text) {
  const auto fail = [&]() {
    OSP_REQUIRE_MSG(false, what << " expects i/N with 0 <= i < N (e.g. "
                                   "0/4), got '"
                                << text << "'");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= text.size() || text.find('/', slash + 1) != std::string::npos)
    fail();
  const std::string index_text = text.substr(0, slash);
  const std::string count_text = text.substr(slash + 1);
  for (const std::string& part : {index_text, count_text})
    for (char c : part)
      if (c < '0' || c > '9') fail();
  errno = 0;
  char* endp = nullptr;
  const unsigned long long index =
      std::strtoull(index_text.c_str(), &endp, 10);
  const unsigned long long count =
      std::strtoull(count_text.c_str(), &endp, 10);
  if (errno != 0) fail();
  if (count < 1 || index >= count) fail();
  return ShardPlan{static_cast<std::size_t>(index),
                   static_cast<std::size_t>(count)};
}

std::pair<std::size_t, std::size_t> ShardPlan::slice(
    std::size_t total_cells) const {
  // Contiguous row-major slices, sizes differing by at most one: the
  // first (total % count) shards carry the extra cell.
  const std::size_t base = total_cells / count;
  const std::size_t rem = total_cells % count;
  const std::size_t begin = index * base + std::min(index, rem);
  const std::size_t size = base + (index < rem ? 1 : 0);
  return {begin, begin + size};
}

std::size_t ShardPlan::owner(std::size_t cell, std::size_t total_cells) const {
  OSP_REQUIRE(cell < total_cells);
  const std::size_t base = total_cells / count;
  const std::size_t rem = total_cells % count;
  const std::size_t boundary = rem * (base + 1);
  if (cell < boundary) return cell / (base + 1);
  return rem + (cell - boundary) / base;
}

std::uint64_t grid_fingerprint(const std::vector<ScenarioSpec>& cells,
                               const std::vector<std::string>& policies,
                               int trials, std::uint64_t seed) {
  std::ostringstream os;
  os << "osp-grid 1\n";
  for (const ScenarioSpec& cell : cells) describe_cell(os, cell);
  for (const std::string& policy : policies) os << "policy " << policy << '\n';
  os << "trials " << trials << '\n' << "seed " << seed << '\n';
  return fnv1a64(os.str());
}

ShardSink::ShardSink(std::ostream& os, const ShardManifest& manifest)
    : os_(&os), manifest_(manifest) {
  write_header();
}

ShardSink::ShardSink(const std::string& path, const ShardManifest& manifest)
    : file_(path), os_(&file_), manifest_(manifest) {
  OSP_REQUIRE_MSG(file_.good(),
                  "cannot open partial-result file '" << path
                                                      << "' for writing");
  write_header();
}

void ShardSink::write_header() {
  OSP_REQUIRE_MSG(manifest_.cell_begin <= manifest_.cell_end &&
                      manifest_.cell_end <= manifest_.total_cells,
                  "shard manifest cell range ["
                      << manifest_.cell_begin << ", " << manifest_.cell_end
                      << ") does not fit a grid of " << manifest_.total_cells
                      << " cells");
  OSP_REQUIRE_MSG(manifest_.shard_index < manifest_.shard_count,
                  "shard manifest index " << manifest_.shard_index
                                          << " is not < count "
                                          << manifest_.shard_count);
  OSP_REQUIRE_MSG(!manifest_.bench.empty() &&
                      manifest_.bench.find('\n') == std::string::npos,
                  "shard manifest needs a one-line bench name");
  *os_ << "osp-shard 1\n"
       << "bench " << manifest_.bench << '\n'
       << "fingerprint " << hex16(manifest_.fingerprint) << '\n'
       << "shard " << manifest_.shard_index << '/' << manifest_.shard_count
       << '\n'
       << "cells " << manifest_.cell_begin << ".." << manifest_.cell_end
       << '/' << manifest_.total_cells << '\n'
       << "threads " << manifest_.threads << '\n'
       << "---\n";
}

ShardSink::~ShardSink() {
  // Destruction without close() (unwinding on error) must not fake a
  // complete partial: only close() writes the row-count footer.
  if (!closed_) closed_ = true;
}

void ShardSink::write(const Row& row) {
  OSP_REQUIRE_MSG(!closed_, "ShardSink written after close()");
  const std::size_t expected = manifest_.cell_end - manifest_.cell_begin;
  OSP_REQUIRE_MSG(rows_ < expected,
                  "shard " << manifest_.shard_index << '/'
                           << manifest_.shard_count << " received more rows "
                           << "than its " << expected << "-cell slice");
  write_wire_row(*os_, manifest_.cell_begin + rows_, row);
  ++rows_;
}

void ShardSink::close() {
  if (closed_) return;
  const std::size_t expected = manifest_.cell_end - manifest_.cell_begin;
  OSP_REQUIRE_MSG(rows_ == expected,
                  "shard " << manifest_.shard_index << '/'
                           << manifest_.shard_count << " closed with "
                           << rows_ << " rows for a " << expected
                           << "-cell slice");
  closed_ = true;
  *os_ << "total " << rows_ << '\n';
  if (file_.is_open()) file_.flush();
}

ShardPartial parse_shard_partial(std::istream& in,
                                 const std::string& origin) {
  LineReader lines{in, origin};
  ShardPartial partial;
  partial.origin = origin;
  ShardManifest& m = partial.manifest;

  const std::string magic = lines.require_line("the 'osp-shard 1' magic");
  OSP_REQUIRE_MSG(magic == "osp-shard 1",
                  origin << ": not an osp partial-result file (first line "
                            "is '"
                         << magic << "', expected 'osp-shard 1')");

  m.bench = lines.require_field("bench");
  OSP_REQUIRE_MSG(!m.bench.empty(),
                  lines.where() << ": empty bench name");

  const std::string fp = lines.require_field("fingerprint");
  OSP_REQUIRE_MSG(fp.size() == 16 &&
                      fp.find_first_not_of("0123456789abcdef") ==
                          std::string::npos,
                  lines.where() << ": fingerprint must be 16 lowercase hex "
                                   "digits, got '"
                                << fp << "'");
  m.fingerprint =
      static_cast<std::uint64_t>(std::strtoull(fp.c_str(), nullptr, 16));

  {
    const std::string shard = lines.require_field("shard");
    const ShardPlan plan = ShardPlan::parse(lines.where() + ": shard field",
                                            shard);
    m.shard_index = plan.index;
    m.shard_count = plan.count;
  }

  {
    const std::string cells = lines.require_field("cells");
    const std::size_t dots = cells.find("..");
    const std::size_t slash = cells.find('/', dots == std::string::npos
                                                  ? 0
                                                  : dots + 2);
    OSP_REQUIRE_MSG(dots != std::string::npos && slash != std::string::npos,
                    lines.where() << ": expected 'cells <begin>..<end>"
                                     "/<total>', got '"
                                  << cells << "'");
    const std::string where = lines.where();
    m.cell_begin =
        parse_manifest_size(cells.substr(0, dots), where, "cell begin");
    m.cell_end = parse_manifest_size(cells.substr(dots + 2, slash - dots - 2),
                                     where, "cell end");
    m.total_cells =
        parse_manifest_size(cells.substr(slash + 1), where, "cell total");
    OSP_REQUIRE_MSG(m.cell_begin <= m.cell_end && m.cell_end <= m.total_cells,
                    where << ": cell range [" << m.cell_begin << ", "
                          << m.cell_end << ") does not fit a grid of "
                          << m.total_cells << " cells");
  }

  m.threads = parse_manifest_size(lines.require_field("threads"),
                                  lines.where(), "threads");
  OSP_REQUIRE_MSG(m.threads >= 1, lines.where() << ": threads must be >= 1");

  const std::string sep = lines.require_line("the '---' separator");
  OSP_REQUIRE_MSG(sep == "---", lines.where()
                                    << ": expected '---' after the "
                                       "manifest, got '"
                                    << sep << "'");

  // Row blocks in cell order, then the row-count footer.  EOF anywhere
  // before the footer means the file was truncated in flight.
  for (;;) {
    const std::string head = lines.require_line("'row <cell>' or 'total'");
    if (head.rfind("total ", 0) == 0) {
      const std::size_t total = parse_manifest_size(
          head.substr(6), lines.where(), "footer row count");
      OSP_REQUIRE_MSG(total == partial.rows.size(),
                      lines.where()
                          << ": footer says " << total << " rows but "
                          << partial.rows.size() << " were present");
      OSP_REQUIRE_MSG(
          partial.rows.size() == m.cell_end - m.cell_begin,
          lines.where() << ": partial carries " << partial.rows.size()
                        << " rows for a " << m.cell_end - m.cell_begin
                        << "-cell slice");
      std::string tail;
      OSP_REQUIRE_MSG(!lines.next(&tail) || tail.empty(),
                      lines.where() << ": trailing content after the "
                                       "'total' footer");
      return partial;
    }
    OSP_REQUIRE_MSG(head.rfind("row ", 0) == 0,
                    lines.where() << ": expected 'row <cell>' or "
                                     "'total <count>', got '"
                                  << head << "'");
    const std::size_t cell =
        parse_manifest_size(head.substr(4), lines.where(), "row cell index");
    const std::size_t expected = m.cell_begin + partial.rows.size();
    OSP_REQUIRE_MSG(cell == expected,
                    lines.where() << ": row for cell " << cell
                                  << " out of order (expected cell "
                                  << expected << " of ["
                                  << m.cell_begin << ", " << m.cell_end
                                  << "))");
    Row row;
    for (;;) {
      const std::string line = lines.require_line("a row cell or 'end'");
      if (line == "end") break;
      auto [key, value] = parse_wire_line(line, lines.where());
      row.cells.emplace_back(std::move(key), std::move(value));
    }
    partial.rows.push_back(std::move(row));
  }
}

MergedShards merge_shards(std::vector<ShardPartial> partials) {
  OSP_REQUIRE_MSG(!partials.empty(), "merge needs at least one partial file");

  const ShardManifest& first = partials.front().manifest;
  const std::string& first_origin = partials.front().origin;
  for (const ShardPartial& p : partials) {
    const ShardManifest& m = p.manifest;
    OSP_REQUIRE_MSG(m.bench == first.bench,
                    "bench name mismatch: " << first_origin << " records '"
                                            << first.bench << "' but "
                                            << p.origin << " records '"
                                            << m.bench << "'");
    OSP_REQUIRE_MSG(m.fingerprint == first.fingerprint,
                    "grid fingerprint mismatch: "
                        << first_origin << " records "
                        << hex16(first.fingerprint) << " but " << p.origin
                        << " records " << hex16(m.fingerprint)
                        << " — the partials come from different grids "
                           "(scenario, policies, trials, or seed differ)");
    OSP_REQUIRE_MSG(m.total_cells == first.total_cells,
                    "grid size mismatch: " << first_origin << " records "
                                           << first.total_cells
                                           << " cells but " << p.origin
                                           << " records " << m.total_cells);
    OSP_REQUIRE_MSG(m.shard_count == first.shard_count,
                    "shard count mismatch: " << first_origin
                                             << " is a shard of "
                                             << first.shard_count << " but "
                                             << p.origin << " is a shard of "
                                             << m.shard_count);
    OSP_REQUIRE_MSG(m.threads == first.threads,
                    "threads mismatch: " << first_origin << " ran with "
                                         << first.threads << " but "
                                         << p.origin << " ran with "
                                         << m.threads
                                         << " (the merged preamble must "
                                            "record one worker count)");
  }

  std::stable_sort(partials.begin(), partials.end(),
                   [](const ShardPartial& a, const ShardPartial& b) {
                     return a.manifest.cell_begin < b.manifest.cell_begin;
                   });

  // Tiling check: the non-empty slices must cover [0, total) exactly.
  // Empty slices (N > cells leaves trailing shards nothing) cover
  // nothing and are skipped — they are valid partials, not overlaps.
  std::size_t covered = 0;
  const std::string* last_origin = nullptr;
  for (const ShardPartial& p : partials) {
    const ShardManifest& m = p.manifest;
    if (m.cell_begin == m.cell_end) continue;
    OSP_REQUIRE_MSG(m.cell_begin >= covered,
                    "partials overlap: " << p.origin << " covers cells ["
                                         << m.cell_begin << ", "
                                         << m.cell_end << ") but "
                                         << *last_origin
                                         << " already covered up to cell "
                                         << covered);
    OSP_REQUIRE_MSG(m.cell_begin == covered,
                    "partials leave a gap: cells [" << covered << ", "
                                                    << m.cell_begin
                                                    << ") are covered by no "
                                                       "partial (next is "
                                                    << p.origin << ")");
    covered = m.cell_end;
    last_origin = &p.origin;
  }
  OSP_REQUIRE_MSG(covered == first.total_cells,
                  "partials leave a gap: cells ["
                      << covered << ", " << first.total_cells
                      << ") at the end of the grid are covered by no "
                         "partial");

  MergedShards merged;
  merged.bench = first.bench;
  merged.threads = first.threads;
  merged.shard_count = first.shard_count;
  for (ShardPartial& p : partials)
    for (Row& row : p.rows) merged.rows.push_back(std::move(row));
  return merged;
}

}  // namespace osp::api
