// Hash families for the distributed implementation of randPr.
//
// Section 3.1 of the paper observes that randPr can run distributively if
// every router applies a shared hash function h to set identifiers and uses
// h(S) as the set's random priority; kmax·σmax-wise independence suffices.
// We provide three families:
//
//  * MultiplyShiftHash  — fast 2-universal baseline,
//  * PolynomialHash     — k-wise independent, degree-(k-1) polynomial over
//                         the Mersenne prime 2^61 - 1,
//  * TabulationHash     — 3-independent with strong practical uniformity.
//
// Each maps a 64-bit key to a double in [0, 1), which core/rand_pr.cpp then
// transforms into an R_w priority.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace osp {

/// Fast 2-universal multiply-shift hash (Dietzfelbinger et al.).
class MultiplyShiftHash {
 public:
  /// Draws random odd multipliers from `rng`.
  explicit MultiplyShiftHash(Rng& rng);

  /// Hash of `key` as a 64-bit value.
  std::uint64_t hash(std::uint64_t key) const;

  /// Hash mapped to [0, 1).
  double unit(std::uint64_t key) const;

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

/// k-wise independent polynomial hash over GF(2^61 - 1).
class PolynomialHash {
 public:
  static constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

  /// Constructs a hash with the given independence degree k >= 2
  /// (degree-(k-1) polynomial with coefficients drawn from `rng`).
  PolynomialHash(unsigned independence, Rng& rng);

  std::uint64_t hash(std::uint64_t key) const;
  double unit(std::uint64_t key) const;

  unsigned independence() const {
    return static_cast<unsigned>(coeffs_.size());
  }

 private:
  std::vector<std::uint64_t> coeffs_;  // degree k-1 .. 0
};

/// Simple tabulation hashing on 8 byte-indexed tables.
class TabulationHash {
 public:
  explicit TabulationHash(Rng& rng);

  std::uint64_t hash(std::uint64_t key) const;
  double unit(std::uint64_t key) const;

 private:
  std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

/// Converts a 64-bit hash to a double uniform on [0, 1).
double hash_to_unit(std::uint64_t h);

}  // namespace osp
