#include "hash/universal_hash.hpp"

#include "util/math.hpp"
#include "util/require.hpp"

namespace osp {

double hash_to_unit(std::uint64_t h) {
  // Use the top 53 bits so the result is an exactly representable dyadic
  // rational in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

MultiplyShiftHash::MultiplyShiftHash(Rng& rng)
    : a_(rng() | 1ULL), b_(rng()) {}

std::uint64_t MultiplyShiftHash::hash(std::uint64_t key) const {
  return a_ * key + b_;
}

double MultiplyShiftHash::unit(std::uint64_t key) const {
  return hash_to_unit(hash(key));
}

PolynomialHash::PolynomialHash(unsigned independence, Rng& rng) {
  OSP_REQUIRE(independence >= 2);
  coeffs_.resize(independence);
  for (auto& c : coeffs_) c = rng() % kPrime;
  // The leading coefficient must be nonzero for full independence degree.
  while (coeffs_.front() == 0) coeffs_.front() = rng() % kPrime;
}

std::uint64_t PolynomialHash::hash(std::uint64_t key) const {
  std::uint64_t x = key % kPrime;
  std::uint64_t acc = 0;
  for (std::uint64_t c : coeffs_) {
    // acc = acc * x + c  (mod 2^61 - 1), via 128-bit products and the
    // Mersenne reduction (hi*2^61 + lo ≡ hi + lo).
    unsigned __int128 prod = static_cast<unsigned __int128>(acc) * x + c;
    std::uint64_t lo = static_cast<std::uint64_t>(prod) & kPrime;
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    acc = lo + hi;
    if (acc >= kPrime) acc -= kPrime;
  }
  return acc;
}

double PolynomialHash::unit(std::uint64_t key) const {
  // hash() is uniform on [0, kPrime); normalize by the prime.
  return static_cast<double>(hash(key)) / static_cast<double>(kPrime);
}

TabulationHash::TabulationHash(Rng& rng) {
  for (auto& table : tables_)
    for (auto& cell : table) cell = rng();
}

std::uint64_t TabulationHash::hash(std::uint64_t key) const {
  std::uint64_t h = 0;
  for (unsigned i = 0; i < 8; ++i)
    h ^= tables_[i][(key >> (8 * i)) & 0xff];
  return h;
}

double TabulationHash::unit(std::uint64_t key) const {
  return hash_to_unit(hash(key));
}

}  // namespace osp
