// Random set-system generators for the benchmark harness.
//
// Three families match the structural assumptions of the paper's refined
// bounds:
//  * random_instance      — uniform size k, binomial loads (Theorem 5);
//  * fixed_load_instance  — uniform load σ, varying sizes (Theorem 6);
//  * regular_instance     — uniform size AND load (Corollary 7);
// plus a variable-capacity variant for Theorem 4.
#pragma once

#include <cstddef>

#include "core/instance.hpp"
#include "util/rng.hpp"

namespace osp {

/// How set weights are drawn.
struct WeightModel {
  enum class Kind { kUnit, kUniform, kZipf, kExponential };
  Kind kind = Kind::kUnit;
  double lo = 1.0;      // kUniform: lower bound
  double hi = 10.0;     // kUniform: upper bound
  double zipf_s = 1.2;  // kZipf: exponent (weight of rank r ∝ r^-s)
  double rate = 1.0;    // kExponential: rate (weights are 1 + Exp(rate))

  static WeightModel unit() { return {}; }
  static WeightModel uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi, 1.2, 1.0};
  }
  static WeightModel zipf(double s) { return {Kind::kZipf, 1, 10, s, 1.0}; }
  static WeightModel exponential(double rate) {
    return {Kind::kExponential, 1, 10, 1.2, rate};
  }
};

/// Draws a weight for the set of rank `rank` (used by the Zipf model).
Weight draw_weight(const WeightModel& model, std::size_t rank, Rng& rng);

/// m sets of size exactly k over n element slots: each set picks k distinct
/// slots uniformly.  Slots that no set picked are dropped, so the returned
/// instance may have fewer than n elements.  Unit capacities.
Instance random_instance(std::size_t m, std::size_t n, std::size_t k,
                         const WeightModel& weights, Rng& rng);

/// Same layout but each element draws its capacity uniformly from
/// [1, cap_max]; used for the Theorem 4 experiments.
Instance random_capacity_instance(std::size_t m, std::size_t n, std::size_t k,
                                  std::size_t cap_max,
                                  const WeightModel& weights, Rng& rng);

/// n elements of load exactly σ over m sets; set sizes vary (binomial-ish).
/// The first ceil(m/σ) elements deterministically cover every set so no
/// set is empty.  Requires σ <= m and n·σ >= m.  Unit capacities.
Instance fixed_load_instance(std::size_t m, std::size_t n, std::size_t sigma,
                             const WeightModel& weights, Rng& rng);

/// Bi-regular system: every set has size exactly k and every element load
/// exactly σ, built with the configuration model plus repair passes.
/// Requires m·k divisible by σ; produces n = m·k/σ elements.
/// Unit capacities.  Throws RequireError if repair fails to converge
/// (pathological parameters, e.g. σ > m).
Instance regular_instance(std::size_t m, std::size_t k, std::size_t sigma,
                          const WeightModel& weights, Rng& rng);

}  // namespace osp
