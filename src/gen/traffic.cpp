#include "gen/traffic.hpp"

#include <random>

#include "util/require.hpp"

namespace osp {

PoissonBursts::PoissonBursts(double lambda) : lambda_(lambda) {
  OSP_REQUIRE(lambda > 0);
}

std::string PoissonBursts::name() const { return "poisson"; }

std::size_t PoissonBursts::next(Rng& rng) {
  return std::poisson_distribution<std::size_t>(lambda_)(rng.engine());
}

OnOffBursts::OnOffBursts(double p_on_to_off, double p_off_to_on,
                         double rate_on, double rate_off)
    : p_on_to_off_(p_on_to_off),
      p_off_to_on_(p_off_to_on),
      rate_on_(rate_on),
      rate_off_(rate_off) {
  OSP_REQUIRE(p_on_to_off >= 0 && p_on_to_off <= 1);
  OSP_REQUIRE(p_off_to_on >= 0 && p_off_to_on <= 1);
  OSP_REQUIRE(rate_on >= 0 && rate_off >= 0);
}

std::string OnOffBursts::name() const { return "onoff"; }

std::size_t OnOffBursts::next(Rng& rng) {
  if (on_) {
    if (rng.chance(p_on_to_off_)) on_ = false;
  } else {
    if (rng.chance(p_off_to_on_)) on_ = true;
  }
  double rate = on_ ? rate_on_ : rate_off_;
  if (rate <= 0) return 0;
  return std::poisson_distribution<std::size_t>(rate)(rng.engine());
}

ConstantBursts::ConstantBursts(std::size_t c) : c_(c) {}

std::string ConstantBursts::name() const { return "constant"; }

std::size_t ConstantBursts::next(Rng&) { return c_; }

FrameSchedule bursty_schedule(BurstProcess& bursts, std::size_t num_frames,
                              std::size_t packets_per_frame, Rng& rng,
                              Weight frame_weight) {
  OSP_REQUIRE(num_frames >= 1 && packets_per_frame >= 1);
  FrameSchedule sched;
  std::size_t slot = 0;
  while (sched.frames.size() < num_frames) {
    std::size_t newcomers = bursts.next(rng);
    for (std::size_t i = 0;
         i < newcomers && sched.frames.size() < num_frames; ++i) {
      Frame f;
      f.weight = frame_weight;
      for (std::size_t p = 0; p < packets_per_frame; ++p)
        f.packet_slots.push_back(slot + p);
      sched.frames.push_back(std::move(f));
    }
    ++slot;
    // Safety valve: a process that never fires would loop forever.
    OSP_REQUIRE_MSG(slot < 100 * num_frames * packets_per_frame + 1000,
                    "burst process produced no arrivals");
  }
  sched.horizon = slot + packets_per_frame;
  return sched;
}

}  // namespace osp
