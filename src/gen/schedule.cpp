#include "gen/schedule.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace osp {

std::size_t FrameSchedule::total_packets() const {
  std::size_t total = 0;
  for (const Frame& f : frames) total += f.packet_slots.size();
  return total;
}

std::vector<std::size_t> FrameSchedule::burst_profile() const {
  std::vector<std::size_t> profile(horizon, 0);
  for (const Frame& f : frames)
    for (std::size_t slot : f.packet_slots) ++profile[slot];
  return profile;
}

std::size_t FrameSchedule::max_burst() const {
  std::size_t best = 0;
  for (std::size_t b : burst_profile()) best = std::max(best, b);
  return best;
}

void FrameSchedule::validate() const {
  for (const Frame& f : frames) {
    // Positive, not just non-negative: the R_w priority distribution is
    // undefined at w <= 0 (rw_key_from_uniform rejects it), and a frame
    // that cannot carry value has no business on the link.  Validating
    // here once lets every ranker drop its defensive clamp.
    OSP_REQUIRE_MSG(f.weight > 0, "frame weight must be positive, got "
                                      << f.weight);
    OSP_REQUIRE(std::is_sorted(f.packet_slots.begin(), f.packet_slots.end()));
    OSP_REQUIRE(std::adjacent_find(f.packet_slots.begin(),
                                   f.packet_slots.end()) ==
                f.packet_slots.end());
    for (std::size_t slot : f.packet_slots) OSP_REQUIRE(slot < horizon);
  }
}

Instance FrameSchedule::to_instance(Capacity link_capacity) const {
  OSP_REQUIRE(link_capacity >= 1);
  validate();
  InstanceBuilder builder;
  for (const Frame& f : frames) builder.add_set(f.weight);

  std::vector<std::vector<SetId>> slot_frames(horizon);
  for (std::size_t fi = 0; fi < frames.size(); ++fi)
    for (std::size_t slot : frames[fi].packet_slots)
      slot_frames[slot].push_back(static_cast<SetId>(fi));

  for (std::size_t slot = 0; slot < horizon; ++slot) {
    if (slot_frames[slot].empty()) continue;
    builder.add_element(std::move(slot_frames[slot]), link_capacity);
  }
  return builder.build();
}

}  // namespace osp
