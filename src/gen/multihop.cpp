#include "gen/multihop.hpp"

#include <algorithm>
#include <map>

#include "util/require.hpp"

namespace osp {

MultiHopWorkload make_multihop_workload(const MultiHopParams& params,
                                        Rng& rng) {
  OSP_REQUIRE(params.num_switches >= 1);
  OSP_REQUIRE(params.num_packets >= 1);
  OSP_REQUIRE(params.horizon >= 1);
  OSP_REQUIRE(params.min_route >= 1);
  OSP_REQUIRE(params.max_route >= params.min_route);
  OSP_REQUIRE(params.link_capacity >= 1);

  MultiHopWorkload out;
  InstanceBuilder builder;

  // (time, hop) -> packets occupying that link slot.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<SetId>> occupancy;

  for (std::size_t p = 0; p < params.num_packets; ++p) {
    std::size_t t0 = static_cast<std::size_t>(rng.below(params.horizon));
    std::size_t len = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(params.min_route),
                  static_cast<std::int64_t>(params.max_route)));
    len = std::min(len, params.num_switches);
    std::size_t entry = params.num_switches == len
                            ? 0
                            : static_cast<std::size_t>(
                                  rng.below(params.num_switches - len + 1));

    Weight w = 1.0 + params.weight_per_hop * static_cast<double>(len);
    SetId sid = builder.add_set(w);
    for (std::size_t i = 0; i < len; ++i)
      occupancy[{t0 + i, entry + i}].push_back(sid);

    out.inject_time.push_back(t0);
    out.entry_hop.push_back(entry);
    out.route_len.push_back(len);
  }

  // std::map iterates in (time, hop) lexicographic order — the global
  // clock order in which a real pipeline would face these decisions.
  for (auto& [key, packets] : occupancy)
    builder.add_element(std::move(packets), params.link_capacity);

  out.instance = builder.build();
  return out;
}

}  // namespace osp
