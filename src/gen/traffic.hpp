// Burst-arrival traffic models.
//
// These drive how many new frames begin transmission at each slot; the
// bursty generator turns the resulting packet overlap into osp element
// loads.  Burstier processes yield larger σmax, which is exactly the knob
// the paper's bounds move with.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "gen/schedule.hpp"
#include "util/rng.hpp"

namespace osp {

/// Per-slot frame arrival process.
class BurstProcess {
 public:
  virtual ~BurstProcess() = default;
  virtual std::string name() const = 0;
  /// Number of new frames starting in the next slot.
  virtual std::size_t next(Rng& rng) = 0;
};

/// Poisson(λ) arrivals — mild, memoryless bursts.
class PoissonBursts final : public BurstProcess {
 public:
  explicit PoissonBursts(double lambda);
  std::string name() const override;
  std::size_t next(Rng& rng) override;

 private:
  double lambda_;
};

/// Markov-modulated on/off process: in the ON state frames arrive at
/// `rate_on` per slot (Poisson), in OFF at `rate_off`; switches state with
/// the given probabilities.  Models the correlated bursts that hurt a
/// router most.
class OnOffBursts final : public BurstProcess {
 public:
  OnOffBursts(double p_on_to_off, double p_off_to_on, double rate_on,
              double rate_off);
  std::string name() const override;
  std::size_t next(Rng& rng) override;

 private:
  double p_on_to_off_;
  double p_off_to_on_;
  double rate_on_;
  double rate_off_;
  bool on_ = false;
};

/// Exactly c frames start every slot (the uniform-load regime of
/// Corollary 7 when frame sizes are uniform too).
class ConstantBursts final : public BurstProcess {
 public:
  explicit ConstantBursts(std::size_t c);
  std::string name() const override;
  std::size_t next(Rng& rng) override;

 private:
  std::size_t c_;
};

/// Generates a schedule of `num_frames` frames of `packets_per_frame`
/// packets each (one packet per consecutive slot, starting when the burst
/// process spawns the frame).  Frame weights default to 1.
FrameSchedule bursty_schedule(BurstProcess& bursts, std::size_t num_frames,
                              std::size_t packets_per_frame, Rng& rng,
                              Weight frame_weight = 1.0);

}  // namespace osp
