// FrameSchedule — the shared "packets on a timeline" representation that
// the video/bursty generators produce and the router simulator consumes.
//
// A frame is a weighted group of packets, each occupying a distinct time
// slot.  The paper's reduction (Section 1) maps a schedule to an osp
// instance: elements are the time slots, a slot belongs to frame i iff a
// packet of frame i arrives in that slot, and the slot capacity is the
// link rate.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.hpp"

namespace osp {

/// A multi-packet data frame on the timeline.
struct Frame {
  Weight weight = 1.0;
  std::vector<std::size_t> packet_slots;  // strictly increasing slot ids
};

/// A full arrival schedule at one bottleneck link.
struct FrameSchedule {
  std::vector<Frame> frames;
  std::size_t horizon = 0;  // number of slots (all packet_slots < horizon)

  /// Number of packets across all frames.
  std::size_t total_packets() const;

  /// Packets arriving in each slot (index = slot id).
  std::vector<std::size_t> burst_profile() const;

  /// Largest burst (max simultaneous packets in one slot).
  std::size_t max_burst() const;

  /// The paper's reduction to osp.  Slots with no packets are skipped;
  /// every remaining slot becomes an element with capacity
  /// `link_capacity`, whose parents are the frames with a packet there.
  Instance to_instance(Capacity link_capacity = 1) const;

  /// Checks structural validity (slots strictly increasing, within
  /// horizon); throws RequireError if violated.
  void validate() const;
};

}  // namespace osp
