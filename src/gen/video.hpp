// Video-transmission workload: the paper's motivating scenario.
//
// Several senders stream video through one bottleneck link.  Each stream
// emits a GOP-structured frame sequence (a large I frame every gop_length
// frames, smaller P frames in between); frames are packetized and the
// packets of concurrently transmitting frames collide at the link.
// Frame weights reflect decode value (losing an I frame costs the GOP).
#pragma once

#include <cstddef>

#include "gen/schedule.hpp"
#include "util/rng.hpp"

namespace osp {

/// Parameters of the synthetic video workload.
struct VideoParams {
  std::size_t num_streams = 8;        // concurrent senders
  std::size_t frames_per_stream = 30; // frames per sender
  std::size_t gop_length = 12;        // I frame every gop_length frames
  std::size_t i_frame_packets = 6;    // packets per I frame
  std::size_t p_frame_packets = 2;    // packets per P frame
  Weight i_frame_weight = 4.0;        // value of a delivered I frame
  Weight p_frame_weight = 1.0;        // value of a delivered P frame
  std::size_t frame_interval = 3;     // slots between frame starts per stream
  std::size_t max_jitter = 2;         // random extra start delay per frame
};

/// Kind tag for inspecting the generated frames.
enum class FrameKind { kIntra, kPredicted };

/// Schedule plus per-frame metadata (index-aligned with schedule.frames).
struct VideoWorkload {
  FrameSchedule schedule;
  std::vector<FrameKind> kinds;
  std::vector<std::size_t> stream_of;  // originating stream of each frame
};

/// Generates the workload.  Streams are phase-shifted so their I frames
/// partially collide — the regime where drop decisions matter.
VideoWorkload make_video_workload(const VideoParams& params, Rng& rng);

}  // namespace osp
