// Trace-driven workloads: load and store packet traces as frame
// schedules, so experiments can run on recorded traffic instead of the
// synthetic models (the substitution hook for anyone with real router
// traces).
//
// Trace format (line oriented, '#' comments):
//
//   osp-trace v1
//   frames <count>
//   <weight> <slot> <slot> ...     # one line per frame, slots ascending
#pragma once

#include <iosfwd>
#include <string>

#include "gen/schedule.hpp"

namespace osp {

/// Writes a schedule as a v1 trace.
void write_trace(std::ostream& os, const FrameSchedule& schedule);

/// Parses a v1 trace; throws RequireError (with a line number) on
/// malformed input.  The horizon is set to one past the last slot.
FrameSchedule read_trace(std::istream& is);

/// File convenience wrappers.
void save_trace(const std::string& path, const FrameSchedule& schedule);
FrameSchedule load_trace(const std::string& path);

}  // namespace osp
