#include "gen/video.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace osp {

VideoWorkload make_video_workload(const VideoParams& params, Rng& rng) {
  OSP_REQUIRE(params.num_streams >= 1);
  OSP_REQUIRE(params.frames_per_stream >= 1);
  OSP_REQUIRE(params.gop_length >= 1);
  OSP_REQUIRE(params.i_frame_packets >= 1 && params.p_frame_packets >= 1);
  OSP_REQUIRE(params.frame_interval >= 1);

  VideoWorkload out;
  std::size_t horizon = 0;

  for (std::size_t stream = 0; stream < params.num_streams; ++stream) {
    // Phase-shift streams so I frames from different streams overlap at
    // the link some of the time but not always.
    std::size_t phase = stream % params.frame_interval;
    for (std::size_t f = 0; f < params.frames_per_stream; ++f) {
      const bool intra = (f % params.gop_length) == 0;
      const std::size_t packets =
          intra ? params.i_frame_packets : params.p_frame_packets;
      std::size_t start = phase + f * params.frame_interval;
      if (params.max_jitter > 0)
        start += static_cast<std::size_t>(
            rng.below(params.max_jitter + 1));

      Frame frame;
      frame.weight = intra ? params.i_frame_weight : params.p_frame_weight;
      for (std::size_t p = 0; p < packets; ++p)
        frame.packet_slots.push_back(start + p);
      horizon = std::max(horizon, start + packets);

      out.schedule.frames.push_back(std::move(frame));
      out.kinds.push_back(intra ? FrameKind::kIntra : FrameKind::kPredicted);
      out.stream_of.push_back(stream);
    }
  }
  out.schedule.horizon = horizon;
  out.schedule.validate();
  return out;
}

}  // namespace osp
