#include "gen/trace.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/require.hpp"

namespace osp {

void write_trace(std::ostream& os, const FrameSchedule& schedule) {
  schedule.validate();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "osp-trace v1\n";
  os << "frames " << schedule.frames.size() << "\n";
  for (const Frame& f : schedule.frames) {
    os << f.weight;
    for (std::size_t slot : f.packet_slots) os << ' ' << slot;
    os << "\n";
  }
}

FrameSchedule read_trace(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  auto next = [&](const char* what) {
    while (std::getline(is, line)) {
      ++lineno;
      auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      auto begin = line.find_first_not_of(" \t\r");
      if (begin == std::string::npos) continue;
      auto end = line.find_last_not_of(" \t\r");
      return line.substr(begin, end - begin + 1);
    }
    OSP_REQUIRE_MSG(false, "unexpected end of trace, expected " << what);
    return std::string{};
  };

  std::string header = next("header");
  OSP_REQUIRE_MSG(header == "osp-trace v1",
                  "bad trace header at line " << lineno);

  std::string counts = next("frame count");
  std::istringstream cs(counts);
  std::string word;
  std::size_t count = 0;
  OSP_REQUIRE_MSG((cs >> word >> count) && word == "frames" && cs.eof(),
                  "expected 'frames <count>' at line " << lineno);

  FrameSchedule sched;
  for (std::size_t i = 0; i < count; ++i) {
    std::istringstream fs(next("frame line"));
    Frame f;
    OSP_REQUIRE_MSG(static_cast<bool>(fs >> f.weight),
                    "bad frame weight at line " << lineno);
    std::size_t slot;
    while (fs >> slot) f.packet_slots.push_back(slot);
    OSP_REQUIRE_MSG(fs.eof(), "trailing garbage at line " << lineno);
    OSP_REQUIRE_MSG(!f.packet_slots.empty(),
                    "frame with no packets at line " << lineno);
    OSP_REQUIRE_MSG(
        std::is_sorted(f.packet_slots.begin(), f.packet_slots.end()) &&
            std::adjacent_find(f.packet_slots.begin(),
                               f.packet_slots.end()) == f.packet_slots.end(),
        "slots must be strictly increasing at line " << lineno);
    sched.horizon = std::max(sched.horizon, f.packet_slots.back() + 1);
    sched.frames.push_back(std::move(f));
  }
  sched.validate();
  return sched;
}

void save_trace(const std::string& path, const FrameSchedule& schedule) {
  std::ofstream os(path);
  OSP_REQUIRE_MSG(os.good(), "cannot open " << path << " for writing");
  write_trace(os, schedule);
  OSP_REQUIRE_MSG(os.good(), "write to " << path << " failed");
}

FrameSchedule load_trace(const std::string& path) {
  std::ifstream is(path);
  OSP_REQUIRE_MSG(is.good(), "cannot open " << path);
  return read_trace(is);
}

}  // namespace osp
