// Multi-hop routing workload: the paper's second motivating scenario.
//
// Packets traverse a path of switches; the pair (time, hop) is a unit of
// link capacity.  A packet is delivered only if it wins the link at every
// hop on its route, so a packet maps to a set whose elements are the
// (time, hop) pairs it must traverse (Section 1's reduction).  Buffering
// is ignored — a packet injected at time t0 entering at hop h0 occupies
// (t0 + i, h0 + i) for i = 0..route_len-1.
#pragma once

#include <cstddef>

#include "core/instance.hpp"
#include "util/rng.hpp"

namespace osp {

/// Parameters of the multi-hop workload.
struct MultiHopParams {
  std::size_t num_switches = 6;    // path length of the network
  std::size_t num_packets = 80;    // packets injected
  std::size_t horizon = 40;        // injection times drawn from [0, horizon)
  std::size_t min_route = 2;       // min hops per packet
  std::size_t max_route = 6;       // max hops per packet (<= num_switches)
  Capacity link_capacity = 1;      // packets a (time, hop) pair can carry
  double weight_per_hop = 0.0;     // extra weight per hop (0 = unweighted)
};

/// Instance plus per-packet route metadata.
struct MultiHopWorkload {
  Instance instance;          // sets = packets, elements = (time, hop) pairs
  std::vector<std::size_t> inject_time;  // per packet
  std::vector<std::size_t> entry_hop;    // per packet
  std::vector<std::size_t> route_len;    // per packet
};

/// Generates the workload: each packet draws an injection time, an entry
/// switch, and a route length (clipped to the path).  Elements arrive in
/// (time, hop) lexicographic order, matching a global clock sweeping the
/// pipeline.  Contention-free (load-1) pairs are kept: they are precisely
/// the hops where a packet rides alone.
MultiHopWorkload make_multihop_workload(const MultiHopParams& params,
                                        Rng& rng);

}  // namespace osp
