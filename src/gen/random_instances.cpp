#include "gen/random_instances.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/require.hpp"

namespace osp {

Weight draw_weight(const WeightModel& model, std::size_t rank, Rng& rng) {
  switch (model.kind) {
    case WeightModel::Kind::kUnit:
      return 1.0;
    case WeightModel::Kind::kUniform:
      return model.lo + (model.hi - model.lo) * rng.uniform();
    case WeightModel::Kind::kZipf:
      return std::pow(static_cast<double>(rank + 1), -model.zipf_s) *
             100.0;  // scaled so weights are not vanishingly small
    case WeightModel::Kind::kExponential:
      return 1.0 + rng.exponential(model.rate);
  }
  return 1.0;
}

namespace {

// Draws k distinct values from [0, n).
std::vector<std::size_t> sample_distinct(std::size_t k, std::size_t n,
                                         Rng& rng) {
  OSP_REQUIRE(k <= n);
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense: shuffle a full index vector.
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::shuffle(idx.begin(), idx.end(), rng.engine());
    idx.resize(k);
    return idx;
  }
  while (out.size() < k) {
    std::size_t v = rng.below(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

// Common body for random_instance / random_capacity_instance.
Instance build_random(std::size_t m, std::size_t n, std::size_t k,
                      std::size_t cap_max, const WeightModel& weights,
                      Rng& rng) {
  OSP_REQUIRE(m >= 1 && k >= 1 && k <= n);
  // memberships[slot] = sets containing that slot.
  std::vector<std::vector<SetId>> memberships(n);
  InstanceBuilder builder;
  for (std::size_t s = 0; s < m; ++s) {
    builder.add_set(draw_weight(weights, s, rng));
    for (std::size_t slot : sample_distinct(k, n, rng))
      memberships[slot].push_back(static_cast<SetId>(s));
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (memberships[slot].empty()) continue;  // unused slot: drop
    Capacity cap = cap_max <= 1
                       ? 1
                       : static_cast<Capacity>(rng.range(1, static_cast<std::int64_t>(cap_max)));
    builder.add_element(std::move(memberships[slot]), cap);
  }
  return builder.build();
}

}  // namespace

Instance random_instance(std::size_t m, std::size_t n, std::size_t k,
                         const WeightModel& weights, Rng& rng) {
  return build_random(m, n, k, 1, weights, rng);
}

Instance random_capacity_instance(std::size_t m, std::size_t n, std::size_t k,
                                  std::size_t cap_max,
                                  const WeightModel& weights, Rng& rng) {
  OSP_REQUIRE(cap_max >= 1);
  return build_random(m, n, k, cap_max, weights, rng);
}

Instance fixed_load_instance(std::size_t m, std::size_t n, std::size_t sigma,
                             const WeightModel& weights, Rng& rng) {
  OSP_REQUIRE(sigma >= 1 && sigma <= m);
  OSP_REQUIRE_MSG(n * sigma >= m, "not enough element slots to cover all sets");

  InstanceBuilder builder;
  for (std::size_t s = 0; s < m; ++s)
    builder.add_set(draw_weight(weights, s, rng));

  // Covering prefix: element e takes sets e·σ .. e·σ+σ-1 (mod m), so after
  // ceil(m/σ) elements every set belongs to at least one element.
  std::size_t covered = 0;
  std::size_t e = 0;
  for (; covered < m; ++e) {
    OSP_ASSERT(e < n);
    std::vector<SetId> parents;
    for (std::size_t i = 0; i < sigma; ++i)
      parents.push_back(static_cast<SetId>((covered + i) % m));
    std::sort(parents.begin(), parents.end());
    parents.erase(std::unique(parents.begin(), parents.end()), parents.end());
    // With σ <= m the window wraps at most once, so duplicates only occur
    // when covered + σ > m wraps onto already-covered ids — still distinct
    // ids, so the window always has exactly σ distinct sets.
    OSP_ASSERT(parents.size() == sigma);
    builder.add_element(std::move(parents), 1);
    covered += sigma;
  }
  for (; e < n; ++e) {
    std::vector<std::size_t> pick = [&] {
      std::unordered_set<std::size_t> seen;
      std::vector<std::size_t> out;
      while (out.size() < sigma) {
        std::size_t v = rng.below(m);
        if (seen.insert(v).second) out.push_back(v);
      }
      return out;
    }();
    std::vector<SetId> parents(pick.begin(), pick.end());
    builder.add_element(std::move(parents), 1);
  }
  return builder.build();
}

Instance regular_instance(std::size_t m, std::size_t k, std::size_t sigma,
                          const WeightModel& weights, Rng& rng) {
  OSP_REQUIRE(m >= 1 && k >= 1 && sigma >= 1);
  OSP_REQUIRE_MSG((m * k) % sigma == 0, "m*k must be divisible by sigma");
  const std::size_t n = m * k / sigma;
  OSP_REQUIRE_MSG(sigma <= m, "element load cannot exceed the number of sets");

  // Configuration model: m·k stubs (set s appears k times), shuffled and
  // cut into n groups of σ.  A group with a repeated set is invalid; repair
  // by swapping one offending stub with a random stub elsewhere.
  std::vector<SetId> stubs;
  stubs.reserve(m * k);
  for (std::size_t s = 0; s < m; ++s)
    for (std::size_t i = 0; i < k; ++i) stubs.push_back(static_cast<SetId>(s));
  std::shuffle(stubs.begin(), stubs.end(), rng.engine());

  auto group_of = [&](std::size_t pos) { return pos / sigma; };
  auto group_has = [&](std::size_t g, SetId s, std::size_t except) {
    for (std::size_t i = g * sigma; i < (g + 1) * sigma; ++i)
      if (i != except && stubs[i] == s) return true;
    return false;
  };

  const std::size_t max_passes = 200;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool clean = true;
    for (std::size_t pos = 0; pos < stubs.size(); ++pos) {
      std::size_t g = group_of(pos);
      if (!group_has(g, stubs[pos], pos)) continue;
      clean = false;
      // Swap with a random position whose group accepts our stub and whose
      // stub our group accepts.
      for (std::size_t attempt = 0; attempt < 100; ++attempt) {
        std::size_t other = rng.below(stubs.size());
        std::size_t og = group_of(other);
        if (og == g) continue;
        if (group_has(og, stubs[pos], other)) continue;
        if (group_has(g, stubs[other], pos)) continue;
        std::swap(stubs[pos], stubs[other]);
        break;
      }
    }
    if (clean) {
      InstanceBuilder builder;
      for (std::size_t s = 0; s < m; ++s)
        builder.add_set(draw_weight(weights, s, rng));
      for (std::size_t g = 0; g < n; ++g) {
        std::vector<SetId> parents(stubs.begin() + g * sigma,
                                   stubs.begin() + (g + 1) * sigma);
        builder.add_element(std::move(parents), 1);
      }
      return builder.build();
    }
  }
  OSP_REQUIRE_MSG(false, "regular_instance repair did not converge (m=" << m
                             << " k=" << k << " sigma=" << sigma << ")");
  return InstanceBuilder{}.build();  // unreachable
}

}  // namespace osp
