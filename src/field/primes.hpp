// Primality and prime-power utilities.
//
// The randomized lower bound of the paper (Lemma 9) requires the parameter
// ℓ to be a prime power, and the (M,N)-gadget requires N to be a prime
// power; these helpers classify and construct such numbers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace osp {

/// Deterministic Miller–Rabin valid for all 64-bit inputs.
bool is_prime(std::uint64_t n);

/// Smallest prime >= n (n <= 2^63 assumed).
std::uint64_t next_prime(std::uint64_t n);

/// Decomposition q = p^e with p prime, e >= 1.
struct PrimePower {
  std::uint64_t p;
  unsigned e;
};

/// Returns {p, e} if q = p^e for a prime p, otherwise nullopt.
std::optional<PrimePower> as_prime_power(std::uint64_t q);

/// True iff q is a prime power (q >= 2).
bool is_prime_power(std::uint64_t q);

/// Smallest prime power >= n (n >= 2).
std::uint64_t next_prime_power(std::uint64_t n);

/// All primes <= n via sieve of Eratosthenes (used by tests).
std::vector<std::uint64_t> primes_up_to(std::uint64_t n);

/// Distinct prime factors of n (n >= 1), ascending.
std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t n);

}  // namespace osp
