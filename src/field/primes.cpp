#include "field/primes.hpp"

#include <cmath>

#include "util/math.hpp"
#include "util/require.hpp"

namespace osp {

namespace {

// Witness set proven sufficient for deterministic testing below 2^64.
constexpr std::uint64_t kWitnesses[] = {2,  3,  5,  7,  11, 13,
                                        17, 19, 23, 29, 31, 37};

bool miller_rabin_witness(std::uint64_t n, std::uint64_t a,
                          std::uint64_t d, unsigned r) {
  std::uint64_t x = pow_mod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (unsigned i = 1; i < r; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : kWitnesses)
    if (!miller_rabin_witness(n, a, d, r)) return false;
  return true;
}

std::uint64_t next_prime(std::uint64_t n) {
  if (n <= 2) return 2;
  std::uint64_t c = n | 1;  // first odd >= n
  while (!is_prime(c)) c += 2;
  return c;
}

std::optional<PrimePower> as_prime_power(std::uint64_t q) {
  if (q < 2) return std::nullopt;
  if (is_prime(q)) return PrimePower{q, 1};
  // q = p^e with e >= 2 implies p <= q^(1/2); try e from large to small by
  // taking integer roots.
  for (unsigned e = 63; e >= 2; --e) {
    auto root = static_cast<std::uint64_t>(
        std::llround(std::pow(static_cast<double>(q), 1.0 / e)));
    for (std::uint64_t p = (root > 1 ? root - 1 : 2); p <= root + 1; ++p) {
      if (p < 2) continue;
      // Check p^e == q exactly.
      std::uint64_t v = 1;
      bool overflow = false;
      for (unsigned i = 0; i < e; ++i) {
        if (p != 0 && v > q / p) {
          overflow = true;
          break;
        }
        v *= p;
      }
      if (!overflow && v == q && is_prime(p)) return PrimePower{p, e};
    }
  }
  return std::nullopt;
}

bool is_prime_power(std::uint64_t q) { return as_prime_power(q).has_value(); }

std::uint64_t next_prime_power(std::uint64_t n) {
  OSP_REQUIRE(n >= 2 || n == 0 || n == 1);
  std::uint64_t c = n < 2 ? 2 : n;
  while (!is_prime_power(c)) ++c;
  return c;
}

std::vector<std::uint64_t> primes_up_to(std::uint64_t n) {
  std::vector<std::uint64_t> out;
  if (n < 2) return out;
  std::vector<bool> composite(n + 1, false);
  for (std::uint64_t i = 2; i <= n; ++i) {
    if (composite[i]) continue;
    out.push_back(i);
    for (std::uint64_t j = i * i; j <= n; j += i) composite[j] = true;
  }
  return out;
}

std::vector<std::uint64_t> distinct_prime_factors(std::uint64_t n) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) out.push_back(n);
  return out;
}

}  // namespace osp
