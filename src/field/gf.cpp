#include "field/gf.hpp"

#include <algorithm>

#include "util/math.hpp"
#include "util/require.hpp"

namespace osp {
namespace gfdetail {

Poly poly_trim(Poly f) {
  while (!f.empty() && f.back() == 0) f.pop_back();
  return f;
}

Poly poly_add(const Poly& f, const Poly& g, std::uint64_t p) {
  Poly r(std::max(f.size(), g.size()), 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    std::uint64_t s = (i < f.size() ? f[i] : 0);
    s += (i < g.size() ? g[i] : 0);
    r[i] = static_cast<std::uint32_t>(s % p);
  }
  return poly_trim(std::move(r));
}

Poly poly_sub(const Poly& f, const Poly& g, std::uint64_t p) {
  Poly r(std::max(f.size(), g.size()), 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    std::uint64_t a = (i < f.size() ? f[i] : 0);
    std::uint64_t b = (i < g.size() ? g[i] : 0);
    r[i] = static_cast<std::uint32_t>((a + p - b) % p);
  }
  return poly_trim(std::move(r));
}

Poly poly_mul(const Poly& f, const Poly& g, std::uint64_t p) {
  if (f.empty() || g.empty()) return {};
  Poly r(f.size() + g.size() - 1, 0);
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (f[i] == 0) continue;
    for (std::size_t j = 0; j < g.size(); ++j) {
      std::uint64_t v = r[i + j] + static_cast<std::uint64_t>(f[i]) * g[j];
      r[i + j] = static_cast<std::uint32_t>(v % p);
    }
  }
  return poly_trim(std::move(r));
}

Poly poly_mod(Poly f, const Poly& g, std::uint64_t p) {
  OSP_REQUIRE(!g.empty());
  OSP_REQUIRE_MSG(g.back() == 1, "poly_mod requires a monic divisor");
  f = poly_trim(std::move(f));
  while (f.size() >= g.size()) {
    std::uint64_t lead = f.back();
    std::size_t shift = f.size() - g.size();
    // f -= lead * x^shift * g
    for (std::size_t i = 0; i < g.size(); ++i) {
      std::uint64_t sub = (lead * g[i]) % p;
      f[shift + i] =
          static_cast<std::uint32_t>((f[shift + i] + p - sub) % p);
    }
    f = poly_trim(std::move(f));
  }
  return f;
}

Poly poly_gcd(Poly f, Poly g, std::uint64_t p) {
  f = poly_trim(std::move(f));
  g = poly_trim(std::move(g));
  while (!g.empty()) {
    // Make g monic so poly_mod applies.
    std::uint64_t lead = g.back();
    std::uint64_t inv_lead = pow_mod(lead, p - 2, p);
    Poly gm = g;
    for (auto& c : gm) c = static_cast<std::uint32_t>((c * inv_lead) % p);
    Poly r = poly_mod(f, gm, p);
    f = std::move(gm);
    g = std::move(r);
  }
  if (!f.empty() && f.back() != 1) {
    std::uint64_t inv_lead = pow_mod(f.back(), p - 2, p);
    for (auto& c : f) c = static_cast<std::uint32_t>((c * inv_lead) % p);
  }
  return f;
}

Poly poly_xpow_mod(std::uint64_t n, const Poly& f, std::uint64_t p) {
  Poly result{1};        // the constant polynomial 1
  Poly base{0, 1};       // x
  base = poly_mod(base, f, p);
  while (n > 0) {
    if (n & 1) result = poly_mod(poly_mul(result, base, p), f, p);
    base = poly_mod(poly_mul(base, base, p), f, p);
    n >>= 1;
  }
  return result;
}

bool poly_irreducible(const Poly& f, std::uint64_t p) {
  OSP_REQUIRE(!f.empty() && f.back() == 1);
  auto e = static_cast<unsigned>(f.size() - 1);
  OSP_REQUIRE(e >= 1);
  if (e == 1) return true;
  // Rabin's test: x^(p^e) == x mod f, and for every prime divisor d of e,
  // gcd(x^(p^(e/d)) - x, f) == 1.
  const Poly x{0, 1};
  std::uint64_t pe = checked_pow(p, e);
  Poly top = poly_xpow_mod(pe, f, p);
  if (poly_trim(poly_sub(top, x, p)) != Poly{}) return false;
  for (std::uint64_t d : distinct_prime_factors(e)) {
    std::uint64_t pm = checked_pow(p, e / static_cast<unsigned>(d));
    Poly g = poly_sub(poly_xpow_mod(pm, f, p), x, p);
    Poly common = poly_gcd(f, g, p);
    if (common.size() != 1) return false;  // gcd != constant
  }
  return true;
}

Poly find_irreducible(std::uint64_t p, unsigned e) {
  OSP_REQUIRE(e >= 1);
  if (e == 1) return Poly{0, 1};  // x itself; any monic degree-1 works
  // Enumerate monic degree-e polynomials by their lower coefficient vector
  // interpreted base p; density of irreducibles is ~1/e so this terminates
  // quickly.
  std::uint64_t pe = checked_pow(p, e);
  for (std::uint64_t idx = 1; idx < pe; ++idx) {
    Poly f(e + 1, 0);
    std::uint64_t v = idx;
    for (unsigned i = 0; i < e; ++i) {
      f[i] = static_cast<std::uint32_t>(v % p);
      v /= p;
    }
    f[e] = 1;
    if (f[0] == 0) continue;  // divisible by x
    if (poly_irreducible(f, p)) return f;
  }
  OSP_REQUIRE_MSG(false, "no irreducible polynomial found (impossible)");
  return {};
}

}  // namespace gfdetail

FiniteField::FiniteField(std::uint64_t q) : q_(q) {
  auto pp = as_prime_power(q);
  OSP_REQUIRE_MSG(pp.has_value(), "field order " << q << " is not a prime power");
  OSP_REQUIRE_MSG(q <= (1ULL << 20), "field order " << q << " too large");
  p_ = pp->p;
  e_ = pp->e;
  modulus_ = gfdetail::find_irreducible(p_, e_);
  if (q_ <= kTableLimit) {
    mul_table_.resize(q_ * q_);
    for (std::uint64_t a = 0; a < q_; ++a)
      for (std::uint64_t b = a; b < q_; ++b) {
        Elem v = mul_slow(static_cast<Elem>(a), static_cast<Elem>(b));
        mul_table_[a * q_ + b] = v;
        mul_table_[b * q_ + a] = v;
      }
    has_table_ = true;
  }
}

FiniteField::Elem FiniteField::add(Elem a, Elem b) const {
  OSP_ASSERT(a < q_ && b < q_);
  if (e_ == 1) return static_cast<Elem>((static_cast<std::uint64_t>(a) + b) % p_);
  // Coefficient-wise addition in base-p representation.
  Elem r = 0;
  std::uint64_t mult = 1;
  for (unsigned i = 0; i < e_; ++i) {
    std::uint64_t ca = (a / mult) % p_;
    std::uint64_t cb = (b / mult) % p_;
    r += static_cast<Elem>(((ca + cb) % p_) * mult);
    mult *= p_;
  }
  return r;
}

FiniteField::Elem FiniteField::neg(Elem a) const {
  OSP_ASSERT(a < q_);
  if (e_ == 1) return static_cast<Elem>(a == 0 ? 0 : p_ - a);
  Elem r = 0;
  std::uint64_t mult = 1;
  for (unsigned i = 0; i < e_; ++i) {
    std::uint64_t ca = (a / mult) % p_;
    r += static_cast<Elem>(((p_ - ca) % p_) * mult);
    mult *= p_;
  }
  return r;
}

FiniteField::Elem FiniteField::sub(Elem a, Elem b) const {
  return add(a, neg(b));
}

FiniteField::Elem FiniteField::mul(Elem a, Elem b) const {
  OSP_ASSERT(a < q_ && b < q_);
  if (has_table_) return mul_table_[static_cast<std::uint64_t>(a) * q_ + b];
  return mul_slow(a, b);
}

FiniteField::Elem FiniteField::mul_slow(Elem a, Elem b) const {
  if (e_ == 1)
    return static_cast<Elem>(mul_mod(a, b, p_));
  // Decode to polynomials, multiply, reduce.
  gfdetail::Poly fa, fb;
  std::uint64_t va = a, vb = b;
  for (unsigned i = 0; i < e_; ++i) {
    fa.push_back(static_cast<std::uint32_t>(va % p_));
    fb.push_back(static_cast<std::uint32_t>(vb % p_));
    va /= p_;
    vb /= p_;
  }
  fa = gfdetail::poly_trim(std::move(fa));
  fb = gfdetail::poly_trim(std::move(fb));
  gfdetail::Poly r =
      gfdetail::poly_mod(gfdetail::poly_mul(fa, fb, p_), modulus_, p_);
  Elem out = 0;
  std::uint64_t mult = 1;
  for (std::size_t i = 0; i < r.size(); ++i) {
    out += static_cast<Elem>(r[i] * mult);
    mult *= p_;
  }
  return out;
}

FiniteField::Elem FiniteField::pow(Elem a, std::uint64_t n) const {
  Elem result = one();
  Elem base = a;
  while (n > 0) {
    if (n & 1) result = mul(result, base);
    base = mul(base, base);
    n >>= 1;
  }
  return result;
}

FiniteField::Elem FiniteField::inv(Elem a) const {
  OSP_REQUIRE_MSG(a != 0, "zero has no multiplicative inverse");
  // Fermat/Lagrange: a^(q-2) = a^{-1} in GF(q).
  return pow(a, q_ - 2);
}

FiniteField::Elem FiniteField::div(Elem a, Elem b) const {
  return mul(a, inv(b));
}

}  // namespace osp
