// Finite fields GF(q) for prime-power q.
//
// Elements are represented as integers in [0, q).  For a prime field the
// representation is the residue itself; for an extension field GF(p^e) the
// integer encodes the coefficient vector of a polynomial over GF(p) in
// base p (index = sum c_i * p^i), reduced modulo a monic irreducible
// polynomial found at construction time.
//
// The gadget constructions of the paper need only add/mul over small
// fields (q up to a few thousand), so correctness and clarity win over
// raw speed; a multiplication table is cached for q <= kTableLimit.
#pragma once

#include <cstdint>
#include <vector>

#include "field/primes.hpp"

namespace osp {

/// Arithmetic in the finite field of order q = p^e.
class FiniteField {
 public:
  using Elem = std::uint32_t;

  /// Largest order for which add/mul tables are precomputed.
  static constexpr std::uint64_t kTableLimit = 4096;

  /// Constructs GF(q).  Throws RequireError unless q is a prime power
  /// with q <= 2^20 (ample for every construction in this library).
  explicit FiniteField(std::uint64_t q);

  std::uint64_t order() const { return q_; }
  std::uint64_t characteristic() const { return p_; }
  unsigned degree() const { return e_; }

  Elem zero() const { return 0; }
  Elem one() const { return 1; }

  Elem add(Elem a, Elem b) const;
  Elem sub(Elem a, Elem b) const;
  Elem neg(Elem a) const;
  Elem mul(Elem a, Elem b) const;

  /// Multiplicative inverse; requires a != 0.
  Elem inv(Elem a) const;

  /// a / b; requires b != 0.
  Elem div(Elem a, Elem b) const;

  /// a^n for n >= 0 (0^0 = 1).
  Elem pow(Elem a, std::uint64_t n) const;

  /// True iff a is a valid element index.
  bool contains(std::uint64_t a) const { return a < q_; }

  /// The monic irreducible modulus as coefficient vector c_0..c_e
  /// (prime fields return {.., 1} of degree 1, i.e. x - 0 ... in practice
  /// {0, 1}); exposed for tests.
  const std::vector<std::uint32_t>& modulus() const { return modulus_; }

 private:
  Elem mul_slow(Elem a, Elem b) const;  // polynomial multiplication mod modulus_

  std::uint64_t q_;
  std::uint64_t p_;
  unsigned e_;
  std::vector<std::uint32_t> modulus_;     // degree e_, monic
  std::vector<Elem> mul_table_;            // q*q entries if q <= kTableLimit
  bool has_table_ = false;
};

namespace gfdetail {

/// Dense polynomial over GF(p), little-endian coefficients, no trailing
/// zeros (the zero polynomial is the empty vector).  Exposed for tests of
/// the irreducibility machinery.
using Poly = std::vector<std::uint32_t>;

Poly poly_trim(Poly f);
Poly poly_add(const Poly& f, const Poly& g, std::uint64_t p);
Poly poly_sub(const Poly& f, const Poly& g, std::uint64_t p);
Poly poly_mul(const Poly& f, const Poly& g, std::uint64_t p);
/// Remainder of f divided by monic g.
Poly poly_mod(Poly f, const Poly& g, std::uint64_t p);
Poly poly_gcd(Poly f, Poly g, std::uint64_t p);
/// x^n mod f (f monic).
Poly poly_xpow_mod(std::uint64_t n, const Poly& f, std::uint64_t p);

/// True iff the monic polynomial f of degree >= 1 is irreducible over GF(p).
bool poly_irreducible(const Poly& f, std::uint64_t p);

/// Finds a monic irreducible polynomial of degree e over GF(p)
/// deterministically (lexicographic search; e is small in practice).
Poly find_irreducible(std::uint64_t p, unsigned e);

}  // namespace gfdetail
}  // namespace osp
