// Random number generation for the osp library.
//
// All randomized components take an explicit Rng so experiments are
// reproducible from a single seed.  Rng::split derives statistically
// independent child generators (e.g. one per trial of a benchmark) without
// the children sharing state with the parent.
#pragma once

#include <cstdint>
#include <random>

namespace osp {

/// Deterministic pseudo-random generator with splittable seeding.
///
/// Wraps std::mt19937_64 and adds convenience draws used throughout the
/// library.  Copyable; copies evolve independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a 64-bit value; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child generator.  Children obtained with
  /// distinct `stream` values (or from successive calls) do not correlate
  /// with each other or with the parent's future output.
  Rng split(std::uint64_t stream);

  /// Uniform integer in [0, bound).  Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in (0, 1) — never returns exactly 0, safe for log().
  double uniform_open();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed draw with the given rate (> 0).
  double exponential(double rate);

  /// Standard-library compatibility: uniform 64-bit output.
  std::uint64_t operator()() { return engine_(); }
  static constexpr std::uint64_t min() { return std::mt19937_64::min(); }
  static constexpr std::uint64_t max() { return std::mt19937_64::max(); }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 step; used for seed derivation and in tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace osp
