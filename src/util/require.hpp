// Checked runtime assertions for the osp library.
//
// The library validates untrusted inputs (instances arriving online,
// user-supplied parameters) with OSP_REQUIRE, which throws and therefore
// stays active in release builds.  Internal invariants use OSP_ASSERT,
// which compiles away under NDEBUG.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace osp {

/// Thrown when a precondition on user-supplied data is violated.
class RequireError : public std::logic_error {
 public:
  explicit RequireError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void require_fail(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw RequireError(os.str());
}

}  // namespace detail
}  // namespace osp

/// Precondition check on external input; throws osp::RequireError on failure.
#define OSP_REQUIRE(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::osp::detail::require_fail(#expr, __FILE__, __LINE__, {});      \
  } while (0)

/// Precondition check with an explanatory message (streamed).  The local
/// stream carries a macro-private name: a plain `os_` shadows same-named
/// members in classes whose methods use the macro (ShardSink::os_ did).
#define OSP_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream osp_require_os_;                              \
      osp_require_os_ << msg;                                          \
      ::osp::detail::require_fail(#expr, __FILE__, __LINE__,           \
                                  osp_require_os_.str());              \
    }                                                                  \
  } while (0)

/// Internal invariant; disabled when NDEBUG is defined.
#ifdef NDEBUG
#define OSP_ASSERT(expr) ((void)0)
#else
#define OSP_ASSERT(expr) OSP_REQUIRE(expr)
#endif
