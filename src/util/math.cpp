#include "util/math.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace osp {

std::uint64_t isqrt(std::uint64_t n) {
  if (n == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n)));
  // std::sqrt can be off by one at 64-bit scale; correct both directions.
  while (r > 0 && r > n / r) --r;
  while ((r + 1) <= n / (r + 1)) ++r;
  return r;
}

std::uint64_t checked_pow(std::uint64_t base, unsigned exp) {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < exp; ++i) {
    OSP_REQUIRE_MSG(base == 0 || result <= std::numeric_limits<std::uint64_t>::max() / (base ? base : 1),
                    "checked_pow overflow: " << base << "^" << exp);
    result *= base;
  }
  return result;
}

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  OSP_REQUIRE(m > 0);
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  OSP_REQUIRE(m > 0);
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::uint64_t gcd64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

double harmonic(std::uint64_t n) {
  double h = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

double log_or_one(double x) {
  double l = std::log(x);
  return l > 1.0 ? l : 1.0;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace osp
