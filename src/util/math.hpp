// Small integer/number-theory helpers shared across modules.
#pragma once

#include <cstdint>
#include <vector>

namespace osp {

/// Floor of the square root of n.
std::uint64_t isqrt(std::uint64_t n);

/// base^exp with overflow check; throws RequireError on overflow.
std::uint64_t checked_pow(std::uint64_t base, unsigned exp);

/// base^exp mod m (m > 0), using 128-bit intermediate products.
std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

/// a*b mod m without overflow.
std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// Greatest common divisor.
std::uint64_t gcd64(std::uint64_t a, std::uint64_t b);

/// The n-th harmonic number H_n = sum_{i=1..n} 1/i (H_0 = 0).
double harmonic(std::uint64_t n);

/// log(x) computed as log2(x)/log2(e)... simply std::log wrapped with the
/// convention log_or_one(x) = max(log x, 1), used by bound formulas of the
/// form (log log k / log k)^2 which are only meaningful for large k.
double log_or_one(double x);

/// Mean of a vector (0 for empty).
double mean(const std::vector<double>& xs);

/// Population standard deviation of a vector (0 for size < 2).
double stddev(const std::vector<double>& xs);

}  // namespace osp
