#include "util/rng.hpp"

#include "util/require.hpp"

namespace osp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Expand the 64-bit seed through SplitMix64 into a full seed sequence so
  // that nearby seeds (0, 1, 2, ...) give unrelated streams.
  std::uint64_t s = seed;
  std::seed_seq seq{splitmix64(s), splitmix64(s), splitmix64(s), splitmix64(s)};
  engine_.seed(seq);
}

Rng Rng::split(std::uint64_t stream) {
  // Mix the parent's next output with the stream id; the parent advances so
  // successive splits with equal stream ids still differ.
  std::uint64_t s = engine_() ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(splitmix64(s));
}

std::uint64_t Rng::below(std::uint64_t bound) {
  OSP_REQUIRE(bound > 0);
  return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  OSP_REQUIRE(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform_open() {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return u;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  OSP_REQUIRE(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

}  // namespace osp
