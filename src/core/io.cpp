#include "core/io.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "util/require.hpp"

namespace osp {

namespace {

/// Line-oriented reader that skips blanks/comments and tracks position
/// for error messages.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next meaningful line; throws if the stream ends.
  std::string next(const char* what) {
    std::string line;
    while (std::getline(is_, line)) {
      ++lineno_;
      auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      // Trim whitespace.
      auto begin = line.find_first_not_of(" \t\r");
      if (begin == std::string::npos) continue;
      auto end = line.find_last_not_of(" \t\r");
      return line.substr(begin, end - begin + 1);
    }
    OSP_REQUIRE_MSG(false, "unexpected end of input, expected " << what);
    return {};
  }

  std::size_t lineno() const { return lineno_; }

 private:
  std::istream& is_;
  std::size_t lineno_ = 0;
};

}  // namespace

void write_instance(std::ostream& os, const Instance& inst) {
  // max_digits10 guarantees double -> text -> double round-trips exactly.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "osp-instance v1\n";
  os << "sets " << inst.num_sets() << "\n";
  for (SetId s = 0; s < inst.num_sets(); ++s) os << inst.weight(s) << "\n";
  os << "elements " << inst.num_elements() << "\n";
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const ArrivalView a = inst.arrival(u);
    os << a.capacity;
    for (SetId s : a.parents) os << ' ' << s;
    os << "\n";
  }
}

Instance read_instance(std::istream& is) {
  LineReader reader(is);

  std::string header = reader.next("header");
  OSP_REQUIRE_MSG(header == "osp-instance v1",
                  "bad header at line " << reader.lineno() << ": '" << header
                                        << "'");

  auto parse_count = [&](const char* keyword) {
    std::string line = reader.next(keyword);
    std::istringstream ss(line);
    std::string word;
    std::size_t count = 0;
    OSP_REQUIRE_MSG(
        (ss >> word >> count) && word == keyword && ss.eof(),
        "expected '" << keyword << " <count>' at line " << reader.lineno());
    return count;
  };

  InstanceBuilder builder;
  const std::size_t m = parse_count("sets");
  for (std::size_t s = 0; s < m; ++s) {
    std::string line = reader.next("set weight");
    std::istringstream ss(line);
    Weight w;
    OSP_REQUIRE_MSG((ss >> w) && ss.eof(),
                    "bad set weight at line " << reader.lineno());
    builder.add_set(w);
  }

  const std::size_t n = parse_count("elements");
  for (std::size_t u = 0; u < n; ++u) {
    std::string line = reader.next("element line");
    std::istringstream ss(line);
    Capacity cap = 0;
    OSP_REQUIRE_MSG(static_cast<bool>(ss >> cap),
                    "bad element capacity at line " << reader.lineno());
    std::vector<SetId> parents;
    SetId s;
    while (ss >> s) parents.push_back(s);
    OSP_REQUIRE_MSG(ss.eof(),
                    "trailing garbage at line " << reader.lineno());
    builder.add_element(std::move(parents), cap);
  }
  return builder.build();
}

void save_instance(const std::string& path, const Instance& inst) {
  std::ofstream os(path);
  OSP_REQUIRE_MSG(os.good(), "cannot open " << path << " for writing");
  write_instance(os, inst);
  OSP_REQUIRE_MSG(os.good(), "write to " << path << " failed");
}

Instance load_instance(const std::string& path) {
  std::ifstream is(path);
  OSP_REQUIRE_MSG(is.good(), "cannot open " << path);
  return read_instance(is);
}

}  // namespace osp
