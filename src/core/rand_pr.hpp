// Algorithm randPr — the paper's randomized online set packing algorithm
// (Section 3.1) — plus its distributed (hashed) variant and ablation knobs.
//
//   For each set S, pick a random priority r(S) ~ R_{w(S)}.
//   On arrival of element u with capacity b(u):
//     assign u to the b(u) sets with the highest priority in C(u).
//
// The hashed variant replaces the true random draw by h(set id) for a
// shared hash function h, which is what a distributed deployment (several
// routers seeing parts of the same frame) would use; Section 3.1 notes that
// kmax·σmax-wise independence suffices.
//
// Both variants implement the flat decide() path: selection is a linear
// argmax scan for b(u) = 1 and an O(σ) std::nth_element otherwise, with all
// working storage held in reusable member buffers — zero allocations per
// decision in steady state.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "core/priority.hpp"
#include "hash/universal_hash.hpp"
#include "util/rng.hpp"

namespace osp {

/// Configuration knobs for RandPr; defaults reproduce the paper exactly.
struct RandPrOptions {
  /// If true, never assign an element to a set that is already dead (the
  /// paper's algorithm does not filter; filtering is an ablation that can
  /// only help and is measured in bench_ablation).
  bool filter_dead = false;

  /// With filter_dead: a set counts as dead once it missed MORE than this
  /// many elements.  0 reproduces strict all-or-nothing scoring; r > 0
  /// matches a PartialCreditRule with max_misses = r (open problem 3).
  std::size_t allowed_misses = 0;

  /// If true, ignore weights when drawing priorities (all R_1), an
  /// ablation quantifying the value of the R_w distribution.
  bool ignore_weights = false;

  /// If true, redraw priorities at every element instead of fixing them
  /// per set — breaks the algorithm's consistency and serves as a negative
  /// control in bench_ablation.
  bool fresh_priorities_per_element = false;
};

/// The paper's randPr with true (pseudo-)randomness.
///
/// Perf note: the paper-exact configuration never reads the activity
/// tracker (randPr conditions on nothing but its fixed priorities), so
/// this class updates ActiveTracking only when filter_dead is set; with
/// the default options the tracker stays at its start() state.
class RandPr : public ActiveTracking {
 public:
  /// `rng` seeds the per-run priority draws.
  explicit RandPr(Rng rng, RandPrOptions options = {});

  std::string name() const override;
  void start(const std::vector<SetMeta>& sets) override;
  std::size_t decide(ElementId u, Capacity capacity, const SetId* candidates,
                     std::size_t num_candidates, SetId* out) override;

  /// Block kernel for the paper-exact configuration: one virtual call per
  /// arrival block, selection over the SoA priorities with the key/tie
  /// base pointers hoisted out of the per-element loop.  Stateful
  /// configurations (filter_dead, fresh priorities) fall back to the
  /// per-element loop, which preserves their side-effect order exactly.
  void decide_batch(const ArrivalBlock& block, BlockScratch& scratch,
                    BlockChoices& out) override;

  /// All randomness flows through rng_, and start() draws every priority
  /// fresh from it, so swapping the generator is a complete re-arm.
  void reseed(Rng rng) override { rng_ = rng; }
  bool reseedable() const override { return true; }

  /// Priority key currently assigned to set s (for tests).
  PriorityKey priority(SetId s) const {
    return PriorityKey{keys_[s], ties_[s]};
  }

 private:
  Rng rng_;
  RandPrOptions options_;
  // Priorities in structure-of-arrays form: the selection loop compares
  // keys_ (8-byte loads); ties_ is consulted only on exact key equality.
  // qranks_ is the quantized u32 projection of keys_ (see
  // quantized_key_rank) that the block kernel compares instead, falling
  // back to (keys_, ties_) on rank collisions; rebuilt by every start().
  std::vector<double> keys_;
  std::vector<std::uint64_t> ties_;
  std::vector<std::uint32_t> qranks_;
  std::vector<SetId> pool_scratch_;  // filter_dead survivors
  std::vector<SetId> topk_scratch_;  // nth_element workspace
};

/// Distributed randPr: priorities come from a shared hash of the set id,
/// so independent servers make consistent decisions without communication.
///
/// HashFn maps a set id to a uniform double in (0, 1); the class adapts
/// any of the families in hash/universal_hash.hpp.
///
/// Perf note: like RandPr, the activity tracker is updated only when
/// filter_dead is set; with default options the inherited accessors stay
/// at their start() state.
class HashedRandPr : public ActiveTracking {
 public:
  using HashFn = std::function<double(std::uint64_t)>;

  /// `label` names the hash family for benchmark tables.
  HashedRandPr(HashFn hash, std::string label, RandPrOptions options = {});

  /// Convenience factories.  `options` composes like RandPr's (the label
  /// gains the matching /filt-style suffix) and the rehash recipe is
  /// installed either way, so every factory-built instance is reseedable.
  static std::unique_ptr<HashedRandPr> with_polynomial(
      unsigned independence, Rng& rng, RandPrOptions options = {});
  static std::unique_ptr<HashedRandPr> with_tabulation(
      Rng& rng, RandPrOptions options = {});
  static std::unique_ptr<HashedRandPr> with_multiply_shift(
      Rng& rng, RandPrOptions options = {});

  std::string name() const override;
  void start(const std::vector<SetMeta>& sets) override;
  std::size_t decide(ElementId u, Capacity capacity, const SetId* candidates,
                     std::size_t num_candidates, SetId* out) override;

  /// Same block kernel as RandPr (the SoA priorities are laid out
  /// identically); falls back to the per-element loop when filter_dead
  /// makes decisions stateful.
  void decide_batch(const ArrivalBlock& block, BlockScratch& scratch,
                    BlockChoices& out) override;

  /// The hashed variant's randomness is the hash function itself, drawn
  /// at construction; reseeding therefore needs a recipe for rebuilding
  /// the hash from an Rng.  The with_* factories install one, making
  /// those instances reseedable; a bare HashedRandPr(hash, label) has no
  /// recipe and reports reseedable() == false.
  using Rehash = std::function<HashFn(Rng)>;
  void set_rehash(Rehash rehash) { rehash_ = std::move(rehash); }
  void reseed(Rng rng) override;
  bool reseedable() const override { return rehash_ != nullptr; }

 private:
  HashFn hash_;
  Rehash rehash_;
  std::string label_;
  RandPrOptions options_;
  std::vector<double> keys_;
  std::vector<std::uint64_t> ties_;
  std::vector<std::uint32_t> qranks_;  // see RandPr::qranks_
  std::vector<SetId> pool_scratch_;
  std::vector<SetId> topk_scratch_;
};

/// Shared helper: picks the `capacity` candidates with the highest keys,
/// in descending key order.  Allocating convenience wrapper over the flat
/// form below; exposed for reuse by tests.
std::vector<SetId> top_by_priority(const std::vector<SetId>& candidates,
                                   const std::vector<PriorityKey>& keys,
                                   Capacity capacity);

/// Flat form: writes the min(capacity, n) highest-key candidates into
/// `out` (descending key order when a selection happens; input order when
/// every candidate fits) and returns the count.  `scratch` is reused as
/// the nth_element workspace.  O(n) plus O(c log c) for the final order of
/// the c = capacity winners.
std::size_t top_by_priority_flat(const SetId* candidates, std::size_t n,
                                 const std::vector<PriorityKey>& keys,
                                 Capacity capacity, SetId* out,
                                 std::vector<SetId>& scratch);

/// Structure-of-arrays form used by the RandPr decide() hot path: `keys`
/// orders candidates, `ties` breaks exact key collisions (same total order
/// as PriorityKey).  Identical selection semantics to the forms above.
std::size_t top_by_priority_soa(const SetId* candidates, std::size_t n,
                                const double* keys,
                                const std::uint64_t* ties, Capacity capacity,
                                SetId* out, std::vector<SetId>& scratch);

/// Whole-block form of top_by_priority_soa: runs the same selection over
/// every record of `block` in one pass, writing the CSR-shaped result into
/// `out`.  `qranks` must hold quantized_key_rank(keys[s]) for every set.
/// Unit-capacity rows run an argmax-only scan over the L1-resident u32
/// ranks — lane-parallel via the vector kernel the runtime ISA dispatcher
/// selected (core/simd.hpp, core/cpu_features.hpp), scalar otherwise —
/// touching the exact (keys, ties) order only on rank collisions; general
/// capacities run the per-record nth_element selection.  Decision-identical,
/// record for record and on every ISA tier, to calling top_by_priority_soa
/// per element (fuzzed in test_engine, forced-ISA variants included).
/// Participates in the fused-histogram channel: when scratch.got is set,
/// every chosen set's counter is bumped in the writing pass and
/// scratch.hist_applied is reported (see BlockScratch).
void top_by_priority_soa_block(const ArrivalBlock& block, const double* keys,
                               const std::uint64_t* ties,
                               const std::uint32_t* qranks,
                               BlockScratch& scratch, BlockChoices& out);

}  // namespace osp
