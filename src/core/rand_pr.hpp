// Algorithm randPr — the paper's randomized online set packing algorithm
// (Section 3.1) — plus its distributed (hashed) variant and ablation knobs.
//
//   For each set S, pick a random priority r(S) ~ R_{w(S)}.
//   On arrival of element u with capacity b(u):
//     assign u to the b(u) sets with the highest priority in C(u).
//
// The hashed variant replaces the true random draw by h(set id) for a
// shared hash function h, which is what a distributed deployment (several
// routers seeing parts of the same frame) would use; Section 3.1 notes that
// kmax·σmax-wise independence suffices.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "core/priority.hpp"
#include "hash/universal_hash.hpp"
#include "util/rng.hpp"

namespace osp {

/// Configuration knobs for RandPr; defaults reproduce the paper exactly.
struct RandPrOptions {
  /// If true, never assign an element to a set that is already dead (the
  /// paper's algorithm does not filter; filtering is an ablation that can
  /// only help and is measured in bench_ablation).
  bool filter_dead = false;

  /// With filter_dead: a set counts as dead once it missed MORE than this
  /// many elements.  0 reproduces strict all-or-nothing scoring; r > 0
  /// matches a PartialCreditRule with max_misses = r (open problem 3).
  std::size_t allowed_misses = 0;

  /// If true, ignore weights when drawing priorities (all R_1), an
  /// ablation quantifying the value of the R_w distribution.
  bool ignore_weights = false;

  /// If true, redraw priorities at every element instead of fixing them
  /// per set — breaks the algorithm's consistency and serves as a negative
  /// control in bench_ablation.
  bool fresh_priorities_per_element = false;
};

/// The paper's randPr with true (pseudo-)randomness.
class RandPr : public ActiveTracking {
 public:
  /// `rng` seeds the per-run priority draws.
  explicit RandPr(Rng rng, RandPrOptions options = {});

  std::string name() const override;
  void start(const std::vector<SetMeta>& sets) override;
  std::vector<SetId> on_element(ElementId u, Capacity capacity,
                                const std::vector<SetId>& candidates) override;

  /// Priority key currently assigned to set s (for tests).
  PriorityKey priority(SetId s) const { return priorities_[s]; }

 private:
  Rng rng_;
  RandPrOptions options_;
  std::vector<PriorityKey> priorities_;
};

/// Distributed randPr: priorities come from a shared hash of the set id,
/// so independent servers make consistent decisions without communication.
///
/// HashFn maps a set id to a uniform double in (0, 1); the class adapts
/// any of the families in hash/universal_hash.hpp.
class HashedRandPr : public ActiveTracking {
 public:
  using HashFn = std::function<double(std::uint64_t)>;

  /// `label` names the hash family for benchmark tables.
  HashedRandPr(HashFn hash, std::string label, RandPrOptions options = {});

  /// Convenience factories.
  static std::unique_ptr<HashedRandPr> with_polynomial(unsigned independence,
                                                       Rng& rng);
  static std::unique_ptr<HashedRandPr> with_tabulation(Rng& rng);
  static std::unique_ptr<HashedRandPr> with_multiply_shift(Rng& rng);

  std::string name() const override;
  void start(const std::vector<SetMeta>& sets) override;
  std::vector<SetId> on_element(ElementId u, Capacity capacity,
                                const std::vector<SetId>& candidates) override;

 private:
  HashFn hash_;
  std::string label_;
  RandPrOptions options_;
  std::vector<PriorityKey> priorities_;
};

/// Shared helper: picks the `capacity` candidates with the highest keys.
/// Exposed for reuse by HashedRandPr and tests.
std::vector<SetId> top_by_priority(const std::vector<SetId>& candidates,
                                   const std::vector<PriorityKey>& keys,
                                   Capacity capacity);

}  // namespace osp
