// Plain-text serialization of osp instances.
//
// Enables saving generated workloads (including adversarial transcripts)
// and replaying them across runs, machines, or against external solvers.
//
// Format (line oriented, '#' starts a comment):
//
//   osp-instance v1
//   sets <m>
//   <weight>                      # one line per set, in id order
//   elements <n>
//   <capacity> <parent> <parent>...   # one line per element, arrival order
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"

namespace osp {

/// Writes `inst` in the v1 text format.
void write_instance(std::ostream& os, const Instance& inst);

/// Parses the v1 text format; throws RequireError with a line number on
/// malformed input.
Instance read_instance(std::istream& is);

/// File convenience wrappers; throw RequireError on I/O failure.
void save_instance(const std::string& path, const Instance& inst);
Instance load_instance(const std::string& path);

}  // namespace osp
