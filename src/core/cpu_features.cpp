#include "core/cpu_features.hpp"

#include <cstdlib>

#include "util/require.hpp"

namespace osp::simd {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "unknown";
}

const CpuFeatures& detect_cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    // __builtin_cpu_supports runs CPUID once per flag and caches inside
    // libgcc/compiler-rt; this lambda additionally caches the struct.
    f.sse2 = __builtin_cpu_supports("sse2") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
#elif defined(__aarch64__)
    // AdvSIMD is architecturally mandatory on AArch64.
    f.neon = true;
#endif
    return f;
  }();
  return features;
}

bool isa_available(Isa isa) {
  const CpuFeatures& f = detect_cpu_features();
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kSse2: return f.sse2;
    case Isa::kAvx2: return f.avx2;
    case Isa::kNeon: return f.neon;
  }
  return false;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon})
    if (isa_available(isa)) isas.push_back(isa);
  return isas;
}

Isa best_isa() {
  // Preference within an architecture: AVX2 > SSE2 > scalar on x86,
  // NEON > scalar on aarch64.  available_isas() is ascending by tier.
  return available_isas().back();
}

Isa parse_isa(const std::string& name) {
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon})
    if (name == isa_name(isa)) return isa;
  OSP_REQUIRE_MSG(false, "unknown ISA '" << name
                         << "'; valid values: scalar sse2 avx2 neon");
  return Isa::kScalar;  // unreachable
}

namespace {

/// The startup selection: OSP_FORCE_ISA wins (and must name a runnable
/// ISA — forcing an unsupported one is a hard error so a forced-ISA CI
/// leg can never silently test the wrong kernel); otherwise the best
/// tier the CPU supports.
Isa select_isa() {
  const char* env = std::getenv("OSP_FORCE_ISA");
  if (env != nullptr && *env != '\0') {
    const Isa forced = parse_isa(env);
    OSP_REQUIRE_MSG(isa_available(forced),
                    "OSP_FORCE_ISA=" << env
                                     << " names an ISA this CPU cannot run");
    return forced;
  }
  return best_isa();
}

Isa& active_slot() {
  static Isa isa = select_isa();
  return isa;
}

}  // namespace

Isa active_isa() { return active_slot(); }

const char* active_isa_name() { return isa_name(active_isa()); }

void set_active_isa(Isa isa) {
  OSP_REQUIRE_MSG(isa_available(isa),
                  "set_active_isa: " << isa_name(isa)
                                     << " is not available on this CPU");
  active_slot() = isa;
}

void refresh_active_isa() { active_slot() = select_isa(); }

std::string isa_selection_note() {
  const char* env = std::getenv("OSP_FORCE_ISA");
  std::string note = isa_name(active_isa());
  if (env != nullptr && *env != '\0' && active_isa() == parse_isa(env))
    return note + " (forced via OSP_FORCE_ISA)";
  if (active_isa() == best_isa()) return note + " (auto: best supported)";
  return note + " (pinned in-process)";
}

}  // namespace osp::simd
