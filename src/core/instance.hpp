// The osp instance model: a weighted set system whose elements arrive
// online in a fixed order, each with a capacity and the list of sets that
// contain it (Section 2 of the paper).
//
// Storage is flat (CSR): all parent lists live in one contiguous array and
// all member lists in another, so the per-arrival decision path touches a
// single cache-resident row instead of chasing a vector-of-vectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/csr.hpp"
#include "core/types.hpp"

namespace osp {

/// One online arrival as supplied to the builder: element u with capacity
/// b(u) and parent sets C(u).
struct Arrival {
  Capacity capacity = 1;
  std::vector<SetId> parents;  // sorted, distinct
};

/// Zero-copy view of one arrival inside a built Instance.
struct ArrivalView {
  Capacity capacity = 1;
  Span<SetId> parents;  // sorted, distinct, borrowed from the instance
};

/// Aggregate statistics of an instance, in the paper's notation.
///
/// Loads: σ(u) = |C(u)|, weighted load σ$(u) = w(C(u)), adjusted load
/// ν(u) = σ(u)/b(u).  Averages are over elements (for loads) or sets
/// (for sizes), matching the paper's conventions.
struct InstanceStats {
  std::size_t num_sets = 0;             // m
  std::size_t num_elements = 0;         // n
  Weight total_weight = 0;              // w(C)
  std::size_t k_max = 0;                // max set size
  double k_avg = 0;                     // average set size k̄
  std::size_t sigma_max = 0;            // max load
  double sigma_avg = 0;                 // σ̄
  double sigma_sq_avg = 0;              // avg of σ(u)²
  double sigma_w_avg = 0;               // avg of σ$(u)
  double sigma_sigma_w_avg = 0;         // avg of σ(u)·σ$(u)
  double nu_max = 0;                    // max adjusted load
  double nu_avg = 0;                    // ν̄
  double nu_sigma_w_avg = 0;            // avg of ν(u)·σ$(u)
  Capacity b_max = 1;                   // max capacity
  bool unit_capacity = true;            // all b(u) == 1
  bool uniform_size = true;             // all |S| equal
  bool uniform_load = true;             // all σ(u) equal
  bool unweighted = true;               // all w(S) == 1
};

/// Immutable online set packing instance.
///
/// Construction goes through InstanceBuilder, which validates the input.
/// Per the paper, algorithms know each set's weight and size up front but
/// learn membership only as elements arrive.
class Instance {
 public:
  std::size_t num_sets() const { return weights_.size(); }
  std::size_t num_elements() const { return capacities_.size(); }

  Weight weight(SetId s) const { return weights_[s]; }
  const std::vector<Weight>& weights() const { return weights_; }

  /// Size |S| of set s (number of elements it contains over the full run).
  std::size_t set_size(SetId s) const { return set_sizes_[s]; }
  const std::vector<std::size_t>& set_sizes() const { return set_sizes_; }

  /// Capacity b(u).
  Capacity capacity(ElementId u) const { return capacities_[u]; }

  /// Parent sets C(u), sorted and distinct (contiguous view).
  Span<SetId> parents(ElementId u) const { return parents_.row(u); }

  /// Capacity and parents of one arrival as a single view.
  ArrivalView arrival(ElementId u) const {
    return ArrivalView{capacities_[u], parents_.row(u)};
  }

  /// Zero-copy CSR view of the contiguous arrivals [first, first + count)
  /// — what decide_batch consumes.  The block's offsets index into the
  /// instance-wide candidate array, so blocks at any position share the
  /// same base pointers.
  ArrivalBlock arrival_block(ElementId first, std::size_t count) const {
    OSP_ASSERT(first + count <= num_elements());
    return ArrivalBlock{first, count, capacities_.data() + first,
                        parents_.values().data(),
                        parents_.offsets().data() + first};
  }

  /// Elements of set s in arrival order (contiguous view).
  Span<ElementId> elements_of(SetId s) const { return members_.row(s); }

  /// Load σ(u).
  std::size_t load(ElementId u) const { return parents_.row_size(u); }

  /// Largest capacity over all elements (1 if there are none); used to
  /// size decision buffers once per run.
  Capacity max_capacity() const { return max_capacity_; }

  /// Weighted load σ$(u) = total weight of sets containing u.
  Weight weighted_load(ElementId u) const;

  /// Adjusted load ν(u) = σ(u)/b(u).
  double adjusted_load(ElementId u) const;

  /// Computes all aggregate statistics (O(n + m + total membership)).
  InstanceStats stats() const;

  /// Checks internal consistency; throws RequireError when violated.
  /// Exposed mainly for tests; Instance objects built through
  /// InstanceBuilder always validate.
  void validate() const;

  /// Human-readable one-line description ("m=12 n=40 kmax=4 smax=6 ...").
  std::string describe() const;

 private:
  friend class InstanceBuilder;
  std::vector<Weight> weights_;
  std::vector<std::size_t> set_sizes_;
  std::vector<Capacity> capacities_;   // per element
  CsrArray<SetId> parents_;            // per-element parent lists
  CsrArray<ElementId> members_;        // per-set element lists
  Capacity max_capacity_ = 1;
};

/// Incremental constructor for Instance.
class InstanceBuilder {
 public:
  /// Declares a new set with the given weight (>= 0); returns its id.
  SetId add_set(Weight w = 1.0);

  /// Declares `count` sets of weight w; returns the id of the first.
  SetId add_sets(std::size_t count, Weight w = 1.0);

  /// Appends the next arriving element.  `parents` lists the sets that
  /// contain it (need not be sorted; duplicates are rejected); capacity
  /// must be >= 1.  Returns the element id.
  ElementId add_element(std::vector<SetId> parents, Capacity capacity = 1);

  std::size_t num_sets() const { return weights_.size(); }
  std::size_t num_elements() const { return arrivals_.size(); }

  /// Validates and produces the instance; the builder is left empty.
  Instance build();

 private:
  std::vector<Weight> weights_;
  std::vector<Arrival> arrivals_;
};

}  // namespace osp
