// Partial-credit scoring — the paper's open problem 3: "What about the
// case where the set can be gained even if a few elements are missing?"
//
// Concretely this models forward error correction: a video frame shipped
// with r parity packets decodes as long as at most r packets are lost.
// A PartialCreditRule says how many misses a set tolerates and whether
// the earned value is prorated by the fraction of elements received.
#pragma once

#include <vector>

#include "core/algorithm.hpp"
#include "core/instance.hpp"

namespace osp {

/// Scoring rule for incomplete sets.
struct PartialCreditRule {
  /// A set still earns value if it missed at most this many elements.
  std::size_t max_misses = 0;
  /// If true, the earned value is w(S) * received/|S| (when within the
  /// miss budget); if false, full w(S).
  bool prorated = false;
};

/// Value earned by a set of the given size/weight that received
/// `received` of its elements, under `rule`.
Weight partial_value(Weight weight, std::size_t size, std::size_t received,
                     const PartialCreditRule& rule);

/// Outcome of a run scored with partial credit.
struct PartialOutcome {
  std::vector<std::size_t> received;  // per-set element counts
  std::vector<SetId> credited;        // sets that earned non-zero value
  Weight benefit = 0;
};

/// Runs `alg` over `inst` (identical online rules to play()) but scores
/// the result with partial credit.  The classic game is the special case
/// rule = {0, false}.
PartialOutcome play_partial(const Instance& inst, OnlineAlgorithm& alg,
                            const PartialCreditRule& rule);

}  // namespace osp
