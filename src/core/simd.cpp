#include "core/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace osp::simd {

RowArgmax unit_rank_argmax_portable(const SetId* candidates, std::size_t n,
                                    const std::uint32_t* qranks) {
  RowArgmax out;
  out.best = candidates[0];
  std::uint32_t best_rank = qranks[candidates[0]];
  for (std::size_t i = 1; i < n; ++i) {
    const SetId s = candidates[i];
    const std::uint32_t r = qranks[s];
    if (r > best_rank) {
      best_rank = r;
      out.best = s;
      out.collision = false;
    } else if (r == best_rank) {
      out.collision = true;
    }
  }
  return out;
}

#if defined(__x86_64__) || defined(__i386__)

namespace {

/// Maps unsigned u32 order onto signed order so pcmpgtd compares
/// unsigned ranks correctly: x ^ 0x80000000 flips the top bit.
inline __m128i bias_epi32(__m128i v) {
  return _mm_xor_si128(v, _mm_set1_epi32(INT32_MIN));
}

}  // namespace

RowArgmax unit_rank_argmax_sse2(const SetId* candidates, std::size_t n,
                                const std::uint32_t* qranks) {
  // 4 lanes of running (rank, id), strided over the row.  SSE2 has no
  // blendv/gather, so blends are and/andnot/or and rank loads go
  // through _mm_set_epi32 (the compiler turns them into scalar loads +
  // pinsrd-style sequences).
  __m128i best_id = _mm_loadu_si128(reinterpret_cast<const __m128i*>(candidates));
  __m128i best_rank =
      _mm_set_epi32(static_cast<int>(qranks[candidates[3]]),
                    static_cast<int>(qranks[candidates[2]]),
                    static_cast<int>(qranks[candidates[1]]),
                    static_cast<int>(qranks[candidates[0]]));
  __m128i coll = _mm_setzero_si128();

  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(candidates + i));
    const __m128i ranks =
        _mm_set_epi32(static_cast<int>(qranks[candidates[i + 3]]),
                      static_cast<int>(qranks[candidates[i + 2]]),
                      static_cast<int>(qranks[candidates[i + 1]]),
                      static_cast<int>(qranks[candidates[i]]));
    // Record equal-rank observations BEFORE the blend: an equal pair in
    // a lane means ranks alone cannot order that lane's best exactly.
    coll = _mm_or_si128(coll, _mm_cmpeq_epi32(ranks, best_rank));
    const __m128i gt = _mm_cmpgt_epi32(bias_epi32(ranks), bias_epi32(best_rank));
    best_rank = _mm_or_si128(_mm_and_si128(gt, ranks),
                             _mm_andnot_si128(gt, best_rank));
    best_id = _mm_or_si128(_mm_and_si128(gt, ids), _mm_andnot_si128(gt, best_id));
  }

  alignas(16) std::uint32_t lr[4];
  alignas(16) std::uint32_t li[4];
  alignas(16) std::uint32_t lc[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lr), best_rank);
  _mm_store_si128(reinterpret_cast<__m128i*>(li), best_id);
  _mm_store_si128(reinterpret_cast<__m128i*>(lc), coll);

  RowArgmax out;
  std::uint32_t m = lr[0];
  out.best = static_cast<SetId>(li[0]);
  out.collision = lc[0] != 0;
  for (int lane = 1; lane < 4; ++lane) {
    if (lr[lane] > m) {
      m = lr[lane];
      out.best = static_cast<SetId>(li[lane]);
      out.collision = lc[lane] != 0;
    } else if (lr[lane] == m) {
      out.collision = true;
    }
  }
  for (; i < n; ++i) {
    const SetId s = candidates[i];
    const std::uint32_t r = qranks[s];
    if (r > m) {
      m = r;
      out.best = s;
      out.collision = false;
    } else if (r == m) {
      out.collision = true;
    }
  }
  return out;
}

#if defined(__GNUC__) || defined(__clang__)

namespace {

/// Eight independent scalar rank loads assembled into one vector.  This
/// deliberately avoids vpgatherdd: on several deployed x86 parts
/// (Downfall-mitigated microcode, and most virtualized hosts) the
/// hardware gather is slower than the scalar-load equivalent, while
/// plain loads pipeline two per cycle regardless.
__attribute__((target("avx2"))) inline __m256i load_ranks8(
    const SetId* ids, const std::uint32_t* qranks) {
  return _mm256_set_epi32(
      static_cast<int>(qranks[ids[7]]), static_cast<int>(qranks[ids[6]]),
      static_cast<int>(qranks[ids[5]]), static_cast<int>(qranks[ids[4]]),
      static_cast<int>(qranks[ids[3]]), static_cast<int>(qranks[ids[2]]),
      static_cast<int>(qranks[ids[1]]), static_cast<int>(qranks[ids[0]]));
}

}  // namespace

__attribute__((target("avx2"))) RowArgmax unit_rank_argmax_avx2(
    const SetId* candidates, std::size_t n, const std::uint32_t* qranks) {
  __m256i best_id =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(candidates));
  __m256i best_rank = load_ranks8(candidates, qranks);
  __m256i coll = _mm256_setzero_si256();

  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    const __m256i ids =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(candidates + i));
    const __m256i ranks = load_ranks8(candidates + i, qranks);
    // Equal-rank observations are recorded BEFORE the update; on a tie
    // the blend below may take either candidate, which is harmless
    // because the reported collision forces an exact rescan anyway.
    coll = _mm256_or_si256(coll, _mm256_cmpeq_epi32(ranks, best_rank));
    best_rank = _mm256_max_epu32(best_rank, ranks);
    const __m256i took = _mm256_cmpeq_epi32(best_rank, ranks);
    best_id = _mm256_blendv_epi8(best_id, ids, took);
  }

  // Cross-lane merge without a scalar loop: broadcast the maximum rank
  // to every lane (three max/shuffle steps), then movemask which lanes
  // attain it.  Two or more lanes at the max means two distinct
  // candidates share the winning rank — a collision by definition (lanes
  // hold disjoint stride subsets of a duplicate-free row).
  __m256i m = _mm256_max_epu32(
      best_rank, _mm256_permute2x128_si256(best_rank, best_rank, 1));
  m = _mm256_max_epu32(m, _mm256_shuffle_epi32(m, 0x4e));
  m = _mm256_max_epu32(m, _mm256_shuffle_epi32(m, 0xb1));
  const __m256i at_max = _mm256_cmpeq_epi32(best_rank, m);
  const unsigned max_lanes = static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_castsi256_ps(at_max)));
  const bool lane_coll =
      _mm256_movemask_epi8(coll) != 0 || (max_lanes & (max_lanes - 1)) != 0;

  alignas(32) std::uint32_t li[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(li), best_id);
  RowArgmax out;
  out.best = static_cast<SetId>(
      li[static_cast<unsigned>(__builtin_ctz(max_lanes))]);
  out.collision = lane_coll;

  std::uint32_t mr = static_cast<std::uint32_t>(
      _mm_cvtsi128_si32(_mm256_castsi256_si128(m)));
  for (; i < n; ++i) {
    const SetId s = candidates[i];
    const std::uint32_t r = qranks[s];
    if (r > mr) {
      mr = r;
      out.best = s;
      out.collision = false;
    } else if (r == mr) {
      out.collision = true;
    }
  }
  return out;
}

#endif  // GNUC/clang (AVX2 target attribute)

namespace {

// Batched drivers.  Same translation unit + same target attribute as the
// row kernels, so the per-row scan inlines into these loops and the only
// indirect call left is the one per block in the dispatcher's caller.
void unit_rank_argmax_rows_sse2(const SetId* cands_base,
                                const std::size_t* offsets,
                                const std::uint32_t* tasks,
                                std::size_t num_tasks,
                                const std::uint32_t* qranks, SetId* dst,
                                std::uint8_t* coll) {
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::uint32_t row = tasks[2 * t];
    const std::size_t lo = offsets[row];
    const RowArgmax r =
        unit_rank_argmax_sse2(cands_base + lo, offsets[row + 1] - lo, qranks);
    dst[tasks[2 * t + 1]] = r.best;
    coll[t] = r.collision ? 1 : 0;
  }
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((target("avx2"))) void unit_rank_argmax_rows_avx2(
    const SetId* cands_base, const std::size_t* offsets,
    const std::uint32_t* tasks, std::size_t num_tasks,
    const std::uint32_t* qranks, SetId* dst, std::uint8_t* coll) {
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::uint32_t row = tasks[2 * t];
    const std::size_t lo = offsets[row];
    const RowArgmax r =
        unit_rank_argmax_avx2(cands_base + lo, offsets[row + 1] - lo, qranks);
    dst[tasks[2 * t + 1]] = r.best;
    coll[t] = r.collision ? 1 : 0;
  }
}
#endif

}  // namespace

#endif  // x86

#if defined(__aarch64__)

RowArgmax unit_rank_argmax_neon(const SetId* candidates, std::size_t n,
                                const std::uint32_t* qranks) {
  uint32x4_t best_id = vld1q_u32(candidates);
  uint32x4_t best_rank = {qranks[candidates[0]], qranks[candidates[1]],
                          qranks[candidates[2]], qranks[candidates[3]]};
  uint32x4_t coll = vdupq_n_u32(0);

  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t ids = vld1q_u32(candidates + i);
    const uint32x4_t ranks = {qranks[candidates[i]], qranks[candidates[i + 1]],
                              qranks[candidates[i + 2]],
                              qranks[candidates[i + 3]]};
    coll = vorrq_u32(coll, vceqq_u32(ranks, best_rank));
    const uint32x4_t gt = vcgtq_u32(ranks, best_rank);
    best_rank = vbslq_u32(gt, ranks, best_rank);
    best_id = vbslq_u32(gt, ids, best_id);
  }

  std::uint32_t lr[4];
  std::uint32_t li[4];
  std::uint32_t lc[4];
  vst1q_u32(lr, best_rank);
  vst1q_u32(li, best_id);
  vst1q_u32(lc, coll);

  RowArgmax out;
  std::uint32_t m = lr[0];
  out.best = static_cast<SetId>(li[0]);
  out.collision = lc[0] != 0;
  for (int lane = 1; lane < 4; ++lane) {
    if (lr[lane] > m) {
      m = lr[lane];
      out.best = static_cast<SetId>(li[lane]);
      out.collision = lc[lane] != 0;
    } else if (lr[lane] == m) {
      out.collision = true;
    }
  }
  for (; i < n; ++i) {
    const SetId s = candidates[i];
    const std::uint32_t r = qranks[s];
    if (r > m) {
      m = r;
      out.best = s;
      out.collision = false;
    } else if (r == m) {
      out.collision = true;
    }
  }
  return out;
}

namespace {

void unit_rank_argmax_rows_neon(const SetId* cands_base,
                                const std::size_t* offsets,
                                const std::uint32_t* tasks,
                                std::size_t num_tasks,
                                const std::uint32_t* qranks, SetId* dst,
                                std::uint8_t* coll) {
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::uint32_t row = tasks[2 * t];
    const std::size_t lo = offsets[row];
    const RowArgmax r =
        unit_rank_argmax_neon(cands_base + lo, offsets[row + 1] - lo, qranks);
    dst[tasks[2 * t + 1]] = r.best;
    coll[t] = r.collision ? 1 : 0;
  }
}

}  // namespace

#endif  // aarch64

UnitArgmaxFn unit_rank_argmax_fn(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return nullptr;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kSse2:
      return &unit_rank_argmax_sse2;
#if defined(__GNUC__) || defined(__clang__)
    case Isa::kAvx2:
      return &unit_rank_argmax_avx2;
#endif
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return &unit_rank_argmax_neon;
#endif
    default:
      return nullptr;
  }
}

UnitRowsFn unit_rank_argmax_rows_fn(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return nullptr;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kSse2:
      return &unit_rank_argmax_rows_sse2;
#if defined(__GNUC__) || defined(__clang__)
    case Isa::kAvx2:
      return &unit_rank_argmax_rows_avx2;
#endif
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return &unit_rank_argmax_rows_neon;
#endif
    default:
      return nullptr;
  }
}

}  // namespace osp::simd
