#include "core/game.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace osp {

namespace {

// Validates one answer against the rules; throws on violation.
void check_answer(const std::vector<SetId>& chosen,
                  const std::vector<SetId>& candidates, Capacity capacity) {
  OSP_REQUIRE_MSG(chosen.size() <= capacity,
                  "algorithm chose " << chosen.size()
                                     << " sets, capacity is " << capacity);
  std::vector<SetId> sorted = chosen;
  std::sort(sorted.begin(), sorted.end());
  OSP_REQUIRE_MSG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "algorithm chose a set twice for one element");
  for (SetId s : sorted)
    OSP_REQUIRE_MSG(
        std::binary_search(candidates.begin(), candidates.end(), s),
        "algorithm chose set " << s << " not containing the element");
}

}  // namespace

Outcome play(const Instance& inst, OnlineAlgorithm& alg) {
  std::vector<SetMeta> metas(inst.num_sets());
  for (SetId s = 0; s < inst.num_sets(); ++s)
    metas[s] = SetMeta{inst.weight(s), inst.set_size(s)};
  alg.start(metas);

  std::vector<std::size_t> got(inst.num_sets(), 0);
  Outcome out;
  out.completed_mask.assign(inst.num_sets(), false);

  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const Arrival& a = inst.arrival(u);
    std::vector<SetId> chosen = alg.on_element(u, a.capacity, a.parents);
    check_answer(chosen, a.parents, a.capacity);
    for (SetId s : chosen) ++got[s];
    out.decisions += chosen.size();
  }

  for (SetId s = 0; s < inst.num_sets(); ++s) {
    if (got[s] == inst.set_size(s)) {
      out.completed.push_back(s);
      out.completed_mask[s] = true;
      out.benefit += inst.weight(s);
    }
  }
  return out;
}

GameEngine::GameEngine(std::vector<SetMeta> sets, OnlineAlgorithm& alg)
    : sets_(std::move(sets)), alg_(alg) {
  alg_active_.assign(sets_.size(), true);
  presented_.assign(sets_.size(), 0);
  alg_.start(sets_);
}

std::vector<SetId> GameEngine::step(const std::vector<SetId>& parents,
                                    Capacity capacity) {
  std::vector<SetId> sorted = parents;
  std::sort(sorted.begin(), sorted.end());
  OSP_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  for (SetId s : sorted) OSP_REQUIRE(s < sets_.size());

  std::vector<SetId> chosen = alg_.on_element(next_element_++, capacity, sorted);
  check_answer(chosen, sorted, capacity);
  decisions_ += chosen.size();

  std::vector<bool> was_chosen(sets_.size(), false);
  for (SetId s : chosen) was_chosen[s] = true;
  for (SetId s : sorted) {
    ++presented_[s];
    if (!was_chosen[s]) alg_active_[s] = false;
  }
  return chosen;
}

Outcome GameEngine::finish() const {
  Outcome out;
  out.completed_mask.assign(sets_.size(), false);
  out.decisions = decisions_;
  for (SetId s = 0; s < sets_.size(); ++s) {
    if (alg_active_[s] && presented_[s] == sets_[s].size) {
      out.completed.push_back(s);
      out.completed_mask[s] = true;
      out.benefit += sets_[s].weight;
    }
  }
  return out;
}

}  // namespace osp
