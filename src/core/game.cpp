#include "core/game.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace osp {

namespace {

// Validates one answer against the rules; throws on violation.  Legacy
// (allocating) form used by play_reference and GameEngine's public API.
void check_answer(const std::vector<SetId>& chosen,
                  const std::vector<SetId>& candidates, Capacity capacity) {
  OSP_REQUIRE_MSG(chosen.size() <= capacity,
                  "algorithm chose " << chosen.size()
                                     << " sets, capacity is " << capacity);
  std::vector<SetId> sorted = chosen;
  std::sort(sorted.begin(), sorted.end());
  OSP_REQUIRE_MSG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "algorithm chose a set twice for one element");
  for (SetId s : sorted)
    OSP_REQUIRE_MSG(
        std::binary_search(candidates.begin(), candidates.end(), s),
        "algorithm chose set " << s << " not containing the element");
}

// Allocation-free form of the same rules.  The chosen list is at most
// `capacity` entries, so the quadratic duplicate scan is O(b(u)^2) with
// b(u) tiny in practice — far cheaper than the copy + sort it replaces.
void check_answer_flat(const SetId* chosen, std::size_t num_chosen,
                       const SetId* candidates, std::size_t num_candidates,
                       Capacity capacity) {
  OSP_REQUIRE_MSG(num_chosen <= capacity,
                  "algorithm chose " << num_chosen
                                     << " sets, capacity is " << capacity);
  for (std::size_t i = 0; i < num_chosen; ++i) {
    OSP_REQUIRE_MSG(std::binary_search(candidates,
                                       candidates + num_candidates,
                                       chosen[i]),
                    "algorithm chose set "
                        << chosen[i] << " not containing the element");
    for (std::size_t j = i + 1; j < num_chosen; ++j)
      OSP_REQUIRE_MSG(chosen[i] != chosen[j],
                      "algorithm chose a set twice for one element");
  }
}

template <class Count>
void score(const Instance& inst, const std::vector<Count>& got,
           Outcome& out) {
  out.completed_mask.assign(inst.num_sets(), false);
  for (SetId s = 0; s < inst.num_sets(); ++s) {
    if (got[s] == inst.set_size(s)) {
      out.completed.push_back(s);
      out.completed_mask[s] = true;
      out.benefit += inst.weight(s);
    }
  }
}

}  // namespace

Outcome play_flat(const Instance& inst, OnlineAlgorithm& alg,
                  PlayScratch& scratch) {
  const std::size_t m = inst.num_sets();
  scratch.metas.resize(m);
  for (SetId s = 0; s < m; ++s)
    scratch.metas[s] = SetMeta{inst.weight(s), inst.set_size(s)};
  alg.start(scratch.metas);

  scratch.got.assign(m, 0);
  if (scratch.chosen.size() < inst.max_capacity())
    scratch.chosen.resize(inst.max_capacity());

  Outcome out;
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const Span<SetId> parents = inst.parents(u);
    const Capacity cap = inst.capacity(u);
    std::size_t n = alg.decide(u, cap, parents.data(), parents.size(),
                               scratch.chosen.data());
    check_answer_flat(scratch.chosen.data(), n, parents.data(),
                      parents.size(), cap);
    for (std::size_t i = 0; i < n; ++i) ++scratch.got[scratch.chosen[i]];
    out.decisions += n;
  }

  score(inst, scratch.got, out);
  return out;
}

Outcome play_flat_blocks(const Instance& inst, OnlineAlgorithm& alg,
                         PlayScratch& scratch, std::size_t block_size) {
  if (block_size == 0) block_size = kDefaultDecideBlock;
  const std::size_t m = inst.num_sets();
  scratch.metas.resize(m);
  for (SetId s = 0; s < m; ++s)
    scratch.metas[s] = SetMeta{inst.weight(s), inst.set_size(s)};
  alg.start(scratch.metas);

  scratch.got.assign(m, 0);
  BlockChoices& choices = scratch.block_choices;
  BlockScratch& bs = scratch.block_scratch;
  // Offer the fused-histogram channel: a trusted in-library kernel bumps
  // scratch.got while writing each row and reports hist_applied, letting
  // this engine skip its own validate-and-count pass for that block (the
  // fuzz suite proves those kernels subset-valid).  Policies on the
  // default per-element loop never set the flag and keep full validation.
  bs.got = scratch.got.data();

  Outcome out;
  const std::size_t num_elements = inst.num_elements();
  for (std::size_t base = 0; base < num_elements; base += block_size) {
    const std::size_t count = std::min(block_size, num_elements - base);
    const ArrivalBlock block =
        inst.arrival_block(static_cast<ElementId>(base), count);
    bs.hist_applied = false;
    alg.decide_batch(block, bs, choices);
    OSP_REQUIRE_MSG(choices.offsets.size() == count + 1 &&
                        choices.offsets.front() == 0 &&
                        choices.offsets.back() <= choices.ids.size(),
                    "decide_batch produced a malformed choice block");
    if (bs.hist_applied) {
      out.decisions += choices.offsets.back();
      continue;
    }
    // The same rules as the per-element path, applied to each packed row.
    // The single-choice row (the unit-capacity common case) is validated
    // inline — a short sorted candidate list is cheaper to scan linearly
    // than to binary-search, and one choice cannot duplicate — so the
    // whole validation pass stays branch-lean; general rows take the
    // shared check.
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t n = choices.num_chosen(i);
      if (n == 0) continue;  // choosing nothing is always legal
      const SetId* chosen = choices.chosen_of(i);
      const SetId* cand = block.candidates_of(i);
      const std::size_t num_cand = block.num_candidates(i);
      if (n == 1) {
        const SetId f = chosen[0];
        bool found;
        if (num_cand <= 8) {
          found = false;
          for (std::size_t j = 0; j < num_cand; ++j) found |= cand[j] == f;
        } else {
          found = std::binary_search(cand, cand + num_cand, f);
        }
        OSP_REQUIRE_MSG(block.capacity(i) >= 1 && found,
                        "algorithm chose set "
                            << f << (found ? " beyond capacity 0"
                                           : " not containing the element"));
        ++scratch.got[f];
      } else {
        check_answer_flat(chosen, n, cand, num_cand, block.capacity(i));
        for (std::size_t j = 0; j < n; ++j) ++scratch.got[chosen[j]];
      }
    }
    out.decisions += choices.offsets.back();
  }
  // scratch.got may be resized or freed between plays; never leave a
  // stale pointer behind in the reusable block scratch.
  bs.got = nullptr;
  bs.hist_applied = false;

  score(inst, scratch.got, out);
  return out;
}

Outcome play(const Instance& inst, OnlineAlgorithm& alg) {
  PlayScratch scratch;
  return play_flat(inst, alg, scratch);
}

Outcome play_reference(const Instance& inst, OnlineAlgorithm& alg) {
  std::vector<SetMeta> metas(inst.num_sets());
  for (SetId s = 0; s < inst.num_sets(); ++s)
    metas[s] = SetMeta{inst.weight(s), inst.set_size(s)};
  alg.start(metas);

  std::vector<std::size_t> got(inst.num_sets(), 0);
  Outcome out;

  // Reused buffer: the seed engine handed on_element the stored parent
  // vector; with CSR storage the row is re-materialized, but not with a
  // fresh allocation per arrival.
  std::vector<SetId> parents;
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const ArrivalView a = inst.arrival(u);
    parents.assign(a.parents.begin(), a.parents.end());
    std::vector<SetId> chosen = alg.on_element(u, a.capacity, parents);
    check_answer(chosen, parents, a.capacity);
    for (SetId s : chosen) ++got[s];
    out.decisions += chosen.size();
  }

  score(inst, got, out);
  return out;
}

GameEngine::GameEngine(std::vector<SetMeta> sets, OnlineAlgorithm& alg)
    : sets_(std::move(sets)), alg_(alg) {
  alg_active_.assign(sets_.size(), true);
  presented_.assign(sets_.size(), 0);
  alg_.start(sets_);
}

std::vector<SetId> GameEngine::step(const std::vector<SetId>& parents,
                                    Capacity capacity) {
  sorted_.assign(parents.begin(), parents.end());
  std::sort(sorted_.begin(), sorted_.end());
  OSP_REQUIRE(std::adjacent_find(sorted_.begin(), sorted_.end()) ==
              sorted_.end());
  for (SetId s : sorted_) OSP_REQUIRE(s < sets_.size());

  if (chosen_.size() < capacity) chosen_.resize(capacity);
  std::size_t n = alg_.decide(next_element_++, capacity, sorted_.data(),
                              sorted_.size(), chosen_.data());
  check_answer_flat(chosen_.data(), n, sorted_.data(), sorted_.size(),
                    capacity);
  decisions_ += n;

  for (SetId s : sorted_) {
    ++presented_[s];
    bool was_chosen = false;
    for (std::size_t i = 0; i < n; ++i)
      if (chosen_[i] == s) {
        was_chosen = true;
        break;
      }
    if (!was_chosen) alg_active_[s] = false;
  }
  return std::vector<SetId>(chosen_.begin(),
                            chosen_.begin() + static_cast<std::ptrdiff_t>(n));
}

Outcome GameEngine::finish() const {
  Outcome out;
  out.completed_mask.assign(sets_.size(), false);
  out.decisions = decisions_;
  for (SetId s = 0; s < sets_.size(); ++s) {
    if (alg_active_[s] && presented_[s] == sets_[s].size) {
      out.completed.push_back(s);
      out.completed_mask[s] = true;
      out.benefit += sets_[s].weight;
    }
  }
  return out;
}

}  // namespace osp
