// Vectorized row primitives for the block decision kernel.
//
// The hot row shape of top_by_priority_soa_block is a unit-capacity
// argmax over one CSR candidate row, comparing the per-set quantized u32
// priority ranks (quantized_key_rank in priority.hpp).  The kernels here
// run that scan lane-parallel: each lane keeps a running (rank, id) best
// over its stride — compare, blend, next eight (AVX2) / four (SSE2,
// NEON) candidates — and a final cross-lane merge picks the row winner.
//
// Exactness contract: quantized ranks are a lossy projection of the
// (key, tie) total order, so a row whose maximum rank is attained more
// than once (or whose winning lane ever observed an equal-rank pair)
// cannot be decided from ranks alone.  The kernels detect that case
// conservatively and report `collision`; the caller must then resolve
// the row with the exact scalar order.  When `collision` is false, the
// returned candidate IS the unique rank maximum, which the monotonicity
// of quantized_key_rank makes the exact (key, tie) argmax — so the
// caller's decisions are bit-identical to the scalar kernel on every
// path.  test_simd fuzzes this per available ISA, including crafted
// rank-collision rows; test_engine proves whole-trace equivalence
// through the engines.
//
// The AVX2 implementation is compiled with a function-level
// `target("avx2")` attribute, so the translation unit (and the rest of
// the library) keeps the portable baseline flags; the runtime dispatcher
// (core/cpu_features.hpp) guarantees a kernel only runs on a CPU that
// supports it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/cpu_features.hpp"
#include "core/types.hpp"

namespace osp::simd {

/// Result of one vector unit-capacity rank-argmax row scan.
struct RowArgmax {
  SetId best = 0;         // candidate attaining the row's maximum rank
  bool collision = false; // true: the max may be shared — resolve exactly
};

/// Rows shorter than this run the scalar loop even on vector ISAs: the
/// kernels need one full init vector plus at least one blend step to
/// beat the scalar cmov chain, and every implementation assumes
/// n >= kUnitArgmaxMinRow.
inline constexpr std::size_t kUnitArgmaxMinRow = 8;

using UnitArgmaxFn = RowArgmax (*)(const SetId* candidates, std::size_t n,
                                   const std::uint32_t* qranks);

/// The row kernel for `isa`, or nullptr for the scalar tier (whose
/// inline exact loop lives at the call site and needs no fn pointer).
/// Requires isa_available(isa).  Callers hoist this lookup per block.
UnitArgmaxFn unit_rank_argmax_fn(Isa isa);

/// Batched form: the block kernel defers its unit-capacity rows and
/// resolves them all in ONE call, so the dispatch cost (an indirect call
/// that the row-shape rows of a sigma~16 workload would otherwise pay
/// every ~16 elements) amortizes over the whole block and the row scan
/// inlines into the per-ISA loop.  `tasks` holds `num_tasks` pairs
/// (block row r, output slot): candidates of task t are
/// `cands_base + offsets[r] .. + offsets[r + 1]`, every row at least
/// kUnitArgmaxMinRow long; the winner goes to `dst[slot]` and
/// `coll[t]` records the RowArgmax collision flag (caller rescans those
/// rows exactly).
using UnitRowsFn = void (*)(const SetId* cands_base,
                            const std::size_t* offsets,
                            const std::uint32_t* tasks,
                            std::size_t num_tasks,
                            const std::uint32_t* qranks, SetId* dst,
                            std::uint8_t* coll);

/// The batched rows kernel for `isa`, nullptr for the scalar tier.
UnitRowsFn unit_rank_argmax_rows_fn(Isa isa);

/// Reference implementation of the vector kernels' contract in portable
/// scalar code (same RowArgmax semantics, collision detection included).
/// Used by the dispatcher's scalar-tier tests and as the fuzz oracle;
/// the production scalar path resolves collisions inline instead.
RowArgmax unit_rank_argmax_portable(const SetId* candidates, std::size_t n,
                                    const std::uint32_t* qranks);

#if defined(__x86_64__) || defined(__i386__)
RowArgmax unit_rank_argmax_sse2(const SetId* candidates, std::size_t n,
                                const std::uint32_t* qranks);
#if defined(__GNUC__) || defined(__clang__)
RowArgmax unit_rank_argmax_avx2(const SetId* candidates, std::size_t n,
                                const std::uint32_t* qranks);
#endif
#endif

#if defined(__aarch64__)
RowArgmax unit_rank_argmax_neon(const SetId* candidates, std::size_t n,
                                const std::uint32_t* qranks);
#endif

}  // namespace osp::simd
