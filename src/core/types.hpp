// Fundamental identifier and weight types of the osp library.
#pragma once

#include <cstdint>
#include <limits>

namespace osp {

/// Index of a set in an instance (dense, 0-based).
using SetId = std::uint32_t;

/// Index of an element in arrival order (dense, 0-based).
using ElementId = std::uint32_t;

/// Set weights.  The paper allows arbitrary non-negative weights; we use
/// double throughout and require non-negativity at construction.
using Weight = double;

/// Per-element capacity b(u): how many sets the element may be assigned to.
using Capacity = std::uint32_t;

/// Sentinel for "no set".
inline constexpr SetId kNoSet = std::numeric_limits<SetId>::max();

}  // namespace osp
