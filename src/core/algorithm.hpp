// The online algorithm interface and a bookkeeping base class.
//
// Per Section 2 of the paper, an online algorithm initially sees only each
// set's weight and size; at each step it receives an element (its capacity
// and parent-set list) and must immediately output at most b(u) of those
// sets.  A set is completed iff it is chosen at every one of its elements.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace osp {

/// What an algorithm knows about a set before any element arrives.
struct SetMeta {
  Weight weight = 1.0;
  std::size_t size = 0;
};

/// Interface every online policy implements.
///
/// The game engine calls start() once, then on_element() once per arrival
/// in order.  Implementations must be deterministic given their own state
/// (randomized policies draw all randomness in start() or from an Rng they
/// own), so runs are reproducible.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  /// Display name used in benchmark tables.
  virtual std::string name() const = 0;

  /// Announces the instance: one SetMeta per set, ids 0..m-1.
  virtual void start(const std::vector<SetMeta>& sets) = 0;

  /// Element `u` arrives with capacity `capacity` and parent sets
  /// `candidates` (sorted, distinct).  Returns the chosen sets: a subset
  /// of `candidates` with at most `capacity` entries, no duplicates.
  virtual std::vector<SetId> on_element(ElementId u, Capacity capacity,
                                        const std::vector<SetId>& candidates) = 0;
};

/// Base class that tracks which sets are still "active" — chosen at every
/// one of their elements seen so far — which most deterministic policies
/// condition on.  Subclasses must call record() once per on_element after
/// deciding.
class ActiveTracking : public OnlineAlgorithm {
 public:
  void start(const std::vector<SetMeta>& sets) override {
    meta_ = sets;
    seen_.assign(sets.size(), 0);
    progress_.assign(sets.size(), 0);
  }

  /// True while s has not yet missed any of its elements.
  bool is_active(SetId s) const { return progress_[s] == seen_[s]; }

  /// Number of elements of s assigned to s so far.
  std::size_t progress(SetId s) const { return progress_[s]; }

  /// Number of elements of s that have arrived so far.
  std::size_t seen(SetId s) const { return seen_[s]; }

  /// Elements of s that arrived but were not assigned to it.
  std::size_t misses(SetId s) const { return seen_[s] - progress_[s]; }

  /// Elements of s still outstanding (declared size minus seen).
  std::size_t remaining(SetId s) const { return meta_[s].size - seen_[s]; }

  const std::vector<SetMeta>& meta() const { return meta_; }

 protected:
  /// Advances per-set counters: every candidate saw the element; the chosen
  /// ones also received it.
  void record(const std::vector<SetId>& candidates,
              const std::vector<SetId>& chosen) {
    for (SetId s : candidates) ++seen_[s];
    for (SetId s : chosen) ++progress_[s];
  }

 private:
  std::vector<SetMeta> meta_;
  std::vector<std::size_t> seen_;
  std::vector<std::size_t> progress_;
};

}  // namespace osp
