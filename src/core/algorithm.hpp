// The online algorithm interface and a bookkeeping base class.
//
// Per Section 2 of the paper, an online algorithm initially sees only each
// set's weight and size; at each step it receives an element (its capacity
// and parent-set list) and must immediately output at most b(u) of those
// sets.  A set is completed iff it is chosen at every one of its elements.
//
// Two decision entry points exist:
//   * decide()     — the flat path: reads candidates from a contiguous
//                    span and writes the choice into a caller-owned buffer.
//                    Zero allocations per call once an implementation's
//                    internal scratch has warmed up; this is what the game
//                    engine and the batch runner drive.
//   * on_element() — the legacy allocating path, kept for adaptive
//                    adversaries and tests that script answers directly.
// Implementations override at least one; each default-forwards to the
// other, and ported algorithms implement decide() and get on_element()
// for free.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {

/// What an algorithm knows about a set before any element arrives.
struct SetMeta {
  Weight weight = 1.0;
  std::size_t size = 0;
};

/// Interface every online policy implements.
///
/// The game engine calls start() once, then decide() once per arrival in
/// order.  Implementations must be deterministic given their own state
/// (randomized policies draw all randomness in start() or from an Rng they
/// own), so runs are reproducible.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  /// Display name used in benchmark tables.
  virtual std::string name() const = 0;

  /// Announces the instance: one SetMeta per set, ids 0..m-1.
  virtual void start(const std::vector<SetMeta>& sets) = 0;

  /// Re-arms the algorithm's randomness for a fresh trial without
  /// reallocating its internal arrays.
  ///
  /// Contract: when reseedable() is true, `alg.reseed(rng); alg.start(s);`
  /// must be decision-identical to a freshly constructed algorithm built
  /// from the same rng — the batch runner relies on this to reuse one
  /// algorithm object per worker across all trials of a grid cell, making
  /// steady-state trials allocation-free.  Default: no-op, for policies
  /// whose start() already resets every decision-relevant bit of state.
  virtual void reseed(Rng /*rng*/) {}

  /// True when reseed() fully re-arms this algorithm (see contract
  /// above).  Defaults to false — the conservative answer for randomized
  /// policies that bake randomness in at construction — so the batch
  /// runner falls back to fresh construction; deterministic policies and
  /// those overriding reseed() return true.
  virtual bool reseedable() const { return false; }

  /// Element `u` arrives with capacity `capacity` and parent sets
  /// `candidates` (sorted, distinct).  Returns the chosen sets: a subset
  /// of `candidates` with at most `capacity` entries, no duplicates.
  ///
  /// Default: adapts the flat decide() path.
  virtual std::vector<SetId> on_element(ElementId u, Capacity capacity,
                                        const std::vector<SetId>& candidates) {
    DispatchGuard guard(*this);
    std::vector<SetId> out(
        std::min<std::size_t>(capacity, candidates.size()));
    out.resize(decide(u, capacity, candidates.data(), candidates.size(),
                      out.data()));
    return out;
  }

  /// Allocation-free decision: candidates are `num_candidates` sorted,
  /// distinct set ids; the choice is written to `out` and its length
  /// returned.  `out` must have room for at least
  /// min(capacity, num_candidates) entries, and implementations never
  /// write more than that.
  ///
  /// Default: adapts the legacy on_element() path (one allocation per
  /// call) so un-ported algorithms run on the flat engine unchanged.  The
  /// capacity check happens here, before the copy, so a buggy policy
  /// overflows into a RequireError instead of the buffer.
  virtual std::size_t decide(ElementId u, Capacity capacity,
                             const SetId* candidates,
                             std::size_t num_candidates, SetId* out) {
    DispatchGuard guard(*this);
    adapter_scratch_.assign(candidates, candidates + num_candidates);
    std::vector<SetId> chosen = on_element(u, capacity, adapter_scratch_);
    OSP_REQUIRE_MSG(chosen.size() <= capacity &&
                        chosen.size() <= num_candidates,
                    "algorithm chose " << chosen.size()
                                       << " sets, capacity is " << capacity
                                       << ", candidates " << num_candidates);
    std::copy(chosen.begin(), chosen.end(), out);
    return chosen.size();
  }

 private:
  // Each default entry point forwards to the other, so a subclass
  // overriding neither would recurse forever; the guard turns that
  // programming error into a RequireError on the first decision.
  struct DispatchGuard {
    explicit DispatchGuard(OnlineAlgorithm& alg) : alg_(alg) {
      OSP_REQUIRE_MSG(!alg_.in_default_dispatch_,
                      "algorithm overrides neither on_element() nor "
                      "decide()");
      alg_.in_default_dispatch_ = true;
    }
    ~DispatchGuard() { alg_.in_default_dispatch_ = false; }
    OnlineAlgorithm& alg_;
  };

  std::vector<SetId> adapter_scratch_;  // reused by the default decide()
  bool in_default_dispatch_ = false;
};

/// Base class that tracks which sets are still "active" — chosen at every
/// one of their elements seen so far — which most deterministic policies
/// condition on.  Subclasses must call record() once per decision.
class ActiveTracking : public OnlineAlgorithm {
 public:
  void start(const std::vector<SetMeta>& sets) override {
    meta_ = sets;
    counts_.assign(sets.size(), Counts{});
  }

  /// True while s has not yet missed any of its elements.
  bool is_active(SetId s) const {
    return counts_[s].progress == counts_[s].seen;
  }

  /// Number of elements of s assigned to s so far.
  std::size_t progress(SetId s) const { return counts_[s].progress; }

  /// Number of elements of s that have arrived so far.
  std::size_t seen(SetId s) const { return counts_[s].seen; }

  /// Elements of s that arrived but were not assigned to it.
  std::size_t misses(SetId s) const {
    return counts_[s].seen - counts_[s].progress;
  }

  /// Elements of s still outstanding (declared size minus seen).  Clamped
  /// at zero: an adaptive adversary (or a buggy schedule) may present a
  /// set more elements than its declared SetMeta::size, and the subtraction
  /// must not wrap std::size_t.
  std::size_t remaining(SetId s) const {
    return counts_[s].seen < meta_[s].size ? meta_[s].size - counts_[s].seen
                                           : 0;
  }

  const std::vector<SetMeta>& meta() const { return meta_; }

 protected:
  /// Advances per-set counters: every candidate saw the element; the chosen
  /// ones also received it.
  void record(const SetId* candidates, std::size_t num_candidates,
              const SetId* chosen, std::size_t num_chosen) {
    for (std::size_t i = 0; i < num_candidates; ++i)
      ++counts_[candidates[i]].seen;
    for (std::size_t i = 0; i < num_chosen; ++i)
      ++counts_[chosen[i]].progress;
  }

  void record(const std::vector<SetId>& candidates,
              const std::vector<SetId>& chosen) {
    record(candidates.data(), candidates.size(), chosen.data(),
           chosen.size());
  }

 private:
  // Both counters of a set share one 8-byte slot (elements are 32-bit
  // ids, so the counts fit), halving the cache footprint of record().
  struct Counts {
    std::uint32_t seen = 0;
    std::uint32_t progress = 0;
  };
  std::vector<SetMeta> meta_;
  std::vector<Counts> counts_;
};

}  // namespace osp
