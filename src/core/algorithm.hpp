// The online algorithm interface and a bookkeeping base class.
//
// Per Section 2 of the paper, an online algorithm initially sees only each
// set's weight and size; at each step it receives an element (its capacity
// and parent-set list) and must immediately output at most b(u) of those
// sets.  A set is completed iff it is chosen at every one of its elements.
//
// Three decision entry points exist:
//   * decide()       — the flat path: reads candidates from a contiguous
//                      span and writes the choice into a caller-owned
//                      buffer.  Zero allocations per call once an
//                      implementation's internal scratch has warmed up.
//   * decide_batch() — the block path: consumes a whole CSR arrival block
//                      (contiguous (element, capacity, candidate-span)
//                      records) in one virtual call and writes every
//                      choice into one flat CSR-shaped output.  The
//                      default loops over decide(), so every policy works
//                      unchanged; hot policies override it with a block
//                      kernel.  This is what the game engine, the batch
//                      runner, and the router simulator drive.
//   * on_element()   — the legacy allocating path, kept for adaptive
//                      adversaries and tests that script answers directly.
// Implementations override at least decide() or on_element(); each
// default-forwards to the other, and ported algorithms implement decide()
// and get the other two for free.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "core/csr.hpp"
#include "core/types.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {

/// What an algorithm knows about a set before any element arrives.
struct SetMeta {
  Weight weight = 1.0;
  std::size_t size = 0;
};

/// Reusable engine-owned workspace handed to decide_batch; implementations
/// may use it instead of growing their own members (the shared block
/// selection kernel uses topk as its nth_element workspace).
///
/// The `got` / `hist_applied` pair is the fused-histogram channel: an
/// engine that would otherwise re-walk every choice row to bump its
/// per-set assignment histogram may point `got` at that histogram (one
/// counter per set) and clear `hist_applied` before the call.  A kernel
/// that already touches each chosen set while writing the row — the
/// shared block selection kernel does — bumps `got` in the same pass and
/// sets `hist_applied = true`, letting the engine skip its own pass.
/// The flag is the trust boundary: only in-library kernels whose output
/// the fuzz suite proves subset-valid may set it, because the engine also
/// skips its per-row validation for a block the kernel accounted for.
/// Policies that route through the default per-element loop leave it
/// false and keep full engine-side validation.  `got == nullptr` (the
/// default) disables the channel entirely.
struct BlockScratch {
  std::vector<SetId> topk;
  std::uint32_t* got = nullptr;
  bool hist_applied = false;
  // Workspace for the vector block kernel's deferred unit-capacity rows:
  // (block row, output slot) pairs plus the per-row collision flags the
  // batched kernel reports back.  Grow-only; unused on the scalar tier.
  std::vector<std::uint32_t> unit_rows;
  std::vector<std::uint8_t> row_coll;
};

/// Arrivals per decide_batch call when a block-stepped caller does not
/// choose its own size: large enough to amortize the per-block dispatch
/// and keep the kernel's inner loops streaming, small enough that a
/// block's packed choices and offsets stay L1-resident (measured best in
/// the 1k-4k range on the router workloads; see bench_perf).
inline constexpr std::size_t kDefaultDecideBlock = 2048;

/// Shared skeleton of every per-element decide_batch loop: sizes `out`
/// once for the whole block (grow-only — zero allocations in steady
/// state), then calls `decide_fn(u, capacity, candidates, n, out_ptr)`
/// for each arrival in order, packing the answers back to back.
/// `decide_fn` must honour the decide() contract (never write more than
/// min(capacity, n) entries).
template <class DecideFn>
void decide_block_loop(const ArrivalBlock& block, BlockChoices& out,
                       DecideFn&& decide_fn) {
  prepare_block_output(block, out);
  std::size_t written = 0;
  for (std::size_t i = 0; i < block.count; ++i) {
    written += decide_fn(block.element(i), block.capacity(i),
                         block.candidates_of(i), block.num_candidates(i),
                         out.ids.data() + written);
    out.offsets[i + 1] = static_cast<std::uint32_t>(written);
  }
}

/// Interface every online policy implements.
///
/// The game engine calls start() once, then decide() once per arrival in
/// order.  Implementations must be deterministic given their own state
/// (randomized policies draw all randomness in start() or from an Rng they
/// own), so runs are reproducible.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  /// Display name used in benchmark tables.
  virtual std::string name() const = 0;

  /// Announces the instance: one SetMeta per set, ids 0..m-1.
  virtual void start(const std::vector<SetMeta>& sets) = 0;

  /// Re-arms the algorithm's randomness for a fresh trial without
  /// reallocating its internal arrays.
  ///
  /// Contract: when reseedable() is true, `alg.reseed(rng); alg.start(s);`
  /// must be decision-identical to a freshly constructed algorithm built
  /// from the same rng — the batch runner relies on this to reuse one
  /// algorithm object per worker across all trials of a grid cell, making
  /// steady-state trials allocation-free.  Default: no-op, for policies
  /// whose start() already resets every decision-relevant bit of state.
  virtual void reseed(Rng /*rng*/) {}

  /// True when reseed() fully re-arms this algorithm (see contract
  /// above).  Defaults to false — the conservative answer for randomized
  /// policies that bake randomness in at construction — so the batch
  /// runner falls back to fresh construction; deterministic policies and
  /// those overriding reseed() return true.
  virtual bool reseedable() const { return false; }

  /// Element `u` arrives with capacity `capacity` and parent sets
  /// `candidates` (sorted, distinct).  Returns the chosen sets: a subset
  /// of `candidates` with at most `capacity` entries, no duplicates.
  ///
  /// Default: adapts the flat decide() path.
  virtual std::vector<SetId> on_element(ElementId u, Capacity capacity,
                                        const std::vector<SetId>& candidates) {
    DispatchGuard guard(*this);
    std::vector<SetId> out(
        std::min<std::size_t>(capacity, candidates.size()));
    out.resize(decide(u, capacity, candidates.data(), candidates.size(),
                      out.data()));
    return out;
  }

  /// Allocation-free decision: candidates are `num_candidates` sorted,
  /// distinct set ids; the choice is written to `out` and its length
  /// returned.  `out` must have room for at least
  /// min(capacity, num_candidates) entries, and implementations never
  /// write more than that.
  ///
  /// Default: adapts the legacy on_element() path (one allocation per
  /// call) so un-ported algorithms run on the flat engine unchanged.  The
  /// capacity check happens here, before the copy, so a buggy policy
  /// overflows into a RequireError instead of the buffer.
  virtual std::size_t decide(ElementId u, Capacity capacity,
                             const SetId* candidates,
                             std::size_t num_candidates, SetId* out) {
    DispatchGuard guard(*this);
    adapter_scratch_.assign(candidates, candidates + num_candidates);
    std::vector<SetId> chosen = on_element(u, capacity, adapter_scratch_);
    OSP_REQUIRE_MSG(chosen.size() <= capacity &&
                        chosen.size() <= num_candidates,
                    "algorithm chose " << chosen.size()
                                       << " sets, capacity is " << capacity
                                       << ", candidates " << num_candidates);
    std::copy(chosen.begin(), chosen.end(), out);
    return chosen.size();
  }

  /// Batched decision: consumes a whole CSR arrival block and writes all
  /// choices into `out` (offsets + ids, one row per block record).
  ///
  /// Equivalence contract: decide_batch must be decision-identical to
  /// calling decide() once per record of the block, in arrival order —
  /// including every internal state update and Rng draw, so interleaving
  /// block and per-element calls is always legal.  The fuzz suite in
  /// test_engine enforces this (traces included) for every policy.
  ///
  /// Default: the per-element loop itself, so un-ported policies run on
  /// the block engine unchanged; policies whose selection can amortize
  /// across arrivals (randPr's SoA priority kernel) override it.
  virtual void decide_batch(const ArrivalBlock& block, BlockScratch& scratch,
                            BlockChoices& out) {
    (void)scratch;
    decide_block_loop(block, out,
                      [this](ElementId u, Capacity capacity,
                             const SetId* candidates,
                             std::size_t num_candidates, SetId* choice) {
                        return decide(u, capacity, candidates,
                                      num_candidates, choice);
                      });
  }

 private:
  // Each default entry point forwards to the other, so a subclass
  // overriding neither would recurse forever; the guard turns that
  // programming error into a RequireError on the first decision.
  struct DispatchGuard {
    explicit DispatchGuard(OnlineAlgorithm& alg) : alg_(alg) {
      OSP_REQUIRE_MSG(!alg_.in_default_dispatch_,
                      "algorithm overrides neither on_element() nor "
                      "decide()");
      alg_.in_default_dispatch_ = true;
    }
    ~DispatchGuard() { alg_.in_default_dispatch_ = false; }
    OnlineAlgorithm& alg_;
  };

  std::vector<SetId> adapter_scratch_;  // reused by the default decide()
  bool in_default_dispatch_ = false;
};

/// Base class that tracks which sets are still "active" — chosen at every
/// one of their elements seen so far — which most deterministic policies
/// condition on.  Subclasses must call record() once per decision.
class ActiveTracking : public OnlineAlgorithm {
 public:
  void start(const std::vector<SetMeta>& sets) override {
    meta_ = sets;
    counts_.assign(sets.size(), Counts{});
  }

  /// True while s has not yet missed any of its elements.
  bool is_active(SetId s) const {
    return counts_[s].progress == counts_[s].seen;
  }

  /// Number of elements of s assigned to s so far.
  std::size_t progress(SetId s) const { return counts_[s].progress; }

  /// Number of elements of s that have arrived so far.
  std::size_t seen(SetId s) const { return counts_[s].seen; }

  /// Elements of s that arrived but were not assigned to it.
  std::size_t misses(SetId s) const {
    return counts_[s].seen - counts_[s].progress;
  }

  /// Elements of s still outstanding (declared size minus seen).  Clamped
  /// at zero: an adaptive adversary (or a buggy schedule) may present a
  /// set more elements than its declared SetMeta::size, and the subtraction
  /// must not wrap std::size_t.
  std::size_t remaining(SetId s) const {
    return counts_[s].seen < meta_[s].size ? meta_[s].size - counts_[s].seen
                                           : 0;
  }

  const std::vector<SetMeta>& meta() const { return meta_; }

 protected:
  /// Advances per-set counters: every candidate saw the element; the chosen
  /// ones also received it.
  void record(const SetId* candidates, std::size_t num_candidates,
              const SetId* chosen, std::size_t num_chosen) {
    for (std::size_t i = 0; i < num_candidates; ++i)
      ++counts_[candidates[i]].seen;
    for (std::size_t i = 0; i < num_chosen; ++i)
      ++counts_[chosen[i]].progress;
  }

  void record(const std::vector<SetId>& candidates,
              const std::vector<SetId>& chosen) {
    record(candidates.data(), candidates.size(), chosen.data(),
           chosen.size());
  }

 private:
  // Both counters of a set share one 8-byte slot (elements are 32-bit
  // ids, so the counts fit), halving the cache footprint of record().
  struct Counts {
    std::uint32_t seen = 0;
    std::uint32_t progress = 0;
  };
  std::vector<SetMeta> meta_;
  std::vector<Counts> counts_;
};

}  // namespace osp
