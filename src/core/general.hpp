// General online packing — the paper's open problem 1: "generalize the
// problem to arbitrary packing problems, where the entries in the matrix
// are arbitrary non-negative integers."
//
// Here an element u arrives with b(u) units of capacity and a list of
// (set, units) demands: set S needs d(S,u) units of u.  The algorithm
// grants each demanding set either its full demand or nothing, subject to
// the granted units summing to at most b(u).  A set completes iff it is
// granted its full demand at every element that lists it.  osp is the
// special case d ≡ 1.
//
// Example: network flows reserving d bytes of a link per time slot, tasks
// needing d cores of a machine, auctions with multi-unit bids.
#pragma once

#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "core/priority.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace osp {

/// One set's requirement at an arriving element.
struct UnitDemand {
  SetId set = 0;
  std::uint32_t units = 1;
  // Explicit rather than `= default`: the library builds as C++17.
  friend bool operator==(const UnitDemand& a, const UnitDemand& b) {
    return a.set == b.set && a.units == b.units;
  }
  friend bool operator!=(const UnitDemand& a, const UnitDemand& b) {
    return !(a == b);
  }
};

/// One arrival in the general model.
struct GeneralArrival {
  std::uint32_t capacity = 1;
  std::vector<UnitDemand> demands;  // sorted by set id, distinct sets
};

/// Aggregate statistics in the generalized notation: the adjusted load of
/// an element is total demanded units / capacity.
struct GeneralStats {
  std::size_t num_sets = 0;
  std::size_t num_elements = 0;
  Weight total_weight = 0;
  std::size_t k_max = 0;        // max appearances of a set
  double nu_max = 0;            // max demanded/capacity over elements
  double nu_avg = 0;
};

/// Immutable general packing instance (built via GeneralInstanceBuilder).
class GeneralInstance {
 public:
  std::size_t num_sets() const { return weights_.size(); }
  std::size_t num_elements() const { return arrivals_.size(); }
  Weight weight(SetId s) const { return weights_[s]; }
  /// Number of elements that list set s.
  std::size_t appearances(SetId s) const { return appearances_[s]; }
  const GeneralArrival& arrival(ElementId u) const { return arrivals_[u]; }
  GeneralStats stats() const;
  void validate() const;

 private:
  friend class GeneralInstanceBuilder;
  std::vector<Weight> weights_;
  std::vector<std::size_t> appearances_;
  std::vector<GeneralArrival> arrivals_;
};

/// Incremental constructor.
class GeneralInstanceBuilder {
 public:
  SetId add_set(Weight w = 1.0);
  /// Demands may arrive unsorted; duplicates and zero-unit demands are
  /// rejected.  Demands exceeding the element capacity are allowed (such
  /// a set can never be granted there — it is dead on arrival), matching
  /// the integer-program semantics.
  ElementId add_element(std::vector<UnitDemand> demands,
                        std::uint32_t capacity = 1);
  GeneralInstance build();

 private:
  std::vector<Weight> weights_;
  std::vector<GeneralArrival> arrivals_;
};

/// Online algorithm interface for the general model.
class GeneralAlgorithm {
 public:
  virtual ~GeneralAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual void start(const std::vector<SetMeta>& sets) = 0;
  /// Returns the sets granted their full demand; granted units must sum
  /// to at most the capacity.
  virtual std::vector<SetId> on_element(ElementId u,
                                        const GeneralArrival& arrival) = 0;
};

/// Scores a run (same Outcome type as the unit-demand game).
struct GeneralOutcome {
  std::vector<SetId> completed;
  Weight benefit = 0;
};
GeneralOutcome play_general(const GeneralInstance& inst,
                            GeneralAlgorithm& alg);

/// randPr generalized: fixed R_w priorities; each element is allocated by
/// scanning candidates in priority order, granting every demand that
/// still fits (priority greedy with skipping).
class GeneralRandPr final : public GeneralAlgorithm {
 public:
  explicit GeneralRandPr(Rng rng) : rng_(rng) {}
  std::string name() const override { return "gen-randPr"; }
  void start(const std::vector<SetMeta>& sets) override;
  std::vector<SetId> on_element(ElementId u,
                                const GeneralArrival& arrival) override;

 private:
  Rng rng_;
  std::vector<PriorityKey> priorities_;
};

/// Deterministic baseline: grant by descending weight, then id.
class GeneralGreedyWeight final : public GeneralAlgorithm {
 public:
  std::string name() const override { return "gen-greedy-maxw"; }
  void start(const std::vector<SetMeta>& sets) override { metas_ = sets; }
  std::vector<SetId> on_element(ElementId u,
                                const GeneralArrival& arrival) override;

 private:
  std::vector<SetMeta> metas_;
};

/// Deterministic baseline: first-listed first.
class GeneralFirstFit final : public GeneralAlgorithm {
 public:
  std::string name() const override { return "gen-first-fit"; }
  void start(const std::vector<SetMeta>&) override {}
  std::vector<SetId> on_element(ElementId u,
                                const GeneralArrival& arrival) override;
};

/// Exact offline optimum by branch & bound (suffix-weight pruning).
struct GeneralOfflineResult {
  Weight value = 0;
  std::vector<SetId> chosen;
  bool exact = false;
  std::uint64_t nodes = 0;
};
GeneralOfflineResult general_exact_optimum(const GeneralInstance& inst,
                                           std::uint64_t node_limit =
                                               20'000'000);

/// True iff the chosen sets' demands fit every element capacity.
bool general_feasible(const GeneralInstance& inst,
                      const std::vector<SetId>& chosen);
// The LP relaxation upper bound lives in algos/general_lp.hpp (it needs
// the simplex solver, which sits above this library in the layering).

}  // namespace osp
