// Span-style views and compressed-sparse-row (CSR) storage for the flat
// engine.
//
// The seed engine stored Instance membership as vector<vector<ElementId>>,
// which scatters every set's element list across the heap and costs one
// allocation per row.  CSR packs all rows into one flat value array plus an
// offsets array, so iterating a row is a contiguous scan and building the
// structure is two passes and two allocations total — the layout used by
// batched PRAM-style graph processing.
//
// C++17 has no std::span, so Span<T> below is the minimal read-only view
// the library needs.  It converts implicitly to std::vector<T> and compares
// against vectors so legacy call sites and gtest matchers keep working.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "util/require.hpp"

namespace osp {

/// Read-only contiguous view, analogous to std::span<const T>.
template <typename T>
class Span {
 public:
  using value_type = T;
  using const_iterator = const T*;

  Span() = default;
  Span(const T* data, std::size_t size) : data_(data), size_(size) {}
  explicit Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  const T& operator[](std::size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  std::vector<T> to_vector() const { return std::vector<T>(begin(), end()); }

  /// Implicit materialization keeps pre-CSR call sites (which passed
  /// vectors around) compiling; the flat paths never invoke it.
  operator std::vector<T>() const { return to_vector(); }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

template <typename T>
bool operator==(Span<T> a, Span<T> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}
template <typename T>
bool operator!=(Span<T> a, Span<T> b) {
  return !(a == b);
}
template <typename T>
bool operator==(Span<T> a, const std::vector<T>& b) {
  return a == Span<T>(b);
}
template <typename T>
bool operator==(const std::vector<T>& a, Span<T> b) {
  return Span<T>(a) == b;
}
template <typename T>
bool operator!=(Span<T> a, const std::vector<T>& b) {
  return !(a == b);
}
template <typename T>
bool operator!=(const std::vector<T>& a, Span<T> b) {
  return !(a == b);
}

/// Rows of variable length packed into one flat array (CSR form).
template <typename T>
class CsrArray {
 public:
  CsrArray() : offsets_(1, 0) {}

  /// Flattens `rows`; the result holds the same data contiguously.
  static CsrArray from_rows(const std::vector<std::vector<T>>& rows) {
    CsrArray csr;
    csr.offsets_.reserve(rows.size() + 1);
    std::size_t total = 0;
    for (const auto& r : rows) total += r.size();
    csr.values_.reserve(total);
    for (const auto& r : rows) {
      csr.values_.insert(csr.values_.end(), r.begin(), r.end());
      csr.offsets_.push_back(csr.values_.size());
    }
    return csr;
  }

  /// Builds from per-row sizes, leaving values default-initialized; fill
  /// through mutable_row() afterwards.
  static CsrArray from_sizes(const std::vector<std::size_t>& sizes) {
    CsrArray csr;
    csr.assign_sizes(sizes.data(), sizes.size());
    return csr;
  }

  /// In-place form of from_sizes: rebuilds the row structure reusing the
  /// existing storage (grow-only, so repeated builds of same-scale arrays
  /// allocate nothing in steady state).  Values are left unspecified; fill
  /// through mutable_row().
  void assign_sizes(const std::size_t* sizes, std::size_t count) {
    offsets_.resize(count + 1);
    offsets_[0] = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      total += sizes[i];
      offsets_[i + 1] = total;
    }
    values_.resize(total);
  }

  std::size_t num_rows() const { return offsets_.size() - 1; }
  std::size_t total_values() const { return values_.size(); }

  Span<T> row(std::size_t i) const {
    OSP_ASSERT(i + 1 < offsets_.size());
    return Span<T>(values_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  std::size_t row_size(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }

  T* mutable_row(std::size_t i) { return values_.data() + offsets_[i]; }

  const std::vector<T>& values() const { return values_; }
  const std::vector<std::size_t>& offsets() const { return offsets_; }

 private:
  std::vector<std::size_t> offsets_;  // size num_rows + 1, offsets_[0] == 0
  std::vector<T> values_;
};

/// A contiguous run of arrivals [first, first + count), viewed CSR-style:
/// record i is element first + i with capacity capacities[i] and candidate
/// span candidates[offsets[i] .. offsets[i+1]).  Offsets index into the
/// block owner's full candidate array, so a block at any position borrows
/// the storage zero-copy (Instance::arrival_block just shifts pointers).
/// This is what OnlineAlgorithm::decide_batch consumes.
struct ArrivalBlock {
  ElementId first = 0;
  std::size_t count = 0;
  const Capacity* capacities = nullptr;  // capacities[i] = b(first + i)
  const SetId* candidates = nullptr;     // base of the flat candidate array
  const std::size_t* offsets = nullptr;  // count + 1 entries into candidates

  ElementId element(std::size_t i) const {
    return first + static_cast<ElementId>(i);
  }
  Capacity capacity(std::size_t i) const { return capacities[i]; }
  std::size_t num_candidates(std::size_t i) const {
    return offsets[i + 1] - offsets[i];
  }
  const SetId* candidates_of(std::size_t i) const {
    return candidates + offsets[i];
  }
  Span<SetId> candidate_span(std::size_t i) const {
    return Span<SetId>(candidates_of(i), num_candidates(i));
  }
};

/// Caller-owned flat output of one decide_batch call: the choices of block
/// record i are ids[offsets[i] .. offsets[i+1]).  Buffers grow on demand
/// and are reused across calls — ids is never shrunk, so its size may
/// exceed the valid region [0, offsets.back()) and steady-state blocks
/// allocate (and memset) nothing.  Offsets are 32-bit on purpose — a
/// block's total choice count must fit in std::uint32_t (blocks are
/// engine-sized chunks, not whole runs), and the narrower offsets halve
/// the output traffic of the hot kernels.
struct BlockChoices {
  std::vector<std::uint32_t> offsets;  // count + 1 once filled, [0] == 0
  std::vector<SetId> ids;              // choices in [0, offsets.back())

  std::size_t num_chosen(std::size_t i) const {
    return offsets[i + 1] - offsets[i];
  }
  const SetId* chosen_of(std::size_t i) const {
    return ids.data() + offsets[i];
  }
  Span<SetId> row(std::size_t i) const {
    return Span<SetId>(chosen_of(i), num_chosen(i));
  }
};

/// Shared prologue of every decide_batch implementation: sizes `out` for
/// `block` and returns the output bound.  The block's total candidate
/// count bounds every possible choice count (a record chooses at most
/// min(b(u), sigma(u)) <= sigma(u)) in O(1); ids is grown once and never
/// shrunk, so warm blocks touch no allocator and memset nothing.
inline std::size_t prepare_block_output(const ArrivalBlock& block,
                                        BlockChoices& out) {
  out.offsets.resize(block.count + 1);
  out.offsets[0] = 0;
  const std::size_t bound =
      block.count == 0 ? 0 : block.offsets[block.count] - block.offsets[0];
  OSP_REQUIRE_MSG(bound <= 0xffffffffULL,
                  "arrival block too large: choice offsets are 32-bit");
  if (out.ids.size() < bound) out.ids.resize(bound);
  return bound;
}

}  // namespace osp
