#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"
#include "util/require.hpp"

namespace osp {

double theorem1_bound(const InstanceStats& st) {
  if (st.sigma_w_avg <= 0) return 0;
  return static_cast<double>(st.k_max) *
         std::sqrt(st.sigma_sigma_w_avg / st.sigma_w_avg);
}

double corollary6_bound(const InstanceStats& st) {
  return static_cast<double>(st.k_max) *
         std::sqrt(static_cast<double>(st.sigma_max));
}

double theorem4_shape(const InstanceStats& st) {
  if (st.sigma_w_avg <= 0) return 0;
  return static_cast<double>(st.k_max) *
         std::sqrt(st.nu_sigma_w_avg / st.sigma_w_avg);
}

double theorem4_bound(const InstanceStats& st) {
  return 16.0 * std::exp(1.0) * theorem4_shape(st);
}

double theorem5_bound(const InstanceStats& st) {
  OSP_REQUIRE_MSG(st.uniform_size, "Theorem 5 needs uniform set size");
  if (st.sigma_avg <= 0) return 0;
  return st.k_avg * st.sigma_sq_avg / (st.sigma_avg * st.sigma_avg);
}

double corollary7_bound(const InstanceStats& st) {
  OSP_REQUIRE_MSG(st.uniform_size && st.uniform_load,
                  "Corollary 7 needs uniform size and load");
  return st.k_avg;
}

double theorem6_bound(const InstanceStats& st) {
  OSP_REQUIRE_MSG(st.uniform_load, "Theorem 6 needs uniform load");
  return st.k_avg * std::sqrt(st.sigma_avg);
}

double theorem3_lower_bound(std::size_t sigma, std::size_t k) {
  OSP_REQUIRE(k >= 1);
  return std::pow(static_cast<double>(sigma), static_cast<double>(k - 1));
}

double theorem2_lower_bound(std::size_t k_max, std::size_t sigma_max) {
  double k = static_cast<double>(k_max);
  double lk = log_or_one(k);
  double llk = log_or_one(lk);
  double factor = (llk / lk) * (llk / lk);
  return k * factor * std::sqrt(static_cast<double>(sigma_max));
}

double naive_bound(const InstanceStats& st) {
  return static_cast<double>(st.k_max) * static_cast<double>(st.sigma_max);
}

double lemma4_lower_bound(const InstanceStats& st, double opt_value) {
  OSP_REQUIRE(opt_value >= 0);
  double denom = static_cast<double>(st.k_max) * st.total_weight;
  return denom > 0 ? opt_value * opt_value / denom : 0.0;
}

double lemma5_lower_bound(const InstanceStats& st) {
  double denom =
      static_cast<double>(st.num_elements) * st.sigma_sigma_w_avg;
  return denom > 0 ? st.total_weight * st.total_weight / denom : 0.0;
}

double theorem1_benefit_floor(const InstanceStats& st, double opt_value) {
  return std::max(lemma4_lower_bound(st, opt_value),
                  lemma5_lower_bound(st));
}

}  // namespace osp
