#include "core/priority.hpp"

#include <cmath>

#include "util/require.hpp"

namespace osp {

double sample_rw(double w, Rng& rng) {
  OSP_REQUIRE(w > 0);
  // Inverse CDF of x^w: X = U^{1/w}.
  return std::pow(rng.uniform_open(), 1.0 / w);
}

PriorityKey sample_rw_key(double w, Rng& rng) {
  return rw_key_from_uniform(rng.uniform_open(), w, rng());
}

PriorityKey rw_key_from_uniform(double u, double w, std::uint64_t tie) {
  OSP_REQUIRE(w > 0);
  OSP_REQUIRE(u > 0.0 && u < 1.0);
  // X = U^{1/w}  ⇒  log X = log(U)/w; log is monotone, so the key orders
  // samples exactly as the raw values would, without the precision loss of
  // computing U^{1/w} near 1.
  return PriorityKey{std::log(u) / w, tie};
}

double rw_cdf(double x, double w) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return std::pow(x, w);
}

}  // namespace osp
