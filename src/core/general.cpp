#include "core/general.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "util/require.hpp"

namespace osp {

GeneralStats GeneralInstance::stats() const {
  GeneralStats st;
  st.num_sets = num_sets();
  st.num_elements = num_elements();
  for (Weight w : weights_) st.total_weight += w;
  for (std::size_t s = 0; s < appearances_.size(); ++s)
    st.k_max = std::max(st.k_max, appearances_[s]);
  for (const GeneralArrival& a : arrivals_) {
    std::uint64_t demanded = 0;
    for (const UnitDemand& d : a.demands) demanded += d.units;
    double nu = static_cast<double>(demanded) / a.capacity;
    st.nu_max = std::max(st.nu_max, nu);
    st.nu_avg += nu;
  }
  if (!arrivals_.empty()) st.nu_avg /= static_cast<double>(arrivals_.size());
  return st;
}

void GeneralInstance::validate() const {
  OSP_REQUIRE(appearances_.size() == weights_.size());
  std::vector<std::size_t> counted(weights_.size(), 0);
  for (const GeneralArrival& a : arrivals_) {
    OSP_REQUIRE(a.capacity >= 1);
    for (std::size_t i = 0; i < a.demands.size(); ++i) {
      OSP_REQUIRE(a.demands[i].set < weights_.size());
      OSP_REQUIRE(a.demands[i].units >= 1);
      if (i > 0) OSP_REQUIRE(a.demands[i - 1].set < a.demands[i].set);
      ++counted[a.demands[i].set];
    }
  }
  for (std::size_t s = 0; s < weights_.size(); ++s)
    OSP_REQUIRE(counted[s] == appearances_[s]);
}

SetId GeneralInstanceBuilder::add_set(Weight w) {
  OSP_REQUIRE(w >= 0 && std::isfinite(w));
  weights_.push_back(w);
  return static_cast<SetId>(weights_.size() - 1);
}

ElementId GeneralInstanceBuilder::add_element(std::vector<UnitDemand> demands,
                                              std::uint32_t capacity) {
  OSP_REQUIRE(capacity >= 1);
  std::sort(demands.begin(), demands.end(),
            [](const UnitDemand& a, const UnitDemand& b) {
              return a.set < b.set;
            });
  for (std::size_t i = 0; i < demands.size(); ++i) {
    OSP_REQUIRE_MSG(demands[i].set < weights_.size(), "unknown set");
    OSP_REQUIRE_MSG(demands[i].units >= 1, "zero-unit demand");
    if (i > 0)
      OSP_REQUIRE_MSG(demands[i - 1].set != demands[i].set,
                      "duplicate set in element");
  }
  arrivals_.push_back(GeneralArrival{capacity, std::move(demands)});
  return static_cast<ElementId>(arrivals_.size() - 1);
}

GeneralInstance GeneralInstanceBuilder::build() {
  GeneralInstance inst;
  inst.weights_ = std::move(weights_);
  inst.arrivals_ = std::move(arrivals_);
  inst.appearances_.assign(inst.weights_.size(), 0);
  for (const GeneralArrival& a : inst.arrivals_)
    for (const UnitDemand& d : a.demands) ++inst.appearances_[d.set];
  inst.validate();
  weights_.clear();
  arrivals_.clear();
  return inst;
}

GeneralOutcome play_general(const GeneralInstance& inst,
                            GeneralAlgorithm& alg) {
  std::vector<SetMeta> metas(inst.num_sets());
  for (SetId s = 0; s < inst.num_sets(); ++s)
    metas[s] = SetMeta{inst.weight(s), inst.appearances(s)};
  alg.start(metas);

  std::vector<std::size_t> granted(inst.num_sets(), 0);
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const GeneralArrival& a = inst.arrival(u);
    std::vector<SetId> chosen = alg.on_element(u, a);
    // Enforce the rules: chosen sets must demand here, be distinct, and
    // their units must fit the capacity.
    std::uint64_t used = 0;
    std::vector<SetId> sorted = chosen;
    std::sort(sorted.begin(), sorted.end());
    OSP_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
    for (SetId s : sorted) {
      auto it = std::lower_bound(
          a.demands.begin(), a.demands.end(), s,
          [](const UnitDemand& d, SetId v) { return d.set < v; });
      OSP_REQUIRE_MSG(it != a.demands.end() && it->set == s,
                      "granted a set that does not demand this element");
      used += it->units;
      ++granted[s];
    }
    OSP_REQUIRE_MSG(used <= a.capacity,
                    "granted units " << used << " exceed capacity "
                                     << a.capacity);
  }

  GeneralOutcome out;
  for (SetId s = 0; s < inst.num_sets(); ++s) {
    if (granted[s] == inst.appearances(s)) {
      out.completed.push_back(s);
      out.benefit += inst.weight(s);
    }
  }
  return out;
}

namespace {

// Shared allocation rule: scan candidates in the order given by `better`,
// grant every demand that still fits.
std::vector<SetId> priority_fill(
    const GeneralArrival& arrival,
    const std::function<bool(SetId, SetId)>& better) {
  std::vector<SetId> order;
  order.reserve(arrival.demands.size());
  for (const UnitDemand& d : arrival.demands) order.push_back(d.set);
  std::sort(order.begin(), order.end(), better);

  std::vector<SetId> granted;
  std::uint64_t left = arrival.capacity;
  for (SetId s : order) {
    auto it = std::lower_bound(
        arrival.demands.begin(), arrival.demands.end(), s,
        [](const UnitDemand& d, SetId v) { return d.set < v; });
    if (it->units <= left) {
      left -= it->units;
      granted.push_back(s);
    }
  }
  return granted;
}

}  // namespace

void GeneralRandPr::start(const std::vector<SetMeta>& sets) {
  priorities_.resize(sets.size());
  for (SetId s = 0; s < sets.size(); ++s)
    priorities_[s] = sample_rw_key(std::max(sets[s].weight, 1e-12), rng_);
}

std::vector<SetId> GeneralRandPr::on_element(ElementId,
                                             const GeneralArrival& arrival) {
  return priority_fill(arrival, [&](SetId a, SetId b) {
    return priorities_[b] < priorities_[a];
  });
}

std::vector<SetId> GeneralGreedyWeight::on_element(
    ElementId, const GeneralArrival& arrival) {
  return priority_fill(arrival, [&](SetId a, SetId b) {
    if (metas_[a].weight != metas_[b].weight)
      return metas_[a].weight > metas_[b].weight;
    return a < b;
  });
}

std::vector<SetId> GeneralFirstFit::on_element(
    ElementId, const GeneralArrival& arrival) {
  return priority_fill(arrival, [](SetId a, SetId b) { return a < b; });
}

bool general_feasible(const GeneralInstance& inst,
                      const std::vector<SetId>& chosen) {
  std::vector<bool> take(inst.num_sets(), false);
  for (SetId s : chosen) {
    if (s >= inst.num_sets() || take[s]) return false;
    take[s] = true;
  }
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const GeneralArrival& a = inst.arrival(u);
    std::uint64_t used = 0;
    for (const UnitDemand& d : a.demands)
      if (take[d.set]) used += d.units;
    if (used > a.capacity) return false;
  }
  return true;
}

namespace {

struct GeneralSearch {
  const GeneralInstance& inst;
  std::vector<SetId> order;
  std::vector<Weight> suffix;
  // Remaining capacity per element for the current partial choice.
  std::vector<std::int64_t> slack;
  // Per set, the list of (element, units) it demands.
  std::vector<std::vector<std::pair<ElementId, std::uint32_t>>> demands_of;
  std::vector<SetId> current, best;
  Weight best_value = -1;
  std::uint64_t nodes = 0, node_limit;
  bool truncated = false;

  GeneralSearch(const GeneralInstance& i, std::uint64_t limit)
      : inst(i), node_limit(limit) {
    order.resize(inst.num_sets());
    std::iota(order.begin(), order.end(), SetId{0});
    std::sort(order.begin(), order.end(), [&](SetId a, SetId b) {
      if (inst.weight(a) != inst.weight(b))
        return inst.weight(a) > inst.weight(b);
      return inst.appearances(a) < inst.appearances(b);
    });
    suffix.assign(order.size() + 1, 0);
    for (std::size_t i2 = order.size(); i2-- > 0;)
      suffix[i2] = suffix[i2 + 1] + inst.weight(order[i2]);
    slack.resize(inst.num_elements());
    demands_of.resize(inst.num_sets());
    for (ElementId u = 0; u < inst.num_elements(); ++u) {
      slack[u] = inst.arrival(u).capacity;
      for (const UnitDemand& d : inst.arrival(u).demands)
        demands_of[d.set].emplace_back(u, d.units);
    }
  }

  bool addable(SetId s) const {
    for (auto [u, units] : demands_of[s])
      if (slack[u] < units) return false;
    return true;
  }

  void apply(SetId s, int sign) {
    for (auto [u, units] : demands_of[s])
      slack[u] += sign * static_cast<std::int64_t>(units);
  }

  void recurse(std::size_t idx, Weight value) {
    if (++nodes > node_limit) {
      truncated = true;
      return;
    }
    if (value > best_value) {
      best_value = value;
      best = current;
    }
    if (idx == order.size() || value + suffix[idx] <= best_value) return;
    SetId s = order[idx];
    if (addable(s)) {
      apply(s, -1);
      current.push_back(s);
      recurse(idx + 1, value + inst.weight(s));
      current.pop_back();
      apply(s, +1);
      if (truncated) return;
    }
    recurse(idx + 1, value);
  }
};

}  // namespace

GeneralOfflineResult general_exact_optimum(const GeneralInstance& inst,
                                           std::uint64_t node_limit) {
  GeneralSearch search(inst, node_limit);
  search.recurse(0, 0);
  GeneralOfflineResult out;
  out.chosen = std::move(search.best);
  std::sort(out.chosen.begin(), out.chosen.end());
  out.value = std::max<Weight>(search.best_value, 0);
  out.exact = !search.truncated;
  out.nodes = search.nodes;
  OSP_ASSERT(general_feasible(inst, out.chosen));
  return out;
}

}  // namespace osp
