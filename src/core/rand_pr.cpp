#include "core/rand_pr.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace osp {

std::vector<SetId> top_by_priority(const std::vector<SetId>& candidates,
                                   const std::vector<PriorityKey>& keys,
                                   Capacity capacity) {
  if (candidates.size() <= capacity) return candidates;
  std::vector<SetId> chosen = candidates;
  std::partial_sort(chosen.begin(), chosen.begin() + capacity, chosen.end(),
                    [&](SetId a, SetId b) { return keys[a] > keys[b]; });
  chosen.resize(capacity);
  return chosen;
}

namespace {

// Applies the filter_dead ablation: drops candidates the tracker knows
// can no longer earn value (missed more than allowed_misses elements).
std::vector<SetId> filter_active(const ActiveTracking& tracker,
                                 const std::vector<SetId>& candidates,
                                 std::size_t allowed_misses) {
  std::vector<SetId> alive;
  alive.reserve(candidates.size());
  for (SetId s : candidates)
    if (tracker.misses(s) <= allowed_misses) alive.push_back(s);
  return alive;
}

}  // namespace

RandPr::RandPr(Rng rng, RandPrOptions options)
    : rng_(rng), options_(options) {}

std::string RandPr::name() const {
  std::string n = "randPr";
  if (options_.ignore_weights) n += "/unif";
  if (options_.filter_dead) n += "/filt";
  if (options_.fresh_priorities_per_element) n += "/fresh";
  return n;
}

void RandPr::start(const std::vector<SetMeta>& sets) {
  ActiveTracking::start(sets);
  priorities_.resize(sets.size());
  for (SetId s = 0; s < sets.size(); ++s) {
    double w = options_.ignore_weights ? 1.0 : std::max(sets[s].weight, 1e-12);
    priorities_[s] = sample_rw_key(w, rng_);
  }
}

std::vector<SetId> RandPr::on_element(ElementId, Capacity capacity,
                                      const std::vector<SetId>& candidates) {
  if (options_.fresh_priorities_per_element) {
    for (SetId s : candidates) {
      double w =
          options_.ignore_weights ? 1.0 : std::max(meta()[s].weight, 1e-12);
      priorities_[s] = sample_rw_key(w, rng_);
    }
  }
  const std::vector<SetId> pool =
      options_.filter_dead
          ? filter_active(*this, candidates, options_.allowed_misses)
          : candidates;
  std::vector<SetId> chosen = top_by_priority(pool, priorities_, capacity);
  record(candidates, chosen);
  return chosen;
}

HashedRandPr::HashedRandPr(HashFn hash, std::string label,
                           RandPrOptions options)
    : hash_(std::move(hash)), label_(std::move(label)), options_(options) {
  OSP_REQUIRE(hash_ != nullptr);
}

std::unique_ptr<HashedRandPr> HashedRandPr::with_polynomial(
    unsigned independence, Rng& rng) {
  auto h = std::make_shared<PolynomialHash>(independence, rng);
  return std::make_unique<HashedRandPr>(
      [h](std::uint64_t key) { return h->unit(key); },
      "hashPr/poly" + std::to_string(independence));
}

std::unique_ptr<HashedRandPr> HashedRandPr::with_tabulation(Rng& rng) {
  auto h = std::make_shared<TabulationHash>(rng);
  return std::make_unique<HashedRandPr>(
      [h](std::uint64_t key) { return h->unit(key); }, "hashPr/tab");
}

std::unique_ptr<HashedRandPr> HashedRandPr::with_multiply_shift(Rng& rng) {
  auto h = std::make_shared<MultiplyShiftHash>(rng);
  return std::make_unique<HashedRandPr>(
      [h](std::uint64_t key) { return h->unit(key); }, "hashPr/ms");
}

std::string HashedRandPr::name() const { return label_; }

void HashedRandPr::start(const std::vector<SetMeta>& sets) {
  ActiveTracking::start(sets);
  priorities_.resize(sets.size());
  for (SetId s = 0; s < sets.size(); ++s) {
    double u = hash_(s);
    // Clamp hash output into the open interval required by the key
    // transform; collisions at the boundary are broken by the tie field.
    u = std::min(std::max(u, 1e-15), 1.0 - 1e-15);
    double w = options_.ignore_weights ? 1.0 : std::max(sets[s].weight, 1e-12);
    priorities_[s] = rw_key_from_uniform(u, w, /*tie=*/s);
  }
}

std::vector<SetId> HashedRandPr::on_element(
    ElementId, Capacity capacity, const std::vector<SetId>& candidates) {
  const std::vector<SetId> pool =
      options_.filter_dead
          ? filter_active(*this, candidates, options_.allowed_misses)
          : candidates;
  std::vector<SetId> chosen = top_by_priority(pool, priorities_, capacity);
  record(candidates, chosen);
  return chosen;
}

}  // namespace osp
