#include "core/rand_pr.hpp"

#include <algorithm>

#include "core/simd.hpp"
#include "util/require.hpp"

namespace osp {

std::size_t top_by_priority_soa(const SetId* candidates, std::size_t n,
                                const double* keys,
                                const std::uint64_t* ties, Capacity capacity,
                                SetId* out, std::vector<SetId>& scratch) {
  if (n <= capacity) {
    std::copy(candidates, candidates + n, out);
    return n;
  }
  if (capacity == 0) return 0;  // degenerate: nothing may be chosen
  if (capacity == 1) {
    // Branchless argmax scan: priorities are effectively random, so a
    // branchy max would mispredict ~ln(n) times per element; conditional
    // moves keep the pipeline full.  Exact key collisions (probability ~0
    // for sampled keys, boundary clamps for hashed ones) fall back to the
    // tie field in a cold branch.
    SetId best = candidates[0];
    double best_key = keys[best];
    for (std::size_t i = 1; i < n; ++i) {
      const SetId c = candidates[i];
      const double k = keys[c];
      if (k == best_key) {  // cold: resolve by tie, preserving total order
        if (ties[c] > ties[best]) best = c;
        continue;
      }
      const bool better = k > best_key;
      best = better ? c : best;
      best_key = better ? k : best_key;
    }
    out[0] = best;
    return 1;
  }
  const auto higher = [&](SetId a, SetId b) {
    if (keys[a] != keys[b]) return keys[a] > keys[b];
    return ties[a] > ties[b];
  };
  scratch.assign(candidates, candidates + n);
  auto mid = scratch.begin() + static_cast<std::ptrdiff_t>(capacity);
  std::nth_element(scratch.begin(), mid - 1, scratch.end(), higher);
  std::sort(scratch.begin(), mid, higher);
  std::copy(scratch.begin(), mid, out);
  return capacity;
}

namespace {

/// The exact unit-capacity row argmax: scans the quantized u32 ranks —
/// a quarter of the (key, tie) footprint, L1-resident for router-scale
/// set counts — with conditional moves (priorities are effectively
/// random, so a branchy max would mispredict ~ln(n) times per row), and
/// drops to the exact (key, tie) order only when two ranks collide
/// (quantization, or genuinely equal keys from boundary-clamped hashes).
/// Because quantized_key_rank is monotone, the result IS the exact-order
/// maximum of the row; the vector kernels in core/simd.hpp reproduce it
/// bit for bit, rescanning through this loop on any rank collision.
inline SetId exact_row_argmax(const SetId* c, std::size_t n,
                              const double* keys, const std::uint64_t* ties,
                              const std::uint32_t* qranks) {
  SetId best = c[0];
  std::uint32_t best_rank = qranks[best];
  for (std::size_t j = 1; j < n; ++j) {
    const SetId s = c[j];
    const std::uint32_t r = qranks[s];
    if (r == best_rank) {  // cold: resolve by the exact total order
      if (keys[s] != keys[best] ? keys[s] > keys[best] : ties[s] > ties[best])
        best = s;
      continue;
    }
    const bool better = r > best_rank;
    best = better ? s : best;
    best_rank = better ? r : best_rank;
  }
  return best;
}

}  // namespace

void top_by_priority_soa_block(const ArrivalBlock& block, const double* keys,
                               const std::uint64_t* ties,
                               const std::uint32_t* qranks,
                               BlockScratch& scratch, BlockChoices& out) {
  const std::size_t count = block.count;
  const std::size_t* off = block.offsets;
  const SetId* cands = block.candidates;
  const Capacity* caps = block.capacities;

  // Dispatch is hoisted per block: one cached active_isa() read and one
  // table lookup amortized over every row.  rowsfn == nullptr is the
  // scalar tier, whose rows resolve inline below.  On vector tiers the
  // unit-capacity rows long enough for the lane-parallel kernel are
  // DEFERRED — recorded as (row, slot) pairs and resolved in one batched
  // call after the walk — so the dispatch indirection costs one call per
  // block instead of one per row (which at sigma ~16 candidates/row would
  // eat the lane-parallel win whole).
  const simd::UnitRowsFn rowsfn =
      simd::unit_rank_argmax_rows_fn(simd::active_isa());
  std::uint32_t* const got = scratch.got;

  prepare_block_output(block, out);

  SetId* dst = out.ids.data();
  scratch.unit_rows.clear();
  std::size_t written = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const SetId* c = cands + off[i];
    const std::size_t n = off[i + 1] - off[i];
    const Capacity cap = caps[i];
    if (n == 0 || cap == 0) {
      out.offsets[i + 1] = static_cast<std::uint32_t>(written);
      continue;
    }
    if (cap == 1 && n > 1) {
      // The hot row shape: a unit-capacity argmax over the record's
      // candidates.  The capacity dispatch is per row, so mixed-capacity
      // blocks still take this path for their unit-capacity records.
      if (rowsfn != nullptr && n >= simd::kUnitArgmaxMinRow) {
        scratch.unit_rows.push_back(static_cast<std::uint32_t>(i));
        scratch.unit_rows.push_back(static_cast<std::uint32_t>(written));
        ++written;  // slot reserved; filled by the batched kernel
      } else {
        const SetId best = exact_row_argmax(c, n, keys, ties, qranks);
        dst[written++] = best;
        if (got != nullptr) ++got[best];
      }
    } else {
      const std::size_t chosen = top_by_priority_soa(
          c, n, keys, ties, cap, dst + written, scratch.topk);
      if (got != nullptr)
        for (std::size_t j = 0; j < chosen; ++j) ++got[dst[written + j]];
      written += chosen;
    }
    out.offsets[i + 1] = static_cast<std::uint32_t>(written);
  }

  if (!scratch.unit_rows.empty()) {
    const std::size_t tasks = scratch.unit_rows.size() / 2;
    scratch.row_coll.assign(tasks, 0);
    rowsfn(cands, off, scratch.unit_rows.data(), tasks, qranks, dst,
           scratch.row_coll.data());
    // A reported rank collision (the row's max quantized rank may be
    // shared) falls back to the exact scalar rescan, so decisions are
    // bit-identical across every ISA tier.
    for (std::size_t t = 0; t < tasks; ++t) {
      const std::uint32_t slot = scratch.unit_rows[2 * t + 1];
      if (scratch.row_coll[t]) {
        const std::uint32_t row = scratch.unit_rows[2 * t];
        dst[slot] = exact_row_argmax(cands + off[row],
                                     off[row + 1] - off[row], keys, ties,
                                     qranks);
      }
      if (got != nullptr) ++got[dst[slot]];
    }
  }
  // Fused segmented reduce complete: every chosen set's histogram slot
  // was bumped in the same pass that wrote (or patched) its row.
  if (got != nullptr) scratch.hist_applied = true;
}

std::size_t top_by_priority_flat(const SetId* candidates, std::size_t n,
                                 const std::vector<PriorityKey>& keys,
                                 Capacity capacity, SetId* out,
                                 std::vector<SetId>& scratch) {
  if (n <= capacity) {
    std::copy(candidates, candidates + n, out);
    return n;
  }
  if (capacity == 0) return 0;  // degenerate: nothing may be chosen
  const auto higher = [&](SetId a, SetId b) { return keys[a] > keys[b]; };
  if (capacity == 1) {
    SetId best = candidates[0];
    for (std::size_t i = 1; i < n; ++i)
      if (higher(candidates[i], best)) best = candidates[i];
    out[0] = best;
    return 1;
  }
  scratch.assign(candidates, candidates + n);
  auto mid = scratch.begin() + static_cast<std::ptrdiff_t>(capacity);
  std::nth_element(scratch.begin(), mid - 1, scratch.end(), higher);
  std::sort(scratch.begin(), mid, higher);
  std::copy(scratch.begin(), mid, out);
  return capacity;
}

std::vector<SetId> top_by_priority(const std::vector<SetId>& candidates,
                                   const std::vector<PriorityKey>& keys,
                                   Capacity capacity) {
  std::vector<SetId> chosen(
      std::min<std::size_t>(capacity, candidates.size()));
  std::vector<SetId> scratch;
  chosen.resize(top_by_priority_flat(candidates.data(), candidates.size(),
                                     keys, capacity, chosen.data(), scratch));
  return chosen;
}

namespace {

// Applies the filter_dead ablation: keeps candidates the tracker still
// expects to earn value (missed at most allowed_misses elements).
std::size_t filter_active(const ActiveTracking& tracker,
                          const SetId* candidates, std::size_t n,
                          std::size_t allowed_misses,
                          std::vector<SetId>& alive) {
  alive.clear();
  for (std::size_t i = 0; i < n; ++i)
    if (tracker.misses(candidates[i]) <= allowed_misses)
      alive.push_back(candidates[i]);
  return alive.size();
}

}  // namespace

RandPr::RandPr(Rng rng, RandPrOptions options)
    : rng_(rng), options_(options) {}

namespace {

/// Display-name suffix shared by RandPr and the hashed factories.
std::string options_suffix(const RandPrOptions& options) {
  std::string n;
  if (options.ignore_weights) n += "/unif";
  if (options.filter_dead) n += "/filt";
  if (options.fresh_priorities_per_element) n += "/fresh";
  return n;
}

}  // namespace

std::string RandPr::name() const { return "randPr" + options_suffix(options_); }

void RandPr::start(const std::vector<SetMeta>& sets) {
  ActiveTracking::start(sets);
  keys_.resize(sets.size());
  ties_.resize(sets.size());
  qranks_.resize(sets.size());
  for (SetId s = 0; s < sets.size(); ++s) {
    double w = options_.ignore_weights ? 1.0 : std::max(sets[s].weight, 1e-12);
    PriorityKey k = sample_rw_key(w, rng_);
    keys_[s] = k.key;
    ties_[s] = k.tie;
    qranks_[s] = quantized_key_rank(k.key);
  }
}

std::size_t RandPr::decide(ElementId, Capacity capacity,
                           const SetId* candidates,
                           std::size_t num_candidates, SetId* out) {
  if (options_.fresh_priorities_per_element) {
    for (std::size_t i = 0; i < num_candidates; ++i) {
      SetId s = candidates[i];
      double w =
          options_.ignore_weights ? 1.0 : std::max(meta()[s].weight, 1e-12);
      PriorityKey k = sample_rw_key(w, rng_);
      keys_[s] = k.key;
      ties_[s] = k.tie;
    }
  }
  // Paper-exact configuration: selection only, no pool copy and (since
  // the algorithm never reads the activity tracker) no bookkeeping.
  if (!options_.filter_dead)
    return top_by_priority_soa(candidates, num_candidates, keys_.data(),
                               ties_.data(), capacity, out, topk_scratch_);

  std::size_t pool_n = filter_active(*this, candidates, num_candidates,
                                     options_.allowed_misses, pool_scratch_);
  std::size_t chosen =
      top_by_priority_soa(pool_scratch_.data(), pool_n, keys_.data(),
                          ties_.data(), capacity, out, topk_scratch_);
  record(candidates, num_candidates, out, chosen);
  return chosen;
}

void RandPr::decide_batch(const ArrivalBlock& block, BlockScratch& scratch,
                          BlockChoices& out) {
  // The ablation configurations mutate state per arrival (fresh Rng draws,
  // activity bookkeeping); only the shared per-element loop preserves
  // their side-effect order, so the block kernel is reserved for the
  // paper-exact fixed-priority configuration.
  if (options_.filter_dead || options_.fresh_priorities_per_element) {
    OnlineAlgorithm::decide_batch(block, scratch, out);
    return;
  }
  top_by_priority_soa_block(block, keys_.data(), ties_.data(),
                            qranks_.data(), scratch, out);
}

HashedRandPr::HashedRandPr(HashFn hash, std::string label,
                           RandPrOptions options)
    : hash_(std::move(hash)), label_(std::move(label)), options_(options) {
  OSP_REQUIRE(hash_ != nullptr);
}

namespace {

// Builds the HashFn each with_* factory uses; also serves as the rehash
// recipe, so reseed(rng) reproduces construction from the same rng.
template <class Hash, class... Args>
HashedRandPr::HashFn make_unit_hash(Rng& rng, Args... args) {
  auto h = std::make_shared<Hash>(args..., rng);
  return [h](std::uint64_t key) { return h->unit(key); };
}

}  // namespace

std::unique_ptr<HashedRandPr> HashedRandPr::with_polynomial(
    unsigned independence, Rng& rng, RandPrOptions options) {
  auto alg = std::make_unique<HashedRandPr>(
      make_unit_hash<PolynomialHash>(rng, independence),
      "hashPr/poly" + std::to_string(independence) + options_suffix(options),
      options);
  alg->set_rehash([independence](Rng r) {
    return make_unit_hash<PolynomialHash>(r, independence);
  });
  return alg;
}

std::unique_ptr<HashedRandPr> HashedRandPr::with_tabulation(
    Rng& rng, RandPrOptions options) {
  auto alg = std::make_unique<HashedRandPr>(
      make_unit_hash<TabulationHash>(rng),
      "hashPr/tab" + options_suffix(options), options);
  alg->set_rehash([](Rng r) { return make_unit_hash<TabulationHash>(r); });
  return alg;
}

std::unique_ptr<HashedRandPr> HashedRandPr::with_multiply_shift(
    Rng& rng, RandPrOptions options) {
  auto alg = std::make_unique<HashedRandPr>(
      make_unit_hash<MultiplyShiftHash>(rng),
      "hashPr/ms" + options_suffix(options), options);
  alg->set_rehash(
      [](Rng r) { return make_unit_hash<MultiplyShiftHash>(r); });
  return alg;
}

void HashedRandPr::reseed(Rng rng) {
  OSP_REQUIRE_MSG(rehash_ != nullptr,
                  "HashedRandPr without a rehash recipe cannot reseed");
  hash_ = rehash_(rng);
}

std::string HashedRandPr::name() const { return label_; }

void HashedRandPr::start(const std::vector<SetMeta>& sets) {
  ActiveTracking::start(sets);
  keys_.resize(sets.size());
  ties_.resize(sets.size());
  qranks_.resize(sets.size());
  for (SetId s = 0; s < sets.size(); ++s) {
    double u = hash_(s);
    // Clamp hash output into the open interval required by the key
    // transform; collisions at the boundary are broken by the tie field.
    u = std::min(std::max(u, 1e-15), 1.0 - 1e-15);
    double w = options_.ignore_weights ? 1.0 : std::max(sets[s].weight, 1e-12);
    PriorityKey k = rw_key_from_uniform(u, w, /*tie=*/s);
    keys_[s] = k.key;
    ties_[s] = k.tie;
    qranks_[s] = quantized_key_rank(k.key);
  }
}

std::size_t HashedRandPr::decide(ElementId, Capacity capacity,
                                 const SetId* candidates,
                                 std::size_t num_candidates, SetId* out) {
  if (!options_.filter_dead)
    return top_by_priority_soa(candidates, num_candidates, keys_.data(),
                               ties_.data(), capacity, out, topk_scratch_);

  std::size_t pool_n = filter_active(*this, candidates, num_candidates,
                                     options_.allowed_misses, pool_scratch_);
  std::size_t chosen =
      top_by_priority_soa(pool_scratch_.data(), pool_n, keys_.data(),
                          ties_.data(), capacity, out, topk_scratch_);
  record(candidates, num_candidates, out, chosen);
  return chosen;
}

void HashedRandPr::decide_batch(const ArrivalBlock& block,
                                BlockScratch& scratch, BlockChoices& out) {
  if (options_.filter_dead) {  // stateful: per-element loop preserves order
    OnlineAlgorithm::decide_batch(block, scratch, out);
    return;
  }
  top_by_priority_soa_block(block, keys_.data(), ties_.data(),
                            qranks_.data(), scratch, out);
}

}  // namespace osp

// ---------------------------------------------------------------------
// Self-registration into the experiment API's policy registry.  Aliases
// keep the historical CLI spellings and the display names resolvable.

#include "api/policy_registry.hpp"

namespace osp::api {

/// Linker anchor referenced by policies(); guarantees this translation
/// unit (and with it the registrars below) is linked into any binary
/// that uses the registry.
void link_randpr_policies() {}

namespace {

std::unique_ptr<OnlineAlgorithm> make_randpr(Rng rng, RandPrOptions options) {
  return std::make_unique<RandPr>(rng, options);
}

PolicyRegistrar r_randpr{
    {"randpr", "the paper's randPr: fixed R_w priorities, top-b(u) wins",
     {"randPr"},
     [](Rng r) { return make_randpr(r, {}); }}};
PolicyRegistrar r_randpr_filt{
    {"randpr:filt", "randPr that never assigns to dead sets (ablation)",
     {"randpr-filt", "randPr/filt"},
     [](Rng r) { return make_randpr(r, RandPrOptions{.filter_dead = true}); }}};
PolicyRegistrar r_randpr_filt1{
    {"randpr:filt1", "dead-set filtering with one allowed miss",
     {"randPr/filt1"},
     [](Rng r) {
       RandPrOptions o;
       o.filter_dead = true;
       o.allowed_misses = 1;
       return make_randpr(r, o);
     }}};
PolicyRegistrar r_randpr_unif{
    {"randpr:unif", "weight-blind priorities (all R_1; ablation)",
     {"randPr/unif"},
     [](Rng r) {
       return make_randpr(r, RandPrOptions{.ignore_weights = true});
     }}};
PolicyRegistrar r_randpr_fresh{
    {"randpr:fresh", "priorities redrawn per element (negative control)",
     {"randPr/fresh"},
     [](Rng r) {
       RandPrOptions o;
       o.fresh_priorities_per_element = true;
       return make_randpr(r, o);
     }}};

PolicyRegistrar r_hashpr{
    {"hashpr", "distributed randPr over an 8-independent polynomial hash",
     {"hashPr", "hashPr/poly8"},
     [](Rng r) { return HashedRandPr::with_polynomial(8, r); }}};
PolicyRegistrar r_hashpr_tab{
    {"hashpr:tab", "distributed randPr over a tabulation hash",
     {"hashPr/tab"},
     [](Rng r) { return HashedRandPr::with_tabulation(r); }}};
PolicyRegistrar r_hashpr_ms{
    {"hashpr:ms", "distributed randPr over a multiply-shift hash",
     {"hashPr/ms"},
     [](Rng r) { return HashedRandPr::with_multiply_shift(r); }}};
PolicyRegistrar r_hashpr_filt{
    {"hashpr:filt", "hashed priorities plus dead-set filtering",
     {"hashPr/poly8/filt"},
     [](Rng r) {
       return HashedRandPr::with_polynomial(
           8, r, RandPrOptions{.filter_dead = true});
     }}};

}  // namespace
}  // namespace osp::api
