// Runtime CPU-feature detection and ISA selection for the SIMD kernels.
//
// The block decision kernel (top_by_priority_soa_block) has one
// implementation per instruction-set tier — scalar always, SSE2/AVX2 on
// x86-64, NEON on aarch64 — and the tier is picked ONCE per process:
// the first call to active_isa() probes the CPU, applies the
// OSP_FORCE_ISA environment override, and caches the answer.  Every
// later dispatch is a cached read, so the hot path never re-detects.
//
// Contract (see docs/ARCHITECTURE.md, "SIMD kernel & runtime dispatch"):
//   * every tier is decision-identical to the scalar kernel — the fuzz
//     suite in test_engine/test_simd proves it per available ISA;
//   * OSP_FORCE_ISA=<scalar|sse2|avx2|neon> pins the selection for
//     testing; naming an ISA the CPU cannot run is a hard RequireError,
//     never a silent fallback (a CI leg that "tested avx2" on a
//     SSE2-only box must fail loudly, not pass vacuously);
//   * set_active_isa()/refresh_active_isa() re-run the selection
//     in-process — what the forced-ISA fuzz tests and bench_perf's
//     --isa-sweep use to sweep every tier inside one run.
#pragma once

#include <string>
#include <vector>

namespace osp::simd {

/// Instruction-set tiers of the block decision kernel, ascending by
/// preference within an architecture.  kScalar is always available.
enum class Isa { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

/// Lower-case display/parse name ("scalar", "sse2", "avx2", "neon").
const char* isa_name(Isa isa);

/// Raw hardware capability flags, probed once and cached.
struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  bool neon = false;
};
const CpuFeatures& detect_cpu_features();

/// True when the running CPU can execute `isa`'s kernel.
bool isa_available(Isa isa);

/// Every ISA this process can run, ascending (scalar first).
std::vector<Isa> available_isas();

/// The highest-preference available ISA (what startup selects absent an
/// override).
Isa best_isa();

/// Parses an OSP_FORCE_ISA value; unknown names throw RequireError
/// listing the valid spellings.
Isa parse_isa(const std::string& name);

/// The ISA the dispatcher currently runs: selected on first call (CPU
/// probe + OSP_FORCE_ISA override) and cached.  This is what every
/// caller of the block kernel reports in its perf rows.
Isa active_isa();

/// Convenience: isa_name(active_isa()).
const char* active_isa_name();

/// In-process override for benches and tests: pins the dispatcher to
/// `isa`.  Requires isa_available(isa).  Undone by refresh_active_isa().
void set_active_isa(Isa isa);

/// Re-runs the startup selection (CPU probe + OSP_FORCE_ISA), replacing
/// any set_active_isa() pin — lets a test setenv(OSP_FORCE_ISA) and
/// exercise the exact path a fresh process would take.
void refresh_active_isa();

/// One line describing how the active ISA was chosen, for osp_cli
/// version ("avx2 (auto: best supported)" / "scalar (OSP_FORCE_ISA)").
std::string isa_selection_note();

}  // namespace osp::simd
