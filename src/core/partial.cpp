#include "core/partial.hpp"

#include "util/require.hpp"

namespace osp {

Weight partial_value(Weight weight, std::size_t size, std::size_t received,
                     const PartialCreditRule& rule) {
  OSP_REQUIRE(received <= size);
  if (size == 0) return weight;  // vacuous completion
  std::size_t misses = size - received;
  if (misses > rule.max_misses) return 0;
  if (!rule.prorated) return weight;
  return weight * static_cast<double>(received) /
         static_cast<double>(size);
}

PartialOutcome play_partial(const Instance& inst, OnlineAlgorithm& alg,
                            const PartialCreditRule& rule) {
  std::vector<SetMeta> metas(inst.num_sets());
  for (SetId s = 0; s < inst.num_sets(); ++s)
    metas[s] = SetMeta{inst.weight(s), inst.set_size(s)};
  alg.start(metas);

  PartialOutcome out;
  out.received.assign(inst.num_sets(), 0);
  // Reused buffer: on_element takes a vector, but re-materializing the
  // CSR row must not allocate per arrival.
  std::vector<SetId> parents;
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const ArrivalView a = inst.arrival(u);
    parents.assign(a.parents.begin(), a.parents.end());
    std::vector<SetId> chosen = alg.on_element(u, a.capacity, parents);
    OSP_REQUIRE(chosen.size() <= a.capacity);
    for (SetId s : chosen) {
      OSP_REQUIRE(s < inst.num_sets());
      ++out.received[s];
    }
  }
  for (SetId s = 0; s < inst.num_sets(); ++s) {
    OSP_REQUIRE_MSG(out.received[s] <= inst.set_size(s),
                    "algorithm credited set " << s
                                              << " beyond its size");
    Weight v =
        partial_value(inst.weight(s), inst.set_size(s), out.received[s], rule);
    if (v > 0) {
      out.credited.push_back(s);
      out.benefit += v;
    }
  }
  return out;
}

}  // namespace osp
