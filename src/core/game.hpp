// The online game engine: feeds an instance to an algorithm, enforces the
// rules of osp, and scores the outcome.
#pragma once

#include <vector>

#include "core/algorithm.hpp"
#include "core/instance.hpp"

namespace osp {

/// Result of one run of an algorithm on an instance.
struct Outcome {
  std::vector<SetId> completed;       // ids of completed sets, ascending
  std::vector<bool> completed_mask;   // per-set completion flags
  Weight benefit = 0;                 // total weight of completed sets
  std::size_t decisions = 0;          // total set-assignments made
};

/// Runs `alg` over `inst` from the beginning and scores it.
///
/// Enforces the osp rules: each answer must be a duplicate-free subset of
/// the candidates with at most b(u) entries; violations throw RequireError
/// (an algorithm bug, not an input condition).  A set is completed iff it
/// was chosen at every one of its elements; empty sets complete vacuously.
Outcome play(const Instance& inst, OnlineAlgorithm& alg);

/// Incremental engine used by adaptive adversaries (Theorem 3), which must
/// interleave construction of the arrival sequence with the algorithm's
/// answers.  Feed elements one at a time and inspect which sets remain
/// completable.
class GameEngine {
 public:
  /// Starts a game over m sets with the given metadata.
  GameEngine(std::vector<SetMeta> sets, OnlineAlgorithm& alg);

  /// Presents one arrival; returns the algorithm's (validated) choice.
  std::vector<SetId> step(const std::vector<SetId>& parents,
                          Capacity capacity = 1);

  /// True while s has been assigned every element of it presented so far.
  bool is_alg_active(SetId s) const { return alg_active_[s]; }

  /// Elements of s presented so far.
  std::size_t presented(SetId s) const { return presented_[s]; }

  /// Scores the game assuming it ended now: s completes iff it stayed
  /// active AND received exactly its declared size.
  Outcome finish() const;

  std::size_t num_sets() const { return sets_.size(); }

 private:
  std::vector<SetMeta> sets_;
  OnlineAlgorithm& alg_;
  std::vector<bool> alg_active_;
  std::vector<std::size_t> presented_;
  ElementId next_element_ = 0;
  std::size_t decisions_ = 0;
};

}  // namespace osp
