// The online game engine: feeds an instance to an algorithm, enforces the
// rules of osp, and scores the outcome.
//
// Three engines share one rule set:
//   * play()/play_flat()  — the flat engine: drives the allocation-free
//     decide() path with caller-owned reusable buffers (PlayScratch), so a
//     steady-state trial performs zero heap allocations per element.
//   * play_flat_blocks()  — the block engine: drives decide_batch() over
//     contiguous CSR arrival blocks (one virtual call per block), then
//     validates and scores the packed choices per element.  Decision-
//     identical to play_flat by the decide_batch contract; what the batch
//     runner and bench_perf's "block" mode use.
//   * play_reference()    — the seed engine, preserved verbatim as the
//     golden reference: drives on_element() and validates with the
//     original allocating checks.  The fuzz suite proves all engines
//     produce identical Outcomes (including the decision traces) for
//     every algorithm in the library.
#pragma once

#include <vector>

#include "core/algorithm.hpp"
#include "core/instance.hpp"

namespace osp {

/// Result of one run of an algorithm on an instance.
struct Outcome {
  std::vector<SetId> completed;       // ids of completed sets, ascending
  std::vector<bool> completed_mask;   // per-set completion flags
  Weight benefit = 0;                 // total weight of completed sets
  std::size_t decisions = 0;          // total set-assignments made
};

/// Reusable buffers for the flat engine.  One per thread; passing the same
/// scratch to successive runs amortizes every per-run allocation away.
struct PlayScratch {
  std::vector<SetMeta> metas;        // per-set metadata handed to start()
  std::vector<std::uint32_t> got;    // per-set received-element counts
  std::vector<SetId> chosen;         // per-element decision buffer
  BlockScratch block_scratch;        // decide_batch workspace
  BlockChoices block_choices;        // decide_batch flat output
};

/// Runs `alg` over `inst` from the beginning and scores it.
///
/// Enforces the osp rules: each answer must be a duplicate-free subset of
/// the candidates with at most b(u) entries; violations throw RequireError
/// (an algorithm bug, not an input condition).  A set is completed iff it
/// was chosen at every one of its elements; empty sets complete vacuously.
Outcome play(const Instance& inst, OnlineAlgorithm& alg);

/// play() with caller-owned scratch: identical semantics, but all engine
/// buffers are reused across calls (the batch runner's per-thread path).
Outcome play_flat(const Instance& inst, OnlineAlgorithm& alg,
                  PlayScratch& scratch);

/// Block-stepped play(): drives decide_batch() over contiguous arrival
/// blocks of `block_size` elements (0 = kDefaultDecideBlock) instead of
/// decide() per element.  Decision-identical to play_flat — same rules
/// enforced on every element's packed choice, same Outcome — with one
/// virtual dispatch per block; the fuzz suite proves the identity for
/// every policy at several block sizes.
Outcome play_flat_blocks(const Instance& inst, OnlineAlgorithm& alg,
                         PlayScratch& scratch, std::size_t block_size = 0);

/// The seed engine, kept as the golden reference for equivalence tests:
/// drives the allocating on_element() path exactly as the original
/// implementation did.  Semantically identical to play().
Outcome play_reference(const Instance& inst, OnlineAlgorithm& alg);

/// Incremental engine used by adaptive adversaries (Theorem 3), which must
/// interleave construction of the arrival sequence with the algorithm's
/// answers.  Feed elements one at a time and inspect which sets remain
/// completable.  Runs on the flat decide() path internally; step() keeps
/// its vector API because adversaries build parent lists incrementally.
class GameEngine {
 public:
  /// Starts a game over m sets with the given metadata.
  GameEngine(std::vector<SetMeta> sets, OnlineAlgorithm& alg);

  /// Presents one arrival; returns the algorithm's (validated) choice.
  std::vector<SetId> step(const std::vector<SetId>& parents,
                          Capacity capacity = 1);

  /// True while s has been assigned every element of it presented so far.
  bool is_alg_active(SetId s) const { return alg_active_[s]; }

  /// Elements of s presented so far.
  std::size_t presented(SetId s) const { return presented_[s]; }

  /// Scores the game assuming it ended now: s completes iff it stayed
  /// active AND received exactly its declared size.
  Outcome finish() const;

  std::size_t num_sets() const { return sets_.size(); }

 private:
  std::vector<SetMeta> sets_;
  OnlineAlgorithm& alg_;
  std::vector<bool> alg_active_;
  std::vector<std::size_t> presented_;
  std::vector<SetId> sorted_;  // scratch: sorted candidates per step
  std::vector<SetId> chosen_;  // scratch: decision buffer per step
  ElementId next_element_ = 0;
  std::size_t decisions_ = 0;
};

}  // namespace osp
