// The R_w priority distribution of Algorithm randPr (Section 3.1).
//
// R_w is defined by the CDF Pr[X < x] = x^w on [0, 1]; R_1 is uniform and
// R_n (integer n) is the maximum of n i.i.d. uniforms.  Sampling uses the
// inverse CDF: X = U^{1/w}.
//
// Comparing raw samples loses precision for large weights (U^{1/w} → 1),
// so the library compares priorities via the order-preserving key
// log(U)/w ∈ (-inf, 0): X = exp(key), and exp is monotone, so ordering by
// key equals ordering by X while keeping full double resolution.
#pragma once

#include <cstdint>
#include <cstring>

#include "util/rng.hpp"

namespace osp {

/// Priority comparable across sets; larger key = higher priority.
struct PriorityKey {
  double key = 0.0;       // log(U)/w, in (-inf, 0]
  std::uint64_t tie = 0;  // tie-break, relevant only for hashed sources

  friend bool operator<(const PriorityKey& a, const PriorityKey& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.tie < b.tie;
  }
  friend bool operator>(const PriorityKey& a, const PriorityKey& b) {
    return b < a;
  }
  friend bool operator==(const PriorityKey& a, const PriorityKey& b) {
    return a.key == b.key && a.tie == b.tie;
  }
};

/// Quantized order key of a priority: the top 32 bits of the standard
/// order-preserving bijection from finite doubles to std::uint64_t.
///
/// Guarantee: quantized_key_rank(a) > quantized_key_rank(b) implies a > b,
/// and a == b implies equal ranks (±0.0 are collapsed first).  The
/// converse does not hold — keys agreeing in their top 32 mapped bits
/// share a rank — so comparisons that hit equal ranks must fall back to
/// the exact (key, tie) order.  This is the block selection kernel's
/// trick: a per-set u32 rank array is a quarter the footprint of the
/// (key, tie) pairs, stays L1-resident, compares as an integer, and the
/// exact fallback is taken with probability ~2^-20 per comparison.
/// Precondition: the key is not NaN (R_w keys never are).
inline std::uint32_t quantized_key_rank(double key) {
  if (key == 0.0) key = 0.0;  // collapse -0.0 onto +0.0 (== as doubles)
  std::uint64_t bits;
  std::memcpy(&bits, &key, sizeof(bits));
  bits = (bits & 0x8000000000000000ULL) ? ~bits
                                        : (bits | 0x8000000000000000ULL);
  return static_cast<std::uint32_t>(bits >> 32);
}

/// Draws one sample of R_w directly (value in [0, 1]).  Requires w > 0.
double sample_rw(double w, Rng& rng);

/// Draws the log-space priority key for a set of weight w.  Requires w > 0.
PriorityKey sample_rw_key(double w, Rng& rng);

/// Converts an externally produced uniform u ∈ (0, 1) (e.g. a hash of the
/// set id) into the R_w key for weight w.  Requires w > 0.
PriorityKey rw_key_from_uniform(double u, double w, std::uint64_t tie);

/// CDF of R_w at x, i.e. x^w clamped to [0, 1] outside the support.
/// Signature matches stats::ks_distance.
double rw_cdf(double x, double w);

}  // namespace osp
