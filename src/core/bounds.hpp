// Calculators for every bound the paper proves, evaluated on concrete
// instances via InstanceStats.  The benchmark harness prints these next to
// measured competitive ratios.
#pragma once

#include "core/instance.hpp"

namespace osp {

/// Theorem 1 (unit capacity): ratio <= kmax * sqrt(avg(σ·σ$) / avg(σ$)).
double theorem1_bound(const InstanceStats& st);

/// Corollary 6: ratio <= kmax * sqrt(σmax).  Valid for unit capacity.
double corollary6_bound(const InstanceStats& st);

/// Theorem 4 (variable capacity): ratio <= 16e·kmax·sqrt(avg(ν·σ$)/avg(σ$)).
double theorem4_bound(const InstanceStats& st);

/// Theorem 4 without the analysis's 16e constant — the same shape the
/// paper proves, with the constant-factor slack removed; used to discuss
/// how loose the constant is in practice.
double theorem4_shape(const InstanceStats& st);

/// Theorem 5 (uniform set size k): ratio <= k · avg(σ²) / avg(σ)².
/// Requires st.uniform_size.
double theorem5_bound(const InstanceStats& st);

/// Corollary 7 (uniform size and load): ratio <= k.
/// Requires st.uniform_size && st.uniform_load.
double corollary7_bound(const InstanceStats& st);

/// Theorem 6 (uniform load σ): ratio <= k̄ · sqrt(σ).
/// Requires st.uniform_load.
double theorem6_bound(const InstanceStats& st);

/// Theorem 3 (deterministic lower bound): ratio >= σmax^(kmax-1), as a
/// function of the σ and k used by the adversarial construction.
double theorem3_lower_bound(std::size_t sigma, std::size_t k);

/// Theorem 2 (randomized lower bound): Ω(kmax·(log log kmax/log kmax)²·√σmax);
/// this evaluates the expression with constant 1 for plotting against
/// measured ratios.
double theorem2_lower_bound(std::size_t k_max, std::size_t sigma_max);

/// The trivial bound from Lemma 1 alone: kmax·σmax (unweighted analysis).
double naive_bound(const InstanceStats& st);

// The two intermediate lower bounds on E[w(alg)] whose combination proves
// Theorem 1 — exposed so tests and benches can check the PROOF structure,
// not just the final statement.

/// Lemma 4: E[w(alg)] >= w(opt)² / (kmax·w(C)).
double lemma4_lower_bound(const InstanceStats& st, double opt_value);

/// Lemma 5: E[w(alg)] >= w(C)² / (n·avg(σ·σ$)).
double lemma5_lower_bound(const InstanceStats& st);

/// The better (larger) of the two Lemma bounds — the quantity Theorem 1's
/// proof balances.
double theorem1_benefit_floor(const InstanceStats& st, double opt_value);

}  // namespace osp
