#include "core/instance.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace osp {

Weight Instance::weighted_load(ElementId u) const {
  Weight w = 0;
  for (SetId s : parents_.row(u)) w += weights_[s];
  return w;
}

double Instance::adjusted_load(ElementId u) const {
  return static_cast<double>(load(u)) / static_cast<double>(capacities_[u]);
}

InstanceStats Instance::stats() const {
  InstanceStats st;
  st.num_sets = num_sets();
  st.num_elements = num_elements();

  for (std::size_t s = 0; s < weights_.size(); ++s) {
    st.total_weight += weights_[s];
    st.k_max = std::max(st.k_max, set_sizes_[s]);
    st.k_avg += static_cast<double>(set_sizes_[s]);
    if (weights_[s] != 1.0) st.unweighted = false;
    if (set_sizes_[s] != set_sizes_[0]) st.uniform_size = false;
  }
  if (!weights_.empty()) st.k_avg /= static_cast<double>(weights_.size());

  for (ElementId u = 0; u < num_elements(); ++u) {
    std::size_t sigma = load(u);
    Weight sw = weighted_load(u);
    double nu = adjusted_load(u);
    st.sigma_max = std::max(st.sigma_max, sigma);
    st.sigma_avg += static_cast<double>(sigma);
    st.sigma_sq_avg += static_cast<double>(sigma) * static_cast<double>(sigma);
    st.sigma_w_avg += sw;
    st.sigma_sigma_w_avg += static_cast<double>(sigma) * sw;
    st.nu_max = std::max(st.nu_max, nu);
    st.nu_avg += nu;
    st.nu_sigma_w_avg += nu * sw;
    st.b_max = std::max(st.b_max, capacities_[u]);
    if (capacities_[u] != 1) st.unit_capacity = false;
    if (sigma != load(0)) st.uniform_load = false;
  }
  if (num_elements() > 0) {
    auto n = static_cast<double>(num_elements());
    st.sigma_avg /= n;
    st.sigma_sq_avg /= n;
    st.sigma_w_avg /= n;
    st.sigma_sigma_w_avg /= n;
    st.nu_avg /= n;
    st.nu_sigma_w_avg /= n;
  }
  return st;
}

void Instance::validate() const {
  OSP_REQUIRE(set_sizes_.size() == weights_.size());
  OSP_REQUIRE(members_.num_rows() == weights_.size());
  OSP_REQUIRE(parents_.num_rows() == capacities_.size());
  OSP_REQUIRE(parents_.total_values() == members_.total_values());
  for (std::size_t s = 0; s < weights_.size(); ++s) {
    OSP_REQUIRE_MSG(weights_[s] >= 0, "negative weight for set " << s);
    OSP_REQUIRE(members_.row_size(s) == set_sizes_[s]);
    for (ElementId u : members_.row(s)) {
      OSP_REQUIRE(u < num_elements());
      Span<SetId> par = parents_.row(u);
      OSP_REQUIRE(std::binary_search(par.begin(), par.end(),
                                     static_cast<SetId>(s)));
    }
  }
  for (ElementId u = 0; u < num_elements(); ++u) {
    OSP_REQUIRE_MSG(capacities_[u] >= 1, "element capacity must be >= 1");
    Span<SetId> par = parents_.row(u);
    OSP_REQUIRE(std::is_sorted(par.begin(), par.end()));
    OSP_REQUIRE(std::adjacent_find(par.begin(), par.end()) == par.end());
    for (SetId s : par) OSP_REQUIRE(s < weights_.size());
  }
}

std::string Instance::describe() const {
  InstanceStats st = stats();
  std::ostringstream os;
  os << "m=" << st.num_sets << " n=" << st.num_elements
     << " kmax=" << st.k_max << " smax=" << st.sigma_max
     << " w=" << st.total_weight
     << (st.unit_capacity ? "" : " varcap")
     << (st.unweighted ? "" : " weighted");
  return os.str();
}

SetId InstanceBuilder::add_set(Weight w) {
  OSP_REQUIRE_MSG(w >= 0, "set weight must be non-negative");
  OSP_REQUIRE(std::isfinite(w));
  weights_.push_back(w);
  return static_cast<SetId>(weights_.size() - 1);
}

SetId InstanceBuilder::add_sets(std::size_t count, Weight w) {
  OSP_REQUIRE(count >= 1);
  SetId first = add_set(w);
  for (std::size_t i = 1; i < count; ++i) add_set(w);
  return first;
}

ElementId InstanceBuilder::add_element(std::vector<SetId> parents,
                                       Capacity capacity) {
  OSP_REQUIRE_MSG(capacity >= 1, "element capacity must be >= 1");
  std::sort(parents.begin(), parents.end());
  OSP_REQUIRE_MSG(std::adjacent_find(parents.begin(), parents.end()) ==
                      parents.end(),
                  "duplicate parent set in element");
  for (SetId s : parents)
    OSP_REQUIRE_MSG(s < weights_.size(), "unknown set id " << s);
  arrivals_.push_back(Arrival{capacity, std::move(parents)});
  return static_cast<ElementId>(arrivals_.size() - 1);
}

Instance InstanceBuilder::build() {
  Instance inst;
  inst.weights_ = std::move(weights_);
  inst.set_sizes_.assign(inst.weights_.size(), 0);
  inst.capacities_.reserve(arrivals_.size());
  for (const Arrival& a : arrivals_) {
    inst.capacities_.push_back(a.capacity);
    inst.max_capacity_ = std::max(inst.max_capacity_, a.capacity);
    for (SetId s : a.parents) ++inst.set_sizes_[s];
  }

  // Flatten parent lists (already per-element) and scatter the transpose
  // into the per-set member CSR using set_sizes_ as row extents.
  {
    std::vector<std::vector<SetId>> rows;
    rows.reserve(arrivals_.size());
    for (Arrival& a : arrivals_) rows.push_back(std::move(a.parents));
    inst.parents_ = CsrArray<SetId>::from_rows(rows);
  }
  inst.members_ = CsrArray<ElementId>::from_sizes(inst.set_sizes_);
  {
    std::vector<std::size_t> fill(inst.weights_.size(), 0);
    for (ElementId u = 0; u < inst.num_elements(); ++u)
      for (SetId s : inst.parents_.row(u))
        inst.members_.mutable_row(s)[fill[s]++] = u;
  }

  inst.validate();
  weights_.clear();
  arrivals_.clear();
  return inst;
}

}  // namespace osp
