#include "core/instance.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace osp {

Weight Instance::weighted_load(ElementId u) const {
  Weight w = 0;
  for (SetId s : arrivals_[u].parents) w += weights_[s];
  return w;
}

double Instance::adjusted_load(ElementId u) const {
  return static_cast<double>(load(u)) /
         static_cast<double>(arrivals_[u].capacity);
}

InstanceStats Instance::stats() const {
  InstanceStats st;
  st.num_sets = num_sets();
  st.num_elements = num_elements();

  for (std::size_t s = 0; s < weights_.size(); ++s) {
    st.total_weight += weights_[s];
    st.k_max = std::max(st.k_max, set_sizes_[s]);
    st.k_avg += static_cast<double>(set_sizes_[s]);
    if (weights_[s] != 1.0) st.unweighted = false;
    if (set_sizes_[s] != set_sizes_[0]) st.uniform_size = false;
  }
  if (!weights_.empty()) st.k_avg /= static_cast<double>(weights_.size());

  for (ElementId u = 0; u < arrivals_.size(); ++u) {
    std::size_t sigma = load(u);
    Weight sw = weighted_load(u);
    double nu = adjusted_load(u);
    st.sigma_max = std::max(st.sigma_max, sigma);
    st.sigma_avg += static_cast<double>(sigma);
    st.sigma_sq_avg += static_cast<double>(sigma) * static_cast<double>(sigma);
    st.sigma_w_avg += sw;
    st.sigma_sigma_w_avg += static_cast<double>(sigma) * sw;
    st.nu_max = std::max(st.nu_max, nu);
    st.nu_avg += nu;
    st.nu_sigma_w_avg += nu * sw;
    st.b_max = std::max(st.b_max, arrivals_[u].capacity);
    if (arrivals_[u].capacity != 1) st.unit_capacity = false;
    if (sigma != load(0)) st.uniform_load = false;
  }
  if (!arrivals_.empty()) {
    auto n = static_cast<double>(arrivals_.size());
    st.sigma_avg /= n;
    st.sigma_sq_avg /= n;
    st.sigma_w_avg /= n;
    st.sigma_sigma_w_avg /= n;
    st.nu_avg /= n;
    st.nu_sigma_w_avg /= n;
  }
  return st;
}

void Instance::validate() const {
  OSP_REQUIRE(set_sizes_.size() == weights_.size());
  OSP_REQUIRE(members_.size() == weights_.size());
  for (std::size_t s = 0; s < weights_.size(); ++s) {
    OSP_REQUIRE_MSG(weights_[s] >= 0, "negative weight for set " << s);
    OSP_REQUIRE(members_[s].size() == set_sizes_[s]);
    for (ElementId u : members_[s]) {
      OSP_REQUIRE(u < arrivals_.size());
      const auto& par = arrivals_[u].parents;
      OSP_REQUIRE(std::binary_search(par.begin(), par.end(),
                                     static_cast<SetId>(s)));
    }
  }
  for (const Arrival& a : arrivals_) {
    OSP_REQUIRE_MSG(a.capacity >= 1, "element capacity must be >= 1");
    OSP_REQUIRE(std::is_sorted(a.parents.begin(), a.parents.end()));
    OSP_REQUIRE(std::adjacent_find(a.parents.begin(), a.parents.end()) ==
                a.parents.end());
    for (SetId s : a.parents) OSP_REQUIRE(s < weights_.size());
  }
}

std::string Instance::describe() const {
  InstanceStats st = stats();
  std::ostringstream os;
  os << "m=" << st.num_sets << " n=" << st.num_elements
     << " kmax=" << st.k_max << " smax=" << st.sigma_max
     << " w=" << st.total_weight
     << (st.unit_capacity ? "" : " varcap")
     << (st.unweighted ? "" : " weighted");
  return os.str();
}

SetId InstanceBuilder::add_set(Weight w) {
  OSP_REQUIRE_MSG(w >= 0, "set weight must be non-negative");
  OSP_REQUIRE(std::isfinite(w));
  weights_.push_back(w);
  return static_cast<SetId>(weights_.size() - 1);
}

SetId InstanceBuilder::add_sets(std::size_t count, Weight w) {
  OSP_REQUIRE(count >= 1);
  SetId first = add_set(w);
  for (std::size_t i = 1; i < count; ++i) add_set(w);
  return first;
}

ElementId InstanceBuilder::add_element(std::vector<SetId> parents,
                                       Capacity capacity) {
  OSP_REQUIRE_MSG(capacity >= 1, "element capacity must be >= 1");
  std::sort(parents.begin(), parents.end());
  OSP_REQUIRE_MSG(std::adjacent_find(parents.begin(), parents.end()) ==
                      parents.end(),
                  "duplicate parent set in element");
  for (SetId s : parents)
    OSP_REQUIRE_MSG(s < weights_.size(), "unknown set id " << s);
  arrivals_.push_back(Arrival{capacity, std::move(parents)});
  return static_cast<ElementId>(arrivals_.size() - 1);
}

Instance InstanceBuilder::build() {
  Instance inst;
  inst.weights_ = std::move(weights_);
  inst.arrivals_ = std::move(arrivals_);
  inst.set_sizes_.assign(inst.weights_.size(), 0);
  inst.members_.assign(inst.weights_.size(), {});
  for (ElementId u = 0; u < inst.arrivals_.size(); ++u)
    for (SetId s : inst.arrivals_[u].parents) {
      ++inst.set_sizes_[s];
      inst.members_[s].push_back(u);
    }
  inst.validate();
  weights_.clear();
  arrivals_.clear();
  return inst;
}

}  // namespace osp
