// Streaming statistics used by the benchmark harness and tests.
#pragma once

#include <cstdint>
#include <vector>

namespace osp {

/// Single-pass accumulator for mean/variance/min/max (Welford's method).
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::uint64_t count() const { return n_; }

  /// Sample mean (0 if empty).
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Standard error of the mean (0 for fewer than two observations).
  double stderr_mean() const;

  /// Half-width of a normal-approximation 95% confidence interval
  /// for the mean.
  double ci95_halfwidth() const;

  /// Smallest observation (+inf if empty).
  double min() const { return min_; }

  /// Largest observation (-inf if empty).
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void merge(const RunningStat& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1.0 / 0.0 * 1.0;   // +inf
  double max_ = -(1.0 / 0.0);      // -inf
};

/// Collects all samples; supports quantiles in addition to moments.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  double mean() const;
  double stddev() const;

  /// q-quantile with linear interpolation, q in [0,1].  Requires non-empty.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const { return xs_; }

 private:
  std::vector<double> xs_;
};

/// Two-sided Kolmogorov–Smirnov distance between the empirical CDF of
/// `samples` and a caller-supplied CDF evaluated via `cdf(x)`.
/// Used by tests that validate the R_w priority distribution.
double ks_distance(std::vector<double> samples, double (*cdf)(double, double),
                   double param);

}  // namespace osp
