#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace osp {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStat::ci95_halfwidth() const { return 1.96 * stderr_mean(); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double total = static_cast<double>(n_ + other.n_);
  double delta = other.mean_ - mean_;
  double new_mean = mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = new_mean;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double SampleSet::stddev() const {
  if (xs_.size() < 2) return 0.0;
  double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double SampleSet::quantile(double q) const {
  OSP_REQUIRE(!xs_.empty());
  OSP_REQUIRE(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  double pos = q * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double ks_distance(std::vector<double> samples, double (*cdf)(double, double),
                   double param) {
  OSP_REQUIRE(!samples.empty());
  std::sort(samples.begin(), samples.end());
  double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    double f = cdf(samples[i], param);
    double lo = static_cast<double>(i) / n;
    double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(f - hi)));
  }
  return d;
}

}  // namespace osp
