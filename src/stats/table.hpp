// Fixed-width console table used by every benchmark binary so that the
// reproduced "tables" of the paper print in a uniform, diffable format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace osp {

/// Builds and prints an aligned text table.
///
/// Usage:
///   Table t({"k", "sigma", "ratio", "bound"});
///   t.row({"4", "16", "3.2", "16.0"});
///   t.print(std::cout);
///
/// Cells are strings; helpers fmt() format numbers consistently.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void row(std::vector<std::string> cells);

  /// Renders with column alignment, a header underline, and 2-space gutters.
  void print(std::ostream& os) const;

  /// Number of data rows added so far.
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming trailing zeros.
std::string fmt(double value, int precision = 3);

/// Formats any integer type.  (SFINAE rather than a C++20 requires-clause:
/// the library builds as C++17.)
template <class T,
          typename std::enable_if<std::is_integral<T>::value, int>::type = 0>
std::string fmt(T value) {
  return std::to_string(value);
}

/// Formats "a / b" ratios as e.g. "12.3x".
std::string fmt_ratio(double value, int precision = 2);

}  // namespace osp
