// Competitive-ratio estimation harness.
//
// Packages the trial loop every benchmark runs by hand: given an instance,
// an algorithm factory, and a reference optimum, estimate E[w(alg)] with a
// confidence interval and derive ratio bounds that account for the
// statistical error (the ratio of a known opt to an estimated mean).
#pragma once

#include <functional>
#include <memory>

#include "core/algorithm.hpp"
#include "core/game.hpp"
#include "core/instance.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace osp {

/// Point estimate + uncertainty for a measured competitive ratio.
struct RatioEstimate {
  double opt = 0;             // reference optimum used
  RunningStat benefit;        // per-trial algorithm benefit
  /// Ratio at the mean benefit (opt / mean).
  double ratio() const {
    return benefit.mean() > 0 ? opt / benefit.mean() : 0.0;
  }
  /// Conservative (larger) ratio using the lower 95% CI of the mean.
  double ratio_upper() const {
    double lo = benefit.mean() - benefit.ci95_halfwidth();
    return lo > 0 ? opt / lo : 0.0;
  }
  /// Optimistic (smaller) ratio using the upper 95% CI of the mean.
  double ratio_lower() const {
    double hi = benefit.mean() + benefit.ci95_halfwidth();
    return hi > 0 ? opt / hi : 0.0;
  }
};

/// Runs `trials` independent plays of algorithms produced by `make_alg`
/// (seeded per trial from `master`) and returns the estimate against the
/// given optimum value.
RatioEstimate estimate_ratio(
    const Instance& inst,
    const std::function<std::unique_ptr<OnlineAlgorithm>(Rng)>& make_alg,
    double opt_value, Rng& master, int trials);

}  // namespace osp
