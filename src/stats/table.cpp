#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace osp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  OSP_REQUIRE(!header_.empty());
}

void Table::row(std::vector<std::string> cells) {
  OSP_REQUIRE_MSG(cells.size() == header_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string fmt_ratio(double value, int precision) {
  return fmt(value, precision) + "x";
}

}  // namespace osp
