// Minimal streaming JSON writer for the benchmark binaries.
//
// Every bench emits a BENCH_<name>.json next to its console table so the
// perf trajectory is machine-readable across PRs.  The writer is a thin
// state machine over an ostream: begin/end object and array scopes, keys,
// and scalar values; commas and quoting are handled automatically.  No DOM,
// no dependencies.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace osp {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member; must be inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  /// Any integer type (bool excluded — it has its own overload above).
  template <class T,
            typename std::enable_if<std::is_integral<T>::value &&
                                        !std::is_same<T, bool>::value,
                                    int>::type = 0>
  JsonWriter& value(T v) {
    if (std::is_signed<T>::value)
      return integer(static_cast<std::int64_t>(v), true);
    return integer(static_cast<std::int64_t>(
                       static_cast<std::uint64_t>(v)),
                   false);
  }

  /// key() + value() in one call.
  template <class T>
  JsonWriter& kv(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  JsonWriter& integer(std::int64_t bits, bool is_signed);
  void before_value();
  void escape(const std::string& s);

  std::ostream& os_;
  // One frame per open scope: true once the first member was written.
  std::vector<bool> comma_stack_;
  bool pending_key_ = false;
};

}  // namespace osp
