#include "stats/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/require.hpp"

namespace osp {

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // comma was handled by key()
  }
  if (!comma_stack_.empty()) {
    if (comma_stack_.back()) os_ << ',';
    comma_stack_.back() = true;
  }
}

void JsonWriter::escape(const std::string& s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\t': os_ << "\\t"; break;
      case '\r': os_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  comma_stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  OSP_REQUIRE(!comma_stack_.empty() && !pending_key_);
  comma_stack_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  comma_stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  OSP_REQUIRE(!comma_stack_.empty() && !pending_key_);
  comma_stack_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  OSP_REQUIRE(!comma_stack_.empty() && !pending_key_);
  if (comma_stack_.back()) os_ << ',';
  comma_stack_.back() = true;
  escape(name);
  os_ << ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::integer(std::int64_t bits, bool is_signed) {
  before_value();
  if (is_signed)
    os_ << bits;
  else
    os_ << static_cast<std::uint64_t>(bits);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  escape(v);
  return *this;
}

}  // namespace osp
