#include "stats/competitive.hpp"

#include "util/require.hpp"

namespace osp {

RatioEstimate estimate_ratio(
    const Instance& inst,
    const std::function<std::unique_ptr<OnlineAlgorithm>(Rng)>& make_alg,
    double opt_value, Rng& master, int trials) {
  OSP_REQUIRE(trials > 0);
  OSP_REQUIRE(make_alg != nullptr);
  RatioEstimate est;
  est.opt = opt_value;
  for (int t = 0; t < trials; ++t) {
    auto alg = make_alg(master.split(static_cast<std::uint64_t>(t)));
    OSP_REQUIRE(alg != nullptr);
    est.benefit.add(play(inst, *alg).benefit);
  }
  return est;
}

}  // namespace osp
