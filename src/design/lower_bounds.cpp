#include "design/lower_bounds.hpp"

#include <algorithm>
#include <numeric>

#include "design/gadget.hpp"
#include "field/primes.hpp"
#include "util/math.hpp"
#include "util/require.hpp"

namespace osp {

AdaptiveAdversaryResult run_theorem3_adversary(OnlineAlgorithm& alg,
                                               std::size_t sigma,
                                               std::size_t k) {
  OSP_REQUIRE(sigma >= 2);
  OSP_REQUIRE(k >= 1);
  const std::size_t m = checked_pow(sigma, static_cast<unsigned>(k));
  OSP_REQUIRE_MSG(m <= 1'000'000, "sigma^k too large");

  std::vector<SetMeta> metas(m, SetMeta{1.0, k});
  GameEngine engine(metas, alg);
  InstanceBuilder builder;
  builder.add_sets(m, 1.0);

  std::vector<std::size_t> appearances(m, 0);
  std::vector<bool> is_witness(m, false);
  std::vector<SetId> witness;

  // Phase i groups sets into super-blocks of size sigma^i; each super-block
  // receives one element whose parents are its algorithm-active sets,
  // padded with non-witness dead sets of the same super-block to load
  // exactly sigma.
  for (std::size_t phase = 1; phase <= k; ++phase) {
    const std::size_t block = checked_pow(sigma, static_cast<unsigned>(phase));
    const std::size_t num_blocks = m / block;
    for (std::size_t g = 0; g < num_blocks; ++g) {
      const std::size_t lo = g * block;
      const std::size_t hi = lo + block;
      std::vector<SetId> parents;
      for (std::size_t s = lo; s < hi && parents.size() < sigma; ++s)
        if (engine.is_alg_active(static_cast<SetId>(s)))
          parents.push_back(static_cast<SetId>(s));
      for (std::size_t s = lo; s < hi && parents.size() < sigma; ++s) {
        auto sid = static_cast<SetId>(s);
        if (!engine.is_alg_active(sid) && !is_witness[sid] &&
            std::find(parents.begin(), parents.end(), sid) == parents.end())
          parents.push_back(sid);
      }
      OSP_ASSERT(parents.size() == sigma);
      for (SetId s : parents) ++appearances[s];
      engine.step(parents, 1);
      builder.add_element(parents, 1);

      if (phase == 1) {
        // Designate this block's witness: a set the algorithm did not keep.
        for (SetId s : parents) {
          if (!engine.is_alg_active(s)) {
            is_witness[s] = true;
            witness.push_back(s);
            break;
          }
        }
        // If the algorithm kept all... impossible: at most one of the
        // sigma >= 2 parents can be chosen with capacity 1.
        OSP_ASSERT(!witness.empty() && is_witness[witness.back()]);
      }
    }
  }

  // Completion: load-1 elements bring every set to size exactly k.
  for (std::size_t s = 0; s < m; ++s) {
    while (appearances[s] < k) {
      ++appearances[s];
      std::vector<SetId> parents{static_cast<SetId>(s)};
      engine.step(parents, 1);
      builder.add_element(parents, 1);
    }
  }

  AdaptiveAdversaryResult res;
  res.transcript = builder.build();
  res.alg_outcome = engine.finish();
  res.witness = std::move(witness);
  res.opt_lower_bound = static_cast<Weight>(res.witness.size());
  res.sigma = sigma;
  res.k = k;
  OSP_ASSERT(res.witness.size() ==
             checked_pow(sigma, static_cast<unsigned>(k - 1)));
  return res;
}

Lemma9Instance build_lemma9_instance(std::size_t ell, Rng& rng) {
  OSP_REQUIRE_MSG(is_prime_power(ell), "Lemma 9 needs a prime-power ell");
  const std::size_t L2 = ell * ell;
  const std::size_t L3 = L2 * ell;
  const std::size_t L4 = L2 * L2;

  InstanceBuilder builder;
  builder.add_sets(L4, 1.0);

  // Stage I: ell^2 subcollections of ell^2 sets; apply an (ell, ell)-gadget
  // without rows to each under a uniformly random bijection.
  // stage1_pos[s] = (z, i, j): subcollection z, matrix position (i, j).
  struct Pos1 {
    std::uint32_t z, i, j;
  };
  std::vector<Pos1> pos1(L4);
  {
    Gadget g1(ell, ell);
    std::vector<std::size_t> perm(L2);
    for (std::size_t z = 0; z < L2; ++z) {
      std::iota(perm.begin(), perm.end(), 0);
      std::shuffle(perm.begin(), perm.end(), rng.engine());
      // placement[row * ell + col] = set id.
      std::vector<SetId> placement(L2);
      for (std::size_t cell = 0; cell < L2; ++cell) {
        auto sid = static_cast<SetId>(z * L2 + perm[cell]);
        placement[cell] = sid;
        pos1[sid] = Pos1{static_cast<std::uint32_t>(z),
                         static_cast<std::uint32_t>(cell / ell),
                         static_cast<std::uint32_t>(cell % ell)};
      }
      apply_gadget(builder, g1, placement, /*with_rows=*/false);
    }
  }

  // Stage II: ell subcollections, each the concatenation of ell Stage I
  // blocks with independently permuted rows; apply an (ell, ell^2)-gadget
  // without rows to each.  stage2_row[s] records the row of s.
  std::vector<std::uint32_t> stage2_row(L4);
  {
    Gadget g2(ell, L2);
    std::vector<std::uint32_t> pi(ell);
    for (std::size_t t = 0; t < ell; ++t) {
      std::vector<SetId> placement(ell * L2, kNoSet);
      for (std::size_t zr = 0; zr < ell; ++zr) {
        const std::size_t z = t * ell + zr;
        std::iota(pi.begin(), pi.end(), 0u);
        std::shuffle(pi.begin(), pi.end(), rng.engine());
        for (std::size_t s0 = 0; s0 < L2; ++s0) {
          auto sid = static_cast<SetId>(z * L2 + s0);
          const Pos1& p = pos1[sid];
          std::uint32_t row = pi[p.i];
          std::size_t col = p.j + ell * zr;  // concatenate block zr's columns
          placement[row * L2 + col] = sid;
          stage2_row[sid] = row;
        }
      }
      for (SetId sid : placement) OSP_REQUIRE(sid != kNoSet);
      apply_gadget(builder, g2, placement, /*with_rows=*/false);
    }
  }

  // Stage III: spare a uniformly random row u_t of each Stage II block —
  // those sets form the planted solution S — and hit the rest with a full
  // (ell^2 - ell, ell^2)-gadget under an arbitrary bijection.
  std::vector<SetId> planted;
  planted.reserve(L3);
  std::vector<SetId> rest;
  rest.reserve(L4 - L3);
  for (std::size_t t = 0; t < ell; ++t) {
    const std::uint32_t u_t = static_cast<std::uint32_t>(rng.below(ell));
    for (std::size_t zr = 0; zr < ell; ++zr)
      for (std::size_t s0 = 0; s0 < L2; ++s0) {
        auto sid = static_cast<SetId>((t * ell + zr) * L2 + s0);
        (stage2_row[sid] == u_t ? planted : rest).push_back(sid);
      }
  }
  OSP_ASSERT(planted.size() == L3);
  OSP_ASSERT(rest.size() == (L2 - ell) * L2);
  {
    Gadget g3(L2 - ell, L2);
    apply_gadget(builder, g3, rest, /*with_rows=*/true);
  }

  // Stage IV: bring every planted set to the uniform size 2ell^2 + ell + 1
  // with load-1 elements (rest sets already have ell + ell^2 + ell^2 + 1).
  const std::size_t fill = L2 + 1;
  for (SetId sid : planted)
    for (std::size_t i = 0; i < fill; ++i)
      builder.add_element({sid}, 1);

  Lemma9Instance out;
  out.instance = builder.build();
  out.planted = std::move(planted);
  std::sort(out.planted.begin(), out.planted.end());
  out.ell = ell;
  return out;
}

WeakLbInstance build_weak_lb_instance(std::size_t t, Rng& rng) {
  OSP_REQUIRE(t >= 2);
  const std::size_t m = t * t;
  InstanceBuilder builder;
  builder.add_sets(m, 1.0);
  std::vector<std::size_t> appearances(m, 0);

  // The matrix coordinates are HIDDEN from the algorithm (this is what
  // makes the Yao argument work): set i*t + j sits in row i, but its
  // column is a uniformly random permutation of [t] per row.  An online
  // algorithm cannot coordinate its u_i choices onto one column, because
  // ids carry no column information.
  std::vector<std::vector<std::uint32_t>> col_to_set(
      t, std::vector<std::uint32_t>(t));
  for (std::size_t i = 0; i < t; ++i) {
    std::iota(col_to_set[i].begin(), col_to_set[i].end(), 0u);
    std::shuffle(col_to_set[i].begin(), col_to_set[i].end(), rng.engine());
  }
  auto set_at = [&](std::size_t row, std::size_t col) {
    return static_cast<SetId>(row * t + col_to_set[row][col]);
  };

  // Row elements u_i: contained in every set of row i.
  for (std::size_t i = 0; i < t; ++i) {
    std::vector<SetId> parents;
    for (std::size_t j = 0; j < t; ++j)
      parents.push_back(static_cast<SetId>(i * t + j));
    for (SetId s : parents) ++appearances[s];
    builder.add_element(std::move(parents), 1);
  }

  // t^2 permutation elements: each contains the set at (i, pi(i)) for a
  // uniformly random permutation pi, so any two of its sets differ in
  // both the row and the (hidden) column coordinate — the condition in
  // Section 4.2.
  std::vector<std::uint32_t> pi(t);
  for (std::size_t e = 0; e < m; ++e) {
    std::iota(pi.begin(), pi.end(), 0u);
    std::shuffle(pi.begin(), pi.end(), rng.engine());
    std::vector<SetId> parents;
    for (std::size_t i = 0; i < t; ++i)
      parents.push_back(set_at(i, pi[i]));
    for (SetId s : parents) ++appearances[s];
    builder.add_element(std::move(parents), 1);
  }

  // Fill to the uniform maximum size with singletons.
  const std::size_t target =
      *std::max_element(appearances.begin(), appearances.end());
  for (std::size_t s = 0; s < m; ++s)
    for (std::size_t i = appearances[s]; i < target; ++i)
      builder.add_element({static_cast<SetId>(s)}, 1);

  WeakLbInstance out;
  out.instance = builder.build();
  out.t = t;
  for (std::size_t i = 0; i < t; ++i)
    out.column_witness.push_back(set_at(i, 0));
  std::sort(out.column_witness.begin(), out.column_witness.end());
  return out;
}

}  // namespace osp
