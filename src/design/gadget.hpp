// The (M,N)-gadget of Section 4.2.1 — a combinatorial design reminiscent
// of affine planes, used by the randomized lower bound construction.
//
// Let F be the finite field of order N (a prime power) and F_M ⊆ F a
// subset of size M <= N (we fix F_M = the elements encoded 0..M-1).  The
// gadget's items are the pairs F_M × F, its lines are
//
//   L_{a,b} = {(i, a·i + b) : i ∈ F_M}        for a, b ∈ F,   and
//   L_{∞,c} = {c} × F                          for c ∈ F_M.
//
// Proposition 1: items in different rows lie on exactly one common L_{a,b};
// items in the same row lie on exactly one common L_{∞,c}.
// Proposition 2: every item lies on exactly one L_{a,·} per slope a and on
// exactly one row line.
//
// In the osp reduction, items are sets and lines are elements: applying a
// gadget to M·N sets creates N² elements of load M (and, optionally, the
// M row elements of load N).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "field/gf.hpp"

namespace osp {

/// Item of a gadget: (row, column) with row < M, column < N.
struct GadgetItem {
  std::uint32_t row;
  std::uint32_t col;
  // Explicit rather than `= default`: the library builds as C++17.
  friend bool operator==(const GadgetItem& a, const GadgetItem& b) {
    return a.row == b.row && a.col == b.col;
  }
  friend bool operator!=(const GadgetItem& a, const GadgetItem& b) {
    return !(a == b);
  }
};

/// An (M,N)-gadget over GF(N).
class Gadget {
 public:
  /// Requires 1 <= m <= n and n a prime power.
  Gadget(std::size_t m, std::size_t n);

  std::size_t num_rows() const { return m_; }   // M
  std::size_t num_cols() const { return n_; }   // N

  /// Items of line L_{a,b}: one per row i, at column a·i + b.
  std::vector<GadgetItem> line(std::uint32_t a, std::uint32_t b) const;

  /// Items of the row line L_{∞,c} = {c} × F.
  std::vector<GadgetItem> row_line(std::uint32_t c) const;

  /// Total number of non-row lines (N²).
  std::size_t num_lines() const { return n_ * n_; }

  const FiniteField& field() const { return field_; }

 private:
  std::size_t m_;
  std::size_t n_;
  FiniteField field_;
};

/// Applies a gadget to a collection of M·N sets placed row-major into the
/// M×N matrix (`placement[row*N + col]` is the set at that item), appending
/// the gadget's elements to `builder` in the paper's order: all L_{a,b}
/// with a ascending then b ascending, followed (iff `with_rows`) by the M
/// row lines.  All created elements get capacity `cap`.
void apply_gadget(InstanceBuilder& builder, const Gadget& gadget,
                  const std::vector<SetId>& placement, bool with_rows,
                  Capacity cap = 1);

}  // namespace osp
