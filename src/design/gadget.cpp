#include "design/gadget.hpp"

#include "util/require.hpp"

namespace osp {

Gadget::Gadget(std::size_t m, std::size_t n)
    : m_(m), n_(n), field_(n) {
  OSP_REQUIRE_MSG(m >= 1 && m <= n, "gadget needs 1 <= M <= N");
}

std::vector<GadgetItem> Gadget::line(std::uint32_t a, std::uint32_t b) const {
  OSP_REQUIRE(a < n_ && b < n_);
  std::vector<GadgetItem> items;
  items.reserve(m_);
  for (std::uint32_t i = 0; i < m_; ++i) {
    // Column j = a·i + b over GF(N); row indices double as field elements
    // because F_M is fixed to the elements encoded 0..M-1.
    auto j = field_.add(field_.mul(a, i), b);
    items.push_back(GadgetItem{i, j});
  }
  return items;
}

std::vector<GadgetItem> Gadget::row_line(std::uint32_t c) const {
  OSP_REQUIRE(c < m_);
  std::vector<GadgetItem> items;
  items.reserve(n_);
  for (std::uint32_t j = 0; j < n_; ++j) items.push_back(GadgetItem{c, j});
  return items;
}

void apply_gadget(InstanceBuilder& builder, const Gadget& gadget,
                  const std::vector<SetId>& placement, bool with_rows,
                  Capacity cap) {
  const std::size_t m = gadget.num_rows();
  const std::size_t n = gadget.num_cols();
  OSP_REQUIRE_MSG(placement.size() == m * n,
                  "placement must cover the full M x N matrix");

  auto set_at = [&](const GadgetItem& item) {
    return placement[static_cast<std::size_t>(item.row) * n + item.col];
  };

  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      std::vector<SetId> parents;
      parents.reserve(m);
      for (const GadgetItem& item : gadget.line(a, b))
        parents.push_back(set_at(item));
      builder.add_element(std::move(parents), cap);
    }
  }
  if (with_rows) {
    for (std::uint32_t c = 0; c < m; ++c) {
      std::vector<SetId> parents;
      parents.reserve(n);
      for (const GadgetItem& item : gadget.row_line(c))
        parents.push_back(set_at(item));
      builder.add_element(std::move(parents), cap);
    }
  }
}

}  // namespace osp
