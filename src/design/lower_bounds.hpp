// The paper's lower-bound constructions (Section 4).
//
//  * Theorem 3: an adaptive adversary that drives ANY deterministic online
//    algorithm to benefit <= 1 on an unweighted, unit-capacity instance
//    with uniform set size k, while opt >= σ^(k-1).
//  * Section 4.2 warm-up: the t² -set construction giving Ω(t/log t).
//  * Lemma 9 / Figure 1: the four-stage gadget distribution with ℓ⁴ sets,
//    opt >= ℓ³, on which every deterministic algorithm earns
//    O((log ℓ / log log ℓ)²) in expectation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/algorithm.hpp"
#include "core/game.hpp"
#include "core/instance.hpp"
#include "util/rng.hpp"

namespace osp {

/// Result of running the Theorem 3 adversary against one algorithm.
struct AdaptiveAdversaryResult {
  Instance transcript;      // the instance the adversary ended up building
  Outcome alg_outcome;      // what the algorithm completed (benefit <= 1)
  Weight opt_lower_bound;   // σ^(k-1), witnessed by a feasible solution
  std::vector<SetId> witness;  // the σ^(k-1) disjointly completable sets
  std::size_t sigma = 0;
  std::size_t k = 0;
};

/// Plays the Theorem 3 construction against `alg` (adaptively: later
/// elements depend on the algorithm's earlier answers).
///
/// Builds σ^k unweighted sets of size exactly k with unit capacities.
/// Requires sigma >= 2, k >= 1, and σ^k to fit comfortably in memory.
AdaptiveAdversaryResult run_theorem3_adversary(OnlineAlgorithm& alg,
                                               std::size_t sigma,
                                               std::size_t k);

/// A Lemma 9 instance together with its planted optimal subcollection.
struct Lemma9Instance {
  Instance instance;
  std::vector<SetId> planted;  // the subcollection S, |S| = ℓ³, disjoint
  std::size_t ell = 0;
};

/// Draws one instance from the Lemma 9 distribution D with parameter ℓ
/// (must be a prime power).  The instance has ℓ⁴ sets, uniform set size
/// 2ℓ² + ℓ + 1, unit capacities, and `planted` is a feasible solution of
/// size ℓ³ (so opt >= ℓ³).
///
/// Stage structure (Figure 1):
///   I   — ℓ² subcollections of ℓ² sets, each hit by an (ℓ,ℓ)-gadget
///         without rows, under a uniformly random bijection;
///   II  — ℓ subcollections of ℓ³ sets (concatenating ℓ Stage I blocks
///         with independently permuted rows), each hit by an (ℓ,ℓ²)-gadget
///         without rows;
///   III — a uniformly random row u_t of each Stage II block is spared
///         (those sets form S); the other ℓ⁴−ℓ³ sets are hit by a full
///         (ℓ²−ℓ, ℓ²)-gadget;
///   IV  — load-1 elements complete every set to the uniform size.
Lemma9Instance build_lemma9_instance(std::size_t ell, Rng& rng);

/// The warm-up construction of Section 4.2: t² sets S_{i,j}; t elements
/// u_i ∈ {S_{i,j} : all j}; then t² random permutation elements (each
/// drawn from a uniformly random permutation π: it contains S_{i,π(i)}
/// for all i, so any two of its sets differ in both coordinates); finally
/// singleton fill to uniform size.  Columns remain disjoint, so opt >= t.
struct WeakLbInstance {
  Instance instance;
  std::size_t t = 0;
  std::vector<SetId> column_witness;  // sets of column 0: feasible, size t
};

WeakLbInstance build_weak_lb_instance(std::size_t t, Rng& rng);

}  // namespace osp
