#include "algos/simplex.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace osp {

namespace {
constexpr double kEps = 1e-9;
}

LpResult simplex_maximize(const std::vector<std::vector<double>>& a,
                          const std::vector<double>& b,
                          const std::vector<double>& c) {
  const std::size_t m = b.size();
  const std::size_t n = c.size();
  OSP_REQUIRE(a.size() == m);
  for (const auto& row : a) OSP_REQUIRE(row.size() == n);
  for (double bi : b) OSP_REQUIRE_MSG(bi >= 0, "simplex needs b >= 0");

  // Tableau: m rows of [A | I | b]; objective row holds reduced costs.
  // Columns 0..n-1 are structural, n..n+m-1 slacks, last column is rhs.
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = a[i][j];
    t[i][n + i] = 1.0;
    t[i][cols - 1] = b[i];
  }
  // Objective row: we maximize, so store -c and drive entries negative.
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -c[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  LpResult res;
  while (true) {
    // Bland's rule: entering variable = lowest index with negative
    // reduced cost.
    std::size_t pivot_col = cols;  // sentinel
    for (std::size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j] < -kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == cols) break;  // optimal

    // Ratio test; ties by lowest basis index (Bland).
    std::size_t pivot_row = m;  // sentinel
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        double ratio = t[i][cols - 1] / t[i][pivot_col];
        if (ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps &&
             (pivot_row == m || basis[i] < basis[pivot_row]))) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    if (pivot_row == m) {
      res.status = LpResult::Status::kUnbounded;
      return res;
    }

    // Pivot.
    double pv = t[pivot_row][pivot_col];
    for (double& v : t[pivot_row]) v /= pv;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      double f = t[i][pivot_col];
      if (std::abs(f) <= kEps) continue;
      for (std::size_t j = 0; j < cols; ++j) t[i][j] -= f * t[pivot_row][j];
    }
    basis[pivot_row] = pivot_col;
    ++res.pivots;
  }

  res.status = LpResult::Status::kOptimal;
  res.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    if (basis[i] < n) res.x[basis[i]] = t[i][cols - 1];
  res.value = 0.0;
  for (std::size_t j = 0; j < n; ++j) res.value += c[j] * res.x[j];
  return res;
}

}  // namespace osp
