#include "algos/baselines.hpp"

#include <algorithm>

namespace osp {

namespace {

// Fills `out` (capacity `capacity`) from `first` then `second`; returns the
// number written.  The shared tail of every baseline: ranked actives first,
// dead filler after ("filling leftover capacity with dead sets is harmless;
// doing so keeps the policy total, like a real link").
std::size_t fill_choice(const std::vector<SetId>& first,
                        const std::vector<SetId>& second, Capacity capacity,
                        SetId* out) {
  std::size_t n = 0;
  for (SetId s : first) {
    if (n == capacity) return n;
    out[n++] = s;
  }
  for (SetId s : second) {
    if (n == capacity) return n;
    out[n++] = s;
  }
  return n;
}

}  // namespace

void ScoredBaseline::partition(const SetId* candidates,
                               std::size_t num_candidates) {
  active_.clear();
  dead_.clear();
  for (std::size_t i = 0; i < num_candidates; ++i)
    (is_active(candidates[i]) ? active_ : dead_).push_back(candidates[i]);
}

std::size_t ScoredBaseline::decide(ElementId, Capacity capacity,
                                   const SetId* candidates,
                                   std::size_t num_candidates, SetId* out) {
  partition(candidates, num_candidates);
  // (score desc, id asc) is a strict total order, so plain sort yields the
  // same unique ordering the seed's stable_sort produced.
  std::sort(active_.begin(), active_.end(), [&](SetId a, SetId b) {
    double sa = score(a), sb = score(b);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  std::size_t n = fill_choice(active_, dead_, capacity, out);
  record(candidates, num_candidates, out, n);
  return n;
}

void ScoredBaseline::decide_batch(const ArrivalBlock& block,
                                  BlockScratch& /*scratch*/,
                                  BlockChoices& out) {
  decide_block_loop(block, out,
                    [this](ElementId u, Capacity capacity,
                           const SetId* candidates,
                           std::size_t num_candidates, SetId* choice) {
                      return ScoredBaseline::decide(u, capacity, candidates,
                                                    num_candidates, choice);
                    });
}

double GreedyFirst::score(SetId s) const {
  return -static_cast<double>(s);
}

double GreedyMaxWeight::score(SetId s) const { return meta()[s].weight; }

double GreedyMostProgress::score(SetId s) const {
  return static_cast<double>(progress(s));
}

double GreedyFewestRemaining::score(SetId s) const {
  return -static_cast<double>(remaining(s));
}

double GreedyDensity::score(SetId s) const {
  double rem = static_cast<double>(remaining(s));
  // A set with nothing left to come is a guaranteed completion if chosen
  // now; give it the highest density.
  return meta()[s].weight / (rem > 0 ? rem : 0.5);
}

void RoundRobin::start(const std::vector<SetMeta>& sets) {
  ActiveTracking::start(sets);
  cursor_ = 0;
}

std::size_t RoundRobin::decide(ElementId, Capacity capacity,
                               const SetId* candidates,
                               std::size_t num_candidates, SetId* out) {
  active_.clear();
  dead_.clear();
  for (std::size_t i = 0; i < num_candidates; ++i)
    (is_active(candidates[i]) ? active_ : dead_).push_back(candidates[i]);

  // Rotate: candidates with id >= cursor first, then wrap-around.  The
  // (wrap group, id) pair is a strict total order.
  std::sort(active_.begin(), active_.end(), [&](SetId a, SetId b) {
    bool wa = a >= cursor_, wb = b >= cursor_;
    if (wa != wb) return wa;
    return a < b;
  });

  std::size_t n = fill_choice(active_, dead_, capacity, out);
  if (n > 0) cursor_ = out[0] + 1;
  if (cursor_ >= meta().size()) cursor_ = 0;
  record(candidates, num_candidates, out, n);
  return n;
}

void RoundRobin::decide_batch(const ArrivalBlock& block,
                              BlockScratch& /*scratch*/, BlockChoices& out) {
  decide_block_loop(block, out,
                    [this](ElementId u, Capacity capacity,
                           const SetId* candidates,
                           std::size_t num_candidates, SetId* choice) {
                      return RoundRobin::decide(u, capacity, candidates,
                                                num_candidates, choice);
                    });
}

std::size_t UniformRandomChoice::decide(ElementId, Capacity capacity,
                                        const SetId* candidates,
                                        std::size_t num_candidates,
                                        SetId* out) {
  pool_.clear();
  for (std::size_t i = 0; i < num_candidates; ++i)
    if (is_active(candidates[i])) pool_.push_back(candidates[i]);
  if (pool_.empty()) pool_.assign(candidates, candidates + num_candidates);

  std::size_t n = 0;
  // Partial Fisher–Yates: draw up to `capacity` distinct sets.
  for (std::size_t i = 0; i < pool_.size() && n < capacity; ++i) {
    std::size_t j = i + static_cast<std::size_t>(
                            rng_.below(pool_.size() - i));
    std::swap(pool_[i], pool_[j]);
    out[n++] = pool_[i];
  }
  record(candidates, num_candidates, out, n);
  return n;
}

void UniformRandomChoice::decide_batch(const ArrivalBlock& block,
                                       BlockScratch& /*scratch*/,
                                       BlockChoices& out) {
  decide_block_loop(
      block, out,
      [this](ElementId u, Capacity capacity, const SetId* candidates,
             std::size_t num_candidates, SetId* choice) {
        return UniformRandomChoice::decide(u, capacity, candidates,
                                           num_candidates, choice);
      });
}

std::vector<std::unique_ptr<OnlineAlgorithm>> make_deterministic_baselines() {
  std::vector<std::unique_ptr<OnlineAlgorithm>> out;
  out.push_back(std::make_unique<GreedyFirst>());
  out.push_back(std::make_unique<GreedyMaxWeight>());
  out.push_back(std::make_unique<GreedyMostProgress>());
  out.push_back(std::make_unique<GreedyFewestRemaining>());
  out.push_back(std::make_unique<GreedyDensity>());
  out.push_back(std::make_unique<RoundRobin>());
  return out;
}

}  // namespace osp

// ---------------------------------------------------------------------
// Self-registration into the experiment API's policy registry, in
// make_deterministic_baselines() order (the benches' historical sweep
// order).  Aliases keep the display names and legacy CLI spellings.

#include "api/policy_registry.hpp"

namespace osp::api {

/// Linker anchor referenced by policies(); see link_randpr_policies().
void link_baseline_policies() {}

namespace {

template <class Alg>
PolicyFactory stateless() {
  return [](Rng) { return std::make_unique<Alg>(); };
}

PolicyRegistrar r_first{
    {"greedy:first", "earliest-id active candidate wins",
     {"greedy-first"}, stateless<GreedyFirst>()}};
PolicyRegistrar r_maxw{
    {"greedy:maxw", "heaviest active candidate wins",
     {"greedy-maxw"}, stateless<GreedyMaxWeight>()}};
PolicyRegistrar r_progress{
    {"greedy:progress", "most-invested active candidate wins (sunk cost)",
     {"greedy-progress"}, stateless<GreedyMostProgress>()}};
PolicyRegistrar r_srpt{
    {"greedy:srpt", "fewest-remaining active candidate wins",
     {"greedy-srpt"}, stateless<GreedyFewestRemaining>()}};
PolicyRegistrar r_density{
    {"greedy:density", "max weight-per-remaining-element wins",
     {"greedy-density"}, stateless<GreedyDensity>()}};
PolicyRegistrar r_rr{
    {"round-robin", "rotating id cursor over active candidates",
     {},
     stateless<RoundRobin>()}};
PolicyRegistrar r_uniform{
    {"uniform-random", "memoryless uniformly random admissible choice",
     {},
     [](Rng r) { return std::make_unique<UniformRandomChoice>(r); }}};

}  // namespace
}  // namespace osp::api
