#include "algos/baselines.hpp"

#include <algorithm>

namespace osp {

std::vector<SetId> ScoredBaseline::on_element(
    ElementId, Capacity capacity, const std::vector<SetId>& candidates) {
  // Partition candidates into active and dead; rank actives by score.
  std::vector<SetId> active;
  std::vector<SetId> dead;
  for (SetId s : candidates)
    (is_active(s) ? active : dead).push_back(s);

  std::stable_sort(active.begin(), active.end(), [&](SetId a, SetId b) {
    double sa = score(a), sb = score(b);
    if (sa != sb) return sa > sb;
    return a < b;
  });

  std::vector<SetId> chosen;
  for (SetId s : active) {
    if (chosen.size() == capacity) break;
    chosen.push_back(s);
  }
  // Filling leftover capacity with dead sets is harmless; doing so keeps
  // the policy total (it always uses the full capacity, like a real link).
  for (SetId s : dead) {
    if (chosen.size() == capacity) break;
    chosen.push_back(s);
  }
  record(candidates, chosen);
  return chosen;
}

double GreedyFirst::score(SetId s) const {
  return -static_cast<double>(s);
}

double GreedyMaxWeight::score(SetId s) const { return meta()[s].weight; }

double GreedyMostProgress::score(SetId s) const {
  return static_cast<double>(progress(s));
}

double GreedyFewestRemaining::score(SetId s) const {
  return -static_cast<double>(remaining(s));
}

double GreedyDensity::score(SetId s) const {
  double rem = static_cast<double>(remaining(s));
  // A set with nothing left to come is a guaranteed completion if chosen
  // now; give it the highest density.
  return meta()[s].weight / (rem > 0 ? rem : 0.5);
}

void RoundRobin::start(const std::vector<SetMeta>& sets) {
  ActiveTracking::start(sets);
  cursor_ = 0;
}

std::vector<SetId> RoundRobin::on_element(
    ElementId, Capacity capacity, const std::vector<SetId>& candidates) {
  std::vector<SetId> active;
  std::vector<SetId> dead;
  for (SetId s : candidates) (is_active(s) ? active : dead).push_back(s);

  // Rotate: candidates with id >= cursor first, then wrap-around.
  std::stable_sort(active.begin(), active.end(), [&](SetId a, SetId b) {
    bool wa = a >= cursor_, wb = b >= cursor_;
    if (wa != wb) return wa;
    return a < b;
  });

  std::vector<SetId> chosen;
  for (SetId s : active) {
    if (chosen.size() == capacity) break;
    chosen.push_back(s);
  }
  for (SetId s : dead) {
    if (chosen.size() == capacity) break;
    chosen.push_back(s);
  }
  if (!chosen.empty()) cursor_ = chosen.front() + 1;
  if (cursor_ >= meta().size()) cursor_ = 0;
  record(candidates, chosen);
  return chosen;
}

std::vector<SetId> UniformRandomChoice::on_element(
    ElementId, Capacity capacity, const std::vector<SetId>& candidates) {
  std::vector<SetId> pool;
  for (SetId s : candidates)
    if (is_active(s)) pool.push_back(s);
  if (pool.empty()) pool = candidates;

  std::vector<SetId> chosen;
  // Partial Fisher–Yates: draw up to `capacity` distinct sets.
  for (std::size_t i = 0; i < pool.size() && chosen.size() < capacity; ++i) {
    std::size_t j = i + static_cast<std::size_t>(
                            rng_.below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    chosen.push_back(pool[i]);
  }
  record(candidates, chosen);
  return chosen;
}

std::vector<std::unique_ptr<OnlineAlgorithm>> make_deterministic_baselines() {
  std::vector<std::unique_ptr<OnlineAlgorithm>> out;
  out.push_back(std::make_unique<GreedyFirst>());
  out.push_back(std::make_unique<GreedyMaxWeight>());
  out.push_back(std::make_unique<GreedyMostProgress>());
  out.push_back(std::make_unique<GreedyFewestRemaining>());
  out.push_back(std::make_unique<GreedyDensity>());
  out.push_back(std::make_unique<RoundRobin>());
  return out;
}

}  // namespace osp
