// Offline optimum under partial credit (open problem 3).
//
// Choosing a collection is no longer enough: each chosen set must claim
// at least |S| - r of its elements without exceeding element capacities.
// Feasibility of a collection is a bipartite b-matching question answered
// by max-flow (sets with demand |S|-r on one side, elements with supply
// b(u) on the other); the optimum is found by branch & bound over
// collections with that flow check, and an LP relaxation provides a
// certified upper bound for larger instances.
#pragma once

#include "algos/offline.hpp"
#include "core/instance.hpp"
#include "core/partial.hpp"

namespace osp {

/// True iff every set in `chosen` can simultaneously claim at least
/// |S| - rule.max_misses of its elements within element capacities.
bool partial_feasible(const Instance& inst, const std::vector<SetId>& chosen,
                      const PartialCreditRule& rule);

/// Exact maximum total weight of a partially-creditable collection under
/// the threshold (non-prorated) rule, via branch & bound with max-flow
/// feasibility checks.  Practical for benchmark-scale m.
OfflineResult partial_exact_optimum(const Instance& inst,
                                    const PartialCreditRule& rule,
                                    std::uint64_t node_limit = 2'000'000);

/// LP relaxation upper bound on the partial-credit optimum (valid for
/// both the threshold and the prorated rule — prorated value is at most
/// threshold value).
double partial_lp_upper_bound(const Instance& inst,
                              const PartialCreditRule& rule);

}  // namespace osp
