#include "algos/fractional.hpp"

#include "util/require.hpp"

namespace osp {

FractionalOutcome fractional_online(const Instance& inst) {
  FractionalOutcome out;
  out.x.assign(inst.num_sets(), inst.num_sets() ? 1.0 : 0.0);

  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const ArrivalView a = inst.arrival(u);
    if (a.parents.empty()) continue;
    double row = 0;
    for (SetId s : a.parents) row += out.x[s];
    double cap = static_cast<double>(a.capacity);
    if (row <= cap) continue;
    // Uniform rescale of the participating sets is the optimal myopic
    // repair: it satisfies the row exactly while losing the least total
    // x among scalings proportional to current mass.
    double factor = cap / row;
    for (SetId s : a.parents) out.x[s] *= factor;
    ++out.scaled_rows;
  }

  for (SetId s = 0; s < inst.num_sets(); ++s)
    out.value += inst.weight(s) * out.x[s];
  return out;
}

bool fractional_feasible(const Instance& inst, const std::vector<double>& x,
                         double eps) {
  if (x.size() != inst.num_sets()) return false;
  for (double v : x)
    if (v < -eps || v > 1.0 + eps) return false;
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    double row = 0;
    for (SetId s : inst.arrival(u).parents) row += x[s];
    if (row > static_cast<double>(inst.arrival(u).capacity) + eps)
      return false;
  }
  return true;
}

}  // namespace osp
