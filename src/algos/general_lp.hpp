// LP relaxation bound for the general packing model (open problem 1).
#pragma once

#include "core/general.hpp"

namespace osp {

/// Objective value of  max w·x  s.t.  Σ_S d(S,u)·x_S <= b(u),
/// 0 <= x <= 1  — a certified upper bound on the general packing optimum.
double general_lp_upper_bound(const GeneralInstance& inst);

}  // namespace osp
