// A small dense simplex solver for packing linear programs.
//
// Solves  max c·x  s.t.  Ax <= b,  x >= 0  with b >= 0, which covers the
// LP relaxation of the paper's integer program (1): rows are elements with
// right-hand side b(u), plus x_i <= 1 rows.  Because b >= 0 the all-slack
// basis is feasible and no phase-1 is needed.  Bland's rule guarantees
// termination.  Intended for the instance sizes of the benchmark harness
// (hundreds of rows/columns), not industrial scale.
#pragma once

#include <cstdint>
#include <vector>

namespace osp {

/// Outcome of a simplex solve.
struct LpResult {
  enum class Status { kOptimal, kUnbounded };
  Status status = Status::kOptimal;
  double value = 0.0;            // objective at optimum
  std::vector<double> x;         // primal solution (size = #vars)
  std::uint64_t pivots = 0;      // iterations used
};

/// Dense LP: max c·x s.t. A x <= b, x >= 0.  `a` is row-major with
/// rows.size() == b.size() and every row sized c.size().
/// Requires all entries of b to be non-negative.
LpResult simplex_maximize(const std::vector<std::vector<double>>& a,
                          const std::vector<double>& b,
                          const std::vector<double>& c);

}  // namespace osp
