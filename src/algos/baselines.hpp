// Deterministic (and one memoryless randomized) online baselines.
//
// These are the natural policies a router implementer would try first; the
// paper's Theorem 3 shows every deterministic policy has competitive ratio
// at least σmax^(kmax-1), and bench_det_lb drives each of these through the
// adaptive adversary to demonstrate it.
//
// All baselines prefer sets that are still completable ("active"): choosing
// a set that already lost an element can never increase the benefit.
//
// Every baseline implements the flat decide() path with reusable internal
// scratch, so batch trials run allocation-free in steady state; the
// allocating on_element() entry point is inherited from the base class.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "util/rng.hpp"

namespace osp {

/// Ranks active candidates by a policy-specific score and assigns the
/// element to the top b(u); dead candidates are used only as filler (they
/// cannot matter).  Subclasses implement score(); higher wins, ties break
/// toward lower set id.
class ScoredBaseline : public ActiveTracking {
 public:
  std::size_t decide(ElementId u, Capacity capacity, const SetId* candidates,
                     std::size_t num_candidates, SetId* out) override;

  /// Straightforward block loop: one virtual call per block, the
  /// per-element selection unchanged (score() stays virtual).
  void decide_batch(const ArrivalBlock& block, BlockScratch& scratch,
                    BlockChoices& out) override;

  /// Deterministic: start() resets all decision-relevant state, so the
  /// default no-op reseed() is a complete re-arm.
  bool reseedable() const override { return true; }

 protected:
  /// Score of candidate s for the current element; higher is better.
  virtual double score(SetId s) const = 0;

  /// Splits candidates into the active_/dead_ scratch lists.
  void partition(const SetId* candidates, std::size_t num_candidates);

  std::vector<SetId> active_;  // scratch, reused across decisions
  std::vector<SetId> dead_;    // scratch, reused across decisions
};

/// Picks the earliest-id active candidates ("first listed").
class GreedyFirst final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-first"; }

 protected:
  double score(SetId s) const override;
};

/// Picks active candidates with maximal weight.
class GreedyMaxWeight final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-maxw"; }

 protected:
  double score(SetId s) const override;
};

/// Picks active candidates that already received the most elements
/// ("sunk cost": protect the most-invested frames).
class GreedyMostProgress final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-progress"; }

 protected:
  double score(SetId s) const override;
};

/// Picks active candidates with the fewest elements still to come
/// ("shortest remaining": finish what is closest to done).
class GreedyFewestRemaining final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-srpt"; }

 protected:
  double score(SetId s) const override;
};

/// Picks active candidates by maximal weight-per-remaining-element
/// (value density).
class GreedyDensity final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-density"; }

 protected:
  double score(SetId s) const override;
};

/// Deterministic rotation: prefers active candidates with ids at or after
/// a pointer that advances with every arrival.
class RoundRobin final : public ActiveTracking {
 public:
  std::string name() const override { return "round-robin"; }
  void start(const std::vector<SetMeta>& sets) override;
  std::size_t decide(ElementId u, Capacity capacity, const SetId* candidates,
                     std::size_t num_candidates, SetId* out) override;
  void decide_batch(const ArrivalBlock& block, BlockScratch& scratch,
                    BlockChoices& out) override;
  bool reseedable() const override { return true; }  // start() resets cursor

 private:
  std::size_t cursor_ = 0;
  std::vector<SetId> active_;  // scratch
  std::vector<SetId> dead_;    // scratch
};

/// Memoryless randomized control: a uniformly random admissible choice at
/// each element.  Not set-consistent, hence much weaker than randPr.
class UniformRandomChoice final : public ActiveTracking {
 public:
  explicit UniformRandomChoice(Rng rng) : rng_(rng) {}
  std::string name() const override { return "uniform-random"; }
  std::size_t decide(ElementId u, Capacity capacity, const SetId* candidates,
                     std::size_t num_candidates, SetId* out) override;
  void decide_batch(const ArrivalBlock& block, BlockScratch& scratch,
                    BlockChoices& out) override;
  void reseed(Rng rng) override { rng_ = rng; }
  bool reseedable() const override { return true; }

 private:
  Rng rng_;
  std::vector<SetId> pool_;  // scratch
};

/// All deterministic baselines, freshly constructed (for benchmark loops).
std::vector<std::unique_ptr<OnlineAlgorithm>> make_deterministic_baselines();

}  // namespace osp
