// Deterministic (and one memoryless randomized) online baselines.
//
// These are the natural policies a router implementer would try first; the
// paper's Theorem 3 shows every deterministic policy has competitive ratio
// at least σmax^(kmax-1), and bench_det_lb drives each of these through the
// adaptive adversary to demonstrate it.
//
// All baselines prefer sets that are still completable ("active"): choosing
// a set that already lost an element can never increase the benefit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "util/rng.hpp"

namespace osp {

/// Ranks active candidates by a policy-specific score and assigns the
/// element to the top b(u); dead candidates are used only as filler (they
/// cannot matter).  Subclasses implement score(); higher wins, ties break
/// toward lower set id.
class ScoredBaseline : public ActiveTracking {
 public:
  std::vector<SetId> on_element(ElementId u, Capacity capacity,
                                const std::vector<SetId>& candidates) override;

 protected:
  /// Score of candidate s for the current element; higher is better.
  virtual double score(SetId s) const = 0;
};

/// Picks the earliest-id active candidates ("first listed").
class GreedyFirst final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-first"; }

 protected:
  double score(SetId s) const override;
};

/// Picks active candidates with maximal weight.
class GreedyMaxWeight final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-maxw"; }

 protected:
  double score(SetId s) const override;
};

/// Picks active candidates that already received the most elements
/// ("sunk cost": protect the most-invested frames).
class GreedyMostProgress final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-progress"; }

 protected:
  double score(SetId s) const override;
};

/// Picks active candidates with the fewest elements still to come
/// ("shortest remaining": finish what is closest to done).
class GreedyFewestRemaining final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-srpt"; }

 protected:
  double score(SetId s) const override;
};

/// Picks active candidates by maximal weight-per-remaining-element
/// (value density).
class GreedyDensity final : public ScoredBaseline {
 public:
  std::string name() const override { return "greedy-density"; }

 protected:
  double score(SetId s) const override;
};

/// Deterministic rotation: prefers active candidates with ids at or after
/// a pointer that advances with every arrival.
class RoundRobin final : public ActiveTracking {
 public:
  std::string name() const override { return "round-robin"; }
  void start(const std::vector<SetMeta>& sets) override;
  std::vector<SetId> on_element(ElementId u, Capacity capacity,
                                const std::vector<SetId>& candidates) override;

 private:
  std::size_t cursor_ = 0;
};

/// Memoryless randomized control: a uniformly random admissible choice at
/// each element.  Not set-consistent, hence much weaker than randPr.
class UniformRandomChoice final : public ActiveTracking {
 public:
  explicit UniformRandomChoice(Rng rng) : rng_(rng) {}
  std::string name() const override { return "uniform-random"; }
  std::vector<SetId> on_element(ElementId u, Capacity capacity,
                                const std::vector<SetId>& candidates) override;

 private:
  Rng rng_;
};

/// All deterministic baselines, freshly constructed (for benchmark loops).
std::vector<std::unique_ptr<OnlineAlgorithm>> make_deterministic_baselines();

}  // namespace osp
