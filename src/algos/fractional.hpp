// Online FRACTIONAL packing — the related-work comparator.
//
// Buchbinder and Naor's primal-dual framework [5 in the paper] solves
// packing LPs online when constraint rows arrive one by one, but it
// maintains a FRACTIONAL primal and collects value continuously; osp's
// difficulty is integrality plus all-or-nothing payoff.  This module
// implements the row-arrival multiplicative-weights algorithm so the two
// models can be compared on the same instances: the fractional benefit is
// an (online-achievable) upper reference point between E[w(alg)] and the
// LP optimum.
//
// Algorithm (standard multiplicative decrease): start with x_S = 1 for
// every set.  When element u arrives with capacity b(u), while the row
// Σ_{S∋u} x_S > b(u), scale every x_S, S ∋ u, by a factor < 1 until the
// row is satisfied.  Decisions are irrevocable downwards (x only
// decreases), mirroring how osp can only lose sets as elements arrive.
#pragma once

#include <vector>

#include "core/instance.hpp"

namespace osp {

/// Result of an online fractional run.
struct FractionalOutcome {
  std::vector<double> x;   // final fractional solution, in [0, 1]
  double value = 0;        // w · x
  std::size_t scaled_rows = 0;  // rows that forced a decrease
};

/// Runs the row-arrival fractional packing algorithm over the instance's
/// arrival order.  The returned x satisfies every element constraint and
/// x_S <= 1; value is the fractional benefit.
FractionalOutcome fractional_online(const Instance& inst);

/// Verifies that x is feasible for the instance's packing LP (within
/// eps); exposed for tests.
bool fractional_feasible(const Instance& inst, const std::vector<double>& x,
                         double eps = 1e-9);

}  // namespace osp
