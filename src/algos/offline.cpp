#include "algos/offline.hpp"

#include <algorithm>
#include <numeric>

#include "algos/simplex.hpp"
#include "util/require.hpp"

namespace osp {

bool is_feasible(const Instance& inst, const std::vector<SetId>& chosen) {
  std::vector<std::size_t> used(inst.num_elements(), 0);
  std::vector<bool> seen(inst.num_sets(), false);
  for (SetId s : chosen) {
    if (s >= inst.num_sets() || seen[s]) return false;
    seen[s] = true;
    for (ElementId u : inst.elements_of(s))
      if (++used[u] > inst.arrival(u).capacity) return false;
  }
  return true;
}

namespace {

/// Shared state of the branch & bound search.
struct Search {
  const Instance& inst;
  std::vector<SetId> order;            // sets by descending weight
  std::vector<Weight> suffix;          // suffix weight sums over `order`
  std::vector<std::size_t> slack;      // remaining capacity per element
  std::vector<SetId> current;
  std::vector<SetId> best;
  Weight best_value = -1;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit;
  bool truncated = false;

  Search(const Instance& i, std::uint64_t limit)
      : inst(i), node_limit(limit) {
    order.resize(inst.num_sets());
    std::iota(order.begin(), order.end(), SetId{0});
    std::sort(order.begin(), order.end(), [&](SetId a, SetId b) {
      if (inst.weight(a) != inst.weight(b))
        return inst.weight(a) > inst.weight(b);
      return inst.set_size(a) < inst.set_size(b);
    });
    suffix.assign(order.size() + 1, 0);
    for (std::size_t i2 = order.size(); i2-- > 0;)
      suffix[i2] = suffix[i2 + 1] + inst.weight(order[i2]);
    slack.resize(inst.num_elements());
    for (ElementId u = 0; u < inst.num_elements(); ++u)
      slack[u] = inst.arrival(u).capacity;
  }

  bool addable(SetId s) const {
    for (ElementId u : inst.elements_of(s))
      if (slack[u] == 0) return false;
    return true;
  }

  void add(SetId s) {
    for (ElementId u : inst.elements_of(s)) --slack[u];
    current.push_back(s);
  }

  void remove(SetId s) {
    for (ElementId u : inst.elements_of(s)) ++slack[u];
    current.pop_back();
  }

  void recurse(std::size_t idx, Weight value) {
    if (++nodes > node_limit) {
      truncated = true;
      return;
    }
    if (value > best_value) {
      best_value = value;
      best = current;
    }
    if (idx == order.size()) return;
    // Prune: even taking every remaining set cannot beat the incumbent.
    if (value + suffix[idx] <= best_value) return;

    SetId s = order[idx];
    if (addable(s)) {
      add(s);
      recurse(idx + 1, value + inst.weight(s));
      remove(s);
      if (truncated) return;
    }
    recurse(idx + 1, value);
  }
};

}  // namespace

OfflineResult exact_optimum(const Instance& inst, std::uint64_t node_limit) {
  Search search(inst, node_limit);
  // Seed the incumbent with greedy so pruning bites immediately.
  OfflineResult seed = greedy_offline(inst);
  search.best = seed.chosen;
  search.best_value = seed.value;
  search.recurse(0, 0);

  OfflineResult out;
  out.chosen = std::move(search.best);
  std::sort(out.chosen.begin(), out.chosen.end());
  out.value = search.best_value;
  out.exact = !search.truncated;
  out.nodes = search.nodes;
  OSP_ASSERT(is_feasible(inst, out.chosen));
  return out;
}

OfflineResult greedy_offline(const Instance& inst) {
  std::vector<SetId> order(inst.num_sets());
  std::iota(order.begin(), order.end(), SetId{0});
  std::sort(order.begin(), order.end(), [&](SetId a, SetId b) {
    if (inst.weight(a) != inst.weight(b))
      return inst.weight(a) > inst.weight(b);
    return inst.set_size(a) < inst.set_size(b);
  });

  std::vector<std::size_t> slack(inst.num_elements());
  for (ElementId u = 0; u < inst.num_elements(); ++u)
    slack[u] = inst.arrival(u).capacity;

  OfflineResult out;
  for (SetId s : order) {
    bool ok = true;
    for (ElementId u : inst.elements_of(s))
      if (slack[u] == 0) {
        ok = false;
        break;
      }
    if (!ok) continue;
    for (ElementId u : inst.elements_of(s)) --slack[u];
    out.chosen.push_back(s);
    out.value += inst.weight(s);
  }
  std::sort(out.chosen.begin(), out.chosen.end());
  out.exact = false;
  return out;
}

double lp_upper_bound(const Instance& inst) {
  const std::size_t m = inst.num_sets();
  const std::size_t n = inst.num_elements();
  // Rows: one per element (capacity) + one per set (x_i <= 1).
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  a.reserve(n + m);
  for (ElementId u = 0; u < n; ++u) {
    std::vector<double> row(m, 0.0);
    for (SetId s : inst.arrival(u).parents) row[s] = 1.0;
    a.push_back(std::move(row));
    b.push_back(static_cast<double>(inst.arrival(u).capacity));
  }
  for (SetId s = 0; s < m; ++s) {
    std::vector<double> row(m, 0.0);
    row[s] = 1.0;
    a.push_back(std::move(row));
    b.push_back(1.0);
  }
  std::vector<double> c(m);
  for (SetId s = 0; s < m; ++s) c[s] = inst.weight(s);

  LpResult lp = simplex_maximize(a, b, c);
  OSP_REQUIRE(lp.status == LpResult::Status::kOptimal);
  return lp.value;
}

}  // namespace osp
