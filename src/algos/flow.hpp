// Dinic's maximum-flow algorithm on integer capacities.
//
// Substrate for the partial-credit extension (the paper's open problem 3):
// deciding whether a chosen collection of sets can each claim all-but-r of
// their elements within element capacities is a bipartite b-matching
// feasibility question, which we answer with max-flow.
#pragma once

#include <cstdint>
#include <vector>

namespace osp {

/// Max-flow on a directed graph with integer capacities (Dinic).
class FlowNetwork {
 public:
  /// Creates a network with `num_nodes` nodes (0-based ids).
  explicit FlowNetwork(std::size_t num_nodes);

  /// Adds a directed edge u -> v with the given capacity; returns an edge
  /// id usable with flow_on().  A reverse edge of capacity 0 is added
  /// automatically.
  std::size_t add_edge(std::size_t u, std::size_t v, std::int64_t capacity);

  /// Computes the maximum s-t flow.  May be called once per network
  /// (subsequent calls continue from the current flow, which is only
  /// useful for incremental capacity additions).
  std::int64_t max_flow(std::size_t s, std::size_t t);

  /// Flow currently routed through the edge returned by add_edge.
  std::int64_t flow_on(std::size_t edge_id) const;

  std::size_t num_nodes() const { return graph_.size(); }

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;  // index of reverse edge in graph_[to]
    std::int64_t cap;
    std::int64_t original_cap;
  };

  bool bfs(std::size_t s, std::size_t t);
  std::int64_t dfs(std::size_t v, std::size_t t, std::int64_t pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_index_;  // (node, slot)
};

}  // namespace osp
