#include "algos/general_lp.hpp"

#include "algos/simplex.hpp"
#include "util/require.hpp"

namespace osp {

double general_lp_upper_bound(const GeneralInstance& inst) {
  const std::size_t m = inst.num_sets();
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const GeneralArrival& arr = inst.arrival(u);
    std::vector<double> row(m, 0.0);
    for (const UnitDemand& d : arr.demands)
      row[d.set] = static_cast<double>(d.units);
    a.push_back(std::move(row));
    b.push_back(static_cast<double>(arr.capacity));
  }
  for (SetId s = 0; s < m; ++s) {
    std::vector<double> row(m, 0.0);
    row[s] = 1.0;
    a.push_back(std::move(row));
    b.push_back(1.0);
  }
  std::vector<double> c(m);
  for (SetId s = 0; s < m; ++s) c[s] = inst.weight(s);
  LpResult lp = simplex_maximize(a, b, c);
  OSP_REQUIRE(lp.status == LpResult::Status::kOptimal);
  return lp.value;
}

}  // namespace osp
