// Offline solvers for the integer program (1) of the paper:
//
//   max  Σ w_i x_i   s.t.  Σ_{i: S_i ∋ u_j} x_i <= b_j,   x ∈ {0,1}^m.
//
// These supply the `opt` term in every measured competitive ratio:
//  * exact_optimum      — branch & bound, exact for benchmark-scale m;
//  * greedy_offline     — classic weight-ordered greedy (k-approximation);
//  * lp_upper_bound     — simplex on the LP relaxation, a certified upper
//                         bound on opt when exact search is infeasible.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"

namespace osp {

/// Result of an offline computation.
struct OfflineResult {
  Weight value = 0;             // total weight of `chosen`
  std::vector<SetId> chosen;    // a feasible collection
  bool exact = false;           // true iff proven optimal
  std::uint64_t nodes = 0;      // search nodes explored (B&B only)
};

/// Exact maximum-weight feasible collection via branch & bound.
///
/// Sets are ordered by weight (descending) and the search prunes with the
/// residual weight sum.  If `node_limit` is exceeded, returns the best
/// solution found with exact=false.  Practical up to m around 60 for the
/// dense instances in this library; all benchmark families stay below that
/// or know opt analytically.
OfflineResult exact_optimum(const Instance& inst,
                            std::uint64_t node_limit = 20'000'000);

/// Greedy: scan sets by descending weight (ties: smaller size first) and
/// take each set whose elements all still have spare capacity.
OfflineResult greedy_offline(const Instance& inst);

/// Objective value of the LP relaxation — an upper bound on opt.
double lp_upper_bound(const Instance& inst);

/// True iff `chosen` is feasible for the instance (every element used at
/// most b(u) times by the chosen sets).
bool is_feasible(const Instance& inst, const std::vector<SetId>& chosen);

}  // namespace osp
