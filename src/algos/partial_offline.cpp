#include "algos/partial_offline.hpp"

#include <algorithm>
#include <numeric>

#include "algos/flow.hpp"
#include "algos/simplex.hpp"
#include "util/require.hpp"

namespace osp {

bool partial_feasible(const Instance& inst, const std::vector<SetId>& chosen,
                      const PartialCreditRule& rule) {
  // Nodes: source, one per chosen set, one per element touched, sink.
  std::vector<bool> seen(inst.num_sets(), false);
  for (SetId s : chosen) {
    if (s >= inst.num_sets() || seen[s]) return false;
    seen[s] = true;
  }

  // Collect touched elements and index them densely.
  std::vector<std::int64_t> elem_node(inst.num_elements(), -1);
  std::size_t num_elems = 0;
  for (SetId s : chosen)
    for (ElementId u : inst.elements_of(s))
      if (elem_node[u] < 0) elem_node[u] = static_cast<std::int64_t>(num_elems++);

  const std::size_t source = 0;
  const std::size_t set_base = 1;
  const std::size_t elem_base = set_base + chosen.size();
  const std::size_t sink = elem_base + num_elems;
  FlowNetwork net(sink + 1);

  std::int64_t total_demand = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    SetId s = chosen[i];
    std::size_t size = inst.set_size(s);
    std::int64_t demand =
        static_cast<std::int64_t>(size) -
        static_cast<std::int64_t>(std::min(rule.max_misses, size));
    total_demand += demand;
    net.add_edge(source, set_base + i, demand);
    for (ElementId u : inst.elements_of(s))
      net.add_edge(set_base + i,
                   elem_base + static_cast<std::size_t>(elem_node[u]), 1);
  }
  for (ElementId u = 0; u < inst.num_elements(); ++u)
    if (elem_node[u] >= 0)
      net.add_edge(elem_base + static_cast<std::size_t>(elem_node[u]), sink,
                   static_cast<std::int64_t>(inst.arrival(u).capacity));

  return net.max_flow(source, sink) == total_demand;
}

namespace {

struct PartialSearch {
  const Instance& inst;
  const PartialCreditRule& rule;
  std::vector<SetId> order;
  std::vector<Weight> suffix;
  std::vector<SetId> current;
  std::vector<SetId> best;
  Weight best_value = -1;
  std::uint64_t nodes = 0;
  std::uint64_t node_limit;
  bool truncated = false;

  PartialSearch(const Instance& i, const PartialCreditRule& r,
                std::uint64_t limit)
      : inst(i), rule(r), node_limit(limit) {
    order.resize(inst.num_sets());
    std::iota(order.begin(), order.end(), SetId{0});
    std::sort(order.begin(), order.end(), [&](SetId a, SetId b) {
      if (inst.weight(a) != inst.weight(b))
        return inst.weight(a) > inst.weight(b);
      return inst.set_size(a) < inst.set_size(b);
    });
    suffix.assign(order.size() + 1, 0);
    for (std::size_t i2 = order.size(); i2-- > 0;)
      suffix[i2] = suffix[i2 + 1] + inst.weight(order[i2]);
  }

  void recurse(std::size_t idx, Weight value) {
    if (++nodes > node_limit) {
      truncated = true;
      return;
    }
    if (value > best_value) {
      best_value = value;
      best = current;
    }
    if (idx == order.size()) return;
    if (value + suffix[idx] <= best_value) return;

    SetId s = order[idx];
    current.push_back(s);
    // Feasibility must hold for the whole collection; the flow check is
    // monotone (adding sets only adds demand), so pruning on failure is
    // sound.
    if (partial_feasible(inst, current, rule))
      recurse(idx + 1, value + inst.weight(s));
    current.pop_back();
    if (truncated) return;
    recurse(idx + 1, value);
  }
};

}  // namespace

OfflineResult partial_exact_optimum(const Instance& inst,
                                    const PartialCreditRule& rule,
                                    std::uint64_t node_limit) {
  OSP_REQUIRE_MSG(!rule.prorated,
                  "exact search supports the threshold rule; use "
                  "partial_lp_upper_bound for prorated scoring");
  PartialSearch search(inst, rule, node_limit);
  search.recurse(0, 0);

  OfflineResult out;
  out.chosen = std::move(search.best);
  std::sort(out.chosen.begin(), out.chosen.end());
  out.value = std::max<Weight>(search.best_value, 0);
  out.exact = !search.truncated;
  out.nodes = search.nodes;
  return out;
}

double partial_lp_upper_bound(const Instance& inst,
                              const PartialCreditRule& rule) {
  // Variables: x_S (take set S), then y_{S,u} for each membership pair
  // (S claims element u).  Constraints:
  //   Σ_S y_{S,u} <= b(u)                        per element
  //   y_{S,u} - x_S <= 0                        per membership
  //   (|S|-r)·x_S - Σ_u y_{S,u} <= 0            per set
  //   x_S <= 1                                  per set
  const std::size_t m = inst.num_sets();
  std::size_t pairs = 0;
  for (SetId s = 0; s < m; ++s) pairs += inst.set_size(s);
  const std::size_t vars = m + pairs;

  // Index y-vars by running offset per set.
  std::vector<std::size_t> y_base(m);
  {
    std::size_t off = m;
    for (SetId s = 0; s < m; ++s) {
      y_base[s] = off;
      off += inst.set_size(s);
    }
  }

  std::vector<std::vector<double>> a;
  std::vector<double> b;

  // Element capacity rows.
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    std::vector<double> row(vars, 0.0);
    for (SetId s : inst.arrival(u).parents) {
      // position of u within s's element list
      const auto& elems = inst.elements_of(s);
      auto it = std::lower_bound(elems.begin(), elems.end(), u);
      OSP_ASSERT(it != elems.end() && *it == u);
      row[y_base[s] + static_cast<std::size_t>(it - elems.begin())] = 1.0;
    }
    a.push_back(std::move(row));
    b.push_back(static_cast<double>(inst.arrival(u).capacity));
  }
  // Membership rows y <= x.
  for (SetId s = 0; s < m; ++s)
    for (std::size_t i = 0; i < inst.set_size(s); ++i) {
      std::vector<double> row(vars, 0.0);
      row[y_base[s] + i] = 1.0;
      row[s] = -1.0;
      a.push_back(std::move(row));
      b.push_back(0.0);
    }
  // Demand rows (|S|-r) x_S - Σ y <= 0.
  for (SetId s = 0; s < m; ++s) {
    std::vector<double> row(vars, 0.0);
    double need = static_cast<double>(inst.set_size(s)) -
                  static_cast<double>(
                      std::min(rule.max_misses, inst.set_size(s)));
    row[s] = need;
    for (std::size_t i = 0; i < inst.set_size(s); ++i)
      row[y_base[s] + i] = -1.0;
    a.push_back(std::move(row));
    b.push_back(0.0);
  }
  // x <= 1 rows.
  for (SetId s = 0; s < m; ++s) {
    std::vector<double> row(vars, 0.0);
    row[s] = 1.0;
    a.push_back(std::move(row));
    b.push_back(1.0);
  }

  std::vector<double> c(vars, 0.0);
  for (SetId s = 0; s < m; ++s) c[s] = inst.weight(s);

  LpResult lp = simplex_maximize(a, b, c);
  OSP_REQUIRE(lp.status == LpResult::Status::kOptimal);
  return lp.value;
}

}  // namespace osp
