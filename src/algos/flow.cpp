#include "algos/flow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/require.hpp"

namespace osp {

FlowNetwork::FlowNetwork(std::size_t num_nodes) : graph_(num_nodes) {}

std::size_t FlowNetwork::add_edge(std::size_t u, std::size_t v,
                                  std::int64_t capacity) {
  OSP_REQUIRE(u < graph_.size() && v < graph_.size());
  OSP_REQUIRE(capacity >= 0);
  graph_[u].push_back(Edge{v, graph_[v].size(), capacity, capacity});
  graph_[v].push_back(Edge{u, graph_[u].size() - 1, 0, 0});
  edge_index_.emplace_back(u, graph_[u].size() - 1);
  return edge_index_.size() - 1;
}

bool FlowNetwork::bfs(std::size_t s, std::size_t t) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> queue;
  level_[s] = 0;
  queue.push(s);
  while (!queue.empty()) {
    std::size_t v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[v]) {
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t FlowNetwork::dfs(std::size_t v, std::size_t t,
                              std::int64_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.cap <= 0 || level_[e.to] != level_[v] + 1) continue;
    std::int64_t d = dfs(e.to, t, std::min(pushed, e.cap));
    if (d > 0) {
      e.cap -= d;
      graph_[e.to][e.rev].cap += d;
      return d;
    }
  }
  return 0;
}

std::int64_t FlowNetwork::max_flow(std::size_t s, std::size_t t) {
  OSP_REQUIRE(s < graph_.size() && t < graph_.size());
  OSP_REQUIRE(s != t);
  std::int64_t flow = 0;
  while (bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    while (std::int64_t pushed =
               dfs(s, t, std::numeric_limits<std::int64_t>::max()))
      flow += pushed;
  }
  return flow;
}

std::int64_t FlowNetwork::flow_on(std::size_t edge_id) const {
  OSP_REQUIRE(edge_id < edge_index_.size());
  auto [node, slot] = edge_index_[edge_id];
  const Edge& e = graph_[node][slot];
  return e.original_cap - e.cap;
}

}  // namespace osp
