// Frozen replicas of the SEED repo's engine and randPr implementation,
// kept verbatim from the pre-flat-engine sources (see git history of
// src/core/game.cpp and src/core/rand_pr.cpp).
//
// Single source of truth for both the golden-equivalence tests
// (tests/test_engine.cpp) and the throughput baseline (bench/bench_perf):
// the same replica that is proven decision-for-decision equivalent to the
// ported code is the one the speedup is measured against.  Do not
// "improve" this code — its value is that it does not change.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "core/game.hpp"
#include "core/priority.hpp"
#include "core/rand_pr.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp::seedref {

/// The seed repo's RandPr: allocating on_element, partial_sort selection,
/// unconditional activity bookkeeping.  Options-complete.
class SeedRandPr final : public ActiveTracking {
 public:
  explicit SeedRandPr(Rng rng, RandPrOptions options = {})
      : rng_(rng), options_(options) {}
  std::string name() const override { return "seed-randPr"; }

  void start(const std::vector<SetMeta>& sets) override {
    ActiveTracking::start(sets);
    priorities_.resize(sets.size());
    for (SetId s = 0; s < sets.size(); ++s) {
      double w =
          options_.ignore_weights ? 1.0 : std::max(sets[s].weight, 1e-12);
      priorities_[s] = sample_rw_key(w, rng_);
    }
  }

  std::vector<SetId> on_element(
      ElementId, Capacity capacity,
      const std::vector<SetId>& candidates) override {
    if (options_.fresh_priorities_per_element) {
      for (SetId s : candidates) {
        double w =
            options_.ignore_weights ? 1.0 : std::max(meta()[s].weight, 1e-12);
        priorities_[s] = sample_rw_key(w, rng_);
      }
    }
    const std::vector<SetId> pool =
        options_.filter_dead ? filter_active(candidates) : candidates;
    std::vector<SetId> chosen = seed_top(pool, capacity);
    record(candidates, chosen);
    return chosen;
  }

 private:
  std::vector<SetId> filter_active(const std::vector<SetId>& candidates) {
    std::vector<SetId> alive;
    alive.reserve(candidates.size());
    for (SetId s : candidates)
      if (misses(s) <= options_.allowed_misses) alive.push_back(s);
    return alive;
  }

  std::vector<SetId> seed_top(const std::vector<SetId>& candidates,
                              Capacity capacity) {
    if (candidates.size() <= capacity) return candidates;
    std::vector<SetId> chosen = candidates;
    std::partial_sort(chosen.begin(), chosen.begin() + capacity, chosen.end(),
                      [&](SetId a, SetId b) {
                        return priorities_[a] > priorities_[b];
                      });
    chosen.resize(capacity);
    return chosen;
  }

  Rng rng_;
  RandPrOptions options_;
  std::vector<PriorityKey> priorities_;
};

/// The seed engine's play(), line for line, over pre-materialized arrivals
/// (the seed stored arrivals as vectors, so its loop paid no CSR-to-vector
/// conversion — callers pre-build `arrivals` outside any timed region).
inline Outcome seed_play(const Instance& inst, OnlineAlgorithm& alg,
                         const std::vector<Arrival>& arrivals) {
  std::vector<SetMeta> metas(inst.num_sets());
  for (SetId s = 0; s < inst.num_sets(); ++s)
    metas[s] = SetMeta{inst.weight(s), inst.set_size(s)};
  alg.start(metas);

  std::vector<std::size_t> got(inst.num_sets(), 0);
  Outcome out;
  out.completed_mask.assign(inst.num_sets(), false);

  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    const Arrival& a = arrivals[u];
    std::vector<SetId> chosen = alg.on_element(u, a.capacity, a.parents);
    {  // seed check_answer: copy, sort, binary-search
      OSP_REQUIRE(chosen.size() <= a.capacity);
      std::vector<SetId> sorted = chosen;
      std::sort(sorted.begin(), sorted.end());
      OSP_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end());
      for (SetId s : sorted)
        OSP_REQUIRE(std::binary_search(a.parents.begin(), a.parents.end(), s));
    }
    for (SetId s : chosen) ++got[s];
    out.decisions += chosen.size();
  }

  for (SetId s = 0; s < inst.num_sets(); ++s) {
    if (got[s] == inst.set_size(s)) {
      out.completed.push_back(s);
      out.completed_mask[s] = true;
      out.benefit += inst.weight(s);
    }
  }
  return out;
}

/// Materializes an instance's arrivals the way the seed stored them.
inline std::vector<Arrival> materialize_arrivals(const Instance& inst) {
  std::vector<Arrival> arrivals;
  arrivals.reserve(inst.num_elements());
  for (ElementId u = 0; u < inst.num_elements(); ++u)
    arrivals.push_back(
        Arrival{inst.capacity(u), inst.parents(u).to_vector()});
  return arrivals;
}

}  // namespace osp::seedref
