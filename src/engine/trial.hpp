// Trial abstractions for the shared batch runner.
//
// A trial is one (instance × algorithm × seed) cell of an experiment grid.
// Seeds are derived deterministically from the grid coordinates — never
// from thread ids or scheduling order — so every result is bit-identical
// regardless of how many workers execute the batch.  Per-thread state
// (engine scratch, decision buffers) lives in TrialContext and is reused
// across all trials a worker executes, keeping the steady state
// allocation-free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/game.hpp"
#include "core/instance.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace osp::engine {

class BatchRunner;

/// Per-worker reusable state handed to every trial body.
struct TrialContext {
  PlayScratch scratch;
  std::size_t thread_index = 0;
  /// One cached algorithm per grid column (run_grid's reseed path): a
  /// reseedable policy is constructed once per worker and re-armed with
  /// reseed() + start() for every later trial, so steady-state trials
  /// allocate nothing.  Non-reseedable policies are rebuilt each trial.
  std::vector<std::unique_ptr<OnlineAlgorithm>> alg_cache;
};

/// Derives the seed of trial `trial` of algorithm `alg_idx` on instance
/// `instance_idx`: a SplitMix64 mix of the coordinates, independent of
/// execution order.
std::uint64_t trial_seed(std::uint64_t master_seed, std::size_t instance_idx,
                         std::size_t alg_idx, std::uint64_t trial);

/// Builds a fresh algorithm for one trial from that trial's seeded Rng.
using AlgFactory = std::function<std::unique_ptr<OnlineAlgorithm>(Rng)>;

/// A named algorithm column of the grid.
struct AlgSpec {
  std::string name;
  AlgFactory make;
};

/// Scalar outcomes of one play trial.
struct TrialResult {
  Weight benefit = 0;
  std::size_t decisions = 0;
  std::size_t completed = 0;
};

/// Runs one seeded trial of `alg` on `inst` through the block-stepped
/// engine (decide_batch over arrival blocks of `block_size` elements;
/// 0 = kDefaultDecideBlock), constructing the algorithm fresh.  Decision-
/// identical to the per-element flat path by the decide_batch contract.
TrialResult run_play_trial(const Instance& inst, const AlgSpec& alg,
                           std::uint64_t seed, TrialContext& ctx,
                           std::size_t block_size = 0);

/// Like run_play_trial, but reuses ctx.alg_cache[alg_idx] across calls
/// when the policy is reseedable (decision-identical to fresh
/// construction by the reseed() contract); what run_grid uses.
TrialResult run_play_trial_cached(const Instance& inst, const AlgSpec& alg,
                                  std::size_t alg_idx, std::uint64_t seed,
                                  TrialContext& ctx,
                                  std::size_t block_size = 0);

/// Aggregates of one (instance, algorithm) grid cell over its trials.
struct CellStats {
  RunningStat benefit;
  RunningStat decisions;
  std::uint64_t elements = 0;  // total elements processed across trials
};

/// An (instances × algorithms × trials) experiment grid.
struct GridSpec {
  /// cell_end sentinel: run every cell.
  static constexpr std::size_t kAllCells = ~static_cast<std::size_t>(0);

  std::vector<const Instance*> instances;
  std::vector<AlgSpec> algorithms;
  int trials = 1;
  std::uint64_t master_seed = 0x05e7facade5ULL;
  /// Arrivals per decide_batch block in the trial loop
  /// (0 = kDefaultDecideBlock).  Any value yields identical results —
  /// block stepping is decision-preserving — so this is a pure tuning
  /// knob.
  std::size_t block_size = 0;
  /// Contiguous slice [cell_begin, cell_end) of the row-major cell
  /// enumeration (cell = instance_idx * algorithms.size() + alg_idx) to
  /// execute — what a grid shard runs.  Seeds still derive from the
  /// GLOBAL coordinates through trial_seed(), so every cell's per-trial
  /// Rng stream is independent of the slice that executes it, and
  /// recombined shards are bit-identical to the full run.  The default
  /// (0, kAllCells) runs everything.
  std::size_t cell_begin = 0;
  std::size_t cell_end = kAllCells;
};

/// Runs the grid's [cell_begin, cell_end) slice on `runner`; the result
/// holds one CellStats per executed cell in slice order, so the full-grid
/// default puts cell (i, a) at index i * algorithms.size() + a.
/// Deterministic for any worker count.
std::vector<CellStats> run_grid(const BatchRunner& runner,
                                const GridSpec& spec);

}  // namespace osp::engine
