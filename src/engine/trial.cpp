#include "engine/trial.hpp"

#include "engine/batch_runner.hpp"
#include "util/require.hpp"

namespace osp::engine {

std::uint64_t trial_seed(std::uint64_t master_seed, std::size_t instance_idx,
                         std::size_t alg_idx, std::uint64_t trial) {
  // Feed the coordinates through SplitMix64 one at a time; each call
  // advances the state, so (i, a, t) and (a, i, t) produce unrelated
  // seeds and no coordinate can cancel another.
  std::uint64_t state = master_seed;
  splitmix64(state);
  state ^= 0x9e3779b97f4a7c15ULL * (instance_idx + 1);
  splitmix64(state);
  state ^= 0xbf58476d1ce4e5b9ULL * (alg_idx + 1);
  splitmix64(state);
  state ^= trial;
  return splitmix64(state);
}

TrialResult run_play_trial(const Instance& inst, const AlgSpec& alg,
                           std::uint64_t seed, TrialContext& ctx,
                           std::size_t block_size) {
  OSP_REQUIRE(alg.make != nullptr);
  std::unique_ptr<OnlineAlgorithm> policy = alg.make(Rng(seed));
  OSP_REQUIRE(policy != nullptr);
  Outcome out = play_flat_blocks(inst, *policy, ctx.scratch, block_size);
  return TrialResult{out.benefit, out.decisions, out.completed.size()};
}

TrialResult run_play_trial_cached(const Instance& inst, const AlgSpec& alg,
                                  std::size_t alg_idx, std::uint64_t seed,
                                  TrialContext& ctx,
                                  std::size_t block_size) {
  OSP_REQUIRE(alg.make != nullptr);
  if (ctx.alg_cache.size() <= alg_idx) ctx.alg_cache.resize(alg_idx + 1);
  std::unique_ptr<OnlineAlgorithm>& policy = ctx.alg_cache[alg_idx];
  if (policy != nullptr && policy->reseedable()) {
    // Decision-identical to fresh construction (reseed() contract), but
    // the policy's internal arrays survive — the engine's start() resizes
    // them in place, so the whole trial allocates nothing.
    policy->reseed(Rng(seed));
  } else {
    policy = alg.make(Rng(seed));
    OSP_REQUIRE(policy != nullptr);
  }
  Outcome out = play_flat_blocks(inst, *policy, ctx.scratch, block_size);
  return TrialResult{out.benefit, out.decisions, out.completed.size()};
}

std::vector<CellStats> run_grid(const BatchRunner& runner,
                                const GridSpec& spec) {
  OSP_REQUIRE(spec.trials >= 1);
  const std::size_t num_algs = spec.algorithms.size();
  const std::size_t trials = static_cast<std::size_t>(spec.trials);
  const std::size_t total_cells = spec.instances.size() * num_algs;
  const std::size_t begin = spec.cell_begin;
  const std::size_t end =
      spec.cell_end == GridSpec::kAllCells ? total_cells : spec.cell_end;
  OSP_REQUIRE_MSG(begin <= end && end <= total_cells,
                  "grid cell slice [" << begin << ", " << end
                                      << ") does not fit a grid of "
                                      << total_cells << " cells");
  const std::size_t active = end - begin;
  const std::size_t total = active * trials;

  // Flat trial index -> (cell, trial); trial varies fastest so
  // neighbouring indices share an instance and stay cache-warm.  The
  // (instance, algorithm) coordinates and the seed come from the GLOBAL
  // cell index, so a slice computes exactly what the full run computes
  // for those cells.
  auto results = runner.map<TrialResult>(
      total, [&](std::size_t idx, TrialContext& ctx) {
        const std::size_t t = idx % trials;
        const std::size_t cell = begin + idx / trials;
        const std::size_t a = cell % num_algs;
        const std::size_t i = cell / num_algs;
        return run_play_trial_cached(*spec.instances[i], spec.algorithms[a],
                                     a,
                                     trial_seed(spec.master_seed, i, a, t),
                                     ctx, spec.block_size);
      });

  // Serial aggregation in index order: deterministic for any thread count.
  std::vector<CellStats> cells(active);
  for (std::size_t idx = 0; idx < total; ++idx) {
    const std::size_t local = idx / trials;
    const std::size_t i = (begin + local) / num_algs;
    CellStats& cell = cells[local];
    cell.benefit.add(results[idx].benefit);
    cell.decisions.add(static_cast<double>(results[idx].decisions));
    cell.elements += spec.instances[i]->num_elements();
  }
  return cells;
}

}  // namespace osp::engine
