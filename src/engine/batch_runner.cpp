#include "engine/batch_runner.hpp"

#include <cstdlib>

namespace osp::engine {

std::size_t resolve_num_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("OSP_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

const BatchRunner& shared_runner() {
  static const BatchRunner runner{BatchOptions{}};
  return runner;
}

}  // namespace osp::engine
