// Multi-threaded batch runner shared by every experiment binary.
//
// The seed repo duplicated a serial trial loop in all thirteen benches;
// this runner centralizes it: a pool of workers pulls trial indices from
// an atomic counter and writes results into a preallocated, index-ordered
// vector, so the output is bit-identical for any thread count (results
// never depend on scheduling, and all randomness is seeded per trial from
// grid coordinates — see trial.hpp).  Each worker owns a TrialContext
// whose engine scratch persists across trials, keeping the steady state
// allocation-free; the trial bodies drive the block-stepped engine
// (decide_batch over CSR arrival blocks), so each worker amortizes the
// decision dispatch over whole blocks as well.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/trial.hpp"

namespace osp::engine {

struct BatchOptions {
  /// Worker count; 0 means use the hardware concurrency (overridable via
  /// the OSP_THREADS environment variable, useful on shared CI boxes).
  std::size_t num_threads = 0;
};

/// Resolves `requested` (0 = auto) against the hardware and OSP_THREADS.
std::size_t resolve_num_threads(std::size_t requested);

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {})
      : num_threads_(resolve_num_threads(options.num_threads)) {}

  std::size_t num_threads() const { return num_threads_; }

  /// Evaluates fn(index, ctx) for every index in [0, count), in parallel,
  /// and returns the results in index order.  `Result` must be default-
  /// constructible and move-assignable.  The first exception thrown by any
  /// trial is rethrown on the caller's thread after all workers join.
  template <class Result, class Fn>
  std::vector<Result> map(std::size_t count, Fn&& fn) const {
    std::vector<Result> results(count);
    if (count == 0) return results;

    const std::size_t workers =
        std::min<std::size_t>(num_threads_, count);
    if (workers <= 1) {
      TrialContext ctx;
      for (std::size_t i = 0; i < count; ++i) results[i] = fn(i, ctx);
      return results;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&](std::size_t thread_index) {
      TrialContext ctx;
      ctx.thread_index = thread_index;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          results[i] = fn(i, ctx);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          // Drain remaining indices quickly: park the counter at the end.
          next.store(count, std::memory_order_relaxed);
          return;
        }
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
      threads.emplace_back(worker, t);
    for (auto& th : threads) th.join();
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

 private:
  std::size_t num_threads_;
};

/// Process-wide default runner (hardware threads); what bench_common and
/// the router benches use so every binary shares one configuration.
const BatchRunner& shared_runner();

}  // namespace osp::engine
