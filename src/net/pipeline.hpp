// Distributed multi-switch pipeline.
//
// Packets traverse a path of switches, one hop per slot, no buffering;
// each switch runs its OWN policy instance and sees only its local
// contention — the distributed setting of Section 1.  With HashedRandPr
// sharing one hash function, all switches assign identical priorities to
// a packet without any coordination (the paper's Section 3.1 observation);
// with independent randomness per switch, consistency breaks.  The gap is
// measured in bench_ablation.
#pragma once

#include <functional>
#include <memory>

#include "core/algorithm.hpp"
#include "gen/multihop.hpp"

namespace osp {

/// Aggregate counters of one pipeline run.
struct PipelineStats {
  std::size_t packets_total = 0;
  std::size_t packets_delivered = 0;  // won the link at every hop
  Weight value_total = 0;
  Weight value_delivered = 0;

  double delivery_rate() const {
    return packets_total > 0
               ? static_cast<double>(packets_delivered) /
                     static_cast<double>(packets_total)
               : 0.0;
  }
};

/// Creates the policy instance for one switch (switch id passed in, so a
/// factory can share state — e.g. one hash function — across switches).
using SwitchPolicyFactory =
    std::function<std::unique_ptr<OnlineAlgorithm>(std::size_t switch_id)>;

/// Runs the workload through the pipeline.  At each (time, hop) pair the
/// packets present compete for `link_capacity` slots, decided by that
/// switch's policy; losers are dropped on the spot.
PipelineStats simulate_pipeline(const MultiHopWorkload& workload,
                                std::size_t num_switches,
                                const SwitchPolicyFactory& make_policy,
                                Capacity link_capacity = 1);

}  // namespace osp
