#include "net/queue.hpp"

namespace osp {

PacketQueue::PacketQueue()
    : serve_(ServeOrder{this}), evict_(EvictOrder{this}) {}

void PacketQueue::reset(std::size_t num_frames) {
  serve_.clear();
  evict_.clear();
  frame_.clear();
  rank_.clear();
  seq_.clear();
  free_.clear();
  dead_.assign(num_frames, 0);
  live_count_.assign(num_frames, 0);
  stale_ = 0;
}

void PacketQueue::reserve(std::size_t packets) {
  frame_.reserve(packets);
  rank_.reserve(packets);
  seq_.reserve(packets);
  free_.reserve(packets);
  serve_.reserve(packets);
  evict_.reserve(packets);
}

std::uint32_t PacketQueue::push(SetId frame, double rank, std::uint64_t seq) {
  OSP_REQUIRE_MSG(frame < dead_.size(), "unknown frame " << frame);
  std::uint32_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    frame_[id] = frame;
    rank_[id] = rank;
    seq_[id] = seq;
  } else {
    id = static_cast<std::uint32_t>(frame_.size());
    frame_.push_back(frame);
    rank_.push_back(rank);
    seq_.push_back(seq);
  }
  serve_.push(id);
  evict_.push(id);
  if (dead_[frame]) {
    ++stale_;  // a packet of a dead frame is born lazily deleted
  } else {
    ++live_count_[frame];
  }
  return id;
}

template <class Primary, class Secondary>
bool PacketQueue::pop_from(Primary& primary, Secondary& secondary,
                           SetId* frame, std::uint64_t* seq) {
  while (!primary.empty()) {
    const std::uint32_t id = primary.pop();
    secondary.erase(id);
    const SetId f = frame_[id];
    const std::uint64_t s = seq_[id];
    release(id);
    if (dead_[f]) {  // lazy deletion: already written off by kill_frame
      --stale_;
      continue;
    }
    --live_count_[f];
    *frame = f;
    if (seq != nullptr) *seq = s;
    return true;
  }
  return false;
}

bool PacketQueue::pop_best(SetId* frame, std::uint64_t* seq) {
  return pop_from(serve_, evict_, frame, seq);
}

bool PacketQueue::pop_worst(SetId* frame, std::uint64_t* seq) {
  return pop_from(evict_, serve_, frame, seq);
}

std::size_t PacketQueue::kill_frame(SetId frame) {
  OSP_REQUIRE_MSG(frame < dead_.size(), "unknown frame " << frame);
  if (dead_[frame]) return 0;
  dead_[frame] = 1;
  const std::size_t queued = live_count_[frame];
  live_count_[frame] = 0;
  stale_ += queued;
  return queued;
}

void PacketQueue::update_rank(std::uint32_t handle, double rank) {
  OSP_REQUIRE_MSG(serve_.contains(handle),
                  "updating absent packet handle " << handle);
  rank_[handle] = rank;
  serve_.update(handle);
  evict_.update(handle);
}

}  // namespace osp
