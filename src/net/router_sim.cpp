#include "net/router_sim.hpp"

#include <algorithm>
#include <cassert>

#include "core/priority.hpp"
#include "util/require.hpp"

namespace osp {

namespace {

void frame_metas(const FrameSchedule& schedule, std::vector<SetMeta>& metas) {
  metas.clear();
  metas.reserve(schedule.frames.size());
  for (const Frame& f : schedule.frames)
    metas.push_back(SetMeta{f.weight, f.packet_slots.size()});
}

std::vector<SetMeta> frame_metas(const FrameSchedule& schedule) {
  std::vector<SetMeta> metas;
  frame_metas(schedule, metas);
  return metas;
}

void build_slot_frames(const FrameSchedule& schedule,
                       std::vector<std::vector<SetId>>& slot_frames) {
  if (slot_frames.size() < schedule.horizon)
    slot_frames.resize(schedule.horizon);
  for (std::size_t slot = 0; slot < schedule.horizon; ++slot)
    slot_frames[slot].clear();
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi)
    for (std::size_t slot : schedule.frames[fi].packet_slots)
      slot_frames[slot].push_back(static_cast<SetId>(fi));
}

void tally_frames(const FrameSchedule& schedule,
                  const std::vector<std::size_t>& served_per_frame,
                  RouterStats& stats) {
  stats.frames_total = schedule.frames.size();
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi) {
    stats.value_total += schedule.frames[fi].weight;
    if (served_per_frame[fi] == schedule.frames[fi].packet_slots.size()) {
      ++stats.frames_delivered;
      stats.value_delivered += schedule.frames[fi].weight;
    }
  }
}

}  // namespace

RouterStats simulate_router(const FrameSchedule& schedule,
                            OnlineAlgorithm& alg, Capacity service_rate) {
  OSP_REQUIRE(service_rate >= 1);
  schedule.validate();
  alg.start(frame_metas(schedule));

  // Frames with a packet in each slot.
  std::vector<std::vector<SetId>> slot_frames(schedule.horizon);
  build_slot_frames(schedule, slot_frames);

  RouterStats stats;
  std::vector<std::size_t> served(schedule.frames.size(), 0);
  std::vector<SetId> chosen(service_rate);  // reusable decision buffer
  ElementId element = 0;
  for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
    auto& burst = slot_frames[slot];
    if (burst.empty()) continue;
    // Bursts are built by ascending frame id, so they arrive sorted — the
    // per-slot sort the seed simulator did here was pure waste.
    assert(std::is_sorted(burst.begin(), burst.end()));
    stats.packets_arrived += burst.size();

    std::size_t n = alg.decide(element++, service_rate, burst.data(),
                               burst.size(), chosen.data());
    OSP_REQUIRE(n <= service_rate);
    for (std::size_t i = 0; i < n; ++i) {
      SetId f = chosen[i];
      OSP_REQUIRE(std::binary_search(burst.begin(), burst.end(), f));
      ++served[f];
      ++stats.packets_served;
    }
    stats.packets_dropped += burst.size() - n;
  }
  tally_frames(schedule, served, stats);
  return stats;
}

void RandPrRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  // Weights were validated positive by FrameSchedule::validate(); a
  // non-positive weight reaching sample_rw_key throws rather than being
  // silently clamped.
  for (std::size_t f = 0; f < frames.size(); ++f)
    ranks_[f] = sample_rw_key(frames[f].weight, rng_).key;
}

void WeightRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ranks_[f] = frames[f].weight;
}

void RandomRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  for (double& r : ranks_) r = rng_.uniform();
}

RouterStats simulate_buffered_router(const FrameSchedule& schedule,
                                     FrameRanker& ranker,
                                     const BufferedRouterParams& params,
                                     BufferedRouterScratch* scratch,
                                     RouterTrace* trace) {
  OSP_REQUIRE(params.service_rate >= 1);
  schedule.validate();
  if (trace != nullptr) trace->served.clear();

  BufferedRouterScratch local;
  BufferedRouterScratch& s = scratch != nullptr ? *scratch : local;
  frame_metas(schedule, s.metas);
  ranker.start(s.metas);
  build_slot_frames(schedule, s.slot_frames);
  s.served.assign(schedule.frames.size(), 0);
  PacketQueue& queue = s.queue;
  queue.reset(schedule.frames.size());

  RouterStats stats;
  std::uint64_t seq = 0;
  for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
    // Arrivals.  A packet of a frame already known dead is refused on the
    // spot: it can never contribute value, so it must not consume buffer
    // space or link capacity.
    for (SetId f : s.slot_frames[slot]) {
      ++stats.packets_arrived;
      const std::uint64_t arrival = seq++;
      if (params.drop_dead_frames && queue.is_dead(f)) {
        ++stats.packets_dropped;
        continue;
      }
      queue.push(f, ranker.rank(f), arrival);
    }

    // Serve the best live packets; dead packets never consume capacity
    // (the queue discards them lazily during the pop).
    for (Capacity i = 0; i < params.service_rate; ++i) {
      SetId f;
      std::uint64_t packet_seq;
      if (!queue.pop_best(&f, &packet_seq)) break;
      ++s.served[f];
      ++stats.packets_served;
      if (trace != nullptr)
        trace->served.push_back(RouterTrace::Served{slot, f, packet_seq});
    }

    // Trim to the buffer: evict the worst live packet until everything
    // fits.  Every eviction kills its frame; with drop_dead_frames the
    // rest of that frame's packets are written off with it (lazy
    // deletion), often ending the trim early — the buffer keeps only
    // packets that can still pay off.
    while (queue.live_size() > params.buffer_size) {
      SetId f;
      queue.pop_worst(&f);
      ++stats.packets_dropped;
      if (params.drop_dead_frames)
        stats.packets_dropped += queue.kill_frame(f);
    }
  }
  // Packets still queued at the end of the horizon never made it out
  // (lazily deleted ones were already counted when their frame died).
  stats.packets_dropped += queue.live_size();

  tally_frames(schedule, s.served, stats);
  return stats;
}

RouterStats simulate_buffered_router_reference(
    const FrameSchedule& schedule, FrameRanker& ranker,
    const BufferedRouterParams& params, RouterTrace* trace) {
  OSP_REQUIRE(params.service_rate >= 1);
  schedule.validate();
  if (trace != nullptr) trace->served.clear();
  ranker.start(frame_metas(schedule));

  std::vector<std::vector<SetId>> slot_frames(schedule.horizon);
  build_slot_frames(schedule, slot_frames);

  struct QueuedPacket {
    SetId frame;
    double rank;
    std::uint64_t seq;  // global arrival order, for FIFO tie-breaking
  };

  RouterStats stats;
  std::vector<std::size_t> served(schedule.frames.size(), 0);
  std::vector<bool> dead(schedule.frames.size(), false);
  std::vector<QueuedPacket> queue;  // survivors waiting for the link
  std::uint64_t seq = 0;

  for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
    for (SetId f : slot_frames[slot]) {
      ++stats.packets_arrived;
      const std::uint64_t arrival = seq++;
      if (params.drop_dead_frames && dead[f]) {
        ++stats.packets_dropped;
        continue;
      }
      queue.push_back(QueuedPacket{f, ranker.rank(f), arrival});
    }
    if (queue.empty()) continue;

    // (rank desc, seq asc) — the queue never holds a dead packet in
    // drop_dead_frames mode, so the (live, rank, seq) order of the model
    // reduces to this.
    std::sort(queue.begin(), queue.end(),
              [](const QueuedPacket& a, const QueuedPacket& b) {
                if (a.rank != b.rank) return a.rank > b.rank;
                return a.seq < b.seq;
              });

    // Serve the head of the ordered queue.
    std::size_t to_serve =
        std::min<std::size_t>(params.service_rate, queue.size());
    for (std::size_t i = 0; i < to_serve; ++i) {
      ++served[queue[i].frame];
      ++stats.packets_served;
      if (trace != nullptr)
        trace->served.push_back(
            RouterTrace::Served{slot, queue[i].frame, queue[i].seq});
    }
    queue.erase(queue.begin(),
                queue.begin() + static_cast<std::ptrdiff_t>(to_serve));

    // Trim to the buffer from the tail; in drop_dead_frames mode an
    // overflow drop kills its frame and evicts the frame's other queued
    // packets with it.
    while (queue.size() > params.buffer_size) {
      const QueuedPacket worst = queue.back();
      queue.pop_back();
      ++stats.packets_dropped;
      if (!params.drop_dead_frames) continue;
      dead[worst.frame] = true;
      auto doomed = std::remove_if(queue.begin(), queue.end(),
                                   [&](const QueuedPacket& p) {
                                     return p.frame == worst.frame;
                                   });
      stats.packets_dropped +=
          static_cast<std::size_t>(queue.end() - doomed);
      queue.erase(doomed, queue.end());
    }
  }
  // Packets still queued at the end of the horizon never made it out.
  stats.packets_dropped += queue.size();
  queue.clear();

  tally_frames(schedule, served, stats);
  return stats;
}

}  // namespace osp
