#include "net/router_sim.hpp"

#include <algorithm>

#include "core/priority.hpp"
#include "util/require.hpp"

namespace osp {

namespace {

std::vector<SetMeta> frame_metas(const FrameSchedule& schedule) {
  std::vector<SetMeta> metas;
  metas.reserve(schedule.frames.size());
  for (const Frame& f : schedule.frames)
    metas.push_back(SetMeta{f.weight, f.packet_slots.size()});
  return metas;
}

void tally_frames(const FrameSchedule& schedule,
                  const std::vector<std::size_t>& served_per_frame,
                  RouterStats& stats) {
  stats.frames_total = schedule.frames.size();
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi) {
    stats.value_total += schedule.frames[fi].weight;
    if (served_per_frame[fi] == schedule.frames[fi].packet_slots.size()) {
      ++stats.frames_delivered;
      stats.value_delivered += schedule.frames[fi].weight;
    }
  }
}

}  // namespace

RouterStats simulate_router(const FrameSchedule& schedule,
                            OnlineAlgorithm& alg, Capacity service_rate) {
  OSP_REQUIRE(service_rate >= 1);
  schedule.validate();
  alg.start(frame_metas(schedule));

  // Frames with a packet in each slot.
  std::vector<std::vector<SetId>> slot_frames(schedule.horizon);
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi)
    for (std::size_t slot : schedule.frames[fi].packet_slots)
      slot_frames[slot].push_back(static_cast<SetId>(fi));

  RouterStats stats;
  std::vector<std::size_t> served(schedule.frames.size(), 0);
  std::vector<SetId> chosen(service_rate);  // reusable decision buffer
  ElementId element = 0;
  for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
    auto& burst = slot_frames[slot];
    if (burst.empty()) continue;
    std::sort(burst.begin(), burst.end());
    stats.packets_arrived += burst.size();

    std::size_t n = alg.decide(element++, service_rate, burst.data(),
                               burst.size(), chosen.data());
    OSP_REQUIRE(n <= service_rate);
    for (std::size_t i = 0; i < n; ++i) {
      SetId f = chosen[i];
      OSP_REQUIRE(std::binary_search(burst.begin(), burst.end(), f));
      ++served[f];
      ++stats.packets_served;
    }
    stats.packets_dropped += burst.size() - n;
  }
  tally_frames(schedule, served, stats);
  return stats;
}

void RandPrRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ranks_[f] =
        sample_rw_key(std::max(frames[f].weight, 1e-12), rng_).key;
}

void WeightRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ranks_[f] = frames[f].weight;
}

void RandomRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  for (double& r : ranks_) r = rng_.uniform();
}

RouterStats simulate_buffered_router(const FrameSchedule& schedule,
                                     FrameRanker& ranker,
                                     const BufferedRouterParams& params) {
  OSP_REQUIRE(params.service_rate >= 1);
  schedule.validate();
  ranker.start(frame_metas(schedule));

  std::vector<std::vector<SetId>> slot_frames(schedule.horizon);
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi)
    for (std::size_t slot : schedule.frames[fi].packet_slots)
      slot_frames[slot].push_back(static_cast<SetId>(fi));

  struct QueuedPacket {
    SetId frame;
    std::uint64_t seq;  // global arrival order, for FIFO tie-breaking
  };

  RouterStats stats;
  std::vector<std::size_t> served(schedule.frames.size(), 0);
  std::vector<bool> dead(schedule.frames.size(), false);
  std::vector<QueuedPacket> queue;  // survivors waiting for the link
  std::uint64_t seq = 0;

  for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
    for (SetId f : slot_frames[slot]) {
      queue.push_back(QueuedPacket{f, seq++});
      ++stats.packets_arrived;
    }
    if (queue.empty()) continue;

    // Order: live frames before dead ones (when enabled), then rank
    // descending, then FIFO.
    std::sort(queue.begin(), queue.end(),
              [&](const QueuedPacket& a, const QueuedPacket& b) {
                if (params.drop_dead_frames && dead[a.frame] != dead[b.frame])
                  return !dead[a.frame];
                double ra = ranker.rank(a.frame), rb = ranker.rank(b.frame);
                if (ra != rb) return ra > rb;
                return a.seq < b.seq;
              });

    // Serve the head of the ordered queue.
    std::size_t to_serve = std::min<std::size_t>(params.service_rate,
                                                 queue.size());
    for (std::size_t i = 0; i < to_serve; ++i) {
      ++served[queue[i].frame];
      ++stats.packets_served;
    }
    queue.erase(queue.begin(),
                queue.begin() + static_cast<std::ptrdiff_t>(to_serve));

    // Keep up to buffer_size survivors; the rest are dropped, and every
    // dropped packet kills its frame.
    if (queue.size() > params.buffer_size) {
      for (std::size_t i = params.buffer_size; i < queue.size(); ++i) {
        dead[queue[i].frame] = true;
        ++stats.packets_dropped;
      }
      queue.resize(params.buffer_size);
    }
  }
  // Packets still queued at the end of the horizon never made it out.
  stats.packets_dropped += queue.size();
  for (const auto& qp : queue) dead[qp.frame] = true;
  queue.clear();

  tally_frames(schedule, served, stats);
  return stats;
}

}  // namespace osp
