#include "net/router_sim.hpp"

#include <algorithm>
#include <cassert>

#include "core/priority.hpp"
#include "util/require.hpp"

namespace osp {

namespace {

void frame_metas(const FrameSchedule& schedule, std::vector<SetMeta>& metas) {
  metas.clear();
  metas.reserve(schedule.frames.size());
  for (const Frame& f : schedule.frames)
    metas.push_back(SetMeta{f.weight, f.packet_slots.size()});
}

std::vector<SetMeta> frame_metas(const FrameSchedule& schedule) {
  std::vector<SetMeta> metas;
  frame_metas(schedule, metas);
  return metas;
}

// Packs every slot's arrival burst into one CSR row (ascending frame id,
// matching arrival order): a counting pass sizes the rows in place, then a
// scatter pass fills them — two contiguous sweeps, no per-slot vectors,
// and zero allocations when the scratch is warm.
void build_slot_frames(const FrameSchedule& schedule,
                       CsrArray<SetId>& slot_frames,
                       std::vector<std::size_t>& sizes,
                       std::vector<std::size_t>& fill) {
  sizes.assign(schedule.horizon, 0);
  for (const Frame& f : schedule.frames)
    for (std::size_t slot : f.packet_slots) ++sizes[slot];
  slot_frames.assign_sizes(sizes.data(), sizes.size());
  fill.assign(schedule.horizon, 0);
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi)
    for (std::size_t slot : schedule.frames[fi].packet_slots)
      slot_frames.mutable_row(slot)[fill[slot]++] = static_cast<SetId>(fi);
}

void tally_frames(const FrameSchedule& schedule,
                  const std::vector<std::size_t>& served_per_frame,
                  RouterStats& stats) {
  stats.frames_total = schedule.frames.size();
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi) {
    stats.value_total += schedule.frames[fi].weight;
    if (served_per_frame[fi] == schedule.frames[fi].packet_slots.size()) {
      ++stats.frames_delivered;
      stats.value_delivered += schedule.frames[fi].weight;
    }
  }
}

}  // namespace

RouterStats simulate_router(const FrameSchedule& schedule,
                            OnlineAlgorithm& alg, Capacity service_rate) {
  OSP_REQUIRE(service_rate >= 1);
  schedule.validate();
  alg.start(frame_metas(schedule));

  // Pack the non-empty bursts into one CSR array up front: row e is the
  // e-th non-empty slot, exactly the element numbering of the paper's
  // reduction (to_instance skips empty slots too).  A counting pass sizes
  // the compact rows, a scatter pass fills them in ascending frame id —
  // the order the packets arrive in.
  const std::size_t horizon = schedule.horizon;
  std::vector<std::size_t> sizes(horizon, 0);
  for (const Frame& f : schedule.frames)
    for (std::size_t slot : f.packet_slots) ++sizes[slot];

  std::vector<std::size_t> row_of(horizon, 0);
  std::vector<std::size_t> compact_sizes;
  for (std::size_t slot = 0; slot < horizon; ++slot) {
    if (sizes[slot] == 0) continue;
    row_of[slot] = compact_sizes.size();
    compact_sizes.push_back(sizes[slot]);
  }

  CsrArray<SetId> bursts;
  bursts.assign_sizes(compact_sizes.data(), compact_sizes.size());
  std::vector<std::size_t> fill(compact_sizes.size(), 0);
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi)
    for (std::size_t slot : schedule.frames[fi].packet_slots) {
      const std::size_t r = row_of[slot];
      bursts.mutable_row(r)[fill[r]++] = static_cast<SetId>(fi);
    }

  RouterStats stats;
  stats.packets_arrived = bursts.total_values();
  std::vector<std::size_t> served(schedule.frames.size(), 0);

  // Feed the whole run to decide_batch in arrival blocks; each block's
  // packed choices are then validated and tallied per slot under the same
  // rules the per-element path enforced.  Every slot has the same
  // capacity, so one block-sized constant array serves all blocks.
  const std::size_t num_rows = bursts.num_rows();
  const std::vector<Capacity> capacities(
      std::min(num_rows, kDefaultDecideBlock), service_rate);
  BlockScratch scratch;
  BlockChoices choices;
  for (std::size_t base = 0; base < num_rows; base += kDefaultDecideBlock) {
    const std::size_t count = std::min(kDefaultDecideBlock, num_rows - base);
    const ArrivalBlock block{static_cast<ElementId>(base), count,
                             capacities.data(), bursts.values().data(),
                             bursts.offsets().data() + base};
    alg.decide_batch(block, scratch, choices);
    for (std::size_t i = 0; i < count; ++i) {
      const Span<SetId> burst = block.candidate_span(i);
      assert(std::is_sorted(burst.begin(), burst.end()));
      const std::size_t n = choices.num_chosen(i);
      OSP_REQUIRE(n <= service_rate);
      for (std::size_t j = 0; j < n; ++j) {
        SetId f = choices.chosen_of(i)[j];
        OSP_REQUIRE(std::binary_search(burst.begin(), burst.end(), f));
        ++served[f];
        ++stats.packets_served;
      }
      stats.packets_dropped += burst.size() - n;
    }
  }
  tally_frames(schedule, served, stats);
  return stats;
}

void RandPrRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  // Weights were validated positive by FrameSchedule::validate(); a
  // non-positive weight reaching sample_rw_key throws rather than being
  // silently clamped.
  for (std::size_t f = 0; f < frames.size(); ++f)
    ranks_[f] = sample_rw_key(frames[f].weight, rng_).key;
}

void WeightRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f)
    ranks_[f] = frames[f].weight;
}

void RandomRanker::start(const std::vector<SetMeta>& frames) {
  ranks_.resize(frames.size());
  for (double& r : ranks_) r = rng_.uniform();
}

RouterStats simulate_buffered_router(const FrameSchedule& schedule,
                                     FrameRanker& ranker,
                                     const BufferedRouterParams& params,
                                     BufferedRouterScratch* scratch,
                                     RouterTrace* trace) {
  OSP_REQUIRE(params.service_rate >= 1);
  schedule.validate();
  if (trace != nullptr) trace->served.clear();

  BufferedRouterScratch local;
  BufferedRouterScratch& s = scratch != nullptr ? *scratch : local;
  frame_metas(schedule, s.metas);
  ranker.start(s.metas);
  build_slot_frames(schedule, s.slot_frames, s.burst_sizes, s.fill);
  s.served.assign(schedule.frames.size(), 0);
  PacketQueue& queue = s.queue;
  queue.reset(schedule.frames.size());

  RouterStats stats;
  std::uint64_t seq = 0;
  for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
    // Arrivals: the slot's whole burst is one contiguous CSR row.  A
    // packet of a frame already known dead is refused on the spot: it can
    // never contribute value, so it must not consume buffer space or link
    // capacity.
    for (SetId f : s.slot_frames.row(slot)) {
      ++stats.packets_arrived;
      const std::uint64_t arrival = seq++;
      if (params.drop_dead_frames && queue.is_dead(f)) {
        ++stats.packets_dropped;
        continue;
      }
      queue.push(f, ranker.rank(f), arrival);
    }

    // Serve the best live packets; dead packets never consume capacity
    // (the queue discards them lazily during the pop).
    for (Capacity i = 0; i < params.service_rate; ++i) {
      SetId f;
      std::uint64_t packet_seq;
      if (!queue.pop_best(&f, &packet_seq)) break;
      ++s.served[f];
      ++stats.packets_served;
      if (trace != nullptr)
        trace->served.push_back(RouterTrace::Served{slot, f, packet_seq});
    }

    // Trim to the buffer: evict the worst live packet until everything
    // fits.  Every eviction kills its frame; with drop_dead_frames the
    // rest of that frame's packets are written off with it (lazy
    // deletion), often ending the trim early — the buffer keeps only
    // packets that can still pay off.
    while (queue.live_size() > params.buffer_size) {
      SetId f;
      queue.pop_worst(&f);
      ++stats.packets_dropped;
      if (params.drop_dead_frames)
        stats.packets_dropped += queue.kill_frame(f);
    }
  }
  // Packets still queued at the end of the horizon never made it out
  // (lazily deleted ones were already counted when their frame died).
  stats.packets_dropped += queue.live_size();

  tally_frames(schedule, s.served, stats);
  return stats;
}

RouterStats simulate_buffered_router_reference(
    const FrameSchedule& schedule, FrameRanker& ranker,
    const BufferedRouterParams& params, RouterTrace* trace) {
  OSP_REQUIRE(params.service_rate >= 1);
  schedule.validate();
  if (trace != nullptr) trace->served.clear();
  ranker.start(frame_metas(schedule));

  CsrArray<SetId> slot_frames;
  std::vector<std::size_t> sizes, fill;
  build_slot_frames(schedule, slot_frames, sizes, fill);

  struct QueuedPacket {
    SetId frame;
    double rank;
    std::uint64_t seq;  // global arrival order, for FIFO tie-breaking
  };

  RouterStats stats;
  std::vector<std::size_t> served(schedule.frames.size(), 0);
  std::vector<bool> dead(schedule.frames.size(), false);
  std::vector<QueuedPacket> queue;  // survivors waiting for the link
  std::uint64_t seq = 0;

  for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
    for (SetId f : slot_frames.row(slot)) {
      ++stats.packets_arrived;
      const std::uint64_t arrival = seq++;
      if (params.drop_dead_frames && dead[f]) {
        ++stats.packets_dropped;
        continue;
      }
      queue.push_back(QueuedPacket{f, ranker.rank(f), arrival});
    }
    if (queue.empty()) continue;

    // (rank desc, seq asc) — the queue never holds a dead packet in
    // drop_dead_frames mode, so the (live, rank, seq) order of the model
    // reduces to this.
    std::sort(queue.begin(), queue.end(),
              [](const QueuedPacket& a, const QueuedPacket& b) {
                if (a.rank != b.rank) return a.rank > b.rank;
                return a.seq < b.seq;
              });

    // Serve the head of the ordered queue.
    std::size_t to_serve =
        std::min<std::size_t>(params.service_rate, queue.size());
    for (std::size_t i = 0; i < to_serve; ++i) {
      ++served[queue[i].frame];
      ++stats.packets_served;
      if (trace != nullptr)
        trace->served.push_back(
            RouterTrace::Served{slot, queue[i].frame, queue[i].seq});
    }
    queue.erase(queue.begin(),
                queue.begin() + static_cast<std::ptrdiff_t>(to_serve));

    // Trim to the buffer from the tail; in drop_dead_frames mode an
    // overflow drop kills its frame and evicts the frame's other queued
    // packets with it.
    while (queue.size() > params.buffer_size) {
      const QueuedPacket worst = queue.back();
      queue.pop_back();
      ++stats.packets_dropped;
      if (!params.drop_dead_frames) continue;
      dead[worst.frame] = true;
      auto doomed = std::remove_if(queue.begin(), queue.end(),
                                   [&](const QueuedPacket& p) {
                                     return p.frame == worst.frame;
                                   });
      stats.packets_dropped +=
          static_cast<std::size_t>(queue.end() - doomed);
      queue.erase(doomed, queue.end());
    }
  }
  // Packets still queued at the end of the horizon never made it out.
  stats.packets_dropped += queue.size();
  queue.clear();

  tally_frames(schedule, served, stats);
  return stats;
}

}  // namespace osp

// Self-registering RankerRegistry entries: the rankers live here, so
// their registrations do too (one file to add a ranker, like policies).
// The registered names are the rankers' display names — the keys the
// router benches' tables and BENCH_router.json rows use.
#include "api/ranker_registry.hpp"

namespace osp::api {

// Anchor referenced from rankers() so a static-library link can never
// drop this translation unit (and with it the registrars below).
void link_router_rankers() {}

namespace {

RankerRegistrar rk_randpr{
    {"randPr", "persistent random R_w frame priorities (the paper's policy)",
     {"randpr"},
     /*randomized=*/true,
     [](Rng rng) { return std::make_unique<RandPrRanker>(rng); }}};
RankerRegistrar rk_weight{
    {"by-weight", "deterministic: protect the heaviest frames",
     {},
     /*randomized=*/false,
     [](Rng) { return std::make_unique<WeightRanker>(); }}};
RankerRegistrar rk_fifo{
    {"drop-tail", "no preference: later arrivals lose (classic drop-tail)",
     {},
     /*randomized=*/false,
     [](Rng) { return std::make_unique<FifoRanker>(); }}};
RankerRegistrar rk_random{
    {"random-drop", "uniform random priorities regardless of weight",
     {"random"},
     /*randomized=*/true,
     [](Rng rng) { return std::make_unique<RandomRanker>(rng); }}};

}  // namespace
}  // namespace osp::api
