// Sustained multi-link serving runtime — the event-machine layer over the
// slot-stepped router primitives.
//
// Where simulate_buffered_router plays one link for one short trial, this
// runtime serves K links concurrently for a long horizon: streams are
// partitioned across links (stream s lands on link s mod K), every link
// runs the buffered-router slot semantics (arrivals -> serve -> trim)
// on its own PacketQueue, and a work-conserving allocator lends a link's
// spare service capacity to backlogged neighbours each slot.  Frame drop
// priorities come from the same FrameRanker oracles the RankerRegistry
// enumerates, so every registered ranker is a sustained drop policy with
// no code change.
//
// Determinism contract (the shard/merge discipline, applied to threads):
// all randomness is consumed serially before workers start — the ranker
// is started once on the frame metas, packet seq numbers are assigned in
// canonical arrival order (slot-major, frame id ascending — the same
// global order the single-link router uses), and the spare-capacity
// allocation is a pure function of the per-link backlog vector.  Workers
// only ever touch the links (and therefore streams) they own, and they
// synchronise on a per-slot barrier between the ingest and serve phases,
// so the run's decisions depend on (seed, spec) alone — not on the worker
// count and not on thread scheduling.  serve_sustained_reference is the
// independent sorted-vector implementation of the same semantics; stats
// and trace identity against it across worker counts is the equivalence
// oracle (test_serve.cpp), mirroring the heap-vs-sort cross-check of the
// batch router.
//
// FrameRanker::rank() is called concurrently from workers after the
// serial start(); every registered ranker satisfies this (rank() is a
// const vector lookup once start() has run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gen/schedule.hpp"
#include "net/router_sim.hpp"
#include "net/serve_metrics.hpp"

namespace osp {

/// Configuration of a sustained run.  service_rate and buffer are per
/// link; capacity lending (work_conserving) never lets a link exceed its
/// own queue's backlog, so buffers stay strictly per-link.
struct ServeSpec {
  std::size_t links = 1;
  Capacity service_rate = 1;     // packets per link per slot
  std::size_t buffer = 0;        // waiting packets per link
  bool work_conserving = true;   // lend spare capacity to busy links
  bool drop_dead_frames = true;  // refuse/evict packets of dead frames
  std::size_t workers = 1;       // serving threads (1 = inline, no barrier)
  std::size_t window = 256;      // slots per goodput window
};

/// Steady-state counters of one sustained run.  Every field is a pure
/// function of (schedule, stream_of, ranker seed, spec-without-workers):
/// operator== across worker counts is the decision-identity check.
struct SustainedStats {
  RouterStats router;  // the batch router's aggregate counters

  // Drop taxonomy (each counted inside router.packets_dropped too):
  std::size_t refused_dead = 0;   // arrivals refused, frame already dead
  std::size_t evictions = 0;      // direct buffer-overflow evictions
  std::size_t cascade_drops = 0;  // write-offs when an eviction kills a frame
  std::size_t leftover = 0;       // still queued when the horizon ended

  // Slot latencies (arrival slot -> decision slot).  drop_latency samples
  // direct evictions only: refused arrivals never queued (latency 0 by
  // definition) and cascade write-offs are lazy deletions whose eviction
  // slot is the killing slot — both are counted above, not here.
  LatencyHistogram serve_latency;
  LatencyHistogram drop_latency;

  // starved_slots[s]: slots in which stream s had live queued packets yet
  // received no service.  A stream whose backlog was entirely evicted in
  // the slot is not starved — it has nothing left to serve.
  std::vector<std::uint64_t> starved_slots;

  // Sliding-window goodput ledger: frame value attributed to the window
  // of its last-packet arrival slot (offered) and of its completion slot
  // (delivered).  Sum(window_delivered) == router.value_delivered and
  // Sum(window_offered) == router.value_total by construction.
  std::vector<double> window_offered;
  std::vector<double> window_delivered;

  std::size_t streams_starved() const;
  std::uint64_t starved_slots_max() const;
  /// Mean / min over windows of delivered/offered (windows with zero
  /// offered value are skipped; 0 when no window offered anything).
  /// A window's ratio can exceed 1: a frame offered at the end of one
  /// window may complete — and deliver its value — early in the next.
  double window_goodput_mean() const;
  double window_goodput_min() const;
};

bool operator==(const SustainedStats& a, const SustainedStats& b);
inline bool operator!=(const SustainedStats& a, const SustainedStats& b) {
  return !(a == b);
}

/// Optional per-decision record of a sustained run, in canonical order
/// (slot, then link, then service order) regardless of worker count.
/// Trace equality + stats equality is full decision identity.
struct ServeTrace {
  struct Served {
    std::size_t slot = 0;
    std::size_t link = 0;
    SetId frame = 0;
    std::uint64_t seq = 0;  // global arrival index of the packet
  };
  std::vector<Served> served;
  // Per-slot totals across links: live backlog after arrivals, and
  // packets served.  Work conservation is the invariant
  //   slot_served[t] == min(links * service_rate, slot_backlog[t]).
  std::vector<std::size_t> slot_backlog;
  std::vector<std::size_t> slot_served;
};

inline bool operator==(const ServeTrace::Served& a,
                       const ServeTrace::Served& b) {
  return a.slot == b.slot && a.link == b.link && a.frame == b.frame &&
         a.seq == b.seq;
}

/// Runs the sustained runtime.  stream_of maps each frame to its stream
/// (empty = every frame is its own stream); stream ids must be < the
/// frame count.  Every frame must carry at least one packet.  With
/// spec.workers == 1 the slot loop runs inline on the calling thread;
/// otherwise spec.workers threads serve disjoint link ranges under the
/// per-slot barrier.  The result is identical either way.
SustainedStats serve_sustained(const FrameSchedule& schedule,
                               const std::vector<std::size_t>& stream_of,
                               FrameRanker& ranker, const ServeSpec& spec,
                               ServeTrace* trace = nullptr);

/// The independent sorted-vector implementation of the same semantics —
/// the equivalence oracle.  Ignores spec.workers (always serial).
SustainedStats serve_sustained_reference(
    const FrameSchedule& schedule, const std::vector<std::size_t>& stream_of,
    FrameRanker& ranker, const ServeSpec& spec, ServeTrace* trace = nullptr);

}  // namespace osp
