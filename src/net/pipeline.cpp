#include "net/pipeline.hpp"

#include <algorithm>
#include <map>

#include "util/require.hpp"

namespace osp {

PipelineStats simulate_pipeline(const MultiHopWorkload& workload,
                                std::size_t num_switches,
                                const SwitchPolicyFactory& make_policy,
                                Capacity link_capacity) {
  OSP_REQUIRE(num_switches >= 1);
  OSP_REQUIRE(link_capacity >= 1);
  const Instance& inst = workload.instance;
  const std::size_t num_packets = inst.num_sets();
  OSP_REQUIRE(workload.inject_time.size() == num_packets);

  // Packet metadata is global knowledge (ids travel in headers).
  std::vector<SetMeta> metas(num_packets);
  for (SetId p = 0; p < num_packets; ++p)
    metas[p] = SetMeta{inst.weight(p), inst.set_size(p)};

  // One policy per switch, each with its own element counter.
  std::vector<std::unique_ptr<OnlineAlgorithm>> policies;
  std::vector<ElementId> local_element(num_switches, 0);
  for (std::size_t h = 0; h < num_switches; ++h) {
    policies.push_back(make_policy(h));
    OSP_REQUIRE(policies.back() != nullptr);
    policies.back()->start(metas);
  }

  // alive[p]: has packet p won every hop so far.
  std::vector<bool> alive(num_packets, true);
  std::vector<std::size_t> hops_won(num_packets, 0);

  // Group packets by (time, hop); sweep in global clock order.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<SetId>> occupancy;
  for (SetId p = 0; p < num_packets; ++p)
    for (std::size_t i = 0; i < workload.route_len[p]; ++i)
      occupancy[{workload.inject_time[p] + i, workload.entry_hop[p] + i}]
          .push_back(p);

  for (auto& [key, at_slot] : occupancy) {
    const std::size_t hop = key.second;
    OSP_REQUIRE(hop < num_switches);

    // A packet dropped upstream never reaches this hop: the sweep visits
    // (t-1, h-1) before (t, h), so alive[] is already up to date.
    std::vector<SetId> present;
    for (SetId p : at_slot)
      if (alive[p]) present.push_back(p);
    if (present.empty()) continue;
    std::sort(present.begin(), present.end());

    std::vector<SetId> chosen = policies[hop]->on_element(
        local_element[hop]++, link_capacity, present);
    OSP_REQUIRE(chosen.size() <= link_capacity);

    std::vector<bool> won(num_packets, false);
    for (SetId p : chosen) won[p] = true;
    for (SetId p : present) {
      if (won[p]) {
        ++hops_won[p];
      } else {
        alive[p] = false;
      }
    }
  }

  PipelineStats stats;
  stats.packets_total = num_packets;
  for (SetId p = 0; p < num_packets; ++p) {
    stats.value_total += inst.weight(p);
    if (alive[p] && hops_won[p] == workload.route_len[p]) {
      ++stats.packets_delivered;
      stats.value_delivered += inst.weight(p);
    }
  }
  return stats;
}

}  // namespace osp
