// Discrete-time bottleneck-router simulator.
//
// Unbuffered mode implements the paper's model exactly: in each slot a
// burst of packets arrives, the link serves `service_rate` of them, and
// the rest are lost — so a run is equivalent, frame for frame, to playing
// the osp game on FrameSchedule::to_instance (tested in test_net.cpp).
//
// Buffered mode probes the paper's open problem 2 ("the effect of
// buffers"): packets that lose the link can wait in a FIFO of bounded
// size.  Decisions are made by a FrameRanker — a per-frame priority
// oracle; randPr's persistent R_w priorities fit this interface directly,
// which is itself evidence for the algorithm's practicality.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "gen/schedule.hpp"
#include "util/rng.hpp"

namespace osp {

/// Aggregate counters of one router run.
struct RouterStats {
  std::size_t packets_arrived = 0;
  std::size_t packets_served = 0;
  std::size_t packets_dropped = 0;
  std::size_t frames_total = 0;
  std::size_t frames_delivered = 0;  // all packets served
  Weight value_total = 0;
  Weight value_delivered = 0;

  /// Fraction of frame value delivered intact.
  double goodput() const {
    return value_total > 0 ? value_delivered / value_total : 0.0;
  }
};

/// Unbuffered router: `alg` decides, slot by slot, which arriving packets
/// to serve (at most `service_rate`), all others are lost.  Equivalent to
/// the osp game on schedule.to_instance(service_rate).
RouterStats simulate_router(const FrameSchedule& schedule,
                            OnlineAlgorithm& alg, Capacity service_rate = 1);

/// Per-frame priority oracle for the buffered router.
class FrameRanker {
 public:
  virtual ~FrameRanker() = default;
  virtual std::string name() const = 0;
  /// Announces the frames (weight + packet count), once per run.
  virtual void start(const std::vector<SetMeta>& frames) = 0;
  /// Priority of a frame; higher survives congestion longer.
  virtual double rank(SetId frame) const = 0;
};

/// randPr as a ranker: persistent R_w priorities per frame.
class RandPrRanker final : public FrameRanker {
 public:
  explicit RandPrRanker(Rng rng) : rng_(rng) {}
  std::string name() const override { return "randPr"; }
  void start(const std::vector<SetMeta>& frames) override;
  double rank(SetId frame) const override { return ranks_[frame]; }

 private:
  Rng rng_;
  std::vector<double> ranks_;
};

/// Ranks frames by their declared weight (deterministic "protect the
/// I frames" heuristic).
class WeightRanker final : public FrameRanker {
 public:
  std::string name() const override { return "by-weight"; }
  void start(const std::vector<SetMeta>& frames) override;
  double rank(SetId frame) const override { return ranks_[frame]; }

 private:
  std::vector<double> ranks_;
};

/// No preference: models classic drop-tail (later arrivals lose).
class FifoRanker final : public FrameRanker {
 public:
  std::string name() const override { return "drop-tail"; }
  void start(const std::vector<SetMeta>&) override {}
  double rank(SetId) const override { return 0.0; }
};

/// Uniform random priorities regardless of weight (random early drop).
class RandomRanker final : public FrameRanker {
 public:
  explicit RandomRanker(Rng rng) : rng_(rng) {}
  std::string name() const override { return "random-drop"; }
  void start(const std::vector<SetMeta>& frames) override;
  double rank(SetId frame) const override { return ranks_[frame]; }

 private:
  Rng rng_;
  std::vector<double> ranks_;
};

/// Buffered router configuration.
struct BufferedRouterParams {
  Capacity service_rate = 1;
  std::size_t buffer_size = 0;    // packets that can wait
  bool drop_dead_frames = true;   // evict packets of frames that already
                                  // lost a packet (their value is gone)
};

/// Buffered router: each slot the queue plus the new burst are ordered by
/// frame rank (ties: earlier arrival first); `service_rate` packets are
/// served, up to `buffer_size` wait, and the rest are dropped.
RouterStats simulate_buffered_router(const FrameSchedule& schedule,
                                     FrameRanker& ranker,
                                     const BufferedRouterParams& params);

}  // namespace osp
