// Discrete-time bottleneck-router simulator.
//
// Unbuffered mode implements the paper's model exactly: in each slot a
// burst of packets arrives, the link serves `service_rate` of them, and
// the rest are lost — so a run is equivalent, frame for frame, to playing
// the osp game on FrameSchedule::to_instance (tested in test_net.cpp).
//
// Buffered mode probes the paper's open problem 2 ("the effect of
// buffers"): packets that lose the link can wait in a bounded buffer.
// Decisions are made by a FrameRanker — a per-frame priority oracle;
// randPr's persistent R_w priorities fit this interface directly, which
// is itself evidence for the algorithm's practicality.
//
// The buffered queue is ordered by (live, rank, seq): packets of live
// frames before packets of dead ones, then rank descending, then global
// arrival order.  With drop_dead_frames set, a frame death is final — its
// packets can never contribute value — so the simulator never spends link
// capacity or buffer space on them: arrivals of dead frames are refused,
// and a frame killed by an overflow drop has its queued packets evicted
// with it.  (The pre-queue.hpp simulator kept such packets around and
// served them when the queue ran short; see the goodput regression test
// in test_net.cpp.)
//
// simulate_buffered_router runs on the indexed-heap PacketQueue —
// O((arrivals + served + dropped) · log Q) per slot;
// simulate_buffered_router_reference is the straightened-out full-sort
// implementation — O(Q log Q) per slot — kept as the decision-identical
// cross-check (proven slot for slot in test_net.cpp, re-proven on every
// bench_router run).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "gen/schedule.hpp"
#include "net/queue.hpp"
#include "util/rng.hpp"

namespace osp {

/// Aggregate counters of one router run.
struct RouterStats {
  std::size_t packets_arrived = 0;
  std::size_t packets_served = 0;
  std::size_t packets_dropped = 0;
  std::size_t frames_total = 0;
  std::size_t frames_delivered = 0;  // all packets served
  Weight value_total = 0;
  Weight value_delivered = 0;

  /// Fraction of frame value delivered intact.
  double goodput() const {
    return value_total > 0 ? value_delivered / value_total : 0.0;
  }
};

/// Unbuffered router: `alg` decides which arriving packets to serve in
/// each slot (at most `service_rate`), all others are lost.  Equivalent to
/// the osp game on schedule.to_instance(service_rate).  The per-slot
/// bursts are packed into one CSR array up front and fed to the
/// algorithm's decide_batch() in arrival blocks, so a whole run costs a
/// handful of virtual calls rather than one per slot.
RouterStats simulate_router(const FrameSchedule& schedule,
                            OnlineAlgorithm& alg, Capacity service_rate = 1);

/// Per-frame priority oracle for the buffered router.  Shipped rankers
/// self-register in api::rankers() (api/ranker_registry.hpp; registrar
/// statics at the bottom of router_sim.cpp), which is what the router
/// benches and `osp_cli bench --ranker` enumerate.
class FrameRanker {
 public:
  virtual ~FrameRanker() = default;
  virtual std::string name() const = 0;
  /// Announces the frames (weight + packet count), once per run.
  virtual void start(const std::vector<SetMeta>& frames) = 0;
  /// Priority of a frame; higher survives congestion longer.
  virtual double rank(SetId frame) const = 0;
  /// Re-arms the ranker's randomness for a fresh trial without
  /// reallocating: reseed(rng) followed by start(frames) must rank
  /// exactly like a freshly constructed ranker given the same rng.
  /// Default: no-op (deterministic rankers).
  virtual void reseed(Rng /*rng*/) {}
};

/// randPr as a ranker: persistent R_w priorities per frame.
class RandPrRanker final : public FrameRanker {
 public:
  explicit RandPrRanker(Rng rng) : rng_(rng) {}
  std::string name() const override { return "randPr"; }
  void start(const std::vector<SetMeta>& frames) override;
  double rank(SetId frame) const override { return ranks_[frame]; }
  void reseed(Rng rng) override { rng_ = rng; }

 private:
  Rng rng_;
  std::vector<double> ranks_;
};

/// Ranks frames by their declared weight (deterministic "protect the
/// I frames" heuristic).
class WeightRanker final : public FrameRanker {
 public:
  std::string name() const override { return "by-weight"; }
  void start(const std::vector<SetMeta>& frames) override;
  double rank(SetId frame) const override { return ranks_[frame]; }

 private:
  std::vector<double> ranks_;
};

/// No preference: models classic drop-tail (later arrivals lose).
class FifoRanker final : public FrameRanker {
 public:
  std::string name() const override { return "drop-tail"; }
  void start(const std::vector<SetMeta>&) override {}
  double rank(SetId) const override { return 0.0; }
};

/// Uniform random priorities regardless of weight (random early drop).
class RandomRanker final : public FrameRanker {
 public:
  explicit RandomRanker(Rng rng) : rng_(rng) {}
  std::string name() const override { return "random-drop"; }
  void start(const std::vector<SetMeta>& frames) override;
  double rank(SetId frame) const override { return ranks_[frame]; }
  void reseed(Rng rng) override { rng_ = rng; }

 private:
  Rng rng_;
  std::vector<double> ranks_;
};

/// Buffered router configuration.
struct BufferedRouterParams {
  Capacity service_rate = 1;
  std::size_t buffer_size = 0;    // packets that can wait
  bool drop_dead_frames = true;   // refuse/evict packets of frames that
                                  // already lost a packet (value is gone)
};

/// Optional per-decision record of a buffered run: every serviced packet
/// in service order.  Two runs are decision-identical iff their traces
/// (and stats) are equal — what test_net uses to prove the heap router
/// against the sort reference.
struct RouterTrace {
  struct Served {
    std::size_t slot;
    SetId frame;
    std::uint64_t seq;  // global arrival index of the packet
  };
  std::vector<Served> served;
};

/// Reusable working state for simulate_buffered_router; pass the same
/// scratch to successive runs (one per worker thread) and the steady
/// state performs no heap allocations.  Per-slot arrival bursts are
/// packed into one CSR array (one row per slot) instead of a
/// vector-of-vectors, so feeding a slot's burst is a contiguous scan.
struct BufferedRouterScratch {
  PacketQueue queue;
  CsrArray<SetId> slot_frames;          // row = slot's burst, ascending ids
  std::vector<std::size_t> burst_sizes; // counting-pass scratch
  std::vector<std::size_t> fill;        // scatter-pass cursors
  std::vector<SetMeta> metas;
  std::vector<std::size_t> served;
};

/// Buffered router on the indexed-heap PacketQueue: each slot, arriving
/// packets join the queue, the best `service_rate` live packets are
/// served, and the queue is then trimmed to `buffer_size` by evicting the
/// worst live packets (each eviction kills its frame, and with
/// drop_dead_frames the rest of that frame's packets are evicted with
/// it).  O((arrivals + served + dropped) · log Q) per slot.
RouterStats simulate_buffered_router(const FrameSchedule& schedule,
                                     FrameRanker& ranker,
                                     const BufferedRouterParams& params,
                                     BufferedRouterScratch* scratch = nullptr,
                                     RouterTrace* trace = nullptr);

/// The full-sort reference implementation of the same semantics —
/// O(Q log Q) per slot.  Kept for the decision-identity cross-check and
/// as the "old path" baseline of bench_router's throughput section.
RouterStats simulate_buffered_router_reference(
    const FrameSchedule& schedule, FrameRanker& ranker,
    const BufferedRouterParams& params, RouterTrace* trace = nullptr);

}  // namespace osp
