#include "net/serve.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "core/csr.hpp"
#include "util/require.hpp"

namespace osp {

namespace {

// ---------------------------------------------------------------------------
// Serial precompute: everything that consumes randomness or assigns global
// identifiers happens here, before any worker exists, so the parallel phase
// is a pure function of this structure.

struct PacketArrival {
  SetId frame = 0;
  std::uint64_t seq = 0;  // global arrival index, canonical order
};

struct Prepared {
  std::vector<SetMeta> metas;
  std::vector<std::size_t> stream_of;       // frame -> stream (resolved)
  std::vector<std::size_t> link_of_frame;   // frame -> link
  std::vector<std::vector<std::size_t>> link_streams;  // link -> its streams
  std::vector<CsrArray<PacketArrival>> arrivals;  // per link, one row per slot
  std::vector<std::uint32_t> arrival_slot;  // seq -> slot
  std::vector<double> window_offered;       // per window
  std::size_t num_streams = 0;
  std::size_t num_windows = 0;
};

Prepared prepare(const FrameSchedule& schedule,
                 const std::vector<std::size_t>& stream_of,
                 const ServeSpec& spec) {
  OSP_REQUIRE(spec.links >= 1);
  OSP_REQUIRE(spec.service_rate >= 1);
  OSP_REQUIRE(spec.workers >= 1);
  OSP_REQUIRE(spec.window >= 1);
  schedule.validate();
  const std::size_t num_frames = schedule.frames.size();
  OSP_REQUIRE_MSG(stream_of.empty() || stream_of.size() == num_frames,
                  "stream_of must be empty or map every frame");

  Prepared prep;
  prep.metas.reserve(num_frames);
  for (const Frame& f : schedule.frames) {
    OSP_REQUIRE_MSG(!f.packet_slots.empty(),
                    "sustained serving requires every frame to carry a packet");
    prep.metas.push_back(SetMeta{f.weight, f.packet_slots.size()});
  }

  // Resolve streams (identity when unspecified) and the static
  // stream -> link partition.
  prep.stream_of.resize(num_frames);
  for (std::size_t f = 0; f < num_frames; ++f) {
    const std::size_t s = stream_of.empty() ? f : stream_of[f];
    OSP_REQUIRE_MSG(s < num_frames, "stream id " << s << " out of range");
    prep.stream_of[f] = s;
    prep.num_streams = std::max(prep.num_streams, s + 1);
  }
  prep.link_of_frame.resize(num_frames);
  for (std::size_t f = 0; f < num_frames; ++f)
    prep.link_of_frame[f] = prep.stream_of[f] % spec.links;
  prep.link_streams.resize(spec.links);
  for (std::size_t s = 0; s < prep.num_streams; ++s)
    prep.link_streams[s % spec.links].push_back(s);

  // Global canonical arrival order: slot-major, frame id ascending within
  // a slot — exactly the order the single-link buffered router assigns
  // seqs in (build_slot_frames in router_sim.cpp), so a links=1 run is
  // packet-for-packet the same process.
  const std::size_t horizon = schedule.horizon;
  CsrArray<SetId> slot_frames;
  {
    std::vector<std::size_t> sizes(horizon, 0);
    for (const Frame& f : schedule.frames)
      for (std::size_t slot : f.packet_slots) ++sizes[slot];
    slot_frames.assign_sizes(sizes.data(), sizes.size());
    std::vector<std::size_t> fill(horizon, 0);
    for (std::size_t fi = 0; fi < num_frames; ++fi)
      for (std::size_t slot : schedule.frames[fi].packet_slots)
        slot_frames.mutable_row(slot)[fill[slot]++] = static_cast<SetId>(fi);
  }

  // Scatter the canonical stream into per-link arrival CSRs, tagging each
  // packet with its global seq and remembering its arrival slot.
  prep.arrivals.resize(spec.links);
  {
    std::vector<std::vector<std::size_t>> sizes(
        spec.links, std::vector<std::size_t>(horizon, 0));
    for (std::size_t fi = 0; fi < num_frames; ++fi)
      for (std::size_t slot : schedule.frames[fi].packet_slots)
        ++sizes[prep.link_of_frame[fi]][slot];
    for (std::size_t l = 0; l < spec.links; ++l)
      prep.arrivals[l].assign_sizes(sizes[l].data(), sizes[l].size());
    std::vector<std::vector<std::size_t>> fill(
        spec.links, std::vector<std::size_t>(horizon, 0));
    prep.arrival_slot.resize(schedule.total_packets());
    std::uint64_t seq = 0;
    for (std::size_t slot = 0; slot < horizon; ++slot)
      for (SetId f : slot_frames.row(slot)) {
        const std::size_t l = prep.link_of_frame[f];
        prep.arrivals[l].mutable_row(slot)[fill[l][slot]++] =
            PacketArrival{f, seq};
        prep.arrival_slot[seq] = static_cast<std::uint32_t>(slot);
        ++seq;
      }
  }

  // Offered value per window: a frame is offered in the window its last
  // packet arrives in (the earliest slot it could complete).
  prep.num_windows = (horizon + spec.window - 1) / spec.window;
  prep.window_offered.assign(prep.num_windows, 0.0);
  for (std::size_t fi = 0; fi < num_frames; ++fi)
    prep.window_offered[schedule.frames[fi].packet_slots.back() /
                        spec.window] += schedule.frames[fi].weight;
  return prep;
}

// ---------------------------------------------------------------------------
// Per-link accumulators, merged link-ascending at the end so floating-point
// sums are added in the same order for every worker count (and for the
// reference).

struct LinkTally {
  std::size_t arrived = 0;
  std::size_t served = 0;
  std::size_t dropped = 0;
  std::size_t refused_dead = 0;
  std::size_t evictions = 0;
  std::size_t cascade_drops = 0;
  std::size_t leftover = 0;
  LatencyHistogram serve_latency;
  LatencyHistogram drop_latency;
  std::vector<double> window_delivered;      // per window
  std::vector<ServeTrace::Served> trace;     // tracing only
  std::vector<std::size_t> slot_backlog;     // tracing only, per slot
  std::vector<std::size_t> slot_served;      // tracing only, per slot
};

// The deterministic work-conserving allocator: a pure function of the
// per-link live backlogs.  Base grant = min(rate, backlog); spare
// capacity is then lent one packet at a time in round-robin link-id
// order to links that still have unserved backlog, so
// sum(alloc) == min(links * rate, sum(backlog)) and alloc[l] <= backlog[l].
void compute_alloc(const ServeSpec& spec,
                   const std::vector<std::size_t>& backlog,
                   std::vector<std::size_t>& alloc) {
  const std::size_t rate = spec.service_rate;
  std::size_t spare = 0;
  for (std::size_t l = 0; l < spec.links; ++l) {
    alloc[l] = std::min<std::size_t>(rate, backlog[l]);
    spare += rate - alloc[l];
  }
  if (!spec.work_conserving) return;
  bool granted = true;
  while (spare > 0 && granted) {
    granted = false;
    for (std::size_t l = 0; l < spec.links && spare > 0; ++l)
      if (alloc[l] < backlog[l]) {
        ++alloc[l];
        --spare;
        granted = true;
      }
  }
}

void tally_frames(const FrameSchedule& schedule,
                  const std::vector<std::size_t>& served_per_frame,
                  RouterStats& stats) {
  stats.frames_total = schedule.frames.size();
  for (std::size_t fi = 0; fi < schedule.frames.size(); ++fi) {
    stats.value_total += schedule.frames[fi].weight;
    if (served_per_frame[fi] == schedule.frames[fi].packet_slots.size()) {
      ++stats.frames_delivered;
      stats.value_delivered += schedule.frames[fi].weight;
    }
  }
}

// Merges the per-link tallies in link order into the run's stats and
// (when tracing) the canonical trace — shared by the runtime and the
// reference so the accumulation order is identical.
SustainedStats finalize(const FrameSchedule& schedule, const Prepared& prep,
                        const std::vector<std::size_t>& served_per_frame,
                        std::vector<LinkTally>& tallies,
                        std::vector<std::uint64_t>&& starved,
                        ServeTrace* trace) {
  SustainedStats out;
  out.window_offered = prep.window_offered;
  out.window_delivered.assign(prep.num_windows, 0.0);
  out.starved_slots = std::move(starved);
  for (std::size_t l = 0; l < tallies.size(); ++l) {
    const LinkTally& t = tallies[l];
    out.router.packets_arrived += t.arrived;
    out.router.packets_served += t.served;
    out.router.packets_dropped += t.dropped;
    out.refused_dead += t.refused_dead;
    out.evictions += t.evictions;
    out.cascade_drops += t.cascade_drops;
    out.leftover += t.leftover;
    out.serve_latency.merge(t.serve_latency);
    out.drop_latency.merge(t.drop_latency);
    for (std::size_t w = 0; w < prep.num_windows; ++w)
      out.window_delivered[w] += t.window_delivered[w];
  }
  tally_frames(schedule, served_per_frame, out.router);

  if (trace != nullptr) {
    trace->served.clear();
    trace->slot_backlog.assign(schedule.horizon, 0);
    trace->slot_served.assign(schedule.horizon, 0);
    for (const LinkTally& t : tallies) {
      trace->served.insert(trace->served.end(), t.trace.begin(),
                           t.trace.end());
      for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
        trace->slot_backlog[slot] += t.slot_backlog[slot];
        trace->slot_served[slot] += t.slot_served[slot];
      }
    }
    // Per-link traces are slot-ordered with within-slot service order;
    // a stable sort on (slot, link) therefore yields the canonical
    // (slot, link, service order) sequence the reference emits directly.
    std::stable_sort(trace->served.begin(), trace->served.end(),
                     [](const ServeTrace::Served& a,
                        const ServeTrace::Served& b) {
                       if (a.slot != b.slot) return a.slot < b.slot;
                       return a.link < b.link;
                     });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-slot barrier: a classic generation-counted cyclic barrier, plus
// retire() so a worker that dies on an internal error releases the rest
// instead of deadlocking them (the error is rethrown after the join).

class SlotBarrier {
 public:
  explicit SlotBarrier(std::size_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t gen = gen_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return gen_ != gen; });
  }

  void retire() {
    std::unique_lock<std::mutex> lock(mutex_);
    --parties_;
    if (parties_ > 0 && waiting_ == parties_) {
      waiting_ = 0;
      ++gen_;
      cv_.notify_all();
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::uint64_t gen_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------

std::size_t SustainedStats::streams_starved() const {
  std::size_t n = 0;
  for (std::uint64_t s : starved_slots) n += s > 0 ? 1 : 0;
  return n;
}

std::uint64_t SustainedStats::starved_slots_max() const {
  std::uint64_t best = 0;
  for (std::uint64_t s : starved_slots) best = std::max(best, s);
  return best;
}

double SustainedStats::window_goodput_mean() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t w = 0; w < window_offered.size(); ++w)
    if (window_offered[w] > 0) {
      sum += window_delivered[w] / window_offered[w];
      ++n;
    }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double SustainedStats::window_goodput_min() const {
  double best = 0.0;
  bool any = false;
  for (std::size_t w = 0; w < window_offered.size(); ++w)
    if (window_offered[w] > 0) {
      const double g = window_delivered[w] / window_offered[w];
      if (!any || g < best) best = g;
      any = true;
    }
  return any ? best : 0.0;
}

bool operator==(const SustainedStats& a, const SustainedStats& b) {
  return a.router.packets_arrived == b.router.packets_arrived &&
         a.router.packets_served == b.router.packets_served &&
         a.router.packets_dropped == b.router.packets_dropped &&
         a.router.frames_total == b.router.frames_total &&
         a.router.frames_delivered == b.router.frames_delivered &&
         a.router.value_total == b.router.value_total &&
         a.router.value_delivered == b.router.value_delivered &&
         a.refused_dead == b.refused_dead && a.evictions == b.evictions &&
         a.cascade_drops == b.cascade_drops && a.leftover == b.leftover &&
         a.serve_latency == b.serve_latency &&
         a.drop_latency == b.drop_latency &&
         a.starved_slots == b.starved_slots &&
         a.window_offered == b.window_offered &&
         a.window_delivered == b.window_delivered;
}

SustainedStats serve_sustained(const FrameSchedule& schedule,
                               const std::vector<std::size_t>& stream_of,
                               FrameRanker& ranker, const ServeSpec& spec,
                               ServeTrace* trace) {
  const Prepared prep = prepare(schedule, stream_of, spec);
  ranker.start(prep.metas);

  const std::size_t K = spec.links;
  const std::size_t horizon = schedule.horizon;
  const bool tracing = trace != nullptr;

  // Shared state.  Each element is written by exactly one worker: queues
  // and tallies are per link, the per-frame and per-stream arrays are
  // only touched through the owning link, and backlog[l] is written in
  // the ingest phase and read (by everyone) only after the barrier.
  std::vector<PacketQueue> queues(K);
  std::vector<LinkTally> tallies(K);
  std::vector<std::size_t> backlog(K, 0);
  std::vector<std::size_t> served_per_frame(schedule.frames.size(), 0);
  std::vector<std::size_t> stream_live(prep.num_streams, 0);
  std::vector<std::size_t> last_served_slot(
      prep.num_streams, std::numeric_limits<std::size_t>::max());
  std::vector<std::uint64_t> starved(prep.num_streams, 0);
  for (std::size_t l = 0; l < K; ++l) {
    queues[l].reset(schedule.frames.size());
    tallies[l].window_delivered.assign(prep.num_windows, 0.0);
    if (tracing) {
      tallies[l].slot_backlog.assign(horizon, 0);
      tallies[l].slot_served.assign(horizon, 0);
    }
  }

  const std::size_t W = std::min(spec.workers, std::max<std::size_t>(K, 1));

  auto ingest = [&](std::size_t l, std::size_t slot) {
    PacketQueue& q = queues[l];
    LinkTally& t = tallies[l];
    for (const PacketArrival& a : prep.arrivals[l].row(slot)) {
      ++t.arrived;
      if (spec.drop_dead_frames && q.is_dead(a.frame)) {
        ++t.dropped;
        ++t.refused_dead;
        continue;
      }
      q.push(a.frame, ranker.rank(a.frame), a.seq);
      ++stream_live[prep.stream_of[a.frame]];
    }
    backlog[l] = q.live_size();
    if (tracing) t.slot_backlog[slot] = backlog[l];
  };

  auto serve_and_trim = [&](std::size_t l, std::size_t slot,
                            std::size_t grant) {
    PacketQueue& q = queues[l];
    LinkTally& t = tallies[l];
    for (std::size_t i = 0; i < grant; ++i) {
      SetId f;
      std::uint64_t seq;
      const bool ok = q.pop_best(&f, &seq);
      OSP_REQUIRE_MSG(ok, "allocation exceeded live backlog");
      ++served_per_frame[f];
      ++t.served;
      t.serve_latency.add(slot - prep.arrival_slot[seq]);
      const std::size_t s = prep.stream_of[f];
      --stream_live[s];
      last_served_slot[s] = slot;
      if (served_per_frame[f] == prep.metas[f].size)
        t.window_delivered[slot / spec.window] += prep.metas[f].weight;
      if (tracing)
        t.trace.push_back(ServeTrace::Served{slot, l, f, seq});
    }
    if (tracing) t.slot_served[slot] = grant;

    while (q.live_size() > spec.buffer) {
      SetId f;
      std::uint64_t seq;
      q.pop_worst(&f, &seq);
      ++t.dropped;
      ++t.evictions;
      t.drop_latency.add(slot - prep.arrival_slot[seq]);
      --stream_live[prep.stream_of[f]];
      if (spec.drop_dead_frames) {
        const std::size_t killed = q.kill_frame(f);
        t.dropped += killed;
        t.cascade_drops += killed;
        stream_live[prep.stream_of[f]] -= killed;
      }
    }

    for (std::size_t s : prep.link_streams[l])
      if (stream_live[s] > 0 && last_served_slot[s] != slot) ++starved[s];
  };

  auto run_worker = [&](std::size_t w, SlotBarrier* barrier) {
    const std::size_t lo = w * K / W;
    const std::size_t hi = (w + 1) * K / W;
    std::vector<std::size_t> alloc(K, 0);  // worker-local, redundant compute
    for (std::size_t slot = 0; slot < horizon; ++slot) {
      for (std::size_t l = lo; l < hi; ++l) ingest(l, slot);
      if (barrier != nullptr) barrier->arrive_and_wait();
      compute_alloc(spec, backlog, alloc);
      for (std::size_t l = lo; l < hi; ++l) serve_and_trim(l, slot, alloc[l]);
      if (barrier != nullptr) barrier->arrive_and_wait();
    }
    for (std::size_t l = lo; l < hi; ++l) {
      tallies[l].leftover = queues[l].live_size();
      tallies[l].dropped += tallies[l].leftover;
    }
  };

  if (W <= 1) {
    run_worker(0, nullptr);
  } else {
    SlotBarrier barrier(W);
    std::vector<std::exception_ptr> errors(W);
    auto guarded = [&](std::size_t w) {
      try {
        run_worker(w, &barrier);
      } catch (...) {
        errors[w] = std::current_exception();
        barrier.retire();
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(W - 1);
    for (std::size_t w = 1; w < W; ++w)
      threads.emplace_back(guarded, w);
    guarded(0);
    for (std::thread& t : threads) t.join();
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
  }

  return finalize(schedule, prep, served_per_frame, tallies,
                  std::move(starved), trace);
}

SustainedStats serve_sustained_reference(
    const FrameSchedule& schedule, const std::vector<std::size_t>& stream_of,
    FrameRanker& ranker, const ServeSpec& spec, ServeTrace* trace) {
  const Prepared prep = prepare(schedule, stream_of, spec);
  ranker.start(prep.metas);

  const std::size_t K = spec.links;
  const bool tracing = trace != nullptr;

  struct QueuedPacket {
    SetId frame;
    double rank;
    std::uint64_t seq;
  };

  std::vector<std::vector<QueuedPacket>> queues(K);
  std::vector<LinkTally> tallies(K);
  std::vector<std::size_t> backlog(K, 0);
  std::vector<std::size_t> alloc(K, 0);
  std::vector<std::size_t> served_per_frame(schedule.frames.size(), 0);
  std::vector<bool> dead(schedule.frames.size(), false);
  std::vector<std::size_t> stream_live(prep.num_streams, 0);
  std::vector<std::size_t> last_served_slot(
      prep.num_streams, std::numeric_limits<std::size_t>::max());
  std::vector<std::uint64_t> starved(prep.num_streams, 0);
  for (std::size_t l = 0; l < K; ++l) {
    tallies[l].window_delivered.assign(prep.num_windows, 0.0);
    if (tracing) {
      tallies[l].slot_backlog.assign(schedule.horizon, 0);
      tallies[l].slot_served.assign(schedule.horizon, 0);
    }
  }

  for (std::size_t slot = 0; slot < schedule.horizon; ++slot) {
    // Ingest every link, then allocate, then serve — the same phase
    // structure as the runtime, realized serially.  The vector queue
    // never holds a dead packet (arrivals refused, cascades removed
    // eagerly), so queue.size() is the live backlog.
    for (std::size_t l = 0; l < K; ++l) {
      LinkTally& t = tallies[l];
      for (const PacketArrival& a : prep.arrivals[l].row(slot)) {
        ++t.arrived;
        if (spec.drop_dead_frames && dead[a.frame]) {
          ++t.dropped;
          ++t.refused_dead;
          continue;
        }
        queues[l].push_back(
            QueuedPacket{a.frame, ranker.rank(a.frame), a.seq});
        ++stream_live[prep.stream_of[a.frame]];
      }
      backlog[l] = queues[l].size();
      if (tracing) t.slot_backlog[slot] = backlog[l];
    }

    compute_alloc(spec, backlog, alloc);

    for (std::size_t l = 0; l < K; ++l) {
      std::vector<QueuedPacket>& q = queues[l];
      LinkTally& t = tallies[l];
      // (rank desc, seq asc) — seqs are unique, so this is a total order
      // and the front `alloc[l]` packets are exactly what the heap's
      // pop_best sequence serves.
      std::sort(q.begin(), q.end(),
                [](const QueuedPacket& a, const QueuedPacket& b) {
                  if (a.rank != b.rank) return a.rank > b.rank;
                  return a.seq < b.seq;
                });
      OSP_REQUIRE(alloc[l] <= q.size());
      for (std::size_t i = 0; i < alloc[l]; ++i) {
        const QueuedPacket& p = q[i];
        ++served_per_frame[p.frame];
        ++t.served;
        t.serve_latency.add(slot - prep.arrival_slot[p.seq]);
        const std::size_t s = prep.stream_of[p.frame];
        --stream_live[s];
        last_served_slot[s] = slot;
        if (served_per_frame[p.frame] == prep.metas[p.frame].size)
          t.window_delivered[slot / spec.window] +=
              prep.metas[p.frame].weight;
        if (tracing)
          t.trace.push_back(ServeTrace::Served{slot, l, p.frame, p.seq});
      }
      q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(alloc[l]));
      if (tracing) t.slot_served[slot] = alloc[l];

      // Trim from the tail — (rank asc, seq desc), the evict-heap order.
      while (q.size() > spec.buffer) {
        const QueuedPacket worst = q.back();
        q.pop_back();
        ++t.dropped;
        ++t.evictions;
        t.drop_latency.add(slot - prep.arrival_slot[worst.seq]);
        --stream_live[prep.stream_of[worst.frame]];
        if (!spec.drop_dead_frames) continue;
        dead[worst.frame] = true;
        auto doomed = std::remove_if(q.begin(), q.end(),
                                     [&](const QueuedPacket& p) {
                                       return p.frame == worst.frame;
                                     });
        const std::size_t killed =
            static_cast<std::size_t>(q.end() - doomed);
        t.dropped += killed;
        t.cascade_drops += killed;
        stream_live[prep.stream_of[worst.frame]] -= killed;
        q.erase(doomed, q.end());
      }

      for (std::size_t s : prep.link_streams[l])
        if (stream_live[s] > 0 && last_served_slot[s] != slot) ++starved[s];
    }
  }

  for (std::size_t l = 0; l < K; ++l) {
    tallies[l].leftover = queues[l].size();
    tallies[l].dropped += tallies[l].leftover;
  }

  return finalize(schedule, prep, served_per_frame, tallies,
                  std::move(starved), trace);
}

}  // namespace osp
