#include "net/serve_metrics.hpp"

#include <cmath>

namespace osp {

void LatencyHistogram::add(std::size_t latency) {
  if (latency >= counts_.size()) counts_.resize(latency + 1, 0);
  ++counts_[latency];
  ++total_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::size_t LatencyHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(total_)));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t latency = 0; latency < counts_.size(); ++latency) {
    seen += counts_[latency];
    if (seen >= rank) return latency;
  }
  return counts_.size() - 1;  // unreachable: seen reaches total_ >= rank
}

}  // namespace osp
