// Indexed priority structures for the buffered router.
//
// The buffered router used to re-sort its whole queue every slot
// (O(Q log Q) per slot); the structures here bring a slot down to
// O((arrivals + served + dropped) · log Q):
//
//   * IndexedDaryHeap — a position-indexed d-ary heap over small integer
//     entry ids.  The position index is what turns the classic heap into a
//     mutable one: erase-by-id and re-sift after an external key change
//     (decrease-key / increase-key) are O(d·log_d n) instead of O(n).
//     Keys live outside the heap (structure-of-arrays), so sift moves are
//     4-byte id shuffles.
//
//   * PacketQueue — the router's double-ended queue of waiting packets,
//     built from two IndexedDaryHeaps over one slot pool: a serve heap
//     ordered (rank desc, seq asc) — who gets the link next — and an evict
//     heap ordered (rank asc, seq desc) — who is pushed out when the
//     buffer overflows.  Killing a frame is O(1): packets of dead frames
//     are deleted lazily, i.e. counted out of live_size() immediately but
//     physically discarded only when a pop meets them, so a frame death
//     never walks the heap.  All storage is reused across reset() calls,
//     making repeated router trials allocation-free in steady state.
//
// The (live, rank, seq) key of the router's service order is represented
// as rank/seq in the heaps plus the lazy dead marking: a dead packet is
// by definition below every live packet, and the lazy skip realizes
// exactly that order without re-keying.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/types.hpp"
#include "util/require.hpp"

namespace osp {

/// Position-indexed d-ary heap over dense entry ids.
///
/// `Higher(a, b)` returns true when entry `a` must sit nearer the top than
/// entry `b`; it must induce a strict weak (in router use: total) order.
/// Entry ids are expected to be small and dense — the position index is a
/// direct-mapped vector.
template <class Higher, unsigned D = 4>
class IndexedDaryHeap {
  static_assert(D >= 2, "a d-ary heap needs d >= 2");

 public:
  explicit IndexedDaryHeap(Higher higher = Higher())
      : higher_(higher) {}

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    pos_.reserve(n);
  }

  /// Forgets every entry (O(size)); keeps allocated storage.
  void clear() {
    for (std::uint32_t id : heap_) pos_[id] = kAbsent;
    heap_.clear();
  }

  bool contains(std::uint32_t id) const {
    return id < pos_.size() && pos_[id] != kAbsent;
  }

  /// The entry currently at the top; heap must be non-empty.
  std::uint32_t top() const {
    OSP_REQUIRE(!heap_.empty());
    return heap_[0];
  }

  /// Inserts an id not currently in the heap.  O(log_d n).
  void push(std::uint32_t id) {
    if (id >= pos_.size()) pos_.resize(id + 1, kAbsent);
    OSP_REQUIRE_MSG(pos_[id] == kAbsent, "duplicate heap entry " << id);
    heap_.push_back(id);
    pos_[id] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }

  /// Removes and returns the top entry.  O(d·log_d n).
  std::uint32_t pop() {
    std::uint32_t id = top();
    remove_at(0);
    return id;
  }

  /// Removes an arbitrary entry by id.  O(d·log_d n).
  void erase(std::uint32_t id) {
    OSP_REQUIRE_MSG(contains(id), "erasing absent heap entry " << id);
    remove_at(pos_[id]);
  }

  /// Restores the heap property after the caller changed id's key in
  /// either direction (decrease-key / increase-key).  O(d·log_d n).
  void update(std::uint32_t id) {
    OSP_REQUIRE_MSG(contains(id), "updating absent heap entry " << id);
    std::size_t i = pos_[id];
    if (!sift_up(i)) sift_down(pos_[id]);
  }

 private:
  static constexpr std::size_t kAbsent =
      std::numeric_limits<std::size_t>::max();

  void place(std::size_t i, std::uint32_t id) {
    heap_[i] = id;
    pos_[id] = i;
  }

  /// Moves heap_[i] up while it beats its parent; true if it moved.
  bool sift_up(std::size_t i) {
    const std::uint32_t id = heap_[i];
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (!higher_(id, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
      moved = true;
    }
    if (moved) place(i, id);
    return moved;
  }

  void sift_down(std::size_t i) {
    const std::uint32_t id = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = i * D + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + D, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c)
        if (higher_(heap_[c], heap_[best])) best = c;
      if (!higher_(heap_[best], id)) break;
      place(i, heap_[best]);
      i = best;
    }
    place(i, id);
  }

  void remove_at(std::size_t i) {
    pos_[heap_[i]] = kAbsent;
    const std::uint32_t tail = heap_.back();
    heap_.pop_back();
    if (i == heap_.size()) return;  // removed the physical tail
    place(i, tail);
    if (!sift_up(i)) sift_down(pos_[tail]);
  }

  Higher higher_;
  std::vector<std::uint32_t> heap_;  // entry ids in heap order
  std::vector<std::size_t> pos_;     // entry id -> index in heap_
};

/// The buffered router's queue of waiting packets; see the file comment.
///
/// Not copyable/movable: the two heaps' comparators point back into the
/// queue's key arrays.
class PacketQueue {
 public:
  PacketQueue();
  PacketQueue(const PacketQueue&) = delete;
  PacketQueue& operator=(const PacketQueue&) = delete;

  /// Empties the queue and re-arms it for `num_frames` frames, reusing all
  /// allocated storage.
  void reset(std::size_t num_frames);

  /// Pre-sizes internal storage for an expected peak packet population.
  void reserve(std::size_t packets);

  /// Packets whose frame is still live (dead packets awaiting lazy
  /// deletion are already counted out).
  std::size_t live_size() const { return serve_.size() - stale_; }

  /// Live packets of one frame currently queued.
  std::size_t live_of(SetId frame) const { return live_count_[frame]; }

  bool is_dead(SetId frame) const { return dead_[frame] != 0; }

  /// Enqueues a packet; returns its handle (stable until the packet is
  /// popped or lazily discarded).  O(log Q).
  std::uint32_t push(SetId frame, double rank, std::uint64_t seq);

  /// Pops the highest-priority live packet — (rank desc, seq asc) — into
  /// *frame/*seq; false when no live packet remains.  Dead packets met on
  /// the way are discarded without being reported (their drop was already
  /// accounted when their frame died).  Amortized O(log Q).
  bool pop_best(SetId* frame, std::uint64_t* seq = nullptr);

  /// Pops the lowest-priority live packet — (rank asc, seq desc).
  bool pop_worst(SetId* frame, std::uint64_t* seq = nullptr);

  /// Marks a frame dead; its queued packets become lazily deleted.
  /// Returns how many queued packets were newly written off.  O(1).
  std::size_t kill_frame(SetId frame);

  /// Re-keys a queued packet (decrease- or increase-key) after a rank
  /// change.  O(log Q).
  void update_rank(std::uint32_t handle, double rank);

 private:
  // Comparators index the queue's key arrays, so heaps stay id-only.
  struct ServeOrder {
    const PacketQueue* q;
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      if (q->rank_[a] != q->rank_[b]) return q->rank_[a] > q->rank_[b];
      return q->seq_[a] < q->seq_[b];
    }
  };
  struct EvictOrder {
    const PacketQueue* q;
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      if (q->rank_[a] != q->rank_[b]) return q->rank_[a] < q->rank_[b];
      return q->seq_[a] > q->seq_[b];
    }
  };

  // Pops from `primary`, erases from `secondary`, skipping stale entries.
  template <class Primary, class Secondary>
  bool pop_from(Primary& primary, Secondary& secondary, SetId* frame,
                std::uint64_t* seq);

  void release(std::uint32_t id) { free_.push_back(id); }

  // Packet slot pool, structure-of-arrays; indexed by handle.
  std::vector<SetId> frame_;
  std::vector<double> rank_;
  std::vector<std::uint64_t> seq_;
  std::vector<std::uint32_t> free_;  // recycled handles

  IndexedDaryHeap<ServeOrder> serve_;
  IndexedDaryHeap<EvictOrder> evict_;

  std::vector<std::uint8_t> dead_;         // per frame
  std::vector<std::uint32_t> live_count_;  // per frame: queued live packets
  std::size_t stale_ = 0;  // queued packets of dead frames (lazy deletes)
};

}  // namespace osp
