// Steady-state metrics for the sustained serving runtime (net/serve.hpp).
//
// LatencyHistogram is an exact counting histogram over integer slot
// latencies: add() is O(1) amortised, merge() is linear in the larger
// support, and percentile() is the nearest-rank estimator over the full
// sample — no reservoir, no decay, so two runs that made the same
// decisions produce bit-identical histograms and operator== is a valid
// equivalence check for the multi-worker-vs-serial oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace osp {

class LatencyHistogram {
 public:
  void clear() {
    counts_.clear();
    total_ = 0;
  }

  void add(std::size_t latency);
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }

  // Largest latency observed; 0 when empty.
  std::size_t max_latency() const {
    return counts_.empty() ? 0 : counts_.size() - 1;
  }

  // Nearest-rank percentile: the smallest latency L such that at least
  // ceil(p/100 * count) samples are <= L.  p is clamped to [0, 100];
  // returns 0 on an empty histogram.
  std::size_t percentile(double p) const;

  bool operator==(const LatencyHistogram& other) const {
    return total_ == other.total_ && counts_ == other.counts_;
  }
  bool operator!=(const LatencyHistogram& other) const {
    return !(*this == other);
  }

 private:
  std::vector<std::uint64_t> counts_;  // counts_[L] = samples at latency L
  std::uint64_t total_ = 0;            // sum of counts_
};

}  // namespace osp
