// Shared helpers for the experiment binaries.
//
// Each bench prints one or more tables in the uniform Table format with a
// header naming the paper exhibit it reproduces, so the collected output
// (bench_output.txt) reads as the paper's evaluation section.
//
// All trial loops run through the shared multi-threaded batch runner
// (src/engine): per-trial Rngs are derived serially up front (preserving
// the seed repo's exact per-trial streams), trials execute on the flat
// allocation-free engine path in parallel, and aggregation happens in
// trial order — so every number printed is bit-identical to the serial
// seed loops at any thread count.
#pragma once

#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/game.hpp"
#include "core/instance.hpp"
#include "core/rand_pr.hpp"
#include "engine/batch_runner.hpp"
#include "stats/json.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace osp::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

/// One engine-throughput workload shape: a random instance with m sets of
/// size k over ~n arrivals.
struct EngineWorkload {
  const char* label;
  std::size_t m, n, k;
};

/// The workload table shared by every engine throughput measurement, so
/// all BENCH_engine.json rows carry identical labels across modes and
/// PRs (the perf trajectory is keyed on them).  The last entry is the
/// "largest workload" that the acceptance gates are measured on:
/// overload/256k mirrors bench_router's overload sweep — sustained
/// congestion with ~16 streams competing per slot (sigma ~ 16, the
/// regime the paper's sigma-dependent bounds are about) over a
/// quarter-million arrivals and ~4M packet memberships, the heaviest
/// shape in the table by every measure.
inline const std::vector<EngineWorkload>& engine_workloads() {
  static const std::vector<EngineWorkload> shapes{
      {"legacy/64", 64, 128, 4},      {"legacy/1024", 1024, 2048, 4},
      {"legacy/4096", 4096, 8192, 4}, {"router/32k", 1024, 32768, 64},
      {"router/128k", 4096, 131072, 64},
      {"overload/256k", 8192, 262144, 512},
  };
  return shapes;
}

/// Mean benefit (with CI) of randPr over `trials` independent runs.
/// Trial t plays RandPr(master.split(t)) — the same stream the serial
/// seed loop used — on the flat engine, batched across worker threads.
inline RunningStat measure_randpr(const Instance& inst, Rng& master,
                                  int trials,
                                  RandPrOptions options = {}) {
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t)
    rngs.push_back(master.split(static_cast<std::uint64_t>(t)));

  auto benefits = engine::shared_runner().map<Weight>(
      static_cast<std::size_t>(trials),
      [&](std::size_t t, engine::TrialContext& ctx) {
        RandPr alg(rngs[t], options);
        return play_flat(inst, alg, ctx.scratch).benefit;
      });

  RunningStat stat;
  for (Weight b : benefits) stat.add(b);
  return stat;
}

/// Mean benefit of an arbitrary algorithm factory over `trials` runs.
/// Factories often close over a shared Rng and split it per trial, so
/// they are invoked serially (in trial order, exactly as the seed loops
/// did) and only the plays run on worker threads.
inline RunningStat measure(
    const Instance& inst,
    const std::function<std::unique_ptr<OnlineAlgorithm>(std::uint64_t)>&
        make_alg,
    int trials) {
  std::vector<std::unique_ptr<OnlineAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t)
    algs.push_back(make_alg(static_cast<std::uint64_t>(t)));

  auto benefits = engine::shared_runner().map<Weight>(
      static_cast<std::size_t>(trials),
      [&](std::size_t t, engine::TrialContext& ctx) {
        return play_flat(inst, *algs[t], ctx.scratch).benefit;
      });
  RunningStat stat;
  for (Weight b : benefits) stat.add(b);
  return stat;
}

/// "12.3 ±0.4" formatting for a measured mean.
inline std::string fmt_mean_ci(const RunningStat& s, int precision = 2) {
  return fmt(s.mean(), precision) + " ±" +
         fmt(s.ci95_halfwidth(), precision);
}

/// Opens BENCH_<name>.json in the working directory and writes the shared
/// preamble ({"bench": name, "threads": N, "results": [ ... ).  Callers
/// append one object per row and then call json_close.
class JsonSink {
 public:
  explicit JsonSink(const std::string& name)
      : out_("BENCH_" + name + ".json"), writer_(out_) {
    writer_.begin_object()
        .kv("bench", name)
        .kv("threads",
            static_cast<std::uint64_t>(engine::shared_runner().num_threads()))
        .key("results")
        .begin_array();
  }

  JsonWriter& writer() { return writer_; }

  /// Finishes the document; called automatically on destruction.
  void close() {
    if (closed_) return;
    closed_ = true;
    writer_.end_array().end_object();
    out_ << '\n';
  }

  ~JsonSink() { close(); }

 private:
  std::ofstream out_;
  JsonWriter writer_;
  bool closed_ = false;
};

}  // namespace osp::bench
