// Shared helpers for the experiment binaries.
//
// Each bench prints one or more tables in the uniform Table format with a
// header naming the paper exhibit it reproduces, so the collected output
// (bench_output.txt) reads as the paper's evaluation section.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "core/game.hpp"
#include "core/instance.hpp"
#include "core/rand_pr.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace osp::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

/// Mean benefit (with CI) of randPr over `trials` independent runs.
inline RunningStat measure_randpr(const Instance& inst, Rng& master,
                                  int trials,
                                  RandPrOptions options = {}) {
  RunningStat stat;
  for (int t = 0; t < trials; ++t) {
    RandPr alg(master.split(static_cast<std::uint64_t>(t)), options);
    stat.add(play(inst, alg).benefit);
  }
  return stat;
}

/// Mean benefit of an arbitrary algorithm factory over `trials` runs.
inline RunningStat measure(
    const Instance& inst,
    const std::function<std::unique_ptr<OnlineAlgorithm>(std::uint64_t)>&
        make_alg,
    int trials) {
  RunningStat stat;
  for (int t = 0; t < trials; ++t) {
    auto alg = make_alg(static_cast<std::uint64_t>(t));
    stat.add(play(inst, *alg).benefit);
  }
  return stat;
}

/// "12.3 ±0.4" formatting for a measured mean.
inline std::string fmt_mean_ci(const RunningStat& s, int precision = 2) {
  return fmt(s.mean(), precision) + " ±" +
         fmt(s.ci95_halfwidth(), precision);
}

}  // namespace osp::bench
