// Shared helpers for the experiment binaries.
//
// Each bench prints one or more tables in the uniform Table format with a
// header naming the paper exhibit it reproduces, so the collected output
// (bench_output.txt) reads as the paper's evaluation section.
//
// Everything heavyweight lives in the experiment API layer (src/api):
// policies come from api::policies(), workload shapes from
// api::scenarios(), trial loops run through api::Session (the shared
// multi-threaded batch runner with the seed repo's exact per-trial Rng
// streams), and BENCH_*.json artifacts stream through api::JsonSink —
// one writer for every bench.  This header only keeps the console
// plumbing each binary shares.
#pragma once

#include <iostream>
#include <string>

#include "api/policy_registry.hpp"
#include "api/result_sink.hpp"
#include "api/scenario.hpp"
#include "api/session.hpp"
#include "core/rand_pr.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace osp::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

/// The process-wide Session every bench shares (shared batch runner).
inline api::Session& session() {
  static api::Session s;
  return s;
}

/// Mean benefit (with CI) of randPr over `trials` independent runs.
/// Trial t plays RandPr(master.split(t)) — the same stream the serial
/// seed loop used — on the flat engine, batched across worker threads.
inline RunningStat measure_randpr(const Instance& inst, Rng& master,
                                  int trials,
                                  RandPrOptions options = {}) {
  return session().measure(
      inst,
      [options](Rng r) { return std::make_unique<RandPr>(r, options); },
      master, trials);
}

/// Display labels (policy->name()) for a list of registry specs — what
/// the router benches key their tables and JSON rows on.  Constructing a
/// throwaway instance keeps the labels self-consistent with the policies
/// actually run (one source of truth, the policy itself).
inline std::vector<std::string> display_names(
    const std::vector<std::string>& specs) {
  std::vector<std::string> names;
  names.reserve(specs.size());
  for (const std::string& spec : specs)
    names.push_back(api::policies().make(spec, Rng(0))->name());
  return names;
}

/// "12.3 ±0.4" formatting for a measured mean.
inline std::string fmt_mean_ci(const RunningStat& s, int precision = 2) {
  return fmt(s.mean(), precision) + " ±" +
         fmt(s.ci95_halfwidth(), precision);
}

}  // namespace osp::bench
