// E6 — Theorem 4: variable capacities and the adjusted load ν = σ/b.
//
// Two sweeps on random instances:
//  (a) capacities drawn from [1, bmax] for growing bmax — the adjusted
//      load falls, and the measured ratio should fall with it while the
//      Theorem 4 expression tracks from above;
//  (b) fixed instance layout, uniform capacity b for all elements —
//      isolates the 1/b effect cleanly.
#include <iostream>

#include "algos/offline.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"

namespace osp {
namespace {

void random_capacity_sweep(osp::api::JsonSink& json) {
  std::cout << "-- capacities U[1, bmax] --\n";
  Table table({"m", "n", "k", "bmax", "nubar", "opt", "E[alg]", "ratio",
               "Thm4 shape", "Thm4 bound"});
  Rng master(616);
  // Swept cap-max values come from the "capacity/random" catalog entry;
  // the split keys derive from the cell values, preserving the
  // historical streams.
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("capacity/random"))) {
    const int trials = cell.default_trials;
    const std::size_t bmax = cell.cap_max;
    Rng gen = master.split(bmax);
    Instance inst = api::build_instance(cell, gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);
    Rng runs = master.split(100 + bmax);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    table.row({fmt(cell.m), fmt(inst.num_elements()),
               fmt(cell.k), fmt(bmax), fmt(st.nu_avg, 2),
               fmt(opt.value, 1), bench::fmt_mean_ci(alg), fmt_ratio(ratio),
               fmt(theorem4_shape(st), 2), fmt(theorem4_bound(st), 1)});
    json.write(api::Row{}
                   .add("sweep", "random_capacity")
                   .add("m", cell.m)
                   .add("n", inst.num_elements())
                   .add("k", cell.k)
                   .add("bmax", bmax)
                   .add("nu_avg", st.nu_avg)
                   .add("opt", opt.value)
                   .add("alg_mean", alg.mean())
                   .add("ratio", ratio)
                   .add("thm4_shape", theorem4_shape(st))
                   .add("thm4_bound", theorem4_bound(st)));
  }
  table.print(std::cout);
  std::cout << "Expected shape: nubar and the measured ratio fall as bmax "
               "grows; Thm4 stays above the measured ratio (with a lot of "
               "slack — the 16e constant is loose).\n\n";
}

void uniform_capacity_sweep(osp::api::JsonSink& json) {
  std::cout << "-- same layout, uniform capacity b --\n";
  Table table({"b", "nubar", "opt", "E[alg]", "ratio", "Thm4 shape"});
  Rng master(617);

  // One fixed set system; only capacities change.  The base layout is the
  // "capacity/uniform" catalog entry and the capacity ladder is its sweep
  // axis.
  const api::ScenarioSpec& layout = api::scenarios().at("capacity/uniform");
  Rng gen = master.split(1);
  Instance base = api::build_instance(layout, gen);

  for (const api::ScenarioSpec& cell : api::expand(layout)) {
    const int trials = cell.default_trials;
    const Capacity b = cell.capacity;
    InstanceBuilder builder;
    for (SetId s = 0; s < base.num_sets(); ++s)
      builder.add_set(base.weight(s));
    for (ElementId u = 0; u < base.num_elements(); ++u)
      builder.add_element(base.arrival(u).parents, b);
    Instance inst = builder.build();
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);
    Rng runs = master.split(100 + b);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    table.row({fmt(b), fmt(st.nu_avg, 2), fmt(opt.value, 1),
               bench::fmt_mean_ci(alg), fmt_ratio(ratio),
               fmt(theorem4_shape(st), 2)});
    json.write(api::Row{}
                   .add("sweep", "uniform_capacity")
                   .add("b", b)
                   .add("nu_avg", st.nu_avg)
                   .add("opt", opt.value)
                   .add("alg_mean", alg.mean())
                   .add("ratio", ratio)
                   .add("thm4_shape", theorem4_shape(st)));
  }
  table.print(std::cout);
  std::cout << "Expected shape: doubling b halves nubar; the measured "
               "ratio falls toward 1 as capacity saturates demand.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E6 / Theorem 4 (variable capacity, adjusted load)",
      "Competitive ratio tracks kmax*sqrt(avg(nu*sigma$)/avg(sigma$)) as "
      "capacities grow.");
  osp::api::JsonSink json("capacity", osp::bench::session().threads());
  osp::random_capacity_sweep(json);
  osp::uniform_capacity_sweep(json);
  return 0;
}
