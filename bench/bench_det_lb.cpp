// E4 — Theorem 3: every deterministic algorithm has competitive ratio at
// least σmax^(kmax-1).
//
// The adaptive adversary is run against each deterministic baseline over
// the adversarial/theorem3 catalog cells; the algorithm completes at most
// one set while a feasible solution of σ^(k-1) sets exists.  As a control
// we replay the transcript built against greedy-first obliviously to
// randPr, which recovers Θ(opt / k√σ) of it.  The machine-readable
// version of these tables is bench_adversarial's BENCH_adversarial.json.
#include <iostream>

#include "algos/baselines.hpp"
#include "algos/offline.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "design/lower_bounds.hpp"

namespace osp {
namespace {

void adversary_table() {
  Table table({"algorithm", "sigma", "k", "alg benefit", "opt >=",
               "ratio >=", "Thm3 bound"});
  // The swept (sigma, k) cells live in the adversarial/theorem3 catalog
  // entry — the same grid bench_adversarial's dashboard is keyed on.
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("adversarial/theorem3"))) {
    const std::size_t num_algs = make_deterministic_baselines().size();
    for (std::size_t ai = 0; ai < num_algs; ++ai) {
      auto alg = std::move(make_deterministic_baselines()[ai]);
      AdaptiveAdversaryResult r =
          run_theorem3_adversary(*alg, cell.sigma, cell.k);
      double ratio = r.alg_outcome.benefit > 0
                         ? r.opt_lower_bound / r.alg_outcome.benefit
                         : r.opt_lower_bound;
      table.row({alg->name(), fmt(cell.sigma), fmt(cell.k),
                 fmt(r.alg_outcome.benefit, 1), fmt(r.opt_lower_bound, 1),
                 fmt_ratio(ratio),
                 fmt(theorem3_lower_bound(cell.sigma, cell.k), 1)});
    }
  }
  table.print(std::cout);
}

void randpr_control() {
  std::cout << "\n-- control: randPr on the (oblivious) transcripts built "
               "against greedy-first --\n";
  Table table({"sigma", "k", "greedy benefit", "E[randPr]", "opt >=",
               "randPr ratio"});
  Rng master(11);
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("adversarial/theorem3"))) {
    GreedyFirst victim;
    AdaptiveAdversaryResult r =
        run_theorem3_adversary(victim, cell.sigma, cell.k);
    // Split key from the cell values and trials from the catalog, so the
    // declarative sweep reproduces the historical loop's streams bit for
    // bit (master(11), split(sigma*10 + k), 300 trials).
    Rng runs = master.split(cell.sigma * 10 + cell.k);
    RunningStat alg =
        bench::measure_randpr(r.transcript, runs, cell.default_trials);
    double ratio = alg.mean() > 0 ? r.opt_lower_bound / alg.mean() : 0;
    table.row({fmt(cell.sigma), fmt(cell.k), fmt(r.alg_outcome.benefit, 1),
               bench::fmt_mean_ci(alg), fmt(r.opt_lower_bound, 1),
               fmt_ratio(ratio)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E4 / Theorem 3 (deterministic lower bound)",
      "Adaptive adversary vs every deterministic baseline.  Each "
      "algorithm's benefit must be <= 1 while opt >= sigma^(k-1), i.e. "
      "the ratio matches the Thm3 bound exactly.  randPr, replayed on the "
      "same transcripts, escapes the trap.");
  osp::adversary_table();
  osp::randpr_control();
  std::cout << "\nExpected shape: 'alg benefit' column all <= 1; 'ratio' "
               "equals the Thm3 bound; randPr's ratio is far smaller.\n";
  return 0;
}
