// E8 — design ablations for randPr:
//  (a) R_w weighted priorities vs uniform priorities on weighted inputs;
//  (b) persistent priorities vs fresh-per-element (negative control);
//  (c) filtering dead sets (engineering tweak the paper omits);
//  (d) hashed priorities: independence degree and family vs true
//      randomness;
//  (e) distributed consistency: shared hash vs per-switch randomness on
//      the multi-hop pipeline.
//
// All workload shapes come from the scenario catalog.  (a,b,c) iterate
// the ablation/weights sweep; (d) and (e) copy the "random" / "multihop"
// registry entries and override shape fields.
#include <iostream>

#include "algos/offline.hpp"
#include "bench_common.hpp"
#include "core/rand_pr.hpp"
#include "gen/multihop.hpp"
#include "gen/random_instances.hpp"
#include "net/pipeline.hpp"

namespace osp {
namespace {

void priority_ablation() {
  std::cout << "-- (a,b,c) priority-rule ablations --\n";
  Table table({"instance", "variant", "E[benefit]", "vs randPr"});
  Rng master(808);

  // Re-baselined when the families moved onto the ablation/weights
  // catalog sweep: each cell now draws its instance from its own split
  // stream (the historical loop threaded ONE generator sequentially
  // through all three families), and the weighted cell uses the
  // registry's uniform model U[1,10) instead of U[1,8].  Console-only
  // output; no committed artifact depends on these streams.
  std::size_t ci = 0;
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("ablation/weights"))) {
    Rng gen = master.split(100 + ci++);
    Instance inst = api::build_instance(cell, gen);
    const int trials = cell.default_trials;

    Rng runs = master.split(2);
    RunningStat base = bench::measure_randpr(inst, runs, trials);
    struct Variant {
      std::string name;
      RandPrOptions options;
    };
    for (const Variant& v :
         {Variant{"randPr (paper)", {}},
          Variant{"uniform priorities", {.ignore_weights = true}},
          Variant{"fresh per element",
                  {.fresh_priorities_per_element = true}},
          Variant{"filter dead sets", {.filter_dead = true}}}) {
      Rng vruns = master.split(3);
      RunningStat stat =
          bench::measure_randpr(inst, vruns, trials, v.options);
      table.row({cell.display_label(), v.name, bench::fmt_mean_ci(stat),
                 fmt(stat.mean() / base.mean(), 3) + "x"});
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: uniform priorities lose on weighted "
               "inputs; fresh-per-element collapses; filtering dead sets "
               "is a small free win.\n\n";
}

void hash_ablation() {
  std::cout << "-- (d) hashed priorities vs true randomness --\n";
  Table table({"source", "E[benefit]", "vs true-random"});
  Rng master(909);
  Rng gen = master.split(1);
  // The historical shape (m=30, n=24, k=3, weights U[1,6]) as a catalog
  // "random" copy; build_instance consumes the same stream the direct
  // random_instance call did, so the streams are preserved bit for bit.
  api::ScenarioSpec shape = api::scenarios().at("random");
  shape.set("m", "30").set("n", "24").set("k", "3");
  shape.weights = WeightModel::uniform(1, 6);
  Instance inst = api::build_instance(shape, gen);
  const int trials = 800;

  Rng runs = master.split(2);
  RunningStat truth = bench::measure_randpr(inst, runs, trials);
  table.row({"true random", bench::fmt_mean_ci(truth), "1x"});

  struct Maker {
    std::string name;
    std::function<std::unique_ptr<OnlineAlgorithm>(Rng&)> make;
  };
  for (const Maker& mk : {
           Maker{"poly 2-indep",
                 [](Rng& r) { return HashedRandPr::with_polynomial(2, r); }},
           Maker{"poly 4-indep",
                 [](Rng& r) { return HashedRandPr::with_polynomial(4, r); }},
           Maker{"poly 8-indep",
                 [](Rng& r) { return HashedRandPr::with_polynomial(8, r); }},
           Maker{"tabulation",
                 [](Rng& r) { return HashedRandPr::with_tabulation(r); }},
           Maker{"multiply-shift",
                 [](Rng& r) {
                   return HashedRandPr::with_multiply_shift(r);
                 }},
       }) {
    Rng hruns = master.split(3);
    RunningStat stat = bench::session().measure_serial(
        inst,
        [&](std::uint64_t t) {
          Rng r = hruns.split(t);
          return mk.make(r);
        },
        trials);
    table.row({mk.name, bench::fmt_mean_ci(stat),
               fmt(stat.mean() / truth.mean(), 3) + "x"});
  }
  table.print(std::cout);
  std::cout << "Expected shape: every family within noise of true "
               "randomness — Section 3.1's claim that any off-the-shelf "
               "hash suffices.\n\n";
}

void distributed_ablation() {
  std::cout << "-- (e) distributed consistency on the multi-hop pipeline "
               "--\n";
  Table table({"policy", "delivered", "of", "rate"});
  Rng master(1010);
  const int trials = 60;
  // The pipeline workload as a catalog "multihop" copy.  Re-baselined:
  // the registry maps packets/switches only, so the injection horizon and
  // route-length range move from the historical 18/2..4 to the multihop
  // defaults (40/2..6).  Console-only output.
  api::ScenarioSpec shape = api::scenarios().at("multihop");
  shape.set("packets", "150").set("switches", "8");
  double shared = 0, indep = 0, total = 0;
  for (int t = 0; t < trials; ++t) {
    Rng wl_rng = master.split(t);
    MultiHopWorkload w = api::build_multihop(shape, wl_rng);
    total += static_cast<double>(w.instance.num_sets());

    Rng hash_rng = master.split(10000 + t);
    auto h = std::make_shared<PolynomialHash>(8, hash_rng);
    shared += static_cast<double>(
        simulate_pipeline(w, shape.switches, [&](std::size_t) {
          return std::make_unique<HashedRandPr>(
              [h](std::uint64_t key) { return h->unit(key); }, "shared");
        }).packets_delivered);

    Rng ir = master.split(20000 + t);
    indep += static_cast<double>(
        simulate_pipeline(w, shape.switches, [&](std::size_t s) {
          return std::make_unique<RandPr>(ir.split(s));
        }).packets_delivered);
  }
  table.row({"shared hash (consistent)", fmt(shared / trials, 1),
             fmt(total / trials, 0), fmt(shared / total, 3)});
  table.row({"independent per switch", fmt(indep / trials, 1),
             fmt(total / trials, 0), fmt(indep / total, 3)});
  table.print(std::cout);
  std::cout << "Expected shape: consistent (shared-hash) priorities "
               "deliver more packets — inconsistent switches waste link "
               "slots on packets that lose downstream.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner("E8 / design ablations",
                     "What each ingredient of randPr buys.");
  osp::priority_ablation();
  osp::hash_ablation();
  osp::distributed_ablation();
  return 0;
}
