// E11 — open problem 1: general packing with integer matrix entries.
//
// Sets demand multiple units of each element (think: flows reserving
// bandwidth).  We sweep the demand scale d_max and the capacity scale,
// measuring the ratio of the generalized randPr against the exact
// optimum, next to the natural conjectured bound kmax·sqrt(nu_max)
// (nu = demanded units / capacity — the paper's adjusted load with units).
#include <cmath>
#include <iostream>

#include "algos/general_lp.hpp"
#include "bench_common.hpp"
#include "core/general.hpp"

namespace osp {
namespace {

GeneralInstance random_general(std::size_t m, std::size_t n, std::size_t k,
                               std::uint32_t cap_max, std::uint32_t d_max,
                               Rng& rng) {
  GeneralInstanceBuilder b;
  std::vector<std::vector<UnitDemand>> per_element(n);
  for (std::size_t s = 0; s < m; ++s) {
    b.add_set(1.0);
    std::vector<std::size_t> slots;
    while (slots.size() < k) {
      std::size_t v = rng.below(n);
      if (std::find(slots.begin(), slots.end(), v) == slots.end())
        slots.push_back(v);
    }
    for (std::size_t u : slots)
      per_element[u].push_back(UnitDemand{
          static_cast<SetId>(s),
          static_cast<std::uint32_t>(rng.range(1, d_max))});
  }
  for (std::size_t u = 0; u < n; ++u) {
    if (per_element[u].empty()) continue;
    b.add_element(per_element[u],
                  static_cast<std::uint32_t>(rng.range(1, cap_max)));
  }
  return b.build();
}

void demand_sweep() {
  std::cout << "-- demand scale sweep (m=16, k=3, capacities U[1,6]) --\n";
  Table table({"d_max", "numax", "opt", "LP bound", "E[gen-randPr]",
               "E[first-fit]", "ratio", "k*sqrt(numax)"});
  Rng master(3141);
  const int trials = 500;
  for (std::uint32_t d_max : {1, 2, 3, 4, 6}) {
    Rng gen = master.split(d_max);
    GeneralInstance inst = random_general(16, 14, 3, 6, d_max, gen);
    GeneralStats st = inst.stats();
    GeneralOfflineResult opt = general_exact_optimum(inst);
    double lp = general_lp_upper_bound(inst);

    RunningStat rp;
    Rng runs = master.split(100 + d_max);
    for (int t = 0; t < trials; ++t) {
      GeneralRandPr alg(runs.split(t));
      rp.add(play_general(inst, alg).benefit);
    }
    GeneralFirstFit ff;
    double ff_benefit = play_general(inst, ff).benefit;

    double ratio = rp.mean() > 0 ? opt.value / rp.mean() : 0;
    double bound = static_cast<double>(st.k_max) * std::sqrt(st.nu_max);
    table.row({fmt(d_max), fmt(st.nu_max, 2), fmt(opt.value, 1),
               fmt(lp, 2), bench::fmt_mean_ci(rp), fmt(ff_benefit, 1),
               fmt_ratio(ratio), fmt(bound, 2)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: ratio grows with the demand scale (numax) "
               "but stays under k*sqrt(numax) — the natural generalization "
               "of Corollary 6 with the adjusted load measured in units.\n\n";
}

void capacity_sweep() {
  std::cout << "-- capacity scale sweep (demands U[1,3]) --\n";
  Table table({"cap_max", "numax", "nubar", "opt", "E[gen-randPr]",
               "ratio"});
  Rng master(2718);
  const int trials = 500;
  for (std::uint32_t cap_max : {1, 2, 4, 8, 12}) {
    Rng gen = master.split(cap_max);
    GeneralInstance inst = random_general(16, 14, 3, cap_max, 3, gen);
    GeneralStats st = inst.stats();
    GeneralOfflineResult opt = general_exact_optimum(inst);

    RunningStat rp;
    Rng runs = master.split(100 + cap_max);
    for (int t = 0; t < trials; ++t) {
      GeneralRandPr alg(runs.split(t));
      rp.add(play_general(inst, alg).benefit);
    }
    double ratio = rp.mean() > 0 ? opt.value / rp.mean() : 0;
    table.row({fmt(cap_max), fmt(st.nu_max, 2), fmt(st.nu_avg, 2),
               fmt(opt.value, 1), bench::fmt_mean_ci(rp),
               fmt_ratio(ratio)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: more capacity => smaller adjusted load => "
               "smaller ratio, mirroring Theorem 4's direction in the "
               "unit-demand model.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E11 / open problem 1 (general packing, integer demands)",
      "randPr generalized by priority-greedy allocation with skipping.");
  osp::demand_sweep();
  osp::capacity_sweep();
  return 0;
}
