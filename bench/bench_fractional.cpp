// E12 — the related-work comparator: online FRACTIONAL packing.
//
// The paper positions osp against Buchbinder–Naor-style online packing
// [5], where constraint rows arrive online but the primal is fractional
// and pays continuously.  On the same instances we measure the chain
//
//     E[w(randPr)]  <=  opt (integral)  <=  LP optimum
//                        fractional-online  <=  LP optimum
//
// The gap between fractional-online and E[w(randPr)] is the measured
// price of integrality-plus-all-or-nothing-payoff — the exact modelling
// difference the paper's introduction highlights.
#include <iostream>

#include "algos/fractional.hpp"
#include "algos/offline.hpp"
#include "bench_common.hpp"
#include "gen/random_instances.hpp"

namespace osp {
namespace {

void run() {
  Table table({"m", "n", "k", "smax", "E[randPr]", "opt (int)",
               "frac-online", "LP opt", "frac/randPr"});
  Rng master(112358);
  const int trials = 500;

  struct Row {
    std::size_t m, n, k;
    bool weighted;
  };
  for (Row r : {Row{12, 30, 2, false}, Row{16, 30, 3, false},
                Row{20, 30, 4, false}, Row{24, 12, 3, false},
                Row{16, 24, 3, true}, Row{24, 16, 3, true}}) {
    Rng gen = master.split(r.m * 10 + r.k + (r.weighted ? 1000 : 0));
    WeightModel wm =
        r.weighted ? WeightModel::uniform(1, 8) : WeightModel::unit();
    Instance inst = random_instance(r.m, r.n, r.k, wm, gen);
    InstanceStats st = inst.stats();

    Rng runs = master.split(999 + r.m);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    OfflineResult opt = exact_optimum(inst);
    FractionalOutcome frac = fractional_online(inst);
    double lp = lp_upper_bound(inst);

    table.row({fmt(r.m), fmt(inst.num_elements()), fmt(r.k),
               fmt(st.sigma_max), bench::fmt_mean_ci(alg),
               fmt(opt.value, 2), fmt(frac.value, 2), fmt(lp, 2),
               fmt(frac.value / alg.mean(), 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: frac-online <= LP always; the "
               "frac/randPr column is the measured price of integral "
               "all-or-nothing payoff — it grows with density (smax), "
               "mirroring the sqrt(smax) in Corollary 6.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E12 / related-work comparator (fractional rows-online packing)",
      "The same instances under the Buchbinder-Naor-style fractional "
      "model vs the paper's integral all-or-nothing model.");
  osp::run();
  return 0;
}
