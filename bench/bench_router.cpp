// E7 — the networking motivation (Section 1): video frames through a
// bottleneck router.
//
// Five tables:
//  (a) unbuffered drop policies on the GOP video workload across traffic
//      intensities — randPr vs the natural deterministic heuristics,
//      in delivered frame VALUE (an I frame is worth 4 P frames);
//  (b) buffered router (open problem 2): goodput vs buffer size per
//      ranking policy;
//  (c) burstiness sweep with on/off traffic: burstier arrivals (larger
//      σmax) hurt everyone, randPr degrades most gracefully in value;
//  (d) multi-stream overload: 64 streams / ≥1M packets into a link at a
//      third of the offered load — the heavy-traffic regime the indexed
//      heap queue (net/queue.hpp) exists for;
//  (e) queue-structure throughput: slots/sec of the indexed-heap router
//      vs the full-sort reference on the largest buffered workload, with
//      a decision-identity cross-check between the two paths;
//  (f) sustained multi-link serving (net/serve.hpp): the event-machine
//      runtime on the sustained/* scenarios — steady state across worker
//      counts plus a saturation ramp, every run proven stats-identical
//      to the serial reference oracle before its timing is reported, and
//      a packets/sec summary gate.
//
// The workload draws run as independent trials on the shared batch
// runner: per-draw Rngs are split from the master serially in the seed
// repo's exact order, each trial generates its workload once and runs
// every policy against it (like the seed's serial inner loop), and
// aggregation walks the results in draw order — so the printed numbers
// match the original serial loops bit for bit at any thread count.
// Policies and rankers are constructed once per worker thread and
// re-armed per draw through the reseed() API, so steady-state trials are
// allocation-free.
//
// `bench_router --smoke` runs every section (including the (e)
// cross-check) at toy sizes; scripts/check.sh drives that under
// ASan/UBSan on every repository check.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>

#include "api/ranker_registry.hpp"
#include "bench_common.hpp"
#include "core/cpu_features.hpp"
#include "engine/batch_runner.hpp"
#include "gen/traffic.hpp"
#include "gen/video.hpp"
#include "net/router_sim.hpp"
#include "net/serve.hpp"

namespace osp {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void unbuffered_video(api::JsonSink& json, bool smoke) {
  std::cout << "-- (a) unbuffered router, GOP video workload --\n";
  Table table({"streams", "policy", "frames ok", "of", "value ok", "of",
               "goodput"});
  Rng master(100);
  const api::ScenarioSpec& scenario =
      api::scenarios().at("router/unbuffered");
  const int draws = smoke ? 4 : scenario.default_trials;

  // Policies come from the registry; display labels from the policies
  // themselves (the JSON rows key on them, so they must stay stable).
  const std::vector<std::string> policy_specs = {
      "randpr",       "randpr:filt",     "uniform-random",
      "greedy:first", "greedy:maxw",     "greedy:progress",
      "greedy:srpt",  "greedy:density",  "round-robin"};
  // The trial body reseeds policies[0..2] with dedicated per-draw Rng
  // streams; guard the hardwired indices against spec-list reordering
  // (a silently skipped reseed would correlate every draw).
  OSP_REQUIRE(policy_specs[0] == "randpr" &&
              policy_specs[1] == "randpr:filt" &&
              policy_specs[2] == "uniform-random");
  const std::vector<std::string> policy_names =
      bench::display_names(policy_specs);
  const std::size_t num_policies = policy_specs.size();

  // One policy set per worker, built on first use and reseeded per draw.
  struct Worker {
    std::vector<std::unique_ptr<OnlineAlgorithm>> policies;
  };
  std::vector<Worker> workers(engine::shared_runner().num_threads());

  // The streams axis is the "router/unbuffered" catalog sweep; the split
  // keys derive from the cell values, preserving the historical streams.
  for (const api::ScenarioSpec& cell : api::expand(scenario)) {
    const std::size_t streams = cell.streams;
    // Serial prep: the same master.split() call sequence as the seed loop.
    std::vector<Rng> wl_rngs, rp_rngs, rpf_rngs, ur_rngs;
    for (int d = 0; d < draws; ++d) {
      wl_rngs.push_back(master.split(streams * 100 + d));
      rp_rngs.push_back(master.split(50000 + streams * 100 + d));
      rpf_rngs.push_back(master.split(60000 + streams * 100 + d));
      ur_rngs.push_back(master.split(70000 + streams * 100 + d));
    }

    struct CellResult {
      double frames = 0, value = 0, total_frames = 0, total_value = 0;
    };
    // One trial per draw: the workload is generated once and all policies
    // run against it, exactly like the seed's serial inner loop.
    auto cells = engine::shared_runner().map<std::vector<CellResult>>(
        static_cast<std::size_t>(draws),
        [&](std::size_t d, engine::TrialContext& ctx) {
          Rng wl_rng = wl_rngs[d];
          VideoWorkload vw = api::build_video(cell, wl_rng);

          Worker& w = workers[ctx.thread_index];
          if (w.policies.empty())
            for (const std::string& spec : policy_specs)
              w.policies.push_back(api::policies().make(spec, Rng(0)));
          // Re-arm the randomized policies with this draw's streams; the
          // deterministic baselines reset themselves in start().
          w.policies[0]->reseed(rp_rngs[d]);
          w.policies[1]->reseed(rpf_rngs[d]);
          w.policies[2]->reseed(ur_rngs[d]);

          std::vector<CellResult> row;
          row.reserve(num_policies);
          for (std::size_t p = 0; p < num_policies; ++p) {
            RouterStats st = simulate_router(vw.schedule, *w.policies[p], 1);
            row.push_back(CellResult{
                static_cast<double>(st.frames_delivered), st.value_delivered,
                static_cast<double>(st.frames_total), st.value_total});
          }
          return row;
        });

    for (std::size_t p = 0; p < num_policies; ++p) {
      CellResult acc;
      for (int d = 0; d < draws; ++d) {
        const CellResult& c = cells[static_cast<std::size_t>(d)][p];
        acc.frames += c.frames;
        acc.value += c.value;
        acc.total_frames += c.total_frames;
        acc.total_value += c.total_value;
      }
      table.row({fmt(streams), policy_names[p], fmt(acc.frames / draws, 1),
                 fmt(acc.total_frames / draws, 0), fmt(acc.value / draws, 1),
                 fmt(acc.total_value / draws, 0),
                 fmt(acc.value / acc.total_value, 3)});
      json.write(
          api::Row{}
              .add("sweep", "unbuffered_video")
              .add("streams", streams)
              .add("policy", policy_names[p])
              .add("frames_ok", acc.frames / draws)
              .add("frames_total", acc.total_frames / draws)
              .add("value_ok", acc.value / draws)
              .add("value_total", acc.total_value / draws)
              .add("goodput", acc.value / acc.total_value));
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: randPr beats the memoryless randomized "
               "baselines (uniform-random, round-robin) at every load.  "
               "The dead-set-filtering variant (randPr/filt) closes most "
               "of the gap to the greedy heuristics, which win on this "
               "benign average-case traffic — but are catastrophically "
               "fragile in the worst case (see E4/E5): randPr trades a "
               "little average goodput for its k*sqrt(smax) guarantee.\n\n";
}

// Shared per-worker state of the buffered sweeps: rankers (constructed
// once through the registry, reseeded per draw) plus the router scratch
// (queue, slot index, tallies), all reused across draws.
struct BufferedWorker {
  std::vector<std::unique_ptr<FrameRanker>> rankers;  // parallel to names
  BufferedRouterScratch scratch;

  void ensure(const std::vector<std::string>& names) {
    if (!rankers.empty()) return;
    rankers.reserve(names.size());
    for (const std::string& name : names)
      rankers.push_back(api::rankers().make(name, Rng(0)));
  }
};

/// Index of `name` in `names` (the reseed targets below are found by
/// name, not by hardwired position, so list edits cannot silently skip a
/// reseed).
std::size_t ranker_index(const std::vector<std::string>& names,
                         const std::string& name) {
  auto it = std::find(names.begin(), names.end(), name);
  OSP_REQUIRE_MSG(it != names.end(), "ranker '" << name
                                                << "' missing from the "
                                                   "bench's ranker list");
  return static_cast<std::size_t>(it - names.begin());
}

void buffered_sweep(api::JsonSink& json, bool smoke) {
  std::cout << "-- (b) buffered router (open problem 2) --\n";
  Table table({"buffer", "policy", "goodput"});
  Rng master(200);
  // The buffer ladder AND the draw count come from the scenario.
  const api::ScenarioSpec& scenario = api::scenarios().at(
      smoke ? "router/buffered-smoke" : "router/buffered");
  const int draws = scenario.default_trials;
  // Every registered ranker competes, in registration order — the table
  // and JSON keys are the registry's display names.
  const std::vector<std::string> ranker_names = api::rankers().names();
  const std::size_t num_rankers = ranker_names.size();
  const std::size_t idx_randpr = ranker_index(ranker_names, "randPr");
  const std::size_t idx_rnd = ranker_index(ranker_names, "random-drop");
  // Worker-count determinism depends on every randomized ranker getting
  // a dedicated per-draw reseed stream; refuse to sweep one this loop
  // has no stream for rather than silently correlating its draws.
  for (const api::RankerInfo& info : api::rankers().entries())
    OSP_REQUIRE_MSG(!info.randomized || info.name == "randPr" ||
                        info.name == "random-drop",
                    "randomized ranker '"
                        << info.name
                        << "' has no per-draw reseed stream in "
                           "buffered_sweep; wire one before benching it");
  std::vector<BufferedWorker> workers(engine::shared_runner().num_threads());

  for (const api::ScenarioSpec& cell : api::expand(scenario)) {
    const std::size_t buf = cell.buffer;
    std::vector<Rng> wl_rngs, randpr_rngs, rnd_rngs;
    for (int d = 0; d < draws; ++d) {
      wl_rngs.push_back(master.split(buf * 100 + d));
      randpr_rngs.push_back(master.split(90000 + buf * 100 + d));
      rnd_rngs.push_back(master.split(95000 + buf * 100 + d));
    }

    auto goodputs = engine::shared_runner().map<std::vector<double>>(
        static_cast<std::size_t>(draws),
        [&](std::size_t d, engine::TrialContext& ctx) {
          Rng wl_rng = wl_rngs[d];
          VideoWorkload vw = api::build_video(cell, wl_rng);
          BufferedRouterParams rp{.service_rate = cell.service_rate,
                                  .buffer_size = buf,
                                  .drop_dead_frames = true};

          BufferedWorker& w = workers[ctx.thread_index];
          w.ensure(ranker_names);
          w.rankers[idx_randpr]->reseed(randpr_rngs[d]);
          w.rankers[idx_rnd]->reseed(rnd_rngs[d]);
          std::vector<double> row;
          row.reserve(num_rankers);
          for (std::size_t p = 0; p < num_rankers; ++p)
            row.push_back(simulate_buffered_router(vw.schedule,
                                                   *w.rankers[p], rp,
                                                   &w.scratch)
                              .goodput());
          return row;
        });

    for (std::size_t p = 0; p < num_rankers; ++p) {
      double good = 0;
      for (int d = 0; d < draws; ++d)
        good += goodputs[static_cast<std::size_t>(d)][p];
      table.row({fmt(buf), ranker_names[p], fmt(good / draws, 3)});
      json.write(
          api::Row{}
              .add("sweep", "buffered")
              .add("buffer", buf)
              .add("policy", ranker_names[p])
              .add("goodput", good / draws));
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: goodput rises with buffer size for every "
               "policy; the policy gap narrows as buffering absorbs "
               "bursts (the effect the paper leaves open).\n\n";
}

void burstiness_sweep(api::JsonSink& json, bool smoke) {
  std::cout << "-- (c) burstiness sweep (on/off traffic, frames of 3 "
               "packets) --\n";
  Table table({"burst profile", "smax", "policy", "value ok", "of",
               "goodput"});
  Rng master(300);
  const int draws = smoke ? 4 : 25;
  const std::vector<std::string> policy_specs = {"randpr", "greedy:progress",
                                                 "greedy:first"};
  // policies[0] is reseeded per draw below; guard the hardwired index.
  OSP_REQUIRE(policy_specs[0] == "randpr");
  const std::vector<std::string> policy_names =
      bench::display_names(policy_specs);
  const std::size_t num_policies = policy_specs.size();

  struct Worker {
    std::vector<std::unique_ptr<OnlineAlgorithm>> policies;
  };
  std::vector<Worker> workers(engine::shared_runner().num_threads());

  struct Profile {
    std::string name;
    double p_on_off, p_off_on, rate_on, rate_off;
  };
  for (const Profile& prof :
       {Profile{"mild (poissonish)", 0.5, 0.5, 1.5, 1.5},
        Profile{"moderate", 0.3, 0.3, 3.0, 0.5},
        Profile{"savage", 0.15, 0.1, 6.0, 0.1}}) {
    std::vector<Rng> wl_rngs, rp_rngs;
    for (int d = 0; d < draws; ++d) {
      wl_rngs.push_back(master.split(d * 17 + static_cast<std::uint64_t>(
                                                  prof.rate_on * 10)));
      rp_rngs.push_back(master.split(110000 + d));
    }

    struct DrawResult {
      double smax = 0;
      std::vector<double> value, total;  // per policy
    };
    auto cells = engine::shared_runner().map<DrawResult>(
        static_cast<std::size_t>(draws),
        [&](std::size_t d, engine::TrialContext& ctx) {
          Rng wl_rng = wl_rngs[d];
          OnOffBursts bursts(prof.p_on_off, prof.p_off_on, prof.rate_on,
                             prof.rate_off);
          FrameSchedule sched = bursty_schedule(bursts, 80, 3, wl_rng, 1.0);

          Worker& w = workers[ctx.thread_index];
          if (w.policies.empty())
            for (const std::string& spec : policy_specs)
              w.policies.push_back(api::policies().make(spec, Rng(0)));
          w.policies[0]->reseed(rp_rngs[d]);
          DrawResult row;
          row.smax = static_cast<double>(sched.max_burst());
          for (std::size_t p = 0; p < num_policies; ++p) {
            RouterStats st = simulate_router(sched, *w.policies[p], 1);
            row.value.push_back(st.value_delivered);
            row.total.push_back(st.value_total);
          }
          return row;
        });

    double smax_acc = 0;
    for (int d = 0; d < draws; ++d)
      smax_acc += cells[static_cast<std::size_t>(d)].smax;
    for (std::size_t p = 0; p < num_policies; ++p) {
      double value = 0, total = 0;
      for (int d = 0; d < draws; ++d) {
        value += cells[static_cast<std::size_t>(d)].value[p];
        total += cells[static_cast<std::size_t>(d)].total[p];
      }
      table.row({prof.name, fmt(smax_acc / draws, 1), policy_names[p],
                 fmt(value / draws, 1), fmt(total / draws, 0),
                 fmt(value / total, 3)});
      json.write(
          api::Row{}
              .add("sweep", "burstiness")
              .add("profile", prof.name)
              .add("smax", smax_acc / draws)
              .add("policy", policy_names[p])
              .add("value_ok", value / draws)
              .add("value_total", total / draws)
              .add("goodput", value / total));
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: goodput falls with burstiness for all "
               "policies (sqrt(smax) in the bound); the ordering among "
               "policies is preserved.\n\n";
}

/// Parameters of the big buffered scenario shared by sections (d)/(e).
struct OverloadConfig {
  api::ScenarioSpec spec;            // streams / frames / service rate
  std::vector<std::size_t> buffers;  // ascending; back() is the largest
};

OverloadConfig overload_config(bool smoke) {
  // Full size ("router/overload"): 64 streams × 6720 frames = 64 × 15680
  // packets ≈ 1.0M packets over ~20k slots (≈50 packets/slot against a
  // service rate of 32 — sustained ~1.6× overload).  The buffer ladder is
  // the scenario's declared sweep axis.
  OverloadConfig cfg;
  cfg.spec = api::scenarios().at(smoke ? "router/overload-smoke"
                                       : "router/overload");
  for (const api::ScenarioSpec& cell : api::expand(cfg.spec))
    cfg.buffers.push_back(cell.buffer);
  return cfg;
}

VideoWorkload overload_workload(const OverloadConfig& cfg, Rng rng) {
  return api::build_video(cfg.spec, rng);
}

void overload_sweep(api::JsonSink& json, bool smoke) {
  const OverloadConfig cfg = overload_config(smoke);
  std::cout << "-- (d) multi-stream overload (" << cfg.spec.streams
            << " streams, service rate " << cfg.spec.service_rate << ") --\n";
  Table table({"buffer", "policy", "packets", "served", "dropped",
               "goodput"});
  Rng master(400);
  const int draws = cfg.spec.default_trials;
  // The frame-aware rankers plus drop-tail, resolved through the
  // registry (random-drop sits out: it mirrors drop-tail under sustained
  // overload and the full-size runs are expensive).
  const std::vector<std::string> ranker_names = {"randPr", "by-weight",
                                                 "drop-tail"};
  const std::size_t num_rankers = ranker_names.size();
  const std::size_t idx_randpr = ranker_index(ranker_names, "randPr");
  std::vector<BufferedWorker> workers(engine::shared_runner().num_threads());

  std::vector<Rng> wl_rngs, randpr_rngs;
  for (int d = 0; d < draws; ++d) {
    wl_rngs.push_back(master.split(1000 + d));
    randpr_rngs.push_back(master.split(2000 + d));
  }

  struct Cell {
    double packets = 0, served = 0, dropped = 0, value = 0, total = 0;
  };
  // One trial per draw; each draw generates its workload once and sweeps
  // the whole buffer ladder on it.
  auto cells = engine::shared_runner().map<std::vector<Cell>>(
      static_cast<std::size_t>(draws),
      [&](std::size_t d, engine::TrialContext& ctx) {
        VideoWorkload vw = overload_workload(cfg, wl_rngs[d]);
        BufferedWorker& w = workers[ctx.thread_index];
        w.ensure(ranker_names);
        std::vector<Cell> row(cfg.buffers.size() * num_rankers);
        for (std::size_t b = 0; b < cfg.buffers.size(); ++b) {
          BufferedRouterParams rp{.service_rate = cfg.spec.service_rate,
                                  .buffer_size = cfg.buffers[b],
                                  .drop_dead_frames = true};
          w.rankers[idx_randpr]->reseed(randpr_rngs[d]);
          for (std::size_t p = 0; p < num_rankers; ++p) {
            RouterStats st = simulate_buffered_router(
                vw.schedule, *w.rankers[p], rp, &w.scratch);
            OSP_REQUIRE(st.packets_arrived ==
                        st.packets_served + st.packets_dropped);
            row[b * num_rankers + p] =
                Cell{static_cast<double>(st.packets_arrived),
                     static_cast<double>(st.packets_served),
                     static_cast<double>(st.packets_dropped),
                     st.value_delivered, st.value_total};
          }
        }
        return row;
      });

  for (std::size_t b = 0; b < cfg.buffers.size(); ++b) {
    for (std::size_t p = 0; p < num_rankers; ++p) {
      Cell acc;
      for (int d = 0; d < draws; ++d) {
        const Cell& c = cells[static_cast<std::size_t>(d)][b * num_rankers + p];
        acc.packets += c.packets;
        acc.served += c.served;
        acc.dropped += c.dropped;
        acc.value += c.value;
        acc.total += c.total;
      }
      table.row({fmt(cfg.buffers[b]), ranker_names[p],
                 fmt(acc.packets / draws, 0), fmt(acc.served / draws, 0),
                 fmt(acc.dropped / draws, 0), fmt(acc.value / acc.total, 3)});
      json.write(
          api::Row{}
              .add("sweep", "overload")
              .add("streams", cfg.spec.streams)
              .add("service_rate", cfg.spec.service_rate)
              .add("buffer", cfg.buffers[b])
              .add("policy", ranker_names[p])
              .add("packets", acc.packets / draws)
              .add("served", acc.served / draws)
              .add("dropped", acc.dropped / draws)
              .add("goodput", acc.value / acc.total));
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: under sustained overload the frame-aware "
               "rankers keep whole frames alive while drop-tail sheds "
               "packets of every frame; bigger buffers widen the gap.\n\n";
}

void throughput_section(api::JsonSink& json, bool smoke) {
  const OverloadConfig cfg = overload_config(smoke);
  const std::size_t buffer = cfg.buffers.back();
  std::cout << "-- (e) queue-structure throughput (buffer " << buffer
            << ", largest overload workload) --\n";
  Table table({"path", "slots", "packets", "seconds", "slots/sec",
               "speedup"});

  VideoWorkload vw = overload_workload(cfg, Rng(4242));
  const BufferedRouterParams rp{.service_rate = cfg.spec.service_rate,
                                .buffer_size = buffer,
                                .drop_dead_frames = true};
  const double slots = static_cast<double>(vw.schedule.horizon);
  const double packets = static_cast<double>(vw.schedule.total_packets());
  auto ranker = api::rankers().make("randPr", Rng(7));

  // Old path: the straightened-out full-sort reference.
  ranker->reseed(Rng(7));
  auto t0 = std::chrono::steady_clock::now();
  RouterStats sort_stats =
      simulate_buffered_router_reference(vw.schedule, *ranker, rp);
  const double sort_s = seconds_since(t0);

  // New path: the indexed-heap PacketQueue.
  BufferedRouterScratch scratch;
  ranker->reseed(Rng(7));
  t0 = std::chrono::steady_clock::now();
  RouterStats heap_stats =
      simulate_buffered_router(vw.schedule, *ranker, rp, &scratch);
  const double heap_s = seconds_since(t0);

  // Decision-identity cross-check: the two paths must agree on every
  // counter before their timings mean anything.
  OSP_REQUIRE(heap_stats.packets_arrived == sort_stats.packets_arrived);
  OSP_REQUIRE(heap_stats.packets_served == sort_stats.packets_served);
  OSP_REQUIRE(heap_stats.packets_dropped == sort_stats.packets_dropped);
  OSP_REQUIRE(heap_stats.frames_delivered == sort_stats.frames_delivered);
  OSP_REQUIRE(heap_stats.value_delivered == sort_stats.value_delivered);

  const double sort_rate = slots / sort_s;
  const double heap_rate = slots / heap_s;
  const double speedup = sort_s / heap_s;
  table.row({"sort", fmt(slots, 0), fmt(packets, 0), fmt(sort_s, 3),
             fmt(sort_rate, 0), "1.0"});
  table.row({"heap", fmt(slots, 0), fmt(packets, 0), fmt(heap_s, 3),
             fmt(heap_rate, 0), fmt(speedup, 1)});
  table.print(std::cout);
  for (const char* path : {"sort", "heap"}) {
    const bool heap = std::strcmp(path, "heap") == 0;
    json.write(
          api::Row{}
              .add("sweep", "throughput")
              .add("path", path)
              .add("isa", simd::active_isa_name())
              .add("buffer", buffer)
              .add("slots", slots)
              .add("packets", packets)
              .add("seconds", heap ? heap_s : sort_s)
              .add("slots_per_sec", heap ? heap_rate : sort_rate)
              .add("speedup_vs_sort", heap ? speedup : 1.0)
              .add("cross_check", "pass"));
  }
  std::cout << "Cross-check: heap and sort paths decision-identical.  "
            << "Gate (heap >= 3x sort on the largest buffered sweep): "
            << (speedup >= 3.0 ? "MET" : "NOT MET") << " (" << fmt(speedup, 1)
            << "x)"
            << (smoke ? " — gate is judged on the full-size run; smoke "
                        "queues are too small for the asymptotic gap"
                      : "")
            << ".\n";
}

// Floor for the sustained packets/sec gate, mirrored by
// scripts/check_bench_json.py (the validator's copy is the source of
// truth); sized well below the reference-container measurement so
// scheduler noise cannot flap the gate while a real runtime regression
// still trips it.  Judged on the full-size run: smoke workloads are far
// too small for steady-state throughput.
constexpr double kSustainedMinPacketsPerSec = 2.0e6;

ServeSpec serve_spec_of(const api::ScenarioSpec& cell, std::size_t workers) {
  return ServeSpec{.links = cell.links,
                   .service_rate = cell.service_rate,
                   .buffer = cell.buffer,
                   .work_conserving = true,
                   .drop_dead_frames = true,
                   .workers = workers,
                   .window = cell.window};
}

void emit_sustained_row(api::JsonSink& json, Table& table,
                        const api::ScenarioSpec& cell, const char* ranker,
                        std::size_t workers, const VideoWorkload& vw,
                        const SustainedStats& st, double secs) {
  const double packets = static_cast<double>(st.router.packets_arrived);
  const double pps = packets / secs;
  const double starved_share =
      cell.streams > 0
          ? static_cast<double>(st.streams_starved()) /
                static_cast<double>(cell.streams)
          : 0.0;
  table.row({cell.display_label(), ranker, fmt(workers), fmt(cell.links),
             fmt(cell.service_rate), fmt(st.router.goodput(), 3),
             fmt(st.serve_latency.percentile(99)),
             fmt(st.streams_starved()), fmt(pps, 0), "pass"});
  json.write(api::Row{}
                 .add("sweep", "sustained")
                 .add("scenario", cell.display_label())
                 .add("ranker", ranker)
                 .add("links", cell.links)
                 .add("workers", workers)
                 .add("streams", cell.streams)
                 .add("service_rate", cell.service_rate)
                 .add("buffer", cell.buffer)
                 .add("window", cell.window)
                 .add("slots", vw.schedule.horizon)
                 .add("packets", st.router.packets_arrived)
                 .add("served", st.router.packets_served)
                 .add("dropped", st.router.packets_dropped)
                 .add("refused_dead", st.refused_dead)
                 .add("evictions", st.evictions)
                 .add("cascade_drops", st.cascade_drops)
                 .add("leftover", st.leftover)
                 .add("goodput", st.router.goodput())
                 .add("window_goodput_mean", st.window_goodput_mean())
                 .add("window_goodput_min", st.window_goodput_min())
                 .add("serve_p50", st.serve_latency.percentile(50))
                 .add("serve_p90", st.serve_latency.percentile(90))
                 .add("serve_p99", st.serve_latency.percentile(99))
                 .add("drop_p50", st.drop_latency.percentile(50))
                 .add("drop_p90", st.drop_latency.percentile(90))
                 .add("drop_p99", st.drop_latency.percentile(99))
                 .add("streams_starved", st.streams_starved())
                 .add("starved_slots_max", st.starved_slots_max())
                 .add("starved_share", starved_share)
                 .add("seconds", secs)
                 .add("packets_per_sec", pps)
                 .add("cross_check", "pass"));
}

void sustained_section(api::JsonSink& json, bool smoke) {
  std::cout << "-- (f) sustained multi-link serving runtime --\n";
  Table table({"scenario", "ranker", "wrk", "links", "rate", "goodput",
               "p99 lat", "starved", "pkts/sec", "check"});
  Rng master(500);

  double best_pps = 0.0;
  std::size_t best_workers = 1;

  // (f1) steady state: one workload draw, randPr and drop-tail, each at
  // several worker counts.  Every run must be stats-identical to the
  // serial reference oracle before its timing means anything (the trace
  // identity half of the contract lives in test_serve.cpp).
  const api::ScenarioSpec& steady = api::scenarios().at(
      smoke ? "sustained/steady-smoke" : "sustained/steady");
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};
  {
    Rng wl_rng = master.split(1);
    const VideoWorkload vw = api::build_video(steady, wl_rng);
    const Rng ranker_seed = master.split(2);
    for (const char* name : {"randPr", "drop-tail"}) {
      auto ranker = api::rankers().make(name, Rng(0));
      ranker->reseed(ranker_seed);
      const SustainedStats ref = serve_sustained_reference(
          vw.schedule, vw.stream_of, *ranker, serve_spec_of(steady, 1));
      for (std::size_t workers : worker_counts) {
        ranker->reseed(ranker_seed);
        auto t0 = std::chrono::steady_clock::now();
        const SustainedStats st =
            serve_sustained(vw.schedule, vw.stream_of, *ranker,
                            serve_spec_of(steady, workers));
        const double secs = seconds_since(t0);
        OSP_REQUIRE_MSG(st == ref, "sustained runtime diverged from the "
                                   "serial reference (ranker "
                                       << name << ", workers " << workers
                                       << ")");
        const double pps =
            static_cast<double>(st.router.packets_arrived) / secs;
        if (std::strcmp(name, "randPr") == 0 && pps > best_pps) {
          best_pps = pps;
          best_workers = workers;
        }
        emit_sustained_row(json, table, steady, name, workers, vw, st, secs);
      }
    }
  }

  // (f2) saturation ramp: service-rate rising through the knee, workers
  // fixed, every cell reference-checked.
  const api::ScenarioSpec& ramp = api::scenarios().at(
      smoke ? "sustained/ramp-smoke" : "sustained/ramp");
  std::size_t ci = 0;
  for (const api::ScenarioSpec& cell : api::expand(ramp)) {
    Rng wl_rng = master.split(1000 + ci);
    const VideoWorkload vw = api::build_video(cell, wl_rng);
    auto ranker = api::rankers().make("randPr", Rng(0));
    const Rng ranker_seed = master.split(2000 + ci);
    ranker->reseed(ranker_seed);
    const SustainedStats ref = serve_sustained_reference(
        vw.schedule, vw.stream_of, *ranker, serve_spec_of(cell, 1));
    ranker->reseed(ranker_seed);
    auto t0 = std::chrono::steady_clock::now();
    const SustainedStats st = serve_sustained(vw.schedule, vw.stream_of,
                                              *ranker, serve_spec_of(cell, 2));
    const double secs = seconds_since(t0);
    OSP_REQUIRE_MSG(st == ref, "sustained ramp cell '" << cell.display_label()
                                                       << "' diverged from "
                                                          "the reference");
    emit_sustained_row(json, table, cell, "randPr", 2, vw, st, secs);
    ++ci;
  }
  table.print(std::cout);

  json.write(api::Row{}
                 .add("sweep", "sustained_summary")
                 .add("label", steady.name)
                 .add("ranker", "randPr")
                 .add("workers", best_workers)
                 .add("packets_per_sec", best_pps)
                 .add("min_packets_per_sec", kSustainedMinPacketsPerSec)
                 .add("gate", best_pps >= kSustainedMinPacketsPerSec
                                  ? "MET"
                                  : "NOT MET"));
  std::cout << "Cross-check: every sustained run stats-identical to the "
               "serial reference.  Gate (randPr steady >= "
            << fmt(kSustainedMinPacketsPerSec, 0) << " packets/sec): "
            << (best_pps >= kSustainedMinPacketsPerSec ? "MET" : "NOT MET")
            << " (" << fmt(best_pps, 0) << " at workers=" << best_workers
            << ")"
            << (smoke ? " — gate is judged on the full-size run; smoke "
                        "workloads are too small for steady state"
                      : "")
            << ".\n";
}

}  // namespace
}  // namespace osp

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  osp::bench::banner(
      "E7 / Section 1 motivation (bottleneck router, video frames)",
      std::string("Frame-aware random priorities vs classic drop heuristics "
                  "on the simulated router; the buffering extension runs on "
                  "the indexed-heap PacketQueue.  All trials run on the "
                  "shared batch runner.") +
          (smoke ? "  [--smoke: toy sizes]" : ""));
  // Smoke runs write a separate artifact so a toy-size run can never
  // overwrite the committed full-size BENCH_router.json.
  osp::api::JsonSink json(smoke ? "router_smoke" : "router",
                          osp::bench::session().threads());
  osp::unbuffered_video(json, smoke);
  osp::buffered_sweep(json, smoke);
  osp::burstiness_sweep(json, smoke);
  osp::overload_sweep(json, smoke);
  osp::throughput_section(json, smoke);
  osp::sustained_section(json, smoke);
  return 0;
}
