// E7 — the networking motivation (Section 1): video frames through a
// bottleneck router.
//
// Three tables:
//  (a) unbuffered drop policies on the GOP video workload across traffic
//      intensities — randPr vs the natural deterministic heuristics,
//      in delivered frame VALUE (an I frame is worth 4 P frames);
//  (b) buffered router (open problem 2): goodput vs buffer size per
//      ranking policy;
//  (c) burstiness sweep with on/off traffic: burstier arrivals (larger
//      σmax) hurt everyone, randPr degrades most gracefully in value.
//
// The workload draws run as independent trials on the shared batch
// runner: per-draw Rngs are split from the master serially in the seed
// repo's exact order, each trial generates its workload once and runs
// every policy against it (like the seed's serial inner loop), and
// aggregation walks the results in draw order — so the printed numbers
// match the original serial loops bit for bit at any thread count.
#include <iostream>

#include "algos/baselines.hpp"
#include "bench_common.hpp"
#include "core/rand_pr.hpp"
#include "engine/batch_runner.hpp"
#include "gen/traffic.hpp"
#include "gen/video.hpp"
#include "net/router_sim.hpp"

namespace osp {
namespace {

void unbuffered_video(bench::JsonSink& json) {
  std::cout << "-- (a) unbuffered router, GOP video workload --\n";
  Table table({"streams", "policy", "frames ok", "of", "value ok", "of",
               "goodput"});
  Rng master(100);
  const int draws = 25;

  const std::vector<std::string> policy_names = {
      "randPr",       "randPr/filt",     "uniform-random",
      "greedy-first", "greedy-maxw",     "greedy-progress",
      "greedy-srpt",  "greedy-density",  "round-robin"};
  const std::size_t num_policies = policy_names.size();

  for (std::size_t streams : {4, 8, 12}) {
    // Serial prep: the same master.split() call sequence as the seed loop.
    std::vector<Rng> wl_rngs, rp_rngs, rpf_rngs, ur_rngs;
    for (int d = 0; d < draws; ++d) {
      wl_rngs.push_back(master.split(streams * 100 + d));
      rp_rngs.push_back(master.split(50000 + streams * 100 + d));
      rpf_rngs.push_back(master.split(60000 + streams * 100 + d));
      ur_rngs.push_back(master.split(70000 + streams * 100 + d));
    }

    struct CellResult {
      double frames = 0, value = 0, total_frames = 0, total_value = 0;
    };
    // One trial per draw: the workload is generated once and all policies
    // run against it, exactly like the seed's serial inner loop.
    auto cells = engine::shared_runner().map<std::vector<CellResult>>(
        static_cast<std::size_t>(draws),
        [&](std::size_t d, engine::TrialContext&) {
          VideoParams params;
          params.num_streams = streams;
          params.frames_per_stream = 24;
          Rng wl_rng = wl_rngs[d];
          VideoWorkload vw = make_video_workload(params, wl_rng);

          std::vector<std::unique_ptr<OnlineAlgorithm>> policies;
          policies.push_back(std::make_unique<RandPr>(rp_rngs[d]));
          policies.push_back(std::make_unique<RandPr>(
              rpf_rngs[d], RandPrOptions{.filter_dead = true}));
          policies.push_back(
              std::make_unique<UniformRandomChoice>(ur_rngs[d]));
          for (auto& baseline : make_deterministic_baselines())
            policies.push_back(std::move(baseline));

          std::vector<CellResult> row;
          row.reserve(num_policies);
          for (std::size_t p = 0; p < num_policies; ++p) {
            // Guard the hardcoded label list against factory reordering.
            OSP_REQUIRE(policies[p]->name() == policy_names[p]);
            RouterStats st = simulate_router(vw.schedule, *policies[p], 1);
            row.push_back(CellResult{
                static_cast<double>(st.frames_delivered), st.value_delivered,
                static_cast<double>(st.frames_total), st.value_total});
          }
          return row;
        });

    for (std::size_t p = 0; p < num_policies; ++p) {
      CellResult acc;
      for (int d = 0; d < draws; ++d) {
        const CellResult& c = cells[static_cast<std::size_t>(d)][p];
        acc.frames += c.frames;
        acc.value += c.value;
        acc.total_frames += c.total_frames;
        acc.total_value += c.total_value;
      }
      table.row({fmt(streams), policy_names[p], fmt(acc.frames / draws, 1),
                 fmt(acc.total_frames / draws, 0), fmt(acc.value / draws, 1),
                 fmt(acc.total_value / draws, 0),
                 fmt(acc.value / acc.total_value, 3)});
      json.writer()
          .begin_object()
          .kv("sweep", "unbuffered_video")
          .kv("streams", streams)
          .kv("policy", policy_names[p])
          .kv("frames_ok", acc.frames / draws)
          .kv("frames_total", acc.total_frames / draws)
          .kv("value_ok", acc.value / draws)
          .kv("value_total", acc.total_value / draws)
          .kv("goodput", acc.value / acc.total_value)
          .end_object();
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: randPr beats the memoryless randomized "
               "baselines (uniform-random, round-robin) at every load.  "
               "The dead-set-filtering variant (randPr/filt) closes most "
               "of the gap to the greedy heuristics, which win on this "
               "benign average-case traffic — but are catastrophically "
               "fragile in the worst case (see E4/E5): randPr trades a "
               "little average goodput for its k*sqrt(smax) guarantee.\n\n";
}

void buffered_sweep(bench::JsonSink& json) {
  std::cout << "-- (b) buffered router (open problem 2) --\n";
  Table table({"buffer", "policy", "goodput"});
  Rng master(200);
  const int draws = 25;
  const std::vector<std::string> policy_names = {"randPr", "by-weight",
                                                 "drop-tail", "random-drop"};
  const std::size_t num_policies = policy_names.size();

  for (std::size_t buf : {0, 2, 4, 8, 16}) {
    std::vector<Rng> wl_rngs, randpr_rngs, rnd_rngs;
    for (int d = 0; d < draws; ++d) {
      wl_rngs.push_back(master.split(buf * 100 + d));
      randpr_rngs.push_back(master.split(90000 + buf * 100 + d));
      rnd_rngs.push_back(master.split(95000 + buf * 100 + d));
    }

    auto goodputs = engine::shared_runner().map<std::vector<double>>(
        static_cast<std::size_t>(draws),
        [&](std::size_t d, engine::TrialContext&) {
          VideoParams params;
          params.num_streams = 10;
          params.frames_per_stream = 24;
          Rng wl_rng = wl_rngs[d];
          VideoWorkload vw = make_video_workload(params, wl_rng);
          BufferedRouterParams rp{.service_rate = 1,
                                  .buffer_size = buf,
                                  .drop_dead_frames = true};

          RandPrRanker randpr(randpr_rngs[d]);
          WeightRanker weight;
          FifoRanker fifo;
          RandomRanker rnd(rnd_rngs[d]);
          FrameRanker* rankers[] = {&randpr, &weight, &fifo, &rnd};
          std::vector<double> row;
          row.reserve(num_policies);
          for (std::size_t p = 0; p < num_policies; ++p) {
            OSP_REQUIRE(rankers[p]->name() == policy_names[p]);
            row.push_back(
                simulate_buffered_router(vw.schedule, *rankers[p], rp)
                    .goodput());
          }
          return row;
        });

    for (std::size_t p = 0; p < num_policies; ++p) {
      double good = 0;
      for (int d = 0; d < draws; ++d)
        good += goodputs[static_cast<std::size_t>(d)][p];
      table.row({fmt(buf), policy_names[p], fmt(good / draws, 3)});
      json.writer()
          .begin_object()
          .kv("sweep", "buffered")
          .kv("buffer", buf)
          .kv("policy", policy_names[p])
          .kv("goodput", good / draws)
          .end_object();
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: goodput rises with buffer size for every "
               "policy; the policy gap narrows as buffering absorbs "
               "bursts (the effect the paper leaves open).\n\n";
}

void burstiness_sweep(bench::JsonSink& json) {
  std::cout << "-- (c) burstiness sweep (on/off traffic, frames of 3 "
               "packets) --\n";
  Table table({"burst profile", "smax", "policy", "value ok", "of",
               "goodput"});
  Rng master(300);
  const int draws = 25;
  const std::vector<std::string> policy_names = {"randPr", "greedy-progress",
                                                 "greedy-first"};
  const std::size_t num_policies = policy_names.size();

  struct Profile {
    std::string name;
    double p_on_off, p_off_on, rate_on, rate_off;
  };
  for (const Profile& prof :
       {Profile{"mild (poissonish)", 0.5, 0.5, 1.5, 1.5},
        Profile{"moderate", 0.3, 0.3, 3.0, 0.5},
        Profile{"savage", 0.15, 0.1, 6.0, 0.1}}) {
    std::vector<Rng> wl_rngs, rp_rngs;
    for (int d = 0; d < draws; ++d) {
      wl_rngs.push_back(master.split(d * 17 + static_cast<std::uint64_t>(
                                                  prof.rate_on * 10)));
      rp_rngs.push_back(master.split(110000 + d));
    }

    struct DrawResult {
      double smax = 0;
      std::vector<double> value, total;  // per policy
    };
    auto cells = engine::shared_runner().map<DrawResult>(
        static_cast<std::size_t>(draws),
        [&](std::size_t d, engine::TrialContext&) {
          Rng wl_rng = wl_rngs[d];
          OnOffBursts bursts(prof.p_on_off, prof.p_off_on, prof.rate_on,
                             prof.rate_off);
          FrameSchedule sched = bursty_schedule(bursts, 80, 3, wl_rng, 1.0);

          RandPr rp(rp_rngs[d]);
          GreedyMostProgress gp;
          GreedyFirst gf;
          OnlineAlgorithm* algs[] = {&rp, &gp, &gf};
          DrawResult row;
          row.smax = static_cast<double>(sched.max_burst());
          for (std::size_t p = 0; p < num_policies; ++p) {
            OSP_REQUIRE(algs[p]->name() == policy_names[p]);
            RouterStats st = simulate_router(sched, *algs[p], 1);
            row.value.push_back(st.value_delivered);
            row.total.push_back(st.value_total);
          }
          return row;
        });

    double smax_acc = 0;
    for (int d = 0; d < draws; ++d)
      smax_acc += cells[static_cast<std::size_t>(d)].smax;
    for (std::size_t p = 0; p < num_policies; ++p) {
      double value = 0, total = 0;
      for (int d = 0; d < draws; ++d) {
        value += cells[static_cast<std::size_t>(d)].value[p];
        total += cells[static_cast<std::size_t>(d)].total[p];
      }
      table.row({prof.name, fmt(smax_acc / draws, 1), policy_names[p],
                 fmt(value / draws, 1), fmt(total / draws, 0),
                 fmt(value / total, 3)});
      json.writer()
          .begin_object()
          .kv("sweep", "burstiness")
          .kv("profile", prof.name)
          .kv("smax", smax_acc / draws)
          .kv("policy", policy_names[p])
          .kv("value_ok", value / draws)
          .kv("value_total", total / draws)
          .kv("goodput", value / total)
          .end_object();
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: goodput falls with burstiness for all "
               "policies (sqrt(smax) in the bound); the ordering among "
               "policies is preserved.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E7 / Section 1 motivation (bottleneck router, video frames)",
      "Frame-aware random priorities vs classic drop heuristics on the "
      "simulated router; plus the buffering extension.  All trials run "
      "on the shared batch runner.");
  osp::bench::JsonSink json("router");
  osp::unbuffered_video(json);
  osp::buffered_sweep(json);
  osp::burstiness_sweep(json);
  return 0;
}
