// E7 — the networking motivation (Section 1): video frames through a
// bottleneck router.
//
// Three tables:
//  (a) unbuffered drop policies on the GOP video workload across traffic
//      intensities — randPr vs the natural deterministic heuristics,
//      in delivered frame VALUE (an I frame is worth 4 P frames);
//  (b) buffered router (open problem 2): goodput vs buffer size per
//      ranking policy;
//  (c) burstiness sweep with on/off traffic: burstier arrivals (larger
//      σmax) hurt everyone, randPr degrades most gracefully in value.
#include <iostream>

#include "algos/baselines.hpp"
#include "bench_common.hpp"
#include "core/rand_pr.hpp"
#include "gen/traffic.hpp"
#include "gen/video.hpp"
#include "net/router_sim.hpp"

namespace osp {
namespace {

void unbuffered_video() {
  std::cout << "-- (a) unbuffered router, GOP video workload --\n";
  Table table({"streams", "policy", "frames ok", "of", "value ok", "of",
               "goodput"});
  Rng master(100);
  const int draws = 25;
  for (std::size_t streams : {4, 8, 12}) {
    // Accumulate per policy across workload draws.
    struct Acc {
      std::string name;
      double frames = 0, value = 0, total_frames = 0, total_value = 0;
    };
    std::vector<Acc> accs;
    auto acc_for = [&](const std::string& name) -> Acc& {
      for (auto& a : accs)
        if (a.name == name) return a;
      accs.push_back({name, 0, 0, 0, 0});
      return accs.back();
    };

    for (int d = 0; d < draws; ++d) {
      VideoParams params;
      params.num_streams = streams;
      params.frames_per_stream = 24;
      Rng wl_rng = master.split(streams * 100 + d);
      VideoWorkload vw = make_video_workload(params, wl_rng);

      auto run_policy = [&](OnlineAlgorithm& alg) {
        RouterStats st = simulate_router(vw.schedule, alg, 1);
        Acc& a = acc_for(alg.name());
        a.frames += static_cast<double>(st.frames_delivered);
        a.value += st.value_delivered;
        a.total_frames += static_cast<double>(st.frames_total);
        a.total_value += st.value_total;
      };

      RandPr rp(master.split(50000 + streams * 100 + d));
      run_policy(rp);
      RandPr rpf(master.split(60000 + streams * 100 + d),
                 {.filter_dead = true});
      run_policy(rpf);
      UniformRandomChoice ur(master.split(70000 + streams * 100 + d));
      run_policy(ur);
      const std::size_t num_algs = make_deterministic_baselines().size();
      for (std::size_t ai = 0; ai < num_algs; ++ai) {
        auto alg = std::move(make_deterministic_baselines()[ai]);
        run_policy(*alg);
      }
    }
    for (const Acc& a : accs)
      table.row({fmt(streams), a.name, fmt(a.frames / draws, 1),
                 fmt(a.total_frames / draws, 0), fmt(a.value / draws, 1),
                 fmt(a.total_value / draws, 0),
                 fmt(a.value / a.total_value, 3)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: randPr beats the memoryless randomized "
               "baselines (uniform-random, round-robin) at every load.  "
               "The dead-set-filtering variant (randPr/filt) closes most "
               "of the gap to the greedy heuristics, which win on this "
               "benign average-case traffic — but are catastrophically "
               "fragile in the worst case (see E4/E5): randPr trades a "
               "little average goodput for its k*sqrt(smax) guarantee.\n\n";
}

void buffered_sweep() {
  std::cout << "-- (b) buffered router (open problem 2) --\n";
  Table table({"buffer", "policy", "goodput"});
  Rng master(200);
  const int draws = 25;
  for (std::size_t buf : {0, 2, 4, 8, 16}) {
    struct Acc {
      std::string name;
      double good = 0;
    };
    std::vector<Acc> accs;
    auto add = [&](const std::string& name, double g) {
      for (auto& a : accs)
        if (a.name == name) {
          a.good += g;
          return;
        }
      accs.push_back({name, g});
    };
    for (int d = 0; d < draws; ++d) {
      VideoParams params;
      params.num_streams = 10;
      params.frames_per_stream = 24;
      Rng wl_rng = master.split(buf * 100 + d);
      VideoWorkload vw = make_video_workload(params, wl_rng);
      BufferedRouterParams rp{.service_rate = 1,
                              .buffer_size = buf,
                              .drop_dead_frames = true};

      RandPrRanker randpr(master.split(90000 + buf * 100 + d));
      add("randPr", simulate_buffered_router(vw.schedule, randpr, rp).goodput());
      WeightRanker weight;
      add("by-weight",
          simulate_buffered_router(vw.schedule, weight, rp).goodput());
      FifoRanker fifo;
      add("drop-tail",
          simulate_buffered_router(vw.schedule, fifo, rp).goodput());
      RandomRanker rnd(master.split(95000 + buf * 100 + d));
      add("random-drop",
          simulate_buffered_router(vw.schedule, rnd, rp).goodput());
    }
    for (const Acc& a : accs)
      table.row({fmt(buf), a.name, fmt(a.good / draws, 3)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: goodput rises with buffer size for every "
               "policy; the policy gap narrows as buffering absorbs "
               "bursts (the effect the paper leaves open).\n\n";
}

void burstiness_sweep() {
  std::cout << "-- (c) burstiness sweep (on/off traffic, frames of 3 "
               "packets) --\n";
  Table table({"burst profile", "smax", "policy", "value ok", "of",
               "goodput"});
  Rng master(300);
  const int draws = 25;

  struct Profile {
    std::string name;
    double p_on_off, p_off_on, rate_on, rate_off;
  };
  for (const Profile& prof :
       {Profile{"mild (poissonish)", 0.5, 0.5, 1.5, 1.5},
        Profile{"moderate", 0.3, 0.3, 3.0, 0.5},
        Profile{"savage", 0.15, 0.1, 6.0, 0.1}}) {
    struct Acc {
      std::string name;
      double value = 0, total = 0;
    };
    std::vector<Acc> accs;
    auto add = [&](const std::string& name, double v, double tot) {
      for (auto& a : accs)
        if (a.name == name) {
          a.value += v;
          a.total += tot;
          return;
        }
      accs.push_back({name, v, tot});
    };
    double smax_acc = 0;
    for (int d = 0; d < draws; ++d) {
      Rng wl_rng = master.split(d * 17 + static_cast<std::uint64_t>(
                                              prof.rate_on * 10));
      OnOffBursts bursts(prof.p_on_off, prof.p_off_on, prof.rate_on,
                         prof.rate_off);
      FrameSchedule sched = bursty_schedule(bursts, 80, 3, wl_rng, 1.0);
      smax_acc += static_cast<double>(sched.max_burst());

      RandPr rp(master.split(110000 + d));
      RouterStats a = simulate_router(sched, rp, 1);
      add("randPr", a.value_delivered, a.value_total);
      GreedyMostProgress gp;
      RouterStats b = simulate_router(sched, gp, 1);
      add("greedy-progress", b.value_delivered, b.value_total);
      GreedyFirst gf;
      RouterStats c = simulate_router(sched, gf, 1);
      add("greedy-first", c.value_delivered, c.value_total);
    }
    for (const Acc& a : accs)
      table.row({prof.name, fmt(smax_acc / draws, 1), a.name,
                 fmt(a.value / draws, 1), fmt(a.total / draws, 0),
                 fmt(a.value / a.total, 3)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: goodput falls with burstiness for all "
               "policies (sqrt(smax) in the bound); the ordering among "
               "policies is preserved.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E7 / Section 1 motivation (bottleneck router, video frames)",
      "Frame-aware random priorities vs classic drop heuristics on the "
      "simulated router; plus the buffering extension.");
  osp::unbuffered_video();
  osp::buffered_sweep();
  osp::burstiness_sweep();
  return 0;
}
