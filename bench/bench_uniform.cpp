// E3 — the refined bounds for uniform structure:
//   Theorem 5   (uniform set size k):        ratio <= k·avg(σ²)/avg(σ)²
//   Theorem 6   (uniform load σ):            ratio <= k̄·sqrt(σ)
//   Corollary 7 (uniform size AND load):     ratio <= k  (σ-independent!)
//
// The Corollary 7 table is the paper's headline special case: on
// bi-regular instances the measured ratio must stay near/below k and stay
// FLAT as σ grows, while the general bound kmax·sqrt(σmax) keeps rising.
#include <iostream>

#include "algos/offline.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "gen/random_instances.hpp"

namespace osp {
namespace {

void corollary7_sweep(osp::api::JsonSink& json) {
  std::cout << "-- Corollary 7: bi-regular instances, k = 3 fixed, sigma "
               "rising --\n";
  Table table({"m", "k", "sigma", "opt", "E[alg]", "ratio", "Cor7 bound(k)",
               "Cor6 bound"});
  Rng master(31337);
  const int trials = 600;
  for (std::size_t sigma : {2, 3, 4, 6, 8, 12}) {
    const std::size_t k = 3;
    const std::size_t m = 8 * sigma;  // keep n = mk/sigma = 24 constant
    Rng gen = master.split(sigma);
    Instance inst = regular_instance(m, k, sigma, WeightModel::unit(), gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);

    Rng runs = master.split(100 + sigma);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    table.row({fmt(m), fmt(k), fmt(sigma), fmt(opt.value, 1),
               bench::fmt_mean_ci(alg), fmt_ratio(ratio),
               fmt(corollary7_bound(st), 1), fmt(corollary6_bound(st), 2)});
    json.write(api::Row{}
                   .add("sweep", "corollary7")
                   .add("m", m)
                   .add("k", k)
                   .add("sigma", sigma)
                   .add("opt", opt.value)
                   .add("alg_mean", alg.mean())
                   .add("alg_ci95", alg.ci95_halfwidth())
                   .add("ratio", ratio)
                   .add("cor7_bound", corollary7_bound(st))
                   .add("cor6_bound", corollary6_bound(st)));
  }
  table.print(std::cout);
  std::cout << "Expected shape: ratio column stays flat near or below k=3 "
               "while Cor6 grows like sqrt(sigma).\n\n";
}

void theorem5_sweep(osp::api::JsonSink& json) {
  std::cout << "-- Theorem 5: uniform size k, loads vary (random "
               "instances) --\n";
  Table table({"m", "n", "k", "avg(s^2)/avg(s)^2", "opt", "E[alg]", "ratio",
               "Thm5 bound"});
  Rng master(999);
  const int trials = 600;
  for (std::size_t k : {2, 3, 4, 5}) {
    Rng gen = master.split(k);
    Instance inst = random_instance(24, 18, k, WeightModel::unit(), gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);
    Rng runs = master.split(100 + k);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    double dispersion = st.sigma_sq_avg / (st.sigma_avg * st.sigma_avg);
    table.row({fmt(std::size_t{24}), fmt(inst.num_elements()), fmt(k),
               fmt(dispersion, 3), fmt(opt.value, 1),
               bench::fmt_mean_ci(alg), fmt_ratio(ratio),
               fmt(theorem5_bound(st), 2)});
    json.write(api::Row{}
                   .add("sweep", "theorem5")
                   .add("m", std::size_t{24})
                   .add("n", inst.num_elements())
                   .add("k", k)
                   .add("dispersion", dispersion)
                   .add("opt", opt.value)
                   .add("alg_mean", alg.mean())
                   .add("ratio", ratio)
                   .add("thm5_bound", theorem5_bound(st)));
  }
  table.print(std::cout);
  std::cout << "Expected shape: ratio below the Thm5 bound; bound scales "
               "with k times the load dispersion.\n\n";
}

void theorem6_sweep(osp::api::JsonSink& json) {
  std::cout << "-- Theorem 6: uniform load sigma, sizes vary --\n";
  Table table({"m", "n", "sigma", "kbar", "opt", "E[alg]", "ratio",
               "Thm6 bound"});
  Rng master(4242);
  const int trials = 600;
  for (std::size_t sigma : {2, 3, 4, 6, 8}) {
    Rng gen = master.split(sigma);
    Instance inst =
        fixed_load_instance(20, 30, sigma, WeightModel::unit(), gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);
    Rng runs = master.split(100 + sigma);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    table.row({fmt(std::size_t{20}), fmt(inst.num_elements()), fmt(sigma),
               fmt(st.k_avg, 2), fmt(opt.value, 1),
               bench::fmt_mean_ci(alg), fmt_ratio(ratio),
               fmt(theorem6_bound(st), 2)});
    json.write(api::Row{}
                   .add("sweep", "theorem6")
                   .add("m", std::size_t{20})
                   .add("n", inst.num_elements())
                   .add("sigma", sigma)
                   .add("k_avg", st.k_avg)
                   .add("opt", opt.value)
                   .add("alg_mean", alg.mean())
                   .add("ratio", ratio)
                   .add("thm6_bound", theorem6_bound(st)));
  }
  table.print(std::cout);
  std::cout << "Expected shape: ratio below kbar*sqrt(sigma), growing "
               "roughly with sqrt(sigma).\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E3 / Theorems 5, 6 and Corollary 7",
      "Refined bounds under uniform structure; the key signature is the "
      "sigma-INDEPENDENCE of the ratio for uniform size+load (Cor 7).");
  osp::api::JsonSink json("uniform", osp::bench::session().threads());
  osp::corollary7_sweep(json);
  osp::theorem5_sweep(json);
  osp::theorem6_sweep(json);
  return 0;
}
