// E3 — the refined bounds for uniform structure:
//   Theorem 5   (uniform set size k):        ratio <= k·avg(σ²)/avg(σ)²
//   Theorem 6   (uniform load σ):            ratio <= k̄·sqrt(σ)
//   Corollary 7 (uniform size AND load):     ratio <= k  (σ-independent!)
//
// The Corollary 7 table is the paper's headline special case: on
// bi-regular instances the measured ratio must stay near/below k and stay
// FLAT as σ grows, while the general bound kmax·sqrt(σmax) keeps rising.
#include <iostream>

#include "algos/offline.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"

namespace osp {
namespace {

void corollary7_sweep(osp::api::JsonSink& json) {
  std::cout << "-- Corollary 7: bi-regular instances, k = 3 fixed, sigma "
               "rising --\n";
  Table table({"m", "k", "sigma", "opt", "E[alg]", "ratio", "Cor7 bound(k)",
               "Cor6 bound"});
  Rng master(31337);
  // The swept (m, sigma) cells live in the scenario catalog; the Rng
  // split keys below derive from the cell values, so the declarative
  // sweep reproduces the historical loop's streams bit for bit.
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("uniform/corollary7"))) {
    const int trials = cell.default_trials;
    const std::size_t k = cell.k;
    const std::size_t sigma = cell.sigma;
    const std::size_t m = cell.m;
    Rng gen = master.split(sigma);
    Instance inst = api::build_instance(cell, gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);

    Rng runs = master.split(100 + sigma);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    table.row({fmt(m), fmt(k), fmt(sigma), fmt(opt.value, 1),
               bench::fmt_mean_ci(alg), fmt_ratio(ratio),
               fmt(corollary7_bound(st), 1), fmt(corollary6_bound(st), 2)});
    json.write(api::Row{}
                   .add("sweep", "corollary7")
                   .add("m", m)
                   .add("k", k)
                   .add("sigma", sigma)
                   .add("opt", opt.value)
                   .add("alg_mean", alg.mean())
                   .add("alg_ci95", alg.ci95_halfwidth())
                   .add("ratio", ratio)
                   .add("cor7_bound", corollary7_bound(st))
                   .add("cor6_bound", corollary6_bound(st)));
  }
  table.print(std::cout);
  std::cout << "Expected shape: ratio column stays flat near or below k=3 "
               "while Cor6 grows like sqrt(sigma).\n\n";
}

void theorem5_sweep(osp::api::JsonSink& json) {
  std::cout << "-- Theorem 5: uniform size k, loads vary (random "
               "instances) --\n";
  Table table({"m", "n", "k", "avg(s^2)/avg(s)^2", "opt", "E[alg]", "ratio",
               "Thm5 bound"});
  Rng master(999);
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("uniform/theorem5"))) {
    const int trials = cell.default_trials;
    const std::size_t k = cell.k;
    Rng gen = master.split(k);
    Instance inst = api::build_instance(cell, gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);
    Rng runs = master.split(100 + k);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    double dispersion = st.sigma_sq_avg / (st.sigma_avg * st.sigma_avg);
    table.row({fmt(cell.m), fmt(inst.num_elements()), fmt(k),
               fmt(dispersion, 3), fmt(opt.value, 1),
               bench::fmt_mean_ci(alg), fmt_ratio(ratio),
               fmt(theorem5_bound(st), 2)});
    json.write(api::Row{}
                   .add("sweep", "theorem5")
                   .add("m", cell.m)
                   .add("n", inst.num_elements())
                   .add("k", k)
                   .add("dispersion", dispersion)
                   .add("opt", opt.value)
                   .add("alg_mean", alg.mean())
                   .add("ratio", ratio)
                   .add("thm5_bound", theorem5_bound(st)));
  }
  table.print(std::cout);
  std::cout << "Expected shape: ratio below the Thm5 bound; bound scales "
               "with k times the load dispersion.\n\n";
}

void theorem6_sweep(osp::api::JsonSink& json) {
  std::cout << "-- Theorem 6: uniform load sigma, sizes vary --\n";
  Table table({"m", "n", "sigma", "kbar", "opt", "E[alg]", "ratio",
               "Thm6 bound"});
  Rng master(4242);
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("uniform/theorem6"))) {
    const int trials = cell.default_trials;
    const std::size_t sigma = cell.sigma;
    Rng gen = master.split(sigma);
    Instance inst = api::build_instance(cell, gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);
    Rng runs = master.split(100 + sigma);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    table.row({fmt(cell.m), fmt(inst.num_elements()), fmt(sigma),
               fmt(st.k_avg, 2), fmt(opt.value, 1),
               bench::fmt_mean_ci(alg), fmt_ratio(ratio),
               fmt(theorem6_bound(st), 2)});
    json.write(api::Row{}
                   .add("sweep", "theorem6")
                   .add("m", cell.m)
                   .add("n", inst.num_elements())
                   .add("sigma", sigma)
                   .add("k_avg", st.k_avg)
                   .add("opt", opt.value)
                   .add("alg_mean", alg.mean())
                   .add("ratio", ratio)
                   .add("thm6_bound", theorem6_bound(st)));
  }
  table.print(std::cout);
  std::cout << "Expected shape: ratio below kbar*sqrt(sigma), growing "
               "roughly with sqrt(sigma).\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E3 / Theorems 5, 6 and Corollary 7",
      "Refined bounds under uniform structure; the key signature is the "
      "sigma-INDEPENDENCE of the ratio for uniform size+load (Cor 7).");
  osp::api::JsonSink json("uniform", osp::bench::session().threads());
  osp::corollary7_sweep(json);
  osp::theorem5_sweep(json);
  osp::theorem6_sweep(json);
  return 0;
}
