// E9 — engineering throughput micro-benchmarks (google-benchmark).
//
// Not a paper exhibit: measures that the library is fast enough to be a
// practical drop-policy (decisions per element are O(σ log σ) with tiny
// constants) and tracks construction costs of the heavy substrates.
#include <benchmark/benchmark.h>

#include "algos/offline.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "design/lower_bounds.hpp"
#include "field/gf.hpp"
#include "gen/random_instances.hpp"
#include "gen/traffic.hpp"
#include "net/router_sim.hpp"

namespace osp {
namespace {

void BM_RandPrGame(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng gen(42);
  Instance inst = random_instance(m, m * 2, 4, WeightModel::unit(), gen);
  Rng master(1);
  std::uint64_t t = 0;
  for (auto _ : state) {
    RandPr alg(master.split(t++));
    benchmark::DoNotOptimize(play(inst, alg).benefit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.num_elements()));
}
BENCHMARK(BM_RandPrGame)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HashedRandPrGame(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng gen(42);
  Instance inst = random_instance(m, m * 2, 4, WeightModel::unit(), gen);
  Rng master(2);
  std::uint64_t t = 0;
  for (auto _ : state) {
    Rng r = master.split(t++);
    auto alg = HashedRandPr::with_polynomial(8, r);
    benchmark::DoNotOptimize(play(inst, *alg).benefit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.num_elements()));
}
BENCHMARK(BM_HashedRandPrGame)->Arg(256)->Arg(1024);

void BM_PrioritySample(benchmark::State& state) {
  Rng rng(3);
  double w = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_rw_key(w, rng));
    w = w < 64 ? w * 1.001 : 1.0;
  }
}
BENCHMARK(BM_PrioritySample);

void BM_ExactOptimum(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng gen(4);
  Instance inst = random_instance(m, m, 3, WeightModel::unit(), gen);
  for (auto _ : state)
    benchmark::DoNotOptimize(exact_optimum(inst).value);
}
BENCHMARK(BM_ExactOptimum)->Arg(16)->Arg(24)->Arg(32);

void BM_LpUpperBound(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng gen(5);
  Instance inst = random_instance(m, m, 3, WeightModel::unit(), gen);
  for (auto _ : state)
    benchmark::DoNotOptimize(lp_upper_bound(inst));
}
BENCHMARK(BM_LpUpperBound)->Arg(16)->Arg(32)->Arg(64);

void BM_Lemma9Construction(benchmark::State& state) {
  const auto ell = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  for (auto _ : state)
    benchmark::DoNotOptimize(build_lemma9_instance(ell, rng).instance
                                 .num_elements());
}
BENCHMARK(BM_Lemma9Construction)->Arg(3)->Arg(5)->Arg(8);

void BM_FiniteFieldConstruction(benchmark::State& state) {
  const auto q = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    FiniteField f(q);
    benchmark::DoNotOptimize(f.mul(1, 1));
  }
}
BENCHMARK(BM_FiniteFieldConstruction)->Arg(64)->Arg(81)->Arg(256);

void BM_RouterSimulation(benchmark::State& state) {
  Rng gen(7);
  PoissonBursts bursts(3.0);
  FrameSchedule sched = bursty_schedule(bursts, 500, 3, gen);
  Rng master(8);
  std::uint64_t t = 0;
  for (auto _ : state) {
    RandPr alg(master.split(t++));
    benchmark::DoNotOptimize(simulate_router(sched, alg, 1).frames_delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sched.total_packets()));
}
BENCHMARK(BM_RouterSimulation);

}  // namespace
}  // namespace osp
