// E9 — engineering throughput benchmarks for the flat engine.
//
// Not a paper exhibit: measures the elements/sec of the decision path and
// tracks the engine refactors' gains from PR 1 on.  Four modes per
// workload:
//   seed  — the seed repo's engine AND algorithm, replicated verbatim:
//           randPr's on_element() allocating a candidate-pool copy plus a
//           partial_sort working copy and returning a heap vector per
//           arrival, the engine validating with check_answer()'s copy +
//           sort, arrivals pre-materialized as vectors (the seed stored
//           them that way, so its loop did not pay for the conversion and
//           this one must not either);
//   flat  — play_flat(): CSR candidate spans, decide() into a reusable
//           buffer, allocation-free validation, single thread;
//   block — play_flat_blocks(): decide_batch() over whole CSR arrival
//           blocks (one virtual call per block, SoA selection kernel),
//           single thread;
//   batch — the same block-stepped trials fanned across the BatchRunner's
//           workers.
//
// The block mode runs on whatever ISA tier the runtime dispatcher picked
// (OSP_FORCE_ISA included) and every row records it in the "isa" field;
// a fifth measurement pins the dispatcher to the scalar tier so the
// per-row "simd_vs_scalar" factor isolates the vector kernel's gain from
// the batching gain.  `bench_perf --isa-sweep` instead measures the block
// mode once per AVAILABLE ISA over the same ladder and writes one row per
// shape x tier to BENCH_engine_isa.json, so the perf trajectory records
// scalar vs vector per shape rather than one aggregate number.
//
// Per-trial Rng streams are identical across modes and every trial's
// outcome is checksummed, so the modes (and the ISA tiers) are proven to
// compute the same thing.  Results go to stdout and BENCH_engine.json;
// the acceptance targets on the largest workload are batch >= 5x seed
// (the flat gain times the worker count — on a single-core container the
// second factor is 1x, which the JSON records via "threads") and block
// >= 1.3x flat single-thread (the decide_batch amortization gate,
// checked per row with per-workload floors by check_bench_json.py).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "core/cpu_features.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "engine/batch_runner.hpp"
#include "gen/random_instances.hpp"
#include "testing/seed_reference.hpp"
#include "util/require.hpp"

namespace osp {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ModeResult {
  double elements_per_sec = 0;
  double checksum = 0;  // summed benefit, to defeat dead-code elimination
};

struct WorkloadResult {
  std::string label;
  std::size_t m = 0;
  std::size_t n = 0;
  int trials = 0;
  ModeResult seed, flat, block, block_scalar, batch;
};

// Number of interleaved measurement passes per workload.  Each pass times
// every mode once and a mode's reported throughput is its best pass:
// peak-of-N is the standard estimator on shared/noisy hosts, and
// interleaving the modes means transient interference (another container
// on the box, a frequency dip) cannot systematically bias one mode's
// ratio against another's.
constexpr int kPasses = 3;

WorkloadResult measure_workload(const std::string& label, std::size_t m,
                                std::size_t n, std::size_t k) {
  WorkloadResult r;
  r.label = label;
  r.m = m;
  Rng gen(42);
  Instance inst = random_instance(m, n, k, WeightModel::unit(), gen);
  r.n = inst.num_elements();
  // Enough trials that the seed path runs a few hundred ms.
  r.trials = static_cast<int>(
      std::max<std::size_t>(6, 1'500'000 / std::max<std::size_t>(r.n, 1)));

  const std::vector<Arrival> arrivals = seedref::materialize_arrivals(inst);

  Rng master(1);
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(r.trials));
  for (int t = 0; t < r.trials; ++t)
    rngs.push_back(master.split(static_cast<std::uint64_t>(t)));

  const double total_elements =
      static_cast<double>(r.n) * static_cast<double>(r.trials);

  PlayScratch flat_scratch, block_scratch;
  for (int pass = 0; pass < kPasses; ++pass) {
    double seed_sum = 0, flat_sum = 0, block_sum = 0, batch_sum = 0;

    {  // seed mode: original algorithm + original engine
      auto t0 = Clock::now();
      for (int t = 0; t < r.trials; ++t) {
        seedref::SeedRandPr alg(rngs[static_cast<std::size_t>(t)]);
        seed_sum += seedref::seed_play(inst, alg, arrivals).benefit;
      }
      r.seed.elements_per_sec = std::max(r.seed.elements_per_sec,
                                         total_elements / seconds_since(t0));
    }

    {  // flat mode, single thread: decide() per element
      auto t0 = Clock::now();
      for (int t = 0; t < r.trials; ++t) {
        RandPr alg(rngs[static_cast<std::size_t>(t)]);
        flat_sum += play_flat(inst, alg, flat_scratch).benefit;
      }
      r.flat.elements_per_sec = std::max(r.flat.elements_per_sec,
                                         total_elements / seconds_since(t0));
    }

    {  // block mode, single thread: decide_batch() per arrival block,
       // on the ISA the runtime dispatcher selected
      auto t0 = Clock::now();
      for (int t = 0; t < r.trials; ++t) {
        RandPr alg(rngs[static_cast<std::size_t>(t)]);
        block_sum += play_flat_blocks(inst, alg, block_scratch).benefit;
      }
      r.block.elements_per_sec = std::max(r.block.elements_per_sec,
                                          total_elements / seconds_since(t0));
    }

    double block_scalar_sum = 0;
    {  // block mode pinned to the scalar tier: the simd_vs_scalar baseline
      simd::set_active_isa(simd::Isa::kScalar);
      auto t0 = Clock::now();
      for (int t = 0; t < r.trials; ++t) {
        RandPr alg(rngs[static_cast<std::size_t>(t)]);
        block_scalar_sum +=
            play_flat_blocks(inst, alg, block_scratch).benefit;
      }
      r.block_scalar.elements_per_sec =
          std::max(r.block_scalar.elements_per_sec,
                   total_elements / seconds_since(t0));
      simd::refresh_active_isa();  // restore auto/forced selection
    }

    {  // batch mode: block-stepped trials across all workers
      auto t0 = Clock::now();
      auto benefits = engine::shared_runner().map<Weight>(
          static_cast<std::size_t>(r.trials),
          [&](std::size_t t, engine::TrialContext& ctx) {
            RandPr alg(rngs[t]);
            return play_flat_blocks(inst, alg, ctx.scratch).benefit;
          });
      r.batch.elements_per_sec = std::max(r.batch.elements_per_sec,
                                          total_elements / seconds_since(t0));
      for (Weight b : benefits) batch_sum += b;
    }

    // All modes — the scalar-pinned tier included — must agree on every
    // trial's outcome, in every pass.
    OSP_REQUIRE(seed_sum == flat_sum);
    OSP_REQUIRE(seed_sum == block_sum);
    OSP_REQUIRE(seed_sum == block_scalar_sum);
    OSP_REQUIRE(seed_sum == batch_sum);
    r.seed.checksum = seed_sum;
    r.flat.checksum = flat_sum;
    r.block.checksum = block_sum;
    r.block_scalar.checksum = block_scalar_sum;
    r.batch.checksum = batch_sum;
  }
  return r;
}

std::string fmt_meps(double eps) { return fmt(eps / 1e6, 2) + "M"; }

/// --isa-sweep: block-mode throughput of every available ISA tier over
/// the same ladder, one BENCH_engine_isa.json row per shape x tier.
/// Checksums must match across tiers — the decision-equivalence contract,
/// re-proven on the bench workloads themselves.
int run_isa_sweep() {
  using namespace osp;
  bench::banner(
      "E9b / block kernel throughput per ISA tier",
      "Elements/sec of block-batched randPr trials with the dispatcher "
      "pinned to each ISA the CPU can run.  vs_scalar isolates the "
      "vector kernel's gain; checksums prove every tier decides "
      "identically.");

  const std::vector<simd::Isa> isas = simd::available_isas();
  Table table({"workload", "m", "n", "trials", "isa", "block el/s",
               "vs scalar"});
  api::JsonSink json("engine_isa", bench::session().threads());

  for (const api::ScenarioSpec& s : api::engine_shapes()) {
    Rng gen(42);
    Instance inst = random_instance(s.m, s.n, s.k, WeightModel::unit(), gen);
    const std::size_t n = inst.num_elements();
    const int trials = static_cast<int>(
        std::max<std::size_t>(6, 1'500'000 / std::max<std::size_t>(n, 1)));
    Rng master(1);
    std::vector<Rng> rngs;
    for (int t = 0; t < trials; ++t)
      rngs.push_back(master.split(static_cast<std::uint64_t>(t)));
    const double total_elements =
        static_cast<double>(n) * static_cast<double>(trials);

    PlayScratch scratch;
    double scalar_eps = 0;
    double ref_checksum = 0;
    for (simd::Isa isa : isas) {
      simd::set_active_isa(isa);
      double eps = 0;
      double checksum = 0;
      for (int pass = 0; pass < kPasses; ++pass) {
        checksum = 0;
        auto t0 = Clock::now();
        for (int t = 0; t < trials; ++t) {
          RandPr alg(rngs[static_cast<std::size_t>(t)]);
          checksum += play_flat_blocks(inst, alg, scratch).benefit;
        }
        eps = std::max(eps, total_elements / seconds_since(t0));
      }
      if (isa == simd::Isa::kScalar) {
        scalar_eps = eps;
        ref_checksum = checksum;
      }
      OSP_REQUIRE_MSG(checksum == ref_checksum,
                      "ISA " << simd::isa_name(isa)
                             << " diverged from the scalar tier");
      const double vs_scalar = eps / scalar_eps;
      table.row({s.display_label(), fmt(s.m), fmt(n), fmt(trials),
                 simd::isa_name(isa), fmt_meps(eps), fmt_ratio(vs_scalar)});
      json.write(api::Row{}
                     .add("workload", s.display_label())
                     .add("m", s.m)
                     .add("n", n)
                     .add("trials", trials)
                     .add("isa", simd::isa_name(isa))
                     .add("block_elements_per_sec", eps)
                     .add("vs_scalar", vs_scalar)
                     .add("cross_check", "pass"));
    }
    simd::refresh_active_isa();
  }
  table.print(std::cout);
  json.close();
  std::cerr << "wrote BENCH_engine_isa.json\n";
  return 0;
}

}  // namespace
}  // namespace osp

int main(int argc, char** argv) {
  using namespace osp;
  if (argc > 1 && std::strcmp(argv[1], "--isa-sweep") == 0)
    return run_isa_sweep();
  bench::banner(
      "E9 / engine throughput (flat + block engines vs seed engine)",
      "Elements/sec of randPr trials: seed on_element path vs the "
      "allocation-free CSR decide path vs the block-batched decide_batch "
      "path vs the multi-threaded batch runner.  Checksums verify all "
      "modes produce identical outcomes.");

  const std::size_t threads = engine::shared_runner().num_threads();
  std::cout << "batch runner threads: " << threads << "\n"
            << "block kernel isa: " << simd::isa_selection_note() << "\n\n";

  Table table({"workload", "m", "n", "trials", "seed el/s", "flat el/s",
               "block el/s", "batch el/s", "flat/seed", "block/flat",
               "simd/scalar", "batch/seed"});
  api::JsonSink json("engine", bench::session().threads());

  WorkloadResult largest;
  // The ladder is the expansion of the "engine/ladder" zipped sweep; the
  // cell labels key the BENCH_engine.json perf trajectory.
  for (const api::ScenarioSpec& s : api::engine_shapes()) {
    WorkloadResult r =
        measure_workload(s.display_label(), s.m, s.n, s.k);
    largest = r;
    double flat_speedup = r.flat.elements_per_sec / r.seed.elements_per_sec;
    double block_speedup =
        r.block.elements_per_sec / r.seed.elements_per_sec;
    double block_vs_flat =
        r.block.elements_per_sec / r.flat.elements_per_sec;
    double simd_vs_scalar =
        r.block.elements_per_sec / r.block_scalar.elements_per_sec;
    double batch_speedup = r.batch.elements_per_sec / r.seed.elements_per_sec;
    table.row({r.label, fmt(r.m), fmt(r.n), fmt(r.trials),
               fmt_meps(r.seed.elements_per_sec),
               fmt_meps(r.flat.elements_per_sec),
               fmt_meps(r.block.elements_per_sec),
               fmt_meps(r.batch.elements_per_sec),
               fmt_ratio(flat_speedup), fmt_ratio(block_vs_flat),
               fmt_ratio(simd_vs_scalar), fmt_ratio(batch_speedup)});
    json.write(api::Row{}
                   .add("workload", r.label)
                   .add("m", r.m)
                   .add("n", r.n)
                   .add("trials", r.trials)
                   .add("isa", simd::active_isa_name())
                   .add("seed_elements_per_sec", r.seed.elements_per_sec)
                   .add("flat_elements_per_sec", r.flat.elements_per_sec)
                   .add("block_elements_per_sec", r.block.elements_per_sec)
                   .add("block_scalar_elements_per_sec",
                        r.block_scalar.elements_per_sec)
                   .add("batch_elements_per_sec", r.batch.elements_per_sec)
                   .add("flat_speedup", flat_speedup)
                   .add("block_speedup", block_speedup)
                   .add("block_vs_flat", block_vs_flat)
                   .add("simd_vs_scalar", simd_vs_scalar)
                   .add("batch_speedup", batch_speedup));
  }
  table.print(std::cout);

  const double final_speedup =
      largest.batch.elements_per_sec / largest.seed.elements_per_sec;
  const double final_block_vs_flat =
      largest.block.elements_per_sec / largest.flat.elements_per_sec;
  const double final_simd_vs_scalar =
      largest.block.elements_per_sec / largest.block_scalar.elements_per_sec;
  std::cout << "\nlargest workload (" << largest.label
            << "): batch engine is " << fmt_ratio(final_speedup)
            << " the seed path ("
            << fmt_meps(largest.batch.elements_per_sec) << " vs "
            << fmt_meps(largest.seed.elements_per_sec)
            << " elements/sec) on " << threads
            << " worker(s); target >= 5x: "
            << (final_speedup >= 5.0 ? "MET" : "NOT MET") << "\n";
  std::cout << "largest workload block path: " << fmt_ratio(final_block_vs_flat)
            << " the flat path single-thread ("
            << fmt_meps(largest.block.elements_per_sec) << " vs "
            << fmt_meps(largest.flat.elements_per_sec)
            << " elements/sec); target >= 1.3x: "
            << (final_block_vs_flat >= 1.3 ? "MET" : "NOT MET") << "\n";
  std::cout << "largest workload " << simd::active_isa_name()
            << " kernel vs scalar tier: " << fmt_ratio(final_simd_vs_scalar)
            << " (" << fmt_meps(largest.block.elements_per_sec) << " vs "
            << fmt_meps(largest.block_scalar.elements_per_sec)
            << " elements/sec)\n";
  if (threads == 1 && final_speedup < 5.0)
    std::cout << "note: single hardware thread — the batch multiplier is "
                 "1x here; the flat/seed column is the per-core gain and "
                 "multiplies by the worker count on multi-core hosts.\n";

  json.write(
      api::Row{}
          .add("workload", "largest_summary")
          .add("label", largest.label)
          .add("m", largest.m)
          .add("n", largest.n)
          .add("threads", threads)
          .add("isa", simd::active_isa_name())
          .add("simd_vs_scalar", final_simd_vs_scalar)
          .add("flat_speedup_vs_seed",
               largest.flat.elements_per_sec / largest.seed.elements_per_sec)
          .add("block_speedup_vs_seed",
               largest.block.elements_per_sec / largest.seed.elements_per_sec)
          .add("block_vs_flat", final_block_vs_flat)
          .add("speedup_vs_seed", final_speedup)
          .add("target_5x_met", final_speedup >= 5.0)
          .add("block_target_1p3x_met", final_block_vs_flat >= 1.3));
  json.close();
  return 0;
}
