// E9 — engineering throughput benchmarks for the flat engine.
//
// Not a paper exhibit: measures the elements/sec of the decision path and
// tracks the flat-engine refactor's gains from this PR on.  Three modes per
// workload:
//   seed  — the seed repo's engine AND algorithm, replicated verbatim:
//           randPr's on_element() allocating a candidate-pool copy plus a
//           partial_sort working copy and returning a heap vector per
//           arrival, the engine validating with check_answer()'s copy +
//           sort, arrivals pre-materialized as vectors (the seed stored
//           them that way, so its loop did not pay for the conversion and
//           this one must not either);
//   flat  — play_flat(): CSR candidate spans, decide() into a reusable
//           buffer, allocation-free validation, single thread;
//   batch — the same flat trials fanned across the BatchRunner's workers.
//
// Per-trial Rng streams are identical across modes and every trial's
// outcome is checksummed, so the modes are proven to compute the same
// thing.  Results go to stdout and BENCH_engine.json; the acceptance
// target is batch >= 5x seed on the largest workload (the flat single-
// thread gain times the worker count — on a single-core container the
// second factor is 1x, which the JSON records via "threads").
#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "engine/batch_runner.hpp"
#include "gen/random_instances.hpp"
#include "testing/seed_reference.hpp"
#include "util/require.hpp"

namespace osp {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ModeResult {
  double elements_per_sec = 0;
  double checksum = 0;  // summed benefit, to defeat dead-code elimination
};

struct WorkloadResult {
  std::string label;
  std::size_t m = 0;
  std::size_t n = 0;
  int trials = 0;
  ModeResult seed, flat, batch;
};

WorkloadResult measure_workload(const std::string& label, std::size_t m,
                                std::size_t n, std::size_t k) {
  WorkloadResult r;
  r.label = label;
  r.m = m;
  Rng gen(42);
  Instance inst = random_instance(m, n, k, WeightModel::unit(), gen);
  r.n = inst.num_elements();
  // Enough trials that the seed path runs a few hundred ms.
  r.trials = static_cast<int>(
      std::max<std::size_t>(6, 1'500'000 / std::max<std::size_t>(r.n, 1)));

  const std::vector<Arrival> arrivals = seedref::materialize_arrivals(inst);

  Rng master(1);
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(r.trials));
  for (int t = 0; t < r.trials; ++t)
    rngs.push_back(master.split(static_cast<std::uint64_t>(t)));

  const double total_elements =
      static_cast<double>(r.n) * static_cast<double>(r.trials);

  {  // seed mode: original algorithm + original engine
    auto t0 = Clock::now();
    for (int t = 0; t < r.trials; ++t) {
      seedref::SeedRandPr alg(rngs[static_cast<std::size_t>(t)]);
      r.seed.checksum += seedref::seed_play(inst, alg, arrivals).benefit;
    }
    r.seed.elements_per_sec = total_elements / seconds_since(t0);
  }

  {  // flat mode, single thread
    PlayScratch scratch;
    auto t0 = Clock::now();
    for (int t = 0; t < r.trials; ++t) {
      RandPr alg(rngs[static_cast<std::size_t>(t)]);
      r.flat.checksum += play_flat(inst, alg, scratch).benefit;
    }
    r.flat.elements_per_sec = total_elements / seconds_since(t0);
  }

  {  // batch mode, all workers
    auto t0 = Clock::now();
    auto benefits = engine::shared_runner().map<Weight>(
        static_cast<std::size_t>(r.trials),
        [&](std::size_t t, engine::TrialContext& ctx) {
          RandPr alg(rngs[t]);
          return play_flat(inst, alg, ctx.scratch).benefit;
        });
    r.batch.elements_per_sec = total_elements / seconds_since(t0);
    for (Weight b : benefits) r.batch.checksum += b;
  }

  // All three modes must agree on every trial's outcome.
  OSP_REQUIRE(r.seed.checksum == r.flat.checksum);
  OSP_REQUIRE(r.seed.checksum == r.batch.checksum);
  return r;
}

std::string fmt_meps(double eps) { return fmt(eps / 1e6, 2) + "M"; }

}  // namespace
}  // namespace osp

int main() {
  using namespace osp;
  bench::banner(
      "E9 / engine throughput (flat engine vs seed engine)",
      "Elements/sec of randPr trials: seed on_element path vs the "
      "allocation-free CSR decide path vs the multi-threaded batch "
      "runner.  Checksums verify all modes produce identical outcomes.");

  const std::size_t threads = engine::shared_runner().num_threads();
  std::cout << "batch runner threads: " << threads << "\n\n";

  Table table({"workload", "m", "n", "trials", "seed el/s", "flat el/s",
               "batch el/s", "flat/seed", "batch/seed"});
  bench::JsonSink json("engine");

  struct Shape {
    const char* label;
    std::size_t m, n, k;
  };
  // The legacy sweep (m, 2m, 4) plus router-scale workloads where the
  // per-trial priority draw amortizes over many arrivals; the last entry
  // is the "largest workload" of the acceptance gate.
  const Shape shapes[] = {
      {"legacy/64", 64, 128, 4},       {"legacy/1024", 1024, 2048, 4},
      {"legacy/4096", 4096, 8192, 4},  {"router/32k", 1024, 32768, 64},
      {"router/128k", 4096, 131072, 64},
  };

  WorkloadResult largest;
  for (const Shape& s : shapes) {
    WorkloadResult r = measure_workload(s.label, s.m, s.n, s.k);
    largest = r;
    double flat_speedup = r.flat.elements_per_sec / r.seed.elements_per_sec;
    double batch_speedup = r.batch.elements_per_sec / r.seed.elements_per_sec;
    table.row({r.label, fmt(r.m), fmt(r.n), fmt(r.trials),
               fmt_meps(r.seed.elements_per_sec),
               fmt_meps(r.flat.elements_per_sec),
               fmt_meps(r.batch.elements_per_sec),
               fmt_ratio(flat_speedup), fmt_ratio(batch_speedup)});
    json.writer()
        .begin_object()
        .kv("workload", r.label)
        .kv("m", r.m)
        .kv("n", r.n)
        .kv("trials", r.trials)
        .kv("seed_elements_per_sec", r.seed.elements_per_sec)
        .kv("flat_elements_per_sec", r.flat.elements_per_sec)
        .kv("batch_elements_per_sec", r.batch.elements_per_sec)
        .kv("flat_speedup", flat_speedup)
        .kv("batch_speedup", batch_speedup)
        .end_object();
  }
  table.print(std::cout);

  const double final_speedup =
      largest.batch.elements_per_sec / largest.seed.elements_per_sec;
  std::cout << "\nlargest workload (" << largest.label
            << "): batch engine is " << fmt_ratio(final_speedup)
            << " the seed path ("
            << fmt_meps(largest.batch.elements_per_sec) << " vs "
            << fmt_meps(largest.seed.elements_per_sec)
            << " elements/sec) on " << threads
            << " worker(s); target >= 5x: "
            << (final_speedup >= 5.0 ? "MET" : "NOT MET") << "\n";
  if (threads == 1 && final_speedup < 5.0)
    std::cout << "note: single hardware thread — the batch multiplier is "
                 "1x here; the flat/seed column is the per-core gain and "
                 "multiplies by the worker count on multi-core hosts.\n";

  json.writer()
      .begin_object()
      .kv("workload", "largest_summary")
      .kv("label", largest.label)
      .kv("m", largest.m)
      .kv("n", largest.n)
      .kv("threads", threads)
      .kv("flat_speedup_vs_seed",
          largest.flat.elements_per_sec / largest.seed.elements_per_sec)
      .kv("speedup_vs_seed", final_speedup)
      .kv("target_5x_met", final_speedup >= 5.0)
      .end_object();
  json.close();
  return 0;
}
