// E4+E5 — the empirical competitive-ratio dashboard over the adversarial
// scenario families, written to BENCH_adversarial.json and gated by
// scripts/check_bench_json.py.
//
// For every cell of the adversarial/* catalog sweeps this measures every
// deterministic baseline AND randPr against a certified offline
// denominator (api::opt_denominator: exact branch & bound where m
// permits, the verified planted witness otherwise, with the LP relaxation
// as an upper bracket where the simplex stays tractable):
//
//   theorem3  — the adaptive adversary run against each deterministic
//               policy (benefit <= 1 while opt >= sigma^(k-1)); randPr
//               replays the greedy-first transcript obliviously and
//               escapes the trap — the paper's separation, measured;
//   weak-lb   — the Section 4.2 t^2-set distribution (ratio Omega(t/log t)
//               for every online algorithm);
//   lemma9    — the Figure 1 four-stage gadget distribution (everybody
//               earns polylog(ell) while opt >= ell^3).
//
// The artifact carries NO wall-clock fields: rerunning the bench
// regenerates BENCH_adversarial.json byte for byte, so the committed
// dashboard is itself a determinism check.
#include <algorithm>
#include <iostream>
#include <limits>

#include "algos/baselines.hpp"
#include "algos/offline.hpp"
#include "api/adversarial.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/game.hpp"
#include "design/lower_bounds.hpp"

namespace osp {
namespace {

double safe_ratio(double opt, double mean) {
  return mean > 0 ? opt / mean : opt;
}

/// Running aggregates one family sweep folds into its summary row.
struct FamilySummary {
  std::size_t cells = 0;
  std::size_t policies = 0;
  double det_alg_max = 0;  // largest deterministic mean benefit seen
  double det_ratio_min = std::numeric_limits<double>::infinity();
  double randpr_margin_min = std::numeric_limits<double>::infinity();
  bool gate_met = true;

  void fold_cell(double det_max_mean, double det_min_ratio,
                 double randpr_mean) {
    ++cells;
    det_alg_max = std::max(det_alg_max, det_max_mean);
    det_ratio_min = std::min(det_ratio_min, det_min_ratio);
    randpr_margin_min =
        std::min(randpr_margin_min, randpr_mean - det_max_mean);
  }

  void emit(api::JsonSink& json, const std::string& family) const {
    json.write(api::Row{}
                   .add("sweep", "summary")
                   .add("family", family)
                   .add("cells", cells)
                   .add("policies", policies)
                   .add("det_alg_max", det_alg_max)
                   .add("det_ratio_min", det_ratio_min)
                   .add("randpr_margin_min", randpr_margin_min)
                   .add("gate", gate_met ? "MET" : "MISSED"));
  }
};

void theorem3_sweep(api::JsonSink& json) {
  std::cout << "-- Theorem 3: adaptive adversary, every deterministic "
               "baseline trapped --\n";
  Table table({"sigma", "k", "opt", "det max benefit", "det ratio min",
               "E[randPr]", "randPr ratio", "Thm3 bound"});
  // Rng stream preserved from bench_det_lb's randPr control: master(11),
  // split keyed on the cell's (sigma, k).
  Rng master(11);
  FamilySummary summary;
  summary.policies = make_deterministic_baselines().size() + 1;
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("adversarial/theorem3"))) {
    const std::size_t sigma = cell.sigma;
    const std::size_t k = cell.k;
    const double bound = theorem3_lower_bound(sigma, k);

    double det_max = 0;
    double det_ratio_min = std::numeric_limits<double>::infinity();
    auto algs = make_deterministic_baselines();
    for (auto& alg : algs) {
      AdaptiveAdversaryResult r = run_theorem3_adversary(*alg, sigma, k);
      OSP_REQUIRE_MSG(is_feasible(r.transcript, r.witness),
                      "theorem3 witness infeasible vs " << alg->name());
      const api::OptDenominator den =
          api::opt_denominator(r.transcript, r.opt_lower_bound);
      const double benefit = r.alg_outcome.benefit;
      const double ratio = safe_ratio(den.opt, benefit);
      det_max = std::max(det_max, benefit);
      det_ratio_min = std::min(det_ratio_min, ratio);
      summary.gate_met = summary.gate_met && benefit <= 1.0 + 1e-9 &&
                         den.opt + 1e-9 >= r.opt_lower_bound;
      json.write(api::Row{}
                     .add("sweep", "theorem3")
                     .add("scenario", cell.display_label())
                     .add("sigma", sigma)
                     .add("k", k)
                     .add("policy", alg->name())
                     .add("deterministic", true)
                     .add("trials", 1)
                     .add("alg_mean", benefit)
                     .add("alg_ci95", 0.0)
                     .add("witness", r.opt_lower_bound)
                     .add("opt", den.opt)
                     .add("opt_exact", den.opt_exact)
                     .add("lp_upper", den.lp_upper)
                     .add("ratio", ratio)
                     .add("bound", bound));
    }

    // randPr replays the greedy-first transcript obliviously (the same
    // control bench_det_lb ran): build_adversarial_cell pins that victim.
    Rng unused(0);  // kTheorem3 construction draws nothing from it
    api::AdversarialCell adv = api::build_adversarial_cell(cell, unused);
    const api::OptDenominator den =
        api::opt_denominator(adv.instance, adv.witness_value);
    Rng runs = master.split(sigma * 10 + k);
    RunningStat rp =
        bench::measure_randpr(adv.instance, runs, cell.default_trials);
    const double rp_ratio = safe_ratio(den.opt, rp.mean());
    summary.gate_met = summary.gate_met && rp.mean() > det_max;
    summary.fold_cell(det_max, det_ratio_min, rp.mean());
    json.write(api::Row{}
                   .add("sweep", "theorem3")
                   .add("scenario", cell.display_label())
                   .add("sigma", sigma)
                   .add("k", k)
                   .add("policy", "randPr")
                   .add("deterministic", false)
                   .add("trials", cell.default_trials)
                   .add("alg_mean", rp.mean())
                   .add("alg_ci95", rp.ci95_halfwidth())
                   .add("witness", adv.witness_value)
                   .add("opt", den.opt)
                   .add("opt_exact", den.opt_exact)
                   .add("lp_upper", den.lp_upper)
                   .add("ratio", rp_ratio)
                   .add("bound", bound));
    table.row({fmt(sigma), fmt(k), fmt(den.opt, 1), fmt(det_max, 1),
               fmt_ratio(det_ratio_min), bench::fmt_mean_ci(rp),
               fmt_ratio(rp_ratio), fmt(bound, 1)});
  }
  summary.emit(json, "theorem3");
  table.print(std::cout);
  std::cout << "Expected shape: every deterministic baseline stuck at "
               "benefit <= 1 (ratio = the Thm3 bound); randPr clears the "
               "deterministic ceiling on every cell.\n\n";
}

/// Shared driver for the two distribution families (weak-lb, lemma9):
/// `draws` fresh instances per cell, every policy measured on the same
/// draws, the denominator aggregated per draw through opt_denominator.
void distribution_sweep(api::JsonSink& json, const std::string& sweep_key,
                        const std::string& scenario_name,
                        std::uint64_t master_seed,
                        std::uint64_t instance_key_base,
                        std::uint64_t randpr_key_base,
                        std::size_t lp_row_limit) {
  Table table({"cell", "opt", "det max benefit", "det ratio min",
               "E[randPr]", "randPr ratio", "bound"});
  Rng master(master_seed);
  FamilySummary summary;
  summary.policies = make_deterministic_baselines().size() + 1;
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at(scenario_name))) {
    const int draws = cell.default_trials;
    const std::size_t shape =
        cell.family == api::ScenarioFamily::kWeakLb ? cell.t : cell.ell;
    const std::size_t num_det = make_deterministic_baselines().size();
    std::vector<RunningStat> det_stats(num_det);
    std::vector<std::string> det_names(num_det);
    RunningStat randpr_stat, opt_stat, lp_stat;
    bool all_exact = true;
    bool all_lp = true;
    double witness_value = 0;
    double bound = 0;
    for (int d = 0; d < draws; ++d) {
      const std::uint64_t key =
          instance_key_base * shape + static_cast<std::uint64_t>(d);
      Rng rng = master.split(key);
      api::AdversarialCell adv = api::build_adversarial_cell(cell, rng);
      witness_value = adv.witness_value;
      bound = adv.bound;
      const api::OptDenominator den = api::opt_denominator(
          adv.instance, adv.witness_value, lp_row_limit);
      opt_stat.add(den.opt);
      all_exact = all_exact && den.opt_exact;
      if (den.lp_upper > 0) lp_stat.add(den.lp_upper);
      else all_lp = false;

      auto algs = make_deterministic_baselines();
      for (std::size_t i = 0; i < num_det; ++i) {
        det_names[i] = algs[i]->name();
        det_stats[i].add(play(adv.instance, *algs[i]).benefit);
      }
      RandPr rp(master.split(randpr_key_base + key));
      randpr_stat.add(play(adv.instance, rp).benefit);
    }
    const double opt = opt_stat.mean();
    const double lp_upper = all_lp ? lp_stat.mean() : 0.0;

    double det_max = 0;
    double det_ratio_min = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < num_det; ++i) {
      const double mean = det_stats[i].mean();
      const double ratio = safe_ratio(opt, mean);
      det_max = std::max(det_max, mean);
      det_ratio_min = std::min(det_ratio_min, ratio);
      json.write(api::Row{}
                     .add("sweep", sweep_key)
                     .add("scenario", cell.display_label())
                     .add(sweep_key == "weaklb" ? "t" : "ell", shape)
                     .add("policy", det_names[i])
                     .add("deterministic", true)
                     .add("trials", draws)
                     .add("alg_mean", mean)
                     .add("alg_ci95", det_stats[i].ci95_halfwidth())
                     .add("witness", witness_value)
                     .add("opt", opt)
                     .add("opt_exact", all_exact)
                     .add("lp_upper", lp_upper)
                     .add("ratio", ratio)
                     .add("bound", bound));
    }
    const double rp_ratio = safe_ratio(opt, randpr_stat.mean());
    summary.gate_met = summary.gate_met && det_ratio_min >= 1.0;
    summary.fold_cell(det_max, det_ratio_min, randpr_stat.mean());
    json.write(api::Row{}
                   .add("sweep", sweep_key)
                   .add("scenario", cell.display_label())
                   .add(sweep_key == "weaklb" ? "t" : "ell", shape)
                   .add("policy", "randPr")
                   .add("deterministic", false)
                   .add("trials", draws)
                   .add("alg_mean", randpr_stat.mean())
                   .add("alg_ci95", randpr_stat.ci95_halfwidth())
                   .add("witness", witness_value)
                   .add("opt", opt)
                   .add("opt_exact", all_exact)
                   .add("lp_upper", lp_upper)
                   .add("ratio", rp_ratio)
                   .add("bound", bound));
    table.row({cell.display_label(), fmt(opt, 2), fmt(det_max, 2),
               fmt_ratio(det_ratio_min), bench::fmt_mean_ci(randpr_stat),
               fmt_ratio(rp_ratio), fmt(bound, 2)});
  }
  summary.emit(json, sweep_key);
  table.print(std::cout);
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E4+E5 / competitive-ratio dashboard (BENCH_adversarial.json)",
      "Every deterministic baseline and randPr measured against a "
      "certified offline denominator on the paper's three worst-case "
      "constructions.  Deterministic policies are trapped at benefit <= 1 "
      "on theorem3 (ratio = sigma^(k-1)); everyone is polylog on lemma9; "
      "the warm-up gadget costs Omega(t/log t).");
  osp::api::JsonSink json("adversarial", osp::bench::session().threads());
  osp::theorem3_sweep(json);

  std::cout << "-- Section 4.2 warm-up (t^2 sets, ratio Omega(t/log t)) "
               "--\n";
  // Rng streams preserved from bench_rand_lb's weak_table: master(314159),
  // instance split t*1000+d, randPr split 50000 + t*1000+d.
  osp::distribution_sweep(json, "weaklb", "adversarial/weak-lb", 314159,
                          1000, 50000, osp::api::kDefaultLpRowLimit);
  std::cout << "Expected shape: every policy's ratio grows with t roughly "
               "like t/log t (survivors are O(log t) of the t planted "
               "sets).\n\n";

  std::cout << "-- Lemma 9 distribution (Figure 1 construction) --\n";
  // Rng streams preserved from bench_rand_lb's lemma9_table for ell <= 4
  // (master(271828), instance split ell*100+d, randPr split 7000 + the
  // same key); ell = 5 is re-baselined from 6 draws to the catalog's 12,
  // and ell = 7 is dropped from the sweep (runtime).  The dense simplex
  // returns a nonsense objective on this gadget past ell = 2, so the LP
  // row limit is pinned below the ell = 3 tableau size.
  osp::distribution_sweep(json, "lemma9", "adversarial/lemma9", 271828,
                          100, 7000, 200);
  std::cout << "Expected shape: E[alg] stays polylog(ell) for every "
               "policy while opt grows like ell^3, so every ratio grows "
               "polynomially, tracking the Thm2 expression.\n";
  return 0;
}
