// E5 — Theorem 2 / Lemma 9 / Figure 1: the randomized lower bound.
//
// Draws from the four-stage gadget distribution D with parameter ℓ and
// measures the expected benefit of deterministic baselines AND randPr
// against the planted optimum of ℓ³.  The ratio must grow polynomially in
// ℓ (the bound is Ω(k (loglog k/log k)² √σmax) with k = Θ(ℓ²), σmax =
// Θ(ℓ²)), demonstrating that no online algorithm — randomized included —
// can evade the construction.  Also prints the warm-up t²-set
// construction of Section 4.2 (Ω(t/log t)).  Both sweeps iterate the
// adversarial/* catalog cells; the machine-readable version is
// bench_adversarial's BENCH_adversarial.json.
#include <iostream>

#include "algos/baselines.hpp"
#include "api/adversarial.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/game.hpp"
#include "design/lower_bounds.hpp"

namespace osp {
namespace {

void lemma9_table() {
  std::cout << "-- Lemma 9 distribution (Figure 1 construction) --\n";
  Table table({"ell", "sets", "elements", "k", "smax", "opt >=",
               "E[greedy]", "E[randPr]", "randPr ratio", "Thm2 bound"});
  // The swept ell values live in the adversarial/lemma9 catalog entry.
  // Instance and randPr split keys derive from the cell values, so the
  // streams match the historical loop bit for bit where the grids agree
  // (master(271828), splits ell*100+d and 7000+ell*100+d); the catalog
  // re-baselines ell=5 from 6 draws to 12 and drops ell=7 (runtime).
  Rng master(271828);
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("adversarial/lemma9"))) {
    const std::size_t ell = cell.ell;
    const int draws = cell.default_trials;
    RunningStat greedy_stat, randpr_stat;
    std::size_t n_sets = 0, n_elems = 0, k = 0, smax = 0;
    for (int d = 0; d < draws; ++d) {
      Rng rng = master.split(ell * 100 + d);
      api::AdversarialCell adv = api::build_adversarial_cell(cell, rng);
      InstanceStats st = adv.instance.stats();
      n_sets = st.num_sets;
      n_elems = st.num_elements;
      k = st.k_max;
      smax = st.sigma_max;

      GreedyFirst greedy;
      greedy_stat.add(play(adv.instance, greedy).benefit);
      RandPr rp(master.split(7000 + ell * 100 + d));
      randpr_stat.add(play(adv.instance, rp).benefit);
    }
    double opt_lb = static_cast<double>(ell * ell * ell);
    double ratio =
        randpr_stat.mean() > 0 ? opt_lb / randpr_stat.mean() : opt_lb;
    table.row({fmt(ell), fmt(n_sets), fmt(n_elems), fmt(k), fmt(smax),
               fmt(opt_lb, 0), bench::fmt_mean_ci(greedy_stat),
               bench::fmt_mean_ci(randpr_stat), fmt_ratio(ratio),
               fmt(theorem2_lower_bound(k, smax), 1)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: E[alg] stays polylog(ell) for every "
               "algorithm while opt grows like ell^3, so the ratio grows "
               "polynomially, tracking the Thm2 expression.\n\n";
}

void weak_table() {
  std::cout << "-- Section 4.2 warm-up (t^2 sets, ratio Omega(t/log t)) "
               "--\n";
  Table table({"t", "opt >=", "E[greedy]", "E[randPr]", "greedy ratio",
               "randPr ratio", "t/ln(t)"});
  // adversarial/weak-lb cells; historical streams preserved exactly
  // (master(314159), splits t*1000+d and 50000+t*1000+d, 40 draws).
  Rng master(314159);
  for (const api::ScenarioSpec& cell :
       api::expand(api::scenarios().at("adversarial/weak-lb"))) {
    const std::size_t t = cell.t;
    const int draws = cell.default_trials;
    RunningStat greedy_stat, randpr_stat;
    for (int d = 0; d < draws; ++d) {
      Rng rng = master.split(t * 1000 + d);
      api::AdversarialCell adv = api::build_adversarial_cell(cell, rng);
      GreedyFirst greedy;
      greedy_stat.add(play(adv.instance, greedy).benefit);
      RandPr rp(master.split(50000 + t * 1000 + d));
      randpr_stat.add(play(adv.instance, rp).benefit);
    }
    double opt_lb = static_cast<double>(t);
    table.row({fmt(t), fmt(opt_lb, 0), bench::fmt_mean_ci(greedy_stat),
               bench::fmt_mean_ci(randpr_stat),
               fmt_ratio(opt_lb / greedy_stat.mean()),
               fmt_ratio(opt_lb / randpr_stat.mean()),
               fmt(static_cast<double>(t) / std::log(static_cast<double>(t)),
                   2)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: both ratios grow with t roughly like "
               "t/log t (survivors are O(log t) of the t planted sets).\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E5 / Theorem 2 + Lemma 9 (randomized lower bound, Figure 1)",
      "No online algorithm beats the gadget distribution: expected benefit "
      "is polylog while opt >= ell^3.");
  osp::lemma9_table();
  osp::weak_table();
  return 0;
}
