// E5 — Theorem 2 / Lemma 9 / Figure 1: the randomized lower bound.
//
// Draws from the four-stage gadget distribution D with parameter ℓ and
// measures the expected benefit of deterministic baselines AND randPr
// against the planted optimum of ℓ³.  The ratio must grow polynomially in
// ℓ (the bound is Ω(k (loglog k/log k)² √σmax) with k = Θ(ℓ²), σmax =
// Θ(ℓ²)), demonstrating that no online algorithm — randomized included —
// can evade the construction.  Also prints the warm-up t²-set
// construction of Section 4.2 (Ω(t/log t)).
#include <iostream>

#include "algos/baselines.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "design/lower_bounds.hpp"

namespace osp {
namespace {

void lemma9_table() {
  std::cout << "-- Lemma 9 distribution (Figure 1 construction) --\n";
  Table table({"ell", "sets", "elements", "k", "smax", "opt >=",
               "E[greedy]", "E[randPr]", "randPr ratio", "Thm2 bound"});
  Rng master(271828);
  for (std::size_t ell : {2, 3, 4, 5, 7}) {
    const int draws = ell <= 4 ? 12 : 6;
    RunningStat greedy_stat, randpr_stat;
    std::size_t n_sets = 0, n_elems = 0, k = 0, smax = 0;
    for (int d = 0; d < draws; ++d) {
      Rng rng = master.split(ell * 100 + d);
      Lemma9Instance li = build_lemma9_instance(ell, rng);
      InstanceStats st = li.instance.stats();
      n_sets = st.num_sets;
      n_elems = st.num_elements;
      k = st.k_max;
      smax = st.sigma_max;

      GreedyFirst greedy;
      greedy_stat.add(play(li.instance, greedy).benefit);
      RandPr rp(master.split(7000 + ell * 100 + d));
      randpr_stat.add(play(li.instance, rp).benefit);
    }
    double opt_lb = static_cast<double>(ell * ell * ell);
    double ratio =
        randpr_stat.mean() > 0 ? opt_lb / randpr_stat.mean() : opt_lb;
    table.row({fmt(ell), fmt(n_sets), fmt(n_elems), fmt(k), fmt(smax),
               fmt(opt_lb, 0), bench::fmt_mean_ci(greedy_stat),
               bench::fmt_mean_ci(randpr_stat), fmt_ratio(ratio),
               fmt(theorem2_lower_bound(k, smax), 1)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: E[alg] stays polylog(ell) for every "
               "algorithm while opt grows like ell^3, so the ratio grows "
               "polynomially, tracking the Thm2 expression.\n\n";
}

void weak_table() {
  std::cout << "-- Section 4.2 warm-up (t^2 sets, ratio Omega(t/log t)) "
               "--\n";
  Table table({"t", "opt >=", "E[greedy]", "E[randPr]", "greedy ratio",
               "randPr ratio", "t/ln(t)"});
  Rng master(314159);
  for (std::size_t t : {4, 6, 8, 12, 16, 24}) {
    const int draws = 40;
    RunningStat greedy_stat, randpr_stat;
    for (int d = 0; d < draws; ++d) {
      Rng rng = master.split(t * 1000 + d);
      WeakLbInstance wl = build_weak_lb_instance(t, rng);
      GreedyFirst greedy;
      greedy_stat.add(play(wl.instance, greedy).benefit);
      RandPr rp(master.split(50000 + t * 1000 + d));
      randpr_stat.add(play(wl.instance, rp).benefit);
    }
    double opt_lb = static_cast<double>(t);
    table.row({fmt(t), fmt(opt_lb, 0), bench::fmt_mean_ci(greedy_stat),
               bench::fmt_mean_ci(randpr_stat),
               fmt_ratio(opt_lb / greedy_stat.mean()),
               fmt_ratio(opt_lb / randpr_stat.mean()),
               fmt(static_cast<double>(t) / std::log(static_cast<double>(t)),
                   2)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: both ratios grow with t roughly like "
               "t/log t (survivors are O(log t) of the t planted sets).\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E5 / Theorem 2 + Lemma 9 (randomized lower bound, Figure 1)",
      "No online algorithm beats the gadget distribution: expected benefit "
      "is polylog while opt >= ell^3.");
  osp::lemma9_table();
  osp::weak_table();
  return 0;
}
