// E10 — open problem 3: partial credit / forward error correction.
//
// "A set is gained in osp only if all its elements were assigned to it.
//  What about the case where the set can be gained even if a few elements
//  are missing?"
//
// We sweep the miss budget r on random frame-like instances:
//  * the exact partial-credit optimum (B&B + max-flow feasibility) grows
//    with r,
//  * randPr's expected partial-credit benefit grows faster,
//  * so the measured competitive ratio FALLS with r — redundancy makes
//    the online problem easier, quantifying the open problem's intuition.
// A second table shows the FEC story on the video workload: how many
// parity packets per frame buy how much goodput.
#include <iostream>

#include "algos/partial_offline.hpp"
#include "bench_common.hpp"
#include "core/partial.hpp"
#include "gen/random_instances.hpp"
#include "gen/video.hpp"

namespace osp {
namespace {

void ratio_vs_budget() {
  std::cout << "-- competitive ratio vs miss budget r --\n";
  Table table({"m", "k", "r", "opt(r)", "LP bound", "E[alg(r)]", "ratio"});
  Rng master(1123);
  const int trials = 500;
  Rng gen = master.split(1);
  Instance inst = random_instance(16, 14, 4, WeightModel::unit(), gen);

  for (std::size_t r : {0u, 1u, 2u, 3u}) {
    PartialCreditRule rule{.max_misses = r};
    OfflineResult opt = partial_exact_optimum(inst, rule);
    double lp = partial_lp_upper_bound(inst, rule);

    RunningStat alg;
    Rng runs = master.split(100 + r);
    for (int t = 0; t < trials; ++t) {
      RandPr a(runs.split(t), {.filter_dead = true, .allowed_misses = r});
      alg.add(play_partial(inst, a, rule).benefit);
    }
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;
    table.row({fmt(std::size_t{16}), fmt(std::size_t{4}), fmt(r),
               fmt(opt.value, 1), fmt(lp, 2), bench::fmt_mean_ci(alg),
               fmt_ratio(ratio)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: every extra unit of miss budget multiplies "
               "E[alg] (x4.5 from r=0 to r=3 here) because the effective "
               "set size shrinks from k to k-r.  Note opt grows even "
               "faster on dense instances — redundancy is not a free "
               "competitive-ratio win, it is an absolute-goodput win.\n\n";
}

void fec_video() {
  std::cout << "-- FEC on the video workload: r parity packets per frame "
               "--\n";
  Table table({"r (parity)", "policy", "frames credited", "value credited",
               "goodput"});
  Rng master(2234);
  const int draws = 20;
  for (std::size_t r : {0u, 1u, 2u}) {
    PartialCreditRule rule{.max_misses = r};
    struct Acc {
      std::string name;
      double frames = 0, value = 0, total = 0;
    };
    std::vector<Acc> accs;
    auto add = [&](const std::string& name, double f, double v, double tot) {
      for (auto& a : accs)
        if (a.name == name) {
          a.frames += f;
          a.value += v;
          a.total += tot;
          return;
        }
      accs.push_back({name, f, v, tot});
    };
    for (int d = 0; d < draws; ++d) {
      VideoParams params;
      params.num_streams = 10;
      params.frames_per_stream = 20;
      Rng wl = master.split(r * 100 + d);
      VideoWorkload vw = make_video_workload(params, wl);
      Instance inst = vw.schedule.to_instance(1);
      double total = inst.stats().total_weight;

      RandPr rp(master.split(50000 + r * 100 + d),
                {.filter_dead = true, .allowed_misses = r});
      PartialOutcome a = play_partial(inst, rp, rule);
      add("randPr/filt", static_cast<double>(a.credited.size()), a.benefit,
          total);

      RandPr plain(master.split(60000 + r * 100 + d));
      PartialOutcome b = play_partial(inst, plain, rule);
      add("randPr (paper)", static_cast<double>(b.credited.size()),
          b.benefit, total);
    }
    for (const Acc& a : accs)
      table.row({fmt(r), a.name, fmt(a.frames / draws, 1),
                 fmt(a.value / draws, 1), fmt(a.value / a.total, 3)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: each parity packet buys a large goodput "
               "jump; the miss-aware filter compounds the gain.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::bench::banner(
      "E10 / open problem 3 (partial credit / FEC)",
      "How miss tolerance changes the online set packing game.");
  osp::ratio_vs_budget();
  osp::fec_video();
  return 0;
}
