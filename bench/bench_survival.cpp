// E1 — Lemma 1: Pr[S in alg] = w(S) / w(N[S]).
//
// For hand-built overlap structures (stars, cliques, chains, weighted
// mixes) we compare the empirical completion frequency of each set under
// randPr with the exact closed form, for both the true-random and the
// hashed (distributed) implementation.
#include <iostream>
#include <map>
#include <set>

#include "bench_common.hpp"
#include "core/rand_pr.hpp"
#include "hash/universal_hash.hpp"

namespace osp {
namespace {

// Exact w(N[S]) from the instance structure.
double closed_neighborhood_weight(const Instance& inst, SetId s) {
  std::set<SetId> nbhd{s};
  for (ElementId u : inst.elements_of(s))
    for (SetId r : inst.arrival(u).parents) nbhd.insert(r);
  double w = 0;
  for (SetId r : nbhd) w += inst.weight(r);
  return w;
}

struct Case {
  std::string name;
  Instance inst;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  {
    // Star: one hub set sharing one element with each of 4 leaves.
    InstanceBuilder b;
    b.add_set(1.0);  // hub
    for (int i = 0; i < 4; ++i) b.add_set(1.0);
    for (SetId leaf = 1; leaf <= 4; ++leaf) b.add_element({0, leaf});
    cases.push_back({"star-4 (unweighted)", b.build()});
  }
  {
    // Weighted star: heavy hub.
    InstanceBuilder b;
    b.add_set(6.0);
    for (int i = 0; i < 4; ++i) b.add_set(1.0);
    for (SetId leaf = 1; leaf <= 4; ++leaf) b.add_element({0, leaf});
    cases.push_back({"star-4 (hub w=6)", b.build()});
  }
  {
    // Clique: 5 sets all sharing a single element.
    InstanceBuilder b;
    b.add_sets(5, 1.0);
    b.add_element({0, 1, 2, 3, 4});
    cases.push_back({"clique-5", b.build()});
  }
  {
    // Weighted chain: S0 heavy in the middle.
    InstanceBuilder b;
    b.add_set(2.0);
    b.add_set(4.0);
    b.add_set(1.0);
    b.add_element({0, 1});
    b.add_element({0, 2});
    cases.push_back({"chain w=(2,4,1)", b.build()});
  }
  return cases;
}

void run() {
  bench::banner("E1 / Lemma 1",
                "Pr[S completes under randPr] should equal w(S)/w(N[S]) for "
                "every set S; measured over 60000 trials, true-random and "
                "hashed priorities.");

  const int trials = 60000;
  Table table({"structure", "set", "w(S)", "w(N[S])", "predicted",
               "measured(rand)", "measured(hash)"});

  for (const Case& c : make_cases()) {
    std::vector<int> wins_rand(c.inst.num_sets(), 0);
    std::vector<int> wins_hash(c.inst.num_sets(), 0);
    Rng master(2020);
    for (int t = 0; t < trials; ++t) {
      RandPr alg(master.split(t));
      Outcome out = play(c.inst, alg);
      for (SetId s : out.completed) ++wins_rand[s];

      Rng hr = master.split(1'000'000 + t);
      auto halg = HashedRandPr::with_polynomial(8, hr);
      Outcome hout = play(c.inst, *halg);
      for (SetId s : hout.completed) ++wins_hash[s];
    }
    for (SetId s = 0; s < c.inst.num_sets(); ++s) {
      double predicted =
          c.inst.weight(s) / closed_neighborhood_weight(c.inst, s);
      table.row({c.name, "S" + std::to_string(s), fmt(c.inst.weight(s)),
                 fmt(closed_neighborhood_weight(c.inst, s)),
                 fmt(predicted, 4),
                 fmt(static_cast<double>(wins_rand[s]) / trials, 4),
                 fmt(static_cast<double>(wins_hash[s]) / trials, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: measured columns within ~0.005 of the "
               "predicted column (binomial noise at 60k trials).\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::run();
  return 0;
}
