// E2 — Theorem 1 and Corollary 6: the competitive ratio of randPr is at
// most kmax·sqrt(avg(σ·σ$)/avg(σ$)) <= kmax·sqrt(σmax).
//
// Random instance families sweeping k and the density (which drives σ).
// For each family we report the measured ratio opt / E[w(alg)] next to
// both bound expressions; the measured column must stay below both, and
// should grow with k and sqrt(σ).
#include <iostream>

#include "algos/offline.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "gen/random_instances.hpp"

namespace osp {
namespace {

void sweep(bool weighted) {
  Table table({"m", "n", "k", "smax", "opt", "E[alg]", "L4+L5 floor",
               "ratio", "Thm1 bound", "Cor6 bound"});
  Rng master(weighted ? 777 : 555);
  const int trials = 600;

  struct Row {
    std::size_t m, n, k;
  };
  for (Row r : {Row{12, 30, 2}, Row{16, 30, 3}, Row{20, 30, 4},
                Row{24, 30, 5}, Row{20, 16, 3}, Row{24, 12, 3},
                Row{28, 10, 3}, Row{32, 8, 3}}) {
    Rng gen = master.split(r.m * 100 + r.k);
    WeightModel wm =
        weighted ? WeightModel::uniform(1, 8) : WeightModel::unit();
    Instance inst = random_instance(r.m, r.n, r.k, wm, gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);

    Rng runs = master.split(909 + r.m);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;

    table.row({fmt(r.m), fmt(inst.num_elements()), fmt(r.k),
               fmt(st.sigma_max), fmt(opt.value, 2),
               bench::fmt_mean_ci(alg),
               fmt(theorem1_benefit_floor(st, opt.value), 2),
               fmt_ratio(ratio), fmt(theorem1_bound(st), 2),
               fmt(corollary6_bound(st), 2)});
  }
  table.print(std::cout);
}

void run() {
  bench::banner(
      "E2 / Theorem 1 + Corollary 6",
      "Measured competitive ratio of randPr vs the proven bounds on random "
      "instances (top: unweighted, bottom: weights U[1,8]).  opt is exact "
      "(branch & bound).  Expect ratio <= Thm1 <= Cor6 everywhere, ratio "
      "growing with k and with density (smax).  'L4+L5 floor' is the "
      "max of the Lemma 4 and Lemma 5 lower bounds on E[alg] — the "
      "intermediate quantities of the paper's proof — and must sit below "
      "the measured E[alg].");

  std::cout << "-- unweighted --\n";
  sweep(false);
  std::cout << "\n-- weighted U[1,8] --\n";
  sweep(true);
  std::cout << "\nExpected shape: measured ratio well under the bounds "
               "(the analysis is worst-case); larger k or smax => larger "
               "ratio.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::run();
  return 0;
}
