// E2 — Theorem 1 and Corollary 6: the competitive ratio of randPr is at
// most kmax·sqrt(avg(σ·σ$)/avg(σ$)) <= kmax·sqrt(σmax).
//
// Random instance families sweeping k and the density (which drives σ).
// For each family we report the measured ratio opt / E[w(alg)] next to
// both bound expressions; the measured column must stay below both, and
// should grow with k and sqrt(σ).
#include <iostream>

#include "algos/offline.hpp"
#include "bench_common.hpp"
#include "core/bounds.hpp"

namespace osp {
namespace {

void sweep(bool weighted) {
  Table table({"m", "n", "k", "smax", "opt", "E[alg]", "L4+L5 floor",
               "ratio", "Thm1 bound", "Cor6 bound"});
  Rng master(weighted ? 777 : 555);

  // The eight (m, n, k) shapes live in the random/theorem1 catalog entry;
  // the Rng split keys derive from the cell values (m*100+k, 909+m), so
  // the declarative sweep reproduces the historical loop's streams bit
  // for bit.  The weighted pass overrides the weight model in place — the
  // generator consumes the same stream either way.
  for (api::ScenarioSpec cell :
       api::expand(api::scenarios().at("random/theorem1"))) {
    if (weighted) cell.weights = WeightModel::uniform(1, 8);
    const int trials = cell.default_trials;
    Rng gen = master.split(cell.m * 100 + cell.k);
    Instance inst = api::build_instance(cell, gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);

    Rng runs = master.split(909 + cell.m);
    RunningStat alg = bench::measure_randpr(inst, runs, trials);
    double ratio = alg.mean() > 0 ? opt.value / alg.mean() : 0;

    table.row({fmt(cell.m), fmt(inst.num_elements()), fmt(cell.k),
               fmt(st.sigma_max), fmt(opt.value, 2),
               bench::fmt_mean_ci(alg),
               fmt(theorem1_benefit_floor(st, opt.value), 2),
               fmt_ratio(ratio), fmt(theorem1_bound(st), 2),
               fmt(corollary6_bound(st), 2)});
  }
  table.print(std::cout);
}

void run() {
  bench::banner(
      "E2 / Theorem 1 + Corollary 6",
      "Measured competitive ratio of randPr vs the proven bounds on random "
      "instances (top: unweighted, bottom: weights U[1,8]).  opt is exact "
      "(branch & bound).  Expect ratio <= Thm1 <= Cor6 everywhere, ratio "
      "growing with k and with density (smax).  'L4+L5 floor' is the "
      "max of the Lemma 4 and Lemma 5 lower bounds on E[alg] — the "
      "intermediate quantities of the paper's proof — and must sit below "
      "the measured E[alg].");

  std::cout << "-- unweighted --\n";
  sweep(false);
  std::cout << "\n-- weighted U[1,8] --\n";
  sweep(true);
  std::cout << "\nExpected shape: measured ratio well under the bounds "
               "(the analysis is worst-case); larger k or smax => larger "
               "ratio.\n";
}

}  // namespace
}  // namespace osp

int main() {
  osp::run();
  return 0;
}
