// Tests for the Instance model: builder validation and statistics.
#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "util/require.hpp"

namespace osp {
namespace {

// Small shared fixture: 3 sets, 4 elements.
//   S0 = {e0, e1}, w=1;  S1 = {e0, e2}, w=2;  S2 = {e1, e2, e3}, w=3.
Instance tiny() {
  InstanceBuilder b;
  b.add_set(1.0);
  b.add_set(2.0);
  b.add_set(3.0);
  b.add_element({0, 1});
  b.add_element({0, 2});
  b.add_element({1, 2});
  b.add_element({2});
  return b.build();
}

TEST(InstanceBuilder, BasicShape) {
  Instance inst = tiny();
  EXPECT_EQ(inst.num_sets(), 3u);
  EXPECT_EQ(inst.num_elements(), 4u);
  EXPECT_EQ(inst.set_size(0), 2u);
  EXPECT_EQ(inst.set_size(1), 2u);
  EXPECT_EQ(inst.set_size(2), 3u);
  EXPECT_DOUBLE_EQ(inst.weight(2), 3.0);
}

TEST(InstanceBuilder, MembersMatchArrivals) {
  Instance inst = tiny();
  EXPECT_EQ(inst.elements_of(0), (std::vector<ElementId>{0, 1}));
  EXPECT_EQ(inst.elements_of(2), (std::vector<ElementId>{1, 2, 3}));
  EXPECT_EQ(inst.arrival(0).parents, (std::vector<SetId>{0, 1}));
}

TEST(InstanceBuilder, ParentsSortedEvenIfGivenUnsorted) {
  InstanceBuilder b;
  b.add_sets(3);
  b.add_element({2, 0, 1});
  Instance inst = b.build();
  EXPECT_EQ(inst.arrival(0).parents, (std::vector<SetId>{0, 1, 2}));
}

TEST(InstanceBuilder, RejectsDuplicateParents) {
  InstanceBuilder b;
  b.add_sets(2);
  EXPECT_THROW(b.add_element({0, 0}), RequireError);
}

TEST(InstanceBuilder, RejectsUnknownSet) {
  InstanceBuilder b;
  b.add_set();
  EXPECT_THROW(b.add_element({5}), RequireError);
}

TEST(InstanceBuilder, RejectsZeroCapacity) {
  InstanceBuilder b;
  b.add_set();
  EXPECT_THROW(b.add_element({0}, 0), RequireError);
}

TEST(InstanceBuilder, RejectsNegativeWeight) {
  InstanceBuilder b;
  EXPECT_THROW(b.add_set(-1.0), RequireError);
}

TEST(InstanceBuilder, ResetAfterBuild) {
  InstanceBuilder b;
  b.add_set();
  b.add_element({0});
  Instance first = b.build();
  EXPECT_EQ(b.num_sets(), 0u);
  EXPECT_EQ(b.num_elements(), 0u);
  b.add_set();
  Instance second = b.build();
  EXPECT_EQ(second.num_sets(), 1u);
  EXPECT_EQ(second.num_elements(), 0u);
}

TEST(Instance, Loads) {
  Instance inst = tiny();
  EXPECT_EQ(inst.load(0), 2u);
  EXPECT_EQ(inst.load(3), 1u);
  EXPECT_DOUBLE_EQ(inst.weighted_load(0), 3.0);  // S0 + S1
  EXPECT_DOUBLE_EQ(inst.weighted_load(2), 5.0);  // S1 + S2
  EXPECT_DOUBLE_EQ(inst.adjusted_load(0), 2.0);  // unit capacity
}

TEST(Instance, AdjustedLoadWithCapacity) {
  InstanceBuilder b;
  b.add_sets(4);
  b.add_element({0, 1, 2, 3}, 2);
  Instance inst = b.build();
  EXPECT_DOUBLE_EQ(inst.adjusted_load(0), 2.0);  // 4 / 2
}

TEST(InstanceStats, TinyByHand) {
  InstanceStats st = tiny().stats();
  EXPECT_EQ(st.num_sets, 3u);
  EXPECT_EQ(st.num_elements, 4u);
  EXPECT_DOUBLE_EQ(st.total_weight, 6.0);
  EXPECT_EQ(st.k_max, 3u);
  EXPECT_NEAR(st.k_avg, 7.0 / 3.0, 1e-12);
  EXPECT_EQ(st.sigma_max, 2u);
  EXPECT_NEAR(st.sigma_avg, 7.0 / 4.0, 1e-12);  // loads 2,2,2,1
  // σ$ per element: 3, 4, 5, 3 -> avg 15/4.
  EXPECT_NEAR(st.sigma_w_avg, 15.0 / 4.0, 1e-12);
  // σ·σ$: 6, 8, 10, 3 -> avg 27/4.
  EXPECT_NEAR(st.sigma_sigma_w_avg, 27.0 / 4.0, 1e-12);
  EXPECT_TRUE(st.unit_capacity);
  EXPECT_FALSE(st.uniform_size);
  EXPECT_FALSE(st.uniform_load);
  EXPECT_FALSE(st.unweighted);
}

TEST(InstanceStats, UniformFlags) {
  InstanceBuilder b;
  b.add_sets(4);  // unit weights
  b.add_element({0, 1});
  b.add_element({2, 3});
  b.add_element({0, 2});
  b.add_element({1, 3});
  InstanceStats st = b.build().stats();
  EXPECT_TRUE(st.uniform_size);
  EXPECT_TRUE(st.uniform_load);
  EXPECT_TRUE(st.unweighted);
  EXPECT_TRUE(st.unit_capacity);
  EXPECT_DOUBLE_EQ(st.k_avg, 2.0);
  EXPECT_DOUBLE_EQ(st.sigma_avg, 2.0);
}

TEST(InstanceStats, VariableCapacityFlags) {
  InstanceBuilder b;
  b.add_sets(3);
  b.add_element({0, 1, 2}, 3);
  InstanceStats st = b.build().stats();
  EXPECT_FALSE(st.unit_capacity);
  EXPECT_EQ(st.b_max, 3u);
  EXPECT_DOUBLE_EQ(st.nu_avg, 1.0);
  EXPECT_DOUBLE_EQ(st.nu_max, 1.0);
}

TEST(InstanceStats, MaxBurstIdentity) {
  // nσ̄ = mk̄ (double counting) — the identity used in Theorems 5 and 6.
  Instance inst = tiny();
  InstanceStats st = inst.stats();
  EXPECT_NEAR(static_cast<double>(st.num_elements) * st.sigma_avg,
              static_cast<double>(st.num_sets) * st.k_avg, 1e-9);
}

TEST(Instance, DescribeMentionsShape) {
  std::string d = tiny().describe();
  EXPECT_NE(d.find("m=3"), std::string::npos);
  EXPECT_NE(d.find("n=4"), std::string::npos);
  EXPECT_NE(d.find("kmax=3"), std::string::npos);
}

TEST(Instance, EmptySetCompletesVacuously) {
  // A set with no elements is permitted; it is trivially complete.
  InstanceBuilder b;
  b.add_set(5.0);
  Instance inst = b.build();
  EXPECT_EQ(inst.set_size(0), 0u);
}

TEST(Instance, ValidatePassesOnBuilt) {
  EXPECT_NO_THROW(tiny().validate());
}

}  // namespace
}  // namespace osp
