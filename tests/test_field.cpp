// Tests for primes and finite fields: primality against a sieve, prime
// power detection, and the full field axioms on a parameterized sweep of
// prime and prime-power orders (exhaustively for small q).
#include <gtest/gtest.h>

#include "field/gf.hpp"
#include "field/primes.hpp"
#include "util/require.hpp"

namespace osp {
namespace {

TEST(Primes, AgreesWithSieve) {
  auto sieve = primes_up_to(2000);
  std::size_t idx = 0;
  for (std::uint64_t n = 0; n <= 2000; ++n) {
    bool in_sieve = idx < sieve.size() && sieve[idx] == n;
    if (in_sieve) ++idx;
    EXPECT_EQ(is_prime(n), in_sieve) << "n=" << n;
  }
}

TEST(Primes, LargeKnownValues) {
  EXPECT_TRUE(is_prime((1ULL << 61) - 1));    // Mersenne prime
  // 2^67-1 (the famous composite Mersenne) does not fit in 64 bits — the
  // seed's `1ULL << 67` was UB.  2^59-1 = 179951 * 3203431780337.
  EXPECT_FALSE(is_prime((1ULL << 59) - 1));
  EXPECT_TRUE(is_prime(1'000'000'007ULL));
  EXPECT_TRUE(is_prime(18446744073709551557ULL));  // largest 64-bit prime
  EXPECT_FALSE(is_prime(3215031751ULL));  // strong pseudoprime to 2,3,5,7
}

TEST(Primes, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(90), 97u);
  EXPECT_EQ(next_prime(1'000'000'000), 1'000'000'007u);
}

TEST(Primes, PrimePowerDetection) {
  EXPECT_FALSE(is_prime_power(0));
  EXPECT_FALSE(is_prime_power(1));
  EXPECT_TRUE(is_prime_power(2));
  EXPECT_TRUE(is_prime_power(4));
  EXPECT_TRUE(is_prime_power(8));
  EXPECT_TRUE(is_prime_power(9));
  EXPECT_TRUE(is_prime_power(27));
  EXPECT_TRUE(is_prime_power(32));
  EXPECT_TRUE(is_prime_power(81));
  EXPECT_TRUE(is_prime_power(125));
  EXPECT_TRUE(is_prime_power(1024));
  EXPECT_FALSE(is_prime_power(6));
  EXPECT_FALSE(is_prime_power(12));
  EXPECT_FALSE(is_prime_power(100));
  EXPECT_FALSE(is_prime_power(36));
}

TEST(Primes, PrimePowerDecomposition) {
  auto pp = as_prime_power(81);
  ASSERT_TRUE(pp.has_value());
  EXPECT_EQ(pp->p, 3u);
  EXPECT_EQ(pp->e, 4u);

  pp = as_prime_power(1024);
  ASSERT_TRUE(pp.has_value());
  EXPECT_EQ(pp->p, 2u);
  EXPECT_EQ(pp->e, 10u);

  pp = as_prime_power(17);
  ASSERT_TRUE(pp.has_value());
  EXPECT_EQ(pp->p, 17u);
  EXPECT_EQ(pp->e, 1u);
}

TEST(Primes, ExhaustivePrimePowerSmall) {
  // Check against brute force for all q <= 300.
  auto primes = primes_up_to(300);
  for (std::uint64_t q = 2; q <= 300; ++q) {
    bool expected = false;
    for (std::uint64_t p : primes) {
      std::uint64_t v = p;
      while (v < q) v *= p;
      if (v == q) {
        expected = true;
        break;
      }
    }
    EXPECT_EQ(is_prime_power(q), expected) << "q=" << q;
  }
}

TEST(Primes, NextPrimePower) {
  EXPECT_EQ(next_prime_power(2), 2u);
  EXPECT_EQ(next_prime_power(6), 7u);
  EXPECT_EQ(next_prime_power(10), 11u);
  EXPECT_EQ(next_prime_power(26), 27u);
  EXPECT_EQ(next_prime_power(28), 29u);
}

TEST(Primes, DistinctFactors) {
  EXPECT_EQ(distinct_prime_factors(1), (std::vector<std::uint64_t>{}));
  EXPECT_EQ(distinct_prime_factors(12), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(distinct_prime_factors(97), (std::vector<std::uint64_t>{97}));
  EXPECT_EQ(distinct_prime_factors(360),
            (std::vector<std::uint64_t>{2, 3, 5}));
}

TEST(Polynomials, ArithmeticBasics) {
  using namespace gfdetail;
  const std::uint64_t p = 5;
  Poly f{1, 2};        // 1 + 2x
  Poly g{3, 0, 1};     // 3 + x^2
  Poly sum = poly_add(f, g, p);
  EXPECT_EQ(sum, (Poly{4, 2, 1}));
  Poly prod = poly_mul(f, g, p);  // (1+2x)(3+x^2) = 3 + 6x + x^2 + 2x^3
  EXPECT_EQ(prod, (Poly{3, 1, 1, 2}));
}

TEST(Polynomials, ModAndGcd) {
  using namespace gfdetail;
  const std::uint64_t p = 2;
  // x^2 + x = x(x+1) mod (x+1) should be 0.
  Poly f{0, 1, 1};
  Poly g{1, 1};  // x + 1 (monic)
  EXPECT_EQ(poly_mod(f, g, p), Poly{});
  // gcd(x^2+1, x+1) over GF(2): x^2+1 = (x+1)^2, so gcd = x+1.
  Poly a{1, 0, 1};
  Poly b{1, 1};
  EXPECT_EQ(poly_gcd(a, b, p), (Poly{1, 1}));
}

TEST(Polynomials, IrreducibilityKnownCases) {
  using namespace gfdetail;
  // x^2 + x + 1 is irreducible over GF(2); x^2 + 1 = (x+1)^2 is not.
  EXPECT_TRUE(poly_irreducible(Poly{1, 1, 1}, 2));
  EXPECT_FALSE(poly_irreducible(Poly{1, 0, 1}, 2));
  // x^2 + 1 IS irreducible over GF(3) (no root: 0,1,2 -> 1,2,2).
  EXPECT_TRUE(poly_irreducible(Poly{1, 0, 1}, 3));
  // x^3 + x + 1 irreducible over GF(2).
  EXPECT_TRUE(poly_irreducible(Poly{1, 1, 0, 1}, 2));
  // x^4 + x^2 + 1 = (x^2+x+1)^2 over GF(2): root-free but reducible —
  // exactly the case naive root-checking misses.
  EXPECT_FALSE(poly_irreducible(Poly{1, 0, 1, 0, 1}, 2));
}

TEST(FiniteField, RejectsNonPrimePower) {
  EXPECT_THROW(FiniteField(6), RequireError);
  EXPECT_THROW(FiniteField(12), RequireError);
  EXPECT_THROW(FiniteField(1), RequireError);
  EXPECT_THROW(FiniteField(0), RequireError);
}

class FieldAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FieldAxioms, AdditiveGroup) {
  FiniteField f(GetParam());
  const auto q = static_cast<std::uint32_t>(f.order());
  for (std::uint32_t a = 0; a < q; ++a) {
    EXPECT_EQ(f.add(a, f.zero()), a);
    EXPECT_EQ(f.add(a, f.neg(a)), f.zero());
    for (std::uint32_t b = 0; b < q; ++b) {
      EXPECT_EQ(f.add(a, b), f.add(b, a));
      EXPECT_EQ(f.sub(f.add(a, b), b), a);
    }
  }
}

TEST_P(FieldAxioms, MultiplicativeGroup) {
  FiniteField f(GetParam());
  const auto q = static_cast<std::uint32_t>(f.order());
  for (std::uint32_t a = 0; a < q; ++a) {
    EXPECT_EQ(f.mul(a, f.one()), a);
    EXPECT_EQ(f.mul(a, f.zero()), f.zero());
    if (a != 0) {
      EXPECT_EQ(f.mul(a, f.inv(a)), f.one()) << "a=" << a;
      EXPECT_EQ(f.div(a, a), f.one());
    }
    for (std::uint32_t b = 0; b < q; ++b)
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
  }
}

TEST_P(FieldAxioms, AssociativityAndDistributivitySampled) {
  FiniteField f(GetParam());
  const auto q = static_cast<std::uint32_t>(f.order());
  // Sample triples deterministically (full cube is too slow for q=64+).
  for (std::uint32_t i = 0; i < 200; ++i) {
    std::uint32_t a = (i * 7919u + 1) % q;
    std::uint32_t b = (i * 104729u + 3) % q;
    std::uint32_t c = (i * 1299709u + 5) % q;
    EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
  }
}

TEST_P(FieldAxioms, NoZeroDivisors) {
  FiniteField f(GetParam());
  const auto q = static_cast<std::uint32_t>(f.order());
  for (std::uint32_t a = 1; a < q; ++a)
    for (std::uint32_t b = 1; b < q; ++b)
      EXPECT_NE(f.mul(a, b), f.zero()) << "a=" << a << " b=" << b;
}

TEST_P(FieldAxioms, FrobeniusFixedField) {
  // a^q = a for all a in GF(q) (Lagrange / Frobenius iterated).
  FiniteField f(GetParam());
  const auto q = static_cast<std::uint32_t>(f.order());
  for (std::uint32_t a = 0; a < q; ++a)
    EXPECT_EQ(f.pow(a, f.order()), a);
}

INSTANTIATE_TEST_SUITE_P(PrimeAndPrimePowerOrders, FieldAxioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           25, 27, 32, 49, 64, 81));

TEST(FiniteField, CharacteristicAndDegree) {
  FiniteField f81(81);
  EXPECT_EQ(f81.characteristic(), 3u);
  EXPECT_EQ(f81.degree(), 4u);
  FiniteField f17(17);
  EXPECT_EQ(f17.characteristic(), 17u);
  EXPECT_EQ(f17.degree(), 1u);
}

TEST(FiniteField, ModulusIsIrreducibleMonic) {
  for (std::uint64_t q : {4ULL, 8ULL, 9ULL, 16ULL, 27ULL, 64ULL, 81ULL}) {
    FiniteField f(q);
    const auto& mod = f.modulus();
    EXPECT_EQ(mod.size(), f.degree() + 1);
    EXPECT_EQ(mod.back(), 1u);
    EXPECT_TRUE(gfdetail::poly_irreducible(mod, f.characteristic()));
  }
}

TEST(FiniteField, LargeOrderWithoutTable) {
  // 5041 = 71^2 < 2^20 but above the table limit: exercises mul_slow.
  FiniteField f(5041);
  EXPECT_EQ(f.characteristic(), 71u);
  EXPECT_EQ(f.degree(), 2u);
  for (std::uint32_t a = 1; a < 100; ++a)
    EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
}

}  // namespace
}  // namespace osp
