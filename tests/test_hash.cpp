// Tests for the hash families used by distributed randPr.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hash/universal_hash.hpp"
#include "stats/summary.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

double uniform_cdf(double x, double) {
  if (x < 0) return 0;
  if (x > 1) return 1;
  return x;
}

TEST(HashToUnit, RangeAndResolution) {
  EXPECT_DOUBLE_EQ(hash_to_unit(0), 0.0);
  EXPECT_LT(hash_to_unit(~0ULL), 1.0);
  EXPECT_GT(hash_to_unit(~0ULL), 0.999999);
}

TEST(MultiplyShift, Deterministic) {
  Rng r1(1), r2(1);
  MultiplyShiftHash h1(r1), h2(r2);
  for (std::uint64_t k = 0; k < 100; ++k)
    EXPECT_EQ(h1.hash(k), h2.hash(k));
}

TEST(MultiplyShift, UnitUniformity) {
  Rng rng(2);
  MultiplyShiftHash h(rng);
  std::vector<double> xs;
  for (std::uint64_t k = 0; k < 20000; ++k) xs.push_back(h.unit(k));
  EXPECT_LT(ks_distance(std::move(xs), uniform_cdf, 0), 0.03);
}

TEST(Polynomial, IndependenceDegreeRespected) {
  Rng rng(3);
  PolynomialHash h(5, rng);
  EXPECT_EQ(h.independence(), 5u);
  EXPECT_THROW(PolynomialHash(1, rng), RequireError);
}

TEST(Polynomial, OutputBelowPrime) {
  Rng rng(4);
  PolynomialHash h(3, rng);
  for (std::uint64_t k = 0; k < 10000; ++k)
    EXPECT_LT(h.hash(k), PolynomialHash::kPrime);
}

TEST(Polynomial, UnitUniformity) {
  Rng rng(5);
  PolynomialHash h(4, rng);
  std::vector<double> xs;
  for (std::uint64_t k = 0; k < 20000; ++k) xs.push_back(h.unit(k));
  EXPECT_LT(ks_distance(std::move(xs), uniform_cdf, 0), 0.03);
}

TEST(Polynomial, PairwiseCollisionRate) {
  // For a k-independent family the collision probability of two keys when
  // bucketed into B bins is ~1/B.
  Rng rng(6);
  PolynomialHash h(2, rng);
  const std::uint64_t bins = 1024;
  std::size_t collisions = 0;
  const std::size_t pairs = 20000;
  for (std::size_t i = 0; i < pairs; ++i) {
    std::uint64_t a = 2 * i, b = 2 * i + 1;
    if (h.hash(a) % bins == h.hash(b) % bins) ++collisions;
  }
  double rate = static_cast<double>(collisions) / pairs;
  EXPECT_LT(rate, 3.0 / bins + 0.003);
}

TEST(Polynomial, DifferentSeedsDisagree) {
  Rng r1(7), r2(8);
  PolynomialHash h1(3, r1), h2(3, r2);
  std::size_t same = 0;
  for (std::uint64_t k = 0; k < 1000; ++k)
    if (h1.hash(k) == h2.hash(k)) ++same;
  EXPECT_LT(same, 5u);
}

TEST(Tabulation, Deterministic) {
  Rng r1(9), r2(9);
  TabulationHash h1(r1), h2(r2);
  for (std::uint64_t k = 0; k < 100; ++k)
    EXPECT_EQ(h1.hash(k ^ 0xdeadbeefULL), h2.hash(k ^ 0xdeadbeefULL));
}

TEST(Tabulation, UnitUniformity) {
  Rng rng(10);
  TabulationHash h(rng);
  std::vector<double> xs;
  for (std::uint64_t k = 0; k < 20000; ++k) xs.push_back(h.unit(k));
  EXPECT_LT(ks_distance(std::move(xs), uniform_cdf, 0), 0.03);
}

TEST(Tabulation, AvalancheOnLowBits) {
  // Flipping one input bit should flip about half the output bits.
  Rng rng(11);
  TabulationHash h(rng);
  double total_flips = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    std::uint64_t k = rng();
    std::uint64_t d = h.hash(k) ^ h.hash(k ^ 1ULL);
    total_flips += __builtin_popcountll(d);
  }
  EXPECT_NEAR(total_flips / trials, 32.0, 3.0);
}

TEST(AllFamilies, FewDuplicateUnitValues) {
  Rng rng(12);
  PolynomialHash poly(3, rng);
  TabulationHash tab(rng);
  std::set<double> sp, st;
  for (std::uint64_t k = 0; k < 5000; ++k) {
    sp.insert(poly.unit(k));
    st.insert(tab.unit(k));
  }
  EXPECT_GT(sp.size(), 4995u);
  EXPECT_GT(st.size(), 4995u);
}

}  // namespace
}  // namespace osp
