// Unit tests for stats: RunningStat, SampleSet, KS distance, Table.
#include <gtest/gtest.h>

#include <sstream>

#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, Basic) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleObservation) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(3);
  RunningStat whole, a, b;
  for (int i = 0; i < 500; ++i) {
    double x = rng.uniform() * 10;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStat, Ci95Shrinks) {
  Rng rng(5);
  RunningStat small, large;
  for (int i = 0; i < 30; ++i) small.add(rng.uniform());
  for (int i = 0; i < 3000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
}

TEST(SampleSet, EmptyQuantileThrows) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), RequireError);
}

TEST(SampleSet, MeanStddev) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-12);
}

double uniform_cdf(double x, double) {
  if (x < 0) return 0;
  if (x > 1) return 1;
  return x;
}

TEST(KsDistance, UniformSamplesSmall) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform());
  // KS statistic for a correct distribution is ~ 1/sqrt(n).
  EXPECT_LT(ks_distance(std::move(xs), uniform_cdf, 0.0), 0.02);
}

TEST(KsDistance, WrongDistributionLarge) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform() * rng.uniform());
  // Product of uniforms is far from uniform.
  EXPECT_GT(ks_distance(std::move(xs), uniform_cdf, 0.0), 0.1);
}

TEST(Table, AlignmentAndContent) {
  Table t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), RequireError);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), RequireError);
}

TEST(Fmt, TrimsTrailingZeros) {
  EXPECT_EQ(fmt(1.5, 3), "1.5");
  EXPECT_EQ(fmt(2.0, 3), "2");
  EXPECT_EQ(fmt(0.125, 3), "0.125");
  EXPECT_EQ(fmt(1.0 / 3.0, 4), "0.3333");
}

TEST(Fmt, Integers) {
  EXPECT_EQ(fmt(42), "42");
  EXPECT_EQ(fmt(std::size_t{7}), "7");
  EXPECT_EQ(fmt(std::int64_t{-3}), "-3");
}

TEST(Fmt, Ratio) { EXPECT_EQ(fmt_ratio(2.5), "2.5x"); }

}  // namespace
}  // namespace osp
