// Tests for the Dinic max-flow substrate.
#include <gtest/gtest.h>

#include "algos/flow.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(Flow, SingleEdge) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
}

TEST(Flow, SeriesTakesMinimum) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 5);
  net.add_edge(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(Flow, ParallelAdds) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 2);
  net.add_edge(0, 1, 3);
  EXPECT_EQ(net.max_flow(0, 1), 5);
}

TEST(Flow, DisconnectedIsZero) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 7);
  net.add_edge(2, 3, 7);
  EXPECT_EQ(net.max_flow(0, 3), 0);
}

TEST(Flow, ClassicTextbookNetwork) {
  // CLRS-style example with known max flow 23.
  FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_EQ(net.max_flow(0, 5), 23);
}

TEST(Flow, RequiresAugmentingPathThroughReverseEdge) {
  // The classic case where a naive greedy path choice must be undone.
  FlowNetwork net(4);
  net.add_edge(0, 1, 1);
  net.add_edge(0, 2, 1);
  net.add_edge(1, 2, 1);
  net.add_edge(1, 3, 1);
  net.add_edge(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
}

TEST(Flow, FlowOnTracksPerEdge) {
  FlowNetwork net(3);
  std::size_t e01 = net.add_edge(0, 1, 4);
  std::size_t e12 = net.add_edge(1, 2, 2);
  EXPECT_EQ(net.max_flow(0, 2), 2);
  EXPECT_EQ(net.flow_on(e01), 2);
  EXPECT_EQ(net.flow_on(e12), 2);
}

TEST(Flow, BipartiteMatching) {
  // 3x3 bipartite with a perfect matching.
  FlowNetwork net(8);  // 0 src, 1-3 left, 4-6 right, 7 sink
  for (std::size_t l = 1; l <= 3; ++l) net.add_edge(0, l, 1);
  for (std::size_t r = 4; r <= 6; ++r) net.add_edge(r, 7, 1);
  net.add_edge(1, 4, 1);
  net.add_edge(1, 5, 1);
  net.add_edge(2, 5, 1);
  net.add_edge(3, 6, 1);
  EXPECT_EQ(net.max_flow(0, 7), 3);
}

TEST(Flow, BipartiteWithBottleneck) {
  // Both left nodes only reach the same right node: matching is 1.
  FlowNetwork net(6);  // 0 src, 1-2 left, 3 right, 5 sink
  net.add_edge(0, 1, 1);
  net.add_edge(0, 2, 1);
  net.add_edge(1, 3, 1);
  net.add_edge(2, 3, 1);
  net.add_edge(3, 5, 1);
  EXPECT_EQ(net.max_flow(0, 5), 1);
}

TEST(Flow, ValidatesArguments) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 5, 1), RequireError);
  EXPECT_THROW(net.add_edge(0, 1, -1), RequireError);
  EXPECT_THROW(net.max_flow(0, 0), RequireError);
  EXPECT_THROW(net.max_flow(0, 9), RequireError);
}

TEST(Flow, RandomMatchesFordFulkersonInvariant) {
  // On random DAG-ish networks, check flow conservation at every
  // intermediate node by summing per-edge flows.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 8;
    FlowNetwork net(n);
    struct E {
      std::size_t u, v, id;
    };
    std::vector<E> edges;
    for (std::size_t u = 0; u < n; ++u)
      for (std::size_t v = u + 1; v < n; ++v)
        if (rng.chance(0.5)) {
          std::size_t id = net.add_edge(u, v, rng.range(1, 6));
          edges.push_back({u, v, id});
        }
    std::int64_t total = net.max_flow(0, n - 1);
    EXPECT_GE(total, 0);
    std::vector<std::int64_t> balance(n, 0);
    for (const E& e : edges) {
      std::int64_t f = net.flow_on(e.id);
      EXPECT_GE(f, 0);
      balance[e.u] -= f;
      balance[e.v] += f;
    }
    EXPECT_EQ(balance[0], -total);
    EXPECT_EQ(balance[n - 1], total);
    for (std::size_t v = 1; v + 1 < n; ++v) EXPECT_EQ(balance[v], 0);
  }
}

}  // namespace
}  // namespace osp
