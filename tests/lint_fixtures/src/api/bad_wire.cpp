// Known-bad fixture: unsanctioned float formatting in the wire layer.
// "%f" truncates, "%.10g" loses bits, and stream manipulators depend on
// locale/state — any of them breaks the byte-identity guarantee the
// sharded merge and the JsonSink artifacts are proven against.
//
// osp-lint-expect: wire-float-format
// osp-lint-expect: wire-float-format
// osp-lint-expect: wire-float-format
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace osp::api {

void emit_cell(char* buf, std::size_t cap, double v) {
  std::snprintf(buf, cap, "%f", v);     // wire-float-format: %f
  std::snprintf(buf, cap, "%.10g", v);  // wire-float-format: %.10g
}

std::string emit_stream(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;  // wire-float-format: manipulator
  return os.str();
}

// The sanctioned forms must NOT fire.
void emit_sanctioned(char* buf, std::size_t cap, double v) {
  std::snprintf(buf, cap, "%a", v);
  std::snprintf(buf, cap, "%.17g", v);
  std::snprintf(buf, cap, "%04x", static_cast<unsigned>(cap));
}

}  // namespace osp::api
