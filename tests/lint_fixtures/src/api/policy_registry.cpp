// Fixture registry: calls a force-link anchor no translation unit
// defines (a "stale anchor" — the registrar file it pointed at was
// deleted or renamed, so the registry would still link but the chain is
// dead).  Also the call target for the well-formed clean registrar
// fixture, which must NOT fire.
//
// osp-lint-expect: registrar-anchor
namespace osp::api {

void link_clean_policies();
void link_stale_policies();

struct PolicyRegistry {};

PolicyRegistry& policies() {
  link_clean_policies();
  link_stale_policies();  // registrar-anchor: defined nowhere
  static PolicyRegistry registry;
  return registry;
}

}  // namespace osp::api
