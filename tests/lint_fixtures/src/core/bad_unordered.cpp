// Known-bad fixture: hash-order iteration in a decision path.  The
// winner depends on std::unordered_map's bucket order, which varies by
// libstdc++ version and hash seed — exactly the nondeterminism the
// worker-count-invariance proofs cannot survive.
//
// osp-lint-expect: unordered-iteration
// osp-lint-expect: unordered-iteration
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

namespace osp {

std::size_t pick_heaviest(const std::unordered_map<int, double>& weight) {
  std::size_t best = 0;
  double best_w = -1.0;
  for (const auto& entry : weight) {  // unordered-iteration: range-for
    if (entry.second > best_w) {
      best_w = entry.second;
      best = static_cast<std::size_t>(entry.first);
    }
  }
  return best;
}

int first_member(const std::unordered_set<int>& live) {
  // unordered-iteration: iterator walk ("first" is bucket order, not id)
  return live.empty() ? -1 : *live.begin();
}

// Membership tests without iteration are fine and must not fire.
bool contains(const std::unordered_set<int>& live, int id) {
  return live.count(id) > 0;
}

}  // namespace osp
