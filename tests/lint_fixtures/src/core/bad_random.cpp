// Known-bad fixture: raw randomness and wall-clock reads in a decision
// path.  Every call below would make a trial's outcome depend on process
// state instead of the grid-coordinate seed.
//
// osp-lint-expect: raw-random
// osp-lint-expect: raw-random
// osp-lint-expect: raw-random
// osp-lint-expect: raw-random
// osp-lint-expect: raw-random
#include <cstdlib>
#include <ctime>
#include <random>

namespace osp {

int pick_candidate(int n) {
  std::srand(42);                        // raw-random: srand()
  int r = std::rand() % n;               // raw-random: rand()
  std::random_device entropy;            // raw-random: random_device
  r ^= static_cast<int>(entropy());
  r ^= static_cast<int>(std::time(nullptr));  // raw-random: time()
  r ^= static_cast<int>(clock());        // raw-random: clock()
  return r % n;
}

// A comment mentioning rand() and a string "rand()" must NOT fire; the
// stripped views keep rules blind to documentation.
const char* describe() { return "uses rand() nowhere, honest"; }

}  // namespace osp
