// Clean fixture header: opens with #pragma once after this comment
// block, resolvable includes only, namespace-qualified names — zero
// findings expected.
#pragma once

#include <cstddef>

#include "core/bad_header.hpp"  // resolves (fixtures are real files)

namespace osp {

inline std::size_t clamp_index(std::size_t i, std::size_t n) {
  return i < n ? i : n - 1;
}

}  // namespace osp
