// Known-bad fixture: a public header with no include guard, a
// namespace dump into every includer, and a stale include path.
//
// osp-lint-expect: header-hygiene
// osp-lint-expect: header-hygiene
// osp-lint-expect: header-hygiene
#include "core/no_such_file.hpp"  // header-hygiene: stale path
#include <vector>

using namespace std;  // header-hygiene: namespace dump

namespace osp {

inline vector<int> empty_frames() { return {}; }  // (and no #pragma once)

}  // namespace osp
