// Known-bad fixture: suppressions without accountability.  A bare
// tidy-suppression marker (no check name, no reason) and a
// justification-free osp-lint waiver are both findings — the baseline
// contract is that every suppression names what it silences and why.
// (The marker token is spelled out only on the offending lines below:
// clang-tidy honors it anywhere in a comment, so even prose mentioning
// it would act as a real suppression.)
//
// osp-lint-expect: nolint-justification
// osp-lint-expect: nolint-justification
#include <cstdint>

namespace osp {

inline std::uint32_t fold(std::uint64_t x) {
  std::uint32_t lo = static_cast<std::uint32_t>(x);  // NOLINT
  // osp-lint: allow(raw-random)
  std::uint32_t hi = static_cast<std::uint32_t>(x >> 32);
  return lo ^ hi;
}

// A properly justified suppression must NOT fire:
// NOLINT(bugprone-example-check) -- fixture shows the accepted form.

}  // namespace osp
