// Known-bad fixture: asserts whose arguments mutate state.  An NDEBUG
// build compiles the whole argument out — the pop never happens, the
// counter never advances — so the "checked" build and the release build
// run different programs.
//
// osp-lint-expect: assert-side-effect
// osp-lint-expect: assert-side-effect
#include <cassert>
#include <vector>

namespace osp {

int drain(std::vector<int>& queue, int budget) {
  int taken = 0;
  assert(++taken <= budget);  // assert-side-effect: increment
  while (!queue.empty() && taken < budget) {
    // assert-side-effect: the pop_back IS the work
    assert((queue.pop_back(), true));
    ++taken;
  }
  return taken;
}

// Pure predicates (comparisons, const calls, static_assert) must NOT
// fire.
void check(const std::vector<int>& queue, int budget) {
  static_assert(sizeof(int) >= 2, "int too small");
  assert(static_cast<int>(queue.size()) <= budget);
  assert(budget >= 0 && budget != 3);
}

}  // namespace osp
