// Clean fixture: idiomatic code adjacent to every rule's pattern space
// that must produce zero findings — the linter's false-positive guard.
#include <cassert>
#include <cstdint>
#include <map>
#include <vector>

#include "core/clean.hpp"

namespace osp {

// "rand" as a substring (operand, strand) and in strings/comments: the
// raw-random rule must stay quiet.  srand() documented here, not called.
int operand_sum(const std::vector<int>& operands) {
  int sum = 0;
  for (int v : operands) sum += v;
  return sum;
}

const char* strand_name() { return "rand() and time() spelled in text"; }

// Ordered-map iteration in core is deterministic and fine.
int heaviest(const std::map<int, int>& weight) {
  int best = -1, best_w = -1;
  for (const auto& entry : weight)
    if (entry.second > best_w) {
      best_w = entry.second;
      best = entry.first;
    }
  return best;
}

// A justified waiver suppresses the finding (and the selftest would
// flag the suppressed rule as unexercised if this were the only rand).
std::uint32_t seed_for_tests() {
  // osp-lint: allow(raw-random) fixture demonstrating the waiver form
  return static_cast<std::uint32_t>(std::rand());
}

// Pure-predicate asserts and modulo arithmetic near '%' conversions.
int checked_mod(int a, int b) {
  assert(b > 0);
  return a % b;
}

}  // namespace osp
