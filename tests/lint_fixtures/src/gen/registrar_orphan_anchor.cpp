// Known-bad fixture: the anchor exists but no *_registry.cpp calls it,
// so the force-link chain is broken at the registry end — same silent
// drop as having no anchor at all, one step removed.
//
// osp-lint-expect: registrar-anchor
namespace osp::api {

struct RankerInfo {
  const char* name;
};

struct RankerRegistrar {
  explicit RankerRegistrar(RankerInfo info);
};

void link_orphan_rankers() {}

namespace {

RankerRegistrar r_orphan{{"orphan"}};  // registrar-anchor: anchor uncalled

}  // namespace

}  // namespace osp::api
