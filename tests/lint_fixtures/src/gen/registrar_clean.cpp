// Clean registrar fixture: statics + anchor + the fixture registry
// calls it.  Must produce no findings — proves the cross-file rule does
// not fire on the well-formed pattern the real tree uses.
namespace osp::api {

struct PolicyInfo {
  const char* name;
};

struct PolicyRegistrar {
  explicit PolicyRegistrar(PolicyInfo info);
};

void link_clean_policies() {}

namespace {

PolicyRegistrar r_clean{{"clean:policy"}};

}  // namespace

}  // namespace osp::api
