// Known-bad fixture: a translation unit with registrar statics but no
// force-link anchor.  Linked from a static archive, nothing references
// this object file, the linker drops it, and the policy silently
// vanishes from the registry.
//
// osp-lint-expect: registrar-anchor
namespace osp::api {

struct PolicyInfo {
  const char* name;
};

struct PolicyRegistrar {
  explicit PolicyRegistrar(PolicyInfo info);
};

namespace {

PolicyRegistrar r_dropped{{"gone:policy"}};  // registrar-anchor: no anchor

}  // namespace

}  // namespace osp::api
