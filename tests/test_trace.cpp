// Tests for trace-driven schedules.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "gen/trace.hpp"
#include "gen/traffic.hpp"
#include "gen/video.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

bool same_schedule(const FrameSchedule& a, const FrameSchedule& b) {
  if (a.frames.size() != b.frames.size()) return false;
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    if (a.frames[i].weight != b.frames[i].weight) return false;
    if (a.frames[i].packet_slots != b.frames[i].packet_slots) return false;
  }
  return true;
}

TEST(Trace, RoundTripTiny) {
  FrameSchedule sched;
  sched.frames.push_back({2.5, {0, 3, 4}});
  sched.frames.push_back({1.0, {1}});
  sched.horizon = 5;
  std::stringstream ss;
  write_trace(ss, sched);
  FrameSchedule back = read_trace(ss);
  EXPECT_TRUE(same_schedule(sched, back));
  EXPECT_EQ(back.horizon, 5u);
}

TEST(Trace, RoundTripVideoWorkload) {
  Rng rng(1);
  VideoParams params;
  params.num_streams = 5;
  params.frames_per_stream = 10;
  VideoWorkload vw = make_video_workload(params, rng);
  std::stringstream ss;
  write_trace(ss, vw.schedule);
  FrameSchedule back = read_trace(ss);
  EXPECT_TRUE(same_schedule(vw.schedule, back));
}

TEST(Trace, RoundTripBurstySchedule) {
  Rng rng(2);
  PoissonBursts bursts(2.0);
  FrameSchedule sched = bursty_schedule(bursts, 40, 3, rng);
  std::stringstream ss;
  write_trace(ss, sched);
  EXPECT_TRUE(same_schedule(sched, read_trace(ss)));
}

TEST(Trace, HorizonInferredFromSlots) {
  std::stringstream ss("osp-trace v1\nframes 1\n1.0 2 7\n");
  FrameSchedule sched = read_trace(ss);
  EXPECT_EQ(sched.horizon, 8u);
}

TEST(Trace, CommentsIgnored) {
  std::stringstream ss(R"(# recorded at router X
osp-trace v1
frames 2
4.0 0 1 2   # an I frame
1.0 1       # a P frame
)");
  FrameSchedule sched = read_trace(ss);
  EXPECT_EQ(sched.frames.size(), 2u);
  EXPECT_DOUBLE_EQ(sched.frames[0].weight, 4.0);
}

TEST(Trace, RejectsBadHeader) {
  std::stringstream ss("osp-trace v2\nframes 0\n");
  EXPECT_THROW(read_trace(ss), RequireError);
}

TEST(Trace, RejectsEmptyFrame) {
  std::stringstream ss("osp-trace v1\nframes 1\n1.0\n");
  EXPECT_THROW(read_trace(ss), RequireError);
}

TEST(Trace, RejectsUnsortedSlots) {
  std::stringstream ss("osp-trace v1\nframes 1\n1.0 5 2\n");
  EXPECT_THROW(read_trace(ss), RequireError);
}

TEST(Trace, RejectsDuplicateSlots) {
  std::stringstream ss("osp-trace v1\nframes 1\n1.0 2 2\n");
  EXPECT_THROW(read_trace(ss), RequireError);
}

TEST(Trace, RejectsTruncated) {
  std::stringstream ss("osp-trace v1\nframes 3\n1.0 0\n");
  EXPECT_THROW(read_trace(ss), RequireError);
}

TEST(Trace, FileRoundTrip) {
  Rng rng(3);
  PoissonBursts bursts(1.5);
  FrameSchedule sched = bursty_schedule(bursts, 20, 2, rng);
  std::string path = "/tmp/osp_trace_test.txt";
  save_trace(path, sched);
  EXPECT_TRUE(same_schedule(sched, load_trace(path)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace osp
