// Tests for the online fractional packing comparator.
#include <gtest/gtest.h>

#include "algos/fractional.hpp"
#include "algos/offline.hpp"
#include "gen/random_instances.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(Fractional, NoContentionKeepsEverything) {
  InstanceBuilder b;
  b.add_sets(3, 2.0);
  for (SetId s = 0; s < 3; ++s) b.add_element({s});
  Instance inst = b.build();
  FractionalOutcome out = fractional_online(inst);
  EXPECT_DOUBLE_EQ(out.value, 6.0);
  EXPECT_EQ(out.scaled_rows, 0u);
  for (double v : out.x) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Fractional, SingleContestedElementSplitsEvenly) {
  InstanceBuilder b;
  b.add_sets(4);
  b.add_element({0, 1, 2, 3});
  Instance inst = b.build();
  FractionalOutcome out = fractional_online(inst);
  EXPECT_NEAR(out.value, 1.0, 1e-12);  // 4 * 1/4
  for (double v : out.x) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(Fractional, RespectsCapacity) {
  InstanceBuilder b;
  b.add_sets(4);
  b.add_element({0, 1, 2, 3}, 2);
  Instance inst = b.build();
  FractionalOutcome out = fractional_online(inst);
  EXPECT_NEAR(out.value, 2.0, 1e-12);
  EXPECT_TRUE(fractional_feasible(inst, out.x));
}

TEST(Fractional, AlwaysFeasibleOnRandomInstances) {
  Rng master(1);
  for (int trial = 0; trial < 20; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_capacity_instance(
        25, 25, 3, 3, WeightModel::uniform(1, 6), gen);
    FractionalOutcome out = fractional_online(inst);
    EXPECT_TRUE(fractional_feasible(inst, out.x)) << inst.describe();
  }
}

TEST(Fractional, SandwichedBetweenIntegralOptAndLp) {
  // On most instances fractional-online lands between the integral
  // optimum scaled down and the LP bound; at minimum it must never
  // exceed the LP optimum.
  Rng master(2);
  for (int trial = 0; trial < 12; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_instance(14, 18, 3, WeightModel::unit(), gen);
    FractionalOutcome frac = fractional_online(inst);
    double lp = lp_upper_bound(inst);
    EXPECT_LE(frac.value, lp + 1e-7) << inst.describe();
    EXPECT_GE(frac.value, 0.0);
  }
}

TEST(Fractional, MonotoneDecreaseOnly) {
  // Once an element forces x down, later elements can only push lower:
  // replaying a prefix gives x >= the full run's x, coordinate-wise.
  Rng gen(3);
  Instance full = random_instance(15, 20, 3, WeightModel::unit(), gen);
  FractionalOutcome whole = fractional_online(full);

  InstanceBuilder b;
  for (SetId s = 0; s < full.num_sets(); ++s) b.add_set(full.weight(s));
  for (ElementId u = 0; u + 5 < full.num_elements(); ++u)
    b.add_element(full.arrival(u).parents, full.arrival(u).capacity);
  Instance prefix = b.build();
  FractionalOutcome part = fractional_online(prefix);
  for (SetId s = 0; s < full.num_sets(); ++s)
    EXPECT_GE(part.x[s] + 1e-12, whole.x[s]);
}

TEST(Fractional, BeatsIntegralOnlineOnHardInstances) {
  // On the σ-clique (one element shared by all sets, then singleton
  // completions), integral online gets 1 set while fractional keeps
  // 1/m of each — equal value here, but the fractional value can never
  // be smaller than 1 set when weights are uniform.
  InstanceBuilder b;
  const std::size_t m = 8;
  b.add_sets(m);
  std::vector<SetId> all;
  for (SetId s = 0; s < m; ++s) all.push_back(s);
  b.add_element(all);
  for (SetId s = 0; s < m; ++s) b.add_element({s});
  Instance inst = b.build();
  FractionalOutcome out = fractional_online(inst);
  EXPECT_NEAR(out.value, 1.0, 1e-9);
}

}  // namespace
}  // namespace osp
