// Tests for the indexed priority structures behind the buffered router:
// the position-indexed d-ary heap (pop order, erase, decrease-/increase-
// key) and the double-ended PacketQueue with lazy dead-frame deletion,
// fuzzed against a naive sorted-vector reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/queue.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// A max-heap over ids keyed by an external double array.
struct KeyedHigher {
  const std::vector<double>* keys;
  bool operator()(std::uint32_t a, std::uint32_t b) const {
    if ((*keys)[a] != (*keys)[b]) return (*keys)[a] > (*keys)[b];
    return a < b;  // total order, deterministic pops
  }
};

TEST(IndexedDaryHeap, PopsInSortedOrder) {
  Rng rng(1);
  std::vector<double> keys(200);
  for (double& k : keys) k = rng.uniform();
  IndexedDaryHeap<KeyedHigher> heap{KeyedHigher{&keys}};
  for (std::uint32_t id = 0; id < keys.size(); ++id) heap.push(id);

  std::vector<std::uint32_t> order(keys.size());
  for (std::uint32_t& id : order) id = 0;
  std::vector<std::uint32_t> expected(keys.size());
  for (std::uint32_t id = 0; id < keys.size(); ++id) expected[id] = id;
  std::sort(expected.begin(), expected.end(), KeyedHigher{&keys});

  for (std::size_t i = 0; i < keys.size(); ++i) order[i] = heap.pop();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(order, expected);
}

TEST(IndexedDaryHeap, EraseRemovesExactlyTheEntry) {
  std::vector<double> keys{5, 1, 4, 2, 3, 0.5, 6};
  IndexedDaryHeap<KeyedHigher> heap{KeyedHigher{&keys}};
  for (std::uint32_t id = 0; id < keys.size(); ++id) heap.push(id);
  heap.erase(6);  // the current top
  heap.erase(3);  // an interior entry
  EXPECT_FALSE(heap.contains(6));
  EXPECT_FALSE(heap.contains(3));
  EXPECT_EQ(heap.size(), 5u);
  std::vector<std::uint32_t> order;
  while (!heap.empty()) order.push_back(heap.pop());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 4, 1, 5}));
}

TEST(IndexedDaryHeap, UpdateHandlesBothKeyDirections) {
  std::vector<double> keys{5, 1, 4, 2, 3};
  IndexedDaryHeap<KeyedHigher> heap{KeyedHigher{&keys}};
  for (std::uint32_t id = 0; id < keys.size(); ++id) heap.push(id);

  keys[1] = 10;  // increase-key: 1 must surface
  heap.update(1);
  EXPECT_EQ(heap.top(), 1u);

  keys[1] = 0.25;  // decrease-key: 1 must sink to the bottom
  heap.update(1);
  std::vector<std::uint32_t> order;
  while (!heap.empty()) order.push_back(heap.pop());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 4, 3, 1}));
}

TEST(IndexedDaryHeap, RejectsDuplicateAndAbsentIds) {
  std::vector<double> keys{1, 2};
  IndexedDaryHeap<KeyedHigher> heap{KeyedHigher{&keys}};
  heap.push(0);
  EXPECT_THROW(heap.push(0), RequireError);
  EXPECT_THROW(heap.erase(1), RequireError);
  EXPECT_THROW(heap.update(1), RequireError);
}

TEST(IndexedDaryHeap, RandomizedAgainstSortReference) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + rng.below(300);
    std::vector<double> keys(n);
    for (double& k : keys)
      k = rng.chance(0.3) ? 1.0 : rng.uniform();  // force ties
    IndexedDaryHeap<KeyedHigher> heap{KeyedHigher{&keys}};
    std::vector<std::uint32_t> alive;
    for (std::uint32_t id = 0; id < n; ++id) {
      heap.push(id);
      alive.push_back(id);
    }
    // Random erases and key updates.
    for (int op = 0; op < 40 && !alive.empty(); ++op) {
      std::size_t pick = rng.below(alive.size());
      if (rng.chance(0.5)) {
        heap.erase(alive[pick]);
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        keys[alive[pick]] = rng.uniform() * 2;
        heap.update(alive[pick]);
      }
    }
    std::sort(alive.begin(), alive.end(), KeyedHigher{&keys});
    std::vector<std::uint32_t> order;
    while (!heap.empty()) order.push_back(heap.pop());
    EXPECT_EQ(order, alive) << "round " << round;
  }
}

// ---------------------------------------------------------------------
// PacketQueue.

TEST(PacketQueue, ServesByRankThenFifoAndEvictsTheReverse) {
  PacketQueue q;
  q.reset(4);
  q.push(0, 1.0, 0);
  q.push(1, 3.0, 1);
  q.push(2, 1.0, 2);
  q.push(3, 2.0, 3);
  EXPECT_EQ(q.live_size(), 4u);

  SetId f;
  std::uint64_t s;
  ASSERT_TRUE(q.pop_best(&f, &s));
  EXPECT_EQ(f, 1u);  // highest rank
  ASSERT_TRUE(q.pop_worst(&f, &s));
  EXPECT_EQ(f, 2u);  // lowest rank, later arrival loses the tie
  EXPECT_EQ(s, 2u);
  ASSERT_TRUE(q.pop_best(&f, &s));
  EXPECT_EQ(f, 3u);
  ASSERT_TRUE(q.pop_best(&f, &s));
  EXPECT_EQ(f, 0u);
  EXPECT_FALSE(q.pop_best(&f));
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(PacketQueue, KillFrameLazilyDeletesItsPackets) {
  PacketQueue q;
  q.reset(3);
  q.push(0, 5.0, 0);
  q.push(1, 4.0, 1);
  q.push(0, 5.0, 2);
  q.push(2, 3.0, 3);
  EXPECT_EQ(q.live_of(0), 2u);

  // O(1) kill: both packets of frame 0 are written off immediately...
  EXPECT_EQ(q.kill_frame(0), 2u);
  EXPECT_TRUE(q.is_dead(0));
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_EQ(q.live_of(0), 0u);
  EXPECT_EQ(q.kill_frame(0), 0u);  // idempotent

  // ...and the pops never surface them.
  SetId f;
  ASSERT_TRUE(q.pop_best(&f));
  EXPECT_EQ(f, 1u);
  ASSERT_TRUE(q.pop_best(&f));
  EXPECT_EQ(f, 2u);
  EXPECT_FALSE(q.pop_best(&f));
}

TEST(PacketQueue, PushingToADeadFrameIsBornStale) {
  PacketQueue q;
  q.reset(2);
  q.kill_frame(0);
  q.push(0, 1.0, 0);
  q.push(1, 0.5, 1);
  EXPECT_EQ(q.live_size(), 1u);
  SetId f;
  ASSERT_TRUE(q.pop_worst(&f));
  EXPECT_EQ(f, 1u);  // the dead packet is skipped even on the evict side
  EXPECT_FALSE(q.pop_worst(&f));
}

TEST(PacketQueue, UpdateRankRekeysBothEnds) {
  PacketQueue q;
  q.reset(3);
  q.push(0, 1.0, 0);
  std::uint32_t h = q.push(1, 2.0, 1);
  q.push(2, 3.0, 2);
  q.update_rank(h, 10.0);  // increase-key
  SetId f;
  ASSERT_TRUE(q.pop_best(&f));
  EXPECT_EQ(f, 1u);
  h = q.push(1, 5.0, 3);
  q.update_rank(h, 0.5);  // decrease-key
  ASSERT_TRUE(q.pop_worst(&f));
  EXPECT_EQ(f, 1u);
}

TEST(PacketQueue, ResetReusesStorageAndClearsDeadness) {
  PacketQueue q;
  q.reset(2);
  q.push(0, 1.0, 0);
  q.kill_frame(0);
  q.reset(2);
  EXPECT_FALSE(q.is_dead(0));
  EXPECT_EQ(q.live_size(), 0u);
  q.push(0, 1.0, 0);
  SetId f;
  ASSERT_TRUE(q.pop_best(&f));
  EXPECT_EQ(f, 0u);
}

// Naive reference: a vector re-scanned per operation.
struct NaivePacket {
  SetId frame;
  double rank;
  std::uint64_t seq;
};

TEST(PacketQueue, FuzzAgainstNaiveReference) {
  Rng rng(0xfeed);
  for (int round = 0; round < 30; ++round) {
    const std::size_t num_frames = 2 + rng.below(12);
    PacketQueue q;
    q.reset(num_frames);
    std::vector<NaivePacket> naive;
    std::vector<bool> dead(num_frames, false);
    std::uint64_t seq = 0;

    auto naive_best = [&]() {
      std::size_t best = naive.size();
      for (std::size_t i = 0; i < naive.size(); ++i) {
        if (dead[naive[i].frame]) continue;
        if (best == naive.size() || naive[i].rank > naive[best].rank ||
            (naive[i].rank == naive[best].rank &&
             naive[i].seq < naive[best].seq))
          best = i;
      }
      return best;
    };
    auto naive_worst = [&]() {
      std::size_t worst = naive.size();
      for (std::size_t i = 0; i < naive.size(); ++i) {
        if (dead[naive[i].frame]) continue;
        if (worst == naive.size() || naive[i].rank < naive[worst].rank ||
            (naive[i].rank == naive[worst].rank &&
             naive[i].seq > naive[worst].seq))
          worst = i;
      }
      return worst;
    };

    for (int op = 0; op < 400; ++op) {
      const double which = rng.uniform();
      if (which < 0.5) {
        const SetId f = static_cast<SetId>(rng.below(num_frames));
        // Ties are common on purpose: rank is frame-determined.
        const double rank = static_cast<double>(f % 3);
        q.push(f, rank, seq);
        if (!dead[f]) naive.push_back(NaivePacket{f, rank, seq});
        ++seq;
      } else if (which < 0.7) {
        SetId f;
        std::uint64_t s;
        const std::size_t i = naive_best();
        if (i == naive.size()) {
          EXPECT_FALSE(q.pop_best(&f, &s));
        } else {
          ASSERT_TRUE(q.pop_best(&f, &s));
          EXPECT_EQ(f, naive[i].frame);
          EXPECT_EQ(s, naive[i].seq);
          naive.erase(naive.begin() + static_cast<std::ptrdiff_t>(i));
        }
      } else if (which < 0.9) {
        SetId f;
        std::uint64_t s;
        const std::size_t i = naive_worst();
        if (i == naive.size()) {
          EXPECT_FALSE(q.pop_worst(&f, &s));
        } else {
          ASSERT_TRUE(q.pop_worst(&f, &s));
          EXPECT_EQ(f, naive[i].frame);
          EXPECT_EQ(s, naive[i].seq);
          naive.erase(naive.begin() + static_cast<std::ptrdiff_t>(i));
        }
      } else {
        const SetId f = static_cast<SetId>(rng.below(num_frames));
        const std::size_t expected =
            dead[f] ? 0
                    : static_cast<std::size_t>(std::count_if(
                          naive.begin(), naive.end(),
                          [&](const NaivePacket& p) { return p.frame == f; }));
        EXPECT_EQ(q.kill_frame(f), expected);
        dead[f] = true;
        naive.erase(std::remove_if(naive.begin(), naive.end(),
                                   [&](const NaivePacket& p) {
                                     return p.frame == f;
                                   }),
                    naive.end());
      }
      ASSERT_EQ(q.live_size(), naive.size()) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace osp
