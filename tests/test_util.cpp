// Unit tests for util: RNG behaviour and math helpers.
#include <gtest/gtest.h>

#include <set>

#include "util/math.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NearbySeedsUncorrelated) {
  // Adjacent integer seeds must not produce near-identical streams.
  Rng a(100), b(101);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), RequireError);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformOpenNeverZero) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.uniform_open(), 0.0);
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProportion) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitIndependence) {
  Rng parent(5);
  Rng c1 = parent.split(0);
  Rng c2 = parent.split(0);  // successive splits with same stream id differ
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1() == c2()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitReproducible) {
  Rng p1(5), p2(5);
  Rng a = p1.split(3), b = p2.split(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ExponentialPositiveAndMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // mean = 1/rate
}

TEST(Math, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1'000'000), 1000u);
  EXPECT_EQ(isqrt(999'999), 999u);
}

TEST(Math, IsqrtLarge) {
  std::uint64_t big = 0xFFFFFFFFULL;  // (2^32 - 1)
  EXPECT_EQ(isqrt(big * big), big);
  EXPECT_EQ(isqrt(big * big + 1), big);
  EXPECT_EQ(isqrt(big * big - 1), big - 1);
}

TEST(Math, CheckedPow) {
  EXPECT_EQ(checked_pow(2, 10), 1024u);
  EXPECT_EQ(checked_pow(3, 0), 1u);
  EXPECT_EQ(checked_pow(7, 3), 343u);
  EXPECT_THROW(checked_pow(2, 64), RequireError);
}

TEST(Math, PowMod) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(5, 0, 7), 1u);
  EXPECT_EQ(pow_mod(3, 100, 7), 4u);  // 3^6 = 1 mod 7, 100 mod 6 = 4, 3^4=81=4
}

TEST(Math, MulModNoOverflow) {
  std::uint64_t big = 0xFFFFFFFFFFFFFFFULL;
  EXPECT_EQ(mul_mod(big, big, 1'000'000'007ULL),
            static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(big) * big) %
                1'000'000'007ULL));
}

TEST(Math, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6u);
  EXPECT_EQ(gcd64(17, 5), 1u);
  EXPECT_EQ(gcd64(0, 9), 9u);
  EXPECT_EQ(gcd64(9, 0), 9u);
}

TEST(Math, Harmonic) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(Math, MeanStddev) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Require, MacroThrows) {
  EXPECT_THROW(OSP_REQUIRE(1 == 2), RequireError);
  EXPECT_NO_THROW(OSP_REQUIRE(1 == 1));
}

TEST(Require, MessageIncluded) {
  try {
    OSP_REQUIRE_MSG(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const RequireError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace osp
