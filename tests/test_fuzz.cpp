// Randomized cross-cutting invariant tests ("fuzz light"): every
// algorithm on every generator family must satisfy the game's global
// invariants, and independent implementations of the same quantity must
// agree.
#include <gtest/gtest.h>

#include <sstream>

#include "algos/baselines.hpp"
#include "algos/fractional.hpp"
#include "algos/offline.hpp"
#include "core/game.hpp"
#include "core/io.hpp"
#include "core/partial.hpp"
#include "core/rand_pr.hpp"
#include "design/lower_bounds.hpp"
#include "gen/multihop.hpp"
#include "gen/random_instances.hpp"
#include "gen/traffic.hpp"
#include "gen/video.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// One instance from each generator family, varied by seed.
std::vector<Instance> zoo(std::uint64_t seed) {
  Rng master(seed);
  std::vector<Instance> out;
  Rng g1 = master.split(1);
  out.push_back(random_instance(18, 22, 3, WeightModel::uniform(1, 6), g1));
  Rng g2 = master.split(2);
  out.push_back(random_capacity_instance(15, 18, 3, 3,
                                         WeightModel::zipf(1.1), g2));
  Rng g3 = master.split(3);
  out.push_back(fixed_load_instance(14, 20, 3, WeightModel::unit(), g3));
  Rng g4 = master.split(4);
  out.push_back(regular_instance(12, 3, 4, WeightModel::unit(), g4));
  Rng g5 = master.split(5);
  VideoParams vp;
  vp.num_streams = 5;
  vp.frames_per_stream = 8;
  out.push_back(make_video_workload(vp, g5).schedule.to_instance(1));
  Rng g6 = master.split(6);
  MultiHopParams mp;
  mp.num_packets = 30;
  out.push_back(make_multihop_workload(mp, g6).instance);
  Rng g7 = master.split(7);
  out.push_back(build_weak_lb_instance(4, g7).instance);
  return out;
}

// Every algorithm the library ships, freshly constructed.
std::vector<std::unique_ptr<OnlineAlgorithm>> all_algorithms(
    std::uint64_t seed) {
  Rng master(seed);
  auto out = make_deterministic_baselines();
  out.push_back(std::make_unique<RandPr>(master.split(1)));
  out.push_back(std::make_unique<RandPr>(
      master.split(2), RandPrOptions{.filter_dead = true}));
  out.push_back(std::make_unique<RandPr>(
      master.split(3), RandPrOptions{.ignore_weights = true}));
  out.push_back(std::make_unique<UniformRandomChoice>(master.split(4)));
  Rng h1 = master.split(5);
  out.push_back(HashedRandPr::with_polynomial(4, h1));
  Rng h2 = master.split(6);
  out.push_back(HashedRandPr::with_tabulation(h2));
  return out;
}

TEST(Fuzz, BenefitEqualsSumOfCompletedWeights) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    for (const Instance& inst : zoo(seed)) {
      for (auto& alg : all_algorithms(seed)) {
        Outcome out = play(inst, *alg);
        Weight sum = 0;
        for (SetId s : out.completed) sum += inst.weight(s);
        EXPECT_NEAR(out.benefit, sum, 1e-9)
            << alg->name() << " on " << inst.describe();
        // Mask and list agree.
        std::size_t mask_count = 0;
        for (bool b : out.completed_mask) mask_count += b;
        EXPECT_EQ(mask_count, out.completed.size());
      }
    }
  }
}

TEST(Fuzz, NoAlgorithmBeatsExactOptimum) {
  for (std::uint64_t seed : {44u, 55u}) {
    for (const Instance& inst : zoo(seed)) {
      if (inst.num_sets() > 26) continue;  // keep B&B fast
      OfflineResult opt = exact_optimum(inst);
      if (!opt.exact) continue;
      for (auto& alg : all_algorithms(seed))
        EXPECT_LE(play(inst, *alg).benefit, opt.value + 1e-9)
            << alg->name() << " on " << inst.describe();
    }
  }
}

TEST(Fuzz, CompletedSetsFormFeasibleSolution) {
  for (std::uint64_t seed : {66u, 77u}) {
    for (const Instance& inst : zoo(seed)) {
      for (auto& alg : all_algorithms(seed)) {
        Outcome out = play(inst, *alg);
        EXPECT_TRUE(is_feasible(inst, out.completed))
            << alg->name() << " on " << inst.describe();
      }
    }
  }
}

TEST(Fuzz, PartialWithZeroBudgetMatchesClassic) {
  for (std::uint64_t seed : {88u}) {
    for (const Instance& inst : zoo(seed)) {
      RandPr a{Rng(seed)}, b{Rng(seed)};
      Outcome classic = play(inst, a);
      PartialOutcome partial = play_partial(inst, b, PartialCreditRule{});
      EXPECT_DOUBLE_EQ(classic.benefit, partial.benefit)
          << inst.describe();
    }
  }
}

TEST(Fuzz, IoRoundTripPreservesOutcomes) {
  // Serialize, reload, replay with the same seed: outcomes identical.
  for (const Instance& inst : zoo(99)) {
    std::stringstream ss;
    write_instance(ss, inst);
    Instance back = read_instance(ss);
    RandPr a{Rng(7)}, b{Rng(7)};
    EXPECT_EQ(play(inst, a).completed, play(back, b).completed);
  }
}

TEST(Fuzz, FractionalUpperBoundsEveryIntegralOnlineRun) {
  // The fractional online value is not an upper bound on integral online
  // in general, but the LP optimum is; verify the chain
  // integral-run <= exact-opt <= lp for every family.
  for (const Instance& inst : zoo(111)) {
    if (inst.num_sets() > 26) continue;
    OfflineResult opt = exact_optimum(inst);
    if (!opt.exact) continue;
    double lp = lp_upper_bound(inst);
    EXPECT_LE(opt.value, lp + 1e-6) << inst.describe();
    FractionalOutcome frac = fractional_online(inst);
    EXPECT_LE(frac.value, lp + 1e-6) << inst.describe();
  }
}

TEST(Fuzz, GreedyOfflineNeverBeatsExact) {
  for (const Instance& inst : zoo(222)) {
    if (inst.num_sets() > 26) continue;
    OfflineResult opt = exact_optimum(inst);
    if (!opt.exact) continue;
    EXPECT_LE(greedy_offline(inst).value, opt.value + 1e-9);
  }
}

TEST(Fuzz, StatsIdentities) {
  // n·σ̄ = Σ|S| = m·k̄ and n·avg(σ$) = Σ|S|w(S) on every family.
  for (const Instance& inst : zoo(333)) {
    InstanceStats st = inst.stats();
    double total_membership = 0, weighted_membership = 0;
    for (SetId s = 0; s < inst.num_sets(); ++s) {
      total_membership += static_cast<double>(inst.set_size(s));
      weighted_membership +=
          static_cast<double>(inst.set_size(s)) * inst.weight(s);
    }
    EXPECT_NEAR(st.sigma_avg * static_cast<double>(st.num_elements),
                total_membership, 1e-6);
    EXPECT_NEAR(st.k_avg * static_cast<double>(st.num_sets),
                total_membership, 1e-6);
    EXPECT_NEAR(st.sigma_w_avg * static_cast<double>(st.num_elements),
                weighted_membership, 1e-6);
  }
}

}  // namespace
}  // namespace osp
