// Tests for the game engine: rule enforcement, scoring, adaptive engine.
#include <gtest/gtest.h>

#include "core/game.hpp"
#include "util/require.hpp"

namespace osp {
namespace {

// Scripted algorithm: returns pre-programmed answers in order.
class Scripted final : public OnlineAlgorithm {
 public:
  explicit Scripted(std::vector<std::vector<SetId>> answers)
      : answers_(std::move(answers)) {}
  std::string name() const override { return "scripted"; }
  void start(const std::vector<SetMeta>& sets) override { metas_ = sets; }
  std::vector<SetId> on_element(ElementId u, Capacity,
                                const std::vector<SetId>&) override {
    return answers_.at(u);
  }
  const std::vector<SetMeta>& metas() const { return metas_; }

 private:
  std::vector<std::vector<SetId>> answers_;
  std::vector<SetMeta> metas_;
};

Instance two_sets() {
  // S0 = {e0, e1} w=1, S1 = {e0, e2} w=2.
  InstanceBuilder b;
  b.add_set(1.0);
  b.add_set(2.0);
  b.add_element({0, 1});
  b.add_element({0});
  b.add_element({1});
  return b.build();
}

TEST(Play, CompletesChosenSet) {
  Instance inst = two_sets();
  Scripted alg({{0}, {0}, {1}});
  Outcome out = play(inst, alg);
  EXPECT_EQ(out.completed, (std::vector<SetId>{0}));
  EXPECT_DOUBLE_EQ(out.benefit, 1.0);
  EXPECT_TRUE(out.completed_mask[0]);
  EXPECT_FALSE(out.completed_mask[1]);  // missed e0
  EXPECT_EQ(out.decisions, 3u);
}

TEST(Play, OtherChoiceCompletesOtherSet) {
  Instance inst = two_sets();
  Scripted alg({{1}, {}, {1}});
  Outcome out = play(inst, alg);
  EXPECT_EQ(out.completed, (std::vector<SetId>{1}));
  EXPECT_DOUBLE_EQ(out.benefit, 2.0);
}

TEST(Play, DecliningEverythingCompletesNothing) {
  Instance inst = two_sets();
  Scripted alg({{}, {}, {}});
  Outcome out = play(inst, alg);
  EXPECT_TRUE(out.completed.empty());
  EXPECT_DOUBLE_EQ(out.benefit, 0.0);
}

TEST(Play, AnnouncesMetadata) {
  Instance inst = two_sets();
  Scripted alg({{}, {}, {}});
  play(inst, alg);
  ASSERT_EQ(alg.metas().size(), 2u);
  EXPECT_DOUBLE_EQ(alg.metas()[0].weight, 1.0);
  EXPECT_EQ(alg.metas()[0].size, 2u);
  EXPECT_EQ(alg.metas()[1].size, 2u);
}

TEST(Play, RejectsOverCapacity) {
  Instance inst = two_sets();
  Scripted alg({{0, 1}, {}, {}});  // e0 has capacity 1
  EXPECT_THROW(play(inst, alg), RequireError);
}

TEST(Play, RejectsNonParent) {
  Instance inst = two_sets();
  Scripted alg({{0}, {1}, {}});  // e1's only parent is S0
  EXPECT_THROW(play(inst, alg), RequireError);
}

TEST(Play, RejectsDuplicateChoice) {
  InstanceBuilder b;
  b.add_sets(2);
  b.add_element({0, 1}, 2);
  Instance inst = b.build();
  Scripted alg({{0, 0}});
  EXPECT_THROW(play(inst, alg), RequireError);
}

TEST(Play, CapacityTwoAllowsBothSets) {
  InstanceBuilder b;
  b.add_sets(2);
  b.add_element({0, 1}, 2);
  Instance inst = b.build();
  Scripted alg({{0, 1}});
  Outcome out = play(inst, alg);
  EXPECT_EQ(out.completed.size(), 2u);
}

TEST(Play, EmptySetCompletesVacuously) {
  InstanceBuilder b;
  b.add_set(7.0);
  Instance inst = b.build();
  Scripted alg{std::vector<std::vector<SetId>>{}};
  Outcome out = play(inst, alg);
  EXPECT_EQ(out.completed, (std::vector<SetId>{0}));
  EXPECT_DOUBLE_EQ(out.benefit, 7.0);
}

TEST(Play, PartialAssignmentDoesNotComplete) {
  // Choosing a set at some but not all of its elements earns nothing.
  InstanceBuilder b;
  b.add_set(1.0);
  b.add_element({0});
  b.add_element({0});
  b.add_element({0});
  Instance inst = b.build();
  Scripted alg({{0}, {0}, {}});
  Outcome out = play(inst, alg);
  EXPECT_TRUE(out.completed.empty());
}

TEST(GameEngine, TracksActivity) {
  std::vector<SetMeta> metas{{1.0, 2}, {1.0, 2}};
  Scripted alg({{0}, {0}, {1}});
  GameEngine engine(metas, alg);
  engine.step({0, 1});
  EXPECT_TRUE(engine.is_alg_active(0));
  EXPECT_FALSE(engine.is_alg_active(1));  // candidate but not chosen
  engine.step({0});
  EXPECT_TRUE(engine.is_alg_active(0));
  Outcome out = engine.finish();
  EXPECT_EQ(out.completed, (std::vector<SetId>{0}));
}

TEST(GameEngine, FinishRequiresDeclaredSize) {
  // A set that stayed active but got fewer elements than declared is not
  // complete.
  std::vector<SetMeta> metas{{1.0, 3}};
  Scripted alg{std::vector<std::vector<SetId>>{{0}}};
  GameEngine engine(metas, alg);
  engine.step({0});
  Outcome out = engine.finish();
  EXPECT_TRUE(out.completed.empty());
}

TEST(GameEngine, PresentedCounts) {
  std::vector<SetMeta> metas{{1.0, 2}, {1.0, 1}};
  Scripted alg({{0}, {}});
  GameEngine engine(metas, alg);
  engine.step({0, 1});
  engine.step({0});  // scripted answer {} — declines
  EXPECT_EQ(engine.presented(0), 2u);
  EXPECT_EQ(engine.presented(1), 1u);
  EXPECT_FALSE(engine.is_alg_active(0));  // declined its second element
}

TEST(GameEngine, StepValidatesAnswer) {
  std::vector<SetMeta> metas{{1.0, 1}, {1.0, 1}};
  Scripted alg({{0, 1}});
  GameEngine engine(metas, alg);
  EXPECT_THROW(engine.step({0, 1}, 1), RequireError);  // over capacity
}

TEST(ActiveTracking, SeenAndProgress) {
  class Probe final : public ActiveTracking {
   public:
    std::string name() const override { return "probe"; }
    std::vector<SetId> on_element(ElementId, Capacity,
                                  const std::vector<SetId>& c) override {
      std::vector<SetId> chosen;
      if (!c.empty()) chosen.push_back(c.front());
      record(c, chosen);
      return chosen;
    }
  };
  Probe p;
  p.start({{1.0, 2}, {1.0, 2}});
  p.on_element(0, 1, {0, 1});
  EXPECT_TRUE(p.is_active(0));
  EXPECT_FALSE(p.is_active(1));
  EXPECT_EQ(p.progress(0), 1u);
  EXPECT_EQ(p.seen(1), 1u);
  EXPECT_EQ(p.remaining(0), 1u);
}

}  // namespace
}  // namespace osp
