// Tests for the network simulators: conservation laws, equivalence of the
// unbuffered router with the osp game (the paper's reduction), buffered
// behaviour, and the distributed pipeline.
#include <gtest/gtest.h>

#include "algos/baselines.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "gen/traffic.hpp"
#include "gen/video.hpp"
#include "net/pipeline.hpp"
#include "net/router_sim.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

FrameSchedule sample_schedule(std::uint64_t seed, std::size_t frames = 60,
                              std::size_t k = 3) {
  Rng rng(seed);
  PoissonBursts bursts(2.5);
  return bursty_schedule(bursts, frames, k, rng);
}

TEST(Router, PacketConservation) {
  FrameSchedule sched = sample_schedule(1);
  GreedyFirst alg;
  RouterStats st = simulate_router(sched, alg, 1);
  EXPECT_EQ(st.packets_arrived, sched.total_packets());
  EXPECT_EQ(st.packets_served + st.packets_dropped, st.packets_arrived);
  EXPECT_EQ(st.frames_total, sched.frames.size());
  EXPECT_LE(st.frames_delivered, st.frames_total);
  EXPECT_LE(st.value_delivered, st.value_total + 1e-9);
}

TEST(Router, EquivalentToOspGame) {
  // The unbuffered router IS the osp game under the paper's reduction:
  // same algorithm seed => identical benefit, frame for frame.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FrameSchedule sched = sample_schedule(100 + seed);
    RandPr router_alg{Rng(seed)};
    RandPr game_alg{Rng(seed)};
    RouterStats rs = simulate_router(sched, router_alg, 1);
    Outcome go = play(sched.to_instance(1), game_alg);
    EXPECT_DOUBLE_EQ(rs.value_delivered, go.benefit) << "seed " << seed;
    EXPECT_EQ(rs.frames_delivered, go.completed.size());
  }
}

TEST(Router, EquivalenceHoldsWithHigherServiceRate) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    FrameSchedule sched = sample_schedule(200 + seed, 80, 4);
    RandPr router_alg{Rng(seed)};
    RandPr game_alg{Rng(seed)};
    RouterStats rs = simulate_router(sched, router_alg, 2);
    Outcome go = play(sched.to_instance(2), game_alg);
    EXPECT_DOUBLE_EQ(rs.value_delivered, go.benefit);
  }
}

TEST(Router, AmpleCapacityDeliversEverything) {
  FrameSchedule sched = sample_schedule(3, 30, 2);
  Capacity ample = static_cast<Capacity>(sched.max_burst());
  GreedyFirst alg;
  RouterStats st = simulate_router(sched, alg, ample);
  EXPECT_EQ(st.frames_delivered, st.frames_total);
  EXPECT_EQ(st.packets_dropped, 0u);
}

TEST(Rankers, StartAndRank) {
  std::vector<SetMeta> frames{{4.0, 2}, {1.0, 2}};
  WeightRanker wr;
  wr.start(frames);
  EXPECT_GT(wr.rank(0), wr.rank(1));

  RandPrRanker rp{Rng(1)};
  rp.start(frames);
  EXPECT_NE(rp.rank(0), rp.rank(1));

  FifoRanker fifo;
  fifo.start(frames);
  EXPECT_DOUBLE_EQ(fifo.rank(0), fifo.rank(1));
}

TEST(BufferedRouter, ZeroBufferStillConserves) {
  FrameSchedule sched = sample_schedule(4);
  FifoRanker fifo;
  RouterStats st =
      simulate_buffered_router(sched, fifo, {.service_rate = 1,
                                             .buffer_size = 0,
                                             .drop_dead_frames = false});
  EXPECT_EQ(st.packets_served + st.packets_dropped, st.packets_arrived);
}

TEST(BufferedRouter, BufferImprovesFifoGoodput) {
  // Statistically, a buffer can only help drop-tail.
  Rng master(5);
  double no_buf = 0, with_buf = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    FrameSchedule sched = sample_schedule(500 + t);
    FifoRanker f1, f2;
    no_buf += simulate_buffered_router(
                  sched, f1, {.service_rate = 1, .buffer_size = 0,
                              .drop_dead_frames = false})
                  .goodput();
    with_buf += simulate_buffered_router(
                    sched, f2, {.service_rate = 1, .buffer_size = 8,
                                .drop_dead_frames = false})
                    .goodput();
  }
  EXPECT_GE(with_buf, no_buf);
}

TEST(BufferedRouter, DropDeadFramesHelps) {
  Rng master(6);
  double keep_dead = 0, drop_dead = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    FrameSchedule sched = sample_schedule(700 + t, 80, 4);
    RandPrRanker r1{master.split(t)}, r2{master.split(t)};
    keep_dead += simulate_buffered_router(
                     sched, r1, {.service_rate = 1, .buffer_size = 4,
                                 .drop_dead_frames = false})
                     .goodput();
    drop_dead += simulate_buffered_router(
                     sched, r2, {.service_rate = 1, .buffer_size = 4,
                                 .drop_dead_frames = true})
                     .goodput();
  }
  EXPECT_GE(drop_dead, keep_dead);
}

// The heap router and the full-sort reference must be decision-identical:
// same serviced packet (frame AND arrival seq) in every service step of
// every slot, and same aggregate counters — across rankers, buffer sizes,
// service rates, and both dead-frame modes.  Unit frame weights make rank
// ties ubiquitous, which is exactly where ordering bugs would hide.
TEST(BufferedRouter, HeapMatchesSortReferenceSlotForSlot) {
  Rng master(42);
  BufferedRouterScratch scratch;  // reused across all runs on purpose
  RandPrRanker randpr{Rng(0)};
  WeightRanker weight;
  FifoRanker fifo;
  RandomRanker random{Rng(0)};
  FrameRanker* rankers[] = {&randpr, &weight, &fifo, &random};

  int compared = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    FrameSchedule sched = sample_schedule(900 + seed, 50, 3);
    for (std::size_t buf : {0, 1, 3, 8, 64}) {
      for (Capacity rate : {1, 2, 5}) {
        for (bool drop_dead : {true, false}) {
          BufferedRouterParams params{rate, buf, drop_dead};
          for (FrameRanker* ranker : rankers) {
            ranker->reseed(Rng(seed));
            RouterTrace ref_trace;
            RouterStats ref = simulate_buffered_router_reference(
                sched, *ranker, params, &ref_trace);

            ranker->reseed(Rng(seed));
            RouterTrace heap_trace;
            RouterStats heap = simulate_buffered_router(
                sched, *ranker, params, &scratch, &heap_trace);

            ASSERT_EQ(heap.packets_arrived, ref.packets_arrived);
            ASSERT_EQ(heap.packets_served, ref.packets_served);
            ASSERT_EQ(heap.packets_dropped, ref.packets_dropped);
            ASSERT_EQ(heap.frames_delivered, ref.frames_delivered);
            ASSERT_DOUBLE_EQ(heap.value_delivered, ref.value_delivered);
            ASSERT_EQ(heap_trace.served.size(), ref_trace.served.size());
            for (std::size_t i = 0; i < ref_trace.served.size(); ++i) {
              ASSERT_EQ(heap_trace.served[i].slot, ref_trace.served[i].slot)
                  << "seed " << seed << " " << ranker->name() << " step "
                  << i;
              ASSERT_EQ(heap_trace.served[i].frame,
                        ref_trace.served[i].frame);
              ASSERT_EQ(heap_trace.served[i].seq, ref_trace.served[i].seq);
            }
            ++compared;
          }
        }
      }
    }
  }
  EXPECT_EQ(compared, 6 * 5 * 3 * 2 * 4);
}

// Regression for the dead-frame service waste of the pre-queue.hpp
// simulator.  Frames (weight, packet slots), service rate 1, buffer 3,
// WeightRanker, drop_dead_frames on:
//   H (10, {0,1,2,3})  — hogs the link every slot it appears
//   C ( 1, {1})   D (1, {2})   E (1, {3})   B (1, {0,3})
// At slot 3 the queue holds [B#0, C, D, E, B#1] (all rank 1, FIFO order)
// and must shrink to 3.  The old simulator kept the top 3 — B#0, C, D —
// and dropped E and B#1, killing BOTH E and B while B's doomed first
// packet sat in the buffer (to be "served" at slot 6, wasting the link):
// delivered value 12/14.  The fixed router evicts B#0 together with B#1
// (a dead frame can never be delivered), which saves E: 13/14.
TEST(BufferedRouter, EvictingDeadFramePacketsSavesLiveFrames) {
  FrameSchedule sched;
  sched.frames.push_back({10.0, {0, 1, 2, 3}});  // H
  sched.frames.push_back({1.0, {1}});            // C
  sched.frames.push_back({1.0, {2}});            // D
  sched.frames.push_back({1.0, {3}});            // E
  sched.frames.push_back({1.0, {0, 3}});         // B
  sched.horizon = 7;

  WeightRanker ranker;
  BufferedRouterParams params{1, 3, true};
  for (bool use_heap : {true, false}) {
    RouterStats st =
        use_heap ? simulate_buffered_router(sched, ranker, params)
                 : simulate_buffered_router_reference(sched, ranker, params);
    EXPECT_EQ(st.packets_arrived, 9u);
    EXPECT_EQ(st.packets_served, 7u);
    EXPECT_EQ(st.packets_dropped, 2u);
    EXPECT_EQ(st.frames_delivered, 4u);  // H, C, D and the rescued E
    EXPECT_DOUBLE_EQ(st.value_delivered, 13.0);
    EXPECT_DOUBLE_EQ(st.goodput(), 13.0 / 14.0);  // old simulator: 12/14
  }
}

TEST(BufferedRouter, RefusesArrivalsOfDeadFrames) {
  // Frame A loses its first packet to a zero buffer at slot 0 (B outranks
  // it); its second packet must be refused on arrival, leaving the link
  // free for C.
  FrameSchedule sched;
  sched.frames.push_back({5.0, {0}});     // B: wins slot 0
  sched.frames.push_back({1.0, {0, 1}});  // A: dies at slot 0
  sched.frames.push_back({0.5, {1}});     // C: must be served at slot 1
  sched.horizon = 2;
  WeightRanker ranker;
  RouterStats st =
      simulate_buffered_router(sched, ranker, {1, 0, true});
  EXPECT_EQ(st.packets_served, 2u);
  EXPECT_EQ(st.frames_delivered, 2u);  // B and C
  EXPECT_DOUBLE_EQ(st.value_delivered, 5.5);
}

TEST(BufferedRouter, AmpleServiceRateDeliversEverythingEvenUnbuffered) {
  FrameSchedule sched = sample_schedule(11, 40, 3);
  Capacity ample = static_cast<Capacity>(sched.max_burst());
  FifoRanker fifo;
  for (std::size_t buf : {0, 5}) {
    RouterStats st =
        simulate_buffered_router(sched, fifo, {ample, buf, true});
    EXPECT_EQ(st.packets_dropped, 0u);
    EXPECT_EQ(st.packets_served, st.packets_arrived);
    EXPECT_EQ(st.frames_delivered, st.frames_total);
  }
}

TEST(BufferedRouter, ServiceRateAboveQueueSizeIsHarmless) {
  // service_rate far beyond any queue population: the serve loop must
  // stop at an empty queue, not underflow or serve phantom packets.
  FrameSchedule sched;
  sched.frames.push_back({1.0, {0}});
  sched.frames.push_back({2.0, {2}});
  sched.horizon = 4;
  FifoRanker fifo;
  RouterStats st = simulate_buffered_router(sched, fifo, {100, 10, true});
  EXPECT_EQ(st.packets_served, 2u);
  EXPECT_EQ(st.packets_dropped, 0u);
  EXPECT_EQ(st.frames_delivered, 2u);
}

TEST(BufferedRouter, HorizonEndDropsKillDelivery) {
  // Two packets arrive in the last slot; one is served, the straggler is
  // dropped at the horizon and its frame with it.
  FrameSchedule sched;
  sched.frames.push_back({1.0, {0, 1}});
  sched.frames.push_back({3.0, {1}});
  sched.horizon = 2;
  WeightRanker ranker;
  RouterStats st =
      simulate_buffered_router(sched, ranker, {1, 4, true});
  // Slot 0: frame 0's first packet served.  Slot 1: frame 1 outranks
  // frame 0's second packet; the horizon ends with it still queued.
  EXPECT_EQ(st.packets_served, 2u);
  EXPECT_EQ(st.packets_dropped, 1u);
  EXPECT_EQ(st.frames_delivered, 1u);
  EXPECT_DOUBLE_EQ(st.value_delivered, 3.0);
}

TEST(BufferedRouter, ConservationHoldsAcrossParamGrid) {
  Rng master(77);
  BufferedRouterScratch scratch;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    FrameSchedule sched = sample_schedule(1300 + seed, 70, 4);
    RandPrRanker ranker{master.split(seed)};
    for (std::size_t buf : {0, 2, 16, 1000}) {
      for (Capacity rate : {1, 3, 7}) {
        for (bool drop_dead : {true, false}) {
          RouterStats st = simulate_buffered_router(
              sched, ranker, {rate, buf, drop_dead}, &scratch);
          ASSERT_EQ(st.packets_arrived, sched.total_packets());
          ASSERT_EQ(st.packets_served + st.packets_dropped,
                    st.packets_arrived);
          ASSERT_LE(st.value_delivered, st.value_total + 1e-9);
        }
      }
    }
  }
}

TEST(Rankers, ReseedMatchesFreshConstruction) {
  std::vector<SetMeta> frames{{4.0, 2}, {1.0, 2}, {2.5, 3}};
  RandPrRanker fresh{Rng(99)};
  fresh.start(frames);
  RandPrRanker reused{Rng(1)};
  reused.start(frames);  // consume some randomness first
  reused.reseed(Rng(99));
  reused.start(frames);
  for (SetId f = 0; f < frames.size(); ++f)
    EXPECT_DOUBLE_EQ(reused.rank(f), fresh.rank(f));

  RandomRanker rfresh{Rng(5)};
  rfresh.start(frames);
  RandomRanker rreused{Rng(2)};
  rreused.start(frames);
  rreused.reseed(Rng(5));
  rreused.start(frames);
  for (SetId f = 0; f < frames.size(); ++f)
    EXPECT_DOUBLE_EQ(rreused.rank(f), rfresh.rank(f));
}

TEST(Router, NonPositiveFrameWeightsFailLoudly) {
  // Satellite of the clamp removal: a zero-weight frame must be rejected
  // by FrameSchedule::validate() — not silently clamped into a near-zero
  // randPr priority.
  FrameSchedule sched;
  sched.frames.push_back({0.0, {0}});
  sched.horizon = 1;
  EXPECT_THROW(sched.validate(), RequireError);

  FifoRanker fifo;
  EXPECT_THROW(simulate_buffered_router(sched, fifo, {1, 0, true}),
               RequireError);
  GreedyFirst alg;
  EXPECT_THROW(simulate_router(sched, alg, 1), RequireError);

  sched.frames[0].weight = -1.0;
  EXPECT_THROW(sched.validate(), RequireError);
}

TEST(BufferedRouter, UnfinishedQueueCountsAsDropped) {
  FrameSchedule sched;
  sched.frames.push_back({1.0, {0}});
  sched.frames.push_back({1.0, {0}});
  sched.frames.push_back({1.0, {0}});
  sched.horizon = 1;  // only one service opportunity
  FifoRanker fifo;
  RouterStats st = simulate_buffered_router(
      sched, fifo,
      {.service_rate = 1, .buffer_size = 10, .drop_dead_frames = false});
  EXPECT_EQ(st.packets_served, 1u);
  EXPECT_EQ(st.packets_dropped, 2u);
  EXPECT_EQ(st.frames_delivered, 1u);
}

TEST(Pipeline, ConservationAndBounds) {
  Rng rng(7);
  MultiHopParams params;
  params.num_switches = 4;
  params.num_packets = 50;
  params.horizon = 25;
  params.min_route = 2;
  params.max_route = 4;
  MultiHopWorkload w = make_multihop_workload(params, rng);
  PipelineStats st = simulate_pipeline(
      w, params.num_switches,
      [](std::size_t) { return std::make_unique<GreedyFirst>(); });
  EXPECT_EQ(st.packets_total, 50u);
  EXPECT_LE(st.packets_delivered, st.packets_total);
  EXPECT_LE(st.value_delivered, st.value_total + 1e-9);
  EXPECT_GE(st.delivery_rate(), 0.0);
}

TEST(Pipeline, NoContentionDeliversAll) {
  // One packet: nothing to contend with; it must arrive.
  Rng rng(8);
  MultiHopParams params;
  params.num_packets = 1;
  params.num_switches = 4;
  params.min_route = params.max_route = 4;
  MultiHopWorkload w = make_multihop_workload(params, rng);
  PipelineStats st = simulate_pipeline(
      w, params.num_switches,
      [](std::size_t) { return std::make_unique<GreedyFirst>(); });
  EXPECT_EQ(st.packets_delivered, 1u);
}

TEST(Pipeline, SharedHashBeatsIndependentRandomness) {
  // The paper's Section 3.1 point: one shared hash function gives every
  // switch consistent priorities; independent randomness at each switch
  // wastes capacity on packets that later lose anyway.
  //
  // Routes must be SHORT relative to the path: packets advance in
  // lockstep, so contention groups live on time-diagonals, and if every
  // route covers one common hop then exactly one packet per diagonal
  // survives it no matter what the policy does — delivery becomes
  // policy-invariant.  Short staggered routes avoid that degeneracy.
  Rng master(9);
  double shared_total = 0, indep_total = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng wl_rng = master.split(t);
    MultiHopParams params;
    params.num_switches = 8;
    params.num_packets = 150;
    params.horizon = 18;
    params.min_route = 2;
    params.max_route = 4;
    MultiHopWorkload w = make_multihop_workload(params, wl_rng);

    Rng hash_rng = master.split(1000 + t);
    auto h = std::make_shared<PolynomialHash>(8, hash_rng);
    PipelineStats shared = simulate_pipeline(
        w, params.num_switches, [&](std::size_t) {
          return std::make_unique<HashedRandPr>(
              [h](std::uint64_t key) { return h->unit(key); }, "shared");
        });

    Rng indep_rng = master.split(2000 + t);
    PipelineStats indep = simulate_pipeline(
        w, params.num_switches, [&](std::size_t s) {
          return std::make_unique<RandPr>(indep_rng.split(s));
        });
    shared_total += static_cast<double>(shared.packets_delivered);
    indep_total += static_cast<double>(indep.packets_delivered);
  }
  EXPECT_GT(shared_total, indep_total);
}

}  // namespace
}  // namespace osp
