// Tests for the network simulators: conservation laws, equivalence of the
// unbuffered router with the osp game (the paper's reduction), buffered
// behaviour, and the distributed pipeline.
#include <gtest/gtest.h>

#include "algos/baselines.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "gen/traffic.hpp"
#include "gen/video.hpp"
#include "net/pipeline.hpp"
#include "net/router_sim.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

FrameSchedule sample_schedule(std::uint64_t seed, std::size_t frames = 60,
                              std::size_t k = 3) {
  Rng rng(seed);
  PoissonBursts bursts(2.5);
  return bursty_schedule(bursts, frames, k, rng);
}

TEST(Router, PacketConservation) {
  FrameSchedule sched = sample_schedule(1);
  GreedyFirst alg;
  RouterStats st = simulate_router(sched, alg, 1);
  EXPECT_EQ(st.packets_arrived, sched.total_packets());
  EXPECT_EQ(st.packets_served + st.packets_dropped, st.packets_arrived);
  EXPECT_EQ(st.frames_total, sched.frames.size());
  EXPECT_LE(st.frames_delivered, st.frames_total);
  EXPECT_LE(st.value_delivered, st.value_total + 1e-9);
}

TEST(Router, EquivalentToOspGame) {
  // The unbuffered router IS the osp game under the paper's reduction:
  // same algorithm seed => identical benefit, frame for frame.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FrameSchedule sched = sample_schedule(100 + seed);
    RandPr router_alg{Rng(seed)};
    RandPr game_alg{Rng(seed)};
    RouterStats rs = simulate_router(sched, router_alg, 1);
    Outcome go = play(sched.to_instance(1), game_alg);
    EXPECT_DOUBLE_EQ(rs.value_delivered, go.benefit) << "seed " << seed;
    EXPECT_EQ(rs.frames_delivered, go.completed.size());
  }
}

TEST(Router, EquivalenceHoldsWithHigherServiceRate) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    FrameSchedule sched = sample_schedule(200 + seed, 80, 4);
    RandPr router_alg{Rng(seed)};
    RandPr game_alg{Rng(seed)};
    RouterStats rs = simulate_router(sched, router_alg, 2);
    Outcome go = play(sched.to_instance(2), game_alg);
    EXPECT_DOUBLE_EQ(rs.value_delivered, go.benefit);
  }
}

TEST(Router, AmpleCapacityDeliversEverything) {
  FrameSchedule sched = sample_schedule(3, 30, 2);
  Capacity ample = static_cast<Capacity>(sched.max_burst());
  GreedyFirst alg;
  RouterStats st = simulate_router(sched, alg, ample);
  EXPECT_EQ(st.frames_delivered, st.frames_total);
  EXPECT_EQ(st.packets_dropped, 0u);
}

TEST(Rankers, StartAndRank) {
  std::vector<SetMeta> frames{{4.0, 2}, {1.0, 2}};
  WeightRanker wr;
  wr.start(frames);
  EXPECT_GT(wr.rank(0), wr.rank(1));

  RandPrRanker rp{Rng(1)};
  rp.start(frames);
  EXPECT_NE(rp.rank(0), rp.rank(1));

  FifoRanker fifo;
  fifo.start(frames);
  EXPECT_DOUBLE_EQ(fifo.rank(0), fifo.rank(1));
}

TEST(BufferedRouter, ZeroBufferStillConserves) {
  FrameSchedule sched = sample_schedule(4);
  FifoRanker fifo;
  RouterStats st =
      simulate_buffered_router(sched, fifo, {.service_rate = 1,
                                             .buffer_size = 0,
                                             .drop_dead_frames = false});
  EXPECT_EQ(st.packets_served + st.packets_dropped, st.packets_arrived);
}

TEST(BufferedRouter, BufferImprovesFifoGoodput) {
  // Statistically, a buffer can only help drop-tail.
  Rng master(5);
  double no_buf = 0, with_buf = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    FrameSchedule sched = sample_schedule(500 + t);
    FifoRanker f1, f2;
    no_buf += simulate_buffered_router(
                  sched, f1, {.service_rate = 1, .buffer_size = 0,
                              .drop_dead_frames = false})
                  .goodput();
    with_buf += simulate_buffered_router(
                    sched, f2, {.service_rate = 1, .buffer_size = 8,
                                .drop_dead_frames = false})
                    .goodput();
  }
  EXPECT_GE(with_buf, no_buf);
}

TEST(BufferedRouter, DropDeadFramesHelps) {
  Rng master(6);
  double keep_dead = 0, drop_dead = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    FrameSchedule sched = sample_schedule(700 + t, 80, 4);
    RandPrRanker r1{master.split(t)}, r2{master.split(t)};
    keep_dead += simulate_buffered_router(
                     sched, r1, {.service_rate = 1, .buffer_size = 4,
                                 .drop_dead_frames = false})
                     .goodput();
    drop_dead += simulate_buffered_router(
                     sched, r2, {.service_rate = 1, .buffer_size = 4,
                                 .drop_dead_frames = true})
                     .goodput();
  }
  EXPECT_GE(drop_dead, keep_dead);
}

TEST(BufferedRouter, UnfinishedQueueCountsAsDropped) {
  FrameSchedule sched;
  sched.frames.push_back({1.0, {0}});
  sched.frames.push_back({1.0, {0}});
  sched.frames.push_back({1.0, {0}});
  sched.horizon = 1;  // only one service opportunity
  FifoRanker fifo;
  RouterStats st = simulate_buffered_router(
      sched, fifo,
      {.service_rate = 1, .buffer_size = 10, .drop_dead_frames = false});
  EXPECT_EQ(st.packets_served, 1u);
  EXPECT_EQ(st.packets_dropped, 2u);
  EXPECT_EQ(st.frames_delivered, 1u);
}

TEST(Pipeline, ConservationAndBounds) {
  Rng rng(7);
  MultiHopParams params;
  params.num_switches = 4;
  params.num_packets = 50;
  params.horizon = 25;
  params.min_route = 2;
  params.max_route = 4;
  MultiHopWorkload w = make_multihop_workload(params, rng);
  PipelineStats st = simulate_pipeline(
      w, params.num_switches,
      [](std::size_t) { return std::make_unique<GreedyFirst>(); });
  EXPECT_EQ(st.packets_total, 50u);
  EXPECT_LE(st.packets_delivered, st.packets_total);
  EXPECT_LE(st.value_delivered, st.value_total + 1e-9);
  EXPECT_GE(st.delivery_rate(), 0.0);
}

TEST(Pipeline, NoContentionDeliversAll) {
  // One packet: nothing to contend with; it must arrive.
  Rng rng(8);
  MultiHopParams params;
  params.num_packets = 1;
  params.num_switches = 4;
  params.min_route = params.max_route = 4;
  MultiHopWorkload w = make_multihop_workload(params, rng);
  PipelineStats st = simulate_pipeline(
      w, params.num_switches,
      [](std::size_t) { return std::make_unique<GreedyFirst>(); });
  EXPECT_EQ(st.packets_delivered, 1u);
}

TEST(Pipeline, SharedHashBeatsIndependentRandomness) {
  // The paper's Section 3.1 point: one shared hash function gives every
  // switch consistent priorities; independent randomness at each switch
  // wastes capacity on packets that later lose anyway.
  //
  // Routes must be SHORT relative to the path: packets advance in
  // lockstep, so contention groups live on time-diagonals, and if every
  // route covers one common hop then exactly one packet per diagonal
  // survives it no matter what the policy does — delivery becomes
  // policy-invariant.  Short staggered routes avoid that degeneracy.
  Rng master(9);
  double shared_total = 0, indep_total = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng wl_rng = master.split(t);
    MultiHopParams params;
    params.num_switches = 8;
    params.num_packets = 150;
    params.horizon = 18;
    params.min_route = 2;
    params.max_route = 4;
    MultiHopWorkload w = make_multihop_workload(params, wl_rng);

    Rng hash_rng = master.split(1000 + t);
    auto h = std::make_shared<PolynomialHash>(8, hash_rng);
    PipelineStats shared = simulate_pipeline(
        w, params.num_switches, [&](std::size_t) {
          return std::make_unique<HashedRandPr>(
              [h](std::uint64_t key) { return h->unit(key); }, "shared");
        });

    Rng indep_rng = master.split(2000 + t);
    PipelineStats indep = simulate_pipeline(
        w, params.num_switches, [&](std::size_t s) {
          return std::make_unique<RandPr>(indep_rng.split(s));
        });
    shared_total += static_cast<double>(shared.packets_delivered);
    indep_total += static_cast<double>(indep.packets_delivered);
  }
  EXPECT_GT(shared_total, indep_total);
}

}  // namespace
}  // namespace osp
