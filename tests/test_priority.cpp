// Tests for the R_w priority distribution (Section 3.1): CDF correctness,
// log-space key ordering, and the basic win-probability identity that
// Lemma 1 generalizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/priority.hpp"
#include "stats/summary.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(RwCdf, Endpoints) {
  EXPECT_DOUBLE_EQ(rw_cdf(-0.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(rw_cdf(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(rw_cdf(1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(rw_cdf(2.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(rw_cdf(0.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(rw_cdf(0.5, 2.0), 0.25);
}

TEST(SampleRw, RequiresPositiveWeight) {
  Rng rng(1);
  EXPECT_THROW(sample_rw(0.0, rng), RequireError);
  EXPECT_THROW(sample_rw(-1.0, rng), RequireError);
}

// Property sweep: for each weight w, samples must pass a KS test against
// the CDF x^w, and the sample mean must match E[X] = w/(w+1).
class RwDistribution : public ::testing::TestWithParam<double> {};

TEST_P(RwDistribution, KsAgainstCdf) {
  const double w = GetParam();
  Rng rng(static_cast<std::uint64_t>(w * 1000) + 17);
  std::vector<double> xs;
  const int n = 20000;
  for (int i = 0; i < n; ++i) xs.push_back(sample_rw(w, rng));
  EXPECT_LT(ks_distance(std::move(xs), rw_cdf, w), 0.02) << "w=" << w;
}

TEST_P(RwDistribution, MeanMatches) {
  const double w = GetParam();
  Rng rng(static_cast<std::uint64_t>(w * 977) + 3);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(sample_rw(w, rng));
  EXPECT_NEAR(s.mean(), w / (w + 1.0), 0.01) << "w=" << w;
}

INSTANTIATE_TEST_SUITE_P(Weights, RwDistribution,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 3.0, 5.0,
                                           10.0, 50.0));

TEST(RwKey, OrderMatchesRawSamples) {
  // Drawing keys from the same uniforms as raw samples must preserve
  // order for any weights.
  Rng rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    double u1 = rng.uniform_open(), u2 = rng.uniform_open();
    double w1 = 0.1 + rng.uniform() * 20, w2 = 0.1 + rng.uniform() * 20;
    double raw1 = std::pow(u1, 1.0 / w1), raw2 = std::pow(u2, 1.0 / w2);
    PriorityKey k1 = rw_key_from_uniform(u1, w1, 0);
    PriorityKey k2 = rw_key_from_uniform(u2, w2, 1);
    if (std::abs(raw1 - raw2) < 1e-12) continue;  // too close to compare
    EXPECT_EQ(raw1 < raw2, k1 < k2) << "u1=" << u1 << " w1=" << w1;
  }
}

TEST(RwKey, StableForHugeWeights) {
  // Raw samples saturate to 1.0 at large w; keys must keep resolving.
  Rng rng(7);
  PriorityKey a = rw_key_from_uniform(0.5, 1e9, 0);
  PriorityKey b = rw_key_from_uniform(0.4, 1e9, 1);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(std::isfinite(a.key));
  EXPECT_NE(a.key, b.key);
}

TEST(RwKey, TieBreakByTieField) {
  PriorityKey a{-1.0, 0}, b{-1.0, 1};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a == b);
}

TEST(RwKey, RejectsBoundaryUniform) {
  EXPECT_THROW(rw_key_from_uniform(0.0, 1.0, 0), RequireError);
  EXPECT_THROW(rw_key_from_uniform(1.0, 1.0, 0), RequireError);
}

TEST(RwWinProbability, ProportionalToWeight) {
  // Core of Lemma 1 for two sets: Pr[r(S1) > r(S2)] = w1/(w1+w2).
  Rng rng(19);
  for (auto [w1, w2] : {std::pair{1.0, 1.0}, {2.0, 1.0}, {5.0, 3.0},
                        {10.0, 1.0}, {0.5, 2.0}}) {
    int wins = 0;
    const int trials = 40000;
    for (int i = 0; i < trials; ++i)
      if (sample_rw_key(w2, rng) < sample_rw_key(w1, rng)) ++wins;
    EXPECT_NEAR(static_cast<double>(wins) / trials, w1 / (w1 + w2), 0.01)
        << "w1=" << w1 << " w2=" << w2;
  }
}

TEST(QuantizedKeyRank, MonotoneAndCollapsesSignedZero) {
  // The block kernel's guarantee: strict rank order implies strict key
  // order (never the reverse of it), and equal keys share a rank.
  Rng rng(0x9a41);
  std::vector<double> keys;
  for (int i = 0; i < 2000; ++i)
    keys.push_back(sample_rw_key(0.25 + 5 * rng.uniform(), rng).key);
  keys.push_back(0.0);
  keys.push_back(-0.0);
  keys.push_back(-1e300);
  keys.push_back(-1e-300);
  for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
    const double a = keys[i], b = keys[i + 1];
    const std::uint32_t ra = quantized_key_rank(a);
    const std::uint32_t rb = quantized_key_rank(b);
    if (a == b) {
      EXPECT_EQ(ra, rb) << a << " vs " << b;
    }
    if (ra > rb) {
      EXPECT_GT(a, b);
    }
    if (ra < rb) {
      EXPECT_LT(a, b);
    }
  }
  EXPECT_EQ(quantized_key_rank(0.0), quantized_key_rank(-0.0));
}

TEST(RwWinProbability, MaxOfUniformIdentity) {
  // R_n equals the max of n uniforms: the winner among one R_3 draw and
  // three R_1 draws is the R_3 set half the time.
  Rng rng(23);
  int wins = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    PriorityKey big = sample_rw_key(3.0, rng);
    PriorityKey best{-1e300, 0};
    for (int j = 0; j < 3; ++j) best = std::max(best, sample_rw_key(1.0, rng));
    if (best < big) ++wins;
  }
  EXPECT_NEAR(static_cast<double>(wins) / trials, 0.5, 0.01);
}

}  // namespace
}  // namespace osp
