// Tests for the general packing extension (open problem 1).
#include <gtest/gtest.h>

#include "algos/general_lp.hpp"
#include "core/general.hpp"
#include "stats/summary.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// Random general instance: m sets, n elements; each element has capacity
// in [1, cap_max] and each set demands 1..d_max units of each of its k
// random elements.
GeneralInstance random_general(std::size_t m, std::size_t n, std::size_t k,
                               std::uint32_t cap_max, std::uint32_t d_max,
                               Rng& rng) {
  GeneralInstanceBuilder b;
  std::vector<std::vector<UnitDemand>> per_element(n);
  for (std::size_t s = 0; s < m; ++s) {
    b.add_set(1.0 + rng.uniform() * 4);
    std::vector<std::size_t> slots;
    while (slots.size() < k) {
      std::size_t v = rng.below(n);
      if (std::find(slots.begin(), slots.end(), v) == slots.end())
        slots.push_back(v);
    }
    for (std::size_t u : slots)
      per_element[u].push_back(UnitDemand{
          static_cast<SetId>(s),
          static_cast<std::uint32_t>(rng.range(1, d_max))});
  }
  for (std::size_t u = 0; u < n; ++u) {
    if (per_element[u].empty()) continue;
    b.add_element(per_element[u],
                  static_cast<std::uint32_t>(rng.range(1, cap_max)));
  }
  return b.build();
}

TEST(GeneralBuilder, BasicShapeAndStats) {
  GeneralInstanceBuilder b;
  b.add_set(2.0);
  b.add_set(1.0);
  b.add_element({{0, 3}, {1, 1}}, 4);
  b.add_element({{0, 2}}, 2);
  GeneralInstance inst = b.build();
  EXPECT_EQ(inst.num_sets(), 2u);
  EXPECT_EQ(inst.num_elements(), 2u);
  EXPECT_EQ(inst.appearances(0), 2u);
  EXPECT_EQ(inst.appearances(1), 1u);
  GeneralStats st = inst.stats();
  EXPECT_EQ(st.k_max, 2u);
  EXPECT_DOUBLE_EQ(st.nu_max, 1.0);  // (3+1)/4 and 2/2
  EXPECT_DOUBLE_EQ(st.total_weight, 3.0);
}

TEST(GeneralBuilder, Validation) {
  GeneralInstanceBuilder b;
  b.add_set();
  EXPECT_THROW(b.add_element({{5, 1}}), RequireError);        // unknown set
  EXPECT_THROW(b.add_element({{0, 0}}), RequireError);        // zero units
  EXPECT_THROW(b.add_element({{0, 1}, {0, 2}}), RequireError);  // duplicate
  EXPECT_THROW(b.add_element({{0, 1}}, 0), RequireError);     // capacity 0
}

TEST(GeneralPlay, UnitDemandsReduceToOsp) {
  // With all demands = 1 the model is exactly osp: a capacity-2 element
  // lets two sets through.
  GeneralInstanceBuilder b;
  b.add_set();
  b.add_set();
  b.add_set();
  b.add_element({{0, 1}, {1, 1}, {2, 1}}, 2);
  GeneralInstance inst = b.build();
  GeneralFirstFit alg;
  GeneralOutcome out = play_general(inst, alg);
  EXPECT_EQ(out.completed, (std::vector<SetId>{0, 1}));
}

TEST(GeneralPlay, LargeDemandBlocksSmallCapacity) {
  // Set 0 demands 5 of a capacity-3 element: it can never complete;
  // first-fit must skip it and grant set 1.
  GeneralInstanceBuilder b;
  b.add_set();
  b.add_set();
  b.add_element({{0, 5}, {1, 2}}, 3);
  GeneralInstance inst = b.build();
  GeneralFirstFit alg;
  GeneralOutcome out = play_general(inst, alg);
  EXPECT_EQ(out.completed, (std::vector<SetId>{1}));
}

TEST(GeneralPlay, SkippingFillsCapacity) {
  // Priority order 0 (units 3), 1 (units 3), 2 (units 1); capacity 4:
  // grants 0, skips 1 (doesn't fit), grants 2.
  GeneralInstanceBuilder b;
  b.add_set(3.0);
  b.add_set(2.0);
  b.add_set(1.0);
  b.add_element({{0, 3}, {1, 3}, {2, 1}}, 4);
  GeneralInstance inst = b.build();
  GeneralGreedyWeight alg;
  GeneralOutcome out = play_general(inst, alg);
  EXPECT_EQ(out.completed, (std::vector<SetId>{0, 2}));
}

TEST(GeneralRandPrAlg, WinProbabilityProportionalToWeight) {
  // Two sets, one shared element of capacity 1, weights 3 and 1:
  // Lemma 1's two-set case carries over — set 0 wins 3/4 of runs.
  GeneralInstanceBuilder b;
  b.add_set(3.0);
  b.add_set(1.0);
  b.add_element({{0, 1}, {1, 1}}, 1);
  GeneralInstance inst = b.build();
  Rng master(1);
  int wins = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    GeneralRandPr alg(master.split(t));
    GeneralOutcome out = play_general(inst, alg);
    if (!out.completed.empty() && out.completed[0] == 0) ++wins;
  }
  EXPECT_NEAR(static_cast<double>(wins) / trials, 0.75, 0.01);
}

TEST(GeneralFeasible, ChecksUnits) {
  GeneralInstanceBuilder b;
  b.add_set();
  b.add_set();
  b.add_element({{0, 2}, {1, 2}}, 3);
  GeneralInstance inst = b.build();
  EXPECT_TRUE(general_feasible(inst, {0}));
  EXPECT_TRUE(general_feasible(inst, {1}));
  EXPECT_FALSE(general_feasible(inst, {0, 1}));  // 4 > 3
  EXPECT_FALSE(general_feasible(inst, {0, 0}));  // duplicate
}

TEST(GeneralExact, MatchesBruteForce) {
  Rng master(2);
  for (int trial = 0; trial < 15; ++trial) {
    Rng gen = master.split(trial);
    GeneralInstance inst = random_general(9, 10, 2, 4, 3, gen);
    GeneralOfflineResult res = general_exact_optimum(inst);
    ASSERT_TRUE(res.exact);
    // Brute force over all subsets.
    Weight best = 0;
    for (std::uint64_t mask = 0; mask < (1ULL << inst.num_sets()); ++mask) {
      std::vector<SetId> chosen;
      for (std::size_t s = 0; s < inst.num_sets(); ++s)
        if (mask & (1ULL << s)) chosen.push_back(static_cast<SetId>(s));
      if (!general_feasible(inst, chosen)) continue;
      Weight w = 0;
      for (SetId s : chosen) w += inst.weight(s);
      best = std::max(best, w);
    }
    EXPECT_NEAR(res.value, best, 1e-9);
    EXPECT_TRUE(general_feasible(inst, res.chosen));
  }
}

TEST(GeneralLp, UpperBoundsExact) {
  Rng master(3);
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen = master.split(trial);
    GeneralInstance inst = random_general(10, 12, 3, 4, 3, gen);
    GeneralOfflineResult res = general_exact_optimum(inst);
    ASSERT_TRUE(res.exact);
    EXPECT_GE(general_lp_upper_bound(inst) + 1e-6, res.value);
  }
}

TEST(GeneralRandPrAlg, CompetitiveOnRandomFamilies) {
  // Empirical analog of Corollary 6 in the general model: the ratio stays
  // within kmax * sqrt(nu_max) on moderate random instances.
  Rng master(4);
  for (int trial = 0; trial < 5; ++trial) {
    Rng gen = master.split(trial);
    GeneralInstance inst = random_general(14, 14, 3, 5, 3, gen);
    GeneralStats st = inst.stats();
    GeneralOfflineResult opt = general_exact_optimum(inst);
    ASSERT_TRUE(opt.exact);
    if (opt.value <= 0) continue;

    RunningStat alg;
    for (int t = 0; t < 400; ++t) {
      GeneralRandPr a(master.split(1000 + t));
      alg.add(play_general(inst, a).benefit);
    }
    double bound = static_cast<double>(st.k_max) * std::sqrt(st.nu_max);
    EXPECT_GE(alg.mean() + alg.ci95_halfwidth(), opt.value / bound);
  }
}

TEST(GeneralPlay, EngineRejectsOverCapacityAlgorithms) {
  class Cheater final : public GeneralAlgorithm {
   public:
    std::string name() const override { return "cheater"; }
    void start(const std::vector<SetMeta>&) override {}
    std::vector<SetId> on_element(ElementId,
                                  const GeneralArrival& a) override {
      std::vector<SetId> all;
      for (const UnitDemand& d : a.demands) all.push_back(d.set);
      return all;  // grants everyone, ignoring capacity
    }
  };
  GeneralInstanceBuilder b;
  b.add_set();
  b.add_set();
  b.add_element({{0, 2}, {1, 2}}, 3);
  GeneralInstance inst = b.build();
  Cheater cheat;
  EXPECT_THROW(play_general(inst, cheat), RequireError);
}

}  // namespace
}  // namespace osp
