// Tests for the workload generators: parameter conformance and the
// structural guarantees each family promises.
#include <gtest/gtest.h>

#include <set>

#include "gen/multihop.hpp"
#include "gen/random_instances.hpp"
#include "gen/schedule.hpp"
#include "gen/traffic.hpp"
#include "gen/video.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(WeightModels, RangesRespected) {
  Rng rng(1);
  for (std::size_t r = 0; r < 200; ++r) {
    EXPECT_DOUBLE_EQ(draw_weight(WeightModel::unit(), r, rng), 1.0);
    double u = draw_weight(WeightModel::uniform(2, 5), r, rng);
    EXPECT_GE(u, 2.0);
    EXPECT_LE(u, 5.0);
    EXPECT_GE(draw_weight(WeightModel::exponential(1.0), r, rng), 1.0);
  }
}

TEST(WeightModels, ZipfDecreasesWithRank) {
  Rng rng(2);
  double w0 = draw_weight(WeightModel::zipf(1.2), 0, rng);
  double w9 = draw_weight(WeightModel::zipf(1.2), 9, rng);
  EXPECT_GT(w0, w9);
}

TEST(RandomInstance, UniformSizeK) {
  Rng rng(3);
  Instance inst = random_instance(30, 50, 4, WeightModel::unit(), rng);
  EXPECT_EQ(inst.num_sets(), 30u);
  for (SetId s = 0; s < inst.num_sets(); ++s)
    EXPECT_EQ(inst.set_size(s), 4u);
  EXPECT_LE(inst.num_elements(), 50u);
  EXPECT_TRUE(inst.stats().uniform_size);
}

TEST(RandomInstance, DropsEmptySlots) {
  Rng rng(4);
  // 2 sets of size 2 over 100 slots: at most 4 distinct elements remain.
  Instance inst = random_instance(2, 100, 2, WeightModel::unit(), rng);
  EXPECT_LE(inst.num_elements(), 4u);
  for (ElementId u = 0; u < inst.num_elements(); ++u)
    EXPECT_GE(inst.load(u), 1u);
}

TEST(RandomInstance, RejectsKLargerThanN) {
  Rng rng(5);
  EXPECT_THROW(random_instance(3, 4, 5, WeightModel::unit(), rng),
               RequireError);
}

TEST(RandomCapacityInstance, CapacitiesInRange) {
  Rng rng(6);
  Instance inst =
      random_capacity_instance(20, 30, 3, 4, WeightModel::unit(), rng);
  bool saw_above_one = false;
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    EXPECT_GE(inst.arrival(u).capacity, 1u);
    EXPECT_LE(inst.arrival(u).capacity, 4u);
    if (inst.arrival(u).capacity > 1) saw_above_one = true;
  }
  EXPECT_TRUE(saw_above_one);
}

TEST(FixedLoadInstance, UniformLoadAndFullCoverage) {
  Rng rng(7);
  Instance inst = fixed_load_instance(20, 40, 4, WeightModel::unit(), rng);
  EXPECT_EQ(inst.num_elements(), 40u);
  for (ElementId u = 0; u < inst.num_elements(); ++u)
    EXPECT_EQ(inst.load(u), 4u);
  for (SetId s = 0; s < inst.num_sets(); ++s)
    EXPECT_GE(inst.set_size(s), 1u) << "set " << s << " uncovered";
  EXPECT_TRUE(inst.stats().uniform_load);
}

TEST(FixedLoadInstance, ParameterValidation) {
  Rng rng(8);
  EXPECT_THROW(fixed_load_instance(10, 40, 11, WeightModel::unit(), rng),
               RequireError);  // sigma > m
  EXPECT_THROW(fixed_load_instance(100, 3, 4, WeightModel::unit(), rng),
               RequireError);  // cannot cover
}

TEST(RegularInstance, BiRegular) {
  Rng rng(9);
  Instance inst = regular_instance(24, 3, 4, WeightModel::unit(), rng);
  EXPECT_EQ(inst.num_sets(), 24u);
  EXPECT_EQ(inst.num_elements(), 24u * 3 / 4);
  for (SetId s = 0; s < inst.num_sets(); ++s)
    EXPECT_EQ(inst.set_size(s), 3u);
  for (ElementId u = 0; u < inst.num_elements(); ++u)
    EXPECT_EQ(inst.load(u), 4u);
  InstanceStats st = inst.stats();
  EXPECT_TRUE(st.uniform_size);
  EXPECT_TRUE(st.uniform_load);
}

TEST(RegularInstance, ManyParameterCombos) {
  Rng rng(10);
  for (auto [m, k, sigma] :
       {std::tuple{10, 2, 4}, {12, 3, 6}, {16, 4, 8}, {20, 5, 10},
        {8, 2, 2}, {30, 3, 5}}) {
    Instance inst = regular_instance(m, k, sigma, WeightModel::unit(), rng);
    InstanceStats st = inst.stats();
    EXPECT_TRUE(st.uniform_size && st.uniform_load)
        << "m=" << m << " k=" << k << " s=" << sigma;
  }
}

TEST(RegularInstance, DivisibilityEnforced) {
  Rng rng(11);
  EXPECT_THROW(regular_instance(10, 3, 4, WeightModel::unit(), rng),
               RequireError);
}

TEST(FrameSchedule, ReductionMatchesPaper) {
  FrameSchedule sched;
  sched.frames.push_back({2.0, {0, 1}});
  sched.frames.push_back({1.0, {1, 2}});
  sched.horizon = 4;  // slot 3 empty
  Instance inst = sched.to_instance(1);
  EXPECT_EQ(inst.num_sets(), 2u);
  EXPECT_EQ(inst.num_elements(), 3u);  // empty slot dropped
  EXPECT_EQ(inst.arrival(1).parents, (std::vector<SetId>{0, 1}));
  EXPECT_DOUBLE_EQ(inst.weight(0), 2.0);
}

TEST(FrameSchedule, BurstProfile) {
  FrameSchedule sched;
  sched.frames.push_back({1.0, {0, 1}});
  sched.frames.push_back({1.0, {1}});
  sched.horizon = 2;
  EXPECT_EQ(sched.burst_profile(), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(sched.max_burst(), 2u);
  EXPECT_EQ(sched.total_packets(), 3u);
}

TEST(FrameSchedule, ValidateRejectsBadSlots) {
  FrameSchedule sched;
  sched.frames.push_back({1.0, {3, 1}});  // not sorted
  sched.horizon = 5;
  EXPECT_THROW(sched.validate(), RequireError);
  sched.frames[0].packet_slots = {1, 9};  // beyond horizon
  EXPECT_THROW(sched.validate(), RequireError);
}

TEST(Traffic, PoissonMeanRoughlyLambda) {
  Rng rng(12);
  PoissonBursts p(3.0);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(p.next(rng));
  EXPECT_NEAR(total / n, 3.0, 0.1);
}

TEST(Traffic, ConstantIsConstant) {
  Rng rng(13);
  ConstantBursts c(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c.next(rng), 4u);
}

TEST(Traffic, OnOffProducesBothRegimes) {
  Rng rng(14);
  OnOffBursts oo(0.1, 0.1, 6.0, 0.2);
  std::size_t zeros = 0, bigs = 0;
  for (int i = 0; i < 5000; ++i) {
    std::size_t b = oo.next(rng);
    if (b == 0) ++zeros;
    if (b >= 4) ++bigs;
  }
  EXPECT_GT(zeros, 100u);
  EXPECT_GT(bigs, 100u);
}

TEST(Traffic, BurstyScheduleShape) {
  Rng rng(15);
  PoissonBursts p(2.0);
  FrameSchedule sched = bursty_schedule(p, 50, 3, rng);
  EXPECT_EQ(sched.frames.size(), 50u);
  for (const Frame& f : sched.frames) {
    EXPECT_EQ(f.packet_slots.size(), 3u);
    // Packets on consecutive slots.
    EXPECT_EQ(f.packet_slots[2], f.packet_slots[0] + 2);
  }
  EXPECT_NO_THROW(sched.validate());
}

TEST(Video, WorkloadShape) {
  Rng rng(16);
  VideoParams params;
  VideoWorkload vw = make_video_workload(params, rng);
  EXPECT_EQ(vw.schedule.frames.size(),
            params.num_streams * params.frames_per_stream);
  EXPECT_EQ(vw.kinds.size(), vw.schedule.frames.size());
  // I frames have the declared packet count and weight.
  for (std::size_t f = 0; f < vw.schedule.frames.size(); ++f) {
    if (vw.kinds[f] == FrameKind::kIntra) {
      EXPECT_EQ(vw.schedule.frames[f].packet_slots.size(),
                params.i_frame_packets);
      EXPECT_DOUBLE_EQ(vw.schedule.frames[f].weight, params.i_frame_weight);
    } else {
      EXPECT_EQ(vw.schedule.frames[f].packet_slots.size(),
                params.p_frame_packets);
    }
  }
}

TEST(Video, GopStructure) {
  Rng rng(17);
  VideoParams params;
  params.num_streams = 1;
  params.frames_per_stream = 24;
  params.gop_length = 12;
  VideoWorkload vw = make_video_workload(params, rng);
  int intras = 0;
  for (auto kind : vw.kinds)
    if (kind == FrameKind::kIntra) ++intras;
  EXPECT_EQ(intras, 2);  // frames 0 and 12
  EXPECT_EQ(vw.kinds[0], FrameKind::kIntra);
  EXPECT_EQ(vw.kinds[12], FrameKind::kIntra);
  EXPECT_EQ(vw.kinds[1], FrameKind::kPredicted);
}

TEST(Video, ReductionIsPlayable) {
  Rng rng(18);
  VideoParams params;
  params.num_streams = 4;
  params.frames_per_stream = 10;
  VideoWorkload vw = make_video_workload(params, rng);
  Instance inst = vw.schedule.to_instance(1);
  EXPECT_EQ(inst.num_sets(), vw.schedule.frames.size());
  EXPECT_GT(inst.stats().sigma_max, 1u);  // streams actually collide
}

TEST(MultiHop, RouteGeometry) {
  Rng rng(19);
  MultiHopParams params;
  params.num_switches = 5;
  params.num_packets = 60;
  params.min_route = 2;
  params.max_route = 5;
  MultiHopWorkload w = make_multihop_workload(params, rng);
  EXPECT_EQ(w.instance.num_sets(), 60u);
  for (std::size_t p = 0; p < 60; ++p) {
    EXPECT_GE(w.route_len[p], 2u);
    EXPECT_LE(w.route_len[p], 5u);
    EXPECT_LE(w.entry_hop[p] + w.route_len[p], params.num_switches);
    EXPECT_EQ(w.instance.set_size(static_cast<SetId>(p)), w.route_len[p]);
  }
}

TEST(MultiHop, ElementsAreSharedLinkSlots) {
  Rng rng(20);
  MultiHopParams params;
  params.num_packets = 100;
  params.horizon = 10;  // force heavy contention
  MultiHopWorkload w = make_multihop_workload(params, rng);
  InstanceStats st = w.instance.stats();
  EXPECT_GT(st.sigma_max, 1u);
  // Total memberships equal total hop traversals.
  std::size_t hops = 0;
  for (auto len : w.route_len) hops += len;
  std::size_t memberships = 0;
  for (ElementId u = 0; u < w.instance.num_elements(); ++u)
    memberships += w.instance.load(u);
  EXPECT_EQ(memberships, hops);
}

TEST(MultiHop, WeightPerHop) {
  Rng rng(21);
  MultiHopParams params;
  params.weight_per_hop = 0.5;
  params.min_route = 2;
  params.max_route = 4;
  MultiHopWorkload w = make_multihop_workload(params, rng);
  for (std::size_t p = 0; p < w.instance.num_sets(); ++p)
    EXPECT_DOUBLE_EQ(w.instance.weight(static_cast<SetId>(p)),
                     1.0 + 0.5 * static_cast<double>(w.route_len[p]));
}

}  // namespace
}  // namespace osp
