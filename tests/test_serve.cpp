// Tests for the sustained multi-link serving runtime (net/serve.hpp):
// the LatencyHistogram percentile estimator against a sorted-vector
// nearest-rank oracle, multi-worker runs against the serial reference
// (stats + trace identity — the equivalence oracle of the determinism
// contract), the links=1 degenerate case against the single-link
// buffered router, the work-conservation trace invariant, starvation
// counters, and the window-ledger conservation laws.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "gen/video.hpp"
#include "net/router_sim.hpp"
#include "net/serve.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// -------------------------------------------------------------------
// LatencyHistogram

/// Nearest-rank percentile over an explicit sample list — the textbook
/// definition the histogram must reproduce.
std::uint64_t naive_percentile(std::vector<std::uint64_t> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  return samples[rank - 1];
}

TEST(LatencyHistogram, MatchesSortedNearestRank) {
  Rng rng(7);
  for (std::size_t trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.below(200);
    LatencyHistogram h;
    std::vector<std::uint64_t> samples;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t latency = rng.below(40);
      samples.push_back(latency);
      h.add(latency);
    }
    EXPECT_EQ(h.count(), samples.size());
    for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0})
      EXPECT_EQ(h.percentile(p), naive_percentile(samples, p))
          << "trial " << trial << " p=" << p << " n=" << n;
  }
}

TEST(LatencyHistogram, EmptyAndClampedEdges) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(50), 0u);  // no samples -> 0 by contract
  h.add(5);
  EXPECT_EQ(h.percentile(-10), 5u);   // p clamps to [0, 100]
  EXPECT_EQ(h.percentile(1000), 5u);
  EXPECT_EQ(h.max_latency(), 5u);
}

TEST(LatencyHistogram, MergeEqualsCombinedStream) {
  Rng rng(11);
  LatencyHistogram a, b, combined;
  for (std::size_t i = 0; i < 300; ++i) {
    const std::uint64_t latency = rng.below(25);
    combined.add(latency);
    (i % 3 == 0 ? a : b).add(latency);
  }
  a.merge(b);
  EXPECT_EQ(a, combined);
  EXPECT_EQ(a.count(), combined.count());
  for (double p : {10.0, 50.0, 95.0, 99.0})
    EXPECT_EQ(a.percentile(p), combined.percentile(p));
  b.add(1);  // b diverged; inequality must notice
  EXPECT_NE(b, combined);
}

// -------------------------------------------------------------------
// Multi-worker equivalence against the serial reference

VideoWorkload small_workload(Rng& rng, std::size_t streams,
                             std::size_t frames) {
  VideoParams vp;
  vp.num_streams = streams;
  vp.frames_per_stream = frames;
  return make_video_workload(vp, rng);
}

TEST(ServeSustained, WorkerCountsMatchSerialReference) {
  Rng master(101);
  for (std::size_t trial = 0; trial < 10; ++trial) {
    Rng trial_rng = master.split(trial);
    Rng wl_rng = trial_rng.split(0);
    const Rng rk_rng = trial_rng.split(1);
    const VideoWorkload vw =
        small_workload(wl_rng, 2 + trial_rng.split(2).below(6),
                       4 + trial_rng.split(3).below(8));

    ServeSpec spec;
    spec.links = 1 + trial_rng.split(4).below(4);
    spec.service_rate =
        static_cast<Capacity>(1 + trial_rng.split(5).below(4));
    spec.buffer = trial_rng.split(6).below(24);
    spec.work_conserving = trial % 2 == 0;
    spec.window = 8 + trial_rng.split(7).below(24);

    RandPrRanker rand_pr{rk_rng};
    FifoRanker fifo;
    WeightRanker by_weight;
    FrameRanker* rankers[] = {&rand_pr, &fifo, &by_weight};
    FrameRanker& ranker = *rankers[trial % 3];

    rand_pr.reseed(rk_rng);
    ServeTrace ref_trace;
    const SustainedStats ref = serve_sustained_reference(
        vw.schedule, vw.stream_of, ranker, spec, &ref_trace);

    for (std::size_t workers : {1u, 2u, 4u}) {
      spec.workers = workers;
      rand_pr.reseed(rk_rng);
      ServeTrace trace;
      const SustainedStats st =
          serve_sustained(vw.schedule, vw.stream_of, ranker, spec, &trace);
      EXPECT_TRUE(st == ref) << "trial " << trial << " ranker "
                             << ranker.name() << " workers " << workers;
      EXPECT_EQ(trace.served.size(), ref_trace.served.size());
      EXPECT_TRUE(std::equal(trace.served.begin(), trace.served.end(),
                             ref_trace.served.begin(),
                             ref_trace.served.end()))
          << "trace diverged: trial " << trial << " workers " << workers;
      EXPECT_EQ(trace.slot_backlog, ref_trace.slot_backlog);
      EXPECT_EQ(trace.slot_served, ref_trace.slot_served);
    }
  }
}

TEST(ServeSustained, SingleLinkMatchesBufferedRouter) {
  Rng master(202);
  for (std::size_t trial = 0; trial < 6; ++trial) {
    Rng trial_rng = master.split(trial);
    Rng wl_rng = trial_rng.split(0);
    const Rng rk_rng = trial_rng.split(1);
    const VideoWorkload vw = small_workload(wl_rng, 4, 8);

    BufferedRouterParams rp;
    rp.service_rate = static_cast<Capacity>(1 + trial % 3);
    rp.buffer_size = 4 * trial;
    rp.drop_dead_frames = true;

    RandPrRanker ranker{rk_rng};
    RouterTrace router_trace;
    const RouterStats router = simulate_buffered_router(
        vw.schedule, ranker, rp, nullptr, &router_trace);

    ServeSpec spec;
    spec.links = 1;
    spec.service_rate = rp.service_rate;
    spec.buffer = rp.buffer_size;
    ranker.reseed(rk_rng);
    ServeTrace trace;
    const SustainedStats st =
        serve_sustained(vw.schedule, vw.stream_of, ranker, spec, &trace);

    // With one link the runtime degenerates to the buffered router:
    // counters and the serve decisions must agree packet for packet.
    EXPECT_EQ(st.router.packets_arrived, router.packets_arrived);
    EXPECT_EQ(st.router.packets_served, router.packets_served);
    EXPECT_EQ(st.router.packets_dropped, router.packets_dropped);
    EXPECT_EQ(st.router.frames_total, router.frames_total);
    EXPECT_EQ(st.router.frames_delivered, router.frames_delivered);
    EXPECT_DOUBLE_EQ(st.router.value_total, router.value_total);
    EXPECT_DOUBLE_EQ(st.router.value_delivered, router.value_delivered);

    ASSERT_EQ(trace.served.size(), router_trace.served.size());
    for (std::size_t i = 0; i < trace.served.size(); ++i) {
      EXPECT_EQ(trace.served[i].slot, router_trace.served[i].slot);
      EXPECT_EQ(trace.served[i].frame, router_trace.served[i].frame);
      EXPECT_EQ(trace.served[i].seq, router_trace.served[i].seq);
      EXPECT_EQ(trace.served[i].link, 0u);
    }
  }
}

// -------------------------------------------------------------------
// Invariants

TEST(ServeSustained, WorkConservationInvariantHolds) {
  Rng rng(303);
  Rng wl_rng = rng.split(0);
  const VideoWorkload vw = small_workload(wl_rng, 6, 10);
  ServeSpec spec;
  spec.links = 3;
  spec.service_rate = 2;
  spec.buffer = 16;
  spec.work_conserving = true;
  FifoRanker ranker;
  ServeTrace trace;
  serve_sustained(vw.schedule, vw.stream_of, ranker, spec, &trace);

  ASSERT_EQ(trace.slot_backlog.size(), vw.schedule.horizon);
  ASSERT_EQ(trace.slot_served.size(), vw.schedule.horizon);
  const std::size_t line_rate = spec.links * spec.service_rate;
  for (std::size_t t = 0; t < vw.schedule.horizon; ++t)
    EXPECT_EQ(trace.slot_served[t],
              std::min(line_rate, trace.slot_backlog[t]))
        << "slot " << t;

  // Without lending, a slot can serve less than the line rate even with
  // backlog standing — but never more, and never more than the backlog.
  spec.work_conserving = false;
  ServeTrace plain;
  serve_sustained(vw.schedule, vw.stream_of, ranker, spec, &plain);
  for (std::size_t t = 0; t < vw.schedule.horizon; ++t) {
    EXPECT_LE(plain.slot_served[t], line_rate);
    EXPECT_LE(plain.slot_served[t], plain.slot_backlog[t]);
  }
}

TEST(ServeSustained, NoStarvationWhenCapacityCoversEveryBurst) {
  Rng rng(404);
  Rng wl_rng = rng.split(0);
  const VideoWorkload vw = small_workload(wl_rng, 4, 6);
  ServeSpec spec;
  spec.links = 2;
  // Per-link rate at least the whole workload's worst burst: every packet
  // is served the slot it arrives, so no stream ever waits.
  spec.service_rate = static_cast<Capacity>(vw.schedule.max_burst());
  spec.buffer = vw.schedule.total_packets();
  FifoRanker ranker;
  const SustainedStats st =
      serve_sustained(vw.schedule, vw.stream_of, ranker, spec);
  EXPECT_EQ(st.streams_starved(), 0u);
  EXPECT_EQ(st.starved_slots_max(), 0u);
  EXPECT_EQ(st.router.packets_served, st.router.packets_arrived);
  EXPECT_DOUBLE_EQ(st.router.goodput(), 1.0);
}

TEST(ServeSustained, WeakStreamStarvesUnderByWeight) {
  // Two streams on one link, one heavy frame and one light frame per
  // slot pair, rate 1: by-weight always serves the heavy stream first,
  // so the light stream sits with live backlog — the starvation counter
  // must see it.
  FrameSchedule schedule;
  schedule.horizon = 8;
  std::vector<std::size_t> stream_of;
  for (std::size_t t = 0; t < 4; ++t) {
    Frame heavy;
    heavy.weight = 4.0;
    heavy.packet_slots = {2 * t, 2 * t + 1};
    schedule.frames.push_back(heavy);
    stream_of.push_back(0);
    Frame light;
    light.weight = 1.0;
    light.packet_slots = {2 * t, 2 * t + 1};
    schedule.frames.push_back(light);
    stream_of.push_back(1);
  }
  ServeSpec spec;
  spec.links = 1;
  spec.service_rate = 1;
  spec.buffer = 64;  // roomy: starvation, not eviction, is the story
  WeightRanker ranker;
  const SustainedStats st =
      serve_sustained(schedule, stream_of, ranker, spec);
  ASSERT_EQ(st.starved_slots.size(), 2u);
  EXPECT_GT(st.starved_slots[1], st.starved_slots[0]);
  EXPECT_GE(st.streams_starved(), 1u);
  EXPECT_EQ(st.starved_slots_max(), st.starved_slots[1]);
}

TEST(ServeSustained, WindowLedgerConservesValue) {
  Rng rng(505);
  Rng wl_rng = rng.split(0);
  const VideoWorkload vw = small_workload(wl_rng, 5, 9);
  for (std::size_t window : {4u, 16u, 1024u}) {
    ServeSpec spec;
    spec.links = 2;
    spec.service_rate = 2;
    spec.buffer = 8;
    spec.window = window;
    FifoRanker ranker;
    const SustainedStats st =
        serve_sustained(vw.schedule, vw.stream_of, ranker, spec);
    const std::size_t windows =
        (vw.schedule.horizon + window - 1) / window;
    ASSERT_EQ(st.window_offered.size(), windows);
    ASSERT_EQ(st.window_delivered.size(), windows);
    double offered = 0, delivered = 0;
    for (double v : st.window_offered) offered += v;
    for (double v : st.window_delivered) delivered += v;
    EXPECT_NEAR(offered, st.router.value_total, 1e-9);
    EXPECT_NEAR(delivered, st.router.value_delivered, 1e-9);
    EXPECT_GE(st.window_goodput_mean(), st.window_goodput_min());
    EXPECT_LE(st.window_goodput_min(), st.router.goodput() + 1e-12);
  }
}

// Drop taxonomy: every dropped packet is exactly one of refused / direct
// eviction / cascade write-off / leftover.
TEST(ServeSustained, DropTaxonomyPartitionsDrops) {
  Rng rng(606);
  for (std::size_t trial = 0; trial < 5; ++trial) {
    Rng trial_rng = rng.split(trial);
    Rng wl_rng = trial_rng.split(0);
    const VideoWorkload vw = small_workload(wl_rng, 4 + trial, 8);
    ServeSpec spec;
    spec.links = 1 + trial % 3;
    spec.service_rate = 1;
    spec.buffer = 2 * trial;
    RandPrRanker ranker{trial_rng.split(1)};
    const SustainedStats st =
        serve_sustained(vw.schedule, vw.stream_of, ranker, spec);
    EXPECT_EQ(st.router.packets_dropped,
              st.refused_dead + st.evictions + st.cascade_drops +
                  st.leftover);
    EXPECT_EQ(st.router.packets_arrived,
              st.router.packets_served + st.router.packets_dropped);
    EXPECT_EQ(st.drop_latency.count(), st.evictions);
    EXPECT_EQ(st.serve_latency.count(), st.router.packets_served);
  }
}

}  // namespace
}  // namespace osp
