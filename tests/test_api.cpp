// Tests for the experiment API layer (src/api): the policy registry's
// round-trip and param-syntax error surface, the scenario registry, spec
// compilation, sweep-axis expansion, the key=value config loader, the
// ranker registry's round-trip parity with the hand-built router list,
// the Session measure/grid facade (bit-identical to the historical
// serial loops), and a golden check that JsonSink output passes the
// repository's BENCH_*.json schema validator.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "api/policy_registry.hpp"
#include "api/ranker_registry.hpp"
#include "api/result_sink.hpp"
#include "api/scenario.hpp"
#include "api/session.hpp"
#include "api/shard.hpp"
#include "api/wire.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "gen/random_instances.hpp"
#include "gen/video.hpp"
#include "net/router_sim.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// ---------------------------------------------------------------------
// PolicyRegistry.

TEST(PolicyRegistry, CatalogIsPopulatedBySelfRegistration) {
  // The acceptance bar the CLI's `list` relies on: every entry point sees
  // the full catalog, linked in through the registry's anchor references.
  EXPECT_GE(api::policies().entries().size(), 10u);
  for (const char* expected :
       {"randpr", "randpr:filt", "hashpr", "hashpr:tab", "greedy:first",
        "greedy:srpt", "greedy:density", "round-robin", "uniform-random"})
    EXPECT_NE(api::policies().find(expected), nullptr) << expected;
}

TEST(PolicyRegistry, EveryEntryConstructsAndPlays) {
  // Round-trip: every registered name constructs a working policy and
  // plays a small instance on both engines with identical outcomes.
  Rng gen(7);
  Instance inst = random_instance(10, 14, 3, WeightModel::uniform(1, 5), gen);
  PlayScratch scratch;
  for (const api::PolicyInfo& p : api::policies().entries()) {
    auto alg = p.make(Rng(0xabc));
    ASSERT_NE(alg, nullptr) << p.name;
    EXPECT_FALSE(alg->name().empty()) << p.name;

    auto flat_alg = p.make(Rng(0xabc));
    Outcome plain = play(inst, *alg);
    Outcome flat = play_flat(inst, *flat_alg, scratch);
    EXPECT_GE(plain.benefit, 0.0) << p.name;
    EXPECT_EQ(plain.completed, flat.completed) << p.name;
    EXPECT_DOUBLE_EQ(plain.benefit, flat.benefit) << p.name;
  }
}

TEST(PolicyRegistry, AliasesResolveToTheSameEntry) {
  // Historical CLI spellings and display names keep working.
  struct Pair {
    const char* alias;
    const char* canonical;
  };
  for (const Pair& pr : {Pair{"randpr-filt", "randpr:filt"},
                         Pair{"randPr", "randpr"},
                         Pair{"greedy-first", "greedy:first"},
                         Pair{"greedy-srpt", "greedy:srpt"},
                         Pair{"hashPr/poly8", "hashpr"}}) {
    const api::PolicyInfo* via_alias = api::policies().find(pr.alias);
    ASSERT_NE(via_alias, nullptr) << pr.alias;
    EXPECT_EQ(via_alias, api::policies().find(pr.canonical)) << pr.alias;
  }
}

TEST(PolicyRegistry, UnknownSpecErrorsEnumerateTheCatalog) {
  try {
    api::policies().at("definitely-not-a-policy");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("registered policies"), std::string::npos) << msg;
    // The enumerable list, not a hand-maintained comment block.
    for (const api::PolicyInfo& p : api::policies().entries())
      EXPECT_NE(msg.find(p.name), std::string::npos) << p.name;
  }
}

TEST(PolicyRegistry, UnknownVariantErrorsNameTheFamily) {
  try {
    api::policies().at("randpr:bogus");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("family 'randpr'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("randpr:filt"), std::string::npos) << msg;
  }
  EXPECT_THROW(api::policies().at("greedy:bogus"), RequireError);
  EXPECT_THROW(api::policies().at(""), RequireError);
}

// ---------------------------------------------------------------------
// Scenario registry and spec compilation.

TEST(ScenarioRegistry, CatalogCoversFamiliesAndEngineShapes) {
  EXPECT_GE(api::scenarios().entries().size(), 6u);
  for (const char* expected :
       {"random", "regular", "fixedload", "video", "multihop", "weaklb",
        "lemma9", "engine/ladder", "uniform/corollary7", "uniform/theorem5",
        "uniform/theorem6", "capacity/random", "capacity/uniform",
        "router/unbuffered", "router/buffered", "router/overload"})
    EXPECT_NE(api::scenarios().find(expected), nullptr) << expected;

  // The engine ladder is now one zipped sweep ("engine/ladder"); its
  // expanded cell labels are the BENCH_engine.json row keys and must
  // stay stable.
  auto shapes = api::engine_shapes();
  ASSERT_EQ(shapes.size(), 6u);
  EXPECT_EQ(shapes.front().display_label(), "legacy/64");
  EXPECT_EQ(shapes.front().m, 64u);
  EXPECT_EQ(shapes.back().display_label(), "overload/256k");
  EXPECT_EQ(shapes.back().m, 8192u);
  EXPECT_EQ(shapes.back().n, 262144u);
  EXPECT_EQ(shapes.back().k, 512u);
}

TEST(ScenarioRegistry, EveryScenarioBuildsAnInstance) {
  for (const api::ScenarioSpec& registered : api::scenarios().entries()) {
    api::ScenarioSpec spec = registered;  // specs are value types
    // Clamp the big perf shapes so the sweep stays unit-test sized; the
    // override path is itself part of the API under test.
    spec.m = std::min<std::size_t>(spec.m, 48);
    spec.n = std::min<std::size_t>(spec.n, 96);
    spec.k = std::min<std::size_t>(spec.k, 4);
    spec.streams = std::min<std::size_t>(spec.streams, 4);
    spec.frames = std::min<std::size_t>(spec.frames, 12);
    Rng rng(11);
    Instance inst = api::build_instance(spec, rng);
    EXPECT_GT(inst.num_sets(), 0u) << registered.name;
    EXPECT_GT(inst.num_elements(), 0u) << registered.name;
  }
}

TEST(ScenarioSpec, StringOverridesParseStrictly) {
  api::ScenarioSpec spec = api::scenarios().at("random");
  spec.set("m", "12").set("n", "20").set("k", "2").set("weights", "zipf");
  EXPECT_EQ(spec.m, 12u);
  EXPECT_EQ(spec.n, 20u);
  EXPECT_EQ(spec.k, 2u);
  EXPECT_EQ(spec.weights.kind, WeightModel::Kind::kZipf);

  EXPECT_THROW(spec.set("m", "12x"), RequireError);
  EXPECT_THROW(spec.set("m", "-3"), RequireError);
  EXPECT_THROW(spec.set("m", ""), RequireError);
  EXPECT_THROW(spec.set("weights", "heavy"), RequireError);
  try {
    spec.set("frobnication", "9");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    EXPECT_NE(std::string(e.what()).find("frobnication"),
              std::string::npos);
  }
}

TEST(ScenarioSpec, ParseSizeNamesTheFlag) {
  EXPECT_EQ(api::parse_size("flag --m", "42"), 42u);
  for (const char* bad : {"", "x", "12x", "-5", "1.5"}) {
    try {
      api::parse_size("flag --m", bad);
      FAIL() << "expected RequireError for '" << bad << "'";
    } catch (const RequireError& e) {
      EXPECT_NE(std::string(e.what()).find("--m"), std::string::npos)
          << bad;
    }
  }
}

// ---------------------------------------------------------------------
// Sweep axes and expansion.

TEST(SweepAxis, ValueListsAndRangesParse) {
  api::SweepAxis a = api::sweep_axis("sigma", "2,3,4");
  ASSERT_EQ(a.cells(), 3u);
  EXPECT_EQ(a.values[0][0], "2");
  EXPECT_EQ(a.values[2][0], "4");

  // Inclusive ranges, with and without a step, mixed with literals.
  a = api::sweep_axis("m", "2..5");
  ASSERT_EQ(a.cells(), 4u);
  EXPECT_EQ(a.values[3][0], "5");
  a = api::sweep_axis("m", "2..12..3");
  ASSERT_EQ(a.cells(), 4u);  // 2, 5, 8, 11
  EXPECT_EQ(a.values[1][0], "5");
  EXPECT_EQ(a.values[3][0], "11");
  a = api::sweep_axis("m", "1, 4..6, 9");
  ASSERT_EQ(a.cells(), 5u);
  EXPECT_EQ(a.values[1][0], "4");
  EXPECT_EQ(a.values[4][0], "9");
  // Non-range literals (weight-model names) pass through untouched.
  a = api::sweep_axis("weights", "unit,zipf");
  ASSERT_EQ(a.cells(), 2u);
  EXPECT_EQ(a.values[1][0], "zipf");

  EXPECT_THROW(api::sweep_axis("m", ""), RequireError);
  EXPECT_THROW(api::sweep_axis("m", "3,,4"), RequireError);
  EXPECT_THROW(api::sweep_axis("m", "5..2"), RequireError);
  EXPECT_THROW(api::sweep_axis("m", "2..8..0"), RequireError);
  EXPECT_THROW(api::sweep_axis("m", "2..x"), RequireError);
  // A typo'd huge range must error, not materialize billions of cells.
  EXPECT_THROW(api::sweep_axis("m", "1..4000000000"), RequireError);
  // The count-based loop cannot wrap past hi: a step of 2^64-1 over the
  // full u64 range is exactly two cells, not an infinite loop.
  a = api::sweep_axis("m",
                      "0..18446744073709551615..18446744073709551615");
  ASSERT_EQ(a.cells(), 2u);
  EXPECT_EQ(a.values[0][0], "0");
  EXPECT_EQ(a.values[1][0], "18446744073709551615");
}

TEST(SweepExpansion, CartesianProductAppliesValuesAndLabels) {
  api::ScenarioSpec spec = api::scenarios().at("random");
  spec.vary(api::sweep_axis("sigma", "2,4"));
  spec.vary(api::sweep_axis("k", "3,5"));

  auto cells = api::expand(spec);
  ASSERT_EQ(cells.size(), 4u);  // first axis outermost
  EXPECT_EQ(cells[0].sigma, 2u);
  EXPECT_EQ(cells[0].k, 3u);
  EXPECT_EQ(cells[1].sigma, 2u);
  EXPECT_EQ(cells[1].k, 5u);
  EXPECT_EQ(cells[3].sigma, 4u);
  EXPECT_EQ(cells[3].k, 5u);
  EXPECT_EQ(cells[0].display_label(), "random sigma=2 k=3");
  EXPECT_EQ(cells[3].display_label(), "random sigma=4 k=5");
  for (const api::ScenarioSpec& cell : cells) {
    EXPECT_TRUE(cell.sweep.empty());        // cells are concrete
    EXPECT_EQ(cell.name, spec.name);        // name survives, label varies
    EXPECT_EQ(cell.m, spec.m);              // unswept fields untouched
  }

  // A spec without axes expands to exactly itself.
  auto plain = api::expand(api::scenarios().at("random"));
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0].display_label(), "random");
}

TEST(SweepExpansion, ZippedAxisVariesKeysTogether) {
  api::ScenarioSpec spec = api::scenarios().at("uniform/corollary7");
  auto cells = api::expand(spec);
  ASSERT_EQ(cells.size(), 6u);
  // m = 8·sigma in every cell — the zip, not a cartesian square.
  for (const api::ScenarioSpec& cell : cells)
    EXPECT_EQ(cell.m, 8 * cell.sigma);
  EXPECT_EQ(cells.front().sigma, 2u);
  EXPECT_EQ(cells.back().sigma, 12u);
  EXPECT_EQ(cells.back().m, 96u);
}

TEST(SweepExpansion, MalformedAxesThrow) {
  api::ScenarioSpec spec = api::scenarios().at("random");

  // Unknown key: the error comes from the shared set() surface.
  spec.sweep = {api::sweep_axis("frobnication", "1,2")};
  EXPECT_THROW(api::expand(spec), RequireError);

  // Zip length mismatch.
  spec.sweep = {api::sweep_axis({"m", "n"}, {{"8", "16"}, {"12"}})};
  EXPECT_THROW(api::expand(spec), RequireError);

  // Empty axis and label-count mismatch.
  spec.sweep = {api::SweepAxis{{"m"}, {}, {}}};
  EXPECT_THROW(api::expand(spec), RequireError);
  spec.sweep = {api::sweep_axis({"m"}, {{"8"}, {"12"}}, {"only-one"})};
  EXPECT_THROW(api::expand(spec), RequireError);

  // A key swept by two axes (or twice within a zip) would silently
  // square the grid with lying labels; both are rejected.
  spec.sweep = {api::sweep_axis("k", "2,3"), api::sweep_axis("k", "4,5")};
  EXPECT_THROW(api::expand(spec), RequireError);
  spec.sweep = {api::sweep_axis({"m", "m"}, {{"8", "9"}})};
  EXPECT_THROW(api::expand(spec), RequireError);

  // The cartesian product is capped: two in-bounds axes whose product
  // explodes must throw before materializing any cell.
  spec.sweep = {api::sweep_axis("m", "1..10000"),
                api::sweep_axis("sigma", "1..10000")};
  EXPECT_THROW(api::expand(spec), RequireError);
}

// ---------------------------------------------------------------------
// Config-file scenarios.

TEST(ScenarioConfig, StreamRoundTripIncludingSweep) {
  std::istringstream in(
      "# demo config\n"
      "scenario = regular   # base entry to copy\n"
      "\n"
      "m = 12\n"
      "sigma = 3\n"
      "weights = zipf\n"
      "label = demo\n"
      "trials = 42\n"
      "sweep.k = 2,3\n");
  api::ScenarioSpec spec = api::ScenarioSpec::from_stream(in, "demo.cfg");
  EXPECT_EQ(spec.name, "regular");
  EXPECT_EQ(spec.m, 12u);
  EXPECT_EQ(spec.sigma, 3u);
  EXPECT_EQ(spec.weights.kind, WeightModel::Kind::kZipf);
  EXPECT_EQ(spec.label, "demo");
  EXPECT_EQ(spec.default_trials, 42);
  ASSERT_EQ(spec.sweep.size(), 1u);

  auto cells = api::expand(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].k, 2u);
  EXPECT_EQ(cells[1].k, 3u);
  EXPECT_EQ(cells[0].display_label(), "demo k=2");
  for (const api::ScenarioSpec& cell : cells) {
    Rng rng(3);
    Instance inst = api::build_instance(cell, rng);
    EXPECT_EQ(inst.num_sets(), 12u);
  }
}

TEST(ScenarioConfig, FileRoundTrip) {
  const char* path = "test_api_scenario.cfg";
  // Removed even when from_file throws, so a failing run cannot leak the
  // file into the directory the test ran from.
  struct Cleanup {
    const char* path;
    ~Cleanup() { std::remove(path); }
  } cleanup{path};
  {
    std::ofstream out(path);
    out << "scenario = random\nm = 9\nn = 14\nsweep.k = 2..3\n";
  }
  api::ScenarioSpec spec = api::ScenarioSpec::from_file(path);
  EXPECT_EQ(spec.m, 9u);
  EXPECT_EQ(spec.n, 14u);
  EXPECT_EQ(api::expand(spec).size(), 2u);

  EXPECT_THROW(api::ScenarioSpec::from_file("no-such-config.cfg"),
               RequireError);
}

TEST(ScenarioConfig, ErrorsNameTheOriginLineAndKey) {
  // Unknown key: strict, names the key and the config location.
  {
    std::istringstream in("scenario = random\nfrobnication = 9\n");
    try {
      api::ScenarioSpec::from_stream(in, "bad.cfg");
      FAIL() << "expected RequireError";
    } catch (const RequireError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("bad.cfg:2"), std::string::npos) << msg;
      EXPECT_NE(msg.find("frobnication"), std::string::npos) << msg;
    }
  }
  // Malformed line (no '=').
  {
    std::istringstream in("scenario = random\njust some words\n");
    try {
      api::ScenarioSpec::from_stream(in, "bad.cfg");
      FAIL() << "expected RequireError";
    } catch (const RequireError& e) {
      EXPECT_NE(std::string(e.what()).find("bad.cfg:2"), std::string::npos);
    }
  }
  // Missing/duplicate/unknown base scenario, bad values, bad sweep key.
  {
    std::istringstream in("m = 9\n");
    EXPECT_THROW(api::ScenarioSpec::from_stream(in, "bad.cfg"),
                 RequireError);
  }
  {
    std::istringstream in("scenario = random\nscenario = regular\n");
    EXPECT_THROW(api::ScenarioSpec::from_stream(in, "bad.cfg"),
                 RequireError);
  }
  {
    std::istringstream in("scenario = no-such-scenario\n");
    EXPECT_THROW(api::ScenarioSpec::from_stream(in, "bad.cfg"),
                 RequireError);
  }
  {
    std::istringstream in("scenario = random\nm = 12x\n");
    EXPECT_THROW(api::ScenarioSpec::from_stream(in, "bad.cfg"),
                 RequireError);
  }
  {  // sweep over an unknown key fails on its own line, not at expand().
    std::istringstream in("scenario = random\nsweep.bogus = 1,2\n");
    try {
      api::ScenarioSpec::from_stream(in, "bad.cfg");
      FAIL() << "expected RequireError";
    } catch (const RequireError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("bad.cfg:2"), std::string::npos) << msg;
      EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    }
  }
  {  // ... and so does a malformed value anywhere in the list, not just
     // the first (every cell is probed at load time).
    std::istringstream in("scenario = random\nsweep.m = 8,zzz\n");
    try {
      api::ScenarioSpec::from_stream(in, "bad.cfg");
      FAIL() << "expected RequireError";
    } catch (const RequireError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("bad.cfg:2"), std::string::npos) << msg;
      EXPECT_NE(msg.find("zzz"), std::string::npos) << msg;
    }
  }
  {  // a plain override of a key the base scenario sweeps would be
     // clobbered at expand() time; refused at load like the CLI flag.
    std::istringstream in("scenario = router/buffered\nbuffer = 7\n");
    try {
      api::ScenarioSpec::from_stream(in, "bad.cfg");
      FAIL() << "expected RequireError";
    } catch (const RequireError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("bad.cfg:2"), std::string::npos) << msg;
      EXPECT_NE(msg.find("sweep.buffer"), std::string::npos) << msg;
    }
  }
  {  // duplicate sweep axes over one key fail at load, on their line.
    std::istringstream in(
        "scenario = random\nsweep.k = 2,3\nsweep.k = 4,5\n");
    try {
      api::ScenarioSpec::from_stream(in, "bad.cfg");
      FAIL() << "expected RequireError";
    } catch (const RequireError& e) {
      EXPECT_NE(std::string(e.what()).find("bad.cfg:3"), std::string::npos)
          << e.what();
    }
  }
  {  // empty config
    std::istringstream in("# nothing but comments\n");
    EXPECT_THROW(api::ScenarioSpec::from_stream(in, "bad.cfg"),
                 RequireError);
  }
}

TEST(ScenarioSpec, AffectsInstanceSeparatesPackingFromRouterKnobs) {
  using api::ScenarioFamily;
  EXPECT_TRUE(api::affects_instance("m", ScenarioFamily::kRandom));
  EXPECT_TRUE(api::affects_instance("sigma", ScenarioFamily::kRegular));
  EXPECT_TRUE(api::affects_instance("streams", ScenarioFamily::kVideo));
  EXPECT_TRUE(api::affects_instance("capacity", ScenarioFamily::kVideo));
  // Router-only knobs and keys a family ignores.
  EXPECT_FALSE(api::affects_instance("buffer", ScenarioFamily::kVideo));
  EXPECT_FALSE(
      api::affects_instance("service-rate", ScenarioFamily::kVideo));
  EXPECT_FALSE(api::affects_instance("capacity", ScenarioFamily::kRandom));
  EXPECT_FALSE(api::affects_instance("sigma", ScenarioFamily::kRandom));
}

// ---------------------------------------------------------------------
// RankerRegistry.

TEST(RankerRegistry, CatalogMatchesTheHistoricalHandBuiltList) {
  // bench_router's old hand-built list, now the registration order (the
  // names key BENCH_router.json rows, so they must stay stable).
  const std::vector<std::string> expected = {"randPr", "by-weight",
                                             "drop-tail", "random-drop"};
  EXPECT_EQ(api::rankers().names(), expected);
  // Display-name/alias lookups resolve, and every registered name equals
  // the constructed ranker's self-reported name().
  EXPECT_EQ(api::rankers().find("randpr"), api::rankers().find("randPr"));
  for (const api::RankerInfo& info : api::rankers().entries()) {
    auto ranker = info.make(Rng(1));
    ASSERT_NE(ranker, nullptr) << info.name;
    EXPECT_EQ(ranker->name(), info.name);
    // The randomized flag is what the router benches gate their per-draw
    // reseed wiring on — it must match the ranker's actual behavior.
    EXPECT_EQ(info.randomized,
              info.name == "randPr" || info.name == "random-drop")
        << info.name;
  }
  EXPECT_THROW(api::rankers().at("no-such-ranker"), RequireError);
  try {
    api::rankers().at("no-such-ranker");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    for (const api::RankerInfo& info : api::rankers().entries())
      EXPECT_NE(std::string(e.what()).find(info.name), std::string::npos);
  }
}

TEST(RankerRegistry, RegistryRankersAreDecisionIdenticalToHandBuilt) {
  // Round-trip parity: registry-built rankers must serve exactly the
  // packets the directly constructed ones do (stats AND serve trace).
  Rng wl_rng(5);
  VideoParams params;
  params.num_streams = 6;
  params.frames_per_stream = 12;
  VideoWorkload vw = make_video_workload(params, wl_rng);
  const BufferedRouterParams rp{.service_rate = 1,
                                .buffer_size = 8,
                                .drop_dead_frames = true};

  RandPrRanker hand_randpr{Rng(9)};
  WeightRanker hand_weight;
  FifoRanker hand_fifo;
  RandomRanker hand_random{Rng(11)};
  struct Case {
    const char* name;
    FrameRanker* hand;
    std::uint64_t seed;
  };
  for (const Case& c : {Case{"randPr", &hand_randpr, 9},
                        Case{"by-weight", &hand_weight, 0},
                        Case{"drop-tail", &hand_fifo, 0},
                        Case{"random-drop", &hand_random, 11}}) {
    RouterTrace hand_trace, reg_trace;
    RouterStats hand_stats =
        simulate_buffered_router(vw.schedule, *c.hand, rp, nullptr,
                                 &hand_trace);
    auto reg = api::rankers().make(c.name, Rng(c.seed));
    RouterStats reg_stats =
        simulate_buffered_router(vw.schedule, *reg, rp, nullptr, &reg_trace);

    EXPECT_EQ(hand_stats.packets_served, reg_stats.packets_served) << c.name;
    EXPECT_EQ(hand_stats.packets_dropped, reg_stats.packets_dropped)
        << c.name;
    EXPECT_EQ(hand_stats.frames_delivered, reg_stats.frames_delivered)
        << c.name;
    EXPECT_DOUBLE_EQ(hand_stats.value_delivered, reg_stats.value_delivered)
        << c.name;
    ASSERT_EQ(hand_trace.served.size(), reg_trace.served.size()) << c.name;
    for (std::size_t i = 0; i < hand_trace.served.size(); ++i) {
      EXPECT_EQ(hand_trace.served[i].slot, reg_trace.served[i].slot);
      EXPECT_EQ(hand_trace.served[i].frame, reg_trace.served[i].frame);
      EXPECT_EQ(hand_trace.served[i].seq, reg_trace.served[i].seq);
    }
  }
}

// ---------------------------------------------------------------------
// Session: measure parity and grid emission.

TEST(Session, MeasureIsBitIdenticalToTheHistoricalSerialLoop) {
  Rng gen(5);
  Instance inst = random_instance(16, 20, 3, WeightModel::unit(), gen);
  api::Session session;

  Rng m1(42), m2(42);
  RunningStat got = session.measure(inst, "randpr", m1, 32);

  RunningStat want;
  PlayScratch scratch;
  for (int t = 0; t < 32; ++t) {
    RandPr alg(m2.split(static_cast<std::uint64_t>(t)));
    want.add(play_flat(inst, alg, scratch).benefit);
  }
  EXPECT_EQ(got.count(), want.count());
  EXPECT_EQ(got.mean(), want.mean());
  EXPECT_EQ(got.stddev(), want.stddev());
}

TEST(Session, RunGridEmitsOneRowPerCellToEverySink) {
  Rng gen(77);
  Instance a = random_instance(12, 20, 3, WeightModel::unit(), gen);
  Instance b = random_instance(8, 12, 2, WeightModel::unit(), gen);

  engine::GridSpec grid;
  grid.instances = {&a, &b};
  grid.algorithms.push_back(api::grid_column(api::policies().at("randpr")));
  grid.algorithms.push_back(
      api::grid_column(api::policies().at("greedy:maxw")));
  grid.trials = 5;

  api::TableSink table;
  std::ostringstream json_text;
  api::JsonSink json(json_text, "grid", 1);
  api::Session session;
  session.attach(table);
  session.attach(json);

  auto cells = session.run_grid(grid, {"A", "B"});
  session.close_sinks();

  ASSERT_EQ(cells.size(), 4u);
  for (const engine::CellStats& cell : cells)
    EXPECT_EQ(cell.benefit.count(), 5u);

  std::ostringstream rendered;
  table.print(rendered);
  EXPECT_NE(rendered.str().find("greedy:maxw"), std::string::npos);
  EXPECT_NE(rendered.str().find("benefit_mean"), std::string::npos);
  EXPECT_NE(json_text.str().find("\"results\":["), std::string::npos);
}

TEST(TableSink, RejectsMismatchedRowShapes) {
  api::TableSink sink;
  sink.write(api::Row{}.add("a", 1).add("b", 2.0));
  EXPECT_THROW(sink.write(api::Row{}.add("a", 1)), RequireError);
  EXPECT_THROW(sink.write(api::Row{}.add("a", 1).add("c", 2.0)),
               RequireError);
}

// ---------------------------------------------------------------------
// JsonSink golden: the one BENCH_*.json writer must satisfy the schema
// validator the CI gates on.

TEST(JsonSink, GoldenOutputPassesTheSchemaChecker) {
  const char* path = "BENCH_api_golden.json";
  {
    api::JsonSink sink("api_golden", 3);
    sink.write(api::Row{}
                   .add("sweep", "golden")
                   .add("m", std::size_t{24})
                   .add("trials", 600)
                   .add("ratio", 2.25)
                   .add("gate_met", true)
                   .add("label", "a \"quoted\" label"));
    sink.write(api::Row{}
                   .add("sweep", "golden")
                   .add("m", std::size_t{48})
                   .add("trials", 600)
                   .add("ratio", 3.5)
                   .add("gate_met", false)
                   .add("label", "plain"));
    sink.close();
  }
  // The document must at minimum parse back with the shared preamble.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"bench\":\"api_golden\""), std::string::npos);
  EXPECT_NE(text.str().find("\"threads\":3"), std::string::npos);

#ifdef OSP_SOURCE_DIR
  // Full schema check through the repository validator (the exact gate CI
  // runs on the committed artifacts).
  const std::string probe = "python3 --version > /dev/null 2>&1";
  if (std::system(probe.c_str()) != 0)
    GTEST_SKIP() << "python3 unavailable; schema check skipped";
  const std::string cmd = std::string("python3 ") + OSP_SOURCE_DIR +
                          "/scripts/check_bench_json.py " + path +
                          " > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
#endif
}

TEST(JsonSink, ZeroRowsStillFinishACompleteDocument) {
  // An empty shard slice must never leave a malformed body behind.
  std::ostringstream text;
  {
    api::JsonSink sink(text, "empty", 2);
    sink.close();
  }
  EXPECT_EQ(text.str(), "{\"bench\":\"empty\",\"threads\":2,\"results\":[]}");
}

// ---------------------------------------------------------------------
// Wire format: the canonical Row text codec the shard pipeline rides on.

/// Runs `fn`, expecting a RequireError, and returns its message.
template <class Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const RequireError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a RequireError";
  return {};
}

TEST(Wire, EveryVariantArmRoundTripsExactly) {
  const api::Row::Value values[] = {
      api::Row::Value(true),
      api::Row::Value(false),
      api::Row::Value(std::int64_t{0}),
      api::Row::Value(std::int64_t{-7}),
      api::Row::Value(std::numeric_limits<std::int64_t>::min()),
      api::Row::Value(std::numeric_limits<std::int64_t>::max()),
      api::Row::Value(std::uint64_t{0}),
      api::Row::Value(std::numeric_limits<std::uint64_t>::max()),
      api::Row::Value(0.0),
      api::Row::Value(1.0 / 3.0),
      api::Row::Value(-123.456789),
      api::Row::Value(std::numeric_limits<double>::max()),
      api::Row::Value(std::numeric_limits<double>::denorm_min()),
      api::Row::Value(5e-324),
      api::Row::Value(std::string("")),
      api::Row::Value(std::string("plain words")),
      api::Row::Value(std::string("esc \\ back\nnew\rret key=val")),
  };
  for (const api::Row::Value& v : values) {
    const char tag = api::wire_tag(v);
    const std::string payload = api::encode_wire_value(v);
    const api::Row::Value back = api::parse_wire_value(tag, payload, "t");
    EXPECT_EQ(back.index(), v.index()) << payload;
    EXPECT_EQ(back, v) << payload;
  }
}

TEST(Wire, NegativeZeroKeepsItsSignBit) {
  const api::Row::Value v(-0.0);
  const api::Row::Value back =
      api::parse_wire_value('d', api::encode_wire_value(v), "t");
  ASSERT_EQ(back.index(), 3u);
  EXPECT_TRUE(std::signbit(std::get<double>(back)));
}

TEST(Wire, NonFiniteDoublesAreRejectedBothWays) {
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()})
    EXPECT_THROW(api::encode_wire_value(api::Row::Value(bad)), RequireError);
  for (const char* text : {"nan", "inf", "-inf", "0x1p+2000000"})
    EXPECT_THROW(api::parse_wire_value('d', text, "t"), RequireError);
}

TEST(Wire, ParsingIsStrict) {
  // Unknown tags, malformed payloads, trailing junk, broken escapes.
  EXPECT_THROW(api::parse_wire_value('x', "1", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_value('b', "yes", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_value('i', "12abc", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_value('i', "", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_value('u', "-3", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_value('d', "1.5", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_value('s', "dangling\\", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_value('s', "bad\\q", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_line("i novalue", "t"), RequireError);
  EXPECT_THROW(api::parse_wire_line("i=5", "t"), RequireError);
  const std::string msg =
      error_of([] { api::parse_wire_value('i', "12abc", "here:7"); });
  EXPECT_NE(msg.find("here:7"), std::string::npos) << msg;
}

TEST(Wire, LineRoundTripPreservesKeyAndValue) {
  const api::Row::Value v(std::string("a=b\nc"));
  const std::string line = std::string(1, api::wire_tag(v)) + " label=" +
                           api::encode_wire_value(v);
  const auto [key, back] = api::parse_wire_line(line, "t");
  EXPECT_EQ(key, "label");
  EXPECT_EQ(back, v);
}

// ---------------------------------------------------------------------
// ShardPlan: the deterministic cell-slice assignment.

TEST(ShardPlan, ParseAcceptsCanonicalSpecsOnly) {
  const api::ShardPlan p = api::ShardPlan::parse("flag --shard", "2/5");
  EXPECT_EQ(p.index, 2u);
  EXPECT_EQ(p.count, 5u);
  for (const char* bad : {"3/2", "2/2", "0/0", "x/2", "1/", "/4", "1/2/3",
                          "", "1", "-1/4", "1/-4", "1 / 4"}) {
    const std::string msg = error_of(
        [bad] { api::ShardPlan::parse("flag --shard", bad); });
    EXPECT_NE(msg.find("flag --shard"), std::string::npos) << bad;
  }
}

TEST(ShardPlan, SlicesTileEveryGridExactly) {
  // Property check: for any (total, N) the N slices are contiguous,
  // ordered, sized within one of each other, and owner() agrees.
  for (std::size_t total : {0u, 1u, 2u, 5u, 12u, 17u, 64u}) {
    for (std::size_t count : {1u, 2u, 3u, 5u, 16u}) {
      std::size_t covered = 0;
      std::size_t lo = total / count;
      for (std::size_t i = 0; i < count; ++i) {
        const api::ShardPlan plan{i, count};
        const auto [begin, end] = plan.slice(total);
        ASSERT_EQ(begin, covered) << total << " " << count << " " << i;
        ASSERT_LE(begin, end);
        const std::size_t size = end - begin;
        ASSERT_TRUE(size == lo || size == lo + 1)
            << total << " " << count << " " << i;
        for (std::size_t c = begin; c < end; ++c)
          ASSERT_EQ(plan.owner(c, total), i) << total << " " << count;
        covered = end;
      }
      ASSERT_EQ(covered, total);
    }
  }
}

// ---------------------------------------------------------------------
// ShardSink / parse_shard_partial / merge_shards.

api::Row mixed_row(std::size_t salt) {
  return api::Row{}
      .add("instance", "cell-" + std::to_string(salt))
      .add("policy", "randpr")
      .add("trials", std::uint64_t{3 + salt})
      .add("benefit_mean", 1.25 + static_cast<double>(salt) / 3.0)
      .add("benefit_ci95", 0.0)
      .add("ok", salt % 2 == 0)
      .add("delta", static_cast<std::int64_t>(salt) - 2);
}

api::ShardManifest manifest_for(std::size_t index, std::size_t count,
                                std::size_t begin, std::size_t end) {
  api::ShardManifest m;
  m.bench = "t";
  m.fingerprint = 0xfeedfacecafebeefULL;
  m.shard_index = index;
  m.shard_count = count;
  m.cell_begin = begin;
  m.cell_end = end;
  m.total_cells = 4;
  m.threads = 2;
  return m;
}

std::string partial_text(std::size_t index, std::size_t count,
                         std::size_t begin, std::size_t end) {
  std::ostringstream os;
  api::ShardSink sink(os, manifest_for(index, count, begin, end));
  for (std::size_t c = begin; c < end; ++c) sink.write(mixed_row(c));
  sink.close();
  return os.str();
}

TEST(ShardSink, PartialRoundTripsThroughTheParser) {
  const std::string text = partial_text(0, 2, 0, 2);
  std::istringstream in(text);
  const api::ShardPartial part = api::parse_shard_partial(in, "mem");
  EXPECT_EQ(part.manifest.bench, "t");
  EXPECT_EQ(part.manifest.fingerprint, 0xfeedfacecafebeefULL);
  EXPECT_EQ(part.manifest.shard_index, 0u);
  EXPECT_EQ(part.manifest.shard_count, 2u);
  EXPECT_EQ(part.manifest.cell_begin, 0u);
  EXPECT_EQ(part.manifest.cell_end, 2u);
  EXPECT_EQ(part.manifest.total_cells, 4u);
  EXPECT_EQ(part.manifest.threads, 2u);
  ASSERT_EQ(part.rows.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    const api::Row want = mixed_row(c);
    ASSERT_EQ(part.rows[c].cells.size(), want.cells.size());
    for (std::size_t k = 0; k < want.cells.size(); ++k) {
      EXPECT_EQ(part.rows[c].cells[k].first, want.cells[k].first);
      EXPECT_EQ(part.rows[c].cells[k].second, want.cells[k].second);
    }
  }
}

TEST(ShardSink, EmptySliceIsAValidMergeablePartial) {
  // N > cells: a shard can legitimately own nothing and its file must
  // still parse and merge (skipped by the tiling check, not an overlap).
  std::vector<api::ShardPartial> partials;
  for (const std::string& text :
       {partial_text(0, 3, 0, 4), partial_text(1, 3, 4, 4),
        partial_text(2, 3, 4, 4)}) {
    std::istringstream in(text);
    partials.push_back(api::parse_shard_partial(in, "mem"));
  }
  const api::MergedShards merged = api::merge_shards(std::move(partials));
  EXPECT_EQ(merged.bench, "t");
  EXPECT_EQ(merged.threads, 2u);
  EXPECT_EQ(merged.rows.size(), 4u);
}

TEST(ShardSink, CloseRequiresExactlyTheSlicesRows) {
  std::ostringstream os;
  api::ShardSink sink(os, manifest_for(0, 2, 0, 2));
  sink.write(mixed_row(0));
  EXPECT_THROW(sink.close(), RequireError);  // one row short
}

TEST(ShardPartial, TruncatedFilesAreRejected) {
  std::string text = partial_text(0, 2, 0, 2);
  // Chop the footer off: simulates a partial upload / killed shard.
  const std::size_t cut = text.rfind("total ");
  ASSERT_NE(cut, std::string::npos);
  std::istringstream in(text.substr(0, cut));
  EXPECT_THROW(api::parse_shard_partial(in, "mem"), RequireError);
  // Corrupt the footer count.
  std::string bad = text;
  bad.replace(text.rfind("total 2"), 7, "total 9");
  std::istringstream in2(bad);
  EXPECT_THROW(api::parse_shard_partial(in2, "mem"), RequireError);
}

TEST(MergeShards, EnumeratedErrorsNameTheProblem) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return api::parse_shard_partial(in, "mem");
  };
  const std::string lo = partial_text(0, 2, 0, 2);
  const std::string hi = partial_text(1, 2, 2, 4);

  {  // overlap: the same slice twice
    std::vector<api::ShardPartial> parts{parse(lo), parse(lo), parse(hi)};
    const std::string msg = error_of(
        [&] { api::merge_shards(std::move(parts)); });
    EXPECT_NE(msg.find("overlap"), std::string::npos) << msg;
  }
  {  // gap: missing middle slice
    std::vector<api::ShardPartial> parts{parse(lo)};
    const std::string msg = error_of(
        [&] { api::merge_shards(std::move(parts)); });
    EXPECT_NE(msg.find("gap"), std::string::npos) << msg;
  }
  {  // fingerprint mismatch
    api::ShardPartial other = parse(hi);
    other.manifest.fingerprint ^= 1;
    std::vector<api::ShardPartial> parts{parse(lo), std::move(other)};
    const std::string msg = error_of(
        [&] { api::merge_shards(std::move(parts)); });
    EXPECT_NE(msg.find("fingerprint mismatch"), std::string::npos) << msg;
  }
  {  // bench-name mismatch
    api::ShardPartial other = parse(hi);
    other.manifest.bench = "u";
    std::vector<api::ShardPartial> parts{parse(lo), std::move(other)};
    const std::string msg = error_of(
        [&] { api::merge_shards(std::move(parts)); });
    EXPECT_NE(msg.find("bench"), std::string::npos) << msg;
  }
  {  // threads mismatch (the merged preamble records one worker count)
    api::ShardPartial other = parse(hi);
    other.manifest.threads = 7;
    std::vector<api::ShardPartial> parts{parse(lo), std::move(other)};
    const std::string msg = error_of(
        [&] { api::merge_shards(std::move(parts)); });
    EXPECT_NE(msg.find("threads"), std::string::npos) << msg;
  }
  EXPECT_THROW(api::merge_shards({}), RequireError);
}

// ---------------------------------------------------------------------
// The headline guarantee: shard → merge → JsonSink replay is
// byte-identical to the unsharded run, for every shard count.

TEST(ShardedGrid, MergedJsonIsByteIdenticalForAnyShardCount) {
  Rng gen(77);
  Instance a = random_instance(12, 20, 3, WeightModel::unit(), gen);
  Instance b = random_instance(8, 12, 2, WeightModel::unit(), gen);

  api::Session session;
  auto base_grid = [&] {
    engine::GridSpec grid;
    grid.instances = {&a, &b};
    grid.algorithms.push_back(
        api::grid_column(api::policies().at("randpr")));
    grid.algorithms.push_back(
        api::grid_column(api::policies().at("greedy:maxw")));
    grid.trials = 5;
    grid.master_seed = 99;
    return grid;
  };
  const std::size_t total = 4;  // 2 instances × 2 policies

  // Unsharded baseline through the ordinary JSON sink.
  std::ostringstream want;
  {
    api::JsonSink sink(want, "grid", session.threads());
    api::Session s;
    s.attach(sink);
    s.run_grid(base_grid(), {"A", "B"});
    s.close_sinks();
  }

  for (std::size_t count : {1u, 2u, 3u}) {
    std::vector<api::ShardPartial> partials;
    for (std::size_t i = 0; i < count; ++i) {
      const api::ShardPlan plan{i, count};
      const auto [begin, end] = plan.slice(total);
      api::ShardManifest m;
      m.bench = "grid";
      m.fingerprint = 0xabc;  // same grid, same constant
      m.shard_index = i;
      m.shard_count = count;
      m.cell_begin = begin;
      m.cell_end = end;
      m.total_cells = total;
      m.threads = session.threads();

      std::ostringstream text;
      {
        api::ShardSink sink(text, m);
        api::Session s;
        s.attach(sink);
        engine::GridSpec grid = base_grid();
        grid.cell_begin = begin;
        grid.cell_end = end;
        s.run_grid(grid, {"A", "B"});
        s.close_sinks();
      }
      std::istringstream in(text.str());
      partials.push_back(api::parse_shard_partial(in, "mem"));
    }
    const api::MergedShards merged = api::merge_shards(std::move(partials));
    std::ostringstream got;
    {
      api::JsonSink sink(got, merged.bench, merged.threads);
      for (const api::Row& row : merged.rows) sink.write(row);
      sink.close();
    }
    EXPECT_EQ(got.str(), want.str()) << "shard count " << count;
  }
}

TEST(ShardedGrid, RatioRowsSurviveShardMergeByteIdentical) {
  // The adversarial dashboard's rows carry awkward doubles (ratios like
  // 1/3 and 62.5/7, tiny LP values) that only survive the shard wire
  // because doubles travel as hexfloat.  Push such rows through the full
  // ShardSink → parse_shard_partial → merge_shards → JsonSink pipeline
  // and require byte-identity with the direct JsonSink document.
  auto ratio_row = [](std::size_t i) {
    api::Row row;
    row.add("sweep", "theorem3");
    row.add("scenario", "adversarial/theorem3 sigma=2 k=2");
    row.add("sigma", std::uint64_t{2} + i);
    row.add("policy", i % 2 ? "randpr" : "greedy-first");
    row.add("deterministic", i % 2 == 0);
    row.add("alg_mean", 1.0 / 3.0 + static_cast<double>(i));
    row.add("alg_ci95", 0.0625);
    row.add("opt", 5.217391304347826);
    row.add("opt_exact", i % 2 == 0);
    row.add("lp_upper", 1e-30);
    row.add("ratio", 62.5 / 7.0);
    return row;
  };
  const std::size_t total = 4;  // one row per grid cell

  std::ostringstream want;
  {
    api::JsonSink sink(want, "adversarial", 1);
    for (std::size_t i = 0; i < total; ++i) sink.write(ratio_row(i));
    sink.close();
  }

  for (std::size_t count : {1u, 2u, 3u}) {
    std::vector<api::ShardPartial> partials;
    for (std::size_t i = 0; i < count; ++i) {
      const api::ShardPlan plan{i, count};
      const auto [begin, end] = plan.slice(total);
      api::ShardManifest m;
      m.bench = "adversarial";
      m.fingerprint = 0x5eed;
      m.shard_index = i;
      m.shard_count = count;
      m.cell_begin = begin;
      m.cell_end = end;
      m.total_cells = total;
      m.threads = 1;

      std::ostringstream text;
      {
        api::ShardSink sink(text, m);
        for (std::size_t cell = begin; cell < end; ++cell)
          sink.write(ratio_row(cell));
        sink.close();
      }
      std::istringstream in(text.str());
      partials.push_back(api::parse_shard_partial(in, "mem"));
    }
    const api::MergedShards merged = api::merge_shards(std::move(partials));
    std::ostringstream got;
    {
      api::JsonSink sink(got, merged.bench, merged.threads);
      for (const api::Row& row : merged.rows) sink.write(row);
      sink.close();
    }
    EXPECT_EQ(got.str(), want.str()) << "shard count " << count;
  }
}

// ---------------------------------------------------------------------
// grid_fingerprint: same grid hashes equal, any knob change hashes apart.

TEST(GridFingerprint, SensitiveToEveryGridKnobButNotTheShardPlan) {
  std::vector<api::ScenarioSpec> cells = {api::scenarios().at("random")};
  const std::vector<std::string> policies = {"randpr", "greedy:maxw"};
  const std::uint64_t base =
      api::grid_fingerprint(cells, policies, 5, 1);
  EXPECT_EQ(base, api::grid_fingerprint(cells, policies, 5, 1));

  EXPECT_NE(base, api::grid_fingerprint(cells, policies, 6, 1));
  EXPECT_NE(base, api::grid_fingerprint(cells, policies, 5, 2));
  EXPECT_NE(base,
            api::grid_fingerprint(cells, {"randpr", "hashpr"}, 5, 1));
  EXPECT_NE(base, api::grid_fingerprint(cells, {"randpr"}, 5, 1));

  std::vector<api::ScenarioSpec> bigger = cells;
  bigger[0].set("m", "99");
  EXPECT_NE(base, api::grid_fingerprint(bigger, policies, 5, 1));
}

TEST(GridFingerprint, SensitiveToAdversarialShapeKnobs) {
  // The adversarial sweeps key their gadgets on sigma/k/ell/t, so a
  // merge across shards built from different gadget shapes must be
  // rejected by the fingerprint — each knob has to perturb the hash.
  std::vector<api::ScenarioSpec> cells =
      api::expand(api::scenarios().at("adversarial/theorem3"));
  const std::vector<std::string> policies = {"randpr"};
  const std::uint64_t base = api::grid_fingerprint(cells, policies, 3, 1);
  EXPECT_EQ(base, api::grid_fingerprint(cells, policies, 3, 1));
  for (const char* knob : {"sigma", "k", "ell", "t"}) {
    std::vector<api::ScenarioSpec> changed = cells;
    changed[0].set(knob, "9");
    EXPECT_NE(base, api::grid_fingerprint(changed, policies, 3, 1)) << knob;
  }
}

}  // namespace
}  // namespace osp
