// Tests for the experiment API layer (src/api): the policy registry's
// round-trip and param-syntax error surface, the scenario registry and
// spec compilation, the Session measure/grid facade (bit-identical to
// the historical serial loops), and a golden check that JsonSink output
// passes the repository's BENCH_*.json schema validator.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "api/policy_registry.hpp"
#include "api/result_sink.hpp"
#include "api/scenario.hpp"
#include "api/session.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "gen/random_instances.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// ---------------------------------------------------------------------
// PolicyRegistry.

TEST(PolicyRegistry, CatalogIsPopulatedBySelfRegistration) {
  // The acceptance bar the CLI's `list` relies on: every entry point sees
  // the full catalog, linked in through the registry's anchor references.
  EXPECT_GE(api::policies().entries().size(), 10u);
  for (const char* expected :
       {"randpr", "randpr:filt", "hashpr", "hashpr:tab", "greedy:first",
        "greedy:srpt", "greedy:density", "round-robin", "uniform-random"})
    EXPECT_NE(api::policies().find(expected), nullptr) << expected;
}

TEST(PolicyRegistry, EveryEntryConstructsAndPlays) {
  // Round-trip: every registered name constructs a working policy and
  // plays a small instance on both engines with identical outcomes.
  Rng gen(7);
  Instance inst = random_instance(10, 14, 3, WeightModel::uniform(1, 5), gen);
  PlayScratch scratch;
  for (const api::PolicyInfo& p : api::policies().entries()) {
    auto alg = p.make(Rng(0xabc));
    ASSERT_NE(alg, nullptr) << p.name;
    EXPECT_FALSE(alg->name().empty()) << p.name;

    auto flat_alg = p.make(Rng(0xabc));
    Outcome plain = play(inst, *alg);
    Outcome flat = play_flat(inst, *flat_alg, scratch);
    EXPECT_GE(plain.benefit, 0.0) << p.name;
    EXPECT_EQ(plain.completed, flat.completed) << p.name;
    EXPECT_DOUBLE_EQ(plain.benefit, flat.benefit) << p.name;
  }
}

TEST(PolicyRegistry, AliasesResolveToTheSameEntry) {
  // Historical CLI spellings and display names keep working.
  struct Pair {
    const char* alias;
    const char* canonical;
  };
  for (const Pair& pr : {Pair{"randpr-filt", "randpr:filt"},
                         Pair{"randPr", "randpr"},
                         Pair{"greedy-first", "greedy:first"},
                         Pair{"greedy-srpt", "greedy:srpt"},
                         Pair{"hashPr/poly8", "hashpr"}}) {
    const api::PolicyInfo* via_alias = api::policies().find(pr.alias);
    ASSERT_NE(via_alias, nullptr) << pr.alias;
    EXPECT_EQ(via_alias, api::policies().find(pr.canonical)) << pr.alias;
  }
}

TEST(PolicyRegistry, UnknownSpecErrorsEnumerateTheCatalog) {
  try {
    api::policies().at("definitely-not-a-policy");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("registered policies"), std::string::npos) << msg;
    // The enumerable list, not a hand-maintained comment block.
    for (const api::PolicyInfo& p : api::policies().entries())
      EXPECT_NE(msg.find(p.name), std::string::npos) << p.name;
  }
}

TEST(PolicyRegistry, UnknownVariantErrorsNameTheFamily) {
  try {
    api::policies().at("randpr:bogus");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("family 'randpr'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("randpr:filt"), std::string::npos) << msg;
  }
  EXPECT_THROW(api::policies().at("greedy:bogus"), RequireError);
  EXPECT_THROW(api::policies().at(""), RequireError);
}

// ---------------------------------------------------------------------
// Scenario registry and spec compilation.

TEST(ScenarioRegistry, CatalogCoversFamiliesAndEngineShapes) {
  EXPECT_GE(api::scenarios().entries().size(), 6u);
  for (const char* expected : {"random", "regular", "fixedload", "video",
                               "multihop", "weaklb", "lemma9"})
    EXPECT_NE(api::scenarios().find(expected), nullptr) << expected;

  // The engine ladder replaces bench_common's workload table; the labels
  // are the BENCH_engine.json row keys and must stay stable.
  auto shapes = api::engine_shapes();
  ASSERT_EQ(shapes.size(), 6u);
  EXPECT_EQ(shapes.front()->display_label(), "legacy/64");
  EXPECT_EQ(shapes.back()->display_label(), "overload/256k");
  EXPECT_EQ(shapes.back()->m, 8192u);
  EXPECT_EQ(shapes.back()->n, 262144u);
  EXPECT_EQ(shapes.back()->k, 512u);
}

TEST(ScenarioRegistry, EveryScenarioBuildsAnInstance) {
  for (const api::ScenarioSpec& registered : api::scenarios().entries()) {
    api::ScenarioSpec spec = registered;  // specs are value types
    // Clamp the big perf shapes so the sweep stays unit-test sized; the
    // override path is itself part of the API under test.
    spec.m = std::min<std::size_t>(spec.m, 48);
    spec.n = std::min<std::size_t>(spec.n, 96);
    spec.k = std::min<std::size_t>(spec.k, 4);
    spec.streams = std::min<std::size_t>(spec.streams, 4);
    spec.frames = std::min<std::size_t>(spec.frames, 12);
    Rng rng(11);
    Instance inst = api::build_instance(spec, rng);
    EXPECT_GT(inst.num_sets(), 0u) << registered.name;
    EXPECT_GT(inst.num_elements(), 0u) << registered.name;
  }
}

TEST(ScenarioSpec, StringOverridesParseStrictly) {
  api::ScenarioSpec spec = api::scenarios().at("random");
  spec.set("m", "12").set("n", "20").set("k", "2").set("weights", "zipf");
  EXPECT_EQ(spec.m, 12u);
  EXPECT_EQ(spec.n, 20u);
  EXPECT_EQ(spec.k, 2u);
  EXPECT_EQ(spec.weights.kind, WeightModel::Kind::kZipf);

  EXPECT_THROW(spec.set("m", "12x"), RequireError);
  EXPECT_THROW(spec.set("m", "-3"), RequireError);
  EXPECT_THROW(spec.set("m", ""), RequireError);
  EXPECT_THROW(spec.set("weights", "heavy"), RequireError);
  try {
    spec.set("frobnication", "9");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    EXPECT_NE(std::string(e.what()).find("frobnication"),
              std::string::npos);
  }
}

TEST(ScenarioSpec, ParseSizeNamesTheFlag) {
  EXPECT_EQ(api::parse_size("flag --m", "42"), 42u);
  for (const char* bad : {"", "x", "12x", "-5", "1.5"}) {
    try {
      api::parse_size("flag --m", bad);
      FAIL() << "expected RequireError for '" << bad << "'";
    } catch (const RequireError& e) {
      EXPECT_NE(std::string(e.what()).find("--m"), std::string::npos)
          << bad;
    }
  }
}

// ---------------------------------------------------------------------
// Session: measure parity and grid emission.

TEST(Session, MeasureIsBitIdenticalToTheHistoricalSerialLoop) {
  Rng gen(5);
  Instance inst = random_instance(16, 20, 3, WeightModel::unit(), gen);
  api::Session session;

  Rng m1(42), m2(42);
  RunningStat got = session.measure(inst, "randpr", m1, 32);

  RunningStat want;
  PlayScratch scratch;
  for (int t = 0; t < 32; ++t) {
    RandPr alg(m2.split(static_cast<std::uint64_t>(t)));
    want.add(play_flat(inst, alg, scratch).benefit);
  }
  EXPECT_EQ(got.count(), want.count());
  EXPECT_EQ(got.mean(), want.mean());
  EXPECT_EQ(got.stddev(), want.stddev());
}

TEST(Session, RunGridEmitsOneRowPerCellToEverySink) {
  Rng gen(77);
  Instance a = random_instance(12, 20, 3, WeightModel::unit(), gen);
  Instance b = random_instance(8, 12, 2, WeightModel::unit(), gen);

  engine::GridSpec grid;
  grid.instances = {&a, &b};
  grid.algorithms.push_back(api::grid_column(api::policies().at("randpr")));
  grid.algorithms.push_back(
      api::grid_column(api::policies().at("greedy:maxw")));
  grid.trials = 5;

  api::TableSink table;
  std::ostringstream json_text;
  api::JsonSink json(json_text, "grid", 1);
  api::Session session;
  session.attach(table);
  session.attach(json);

  auto cells = session.run_grid(grid, {"A", "B"});
  session.close_sinks();

  ASSERT_EQ(cells.size(), 4u);
  for (const engine::CellStats& cell : cells)
    EXPECT_EQ(cell.benefit.count(), 5u);

  std::ostringstream rendered;
  table.print(rendered);
  EXPECT_NE(rendered.str().find("greedy:maxw"), std::string::npos);
  EXPECT_NE(rendered.str().find("benefit_mean"), std::string::npos);
  EXPECT_NE(json_text.str().find("\"results\":["), std::string::npos);
}

TEST(TableSink, RejectsMismatchedRowShapes) {
  api::TableSink sink;
  sink.write(api::Row{}.add("a", 1).add("b", 2.0));
  EXPECT_THROW(sink.write(api::Row{}.add("a", 1)), RequireError);
  EXPECT_THROW(sink.write(api::Row{}.add("a", 1).add("c", 2.0)),
               RequireError);
}

// ---------------------------------------------------------------------
// JsonSink golden: the one BENCH_*.json writer must satisfy the schema
// validator the CI gates on.

TEST(JsonSink, GoldenOutputPassesTheSchemaChecker) {
  const char* path = "BENCH_api_golden.json";
  {
    api::JsonSink sink("api_golden", 3);
    sink.write(api::Row{}
                   .add("sweep", "golden")
                   .add("m", std::size_t{24})
                   .add("trials", 600)
                   .add("ratio", 2.25)
                   .add("gate_met", true)
                   .add("label", "a \"quoted\" label"));
    sink.write(api::Row{}
                   .add("sweep", "golden")
                   .add("m", std::size_t{48})
                   .add("trials", 600)
                   .add("ratio", 3.5)
                   .add("gate_met", false)
                   .add("label", "plain"));
    sink.close();
  }
  // The document must at minimum parse back with the shared preamble.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"bench\":\"api_golden\""), std::string::npos);
  EXPECT_NE(text.str().find("\"threads\":3"), std::string::npos);

#ifdef OSP_SOURCE_DIR
  // Full schema check through the repository validator (the exact gate CI
  // runs on the committed artifacts).
  const std::string probe = "python3 --version > /dev/null 2>&1";
  if (std::system(probe.c_str()) != 0)
    GTEST_SKIP() << "python3 unavailable; schema check skipped";
  const std::string cmd = std::string("python3 ") + OSP_SOURCE_DIR +
                          "/scripts/check_bench_json.py " + path +
                          " > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
#endif
}

}  // namespace
}  // namespace osp
