// Tests for the dense simplex solver.
#include <gtest/gtest.h>

#include "algos/simplex.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 — optimum at (4, 0), value 12.
  LpResult r = simplex_maximize({{1, 1}, {1, 3}}, {4, 6}, {3, 2});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.value, 12.0, 1e-9);
  EXPECT_NEAR(r.x[0], 4.0, 1e-9);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y s.t. x <= 2, y <= 3, x + y <= 4 — optimum 4 on the edge.
  LpResult r = simplex_maximize({{1, 0}, {0, 1}, {1, 1}}, {2, 3, 4}, {1, 1});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.value, 4.0, 1e-9);
}

TEST(Simplex, UnboundedDetected) {
  // max x with no constraint limiting x.
  LpResult r = simplex_maximize({{0}}, {1}, {1});
  EXPECT_EQ(r.status, LpResult::Status::kUnbounded);
}

TEST(Simplex, ZeroObjective) {
  LpResult r = simplex_maximize({{1}}, {5}, {0});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(Simplex, DegenerateRhsZero) {
  // b = 0 rows force x = 0; Bland's rule must not cycle.
  LpResult r = simplex_maximize({{1, 1}, {1, -1}}, {0, 0}, {1, 0});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(Simplex, RejectsNegativeRhs) {
  EXPECT_THROW(simplex_maximize({{1}}, {-1}, {1}), RequireError);
}

TEST(Simplex, RejectsRaggedMatrix) {
  EXPECT_THROW(simplex_maximize({{1, 2}, {1}}, {1, 1}, {1, 1}), RequireError);
}

TEST(Simplex, MatchingLpHalfIntegral) {
  // Fractional matching on a triangle: max x01+x02+x12, each vertex row
  // sums <= 1.  LP optimum is 3/2 (half-integral), IP optimum 1.
  LpResult r = simplex_maximize(
      {{1, 1, 0}, {1, 0, 1}, {0, 1, 1}}, {1, 1, 1}, {1, 1, 1});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.value, 1.5, 1e-9);
}

TEST(Simplex, SolutionIsFeasible) {
  // Random packing LPs: returned x must satisfy Ax <= b and x >= 0.
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 8, cols = 6;
    std::vector<std::vector<double>> a(rows, std::vector<double>(cols));
    std::vector<double> b(rows), c(cols);
    for (auto& row : a)
      for (auto& v : row) v = rng.chance(0.4) ? 1.0 : 0.0;
    // Guarantee every column is bounded so the LP cannot be unbounded.
    for (std::size_t j = 0; j < cols; ++j) a[0][j] = 1.0;
    for (auto& v : b) v = 1.0 + rng.below(3);
    for (auto& v : c) v = 0.5 + rng.uniform() * 2;
    LpResult r = simplex_maximize(a, b, c);
    ASSERT_EQ(r.status, LpResult::Status::kOptimal);
    for (double x : r.x) EXPECT_GE(x, -1e-9);
    for (std::size_t i = 0; i < rows; ++i) {
      double lhs = 0;
      for (std::size_t j = 0; j < cols; ++j) lhs += a[i][j] * r.x[j];
      EXPECT_LE(lhs, b[i] + 1e-7);
    }
  }
}

TEST(Simplex, ValueMatchesRecomputation) {
  LpResult r = simplex_maximize({{2, 1}, {1, 3}}, {8, 9}, {5, 4});
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_NEAR(r.value, 5 * r.x[0] + 4 * r.x[1], 1e-9);
}

}  // namespace
}  // namespace osp
