// Tests for the flat engine: golden equivalence against the seed engine
// and seed algorithms, batch-runner determinism, and scratch reuse.
//
// The equivalence suite works at two levels:
//  * engine level — play() / play_flat() must reproduce play_reference()
//    (the seed engine, preserved verbatim) exactly, including the
//    per-element decision traces, for every algorithm in the library;
//  * algorithm level — the ported decide() implementations must reproduce
//    the SEED implementations of randPr / the baselines (replicated here
//    verbatim from the pre-refactor sources) decision for decision.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "algos/baselines.hpp"
#include "api/policy_registry.hpp"
#include "core/cpu_features.hpp"
#include "core/game.hpp"
#include "core/priority.hpp"
#include "core/rand_pr.hpp"
#include "engine/batch_runner.hpp"
#include "engine/trial.hpp"
#include "gen/random_instances.hpp"
#include "testing/seed_reference.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// ---------------------------------------------------------------------
// Seed algorithm replicas (verbatim from the pre-refactor sources).

/// The seed repo's greedy-maxw baseline: stable_sort selection.
class SeedGreedyMaxWeight final : public ActiveTracking {
 public:
  std::string name() const override { return "seed-greedy-maxw"; }
  std::vector<SetId> on_element(
      ElementId, Capacity capacity,
      const std::vector<SetId>& candidates) override {
    std::vector<SetId> active, dead;
    for (SetId s : candidates)
      (is_active(s) ? active : dead).push_back(s);
    std::stable_sort(active.begin(), active.end(), [&](SetId a, SetId b) {
      double sa = meta()[a].weight, sb = meta()[b].weight;
      if (sa != sb) return sa > sb;
      return a < b;
    });
    std::vector<SetId> chosen;
    for (SetId s : active) {
      if (chosen.size() == capacity) break;
      chosen.push_back(s);
    }
    for (SetId s : dead) {
      if (chosen.size() == capacity) break;
      chosen.push_back(s);
    }
    record(candidates, chosen);
    return chosen;
  }
};

/// The seed repo's round-robin baseline, cursor behaviour included.
class SeedRoundRobin final : public ActiveTracking {
 public:
  std::string name() const override { return "seed-round-robin"; }
  void start(const std::vector<SetMeta>& sets) override {
    ActiveTracking::start(sets);
    cursor_ = 0;
  }
  std::vector<SetId> on_element(
      ElementId, Capacity capacity,
      const std::vector<SetId>& candidates) override {
    std::vector<SetId> active, dead;
    for (SetId s : candidates) (is_active(s) ? active : dead).push_back(s);
    std::stable_sort(active.begin(), active.end(), [&](SetId a, SetId b) {
      bool wa = a >= cursor_, wb = b >= cursor_;
      if (wa != wb) return wa;
      return a < b;
    });
    std::vector<SetId> chosen;
    for (SetId s : active) {
      if (chosen.size() == capacity) break;
      chosen.push_back(s);
    }
    for (SetId s : dead) {
      if (chosen.size() == capacity) break;
      chosen.push_back(s);
    }
    if (!chosen.empty()) cursor_ = chosen.front() + 1;
    if (cursor_ >= meta().size()) cursor_ = 0;
    record(candidates, chosen);
    return chosen;
  }

 private:
  std::size_t cursor_ = 0;
};

/// The seed repo's uniform-random baseline: identical Rng draw sequence.
class SeedUniformRandomChoice final : public ActiveTracking {
 public:
  explicit SeedUniformRandomChoice(Rng rng) : rng_(rng) {}
  std::string name() const override { return "seed-uniform-random"; }
  std::vector<SetId> on_element(
      ElementId, Capacity capacity,
      const std::vector<SetId>& candidates) override {
    std::vector<SetId> pool;
    for (SetId s : candidates)
      if (is_active(s)) pool.push_back(s);
    if (pool.empty()) pool = candidates;
    std::vector<SetId> chosen;
    for (std::size_t i = 0; i < pool.size() && chosen.size() < capacity;
         ++i) {
      std::size_t j =
          i + static_cast<std::size_t>(rng_.below(pool.size() - i));
      std::swap(pool[i], pool[j]);
      chosen.push_back(pool[i]);
    }
    record(candidates, chosen);
    return chosen;
  }

 private:
  Rng rng_;
};

// ---------------------------------------------------------------------
// Helpers.

/// Wraps an algorithm and records every answer it gives, on any path.
class Recording final : public OnlineAlgorithm {
 public:
  explicit Recording(OnlineAlgorithm& inner) : inner_(inner) {}
  std::string name() const override { return inner_.name(); }
  void start(const std::vector<SetMeta>& sets) override {
    inner_.start(sets);
  }
  std::vector<SetId> on_element(
      ElementId u, Capacity capacity,
      const std::vector<SetId>& candidates) override {
    std::vector<SetId> chosen = inner_.on_element(u, capacity, candidates);
    trace.push_back(chosen);
    return chosen;
  }
  std::size_t decide(ElementId u, Capacity capacity, const SetId* candidates,
                     std::size_t num_candidates, SetId* out) override {
    std::size_t n =
        inner_.decide(u, capacity, candidates, num_candidates, out);
    trace.emplace_back(out, out + n);
    return n;
  }
  void decide_batch(const ArrivalBlock& block, BlockScratch& scratch,
                    BlockChoices& out) override {
    inner_.decide_batch(block, scratch, out);
    // One trace row per block record, so block traces compare 1:1 with
    // per-element traces.
    for (std::size_t i = 0; i < block.count; ++i)
      trace.emplace_back(out.chosen_of(i), out.chosen_of(i) + out.num_chosen(i));
  }

  std::vector<std::vector<SetId>> trace;

 private:
  OnlineAlgorithm& inner_;
};

void expect_same_outcome(const Outcome& a, const Outcome& b,
                         const std::string& what) {
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.completed_mask, b.completed_mask) << what;
  EXPECT_EQ(a.decisions, b.decisions) << what;
  EXPECT_DOUBLE_EQ(a.benefit, b.benefit) << what;
}

Instance fuzz_instance(std::size_t round, Rng& gen) {
  const std::size_t m = 3 + gen.below(30);
  const std::size_t n = 4 + gen.below(60);
  const std::size_t k = 1 + gen.below(4);  // k <= 4 <= n always
  const WeightModel wm = (round % 3 == 0) ? WeightModel::unit()
                         : (round % 3 == 1)
                             ? WeightModel::uniform(1, 9)
                             : WeightModel::zipf(1.3);
  if (round % 2 == 0)
    return random_instance(m, n, k, wm, gen);
  return random_capacity_instance(m, n, k, /*cap_max=*/3, wm, gen);
}

struct Maker {
  std::string label;
  std::function<std::unique_ptr<OnlineAlgorithm>(Rng)> make;
};

/// Every policy in the library — the PolicyRegistry's full catalog, so a
/// newly registered policy is swept automatically — plus two test-only
/// degenerate hash configurations.  This is the population both the
/// engine-equivalence and the decide_batch fuzz suites quantify over.
std::vector<Maker> all_policy_makers() {
  std::vector<Maker> makers;
  for (const api::PolicyInfo& p : api::policies().entries())
    makers.push_back({p.name, p.make});
  makers.push_back({"hashPr/const", [](Rng) {
                      // Degenerate hash: every set gets the same key, so
                      // every comparison runs the exact tie-resolution
                      // path (and the block kernel's rank-collision cold
                      // branch) — the worst case for quantized ranks.
                      // Not a useful policy, hence not registered.
                      return std::make_unique<HashedRandPr>(
                          [](std::uint64_t) { return 0.5; }, "hashPr/const");
                    }});
  makers.push_back({"hashPr/filt-custom", [](Rng r) {
                      // An ad-hoc (non-factory) hash with filter_dead:
                      // stateful decisions over a hash with no rehash
                      // recipe, driving the per-element fallback of
                      // decide_batch on a non-reseedable instance.
                      const std::uint64_t mult = r() | 1;
                      return std::make_unique<HashedRandPr>(
                          [mult](std::uint64_t key) {
                            return static_cast<double>((key + 1) * mult %
                                                       10007) /
                                   10007.0;
                          },
                          "hashPr/filt-custom",
                          RandPrOptions{.filter_dead = true});
                    }});
  return makers;
}

// ---------------------------------------------------------------------
// Golden equivalence: flat engine vs seed engine, ported vs seed algs.

TEST(GoldenEquivalence, FlatEngineMatchesSeedEngineForAllAlgorithms) {
  Rng master(0xf1a7);
  PlayScratch scratch;  // deliberately shared across all runs
  for (std::size_t round = 0; round < 24; ++round) {
    Rng gen = master.split(round);
    Instance inst = fuzz_instance(round, gen);

    for (const Maker& mk : all_policy_makers()) {
      Rng seed_rng = master.split(1000 + round);
      auto ref_alg = mk.make(seed_rng);
      auto flat_alg = mk.make(seed_rng);
      auto plain_alg = mk.make(seed_rng);

      Recording ref_rec(*ref_alg);
      Recording flat_rec(*flat_alg);

      Outcome ref = play_reference(inst, ref_rec);
      Outcome flat = play_flat(inst, flat_rec, scratch);
      Outcome plain = play(inst, *plain_alg);

      const std::string what = mk.label + " round " + std::to_string(round);
      expect_same_outcome(ref, flat, what + " (reference vs flat)");
      expect_same_outcome(ref, plain, what + " (reference vs play)");
      EXPECT_EQ(ref_rec.trace, flat_rec.trace) << what << " decision trace";
    }
  }
}

TEST(GoldenEquivalence, PortedRandPrMatchesSeedImplementation) {
  Rng master(0x5eed);
  PlayScratch scratch;
  for (std::size_t round = 0; round < 16; ++round) {
    Rng gen = master.split(round);
    Instance inst = fuzz_instance(round, gen);
    struct Opt {
      std::string label;
      RandPrOptions options;
    };
    for (const Opt& o :
         {Opt{"paper", {}},
          Opt{"filt", {.filter_dead = true}},
          Opt{"filt2", {.filter_dead = true, .allowed_misses = 2}},
          Opt{"unif", {.ignore_weights = true}},
          Opt{"fresh", {.fresh_priorities_per_element = true}}}) {
      Rng trial_rng = master.split(500 + round);
      seedref::SeedRandPr seed_alg(trial_rng, o.options);
      RandPr ported_alg(trial_rng, o.options);
      Recording seed_rec(seed_alg);
      Recording ported_rec(ported_alg);
      Outcome seed_out = play_reference(inst, seed_rec);
      Outcome ported_out = play_flat(inst, ported_rec, scratch);
      const std::string what = "randPr/" + o.label + " round " +
                               std::to_string(round) + " on " +
                               inst.describe();
      expect_same_outcome(seed_out, ported_out, what);
      EXPECT_EQ(seed_rec.trace, ported_rec.trace) << what;
    }
  }
}

TEST(GoldenEquivalence, PortedBaselinesMatchSeedImplementations) {
  Rng master(0xba5e);
  PlayScratch scratch;
  for (std::size_t round = 0; round < 16; ++round) {
    Rng gen = master.split(round);
    Instance inst = fuzz_instance(round, gen);

    {
      SeedGreedyMaxWeight seed_alg;
      GreedyMaxWeight ported_alg;
      Recording seed_rec(seed_alg);
      Recording ported_rec(ported_alg);
      Outcome a = play_reference(inst, seed_rec);
      Outcome b = play_flat(inst, ported_rec, scratch);
      expect_same_outcome(a, b, "greedy-maxw round " + std::to_string(round));
      EXPECT_EQ(seed_rec.trace, ported_rec.trace) << "greedy-maxw trace";
    }
    {
      SeedRoundRobin seed_alg;
      RoundRobin ported_alg;
      Recording seed_rec(seed_alg);
      Recording ported_rec(ported_alg);
      Outcome a = play_reference(inst, seed_rec);
      Outcome b = play_flat(inst, ported_rec, scratch);
      expect_same_outcome(a, b, "round-robin round " + std::to_string(round));
      EXPECT_EQ(seed_rec.trace, ported_rec.trace) << "round-robin trace";
    }
    {
      Rng trial_rng = master.split(700 + round);
      SeedUniformRandomChoice seed_alg(trial_rng);
      UniformRandomChoice ported_alg(trial_rng);
      Recording seed_rec(seed_alg);
      Recording ported_rec(ported_alg);
      Outcome a = play_reference(inst, seed_rec);
      Outcome b = play_flat(inst, ported_rec, scratch);
      expect_same_outcome(a, b,
                          "uniform-random round " + std::to_string(round));
      EXPECT_EQ(seed_rec.trace, ported_rec.trace) << "uniform-random trace";
    }
  }
}

TEST(GoldenEquivalence, TopByPriorityMatchesPartialSortReference) {
  Rng rng(0x70b);
  for (int round = 0; round < 200; ++round) {
    const std::size_t m = 2 + rng.below(40);
    std::vector<PriorityKey> keys(m);
    for (auto& k : keys) {
      k = sample_rw_key(1.0 + rng.uniform() * 5, rng);
      if (rng.chance(0.2)) k.key = -1.0;  // force some exact collisions
    }
    std::vector<SetId> candidates;
    for (SetId s = 0; s < m; ++s)
      if (rng.chance(0.7)) candidates.push_back(s);
    if (candidates.empty()) candidates.push_back(0);
    const Capacity capacity = 1 + rng.below(4);

    // Seed selection: partial_sort on a copy.
    std::vector<SetId> expected = candidates;
    if (expected.size() > capacity) {
      std::partial_sort(expected.begin(), expected.begin() + capacity,
                        expected.end(),
                        [&](SetId a, SetId b) { return keys[a] > keys[b]; });
      expected.resize(capacity);
    }
    std::vector<SetId> got = top_by_priority(candidates, keys, capacity);
    ASSERT_EQ(expected.size(), got.size());
    // PriorityKey's (key, tie) order is total, so the selections agree
    // element for element, order included.
    EXPECT_EQ(expected, got) << "round " << round;

    // SoA form agrees with the AoS form.
    std::vector<double> ks(m);
    std::vector<std::uint64_t> ts(m);
    for (std::size_t s = 0; s < m; ++s) {
      ks[s] = keys[s].key;
      ts[s] = keys[s].tie;
    }
    std::vector<SetId> soa(std::min<std::size_t>(capacity, candidates.size()));
    std::vector<SetId> scratch;
    soa.resize(top_by_priority_soa(candidates.data(), candidates.size(),
                                   ks.data(), ts.data(), capacity, soa.data(),
                                   scratch));
    EXPECT_EQ(expected, soa) << "soa round " << round;
  }
}

// ---------------------------------------------------------------------
// Block-batched decisions: decide_batch vs the per-element decide path.

TEST(GoldenEquivalence, DecideBatchMatchesPerElementDecideForAllPolicies) {
  // The decide_batch contract: consuming a CSR arrival block must be
  // decision-identical to per-element decide() calls in arrival order —
  // proven here for every policy (block kernels and fallbacks alike), at
  // block sizes that split instances unevenly, including single-element
  // blocks, with full decision traces compared.
  Rng master(0xb10c);
  PlayScratch flat_scratch;
  PlayScratch block_scratch;  // deliberately shared across all runs
  for (std::size_t round = 0; round < 16; ++round) {
    Rng gen = master.split(round);
    Instance inst = fuzz_instance(round, gen);

    for (const Maker& mk : all_policy_makers()) {
      for (std::size_t block_size :
           {std::size_t{1}, std::size_t{3}, std::size_t{64},
            inst.num_elements()}) {
        Rng seed_rng = master.split(4000 + round);
        auto flat_alg = mk.make(seed_rng);
        auto block_alg = mk.make(seed_rng);
        Recording flat_rec(*flat_alg);
        Recording block_rec(*block_alg);

        Outcome flat = play_flat(inst, flat_rec, flat_scratch);
        Outcome block =
            play_flat_blocks(inst, block_rec, block_scratch, block_size);

        const std::string what = mk.label + " round " +
                                 std::to_string(round) + " block_size " +
                                 std::to_string(block_size);
        expect_same_outcome(flat, block, what);
        EXPECT_EQ(flat_rec.trace, block_rec.trace) << what << " trace";
      }
    }
  }
}

TEST(GoldenEquivalence, DecideBatchIsaTiersMatchScalarForAllPolicies) {
  // The dispatch contract of core/cpu_features.hpp: every ISA tier of
  // the block kernel is decision-identical to the scalar path.  Each
  // available ISA is forced exactly the way a fresh process would see it
  // (OSP_FORCE_ISA in the environment, then the startup selection re-run)
  // and swept over every policy × block sizes 1/3/64/whole, comparing
  // outcomes AND full decision traces against the flat per-element
  // engine.  Instances here are wider than the generic fuzz (k up to 24
  // candidates per element) so rows actually reach the lane-parallel
  // kernel, and the policy population includes hashPr/const — all keys
  // equal, every comparison a rank collision — plus a nearly-equal-keys
  // hash whose ranks collide while the exact keys differ, forcing the
  // exact (key, tie) fallback on both of its flavors.
  std::vector<Maker> makers = all_policy_makers();
  makers.push_back(
      {"hashPr/nearly-equal", [](Rng) {
         // Hash outputs 2^-50 apart: far below the u32 rank resolution
         // (~2^-32 relative), so quantized ranks collide in droves while
         // the doubles stay distinct — the vector kernels must report
         // the collision and the caller must rescan exactly.
         return std::make_unique<HashedRandPr>(
             [](std::uint64_t key) {
               return 0.5 + static_cast<double>(key % 64) * 0x1p-50;
             },
             "hashPr/nearly-equal");
       }});

  const char* prev_force = std::getenv("OSP_FORCE_ISA");
  const std::string saved = prev_force != nullptr ? prev_force : "";

  Rng master(0x15a);
  PlayScratch flat_scratch;
  PlayScratch block_scratch;
  for (std::size_t round = 0; round < 6; ++round) {
    Rng gen = master.split(round);
    const std::size_t m = 26 + gen.below(30);
    const std::size_t n = 30 + gen.below(60);
    const std::size_t k = std::vector<std::size_t>{2, 8, 17, 24}[round % 4];
    const WeightModel wm =
        round % 2 == 0 ? WeightModel::unit() : WeightModel::zipf(1.3);
    Instance inst = round % 2 == 0
                        ? random_instance(m, n, k, wm, gen)
                        : random_capacity_instance(m, n, k, 3, wm, gen);

    for (const Maker& mk : makers) {
      // Scalar flat reference: the per-element path never dispatches, so
      // one trace serves as the golden answer for every tier.
      Rng seed_rng = master.split(9000 + round);
      auto flat_alg = mk.make(seed_rng);
      Recording flat_rec(*flat_alg);
      Outcome flat = play_flat(inst, flat_rec, flat_scratch);

      for (simd::Isa isa : simd::available_isas()) {
        setenv("OSP_FORCE_ISA", simd::isa_name(isa), /*overwrite=*/1);
        simd::refresh_active_isa();
        ASSERT_EQ(simd::active_isa(), isa);

        for (std::size_t block_size :
             {std::size_t{1}, std::size_t{3}, std::size_t{64},
              inst.num_elements()}) {
          auto block_alg = mk.make(seed_rng);
          Recording block_rec(*block_alg);
          Outcome block =
              play_flat_blocks(inst, block_rec, block_scratch, block_size);
          const std::string what =
              mk.label + " isa " + simd::isa_name(isa) + " round " +
              std::to_string(round) + " block_size " +
              std::to_string(block_size);
          expect_same_outcome(flat, block, what);
          EXPECT_EQ(flat_rec.trace, block_rec.trace) << what << " trace";
        }
      }
    }
  }

  if (prev_force != nullptr)
    setenv("OSP_FORCE_ISA", saved.c_str(), /*overwrite=*/1);
  else
    unsetenv("OSP_FORCE_ISA");
  simd::refresh_active_isa();
}

TEST(DecideBatch, EmptyAndDegenerateBlocksMatchScalarAndDoNotAllocate) {
  // An empty block, a block of capacity-0 records, and a single-element
  // block must reproduce the scalar path exactly, and warm degenerate
  // calls must not touch the allocator (asserted through buffer identity,
  // the same observable the DispatchGuard pattern uses for misuse:
  // the contract is checked on every call, not sampled).
  const std::size_t m = 8;
  std::vector<SetMeta> metas(m);
  for (SetId s = 0; s < m; ++s) metas[s] = SetMeta{1.0 + s, 2};

  for (const Maker& mk : all_policy_makers()) {
    Rng rng(0xdeadbeef);
    auto scalar = mk.make(rng);
    auto batched = mk.make(rng);
    scalar->start(metas);
    batched->start(metas);

    // Layout: candidates of three records, shared flat array.
    const std::vector<SetId> cands = {0, 2, 5, 1, 3, 4, 6, 7};
    const std::vector<std::size_t> offsets = {0, 3, 6, 8};
    const std::vector<Capacity> caps1 = {1, 2, 1};
    const std::vector<Capacity> caps0 = {0, 0, 0};

    BlockScratch scratch;
    BlockChoices out;

    // Warm-up call so every reusable buffer has its steady-state size.
    const ArrivalBlock warm{0, 3, caps1.data(), cands.data(),
                            offsets.data()};
    batched->decide_batch(warm, scratch, out);

    // Scalar reference for the same three records.
    std::vector<std::vector<SetId>> expected;
    std::vector<SetId> buf(8);
    for (std::size_t i = 0; i < 3; ++i) {
      std::size_t n = scalar->decide(
          static_cast<ElementId>(i), caps1[i], cands.data() + offsets[i],
          offsets[i + 1] - offsets[i], buf.data());
      expected.emplace_back(buf.begin(), buf.begin() + n);
    }
    ASSERT_EQ(out.offsets.size(), 4u);
    for (std::size_t i = 0; i < 3; ++i)
      EXPECT_EQ(out.row(i).to_vector(), expected[i])
          << mk.label << " record " << i;

    const SetId* ids_buf = out.ids.data();
    const std::size_t ids_cap = out.ids.capacity();
    const std::size_t off_cap = out.offsets.capacity();

    // Empty block: no records, no choices, no allocation.
    const ArrivalBlock empty{3, 0, caps1.data(), cands.data(),
                             offsets.data() + 3};
    batched->decide_batch(empty, scratch, out);
    EXPECT_EQ(out.offsets.size(), 1u) << mk.label;
    EXPECT_EQ(out.offsets[0], 0u) << mk.label;
    EXPECT_EQ(out.ids.data(), ids_buf) << mk.label << " ids reallocated";
    EXPECT_EQ(out.ids.capacity(), ids_cap) << mk.label;
    EXPECT_EQ(out.offsets.capacity(), off_cap) << mk.label;

    // Capacity-0 block: every record must choose nothing, like the
    // scalar path (which the capacity guard in top_by_priority covers),
    // and nothing may be allocated.
    auto scalar0 = mk.make(Rng(0xdeadbeef));
    scalar0->start(metas);
    for (std::size_t i = 0; i < 3; ++i) {
      std::size_t n = scalar0->decide(
          static_cast<ElementId>(i), 0, cands.data() + offsets[i],
          offsets[i + 1] - offsets[i], buf.data());
      EXPECT_EQ(n, 0u) << mk.label << " scalar capacity-0 record " << i;
    }
    auto batched0 = mk.make(Rng(0xdeadbeef));
    batched0->start(metas);
    batched0->decide_batch(warm, scratch, out);  // warm this instance too
    const ArrivalBlock zero_cap{0, 3, caps0.data(), cands.data(),
                                offsets.data()};
    batched0->decide_batch(zero_cap, scratch, out);
    ASSERT_EQ(out.offsets.size(), 4u) << mk.label;
    EXPECT_EQ(out.offsets.back(), 0u) << mk.label << " capacity-0 chose";
    EXPECT_EQ(out.offsets.capacity(), off_cap) << mk.label;

    // Single-element block == one scalar decide.
    auto scalar1 = mk.make(Rng(0xf00d));
    auto batched1 = mk.make(Rng(0xf00d));
    scalar1->start(metas);
    batched1->start(metas);
    std::size_t n1 = scalar1->decide(0, caps1[0], cands.data(), 3,
                                     buf.data());
    const ArrivalBlock single{0, 1, caps1.data(), cands.data(),
                              offsets.data()};
    batched1->decide_batch(single, scratch, out);
    ASSERT_EQ(out.offsets.size(), 2u) << mk.label;
    EXPECT_EQ(out.row(0).to_vector(),
              std::vector<SetId>(buf.begin(), buf.begin() + n1))
        << mk.label << " single-record block";
  }
}

// ---------------------------------------------------------------------
// Batch runner.

engine::GridSpec small_grid(const std::vector<const Instance*>& instances) {
  engine::GridSpec spec;
  spec.instances = instances;
  for (const char* policy : {"randpr", "greedy:maxw"}) {
    const api::PolicyInfo& info = api::policies().at(policy);
    spec.algorithms.push_back({info.name, info.make});
  }
  spec.trials = 9;
  spec.master_seed = 0xabcdef;
  return spec;
}

TEST(BatchRunner, DeterministicAcrossThreadCounts) {
  Rng gen(77);
  Instance a = random_instance(12, 20, 3, WeightModel::unit(), gen);
  Instance b = random_instance(20, 30, 4, WeightModel::uniform(1, 5), gen);
  engine::GridSpec spec = small_grid({&a, &b});

  auto run_with = [&](std::size_t threads) {
    engine::BatchRunner runner{engine::BatchOptions{threads}};
    return engine::run_grid(runner, spec);
  };
  auto cells1 = run_with(1);
  auto cells2 = run_with(2);
  auto cells5 = run_with(5);

  ASSERT_EQ(cells1.size(), 4u);
  ASSERT_EQ(cells2.size(), cells1.size());
  ASSERT_EQ(cells5.size(), cells1.size());
  for (std::size_t i = 0; i < cells1.size(); ++i) {
    // Bitwise equality: seeding depends only on grid coordinates and
    // aggregation order is fixed, so thread count must not matter at all.
    EXPECT_EQ(cells1[i].benefit.mean(), cells2[i].benefit.mean()) << i;
    EXPECT_EQ(cells1[i].benefit.mean(), cells5[i].benefit.mean()) << i;
    EXPECT_EQ(cells1[i].benefit.stddev(), cells5[i].benefit.stddev()) << i;
    EXPECT_EQ(cells1[i].decisions.mean(), cells5[i].decisions.mean()) << i;
    EXPECT_EQ(cells1[i].elements, cells5[i].elements) << i;
    EXPECT_EQ(cells1[i].benefit.count(), 9u) << i;
  }
}

TEST(BatchRunner, MapReturnsResultsInIndexOrder) {
  engine::BatchRunner runner{engine::BatchOptions{4}};
  auto out = runner.map<std::size_t>(
      100, [](std::size_t i, engine::TrialContext&) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(BatchRunner, PropagatesExceptions) {
  engine::BatchRunner runner{engine::BatchOptions{3}};
  EXPECT_THROW(
      runner.map<int>(50,
                      [](std::size_t i, engine::TrialContext&) {
                        if (i == 31) throw RequireError("boom");
                        return 0;
                      }),
      RequireError);
}

TEST(BatchRunner, TrialSeedsAreStableAndDistinct) {
  // Stability: the same coordinates always give the same seed (documented
  // contract — results must be reproducible across runs and machines).
  EXPECT_EQ(engine::trial_seed(1, 2, 3, 4), engine::trial_seed(1, 2, 3, 4));
  // Distinctness across each coordinate.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4; ++i)
    for (std::uint64_t a = 0; a < 4; ++a)
      for (std::uint64_t t = 0; t < 4; ++t)
        seeds.push_back(engine::trial_seed(42, i, a, t));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// ---------------------------------------------------------------------
// ActiveTracking underflow guard (satellite fix).

TEST(ActiveTracking, RemainingClampsWhenSetOverflowsDeclaredSize) {
  class Probe final : public ActiveTracking {
   public:
    std::string name() const override { return "probe"; }
    std::size_t decide(ElementId, Capacity, const SetId* candidates,
                       std::size_t num_candidates, SetId* out) override {
      out[0] = candidates[0];
      record(candidates, num_candidates, out, 1);
      return 1;
    }
  };
  Probe p;
  p.start({{1.0, /*declared size=*/1}});
  std::vector<SetId> cands{0};
  SetId out[1];
  p.decide(0, 1, cands.data(), 1, out);
  EXPECT_EQ(p.remaining(0), 0u);
  // A second arrival of the same set exceeds the declared size; before the
  // guard this wrapped std::size_t to ~2^64.
  p.decide(1, 1, cands.data(), 1, out);
  EXPECT_EQ(p.seen(0), 2u);
  EXPECT_EQ(p.remaining(0), 0u);
  EXPECT_EQ(p.misses(0), 0u);
  EXPECT_TRUE(p.is_active(0));
}

// ---------------------------------------------------------------------
// Scratch reuse across differently-shaped instances.

TEST(PlayScratch, ReusableAcrossInstancesOfDifferentShape) {
  Rng gen(123);
  PlayScratch scratch;
  Instance big = random_instance(40, 60, 4, WeightModel::unit(), gen);
  Instance small = random_instance(4, 6, 2, WeightModel::unit(), gen);
  for (const Instance* inst : {&big, &small, &big, &small}) {
    Rng r(99);
    RandPr flat_alg(r);
    RandPr ref_alg(r);
    Outcome a = play_flat(*inst, flat_alg, scratch);
    Outcome b = play_reference(*inst, ref_alg);
    expect_same_outcome(a, b, inst->describe());
  }
}

}  // namespace
}  // namespace osp
