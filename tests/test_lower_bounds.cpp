// Tests for the lower-bound constructions: Theorem 3's adaptive adversary
// against every deterministic baseline, and the Lemma 9 / weak-construction
// instance invariants.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "algos/baselines.hpp"
#include "algos/offline.hpp"
#include "api/adversarial.hpp"
#include "api/scenario.hpp"
#include "core/bounds.hpp"
#include "core/game.hpp"
#include "core/io.hpp"
#include "core/rand_pr.hpp"
#include "design/lower_bounds.hpp"
#include "util/math.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

class Theorem3 : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Theorem3, EveryBaselineCompletesAtMostOne) {
  auto [sigma, k] = GetParam();
  for (auto& alg : make_deterministic_baselines()) {
    AdaptiveAdversaryResult r = run_theorem3_adversary(
        *alg, static_cast<std::size_t>(sigma), static_cast<std::size_t>(k));
    EXPECT_LE(r.alg_outcome.benefit, 1.0)
        << alg->name() << " sigma=" << sigma << " k=" << k;
    EXPECT_DOUBLE_EQ(r.opt_lower_bound,
                     theorem3_lower_bound(static_cast<std::size_t>(sigma),
                                          static_cast<std::size_t>(k)));
  }
}

INSTANTIATE_TEST_SUITE_P(Params, Theorem3,
                         ::testing::Values(std::pair{2, 2}, std::pair{2, 3},
                                           std::pair{3, 2}, std::pair{3, 3},
                                           std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{2, 4}, std::pair{5, 3}));

TEST(Theorem3Adversary, WitnessIsFeasibleAndCompletable) {
  GreedyFirst alg;
  AdaptiveAdversaryResult r = run_theorem3_adversary(alg, 3, 3);
  EXPECT_EQ(r.witness.size(), 9u);  // sigma^(k-1)
  EXPECT_TRUE(is_feasible(r.transcript, r.witness));
  // Every witness set must be completable by assigning all its elements to
  // it — i.e. the witness is an actual opt solution of value sigma^(k-1).
  OfflineResult opt = exact_optimum(r.transcript);
  EXPECT_GE(opt.value + 1e-9, static_cast<double>(r.witness.size()));
}

TEST(Theorem3Adversary, TranscriptShape) {
  GreedyMaxWeight alg;
  AdaptiveAdversaryResult r = run_theorem3_adversary(alg, 3, 2);
  const InstanceStats st = r.transcript.stats();
  EXPECT_EQ(st.num_sets, 9u);        // sigma^k
  EXPECT_EQ(st.k_max, 2u);           // all sets size k
  EXPECT_TRUE(st.uniform_size);
  EXPECT_EQ(st.sigma_max, 3u);       // phase elements have load sigma
  EXPECT_TRUE(st.unweighted);
  EXPECT_TRUE(st.unit_capacity);
}

TEST(Theorem3Adversary, RandPrEscapesTheTrap) {
  // The adversary is built adaptively against a deterministic algorithm;
  // replaying its transcript obliviously against randPr must yield far
  // more than 1 set in expectation (the gap Theorem 3 formalizes).
  GreedyFirst victim;
  AdaptiveAdversaryResult r = run_theorem3_adversary(victim, 4, 3);
  Rng master(17);
  double total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    RandPr alg(master.split(t));
    total += play(r.transcript, alg).benefit;
  }
  EXPECT_GT(total / trials, 2.0);  // victim got <= 1
}

TEST(Theorem3Adversary, TranscriptAndWitnessBitIdenticalAcrossRuns) {
  // The adversary draws no randomness given (victim, sigma, k): repeated
  // runs must serialize the transcript identically and reproduce the
  // same witness.  The dashboard's shard/merge byte-identity rests on
  // replayed transcripts being this deterministic.
  for (auto [sigma, k] : {std::pair<std::size_t, std::size_t>{2, 2},
                          {3, 3},
                          {4, 2}}) {
    GreedyFirst a1, a2;
    AdaptiveAdversaryResult r1 = run_theorem3_adversary(a1, sigma, k);
    AdaptiveAdversaryResult r2 = run_theorem3_adversary(a2, sigma, k);
    std::ostringstream s1, s2;
    write_instance(s1, r1.transcript);
    write_instance(s2, r2.transcript);
    EXPECT_EQ(s1.str(), s2.str()) << "sigma=" << sigma << " k=" << k;
    EXPECT_EQ(r1.witness, r2.witness);
    std::size_t expect = 1;
    for (std::size_t i = 1; i < k; ++i) expect *= sigma;
    EXPECT_EQ(r1.witness.size(), expect);  // sigma^(k-1)
  }
}

TEST(Gadgets, SameSeedReproducesBitIdenticalInstances) {
  {
    Rng r1(42), r2(42);
    Lemma9Instance a = build_lemma9_instance(3, r1);
    Lemma9Instance b = build_lemma9_instance(3, r2);
    std::ostringstream s1, s2;
    write_instance(s1, a.instance);
    write_instance(s2, b.instance);
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_EQ(a.planted, b.planted);
  }
  {
    Rng r1(43), r2(43);
    WeakLbInstance a = build_weak_lb_instance(6, r1);
    WeakLbInstance b = build_weak_lb_instance(6, r2);
    std::ostringstream s1, s2;
    write_instance(s1, a.instance);
    write_instance(s2, b.instance);
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_EQ(a.column_witness, b.column_witness);
  }
}

TEST(AdversarialCells, WitnessesFeasibleWithDocumentedValues) {
  // Every cell of every adversarial/* catalog family must plant a
  // feasible witness whose value equals the documented bound
  // (sigma^(k-1), ell^3, t) — the invariant the dashboard's opt
  // denominators are certified against.
  for (const char* family :
       {"adversarial/theorem3", "adversarial/weak-lb", "adversarial/lemma9"}) {
    for (const api::ScenarioSpec& cell :
         api::expand(api::scenarios().at(family))) {
      if (cell.family == api::ScenarioFamily::kLemma9 && cell.ell > 3)
        continue;  // kept small for test runtime
      Rng rng(5);
      api::AdversarialCell adv = api::build_adversarial_cell(cell, rng);
      EXPECT_TRUE(is_feasible(adv.instance, adv.witness))
          << cell.display_label();
      double expect = 0;
      switch (cell.family) {
        case api::ScenarioFamily::kTheorem3:
          expect = theorem3_lower_bound(cell.sigma, cell.k);
          break;
        case api::ScenarioFamily::kWeakLb:
          expect = static_cast<double>(cell.t);
          break;
        default:
          expect = static_cast<double>(cell.ell * cell.ell * cell.ell);
          break;
      }
      EXPECT_DOUBLE_EQ(adv.witness_value, expect) << cell.display_label();
      // Unweighted gadgets: witness value is its cardinality.
      EXPECT_DOUBLE_EQ(adv.witness_value,
                       static_cast<double>(adv.witness.size()));
      EXPECT_GT(adv.bound, 0.0);
    }
  }
}

TEST(Theorem3Adversary, ParameterValidation) {
  GreedyFirst alg;
  EXPECT_THROW(run_theorem3_adversary(alg, 1, 3), RequireError);
  EXPECT_THROW(run_theorem3_adversary(alg, 2, 0), RequireError);
}

class Lemma9 : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lemma9, InstanceInvariants) {
  const std::size_t ell = GetParam();
  Rng rng(ell * 101);
  Lemma9Instance li = build_lemma9_instance(ell, rng);
  const Instance& inst = li.instance;
  const std::size_t L2 = ell * ell;

  // ell^4 sets, uniform size 2ell^2 + ell + 1, unweighted, unit capacity.
  EXPECT_EQ(inst.num_sets(), L2 * L2);
  InstanceStats st = inst.stats();
  EXPECT_TRUE(st.uniform_size);
  EXPECT_EQ(st.k_max, 2 * L2 + ell + 1);
  EXPECT_TRUE(st.unweighted);
  EXPECT_TRUE(st.unit_capacity);
  EXPECT_EQ(st.sigma_max, L2);  // Stage III row elements have load ell^2
}

TEST_P(Lemma9, ElementCensusMatchesPaper) {
  const std::size_t ell = GetParam();
  Rng rng(ell * 103);
  Lemma9Instance li = build_lemma9_instance(ell, rng);
  const std::size_t L2 = ell * ell, L3 = L2 * ell, L4 = L2 * L2;

  // Stage I: ell^4 elements of load ell; Stage II: ell^5 of load ell;
  // Stage III: ell^4 of load ell^2 - ell plus ell^2 - ell of load ell^2;
  // Stage IV: ell^3 (ell^2 + 1) singletons.
  std::size_t load_ell = 0, load_l2_minus = 0, load_l2 = 0, load_one = 0;
  for (ElementId u = 0; u < li.instance.num_elements(); ++u) {
    std::size_t load = li.instance.load(u);
    if (load == ell) ++load_ell;
    else if (load == L2 - ell) ++load_l2_minus;
    else if (load == L2) ++load_l2;
    else if (load == 1) ++load_one;
    else if (ell == 2 && load == 2) ++load_ell;  // degenerate overlap
    else FAIL() << "unexpected load " << load;
  }
  if (ell > 2) {
    EXPECT_EQ(load_ell, L4 + L4 * ell);
    EXPECT_EQ(load_l2_minus, L4);
    EXPECT_EQ(load_l2, L2 - ell);
    EXPECT_EQ(load_one, L3 * (L2 + 1));
  }
  EXPECT_EQ(li.instance.num_elements(),
            L4 + L4 * ell + L4 + (L2 - ell) + L3 * (L2 + 1));
}

TEST_P(Lemma9, PlantedSolutionFeasibleOfSizeEllCubed) {
  const std::size_t ell = GetParam();
  Rng rng(ell * 107);
  Lemma9Instance li = build_lemma9_instance(ell, rng);
  EXPECT_EQ(li.planted.size(), ell * ell * ell);
  EXPECT_TRUE(is_feasible(li.instance, li.planted));
  // Feasible + every set has all its elements available => opt >= ell^3:
  // verify pairwise disjointness of planted sets directly.
  std::set<ElementId> used;
  for (SetId s : li.planted)
    for (ElementId u : li.instance.elements_of(s)) {
      EXPECT_TRUE(used.insert(u).second)
          << "planted sets share element " << u;
    }
}

TEST_P(Lemma9, DeterministicAlgorithmsEarnPolylog) {
  // Expected benefit of deterministic baselines over the distribution must
  // be tiny compared with opt >= ell^3.
  const std::size_t ell = GetParam();
  if (ell > 4) GTEST_SKIP() << "kept small for test runtime";
  if (ell == 2)
    GTEST_SKIP() << "polylog vs ell^3 only separates for ell >= 3";
  Rng master(ell * 109);
  const int draws = 5;
  const std::size_t num_algs = make_deterministic_baselines().size();
  double worst = 0;
  for (std::size_t ai = 0; ai < num_algs; ++ai) {
    double total = 0;
    for (int d = 0; d < draws; ++d) {
      Rng rng = master.split(static_cast<std::uint64_t>(d) * 100 + 1);
      Lemma9Instance li = build_lemma9_instance(ell, rng);
      auto fresh = std::move(make_deterministic_baselines()[ai]);
      total += play(li.instance, *fresh).benefit;
    }
    worst = std::max(worst, total / draws);
  }
  double opt_lb = static_cast<double>(ell * ell * ell);
  EXPECT_LT(worst, opt_lb / 4.0);
}

// 4, 8 and 9 exercise the extension-field gadgets (GF(4)/GF(16),
// GF(8)/GF(64), GF(9)/GF(81)); the rest are prime fields.
INSTANTIATE_TEST_SUITE_P(PrimePowers, Lemma9,
                         ::testing::Values(2, 3, 4, 5, 8, 9));

TEST(Lemma9Construction, RejectsNonPrimePower) {
  Rng rng(1);
  EXPECT_THROW(build_lemma9_instance(6, rng), RequireError);
  EXPECT_THROW(build_lemma9_instance(10, rng), RequireError);
}

TEST(WeakLb, ShapeAndWitness) {
  Rng rng(31);
  WeakLbInstance wl = build_weak_lb_instance(5, rng);
  const Instance& inst = wl.instance;
  EXPECT_EQ(inst.num_sets(), 25u);
  InstanceStats st = inst.stats();
  EXPECT_TRUE(st.uniform_size);
  EXPECT_EQ(st.sigma_max, 5u);
  EXPECT_EQ(wl.column_witness.size(), 5u);
  EXPECT_TRUE(is_feasible(inst, wl.column_witness));
  // Column sets are pairwise disjoint.
  std::set<ElementId> used;
  for (SetId s : wl.column_witness)
    for (ElementId u : inst.elements_of(s))
      EXPECT_TRUE(used.insert(u).second);
}

TEST(WeakLb, DeterministicAlgorithmsSufferRandPrToo) {
  // On the warm-up distribution every online algorithm loses a factor of
  // ~t/polylog; check that both greedy and randPr land far below opt=t.
  Rng master(33);
  const std::size_t t = 8;
  double greedy_total = 0, randpr_total = 0;
  const int draws = 30;
  for (int d = 0; d < draws; ++d) {
    Rng rng = master.split(d);
    WeakLbInstance wl = build_weak_lb_instance(t, rng);
    GreedyFirst g;
    greedy_total += play(wl.instance, g).benefit;
    RandPr rp(master.split(1000 + d));
    randpr_total += play(wl.instance, rp).benefit;
  }
  // O(log t) survivors vs opt = t; at t = 8 the polylog constants leave
  // roughly half of opt, so assert a clear (not asymptotic) separation.
  EXPECT_LT(greedy_total / draws, 0.75 * static_cast<double>(t));
  EXPECT_LT(randpr_total / draws, 0.75 * static_cast<double>(t));
}

}  // namespace
}  // namespace osp
