// Tests for the SIMD row kernels and the runtime ISA dispatcher: every
// available vector kernel must honour the RowArgmax contract against the
// exact scalar order (collision == false implies the returned candidate
// is the unique rank maximum; a genuinely shared maximum must always be
// reported), the block selection kernel must be decision-identical
// across every ISA tier — including crafted rank-collision rows that
// force the exact (key, tie) fallback — and OSP_FORCE_ISA must pin (or
// loudly reject) the selection exactly as a fresh process would.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cpu_features.hpp"
#include "core/csr.hpp"
#include "core/priority.hpp"
#include "core/rand_pr.hpp"
#include "core/simd.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

using simd::Isa;
using simd::RowArgmax;

/// Restores OSP_FORCE_ISA and the dispatcher selection on scope exit, so
/// a failing assertion cannot leak a pinned ISA into later tests.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(const char* value) {
    const char* prev = std::getenv("OSP_FORCE_ISA");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr)
      setenv("OSP_FORCE_ISA", value, /*overwrite=*/1);
    else
      unsetenv("OSP_FORCE_ISA");
  }
  ~ScopedForceIsa() {
    if (had_prev_)
      setenv("OSP_FORCE_ISA", prev_.c_str(), /*overwrite=*/1);
    else
      unsetenv("OSP_FORCE_ISA");
    simd::refresh_active_isa();
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// Exact oracle: the true (rank-max, multiplicity) of a row.
struct RowTruth {
  SetId best;          // smallest-index candidate attaining the max rank
  bool max_duplicated; // the max rank is attained more than once
};

RowTruth row_truth(const std::vector<SetId>& row,
                   const std::vector<std::uint32_t>& qranks) {
  RowTruth t{row[0], false};
  std::uint32_t m = qranks[row[0]];
  for (std::size_t i = 1; i < row.size(); ++i) {
    const std::uint32_t r = qranks[row[i]];
    if (r > m) {
      m = r;
      t.best = row[i];
      t.max_duplicated = false;
    } else if (r == m) {
      t.max_duplicated = true;
    }
  }
  return t;
}

std::vector<Isa> vector_isas() {
  std::vector<Isa> v;
  for (Isa isa : simd::available_isas())
    if (simd::unit_rank_argmax_fn(isa) != nullptr) v.push_back(isa);
  return v;
}

// ------------------------------------------------------------------
// Kernel-level contract

TEST(UnitArgmaxKernel, PortableOracleMatchesTruthExactly) {
  Rng rng(11);
  for (int it = 0; it < 2000; ++it) {
    const std::size_t num_sets = 1 + rng.below(64);
    std::vector<std::uint32_t> qranks(num_sets);
    // Small rank alphabet: duplicates (incl. duplicated maxima) are common.
    for (auto& r : qranks) r = static_cast<std::uint32_t>(rng.below(8));
    const std::size_t n = 1 + rng.below(40);
    std::vector<SetId> row(n);
    for (auto& s : row) s = static_cast<SetId>(rng.below(num_sets));
    const RowTruth t = row_truth(row, qranks);
    const RowArgmax got =
        simd::unit_rank_argmax_portable(row.data(), n, qranks.data());
    // The portable reference is exact, not conservative: its collision
    // flag equals "the max is duplicated", and without duplication its
    // winner is the unique maximum.
    EXPECT_EQ(got.collision, t.max_duplicated);
    if (!t.max_duplicated) {
      EXPECT_EQ(got.best, t.best);
    } else {
      EXPECT_EQ(qranks[got.best], qranks[t.best]);
    }
  }
}

TEST(UnitArgmaxKernel, VectorKernelsHonourContractOnRandomRows) {
  const std::vector<Isa> isas = vector_isas();
  for (Isa isa : isas) {
    simd::UnitArgmaxFn fn = simd::unit_rank_argmax_fn(isa);
    Rng rng(23 + static_cast<std::uint64_t>(isa));
    for (int it = 0; it < 4000; ++it) {
      const std::size_t num_sets = 8 + rng.below(256);
      std::vector<std::uint32_t> qranks(num_sets);
      const bool dense_ranks = it % 2 == 0;  // force collisions half the time
      for (auto& r : qranks)
        r = dense_ranks ? static_cast<std::uint32_t>(rng.below(6))
                        : static_cast<std::uint32_t>(rng() >> 32);
      // Row lengths straddle the min-row gate, the lane width, and the
      // scalar tail (n not a lane multiple).
      const std::size_t n = simd::kUnitArgmaxMinRow + rng.below(60);
      std::vector<SetId> row(n);
      for (auto& s : row) s = static_cast<SetId>(rng.below(num_sets));

      const RowTruth t = row_truth(row, qranks);
      const RowArgmax got = fn(row.data(), n, qranks.data());
      // Conservative contract: no collision report means the winner is
      // the unique exact maximum; a duplicated maximum must be reported.
      if (!got.collision) {
        EXPECT_FALSE(t.max_duplicated) << simd::isa_name(isa);
        EXPECT_EQ(got.best, t.best) << simd::isa_name(isa);
      }
      if (t.max_duplicated) {
        EXPECT_TRUE(got.collision) << simd::isa_name(isa);
      }
      // Even on collision the reported best attains the maximum rank.
      EXPECT_EQ(qranks[got.best], qranks[t.best]) << simd::isa_name(isa);
    }
  }
}

TEST(UnitArgmaxKernel, CraftedRankCollisionsAreAlwaysReported) {
  // Keys one 2^-40 step apart share a quantized rank (the rank keeps only
  // the top 32 bits of the order-preserving u64 image) while remaining
  // distinct doubles — exactly the rows that force the exact (key, tie)
  // fallback in the block kernel.
  const std::size_t num_sets = 64;
  std::vector<double> keys(num_sets);
  std::vector<std::uint32_t> qranks(num_sets);
  for (SetId s = 0; s < num_sets; ++s) {
    keys[s] = -1.0 - static_cast<double>(s) * 0x1p-40;
    qranks[s] = quantized_key_rank(keys[s]);
  }
  ASSERT_EQ(qranks[0], qranks[num_sets - 1]) << "keys drifted out of one rank";
  ASSERT_NE(keys[0], keys[num_sets - 1]);

  std::vector<SetId> row(num_sets);
  for (SetId s = 0; s < num_sets; ++s) row[s] = s;
  for (Isa isa : vector_isas()) {
    const RowArgmax got =
        simd::unit_rank_argmax_fn(isa)(row.data(), row.size(), qranks.data());
    EXPECT_TRUE(got.collision) << simd::isa_name(isa);
  }
  EXPECT_TRUE(
      simd::unit_rank_argmax_portable(row.data(), row.size(), qranks.data())
          .collision);
}

TEST(UnitArgmaxKernel, DuplicatedMaxInTailOrAcrossLanesIsReported) {
  // Place the duplicated maximum at every pair of positions of a
  // 19-element row (covers same-lane, cross-lane, and scalar-tail pairs
  // for both 4- and 8-lane kernels).
  const std::size_t n = 19;
  const std::size_t num_sets = n;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      std::vector<std::uint32_t> qranks(num_sets);
      std::vector<SetId> row(n);
      for (std::size_t i = 0; i < n; ++i) {
        row[i] = static_cast<SetId>(i);
        qranks[i] = static_cast<std::uint32_t>(i % 5);
      }
      qranks[a] = 1000;
      qranks[b] = 1000;
      for (Isa isa : vector_isas()) {
        const RowArgmax got =
            simd::unit_rank_argmax_fn(isa)(row.data(), n, qranks.data());
        EXPECT_TRUE(got.collision)
            << simd::isa_name(isa) << " pair (" << a << "," << b << ")";
        EXPECT_EQ(qranks[got.best], 1000u) << simd::isa_name(isa);
      }
    }
  }
}

// ------------------------------------------------------------------
// Block-kernel equivalence across ISA tiers

/// Builds a random mixed-capacity block over SoA priorities and returns
/// the block kernel's output under the given ISA pin.
struct BlockCase {
  std::vector<Capacity> caps;
  std::vector<std::size_t> offsets;
  std::vector<SetId> cands;
  std::vector<double> keys;
  std::vector<std::uint64_t> ties;
  std::vector<std::uint32_t> qranks;

  ArrivalBlock block() const {
    ArrivalBlock b;
    b.first = 0;
    b.count = caps.size();
    b.capacities = caps.data();
    b.candidates = cands.data();
    b.offsets = offsets.data();
    return b;
  }
};

BlockCase random_block_case(Rng& rng, bool craft_collisions) {
  BlockCase c;
  const std::size_t num_sets = 32 + rng.below(256);
  c.keys.resize(num_sets);
  c.ties.resize(num_sets);
  c.qranks.resize(num_sets);
  for (SetId s = 0; s < num_sets; ++s) {
    if (craft_collisions) {
      // A handful of base keys, each shifted below rank resolution:
      // equal ranks, distinct keys — the exact-fallback shape.
      const double base = -1.0 - static_cast<double>(rng.below(4));
      c.keys[s] = base - static_cast<double>(rng.below(16)) * 0x1p-40;
    } else {
      c.keys[s] = -1.0 - rng.uniform();
    }
    c.ties[s] = rng();
    c.qranks[s] = quantized_key_rank(c.keys[s]);
  }
  const std::size_t count = 1 + rng.below(40);
  c.offsets.push_back(0);
  for (std::size_t i = 0; i < count; ++i) {
    c.caps.push_back(static_cast<Capacity>(rng.below(4)));  // incl. cap 0
    const std::size_t n = rng.below(30);                    // incl. empty rows
    // Sorted distinct candidates, as the engine guarantees.
    std::vector<bool> used(num_sets, false);
    std::vector<SetId> row;
    for (std::size_t j = 0; j < n; ++j) {
      const SetId s = static_cast<SetId>(rng.below(num_sets));
      if (!used[s]) {
        used[s] = true;
        row.push_back(s);
      }
    }
    std::sort(row.begin(), row.end());
    c.cands.insert(c.cands.end(), row.begin(), row.end());
    c.offsets.push_back(c.cands.size());
  }
  return c;
}

TEST(BlockKernelIsaEquivalence, AllTiersDecideIdenticallyWithFusedHistogram) {
  const std::vector<Isa> isas = simd::available_isas();
  ASSERT_GE(isas.size(), 1u);
  Rng rng(77);
  for (int it = 0; it < 300; ++it) {
    const BlockCase c = random_block_case(rng, it % 3 == 0);

    std::vector<BlockChoices> outs(isas.size());
    std::vector<std::vector<std::uint32_t>> hists(isas.size());
    for (std::size_t k = 0; k < isas.size(); ++k) {
      simd::set_active_isa(isas[k]);
      BlockScratch scratch;
      hists[k].assign(c.keys.size(), 0);
      scratch.got = hists[k].data();
      top_by_priority_soa_block(c.block(), c.keys.data(), c.ties.data(),
                                c.qranks.data(), scratch, outs[k]);
      EXPECT_TRUE(scratch.hist_applied) << simd::isa_name(isas[k]);
    }
    simd::refresh_active_isa();

    const std::size_t written = outs[0].offsets.back();
    for (std::size_t k = 1; k < isas.size(); ++k) {
      ASSERT_EQ(outs[k].offsets, outs[0].offsets)
          << simd::isa_name(isas[k]) << " vs " << simd::isa_name(isas[0]);
      // ids is a grow-only capacity buffer; only the offsets-covered
      // prefix is meaningful.
      ASSERT_TRUE(std::equal(outs[k].ids.begin(),
                             outs[k].ids.begin() + written,
                             outs[0].ids.begin()))
          << simd::isa_name(isas[k]) << " vs " << simd::isa_name(isas[0]);
      EXPECT_EQ(hists[k], hists[0]);
    }
    // The fused histogram equals a recount over the written rows.
    std::vector<std::uint32_t> recount(c.keys.size(), 0);
    for (std::size_t j = 0; j < written; ++j) ++recount[outs[0].ids[j]];
    EXPECT_EQ(hists[0], recount);
  }
}

TEST(BlockKernel, HistogramChannelStaysOffWithoutOptIn) {
  Rng rng(5);
  const BlockCase c = random_block_case(rng, false);
  BlockScratch scratch;  // got stays nullptr
  BlockChoices out;
  top_by_priority_soa_block(c.block(), c.keys.data(), c.ties.data(),
                            c.qranks.data(), scratch, out);
  EXPECT_FALSE(scratch.hist_applied);
}

// ------------------------------------------------------------------
// Dispatcher / OSP_FORCE_ISA

TEST(CpuFeatures, ScalarIsAlwaysAvailableAndListedFirst) {
  EXPECT_TRUE(simd::isa_available(Isa::kScalar));
  const std::vector<Isa> isas = simd::available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  EXPECT_EQ(simd::best_isa(), isas.back());
  for (Isa isa : isas) EXPECT_TRUE(simd::isa_available(isa));
}

TEST(CpuFeatures, ParseIsaRoundTripsAndRejectsUnknownNames) {
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon})
    EXPECT_EQ(simd::parse_isa(simd::isa_name(isa)), isa);
  EXPECT_THROW(simd::parse_isa("bogus"), RequireError);
  EXPECT_THROW(simd::parse_isa("AVX2"), RequireError);  // names are lower-case
  EXPECT_THROW(simd::parse_isa(""), RequireError);
}

TEST(CpuFeatures, ForceIsaPinsEveryAvailableTier) {
  for (Isa isa : simd::available_isas()) {
    ScopedForceIsa guard(simd::isa_name(isa));
    simd::refresh_active_isa();
    EXPECT_EQ(simd::active_isa(), isa);
    EXPECT_STREQ(simd::active_isa_name(), simd::isa_name(isa));
    EXPECT_NE(simd::isa_selection_note().find("OSP_FORCE_ISA"),
              std::string::npos);
  }
}

TEST(CpuFeatures, ForcingUnknownOrUnavailableIsaIsAHardError) {
  {
    ScopedForceIsa guard("definitely-not-an-isa");
    EXPECT_THROW(simd::refresh_active_isa(), RequireError);
  }
  // Find an ISA this CPU cannot run; skip silently on a machine that
  // somehow supports all four.
  for (Isa isa : {Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    if (simd::isa_available(isa)) continue;
    ScopedForceIsa guard(simd::isa_name(isa));
    EXPECT_THROW(simd::refresh_active_isa(), RequireError)
        << simd::isa_name(isa);
    break;
  }
}

TEST(CpuFeatures, SetActiveIsaPinsInProcessAndRefreshRestores) {
  ScopedForceIsa guard(nullptr);  // clear any ambient force for this test
  simd::refresh_active_isa();
  const Isa before = simd::active_isa();
  EXPECT_EQ(before, simd::best_isa());
  simd::set_active_isa(Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), Isa::kScalar);
  if (before != Isa::kScalar) {
    EXPECT_NE(simd::isa_selection_note().find("pinned"), std::string::npos);
  }
  simd::refresh_active_isa();
  EXPECT_EQ(simd::active_isa(), before);
}

}  // namespace
}  // namespace osp
