// Tests for the offline solvers: exact B&B against brute force, greedy
// feasibility and approximation, LP upper bound sandwiching.
#include <gtest/gtest.h>

#include "algos/offline.hpp"
#include "gen/random_instances.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// Brute force over all 2^m subsets.
Weight brute_force(const Instance& inst) {
  const std::size_t m = inst.num_sets();
  Weight best = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    std::vector<SetId> chosen;
    for (std::size_t s = 0; s < m; ++s)
      if (mask & (1ULL << s)) chosen.push_back(static_cast<SetId>(s));
    if (!is_feasible(inst, chosen)) continue;
    Weight w = 0;
    for (SetId s : chosen) w += inst.weight(s);
    best = std::max(best, w);
  }
  return best;
}

TEST(IsFeasible, DetectsCapacityViolation) {
  InstanceBuilder b;
  b.add_sets(3);
  b.add_element({0, 1, 2}, 2);
  Instance inst = b.build();
  EXPECT_TRUE(is_feasible(inst, {0, 1}));
  EXPECT_FALSE(is_feasible(inst, {0, 1, 2}));
  EXPECT_TRUE(is_feasible(inst, {}));
}

TEST(IsFeasible, DetectsDuplicatesAndBadIds) {
  InstanceBuilder b;
  b.add_sets(2);
  b.add_element({0, 1}, 2);
  Instance inst = b.build();
  EXPECT_FALSE(is_feasible(inst, {0, 0}));
  EXPECT_FALSE(is_feasible(inst, {7}));
}

TEST(ExactOptimum, TinyByHand) {
  // S0={e0} w=1, S1={e0} w=2: they conflict, opt takes S1.
  InstanceBuilder b;
  b.add_set(1.0);
  b.add_set(2.0);
  b.add_element({0, 1});
  Instance inst = b.build();
  OfflineResult r = exact_optimum(inst);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.value, 2.0);
  EXPECT_EQ(r.chosen, (std::vector<SetId>{1}));
}

TEST(ExactOptimum, DisjointSetsAllTaken) {
  InstanceBuilder b;
  b.add_sets(4);
  for (SetId s = 0; s < 4; ++s) b.add_element({s});
  Instance inst = b.build();
  OfflineResult r = exact_optimum(inst);
  EXPECT_DOUBLE_EQ(r.value, 4.0);
  EXPECT_EQ(r.chosen.size(), 4u);
}

TEST(ExactOptimum, MatchesBruteForceRandomSweep) {
  Rng master(21);
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t m = 4 + trial % 9;  // 4..12 sets
    Rng gen = master.split(trial);
    Instance inst = random_instance(
        m, 3 * m / 2 + 2, 2 + trial % 3,
        trial % 2 ? WeightModel::uniform(1, 9) : WeightModel::unit(), gen);
    OfflineResult r = exact_optimum(inst);
    ASSERT_TRUE(r.exact);
    EXPECT_NEAR(r.value, brute_force(inst), 1e-9) << inst.describe();
    EXPECT_TRUE(is_feasible(inst, r.chosen));
  }
}

TEST(ExactOptimum, MatchesBruteForceWithCapacities) {
  Rng master(22);
  for (int trial = 0; trial < 15; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_capacity_instance(
        8, 10, 3, 3, WeightModel::uniform(1, 5), gen);
    OfflineResult r = exact_optimum(inst);
    ASSERT_TRUE(r.exact);
    EXPECT_NEAR(r.value, brute_force(inst), 1e-9);
  }
}

TEST(ExactOptimum, NodeLimitTruncates) {
  Rng gen(23);
  Instance inst = random_instance(30, 45, 3, WeightModel::unit(), gen);
  OfflineResult r = exact_optimum(inst, /*node_limit=*/10);
  EXPECT_FALSE(r.exact);
  // Still returns a feasible solution (at least the greedy seed).
  EXPECT_TRUE(is_feasible(inst, r.chosen));
  EXPECT_GT(r.value, 0.0);
}

TEST(OfflineFuzz, GreedyExactLpSandwichAcrossFamilies) {
  // Property fuzz for the dashboard's denominator chain: the exact
  // witness is a feasible packing whose weight matches the reported
  // value, greedy never beats it, and the LP relaxation dominates it.
  Rng master(26);
  for (int trial = 0; trial < 40; ++trial) {
    Rng gen = master.split(trial);
    WeightModel w = trial % 3 == 0   ? WeightModel::unit()
                    : trial % 3 == 1 ? WeightModel::uniform(1, 9)
                                     : WeightModel::zipf(1.1);
    std::size_t m = 6 + trial % 7;
    Instance inst =
        trial % 2 ? random_instance(m, 3 * m / 2, 2 + trial % 3, w, gen)
                  : random_capacity_instance(m, 12, 3, 3, w, gen);
    OfflineResult opt = exact_optimum(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_TRUE(is_feasible(inst, opt.chosen)) << inst.describe();
    Weight chosen_weight = 0;
    for (SetId s : opt.chosen) chosen_weight += inst.weight(s);
    EXPECT_NEAR(chosen_weight, opt.value, 1e-9);
    EXPECT_LE(greedy_offline(inst).value, opt.value + 1e-9);
    EXPECT_LE(opt.value, lp_upper_bound(inst) + 1e-9) << inst.describe();
  }
}

TEST(OfflineFuzz, TinyNodeLimitHonoredWithFeasiblePartial) {
  // A starved node budget must be reported honestly (exact=false, the
  // opt_exact flag in BENCH_adversarial.json) while the partial answer
  // stays a usable feasible packing no worse than the greedy seed.
  Rng master(27);
  for (int trial = 0; trial < 8; ++trial) {
    Rng gen = master.split(trial);
    Instance inst =
        random_instance(28 + trial, 40, 3, WeightModel::unit(), gen);
    OfflineResult r = exact_optimum(inst, /*node_limit=*/3);
    EXPECT_FALSE(r.exact);
    EXPECT_TRUE(is_feasible(inst, r.chosen));
    Weight chosen_weight = 0;
    for (SetId s : r.chosen) chosen_weight += inst.weight(s);
    EXPECT_NEAR(chosen_weight, r.value, 1e-9);
    EXPECT_GE(r.value + 1e-9, greedy_offline(inst).value);
  }
}

TEST(GreedyOffline, FeasibleAndWithinK) {
  // Greedy is a k-approximation for unweighted instances with set size k.
  Rng master(24);
  for (int trial = 0; trial < 20; ++trial) {
    Rng gen = master.split(trial);
    std::size_t k = 2 + trial % 3;
    Instance inst = random_instance(12, 18, k, WeightModel::unit(), gen);
    OfflineResult g = greedy_offline(inst);
    OfflineResult opt = exact_optimum(inst);
    EXPECT_TRUE(is_feasible(inst, g.chosen));
    EXPECT_LE(g.value, opt.value + 1e-9);
    EXPECT_GE(g.value * static_cast<double>(k) + 1e-9, opt.value)
        << inst.describe();
  }
}

TEST(GreedyOffline, TakesHeaviestFirst) {
  InstanceBuilder b;
  b.add_set(1.0);
  b.add_set(10.0);
  b.add_element({0, 1});
  Instance inst = b.build();
  OfflineResult g = greedy_offline(inst);
  EXPECT_EQ(g.chosen, (std::vector<SetId>{1}));
}

TEST(LpUpperBound, SandwichesOptimum) {
  Rng master(25);
  for (int trial = 0; trial < 15; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_instance(
        10, 15, 2 + trial % 3,
        trial % 2 ? WeightModel::uniform(1, 7) : WeightModel::unit(), gen);
    OfflineResult opt = exact_optimum(inst);
    double lp = lp_upper_bound(inst);
    EXPECT_GE(lp + 1e-7, opt.value) << inst.describe();
    // The LP of a packing IP is at most m * max weight, sanity cap.
    EXPECT_LE(lp, inst.stats().total_weight + 1e-7);
  }
}

TEST(LpUpperBound, TightOnDisjointInstance) {
  InstanceBuilder b;
  b.add_sets(3, 2.0);
  for (SetId s = 0; s < 3; ++s) b.add_element({s});
  Instance inst = b.build();
  EXPECT_NEAR(lp_upper_bound(inst), 6.0, 1e-7);
}

TEST(LpUpperBound, HalfIntegralOnOddCycle) {
  // Triangle conflict: LP gives 1.5, IP gives 1.
  InstanceBuilder b;
  b.add_sets(3);
  b.add_element({0, 1});
  b.add_element({1, 2});
  b.add_element({0, 2});
  Instance inst = b.build();
  EXPECT_NEAR(lp_upper_bound(inst), 1.5, 1e-7);
  EXPECT_NEAR(exact_optimum(inst).value, 1.0, 1e-9);
}

}  // namespace
}  // namespace osp
