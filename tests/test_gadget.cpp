// Tests for the (M,N)-gadget: Propositions 1 and 2 exhaustively for a
// parameterized sweep of (M,N), and the Lemma 8 properties of a gadget
// applied as an osp sub-instance.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "design/gadget.hpp"
#include "util/require.hpp"

namespace osp {
namespace {

using MN = std::pair<std::size_t, std::size_t>;

class GadgetProps : public ::testing::TestWithParam<MN> {};

TEST_P(GadgetProps, Proposition1DifferentRows) {
  // Items in different rows lie on exactly one common line L_{a,b}.
  auto [m, n] = GetParam();
  Gadget g(m, n);
  // count[(item1, item2)] over all lines.
  std::map<std::pair<std::size_t, std::size_t>, int> common;
  for (std::uint32_t a = 0; a < n; ++a)
    for (std::uint32_t b = 0; b < n; ++b) {
      auto items = g.line(a, b);
      for (std::size_t x = 0; x < items.size(); ++x)
        for (std::size_t y = x + 1; y < items.size(); ++y) {
          std::size_t i1 = items[x].row * n + items[x].col;
          std::size_t i2 = items[y].row * n + items[y].col;
          ++common[{std::min(i1, i2), std::max(i1, i2)}];
        }
    }
  // Every cross-row pair appears exactly once.
  for (std::uint32_t r1 = 0; r1 < m; ++r1)
    for (std::uint32_t r2 = r1 + 1; r2 < m; ++r2)
      for (std::uint32_t c1 = 0; c1 < n; ++c1)
        for (std::uint32_t c2 = 0; c2 < n; ++c2) {
          std::size_t i1 = r1 * n + c1, i2 = r2 * n + c2;
          EXPECT_EQ((common[{std::min(i1, i2), std::max(i1, i2)}]), 1)
              << "pair (" << r1 << "," << c1 << ")x(" << r2 << "," << c2
              << ")";
        }
  // Same-row pairs never appear on an L_{a,b}.
  for (std::uint32_t r = 0; r < m; ++r)
    for (std::uint32_t c1 = 0; c1 < n; ++c1)
      for (std::uint32_t c2 = c1 + 1; c2 < n; ++c2) {
        std::size_t i1 = r * n + c1, i2 = r * n + c2;
        EXPECT_EQ(common.count({i1, i2}), 0u);
      }
}

TEST_P(GadgetProps, Proposition1SameRowViaRowLines) {
  auto [m, n] = GetParam();
  Gadget g(m, n);
  // Row lines partition items by row: same-row items share exactly the one
  // row line, cross-row items none.
  for (std::uint32_t c = 0; c < m; ++c) {
    auto items = g.row_line(c);
    EXPECT_EQ(items.size(), n);
    for (const auto& it : items) EXPECT_EQ(it.row, c);
    std::set<std::uint32_t> cols;
    for (const auto& it : items) cols.insert(it.col);
    EXPECT_EQ(cols.size(), n);  // every column exactly once
  }
}

TEST_P(GadgetProps, Proposition2OneLinePerSlope) {
  // Every item lies on exactly one line per slope a.
  auto [m, n] = GetParam();
  Gadget g(m, n);
  for (std::uint32_t a = 0; a < n; ++a) {
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> hits;
    for (std::uint32_t b = 0; b < n; ++b)
      for (const auto& it : g.line(a, b)) ++hits[{it.row, it.col}];
    for (std::uint32_t r = 0; r < m; ++r)
      for (std::uint32_t c = 0; c < n; ++c)
        EXPECT_EQ((hits[{r, c}]), 1) << "slope " << a;
  }
}

TEST_P(GadgetProps, LinesHaveLoadM) {
  auto [m, n] = GetParam();
  Gadget g(m, n);
  for (std::uint32_t a = 0; a < n; ++a)
    for (std::uint32_t b = 0; b < n; ++b)
      EXPECT_EQ(g.line(a, b).size(), m);
}

INSTANTIATE_TEST_SUITE_P(SmallGadgets, GadgetProps,
                         ::testing::Values(MN{2, 2}, MN{2, 3}, MN{3, 3},
                                           MN{2, 4}, MN{4, 4}, MN{3, 5},
                                           MN{5, 5}, MN{4, 7}, MN{6, 8},
                                           MN{9, 9}));

TEST(Gadget, RejectsBadParameters) {
  EXPECT_THROW(Gadget(3, 2), RequireError);   // M > N
  EXPECT_THROW(Gadget(2, 6), RequireError);   // N not a prime power
  EXPECT_THROW(Gadget(0, 2), RequireError);   // M < 1
}

// Lemma 8 as an executable statement: applying an (M,N)-gadget to M·N
// sets produces N² elements of load M (+ M of load N with rows); each set
// gains N (+1) elements; and any feasible solution keeps at most one set
// per line — with rows at most one set total; without rows all survivors
// share a row.
class Lemma8 : public ::testing::TestWithParam<MN> {};

TEST_P(Lemma8, ShapeWithoutRows) {
  auto [m, n] = GetParam();
  Gadget g(m, n);
  InstanceBuilder b;
  std::vector<SetId> placement;
  for (std::size_t i = 0; i < m * n; ++i) placement.push_back(b.add_set());
  apply_gadget(b, g, placement, /*with_rows=*/false);
  Instance inst = b.build();

  EXPECT_EQ(inst.num_elements(), n * n);
  for (ElementId u = 0; u < inst.num_elements(); ++u)
    EXPECT_EQ(inst.load(u), m);
  for (SetId s = 0; s < inst.num_sets(); ++s)
    EXPECT_EQ(inst.set_size(s), n);
}

TEST_P(Lemma8, ShapeWithRows) {
  auto [m, n] = GetParam();
  Gadget g(m, n);
  InstanceBuilder b;
  std::vector<SetId> placement;
  for (std::size_t i = 0; i < m * n; ++i) placement.push_back(b.add_set());
  apply_gadget(b, g, placement, /*with_rows=*/true);
  Instance inst = b.build();

  EXPECT_EQ(inst.num_elements(), n * n + m);
  std::size_t load_m = 0, load_n = 0;
  for (ElementId u = 0; u < inst.num_elements(); ++u) {
    if (inst.load(u) == m) ++load_m;
    if (inst.load(u) == n) ++load_n;
  }
  if (m != n) {
    EXPECT_EQ(load_m, n * n);
    EXPECT_EQ(load_n, m);
  } else {
    EXPECT_EQ(load_m, n * n + m);
  }
  for (SetId s = 0; s < inst.num_sets(); ++s)
    EXPECT_EQ(inst.set_size(s), n + 1);
}

TEST_P(Lemma8, AnyTwoSetsIntersectWithRows) {
  auto [m, n] = GetParam();
  Gadget g(m, n);
  InstanceBuilder b;
  std::vector<SetId> placement;
  for (std::size_t i = 0; i < m * n; ++i) placement.push_back(b.add_set());
  apply_gadget(b, g, placement, /*with_rows=*/true);
  Instance inst = b.build();

  // Pairwise intersection is exactly one element.
  for (SetId s1 = 0; s1 < inst.num_sets(); ++s1)
    for (SetId s2 = s1 + 1; s2 < inst.num_sets(); ++s2) {
      std::set<ElementId> e1(inst.elements_of(s1).begin(),
                             inst.elements_of(s1).end());
      int shared = 0;
      for (ElementId u : inst.elements_of(s2)) shared += e1.count(u);
      EXPECT_EQ(shared, 1) << "s1=" << s1 << " s2=" << s2;
    }
}

TEST_P(Lemma8, WithoutRowsOnlySameRowSurvivorsPossible) {
  auto [m, n] = GetParam();
  Gadget g(m, n);
  InstanceBuilder b;
  std::vector<SetId> placement;
  for (std::size_t i = 0; i < m * n; ++i) placement.push_back(b.add_set());
  apply_gadget(b, g, placement, /*with_rows=*/false);
  Instance inst = b.build();

  // Cross-row sets intersect (exactly once); same-row sets are disjoint.
  for (SetId s1 = 0; s1 < inst.num_sets(); ++s1)
    for (SetId s2 = s1 + 1; s2 < inst.num_sets(); ++s2) {
      std::set<ElementId> e1(inst.elements_of(s1).begin(),
                             inst.elements_of(s1).end());
      int shared = 0;
      for (ElementId u : inst.elements_of(s2)) shared += e1.count(u);
      bool same_row = (s1 / n) == (s2 / n);
      EXPECT_EQ(shared, same_row ? 0 : 1);
    }
}

INSTANTIATE_TEST_SUITE_P(SmallGadgets, Lemma8,
                         ::testing::Values(MN{2, 2}, MN{2, 3}, MN{3, 3},
                                           MN{3, 4}, MN{4, 5}, MN{2, 8},
                                           MN{6, 8}));

TEST(ApplyGadget, PlacementSizeValidated) {
  Gadget g(2, 2);
  InstanceBuilder b;
  b.add_sets(3);
  EXPECT_THROW(apply_gadget(b, g, {0, 1, 2}, false), RequireError);
}

TEST(Gadget, ExtensionFieldOrderWorks) {
  // N = 8 and N = 9 exercise GF(2^3) and GF(3^2) line arithmetic.
  for (std::size_t n : {8u, 9u}) {
    Gadget g(n, n);
    std::set<std::size_t> seen;
    for (std::uint32_t b = 0; b < n; ++b)
      for (const auto& it : g.line(1, b)) seen.insert(it.row * n + it.col);
    EXPECT_EQ(seen.size(), n * n);  // slope 1 lines partition all items
  }
}

}  // namespace
}  // namespace osp
