// Tests for the bound calculators: hand-computed values and structural
// relationships between the bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "gen/random_instances.hpp"
#include "stats/competitive.hpp"
#include "core/rand_pr.hpp"
#include "algos/offline.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

InstanceStats uniform_stats(std::size_t k, std::size_t sigma, std::size_t m,
                            std::size_t n) {
  InstanceStats st;
  st.num_sets = m;
  st.num_elements = n;
  st.total_weight = static_cast<double>(m);
  st.k_max = k;
  st.k_avg = static_cast<double>(k);
  st.sigma_max = sigma;
  st.sigma_avg = static_cast<double>(sigma);
  st.sigma_sq_avg = static_cast<double>(sigma * sigma);
  st.sigma_w_avg = static_cast<double>(sigma);       // unit weights
  st.sigma_sigma_w_avg = static_cast<double>(sigma * sigma);
  st.nu_avg = static_cast<double>(sigma);
  st.nu_max = static_cast<double>(sigma);
  st.nu_sigma_w_avg = static_cast<double>(sigma * sigma);
  st.uniform_size = st.uniform_load = st.unweighted = true;
  return st;
}

TEST(Bounds, Theorem1OnUniformStats) {
  // With uniform load σ and unit weights: kmax * sqrt(σ²·/σ) = k√σ.
  InstanceStats st = uniform_stats(3, 4, 12, 9);
  EXPECT_NEAR(theorem1_bound(st), 3.0 * 2.0, 1e-12);
}

TEST(Bounds, Corollary6Formula) {
  InstanceStats st = uniform_stats(5, 9, 10, 10);
  EXPECT_NEAR(corollary6_bound(st), 5.0 * 3.0, 1e-12);
}

TEST(Bounds, Theorem1NeverExceedsCorollary6) {
  Rng master(1);
  for (int trial = 0; trial < 20; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_instance(
        20, 25, 2 + trial % 4,
        trial % 2 ? WeightModel::uniform(1, 9) : WeightModel::unit(), gen);
    InstanceStats st = inst.stats();
    EXPECT_LE(theorem1_bound(st), corollary6_bound(st) + 1e-9);
  }
}

TEST(Bounds, Theorem4ShapeVsBoundConstant) {
  InstanceStats st = uniform_stats(3, 4, 12, 9);
  EXPECT_NEAR(theorem4_bound(st) / theorem4_shape(st), 16.0 * std::exp(1.0),
              1e-9);
}

TEST(Bounds, Theorem4EqualsTheorem1ShapeAtUnitCapacity) {
  // With b ≡ 1 the adjusted load equals the load, so the Theorem 4 shape
  // reduces to the Theorem 1 expression.
  Rng master(2);
  Instance inst =
      random_instance(15, 20, 3, WeightModel::uniform(1, 5), master);
  InstanceStats st = inst.stats();
  EXPECT_NEAR(theorem4_shape(st), theorem1_bound(st), 1e-9);
}

TEST(Bounds, Theorem5RequiresUniformSize) {
  InstanceStats st = uniform_stats(3, 4, 12, 9);
  EXPECT_NO_THROW(theorem5_bound(st));
  st.uniform_size = false;
  EXPECT_THROW(theorem5_bound(st), RequireError);
}

TEST(Bounds, Theorem5EqualsKForUniformLoad) {
  // avg(σ²)/avg(σ)² = 1 when loads are uniform — Corollary 7.
  InstanceStats st = uniform_stats(4, 6, 12, 8);
  EXPECT_NEAR(theorem5_bound(st), 4.0, 1e-12);
  EXPECT_NEAR(corollary7_bound(st), 4.0, 1e-12);
}

TEST(Bounds, Corollary7RequiresBothUniform) {
  InstanceStats st = uniform_stats(3, 4, 12, 9);
  st.uniform_load = false;
  EXPECT_THROW(corollary7_bound(st), RequireError);
}

TEST(Bounds, Theorem6Formula) {
  InstanceStats st = uniform_stats(3, 9, 12, 4);
  EXPECT_NEAR(theorem6_bound(st), 3.0 * 3.0, 1e-12);
}

TEST(Bounds, Theorem3Values) {
  EXPECT_DOUBLE_EQ(theorem3_lower_bound(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(theorem3_lower_bound(2, 4), 8.0);
  EXPECT_DOUBLE_EQ(theorem3_lower_bound(3, 3), 9.0);
  EXPECT_DOUBLE_EQ(theorem3_lower_bound(10, 2), 10.0);
}

TEST(Bounds, Theorem2GrowsWithParameters) {
  EXPECT_LT(theorem2_lower_bound(10, 10), theorem2_lower_bound(100, 10));
  EXPECT_LT(theorem2_lower_bound(100, 10), theorem2_lower_bound(100, 100));
  EXPECT_GT(theorem2_lower_bound(4, 4), 0.0);
}

TEST(Bounds, NaiveDominatesCorollary6) {
  // kσ >= k√σ whenever σ >= 1.
  Rng master(3);
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_instance(18, 20, 3, WeightModel::unit(), gen);
    InstanceStats st = inst.stats();
    EXPECT_GE(naive_bound(st) + 1e-9, corollary6_bound(st));
  }
}

TEST(RatioEstimator, AgreesWithManualLoop) {
  Rng gen(4);
  Instance inst = random_instance(15, 18, 3, WeightModel::unit(), gen);
  OfflineResult opt = exact_optimum(inst);

  Rng m1(99), m2(99);
  RatioEstimate est = estimate_ratio(
      inst,
      [](Rng r) { return std::make_unique<RandPr>(r); },
      opt.value, m1, 200);

  RunningStat manual;
  for (int t = 0; t < 200; ++t) {
    RandPr alg(m2.split(t));
    manual.add(play(inst, alg).benefit);
  }
  EXPECT_DOUBLE_EQ(est.benefit.mean(), manual.mean());
  EXPECT_DOUBLE_EQ(est.ratio(), opt.value / manual.mean());
  EXPECT_GE(est.ratio_upper(), est.ratio());
  EXPECT_LE(est.ratio_lower(), est.ratio());
}

TEST(LemmaBounds, ProofStructureHoldsEmpirically) {
  // The actual proof of Theorem 1: E[w(alg)] must exceed BOTH Lemma 4's
  // and Lemma 5's floors on every instance.  Check statistically.
  Rng master(6);
  for (int trial = 0; trial < 6; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_instance(
        16, 20, 3, trial % 2 ? WeightModel::uniform(1, 6)
                             : WeightModel::unit(), gen);
    InstanceStats st = inst.stats();
    OfflineResult opt = exact_optimum(inst);
    ASSERT_TRUE(opt.exact);

    RunningStat benefit;
    Rng runs = master.split(100 + trial);
    for (int t = 0; t < 400; ++t) {
      RandPr alg(runs.split(t));
      benefit.add(play(inst, alg).benefit);
    }
    double floor = theorem1_benefit_floor(st, opt.value);
    EXPECT_GE(benefit.mean() + benefit.ci95_halfwidth(), floor)
        << inst.describe();
    EXPECT_GE(benefit.mean() + benefit.ci95_halfwidth(),
              lemma4_lower_bound(st, opt.value));
    EXPECT_GE(benefit.mean() + benefit.ci95_halfwidth(),
              lemma5_lower_bound(st));
  }
}

TEST(LemmaBounds, HandValues) {
  InstanceStats st = uniform_stats(3, 4, 12, 9);
  // Lemma 4 with opt = 6: 36 / (3 * 12) = 1.
  EXPECT_NEAR(lemma4_lower_bound(st, 6.0), 1.0, 1e-12);
  // Lemma 5: 144 / (9 * 16) = 1.
  EXPECT_NEAR(lemma5_lower_bound(st), 1.0, 1e-12);
  EXPECT_NEAR(theorem1_benefit_floor(st, 6.0), 1.0, 1e-12);
}

TEST(RatioEstimator, Validation) {
  Rng gen(5);
  Instance inst = random_instance(5, 6, 2, WeightModel::unit(), gen);
  Rng master(1);
  EXPECT_THROW(estimate_ratio(
                   inst, [](Rng r) { return std::make_unique<RandPr>(r); },
                   1.0, master, 0),
               RequireError);
}

}  // namespace
}  // namespace osp
