// Tests for the partial-credit extension (open problem 3): scoring,
// flow-based feasibility, exact optimum, LP bound, and the effect of miss
// tolerance on the measured competitive ratio.
#include <gtest/gtest.h>

#include "algos/partial_offline.hpp"
#include "core/game.hpp"
#include "core/partial.hpp"
#include "core/rand_pr.hpp"
#include "gen/random_instances.hpp"
#include "stats/summary.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(PartialValue, ThresholdRule) {
  PartialCreditRule r{.max_misses = 1, .prorated = false};
  EXPECT_DOUBLE_EQ(partial_value(4.0, 5, 5, r), 4.0);
  EXPECT_DOUBLE_EQ(partial_value(4.0, 5, 4, r), 4.0);
  EXPECT_DOUBLE_EQ(partial_value(4.0, 5, 3, r), 0.0);
  EXPECT_DOUBLE_EQ(partial_value(4.0, 5, 0, r), 0.0);
}

TEST(PartialValue, ProratedRule) {
  PartialCreditRule r{.max_misses = 2, .prorated = true};
  EXPECT_DOUBLE_EQ(partial_value(10.0, 5, 5, r), 10.0);
  EXPECT_DOUBLE_EQ(partial_value(10.0, 5, 4, r), 8.0);
  EXPECT_DOUBLE_EQ(partial_value(10.0, 5, 3, r), 6.0);
  EXPECT_DOUBLE_EQ(partial_value(10.0, 5, 2, r), 0.0);
}

TEST(PartialValue, ZeroMissesIsClassic) {
  PartialCreditRule r{};
  EXPECT_DOUBLE_EQ(partial_value(3.0, 2, 2, r), 3.0);
  EXPECT_DOUBLE_EQ(partial_value(3.0, 2, 1, r), 0.0);
}

TEST(PartialValue, EmptySetVacuouslyFull) {
  EXPECT_DOUBLE_EQ(partial_value(2.0, 0, 0, PartialCreditRule{}), 2.0);
}

TEST(PartialValue, ReceivedBeyondSizeThrows) {
  EXPECT_THROW(partial_value(1.0, 2, 3, PartialCreditRule{}), RequireError);
}

TEST(PlayPartial, MatchesClassicForZeroMisses) {
  Rng gen(1);
  Instance inst = random_instance(20, 25, 3, WeightModel::uniform(1, 5), gen);
  RandPr a{Rng(9)}, b{Rng(9)};
  Outcome classic = play(inst, a);
  PartialOutcome partial = play_partial(inst, b, PartialCreditRule{});
  EXPECT_DOUBLE_EQ(classic.benefit, partial.benefit);
  EXPECT_EQ(classic.completed, partial.credited);
}

TEST(PlayPartial, MissBudgetIncreasesBenefit) {
  Rng gen(2);
  Instance inst = random_instance(24, 20, 4, WeightModel::unit(), gen);
  double previous = -1;
  for (std::size_t r : {0u, 1u, 2u, 3u}) {
    RandPr alg{Rng(5)};  // same priorities across r
    PartialOutcome out =
        play_partial(inst, alg, PartialCreditRule{.max_misses = r});
    EXPECT_GE(out.benefit, previous);
    previous = out.benefit;
  }
}

TEST(PartialFeasible, SingleElementConflict) {
  // Two size-1 sets on one unit element: classic infeasible together, but
  // with one allowed miss each, both can "complete" (claim 0 elements
  // each... size 1, misses 1 -> demand 0).
  InstanceBuilder b;
  b.add_sets(2);
  b.add_element({0, 1});
  Instance inst = b.build();
  EXPECT_FALSE(partial_feasible(inst, {0, 1}, PartialCreditRule{}));
  EXPECT_TRUE(partial_feasible(inst, {0, 1},
                               PartialCreditRule{.max_misses = 1}));
}

TEST(PartialFeasible, SharedElementsNeedFlow) {
  // Three sets of size 2 over three unit elements arranged in a triangle:
  // with r=1 each set needs 1 element; a system of distinct
  // representatives exists, so all three are feasible together.
  InstanceBuilder b;
  b.add_sets(3);
  b.add_element({0, 1});
  b.add_element({1, 2});
  b.add_element({0, 2});
  Instance inst = b.build();
  EXPECT_FALSE(partial_feasible(inst, {0, 1, 2}, PartialCreditRule{}));
  EXPECT_TRUE(
      partial_feasible(inst, {0, 1, 2}, PartialCreditRule{.max_misses = 1}));
}

TEST(PartialFeasible, CapacityCounts) {
  // Two sets both need the single element fully; capacity 2 fits both.
  InstanceBuilder b;
  b.add_sets(2);
  b.add_element({0, 1}, 2);
  Instance inst = b.build();
  EXPECT_TRUE(partial_feasible(inst, {0, 1}, PartialCreditRule{}));
}

TEST(PartialExact, MatchesClassicAtZeroMisses) {
  Rng master(3);
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen = master.split(trial);
    Instance inst =
        random_instance(10, 14, 3, WeightModel::uniform(1, 6), gen);
    OfflineResult classic = exact_optimum(inst);
    OfflineResult partial =
        partial_exact_optimum(inst, PartialCreditRule{});
    ASSERT_TRUE(partial.exact);
    EXPECT_NEAR(classic.value, partial.value, 1e-9) << inst.describe();
  }
}

TEST(PartialExact, MonotoneInMissBudget) {
  Rng gen(4);
  Instance inst = random_instance(12, 12, 3, WeightModel::unit(), gen);
  double previous = -1;
  for (std::size_t r : {0u, 1u, 2u}) {
    OfflineResult res =
        partial_exact_optimum(inst, PartialCreditRule{.max_misses = r});
    ASSERT_TRUE(res.exact);
    EXPECT_GE(res.value, previous);
    previous = res.value;
  }
}

TEST(PartialExact, FullMissBudgetTakesEverything) {
  Rng gen(5);
  Instance inst = random_instance(8, 10, 2, WeightModel::unit(), gen);
  OfflineResult res =
      partial_exact_optimum(inst, PartialCreditRule{.max_misses = 2});
  EXPECT_DOUBLE_EQ(res.value, 8.0);  // every set tolerates losing all
}

TEST(PartialExact, RejectsProratedRule) {
  InstanceBuilder b;
  b.add_set();
  b.add_element({0});
  Instance inst = b.build();
  EXPECT_THROW(
      partial_exact_optimum(inst, PartialCreditRule{.max_misses = 0,
                                                    .prorated = true}),
      RequireError);
}

TEST(PartialLp, UpperBoundsExact) {
  Rng master(6);
  for (int trial = 0; trial < 8; ++trial) {
    Rng gen = master.split(trial);
    Instance inst = random_instance(8, 10, 3, WeightModel::unit(), gen);
    for (std::size_t r : {0u, 1u}) {
      PartialCreditRule rule{.max_misses = r};
      OfflineResult exact = partial_exact_optimum(inst, rule);
      ASSERT_TRUE(exact.exact);
      double lp = partial_lp_upper_bound(inst, rule);
      EXPECT_GE(lp + 1e-6, exact.value)
          << inst.describe() << " r=" << r;
    }
  }
}

TEST(PartialRandPr, MissAwareFilteringHelps) {
  // With a miss budget, the filter should only write off sets past the
  // budget — earning more than the strict filter.
  Rng master(7);
  Instance inst = random_instance(24, 18, 4, WeightModel::unit(), master);
  PartialCreditRule rule{.max_misses = 1};
  RunningStat strict, budgeted;
  for (int t = 0; t < 600; ++t) {
    RandPr s(master.split(t), {.filter_dead = true, .allowed_misses = 0});
    RandPr b(master.split(t), {.filter_dead = true, .allowed_misses = 1});
    strict.add(play_partial(inst, s, rule).benefit);
    budgeted.add(play_partial(inst, b, rule).benefit);
  }
  EXPECT_GE(budgeted.mean() + budgeted.ci95_halfwidth() +
                strict.ci95_halfwidth(),
            strict.mean());
}

TEST(PartialRandPr, RatioShrinksWithMissBudget) {
  // The effective set size shrinks with the budget, so the measured
  // competitive ratio should fall.
  Rng master(8);
  Instance inst = random_instance(16, 14, 4, WeightModel::unit(), master);
  double prev_ratio = 1e9;
  for (std::size_t r : {0u, 1u, 2u}) {
    PartialCreditRule rule{.max_misses = r};
    OfflineResult opt = partial_exact_optimum(inst, rule);
    ASSERT_TRUE(opt.exact);
    RunningStat alg;
    for (int t = 0; t < 400; ++t) {
      RandPr a(master.split(t), {.filter_dead = true, .allowed_misses = r});
      alg.add(play_partial(inst, a, rule).benefit);
    }
    double ratio = opt.value / alg.mean();
    EXPECT_LT(ratio, prev_ratio + 0.35);  // allow noise, demand the trend
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace osp
