// Tests for randPr: Lemma 1 (survival probability = w(S)/w(N[S])),
// the Theorem 1 / Corollary 6 guarantees as statistical properties over
// random instance families, and the hashed (distributed) variant.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/offline.hpp"
#include "core/bounds.hpp"
#include "core/game.hpp"
#include "core/rand_pr.hpp"
#include "gen/random_instances.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

// The paper's Lemma 1 example system: S0 overlapping S1 and S2.
//   S0 = {e0, e1}, S1 = {e0}, S2 = {e1}; weights w0, w1, w2.
Instance chain(double w0, double w1, double w2) {
  InstanceBuilder b;
  b.add_set(w0);
  b.add_set(w1);
  b.add_set(w2);
  b.add_element({0, 1});
  b.add_element({0, 2});
  return b.build();
}

double empirical_survival(const Instance& inst, SetId s, int trials,
                          std::uint64_t seed) {
  Rng master(seed);
  int wins = 0;
  for (int t = 0; t < trials; ++t) {
    RandPr alg(master.split(t));
    if (play(inst, alg).completed_mask[s]) ++wins;
  }
  return static_cast<double>(wins) / trials;
}

TEST(Lemma1, UnweightedChain) {
  // w(N[S0]) = 3, so Pr[S0 completes] = 1/3.
  Instance inst = chain(1, 1, 1);
  EXPECT_NEAR(empirical_survival(inst, 0, 30000, 1), 1.0 / 3.0, 0.01);
}

TEST(Lemma1, WeightedChain) {
  // Pr[S0] = w0 / (w0 + w1 + w2) = 2 / 7.
  Instance inst = chain(2, 4, 1);
  EXPECT_NEAR(empirical_survival(inst, 0, 30000, 2), 2.0 / 7.0, 0.01);
}

TEST(Lemma1, LeafSets) {
  // S1 competes only with S0: Pr[S1] = w1/(w0+w1) = 4/6.
  Instance inst = chain(2, 4, 1);
  EXPECT_NEAR(empirical_survival(inst, 1, 30000, 3), 4.0 / 6.0, 0.01);
}

TEST(Lemma1, CliqueOfThree) {
  // Three sets sharing one element: survival 1/3 each (unweighted).
  InstanceBuilder b;
  b.add_sets(3);
  b.add_element({0, 1, 2});
  Instance inst = b.build();
  for (SetId s = 0; s < 3; ++s)
    EXPECT_NEAR(empirical_survival(inst, s, 20000, 10 + s), 1.0 / 3.0, 0.012);
}

TEST(Lemma1, RepeatIntersectionsAreNotWorse) {
  // Lemma 10's monotonicity: meeting the SAME set twice is no worse than
  // meeting fresh sets.  S0={e0,e1}, S1={e0,e1} (twice) vs split rivals.
  InstanceBuilder b;
  b.add_sets(2);
  b.add_element({0, 1});
  b.add_element({0, 1});
  Instance twice = b.build();
  // Repeat rival: Pr[S0] = 1/2 (one comparison decides both elements) —
  // better than the 1/3 the Lemma 1 formula would give for fresh rivals.
  EXPECT_NEAR(empirical_survival(twice, 0, 30000, 4), 0.5, 0.01);
}

TEST(RandPr, DeterministicGivenSeed) {
  Rng gen(5);
  Instance inst = random_instance(20, 40, 3, WeightModel::unit(), gen);
  RandPr a{Rng(123)}, b{Rng(123)};
  EXPECT_EQ(play(inst, a).completed, play(inst, b).completed);
}

TEST(Reseed, RandPrMatchesFreshConstruction) {
  // The reseed() contract: reseed(rng) + start() must be decision-
  // identical to a freshly constructed algorithm given the same rng —
  // what lets the batch runner reuse one policy object across trials.
  Rng gen(6);
  Instance warmup = random_instance(10, 15, 2, WeightModel::unit(), gen);
  Instance inst = random_instance(25, 50, 3, WeightModel::uniform(1, 5), gen);

  RandPr fresh{Rng(123)};
  RandPr reused{Rng(777)};
  EXPECT_TRUE(reused.reseedable());
  play(warmup, reused);  // consume randomness and warm internal arrays
  reused.reseed(Rng(123));
  EXPECT_EQ(play(inst, fresh).completed, play(inst, reused).completed);
}

TEST(Reseed, HashedRandPrFactoriesInstallARehashRecipe) {
  Rng gen(7);
  Instance warmup = random_instance(10, 15, 2, WeightModel::unit(), gen);
  Instance inst = random_instance(25, 50, 3, WeightModel::uniform(1, 5), gen);

  Rng fresh_rng(4242);
  auto fresh = HashedRandPr::with_polynomial(8, fresh_rng);
  Rng other(1);
  auto reused = HashedRandPr::with_polynomial(8, other);
  EXPECT_TRUE(reused->reseedable());
  play(warmup, *reused);
  reused->reseed(Rng(4242));
  EXPECT_EQ(play(inst, *fresh).completed, play(inst, *reused).completed);

  // A bare HashedRandPr has no recipe to rebuild its hash from an Rng.
  HashedRandPr bare([](std::uint64_t) { return 0.5; }, "bare");
  EXPECT_FALSE(bare.reseedable());
  EXPECT_THROW(bare.reseed(Rng(1)), RequireError);
}

TEST(RandPr, NameReflectsOptions) {
  EXPECT_EQ(RandPr(Rng(1)).name(), "randPr");
  EXPECT_EQ(RandPr(Rng(1), {.filter_dead = true}).name(), "randPr/filt");
  EXPECT_EQ(RandPr(Rng(1), {.ignore_weights = true}).name(), "randPr/unif");
}

// Property sweep: on random families, E[w(alg)] >= opt / (kmax sqrt(smax))
// (Corollary 6) and >= opt / theorem1_bound.  We run enough trials that a
// violation by more than statistical noise would fail.
struct FamilyParam {
  std::size_t m, n, k;
  bool weighted;
};

class Guarantee : public ::testing::TestWithParam<FamilyParam> {};

TEST_P(Guarantee, Corollary6AndTheorem1) {
  const auto& p = GetParam();
  Rng master(p.m * 1000 + p.n * 10 + p.k);
  WeightModel wm =
      p.weighted ? WeightModel::uniform(1, 8) : WeightModel::unit();
  Instance inst = random_instance(p.m, p.n, p.k, wm, master);
  InstanceStats st = inst.stats();
  OfflineResult opt = exact_optimum(inst);
  ASSERT_TRUE(opt.exact);
  ASSERT_GT(opt.value, 0.0);

  RunningStat benefit;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    RandPr alg(master.split(t));
    benefit.add(play(inst, alg).benefit);
  }
  double guarantee_c6 = opt.value / corollary6_bound(st);
  double guarantee_t1 = opt.value / theorem1_bound(st);
  // Allow the 95% CI below the mean as statistical slack.
  double floor = benefit.mean() + benefit.ci95_halfwidth();
  EXPECT_GE(floor, guarantee_c6) << inst.describe();
  EXPECT_GE(floor, guarantee_t1) << inst.describe();
  // Theorem 1 is at least as sharp as Corollary 6.
  EXPECT_LE(theorem1_bound(st), corollary6_bound(st) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomFamilies, Guarantee,
    ::testing::Values(FamilyParam{10, 20, 2, false},
                      FamilyParam{15, 20, 3, false},
                      FamilyParam{20, 30, 4, false},
                      FamilyParam{12, 15, 3, true},
                      FamilyParam{18, 40, 2, true},
                      FamilyParam{25, 25, 3, false}));

TEST(RandPr, VariableCapacityGuarantee) {
  // Theorem 4: ratio <= 16e·kmax·sqrt(avg(νσ$)/avg(σ$)).
  Rng master(77);
  Instance inst =
      random_capacity_instance(18, 24, 3, 3, WeightModel::unit(), master);
  InstanceStats st = inst.stats();
  OfflineResult opt = exact_optimum(inst);
  ASSERT_TRUE(opt.exact);

  RunningStat benefit;
  for (int t = 0; t < 400; ++t) {
    RandPr alg(master.split(t));
    benefit.add(play(inst, alg).benefit);
  }
  double floor = benefit.mean() + benefit.ci95_halfwidth();
  EXPECT_GE(floor, opt.value / theorem4_bound(st));
}

TEST(HashedRandPr, MatchesLemma1Approximately) {
  // With a fresh polynomial hash per trial, survival probabilities match
  // the true-random analysis.
  Instance inst = chain(1, 1, 1);
  Rng master(31);
  int wins = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    Rng r = master.split(t);
    auto alg = HashedRandPr::with_polynomial(8, r);
    if (play(inst, *alg).completed_mask[0]) ++wins;
  }
  EXPECT_NEAR(static_cast<double>(wins) / trials, 1.0 / 3.0, 0.015);
}

TEST(HashedRandPr, ConsistentAcrossRuns) {
  // The same hash function gives the same decisions — the property that
  // makes the distributed deployment work.
  Rng r(11);
  auto h = std::make_shared<PolynomialHash>(4, r);
  auto make = [&] {
    return HashedRandPr(
        [h](std::uint64_t k) { return h->unit(k); }, "shared");
  };
  Rng gen(12);
  Instance inst = random_instance(30, 40, 3, WeightModel::unit(), gen);
  auto a1 = make(), a2 = make();
  EXPECT_EQ(play(inst, a1).completed, play(inst, a2).completed);
}

TEST(HashedRandPr, FamiliesAllRun) {
  Rng gen(13);
  Instance inst = random_instance(25, 30, 3, WeightModel::uniform(1, 5), gen);
  Rng r(14);
  auto poly = HashedRandPr::with_polynomial(6, r);
  auto tab = HashedRandPr::with_tabulation(r);
  auto ms = HashedRandPr::with_multiply_shift(r);
  EXPECT_NO_THROW(play(inst, *poly));
  EXPECT_NO_THROW(play(inst, *tab));
  EXPECT_NO_THROW(play(inst, *ms));
  EXPECT_EQ(poly->name(), "hashPr/poly6");
}

TEST(RandPrOptions, FilterDeadNeverHurtsOnAverage) {
  Rng master(99);
  Instance inst = random_instance(30, 25, 3, WeightModel::unit(), master);
  RunningStat plain, filtered;
  for (int t = 0; t < 600; ++t) {
    Rng seed = master.split(t);
    Rng seed2 = seed;  // same priorities for both variants
    RandPr a(seed);
    RandPr b(seed2, {.filter_dead = true});
    plain.add(play(inst, a).benefit);
    filtered.add(play(inst, b).benefit);
  }
  EXPECT_GE(filtered.mean() + filtered.ci95_halfwidth() +
                plain.ci95_halfwidth(),
            plain.mean());
}

TEST(HashedRandPr, FilterDeadOptionWorks) {
  // The hashed variant honours the same filtering knob as RandPr.
  Rng gen(41);
  Instance inst = random_instance(24, 20, 3, WeightModel::unit(), gen);
  Rng hr(42);
  auto h = std::make_shared<PolynomialHash>(6, hr);
  HashedRandPr plain([h](std::uint64_t k) { return h->unit(k); }, "plain");
  HashedRandPr filt([h](std::uint64_t k) { return h->unit(k); }, "filt",
                    RandPrOptions{.filter_dead = true});
  Weight p = play(inst, plain).benefit;
  Weight f = play(inst, filt).benefit;
  // Same hash => same priorities; filtering can only help.
  EXPECT_GE(f, p);
}

TEST(RandPrOptions, AllowedMissesRelaxesFilter) {
  // With a miss budget the filter keeps serving a once-missed set.
  InstanceBuilder b;
  b.add_sets(2);
  b.add_element({0, 1});  // one of the two misses here
  b.add_element({0, 1});  // strict filter ignores the loser here...
  Instance inst = b.build();
  Rng seed(5);
  RandPr strict(seed, {.filter_dead = true, .allowed_misses = 0});
  Outcome out = play(inst, strict);
  // Strict: loser of element 0 is filtered at element 1, so exactly one
  // set gets both elements and completes.
  EXPECT_EQ(out.completed.size(), 1u);
  EXPECT_EQ(out.decisions, 2u);

  Rng seed2(5);
  RandPr lax(seed2, {.filter_dead = true, .allowed_misses = 1});
  Outcome out2 = play(inst, lax);
  // Budget 1: the loser is still a candidate at element 1 but ranks
  // below the winner (same priorities), so the outcome matches.
  EXPECT_EQ(out2.completed, out.completed);
}

TEST(RandPrOptions, IgnoreWeightsHurtsOnWeightedInput) {
  // On a strongly weighted instance, R_w priorities should beat uniform
  // priorities (that is the whole point of the distribution).
  InstanceBuilder b;
  b.add_set(50.0);  // heavy set
  for (int i = 0; i < 9; ++i) b.add_set(1.0);
  // The heavy set collides with every light set once.
  for (SetId s = 1; s < 10; ++s)
    b.add_element({0, s});
  Instance inst = b.build();

  Rng master(123);
  RunningStat with_w, without_w;
  for (int t = 0; t < 4000; ++t) {
    RandPr a(master.split(t));
    RandPr u(master.split(t + 1'000'000), {.ignore_weights = true});
    with_w.add(play(inst, a).benefit);
    without_w.add(play(inst, u).benefit);
  }
  EXPECT_GT(with_w.mean(), without_w.mean() * 1.5);
}

TEST(RandPr, PrioritiesPersistAcrossElements) {
  // The same set must win or lose consistently: if S beats S' at one
  // element it beats S' at every element (fixed priorities).
  Rng gen(55);
  InstanceBuilder b;
  b.add_sets(2);
  for (int i = 0; i < 6; ++i) b.add_element({0, 1});
  Instance inst = b.build();
  for (int t = 0; t < 50; ++t) {
    RandPr alg(gen.split(t));
    Outcome out = play(inst, alg);
    // Exactly one of the two sets completes — never zero.
    EXPECT_EQ(out.completed.size(), 1u);
  }
}

TEST(RandPr, FreshPrioritiesBreakConsistency) {
  // Negative control: redrawing priorities per element almost never
  // completes a set that shares all 6 elements with a rival.
  Rng gen(56);
  InstanceBuilder b;
  b.add_sets(2);
  for (int i = 0; i < 6; ++i) b.add_element({0, 1});
  Instance inst = b.build();
  int completions = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    RandPr alg(gen.split(t), {.fresh_priorities_per_element = true});
    completions += static_cast<int>(play(inst, alg).completed.size());
  }
  // Pr[win all 6 coin flips] = 2 * (1/2)^6 ≈ 0.031 per trial.
  EXPECT_LT(completions, trials / 10);
}

}  // namespace
}  // namespace osp
