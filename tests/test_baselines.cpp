// Tests for the deterministic online baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "algos/baselines.hpp"
#include "core/game.hpp"
#include "gen/random_instances.hpp"
#include "util/rng.hpp"

namespace osp {
namespace {

TEST(GreedyFirst, PicksLowestIds) {
  InstanceBuilder b;
  b.add_sets(3);
  b.add_element({0, 1, 2}, 2);
  Instance inst = b.build();
  GreedyFirst alg;
  alg.start({{1, 1}, {1, 1}, {1, 1}});
  auto chosen = alg.on_element(0, 2, {0, 1, 2});
  EXPECT_EQ(chosen, (std::vector<SetId>{0, 1}));
}

TEST(GreedyMaxWeight, PrefersHeavySets) {
  GreedyMaxWeight alg;
  alg.start({{1.0, 1}, {5.0, 1}, {3.0, 1}});
  auto chosen = alg.on_element(0, 1, {0, 1, 2});
  EXPECT_EQ(chosen, (std::vector<SetId>{1}));
}

TEST(GreedyMaxWeight, TieBreaksTowardLowerId) {
  GreedyMaxWeight alg;
  alg.start({{2.0, 1}, {2.0, 1}});
  auto chosen = alg.on_element(0, 1, {0, 1});
  EXPECT_EQ(chosen, (std::vector<SetId>{0}));
}

TEST(GreedyMostProgress, ProtectsInvestment) {
  // S0 gets one element first; at the contended element it should win.
  GreedyMostProgress alg;
  alg.start({{1.0, 2}, {1.0, 1}});
  auto first = alg.on_element(0, 1, {0});
  EXPECT_EQ(first, (std::vector<SetId>{0}));
  auto second = alg.on_element(1, 1, {0, 1});
  EXPECT_EQ(second, (std::vector<SetId>{0}));
}

TEST(GreedyFewestRemaining, PrefersNearlyDoneSets) {
  // S0 declared size 3, S1 declared size 1: at their shared element the
  // size-1 set has fewer remaining elements.
  GreedyFewestRemaining alg;
  alg.start({{1.0, 3}, {1.0, 1}});
  auto chosen = alg.on_element(0, 1, {0, 1});
  EXPECT_EQ(chosen, (std::vector<SetId>{1}));
}

TEST(GreedyDensity, WeighsValuePerRemainingElement) {
  // S0: weight 10, size 5 (density 2); S1: weight 3, size 1 (density 3).
  GreedyDensity alg;
  alg.start({{10.0, 5}, {3.0, 1}});
  auto chosen = alg.on_element(0, 1, {0, 1});
  EXPECT_EQ(chosen, (std::vector<SetId>{1}));
}

TEST(ScoredBaselines, AvoidDeadSets) {
  // After S0 loses an element, every scored baseline must prefer the
  // still-active S1.
  for (auto& alg : make_deterministic_baselines()) {
    alg->start({{5.0, 2}, {1.0, 2}});
    // S0 and S1 compete; suppose the element goes to S1... we force the
    // scenario by presenting S0 alone with capacity... instead: present
    // {0,1} and see who wins, then kill the loser's rival check later.
    auto first = alg->on_element(0, 1, {0, 1});
    ASSERT_EQ(first.size(), 1u);
    SetId winner = first[0];
    SetId loser = winner == 0 ? 1 : 0;
    // At the next contended element the loser is dead; winner must be
    // chosen regardless of weights.
    auto second = alg->on_element(1, 1, {winner, loser});
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0], winner) << alg->name();
  }
}

TEST(ScoredBaselines, FillWithDeadWhenCapacityAllows) {
  GreedyFirst alg;
  alg.start({{1, 2}, {1, 2}, {1, 2}});
  alg.on_element(0, 1, {0, 1});   // kills one of 0/1
  auto chosen = alg.on_element(1, 3, {0, 1, 2});
  EXPECT_EQ(chosen.size(), 3u);  // uses full capacity including dead sets
}

TEST(RoundRobin, CursorPrefersLaterIds) {
  // After serving set 2 the cursor sits at 3, so among fresh candidates
  // {0, 3} the rotation favours 3, then among {1, 4} it favours 4.
  RoundRobin alg;
  alg.start(std::vector<SetMeta>(5, SetMeta{1.0, 1}));
  EXPECT_EQ(alg.on_element(0, 1, {2}), (std::vector<SetId>{2}));
  EXPECT_EQ(alg.on_element(1, 1, {0, 3}), (std::vector<SetId>{3}));
  EXPECT_EQ(alg.on_element(2, 1, {1, 4}), (std::vector<SetId>{4}));
}

TEST(UniformRandomChoice, RespectsCapacity) {
  UniformRandomChoice alg{Rng(3)};
  alg.start(std::vector<SetMeta>(10, SetMeta{1, 1}));
  std::vector<SetId> all{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto chosen = alg.on_element(0, 4, all);
  EXPECT_EQ(chosen.size(), 4u);
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(std::adjacent_find(chosen.begin(), chosen.end()), chosen.end());
}

TEST(UniformRandomChoice, RoughlyUniform) {
  Rng master(5);
  std::vector<int> counts(4, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    UniformRandomChoice alg{master.split(t)};
    alg.start(std::vector<SetMeta>(4, SetMeta{1, 1}));
    auto chosen = alg.on_element(0, 1, {0, 1, 2, 3});
    ++counts[chosen.at(0)];
  }
  for (int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
}

TEST(AllBaselines, PlayFullGamesLegally) {
  Rng gen(6);
  Instance inst = random_instance(25, 30, 3, WeightModel::uniform(1, 5), gen);
  for (auto& alg : make_deterministic_baselines()) {
    Outcome out;
    EXPECT_NO_THROW(out = play(inst, *alg)) << alg->name();
  }
}

TEST(AllBaselines, DistinctNames) {
  auto algs = make_deterministic_baselines();
  std::set<std::string> names;
  for (auto& a : algs) names.insert(a->name());
  EXPECT_EQ(names.size(), algs.size());
}

TEST(Baselines, DeterministicReplay) {
  Rng gen(7);
  Instance inst = random_instance(20, 25, 3, WeightModel::unit(), gen);
  for (std::size_t idx = 0; idx < make_deterministic_baselines().size();
       ++idx) {
    auto a1 = std::move(make_deterministic_baselines()[idx]);
    auto a2 = std::move(make_deterministic_baselines()[idx]);
    EXPECT_EQ(play(inst, *a1).completed, play(inst, *a2).completed);
  }
}

}  // namespace
}  // namespace osp
